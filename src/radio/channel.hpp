// Per-link radio channel model.
//
// Produces, per 500 ms tick, the KPI vector XCAL would log — RSRP, per-
// direction SNR/MCS/BLER, active component carriers and the resulting PHY
// capacity — for a UE attached to one cell. The model composes:
//
//  - log-distance path loss with spatially correlated (Gauss-Markov)
//    shadowing; carrier-specific mmWave beam gain (Verizon's wider beams give
//    systematically lower mmWave RSRP than AT&T's, §5.5 "RSRP");
//  - a mobility penalty on SNR that grows with speed and carrier frequency
//    (beam misalignment / Doppler), the mechanism behind the static→driving
//    collapse in Fig. 3;
//  - cell-load processes (Ornstein-Uhlenbeck in logit space) deciding the
//    share of cell capacity our UE gets, with a heavy low tail — the paper's
//    "poor performance even under full high-speed 5G coverage";
//  - an outage process (blockage / deep fade) that is most aggressive for
//    mmWave and for T-Mobile's midband, reproducing the "40% of n41 samples
//    below 2 Mbps" observation (§5.2);
//  - link adaptation: SNR→MCS (NR 0..28), BLER with speed term, CA component
//    draws honouring carrier quirks (Verizon rarely aggregates uplink
//    carriers; T-Mobile usually runs 2 UL carriers — §5.5 "CA").
#pragma once

#include "core/rng.hpp"
#include "core/units.hpp"
#include "radio/band_plan.hpp"
#include "radio/deployment.hpp"
#include "radio/technology.hpp"

namespace wheels::radio {

enum class Direction { Downlink, Uplink };

std::string_view direction_name(Direction d);

/// One tick's worth of PHY-layer KPIs (what XCAL logs every 500 ms).
struct LinkKpis {
  Dbm rsrp = -120.0;
  Db snr_dl = 0.0;
  Db snr_ul = 0.0;
  int mcs_dl = 0;   // primary cell MCS index, 0..28
  int mcs_ul = 0;
  double bler_dl = 0.0;
  double bler_ul = 0.0;
  int cc_dl = 1;    // active component carriers
  int cc_ul = 1;
  Mbps capacity_dl = 0.0;  // PHY capacity available to this UE
  Mbps capacity_ul = 0.0;
  bool outage = false;

  Mbps capacity(Direction d) const {
    return d == Direction::Downlink ? capacity_dl : capacity_ul;
  }
  int mcs(Direction d) const {
    return d == Direction::Downlink ? mcs_dl : mcs_ul;
  }
  int cc(Direction d) const { return d == Direction::Downlink ? cc_dl : cc_ul; }
  double bler(Direction d) const {
    return d == Direction::Downlink ? bler_dl : bler_ul;
  }
};

/// RSRP at reference distance (50 m, boresight) for (carrier, tech).
Dbm reference_rsrp(Carrier carrier, Technology tech);
/// Path-loss exponent for the technology's frequency range.
double path_loss_exponent(Technology tech);
/// RSRP at `distance_km` from the site (excluding shadowing).
Dbm mean_rsrp(Carrier carrier, Technology tech, Km distance_km);
/// SNR implied by an RSRP for the technology (noise+interference floor).
Db snr_from_rsrp(Technology tech, Dbm rsrp);
/// NR MCS index (0..28) for an SNR.
int mcs_from_snr(Db snr);
/// Residual block error rate at the given SNR and speed.
double bler_model(Db snr, MilesPerHour speed);

/// Device limits (Samsung S21 over mmWave, Appendix B).
inline constexpr Mbps kDeviceCapDl = 3500.0;
inline constexpr Mbps kDeviceCapUl = 350.0;

class ChannelModel {
 public:
  ChannelModel(Carrier carrier, Rng rng);

  /// Called when the UE attaches to a new serving cell: re-draws shadowing,
  /// load and CA state.
  void attach(const CellSite& cell);

  /// Advance the channel by `dt` at the UE's position and produce KPIs.
  LinkKpis sample(const CellSite& cell, Km ue_km, MilesPerHour speed,
                  Millis dt);

  /// Best-case stationary sample (the paper's static tests: standing in front
  /// of the base station).
  LinkKpis sample_static_best(const CellSite& cell, Millis dt);

 private:
  void advance_load(Millis dt);
  void advance_outage(Technology tech, MilesPerHour speed, Millis dt,
                      bool static_best);
  void redraw_ca(Technology tech, bool static_best);
  LinkKpis finish(const CellSite& cell, Dbm rsrp, MilesPerHour speed,
                  bool static_best);

  Carrier carrier_;
  Rng rng_;
  // Shadowing (dB) with spatial decorrelation.
  double shadow_db_ = 0.0;
  Km last_km_ = -1.0;
  // Load state (logit of our share of the cell), DL and UL.
  double load_dl_ = 0.0;
  double load_ul_ = 0.0;
  // Outage remaining duration and depth multiplier.
  Millis outage_left_ = 0.0;
  double outage_depth_ = 1.0;
  // Active CA components, re-drawn on attach and occasionally after.
  int cc_dl_ = 1;
  int cc_ul_ = 1;
  // Uplink power-control state (dB): closed-loop PC makes the UL SNR track
  // the serving cell's commands, not the DL RSRP.
  double ul_pc_offset_db_ = 0.0;
  Millis since_ca_redraw_ = 0.0;
};

}  // namespace wheels::radio

#include "radio/technology.hpp"

namespace wheels::radio {

std::string_view technology_name(Technology t) {
  switch (t) {
    case Technology::Lte: return "LTE";
    case Technology::LteA: return "LTE-A";
    case Technology::NrLow: return "5G-low";
    case Technology::NrMid: return "5G-mid";
    case Technology::NrMmWave: return "5G-mmWave";
  }
  return "?";
}

std::string_view carrier_name(Carrier c) {
  switch (c) {
    case Carrier::Verizon: return "Verizon";
    case Carrier::TMobile: return "T-Mobile";
    case Carrier::Att: return "AT&T";
  }
  return "?";
}

}  // namespace wheels::radio

#include "radio/channel.hpp"

#include <algorithm>
#include <cmath>

#include "core/math_util.hpp"

namespace wheels::radio {

std::string_view direction_name(Direction d) {
  return d == Direction::Downlink ? "downlink" : "uplink";
}

namespace {

constexpr Km kReferenceKm = 0.1;  // path-loss reference distance

/// Shadowing sigma (dB) and decorrelation distance (km).
struct ShadowParams {
  double sigma_db;
  Km decorrelation_km;
};

ShadowParams shadow_params(Technology tech) {
  switch (tech) {
    case Technology::Lte:
    case Technology::LteA: return {6.0, 0.12};
    case Technology::NrLow: return {5.5, 0.15};
    case Technology::NrMid: return {7.0, 0.08};
    case Technology::NrMmWave: return {9.0, 0.03};
  }
  return {6.0, 0.1};
}

/// Speed penalty on SNR (beam tracking / Doppler), dB.
double mobility_penalty_db(Technology tech, MilesPerHour speed) {
  switch (tech) {
    case Technology::NrMmWave: return 2.0 + 0.18 * speed;
    case Technology::NrMid: return 1.0 + 0.06 * speed;
    case Technology::NrLow: return 0.5 + 0.035 * speed;
    case Technology::LteA: return 0.5 + 0.02 * speed;
    case Technology::Lte: return 0.5 + 0.02 * speed;
  }
  return 0.0;
}

/// UL transmit-power handicap relative to DL, dB.
double ul_snr_offset(Technology tech) {
  return tech == Technology::NrMmWave ? -8.0 : -2.0;
}

/// Probability of entering an outage (blockage / deep fade) per 500 ms at
/// 60 mph. T-Mobile midband gets an extra hit: the paper found 40% of its
/// samples below 2 Mbps in both directions (§5.2).
double outage_entry_p(Carrier carrier, Technology tech) {
  switch (tech) {
    case Technology::NrMmWave: return 0.10;
    case Technology::NrMid:
      return carrier == Carrier::TMobile ? 0.085 : 0.055;
    case Technology::NrLow: return 0.045;
    case Technology::LteA:
    case Technology::Lte:
      switch (carrier) {
        case Carrier::Att: return 0.022;
        case Carrier::Verizon: return 0.030;
        case Carrier::TMobile: return 0.035;
      }
      return 0.03;
  }
  return 0.03;
}

/// Practical spectral-efficiency ceiling per layer (b/s/Hz).
constexpr double kEffCeiling = 5.5;
/// Control/reference-signal overhead.
constexpr double kOverhead = 0.78;

/// Diminishing returns of extra MIMO layers in the field.
double effective_layers(int layers) { return 1.0 + 0.35 * (layers - 1); }

}  // namespace

Dbm reference_rsrp(Carrier carrier, Technology tech) {
  switch (tech) {
    case Technology::Lte: return -70.0;
    case Technology::LteA: return -69.0;
    case Technology::NrLow: return -65.0;
    case Technology::NrMid: return -68.0;
    case Technology::NrMmWave:
      // §5.5: Verizon's wider beams → lower gain → RSRP −80..−110 dBm while
      // AT&T's narrow beams sit at −70..−90 dBm.
      switch (carrier) {
        case Carrier::Verizon: return -78.0;
        case Carrier::TMobile: return -70.0;
        case Carrier::Att: return -66.0;
      }
  }
  return -70.0;
}

double path_loss_exponent(Technology tech) {
  switch (tech) {
    case Technology::Lte:
    case Technology::LteA: return 3.0;
    case Technology::NrLow: return 2.8;
    case Technology::NrMid: return 3.7;
    case Technology::NrMmWave: return 4.5;
  }
  return 3.0;
}

Dbm mean_rsrp(Carrier carrier, Technology tech, Km distance_km) {
  const double d = std::max(distance_km, kReferenceKm);
  return reference_rsrp(carrier, tech) -
         10.0 * path_loss_exponent(tech) * std::log10(d / kReferenceKm);
}

Db snr_from_rsrp(Technology tech, Dbm rsrp) {
  // Noise + interference floor per technology; clamped to modem range.
  double floor = -108.0;
  switch (tech) {
    case Technology::Lte:
    case Technology::LteA: floor = -104.0; break;
    case Technology::NrLow: floor = -103.0; break;
    case Technology::NrMid: floor = -108.0; break;
    case Technology::NrMmWave: floor = -102.0; break;
  }
  return std::clamp(rsrp - floor, -10.0, 32.0);
}

int mcs_from_snr(Db snr) {
  const int mcs = static_cast<int>(std::lround((snr + 8.0) * 28.0 / 38.0));
  return std::clamp(mcs, 0, 28);
}

double bler_model(Db snr, MilesPerHour speed) {
  // Link adaptation keeps the residual BLER near its 10% target across most
  // of the SNR range; only deep fades push it up (why the paper finds BLER
  // nearly uncorrelated with throughput, Table 2).
  const double base = 0.10 + 0.30 * logistic(-snr, 6.0, 0.9);
  return std::clamp(base + 0.0010 * speed, 0.02, 0.9);
}

namespace {

/// Mean of the DL load-logit process: how much of the cell our UE gets.
/// AT&T's 4G capacity layer is the least contended (it carries the paper's
/// highest driving DL means); Verizon sits in between.
double load_mu_dl(Carrier c) {
  switch (c) {
    case Carrier::Verizon: return -0.55;
    case Carrier::TMobile: return -0.75;
    case Carrier::Att: return -0.10;
  }
  return -0.75;
}

double load_mu_ul(Carrier c) {
  switch (c) {
    case Carrier::Verizon: return 0.60;
    case Carrier::TMobile: return 0.30;
    case Carrier::Att: return 0.10;
  }
  return 0.30;
}

}  // namespace

ChannelModel::ChannelModel(Carrier carrier, Rng rng)
    : carrier_(carrier), rng_(std::move(rng)) {
  load_dl_ = rng_.normal(load_mu_dl(carrier_), 0.9);
  load_ul_ = rng_.normal(load_mu_ul(carrier_), 1.3);
}

void ChannelModel::attach(const CellSite& cell) {
  const ShadowParams sp = shadow_params(cell.tech);
  shadow_db_ = rng_.normal(0.0, sp.sigma_db);
  last_km_ = -1.0;
  load_dl_ = rng_.normal(load_mu_dl(carrier_), 0.9);
  load_ul_ = rng_.normal(load_mu_ul(carrier_), 1.3);
  outage_left_ = 0.0;
  outage_depth_ = 1.0;
  redraw_ca(cell.tech, false);
}

void ChannelModel::advance_load(Millis dt) {
  // OU in logit space, time constant ~20 s.
  const double theta = dt / 20'000.0;
  const double diffusion = 0.55 * std::sqrt(std::min(1.0, dt / 20'000.0));
  load_dl_ += (load_mu_dl(carrier_) - load_dl_) * theta +
              rng_.normal(0.0, diffusion);
  load_ul_ += (load_mu_ul(carrier_) - load_ul_) * theta +
              rng_.normal(0.0, diffusion);
}

void ChannelModel::advance_outage(Technology tech, MilesPerHour speed,
                                  Millis dt, bool static_best) {
  if (outage_left_ > 0.0) {
    outage_left_ -= dt;
    if (outage_left_ <= 0.0) outage_depth_ = 1.0;
    return;
  }
  double p500 =
      outage_entry_p(carrier_, tech) * (0.3 + speed / 60.0) * (dt / 500.0);
  if (static_best) p500 *= 0.35;
  if (rng_.bernoulli(std::min(p500, 0.8))) {
    outage_left_ = rng_.exponential(1.0 / 4'000.0);  // mean 4 s
    outage_depth_ = rng_.uniform(0.01, 0.18);
  }
}

void ChannelModel::redraw_ca(Technology tech, bool static_best) {
  const BandPlan plan = band_plan(carrier_, tech);
  // DL: skew toward max when static, mid-range while driving.
  const double u = rng_.uniform();
  const double skew = static_best ? 0.45 : 0.70;
  cc_dl_ = 1 + static_cast<int>(std::pow(u, skew) * plan.max_cc_dl);
  cc_dl_ = std::clamp(cc_dl_, 1, plan.max_cc_dl);

  // UL carrier-aggregation quirks (§5.5 "CA"): Verizon rarely aggregates UL;
  // T-Mobile usually runs 2 UL carriers; AT&T sometimes.
  double p_ul2 = 0.3;
  if (carrier_ == Carrier::Verizon) p_ul2 = 0.05;
  if (carrier_ == Carrier::TMobile) p_ul2 = 0.60;
  cc_ul_ = (plan.max_cc_ul >= 2 && rng_.bernoulli(p_ul2)) ? 2 : 1;
  ul_pc_offset_db_ = rng_.normal(0.0, 3.0);
  since_ca_redraw_ = 0.0;
}

LinkKpis ChannelModel::finish(const CellSite& cell, Dbm rsrp,
                              MilesPerHour speed, bool static_best) {
  const BandPlan plan = band_plan(carrier_, cell.tech);

  LinkKpis k;
  k.rsrp = rsrp;
  k.outage = outage_left_ > 0.0;

  const double penalty = static_best ? 0.0 : mobility_penalty_db(cell.tech, speed);
  k.snr_dl = snr_from_rsrp(cell.tech, rsrp) - penalty;
  k.snr_ul = k.snr_dl + ul_snr_offset(cell.tech) + ul_pc_offset_db_;
  k.mcs_dl = mcs_from_snr(k.snr_dl);
  k.mcs_ul = mcs_from_snr(k.snr_ul);
  k.bler_dl = bler_model(k.snr_dl, static_best ? 0.0 : speed);
  k.bler_ul = bler_model(k.snr_ul, static_best ? 0.0 : speed);
  k.cc_dl = cc_dl_;
  k.cc_ul = cc_ul_;

  // Static tests ran in front of the BS in a quiet window — except that
  // T-Mobile's urban n41 layer carries most of its traffic and stays busy
  // (the paper's T-Mobile static DL median is 5x below Verizon's).
  const double boost =
      static_best ? (carrier_ == Carrier::TMobile ? 0.2 : 1.3) : 0.0;
  const double share_dl = clamp01(logistic(load_dl_ + boost, 0.0, 1.0));
  const double share_ul = clamp01(logistic(load_ul_ + boost, 0.0, 1.0));

  // Sum capacity over component carriers; secondary components see weaker
  // SNR (they are served by the same site at other frequencies).
  auto aggregate = [&](Db snr0, int cc, int layers, double duty) {
    double mbps = 0.0;
    for (int i = 0; i < cc; ++i) {
      const Db snr_i = snr0 - 3.0 * i;
      const double eff = std::min(shannon_efficiency(snr_i, kEffCeiling),
                                  kEffCeiling);
      const double bler = bler_model(snr_i, static_best ? 0.0 : speed);
      mbps += plan.cc_bandwidth_mhz * eff * effective_layers(layers) *
              kOverhead * duty * (1.0 - bler);
    }
    return mbps;
  };

  k.capacity_dl = aggregate(k.snr_dl, k.cc_dl, plan.layers_dl, 1.0) * share_dl;
  k.capacity_ul =
      aggregate(k.snr_ul, k.cc_ul, plan.layers_ul, plan.ul_duty) * share_ul;

  if (k.outage) {
    k.capacity_dl *= outage_depth_;
    k.capacity_ul *= outage_depth_;
    k.rsrp -= 15.0;
  }

  k.capacity_dl = std::min(k.capacity_dl, kDeviceCapDl);
  k.capacity_ul = std::min(k.capacity_ul, kDeviceCapUl);
  return k;
}

LinkKpis ChannelModel::sample(const CellSite& cell, Km ue_km,
                              MilesPerHour speed, Millis dt) {
  const ShadowParams sp = shadow_params(cell.tech);
  if (last_km_ >= 0.0) {
    const Km moved = std::abs(ue_km - last_km_);
    const double rho = std::exp(-moved / sp.decorrelation_km);
    shadow_db_ = rho * shadow_db_ +
                 std::sqrt(std::max(0.0, 1.0 - rho * rho)) *
                     rng_.normal(0.0, sp.sigma_db);
  }
  last_km_ = ue_km;

  advance_load(dt);
  advance_outage(cell.tech, speed, dt, false);
  since_ca_redraw_ += dt;
  if (since_ca_redraw_ > 5'000.0) redraw_ca(cell.tech, false);

  const Km dist = std::abs(ue_km - cell.center_km);
  const Dbm rsrp = mean_rsrp(carrier_, cell.tech, dist) + shadow_db_;
  return finish(cell, rsrp, speed, false);
}

LinkKpis ChannelModel::sample_static_best(const CellSite& cell, Millis dt) {
  advance_load(dt);
  // Pedestrian blockage still happens in front of the base station, just
  // rarely — the paper saw a non-negligible fraction of low static samples.
  advance_outage(cell.tech, 10.0, dt, true);
  since_ca_redraw_ += dt;
  if (since_ca_redraw_ > 5'000.0) redraw_ca(cell.tech, true);

  const Dbm rsrp =
      reference_rsrp(carrier_, cell.tech) + rng_.normal(0.0, 2.0);
  return finish(cell, rsrp, 0.0, true);
}

}  // namespace wheels::radio

#include "radio/deployment.hpp"

#include <algorithm>
#include <cmath>

namespace wheels::radio {

using geo::RegionType;
using geo::Timezone;

TechGeometry tech_geometry(Technology tech) {
  switch (tech) {
    case Technology::Lte: return {1e9, 3.0, 0.70};  // one zone: everywhere
    case Technology::LteA: return {30.0, 2.2, 0.65};
    case Technology::NrLow: return {18.0, 3.0, 0.65};
    case Technology::NrMid: return {7.0, 1.6, 0.62};
    case Technology::NrMmWave: return {1.0, 0.30, 0.62};
  }
  return {};
}

namespace {

/// Region-dependent base probabilities, encoding §4.2's deployment
/// strategies. Index: [urban, suburban, highway].
struct RegionProbs {
  double urban, suburban, highway;
  double at(RegionType r) const {
    switch (r) {
      case RegionType::Urban: return urban;
      case RegionType::Suburban: return suburban;
      case RegionType::Highway: return highway;
    }
    return 0.0;
  }
};

struct TzMults {
  double pacific, mountain, central, eastern;
  double at(Timezone tz) const {
    switch (tz) {
      case Timezone::Pacific: return pacific;
      case Timezone::Mountain: return mountain;
      case Timezone::Central: return central;
      case Timezone::Eastern: return eastern;
    }
    return 1.0;
  }
};

double profile(Carrier c, Technology t, Timezone tz, RegionType r) {
  RegionProbs p{0.0, 0.0, 0.0};
  TzMults m{1.0, 1.0, 1.0, 1.0};
  switch (c) {
    case Carrier::Verizon:
      switch (t) {
        case Technology::Lte: return 1.0;
        case Technology::LteA: p = {0.80, 0.75, 0.72}; break;
        case Technology::NrLow:
          p = {0.24, 0.15, 0.11};
          m = {0.9, 0.7, 1.2, 1.3};
          break;
        case Technology::NrMid:
          p = {0.18, 0.11, 0.13};
          m = {0.9, 0.6, 1.2, 1.4};
          break;
        case Technology::NrMmWave:
          // Downtown pockets; strongest mmWave of the three carriers.
          p = {0.28, 0.02, 0.002};
          m = {1.0, 0.7, 1.1, 1.3};
          break;
      }
      break;
    case Carrier::TMobile:
      switch (t) {
        case Technology::Lte: return 1.0;
        case Technology::LteA: p = {0.70, 0.66, 0.62}; break;
        case Technology::NrLow:
          // n71 blankets most of the country.
          p = {0.78, 0.72, 0.64};
          m = {1.1, 0.9, 1.0, 1.0};
          break;
        case Technology::NrMid:
          // n41 along highways too; much stronger in the Pacific zone.
          p = {0.55, 0.42, 0.40};
          m = {1.5, 0.8, 1.0, 1.0};
          break;
        case Technology::NrMmWave:
          p = {0.08, 0.005, 0.0005};
          break;
      }
      break;
    case Carrier::Att:
      switch (t) {
        case Technology::Lte: return 1.0;
        case Technology::LteA:
          // AT&T's differentiator (Fig. 2a): best LTE-A footprint.
          p = {0.90, 0.88, 0.85};
          break;
        case Technology::NrLow:
          p = {0.50, 0.38, 0.31};
          m = {1.5, 0.35, 0.6, 1.4};
          break;
        case Technology::NrMid:
          p = {0.10, 0.03, 0.02};
          m = {1.2, 0.3, 0.5, 1.2};
          break;
        case Technology::NrMmWave:
          p = {0.06, 0.003, 0.0003};
          m = {1.2, 0.3, 0.5, 1.2};
          break;
      }
      break;
  }
  return std::clamp(p.at(r) * m.at(tz), 0.0, 0.95);
}

}  // namespace

double availability_probability(Carrier carrier, Technology tech,
                                geo::Timezone tz, geo::RegionType region) {
  return profile(carrier, tech, tz, region);
}

Deployment::Deployment(const geo::ScaledRoute& route, Carrier carrier, Rng rng,
                       DeploymentOverrides overrides)
    : carrier_(carrier) {
  std::uint32_t next_id = 1;
  const Km total = route.total_physical_km();

  for (Technology tech : kAllTechnologies) {
    auto& cells = by_tech_[static_cast<std::size_t>(tech)];
    Rng tech_rng = rng.fork(technology_name(tech));
    const TechGeometry g = tech_geometry(tech);
    const Km zone_len = std::min(g.zone_length_km, total);

    for (Km zone_start = 0.0; zone_start < total; zone_start += zone_len) {
      const Km zone_end = std::min(zone_start + zone_len, total);
      const geo::RoutePoint mid =
          route.at_physical((zone_start + zone_end) / 2.0);
      // 5G layers cap at 0.95 (gaps always exist); the 4G floor may stay
      // at probability 1 — LTE must blanket the route.
      const double cap = is_5g(tech) ? 0.95 : 1.0;
      const double p = std::clamp(
          availability_probability(carrier, tech, mid.tz, mid.region) *
              overrides.factor(tech),
          0.0, cap);
      if (!tech_rng.bernoulli(p)) continue;

      // Populate the zone with evenly spaced cells; always at least one.
      const int n = std::max(
          1, static_cast<int>(std::round((zone_end - zone_start) /
                                         g.cell_spacing_km)));
      const Km step = (zone_end - zone_start) / n;
      for (int i = 0; i < n; ++i) {
        CellSite cell;
        cell.id = next_id++;
        cell.carrier = carrier;
        cell.tech = tech;
        cell.center_km = zone_start + step * (i + 0.5);
        cell.radius_km = std::max(step, g.cell_spacing_km) * g.radius_factor;
        cells.push_back(cell);
      }
    }
    all_.insert(all_.end(), cells.begin(), cells.end());
  }
}

const CellSite* Deployment::covering_cell(Technology tech, Km km) const {
  const auto& cells = by_tech_[static_cast<std::size_t>(tech)];
  if (cells.empty()) return nullptr;
  const auto it = std::lower_bound(
      cells.begin(), cells.end(), km,
      [](const CellSite& c, Km k) { return c.center_km < k; });

  const CellSite* best = nullptr;
  Km best_dist = 1e18;
  // Check the neighbours around the insertion point; radii never exceed a
  // couple of spacings so two candidates on each side suffice.
  const auto idx = static_cast<std::ptrdiff_t>(it - cells.begin());
  for (std::ptrdiff_t j = idx - 2; j <= idx + 1; ++j) {
    if (j < 0 || j >= static_cast<std::ptrdiff_t>(cells.size())) continue;
    const CellSite& c = cells[static_cast<std::size_t>(j)];
    const Km d = std::abs(c.center_km - km);
    if (c.covers(km) && d < best_dist) {
      best = &c;
      best_dist = d;
    }
  }
  return best;
}

std::vector<Technology> Deployment::available(Km km) const {
  std::vector<Technology> out;
  for (Technology t : kAllTechnologies) {
    if (has(t, km)) out.push_back(t);
  }
  return out;
}

}  // namespace wheels::radio

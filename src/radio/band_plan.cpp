#include "radio/band_plan.hpp"

#include "core/math_util.hpp"

namespace wheels::radio {

BandPlan band_plan(Carrier carrier, Technology tech) {
  switch (tech) {
    case Technology::Lte:
      return {2.0, 10.0, 1, 1, 2, 1, 1.0};
    case Technology::LteA: {
      // AT&T's LTE-A footprint is its strength (Fig. 2a): more aggregated
      // spectrum than the other two.
      BandPlan p{2.0, 15.0, 3, 1, 4, 1, 1.0};
      if (carrier == Carrier::Att) {
        p.max_cc_dl = 5;
        p.cc_bandwidth_mhz = 18.0;
      }
      return p;
    }
    case Technology::NrLow: {
      // 600-850 MHz NR; T-Mobile n71 is 20 MHz-ish, others narrower.
      BandPlan p{0.85, 15.0, 2, 1, 2, 1, 1.0};
      if (carrier == Carrier::TMobile) p.cc_bandwidth_mhz = 20.0;
      return p;
    }
    case Technology::NrMid: {
      // T-Mobile n41 2.5 GHz / 100 MHz; Verizon & AT&T C-band 3.7 GHz /
      // ~60 MHz. TDD with DL-heavy slot format.
      if (carrier == Carrier::TMobile) return {2.5, 100.0, 2, 2, 4, 1, 0.25};
      return {3.7, 60.0, 2, 1, 4, 1, 0.25};
    }
    case Technology::NrMmWave: {
      // 28 GHz, 100 MHz components; S21 aggregates up to 8 DL / 2 UL.
      // Only Verizon holds enough contiguous mmWave for the full 8 CC;
      // T-Mobile's and AT&T's thinner holdings cap at 4 CC (and AT&T's
      // uplink stays on a single component) — this is what keeps Verizon's
      // static mmWave medians on top in Fig. 3a.
      BandPlan p{28.0, 100.0, 8, 2, 2, 1, 0.3};
      if (carrier != Carrier::Verizon) p.max_cc_dl = 4;
      if (carrier == Carrier::Att) p.max_cc_ul = 1;
      return p;
    }
  }
  return {};
}

Mbps cc_peak_rate(const BandPlan& plan, bool downlink) {
  constexpr double kOverhead = 0.78;  // control / reference-signal overhead
  constexpr double kPeakEfficiency = 7.4;
  const int layers = downlink ? plan.layers_dl : plan.layers_ul;
  const double duty = downlink ? 1.0 : plan.ul_duty;
  return plan.cc_bandwidth_mhz * kPeakEfficiency * layers * kOverhead * duty;
}

}  // namespace wheels::radio

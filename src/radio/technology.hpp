// Cellular technologies and carriers (operators) covered by the study.
#pragma once

#include <array>
#include <string_view>

namespace wheels::radio {

/// The five technologies the paper distinguishes (Fig. 1, Fig. 2):
/// LTE, LTE-A, 5G low-band, 5G mid-band, 5G mmWave.
enum class Technology { Lte, LteA, NrLow, NrMid, NrMmWave };

inline constexpr int kTechnologyCount = 5;
inline constexpr std::array<Technology, kTechnologyCount> kAllTechnologies{
    Technology::Lte, Technology::LteA, Technology::NrLow, Technology::NrMid,
    Technology::NrMmWave};

std::string_view technology_name(Technology t);

constexpr bool is_5g(Technology t) {
  return t == Technology::NrLow || t == Technology::NrMid ||
         t == Technology::NrMmWave;
}

/// "High-speed 5G" in the paper's terminology: midband or mmWave. Everything
/// else (LTE/LTE-A/5G-low) is the low-throughput (LT) class of §5.4.
constexpr bool is_high_speed_5g(Technology t) {
  return t == Technology::NrMid || t == Technology::NrMmWave;
}

/// Service tier used for upgrade/downgrade ordering (LTE lowest).
constexpr int technology_tier(Technology t) { return static_cast<int>(t); }

/// The three major US operators.
enum class Carrier { Verizon, TMobile, Att };

inline constexpr int kCarrierCount = 3;
inline constexpr std::array<Carrier, kCarrierCount> kAllCarriers{
    Carrier::Verizon, Carrier::TMobile, Carrier::Att};

std::string_view carrier_name(Carrier c);

}  // namespace wheels::radio

// Cell deployment along the driven route.
//
// Each carrier deploys each technology in "zones": contiguous stretches whose
// length is technology-specific (mmWave pockets ~1 km, low-band blankets tens
// of km). A zone is populated with probability taken from the carrier's
// deployment profile — a function of (technology, timezone, region type) that
// encodes the strategies the paper infers in §4.2: Verizon prioritises urban
// mmWave and is stronger in the east, T-Mobile blankets highways with n41
// midband (strongest in the Pacific zone), AT&T has little high-speed 5G but
// the best LTE-A footprint and weak 5G in the Mountain/Central zones.
// Populated zones carry cells at a technology-specific spacing, giving the
// handover engine real cell boundaries to cross.
//
// All positions are *physical* km (see geo::ScaledRoute), which keeps
// handover-per-mile and coverage-per-mile statistics scale-invariant.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/rng.hpp"
#include "core/units.hpp"
#include "geo/scaled_route.hpp"
#include "radio/technology.hpp"

namespace wheels::radio {

struct CellSite {
  std::uint32_t id = 0;
  Carrier carrier = Carrier::Verizon;
  Technology tech = Technology::Lte;
  Km center_km = 0.0;
  Km radius_km = 0.0;

  bool covers(Km km) const {
    return km >= center_km - radius_km && km <= center_km + radius_km;
  }
};

/// Per-technology deployment geometry.
struct TechGeometry {
  Km zone_length_km = 10.0;   // granularity of deploy/skip decisions
  Km cell_spacing_km = 4.0;   // inter-site distance inside a deployed zone
  double radius_factor = 0.62;  // radius = spacing * factor (overlap for HO)
};

TechGeometry tech_geometry(Technology tech);

/// Probability that `carrier` has `tech` deployed in a zone with the given
/// timezone and region. LTE is the universal floor (probability 1).
double availability_probability(Carrier carrier, Technology tech,
                                geo::Timezone tz, geo::RegionType region);

/// What-if multipliers on the 2022 deployment probabilities (capped at
/// 0.95). Used by the future-buildout experiment (ext_future_deployment) to
/// ask how the paper's findings change as carriers densify.
struct DeploymentOverrides {
  double low_multiplier = 1.0;
  double mid_multiplier = 1.0;
  double mmwave_multiplier = 1.0;

  double factor(Technology tech) const {
    switch (tech) {
      case Technology::NrLow: return low_multiplier;
      case Technology::NrMid: return mid_multiplier;
      case Technology::NrMmWave: return mmwave_multiplier;
      default: return 1.0;
    }
  }
};

class Deployment {
 public:
  /// Generate the carrier's cells along the (scaled) route, deterministically
  /// from `rng`. `overrides` scales the 5G deployment probabilities.
  Deployment(const geo::ScaledRoute& route, Carrier carrier, Rng rng,
             DeploymentOverrides overrides = {});

  Carrier carrier() const { return carrier_; }
  const std::vector<CellSite>& cells() const { return all_; }

  /// The covering cell of `tech` whose centre is nearest to `km`, if any.
  const CellSite* covering_cell(Technology tech, Km km) const;

  /// Technologies available at `km`, highest tier last.
  std::vector<Technology> available(Km km) const;

  /// True if any cell of `tech` covers `km`.
  bool has(Technology tech, Km km) const {
    return covering_cell(tech, km) != nullptr;
  }

 private:
  Carrier carrier_;
  std::array<std::vector<CellSite>, kTechnologyCount> by_tech_;  // sorted
  std::vector<CellSite> all_;
};

}  // namespace wheels::radio

// Per-carrier spectrum holdings: frequency, channel bandwidth, carrier
// aggregation limits and MIMO ranks per technology.
//
// Values reflect the 2022 US deployments the paper measured: Verizon 28 GHz
// mmWave with up to 8 aggregated components (S21 supports 8CC DL / 2CC UL,
// Appendix B), T-Mobile's 100 MHz n41 midband, Verizon/AT&T ~60 MHz C-band,
// low-band NR around 600-850 MHz and 10-20 MHz LTE channels.
#pragma once

#include "core/units.hpp"
#include "radio/technology.hpp"

namespace wheels::radio {

struct BandPlan {
  /// Carrier frequency in GHz (drives path loss).
  double freq_ghz = 2.0;
  /// Bandwidth of one component carrier, MHz.
  double cc_bandwidth_mhz = 10.0;
  /// Max aggregated component carriers, downlink / uplink.
  int max_cc_dl = 1;
  int max_cc_ul = 1;
  /// Spatial layers, downlink / uplink.
  int layers_dl = 2;
  int layers_ul = 1;
  /// Fraction of slots granted to the uplink (TDD asymmetry; FDD = 1.0 both).
  double ul_duty = 1.0;
};

/// Spectrum for (carrier, technology).
BandPlan band_plan(Carrier carrier, Technology tech);

/// Peak PHY rate (Mbps) of a single component carrier at the spectral
/// efficiency ceiling — a sanity bound used by tests and the capacity model.
Mbps cc_peak_rate(const BandPlan& plan, bool downlink);

}  // namespace wheels::radio

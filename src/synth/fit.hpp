// Fit a SynthProfile from recorded ReplayBundles.
//
// Per (carrier, RAT) stream with enough evidence, the fitter discretizes the
// 500 ms downlink-throughput marginal into regimes — regime 0 is the outage
// band (<= outage_mbps), the rest are equal-probability quantile bands of
// the non-outage marginal — counts the regime transition matrix over
// tick-adjacent pairs, and captures each regime's value distribution as an
// inverse-CDF quantile grid. RTT gets its own chain the same way, the
// uplink marginal an (unconditional) emission grid, and per-carrier RAT
// occupancy/transitions form the mix chain. Streams under the sample floor
// are dropped: a model fitted from a handful of ticks would sample noise.
#pragma once

#include <cstdint>
#include <vector>

#include "replay/ingest.hpp"
#include "synth/profile.hpp"

namespace wheels::synth {

struct FitOptions {
  SimMillis tick_ms = 500;
  /// Throughput at or below this is the outage band (regime 0).
  double outage_mbps = 0.1;
  /// Throughput regimes including the outage band; >= 2.
  std::size_t throughput_regimes = 4;
  /// RTT regimes (plain quantile bands); >= 1.
  std::size_t rtt_regimes = 3;
  /// A (carrier, RAT) stream needs at least this many downlink ticks AND
  /// this many RTT samples to be fitted; smaller streams are dropped.
  std::uint64_t min_stream_ticks = 24;
  /// Add-k smoothing over *visited* regimes when normalizing transition
  /// rows, so a rarely-left regime is not an absorbing state.
  double smoothing = 0.5;
};

/// Fit one profile from every bundle's pooled evidence. Throws
/// std::runtime_error when options are malformed or no stream clears the
/// sample floor.
SynthProfile fit_profile(const std::vector<const replay::ReplayBundle*>& bundles,
                         const FitOptions& options = {});

/// Single-bundle convenience.
SynthProfile fit_profile(const replay::ReplayBundle& bundle,
                         const FitOptions& options = {});

}  // namespace wheels::synth

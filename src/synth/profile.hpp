// SynthProfile: the serialized regime model a fitter writes and a sampler
// reads.
//
// One profile captures, per (carrier, RAT) stream of a recorded fleet, a
// regime-switching Markov model of the 500 ms link dynamics: the throughput
// marginal discretized into regimes (regime 0 is the outage band), a
// row-stochastic transition matrix between consecutive ticks, and a
// per-regime emission model (an inverse-CDF quantile grid, so sampling a
// regime reproduces that regime's empirical value distribution). RTT gets
// its own independent chain; uplink throughput is emitted conditioned on the
// downlink regime. A per-carrier RAT chain (tech occupancy + transitions)
// drives which stream model is active at each tick, and per-stream outage /
// handover arrival statistics feed the scenario what-if knobs.
//
// The JSON form is versioned (kProfileVersion) and round-trips bit-exactly:
// doubles are written at max_digits10 via measure::csv_double, and the
// parser is a strict line-tracking recursive-descent reader, so a malformed
// or version-skewed profile fails with "profile: line N: ..." instead of
// sampling garbage.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/sim_time.hpp"
#include "radio/technology.hpp"

namespace wheels::synth {

inline constexpr int kProfileVersion = 1;

/// Inverse-CDF emission: `points` are the values at kEmissionGrid evenly
/// spaced quantiles (0, 1/(n-1), ..., 1) of the regime's empirical marginal.
/// Sampling draws u ~ U[0,1) and interpolates linearly between grid points.
struct EmissionModel {
  std::vector<double> points;

  bool empty() const { return points.empty(); }
};

/// Number of quantile grid points per emission model. 33 keeps the
/// within-regime KS error of the piecewise-linear inverse CDF well under
/// the 0.15 validation gate while the profile stays a few KB per stream.
inline constexpr std::size_t kEmissionGrid = 33;

/// One regime-switching chain over a scalar marginal: regimes are value
/// bands (ascending `upper_edges`, the last implicit +inf), `occupancy` is
/// the empirical time share per regime (the chain's entry distribution) and
/// `transitions[i][j]` the probability of moving regime i -> j between
/// consecutive ticks. A regime the recording never visited keeps an empty
/// emission, zero occupancy and zero inbound probability.
struct RegimeChain {
  std::vector<double> upper_edges;  // size = regimes - 1
  std::vector<double> occupancy;    // size = regimes, sums to 1
  std::vector<std::vector<double>> transitions;  // regimes x regimes
  std::vector<EmissionModel> emissions;          // size = regimes

  std::size_t regimes() const { return occupancy.size(); }
};

/// The fitted model of one (carrier, RAT) stream.
struct StreamModel {
  radio::Carrier carrier = radio::Carrier::Verizon;
  radio::Technology tech = radio::Technology::Lte;
  /// Downlink 500 ms ticks the fit consumed (the KS gate's sample floor).
  std::uint64_t n_ticks = 0;
  std::uint64_t n_rtt = 0;
  /// Throughput chain; regime 0 is the outage band (<= outage_mbps).
  RegimeChain dl;
  /// Uplink emission per *downlink* regime (uplink tracks downlink load).
  std::vector<EmissionModel> ul;
  /// Independent RTT chain (no outage band; plain quantile regimes).
  RegimeChain rtt;
  /// Outage arrival process: share of ticks in regime 0 and the mean run
  /// length of an outage, in ticks (informational; the chain itself already
  /// reproduces both — the degraded-coverage what-if scales the chain).
  double outage_fraction = 0.0;
  double mean_outage_ticks = 0.0;
  /// Handover arrivals per tick (KPI rows with handovers > 0).
  double handover_rate = 0.0;
};

/// Per-carrier RAT mix: which fitted techs the carrier visits, their time
/// shares, and the tech-to-tech transition matrix between consecutive ticks
/// (inter-RAT handover process).
struct CarrierMix {
  radio::Carrier carrier = radio::Carrier::Verizon;
  std::vector<radio::Technology> techs;
  std::vector<double> occupancy;
  std::vector<std::vector<double>> transitions;
};

struct SynthProfile {
  int version = kProfileVersion;
  SimMillis tick_ms = 500;
  /// Throughput at or below this is the outage band (regime 0).
  double outage_mbps = 0.1;
  /// config_digest of the fitted bundle(s), ':'-joined — provenance only.
  std::string source_digest;
  std::vector<CarrierMix> mixes;
  std::vector<StreamModel> streams;

  const CarrierMix* find_mix(radio::Carrier c) const;
  const StreamModel* find_stream(radio::Carrier c, radio::Technology t) const;

  /// Versioned JSON rendering; parse_profile(to_json()) reproduces the
  /// profile bit-exactly (doubles at max_digits10).
  std::string to_json() const;
};

/// Inverse of SynthProfile::to_json. Throws std::runtime_error
/// "profile: line N: ..." on malformed JSON, a missing or mistyped key, an
/// unsupported version, or a structurally inconsistent model (ragged
/// matrices, occupancy/emission size mismatches).
SynthProfile parse_profile(std::string_view json);

/// Write / read a profile file. Errors are prefixed with the path.
void write_profile(const SynthProfile& profile, const std::string& path);
SynthProfile read_profile(const std::string& path);

}  // namespace wheels::synth

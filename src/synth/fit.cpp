#include "synth/fit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/obs/metrics.hpp"
#include "core/obs/trace_export.hpp"
#include "measure/enum_names.hpp"
#include "synth/series.hpp"

namespace wheels::synth {

namespace {

double interpolated_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// kEmissionGrid-point inverse-CDF grid of `values`; empty in, empty out.
EmissionModel fit_emission(std::vector<double> values) {
  EmissionModel model;
  if (values.empty()) return model;
  std::sort(values.begin(), values.end());
  model.points.reserve(kEmissionGrid);
  for (std::size_t i = 0; i < kEmissionGrid; ++i) {
    model.points.push_back(interpolated_quantile(
        values, static_cast<double>(i) / (kEmissionGrid - 1)));
  }
  return model;
}

std::size_t classify(const std::vector<double>& upper_edges, double v) {
  for (std::size_t i = 0; i < upper_edges.size(); ++i) {
    if (v <= upper_edges[i]) return i;
  }
  return upper_edges.size();
}

/// Normalize transition counts into a row-stochastic matrix: rows of
/// visited regimes get add-k smoothing over visited regimes (a visited row
/// with no outgoing observations falls back to the visited-occupancy
/// distribution); rows of unvisited regimes stay all-zero.
std::vector<std::vector<double>> normalize_transitions(
    const std::vector<std::vector<std::uint64_t>>& counts,
    const std::vector<std::uint64_t>& visits, double smoothing) {
  const std::size_t n = counts.size();
  std::vector<std::vector<double>> out(n, std::vector<double>(n, 0.0));
  std::uint64_t total_visits = 0;
  for (std::uint64_t v : visits) total_visits += v;
  for (std::size_t i = 0; i < n; ++i) {
    if (visits[i] == 0) continue;
    std::uint64_t row_total = 0;
    for (std::size_t j = 0; j < n; ++j) row_total += counts[i][j];
    double denom = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (visits[j] == 0) continue;
      const double w =
          row_total > 0
              ? static_cast<double>(counts[i][j]) + smoothing
              : static_cast<double>(visits[j]) / static_cast<double>(
                                                     total_visits);
      out[i][j] = w;
      denom += w;
    }
    for (std::size_t j = 0; j < n; ++j) out[i][j] /= denom;
  }
  return out;
}

/// Fit one regime chain over the runs: `edges` fixes the discretization,
/// transitions are counted inside runs only.
RegimeChain fit_chain(const std::vector<std::vector<double>>& runs,
                      std::vector<double> edges, double smoothing,
                      std::uint64_t* transition_pairs) {
  const std::size_t regimes = edges.size() + 1;
  RegimeChain chain;
  chain.upper_edges = std::move(edges);

  std::vector<std::uint64_t> visits(regimes, 0);
  std::vector<std::vector<std::uint64_t>> counts(
      regimes, std::vector<std::uint64_t>(regimes, 0));
  std::vector<std::vector<double>> per_regime(regimes);
  std::uint64_t total = 0;
  for (const std::vector<double>& run : runs) {
    std::size_t prev = 0;
    for (std::size_t i = 0; i < run.size(); ++i) {
      const std::size_t r = classify(chain.upper_edges, run[i]);
      ++visits[r];
      ++total;
      per_regime[r].push_back(run[i]);
      if (i > 0) {
        ++counts[prev][r];
        if (transition_pairs) ++*transition_pairs;
      }
      prev = r;
    }
  }

  chain.occupancy.resize(regimes, 0.0);
  for (std::size_t r = 0; r < regimes; ++r) {
    chain.occupancy[r] =
        static_cast<double>(visits[r]) / static_cast<double>(total);
  }
  chain.transitions = normalize_transitions(counts, visits, smoothing);
  chain.emissions.reserve(regimes);
  for (std::size_t r = 0; r < regimes; ++r) {
    chain.emissions.push_back(fit_emission(std::move(per_regime[r])));
  }
  return chain;
}

/// Ascending regime edges: the outage bound, then equal-probability
/// quantiles of the non-outage marginal. Degenerate marginals (all outage,
/// heavy ties) yield clamped, still-ascending edges whose upper regimes are
/// simply never visited.
std::vector<double> throughput_edges(const std::vector<double>& values,
                                     double outage_mbps, std::size_t regimes) {
  std::vector<double> above;
  for (double v : values) {
    if (v > outage_mbps) above.push_back(v);
  }
  std::sort(above.begin(), above.end());
  std::vector<double> edges{outage_mbps};
  const std::size_t bands = regimes - 1;  // non-outage bands
  for (std::size_t k = 1; k < bands; ++k) {
    const double q = above.empty()
                         ? outage_mbps
                         : interpolated_quantile(
                               above, static_cast<double>(k) / bands);
    edges.push_back(std::max(edges.back(), q));
  }
  return edges;
}

std::vector<double> quantile_edges(std::vector<double> values,
                                   std::size_t regimes) {
  std::sort(values.begin(), values.end());
  std::vector<double> edges;
  for (std::size_t k = 1; k < regimes; ++k) {
    const double q =
        interpolated_quantile(values, static_cast<double>(k) / regimes);
    edges.push_back(edges.empty() ? q : std::max(edges.back(), q));
  }
  return edges;
}

/// Outage arrival statistics: share of ticks in the outage band and the
/// mean length of a maximal outage stretch, in ticks.
void outage_stats(const std::vector<std::vector<double>>& runs,
                  double outage_mbps, double* fraction, double* mean_ticks) {
  std::uint64_t outage = 0, total = 0, stretches = 0;
  for (const std::vector<double>& run : runs) {
    bool in_outage = false;
    for (double v : run) {
      ++total;
      if (v <= outage_mbps) {
        ++outage;
        if (!in_outage) ++stretches;
        in_outage = true;
      } else {
        in_outage = false;
      }
    }
  }
  *fraction = total > 0 ? static_cast<double>(outage) /
                              static_cast<double>(total)
                        : 0.0;
  *mean_ticks = stretches > 0 ? static_cast<double>(outage) /
                                    static_cast<double>(stretches)
                              : 0.0;
}

}  // namespace

SynthProfile fit_profile(
    const std::vector<const replay::ReplayBundle*>& bundles,
    const FitOptions& options) {
  core::obs::ScopedSpan span{"synth.fit", "synth"};
  static const core::obs::Counter regimes_fitted{"synth.regimes"};
  static const core::obs::Counter transitions_fit{"synth.transitions_fit"};

  if (bundles.empty()) throw std::runtime_error{"fit: no input bundles"};
  if (options.tick_ms <= 0) throw std::runtime_error{"fit: tick_ms must be > 0"};
  if (options.throughput_regimes < 2) {
    throw std::runtime_error{"fit: need >= 2 throughput regimes"};
  }
  if (options.rtt_regimes < 1) {
    throw std::runtime_error{"fit: need >= 1 rtt regime"};
  }
  if (options.smoothing < 0.0) {
    throw std::runtime_error{"fit: smoothing must be >= 0"};
  }

  FleetSeries series;
  SynthProfile profile;
  profile.tick_ms = options.tick_ms;
  profile.outage_mbps = options.outage_mbps;
  for (const replay::ReplayBundle* b : bundles) {
    if (b == nullptr) throw std::runtime_error{"fit: null bundle"};
    append_series(series, b->db, options.tick_ms);
    if (!profile.source_digest.empty()) profile.source_digest += ':';
    profile.source_digest += b->manifest.config_digest;
  }

  // Uplink marginals: keyed like the downlink streams, pooled over bundles.
  std::array<std::array<std::vector<double>, radio::kTechnologyCount>,
             radio::kCarrierCount>
      ul_values;
  for (const replay::ReplayBundle* b : bundles) {
    for (const measure::KpiRecord& k : b->db.kpis) {
      if (k.direction != radio::Direction::Uplink) continue;
      ul_values[static_cast<std::size_t>(k.carrier)]
               [static_cast<std::size_t>(k.tech)]
                   .push_back(k.throughput);
    }
  }

  std::uint64_t pairs = 0;
  for (radio::Carrier carrier : radio::kAllCarriers) {
    std::vector<radio::Technology> fitted;
    for (radio::Technology tech : radio::kAllTechnologies) {
      const StreamSeries& ss = series.stream(carrier, tech);
      if (ss.dl_ticks() < options.min_stream_ticks ||
          ss.rtt_ticks() < options.min_stream_ticks) {
        continue;
      }
      StreamModel model;
      model.carrier = carrier;
      model.tech = tech;
      model.n_ticks = ss.dl_ticks();
      model.n_rtt = ss.rtt_ticks();
      model.dl = fit_chain(
          ss.dl_runs,
          throughput_edges(ss.dl_values(), options.outage_mbps,
                           options.throughput_regimes),
          options.smoothing, &pairs);
      model.rtt = fit_chain(ss.rtt_runs,
                            quantile_edges(ss.rtt_values(),
                                           options.rtt_regimes),
                            options.smoothing, &pairs);
      // Uplink: one unconditional emission grid, replicated per dl regime
      // (the schema is conditional so a finer fit can slot in later).
      const EmissionModel ul = fit_emission(
          ul_values[static_cast<std::size_t>(carrier)]
                   [static_cast<std::size_t>(tech)]);
      model.ul.assign(model.dl.regimes(), ul);
      outage_stats(ss.dl_runs, options.outage_mbps, &model.outage_fraction,
                   &model.mean_outage_ticks);
      model.handover_rate =
          static_cast<double>(ss.handover_ticks) /
          static_cast<double>(model.n_ticks);
      for (const RegimeChain* chain : {&model.dl, &model.rtt}) {
        for (double occ : chain->occupancy) {
          if (occ > 0.0) regimes_fitted.add();
        }
      }
      profile.streams.push_back(std::move(model));
      fitted.push_back(tech);
    }
    if (fitted.empty()) continue;

    // The carrier's RAT chain, restricted to the fitted techs: occupancy
    // and tick-adjacent transitions, unfitted ticks skipped (a run through
    // an unfitted tech breaks the adjacency).
    CarrierMix mix;
    mix.carrier = carrier;
    mix.techs = fitted;
    const auto index_of = [&](radio::Technology t) -> std::size_t {
      for (std::size_t i = 0; i < fitted.size(); ++i) {
        if (fitted[i] == t) return i;
      }
      return fitted.size();
    };
    std::vector<std::uint64_t> visits(fitted.size(), 0);
    std::vector<std::vector<std::uint64_t>> counts(
        fitted.size(), std::vector<std::uint64_t>(fitted.size(), 0));
    for (const auto& run :
         series.carriers[static_cast<std::size_t>(carrier)].tech_runs) {
      std::size_t prev = fitted.size();  // sentinel: no adjacency yet
      for (radio::Technology t : run) {
        const std::size_t i = index_of(t);
        if (i == fitted.size()) {
          prev = fitted.size();
          continue;
        }
        ++visits[i];
        if (prev != fitted.size()) {
          ++counts[prev][i];
          ++pairs;
        }
        prev = i;
      }
    }
    std::uint64_t total = 0;
    for (std::uint64_t v : visits) total += v;
    mix.occupancy.resize(fitted.size(), 0.0);
    for (std::size_t i = 0; i < fitted.size(); ++i) {
      mix.occupancy[i] =
          static_cast<double>(visits[i]) / static_cast<double>(total);
    }
    mix.transitions = normalize_transitions(counts, visits, options.smoothing);
    profile.mixes.push_back(std::move(mix));
  }
  transitions_fit.add(pairs);

  if (profile.streams.empty()) {
    throw std::runtime_error{
        "fit: no (carrier, tech) stream clears the sample floor of " +
        std::to_string(options.min_stream_ticks) +
        " downlink ticks and RTT samples"};
  }
  return profile;
}

SynthProfile fit_profile(const replay::ReplayBundle& bundle,
                         const FitOptions& options) {
  return fit_profile(std::vector<const replay::ReplayBundle*>{&bundle},
                     options);
}

}  // namespace wheels::synth

// Distributional validation of synthesized bundles against their source.
//
// The acceptance spine of the synthesis subsystem: per fitted (carrier,
// RAT) stream, the exact two-sample KS distance (analysis::ks_distance)
// between the source and the synthesized 500 ms downlink-throughput
// marginals, and between the RTT marginals. A stream the synthesis did not
// visit often enough for the statistic to mean anything (fewer than
// kMinSynthSamples ticks) is reported but excluded from the gate.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "measure/records.hpp"
#include "synth/profile.hpp"

namespace wheels::synth {

/// Synthesized sample floor below which a stream's KS is not gated: the
/// statistic's own sampling noise at n = 32 (~0.24 at 95%) would swamp the
/// 0.15 gate. Scenario specs behind a gate must sample long enough.
inline constexpr std::uint64_t kMinSynthSamples = 32;

struct StreamKs {
  radio::Carrier carrier = radio::Carrier::Verizon;
  radio::Technology tech = radio::Technology::Lte;
  std::uint64_t n_source = 0;  // source downlink ticks
  std::uint64_t n_synth = 0;   // synthesized downlink ticks
  std::uint64_t n_source_rtt = 0;
  std::uint64_t n_synth_rtt = 0;
  double ks_throughput = 0.0;
  double ks_rtt = 0.0;
  /// Both marginals cleared kMinSynthSamples, so the KS values are gated.
  bool gated = false;
};

struct ValidationReport {
  std::vector<StreamKs> streams;

  /// Largest gated KS over both marginals; 0 when nothing is gated.
  double max_ks() const;
  /// Every gated stream's throughput AND RTT KS <= gate, and at least one
  /// stream was gated.
  bool passes(double gate) const;
};

/// Compare the synthesized db against the source db over the profile's
/// fitted streams. `tick_ms` must be the profile's tick (run adjacency).
ValidationReport validate_synthesis(const measure::ConsolidatedDb& source,
                                    const measure::ConsolidatedDb& synth,
                                    const SynthProfile& profile);

/// Render the per-stream KS table with a PASS/FAIL verdict line.
void print_validation(std::ostream& os, const ValidationReport& report,
                      double gate);

}  // namespace wheels::synth

#include "synth/profile.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/json.hpp"
#include "core/obs/metrics.hpp"
#include "measure/csv_export.hpp"
#include "measure/enum_names.hpp"

namespace wheels::synth {

namespace {

// ---------------------------------------------------------------------------
// Writer. Doubles go through measure::csv_double (max_digits10), so
// parse_profile(to_json()) reproduces every double bit-exactly.

void write_doubles(std::ostream& os, const std::vector<double>& xs) {
  os << '[';
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) os << ", ";
    os << measure::csv_double(xs[i]);
  }
  os << ']';
}

void write_matrix(std::ostream& os, std::string_view indent,
                  const std::vector<std::vector<double>>& m) {
  os << "[\n";
  for (std::size_t i = 0; i < m.size(); ++i) {
    os << indent << "  ";
    write_doubles(os, m[i]);
    os << (i + 1 < m.size() ? ",\n" : "\n");
  }
  os << indent << ']';
}

void write_emissions(std::ostream& os, std::string_view indent,
                     const std::vector<EmissionModel>& em) {
  os << "[\n";
  for (std::size_t i = 0; i < em.size(); ++i) {
    os << indent << "  ";
    write_doubles(os, em[i].points);
    os << (i + 1 < em.size() ? ",\n" : "\n");
  }
  os << indent << ']';
}

void write_chain(std::ostream& os, std::string_view indent,
                 const RegimeChain& chain) {
  os << "{\n";
  os << indent << "  \"upper_edges\": ";
  write_doubles(os, chain.upper_edges);
  os << ",\n" << indent << "  \"occupancy\": ";
  write_doubles(os, chain.occupancy);
  os << ",\n" << indent << "  \"transitions\": ";
  write_matrix(os, std::string{indent} + "  ", chain.transitions);
  os << ",\n" << indent << "  \"emissions\": ";
  write_emissions(os, std::string{indent} + "  ", chain.emissions);
  os << '\n' << indent << '}';
}

// ---------------------------------------------------------------------------
// Parser: the shared strict line-tracking JSON reader (core::json), bound to
// the "profile: line N: ..." error prefix — the satellite contract that
// makes a hand-edited or version-skewed profile debuggable. The wrappers
// below keep the decode code reading like a grammar.

using JsonValue = core::json::Value;

const core::json::Doc& doc() {
  static const core::json::Doc d{"profile"};
  return d;
}

[[noreturn]] void fail(int line, const std::string& msg) {
  doc().fail(line, msg);
}

const JsonValue& get(const JsonValue& obj, std::string_view key) {
  return doc().get(obj, key);
}

const JsonValue& as(const JsonValue& v, JsonValue::Kind kind,
                    std::string_view what) {
  return doc().as(v, kind, std::string{what});
}

double num(const JsonValue& obj, std::string_view key) {
  return doc().num(obj, key);
}

std::string str(const JsonValue& obj, std::string_view key) {
  return doc().str(obj, key);
}

std::vector<double> doubles(const JsonValue& v) { return doc().doubles(v); }

std::vector<std::vector<double>> matrix(const JsonValue& v, std::size_t rows,
                                        std::size_t cols,
                                        std::string_view what) {
  as(v, JsonValue::Kind::Array, "an array for " + std::string{what});
  if (v.items.size() != rows) {
    fail(v.line, std::string{what} + ": expected " + std::to_string(rows) +
                     " rows, got " + std::to_string(v.items.size()));
  }
  std::vector<std::vector<double>> out;
  out.reserve(rows);
  for (const JsonValue& row : v.items) {
    std::vector<double> r = doubles(row);
    if (r.size() != cols) {
      fail(row.line, std::string{what} + ": expected " + std::to_string(cols) +
                         " columns, got " + std::to_string(r.size()));
    }
    out.push_back(std::move(r));
  }
  return out;
}

radio::Carrier parse_carrier_at(const JsonValue& obj) {
  const JsonValue& v = get(obj, "carrier");
  as(v, JsonValue::Kind::String, "a string for \"carrier\"");
  try {
    return measure::names::parse_carrier(v.text);
  } catch (const std::exception& e) {
    fail(v.line, e.what());
  }
}

radio::Technology parse_tech_at(const JsonValue& v) {
  as(v, JsonValue::Kind::String, "a technology name");
  try {
    return measure::names::parse_technology(v.text);
  } catch (const std::exception& e) {
    fail(v.line, e.what());
  }
}

void check_stochastic_rows(const JsonValue& where,
                           const std::vector<std::vector<double>>& m,
                           std::string_view what) {
  for (std::size_t i = 0; i < m.size(); ++i) {
    double sum = 0.0;
    for (double p : m[i]) {
      if (p < 0.0 || p > 1.0 || !std::isfinite(p)) {
        fail(where.line, std::string{what} + ": row " + std::to_string(i) +
                             " has a probability outside [0, 1]");
      }
      sum += p;
    }
    // An all-zero row marks a regime the recording never visited; any
    // visited row must be (numerically) stochastic.
    if (sum != 0.0 && std::abs(sum - 1.0) > 1e-9) {
      fail(where.line, std::string{what} + ": row " + std::to_string(i) +
                           " sums to " + std::to_string(sum) + ", not 1");
    }
  }
}

RegimeChain parse_chain(const JsonValue& v, std::string_view what) {
  as(v, JsonValue::Kind::Object, "an object for " + std::string{what});
  RegimeChain chain;
  chain.upper_edges = doubles(get(v, "upper_edges"));
  chain.occupancy = doubles(get(v, "occupancy"));
  const std::size_t regimes = chain.occupancy.size();
  if (regimes == 0) fail(v.line, std::string{what} + ": no regimes");
  if (chain.upper_edges.size() + 1 != regimes) {
    fail(get(v, "upper_edges").line,
         std::string{what} + ": " + std::to_string(regimes) +
             " regimes need " + std::to_string(regimes - 1) + " edges, got " +
             std::to_string(chain.upper_edges.size()));
  }
  const JsonValue& tr = get(v, "transitions");
  chain.transitions =
      matrix(tr, regimes, regimes, std::string{what} + ".transitions");
  check_stochastic_rows(tr, chain.transitions,
                        std::string{what} + ".transitions");
  const JsonValue& em = get(v, "emissions");
  as(em, JsonValue::Kind::Array, "an array for emissions");
  if (em.items.size() != regimes) {
    fail(em.line, std::string{what} + ".emissions: expected " +
                      std::to_string(regimes) + " entries, got " +
                      std::to_string(em.items.size()));
  }
  for (const JsonValue& e : em.items) {
    EmissionModel model;
    model.points = doubles(e);
    if (model.points.size() == 1) {
      fail(e.line, std::string{what} +
                       ".emissions: a non-empty emission needs >= 2 points");
    }
    chain.emissions.push_back(std::move(model));
  }
  for (std::size_t i = 0; i < regimes; ++i) {
    if (chain.occupancy[i] > 0.0 && chain.emissions[i].empty()) {
      fail(em.line, std::string{what} + ": regime " + std::to_string(i) +
                        " is occupied but has no emission model");
    }
  }
  return chain;
}

}  // namespace

const CarrierMix* SynthProfile::find_mix(radio::Carrier c) const {
  for (const CarrierMix& m : mixes) {
    if (m.carrier == c) return &m;
  }
  return nullptr;
}

const StreamModel* SynthProfile::find_stream(radio::Carrier c,
                                             radio::Technology t) const {
  for (const StreamModel& s : streams) {
    if (s.carrier == c && s.tech == t) return &s;
  }
  return nullptr;
}

std::string SynthProfile::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"version\": " << version << ",\n";
  os << "  \"tick_ms\": " << tick_ms << ",\n";
  os << "  \"outage_mbps\": " << measure::csv_double(outage_mbps) << ",\n";
  os << "  \"source_digest\": \"" << core::json::escape(source_digest)
     << "\",\n";
  os << "  \"mixes\": [\n";
  for (std::size_t i = 0; i < mixes.size(); ++i) {
    const CarrierMix& m = mixes[i];
    os << "    {\n";
    os << "      \"carrier\": \"" << measure::names::to_name(m.carrier)
       << "\",\n";
    os << "      \"techs\": [";
    for (std::size_t j = 0; j < m.techs.size(); ++j) {
      if (j) os << ", ";
      os << '"' << measure::names::to_name(m.techs[j]) << '"';
    }
    os << "],\n      \"occupancy\": ";
    write_doubles(os, m.occupancy);
    os << ",\n      \"transitions\": ";
    write_matrix(os, "      ", m.transitions);
    os << "\n    }" << (i + 1 < mixes.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  os << "  \"streams\": [\n";
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const StreamModel& s = streams[i];
    os << "    {\n";
    os << "      \"carrier\": \"" << measure::names::to_name(s.carrier)
       << "\",\n";
    os << "      \"tech\": \"" << measure::names::to_name(s.tech) << "\",\n";
    os << "      \"n_ticks\": " << s.n_ticks << ",\n";
    os << "      \"n_rtt\": " << s.n_rtt << ",\n";
    os << "      \"outage_fraction\": " << measure::csv_double(s.outage_fraction)
       << ",\n";
    os << "      \"mean_outage_ticks\": "
       << measure::csv_double(s.mean_outage_ticks) << ",\n";
    os << "      \"handover_rate\": " << measure::csv_double(s.handover_rate)
       << ",\n";
    os << "      \"dl\": ";
    write_chain(os, "      ", s.dl);
    os << ",\n      \"ul\": ";
    write_emissions(os, "      ", s.ul);
    os << ",\n      \"rtt\": ";
    write_chain(os, "      ", s.rtt);
    os << "\n    }" << (i + 1 < streams.size() ? ",\n" : "\n");
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

SynthProfile parse_profile(std::string_view json) {
  const JsonValue root = doc().parse(json);
  as(root, JsonValue::Kind::Object, "a profile object");

  SynthProfile p;
  const JsonValue& version = get(root, "version");
  as(version, JsonValue::Kind::Number, "a number for \"version\"");
  p.version = static_cast<int>(version.number);
  if (p.version != kProfileVersion) {
    fail(version.line, "unsupported profile version " +
                           std::to_string(p.version) + " (this build reads " +
                           std::to_string(kProfileVersion) + ")");
  }
  p.tick_ms = static_cast<SimMillis>(num(root, "tick_ms"));
  if (p.tick_ms <= 0) fail(get(root, "tick_ms").line, "tick_ms must be > 0");
  p.outage_mbps = num(root, "outage_mbps");
  p.source_digest = str(root, "source_digest");

  const JsonValue& mixes = get(root, "mixes");
  as(mixes, JsonValue::Kind::Array, "an array for \"mixes\"");
  for (const JsonValue& mv : mixes.items) {
    as(mv, JsonValue::Kind::Object, "a mix object");
    CarrierMix mix;
    mix.carrier = parse_carrier_at(mv);
    const JsonValue& techs = get(mv, "techs");
    as(techs, JsonValue::Kind::Array, "an array for \"techs\"");
    for (const JsonValue& tv : techs.items) {
      mix.techs.push_back(parse_tech_at(tv));
    }
    if (mix.techs.empty()) fail(techs.line, "mix has no techs");
    mix.occupancy = doubles(get(mv, "occupancy"));
    if (mix.occupancy.size() != mix.techs.size()) {
      fail(get(mv, "occupancy").line,
           "mix occupancy size " + std::to_string(mix.occupancy.size()) +
               " != techs size " + std::to_string(mix.techs.size()));
    }
    const JsonValue& tr = get(mv, "transitions");
    mix.transitions =
        matrix(tr, mix.techs.size(), mix.techs.size(), "mix.transitions");
    check_stochastic_rows(tr, mix.transitions, "mix.transitions");
    for (const CarrierMix& seen : p.mixes) {
      if (seen.carrier == mix.carrier) {
        fail(mv.line, "duplicate mix for carrier " +
                          std::string{measure::names::to_name(mix.carrier)});
      }
    }
    p.mixes.push_back(std::move(mix));
  }

  const JsonValue& streams = get(root, "streams");
  as(streams, JsonValue::Kind::Array, "an array for \"streams\"");
  for (const JsonValue& sv : streams.items) {
    as(sv, JsonValue::Kind::Object, "a stream object");
    StreamModel s;
    s.carrier = parse_carrier_at(sv);
    s.tech = parse_tech_at(get(sv, "tech"));
    s.n_ticks = static_cast<std::uint64_t>(num(sv, "n_ticks"));
    s.n_rtt = static_cast<std::uint64_t>(num(sv, "n_rtt"));
    s.outage_fraction = num(sv, "outage_fraction");
    s.mean_outage_ticks = num(sv, "mean_outage_ticks");
    s.handover_rate = num(sv, "handover_rate");
    s.dl = parse_chain(get(sv, "dl"), "dl");
    const JsonValue& ul = get(sv, "ul");
    as(ul, JsonValue::Kind::Array, "an array for \"ul\"");
    if (ul.items.size() != s.dl.regimes()) {
      fail(ul.line, "ul: expected one emission per dl regime (" +
                        std::to_string(s.dl.regimes()) + "), got " +
                        std::to_string(ul.items.size()));
    }
    for (const JsonValue& e : ul.items) {
      EmissionModel model;
      model.points = doubles(e);
      if (model.points.size() == 1) {
        fail(e.line, "ul: a non-empty emission needs >= 2 points");
      }
      s.ul.push_back(std::move(model));
    }
    s.rtt = parse_chain(get(sv, "rtt"), "rtt");
    if (p.find_stream(s.carrier, s.tech) != nullptr) {
      fail(sv.line,
           "duplicate stream " +
               std::string{measure::names::to_name(s.carrier)} + "/" +
               std::string{measure::names::to_name(s.tech)});
    }
    p.streams.push_back(std::move(s));
  }

  // Every mix tech must have a stream model behind it, or sampling that
  // tech would have nothing to emit.
  for (const CarrierMix& mix : p.mixes) {
    for (radio::Technology t : mix.techs) {
      if (p.find_stream(mix.carrier, t) == nullptr) {
        fail(get(root, "mixes").line,
             "mix for " + std::string{measure::names::to_name(mix.carrier)} +
                 " names tech " +
                 std::string{measure::names::to_name(t)} +
                 " with no fitted stream");
      }
    }
  }
  return p;
}

void write_profile(const SynthProfile& profile, const std::string& path) {
  static const core::obs::Counter profiles_written{"synth.profiles_written"};
  std::ofstream os{path};
  if (!os) throw std::runtime_error{path + ": cannot open for writing"};
  os << profile.to_json();
  if (!os) throw std::runtime_error{path + ": write failed"};
  profiles_written.add();
}

SynthProfile read_profile(const std::string& path) {
  std::ifstream is{path};
  if (!is) throw std::runtime_error{path + ": cannot open"};
  std::ostringstream buf;
  buf << is.rdbuf();
  try {
    return parse_profile(buf.str());
  } catch (const std::exception& e) {
    throw std::runtime_error{path + ": " + e.what()};
  }
}

}  // namespace wheels::synth

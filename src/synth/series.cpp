#include "synth/series.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace wheels::synth {

namespace {

constexpr std::size_t cidx(radio::Carrier c) {
  return static_cast<std::size_t>(c);
}
constexpr std::size_t tidx(radio::Technology t) {
  return static_cast<std::size_t>(t);
}

}  // namespace

std::uint64_t StreamSeries::dl_ticks() const {
  std::uint64_t n = 0;
  for (const auto& run : dl_runs) n += run.size();
  return n;
}

std::uint64_t StreamSeries::rtt_ticks() const {
  std::uint64_t n = 0;
  for (const auto& run : rtt_runs) n += run.size();
  return n;
}

std::vector<double> StreamSeries::dl_values() const {
  std::vector<double> out;
  out.reserve(dl_ticks());
  for (const auto& run : dl_runs) out.insert(out.end(), run.begin(), run.end());
  return out;
}

std::vector<double> StreamSeries::rtt_values() const {
  std::vector<double> out;
  out.reserve(rtt_ticks());
  for (const auto& run : rtt_runs) {
    out.insert(out.end(), run.begin(), run.end());
  }
  return out;
}

StreamSeries& FleetSeries::stream(radio::Carrier c, radio::Technology t) {
  return streams[cidx(c)][tidx(t)];
}

const StreamSeries& FleetSeries::stream(radio::Carrier c,
                                        radio::Technology t) const {
  return streams[cidx(c)][tidx(t)];
}

void append_series(FleetSeries& out, const measure::ConsolidatedDb& db,
                   SimMillis tick_ms) {
  // Group downlink KPI rows by test and order by time; the map gives a
  // deterministic test order regardless of row order in the db.
  struct DlTick {
    SimMillis t;
    radio::Technology tech;
    double throughput;
    bool handover;
  };
  std::map<std::uint32_t, std::vector<DlTick>> dl_by_test;
  std::map<std::uint32_t, radio::Carrier> test_carrier;
  for (const measure::KpiRecord& k : db.kpis) {
    if (k.direction != radio::Direction::Downlink) continue;
    dl_by_test[k.test_id].push_back(
        {k.t, k.tech, k.throughput, k.handovers > 0});
    test_carrier[k.test_id] = k.carrier;
  }
  for (auto& [test_id, ticks] : dl_by_test) {
    std::sort(ticks.begin(), ticks.end(),
              [](const DlTick& a, const DlTick& b) { return a.t < b.t; });
    const radio::Carrier carrier = test_carrier[test_id];
    CarrierSeries& cs = out.carriers[cidx(carrier)];
    std::vector<radio::Technology>* tech_run = nullptr;
    std::vector<double>* dl_run = nullptr;
    for (std::size_t i = 0; i < ticks.size(); ++i) {
      const DlTick& tk = ticks[i];
      const bool contiguous = i > 0 && tk.t == ticks[i - 1].t + tick_ms;
      if (!contiguous) {
        cs.tech_runs.emplace_back();
        tech_run = &cs.tech_runs.back();
      }
      tech_run->push_back(tk.tech);
      StreamSeries& ss = out.stream(carrier, tk.tech);
      // The per-stream run additionally breaks on a RAT change: the tick
      // after a switch is the *new* stream's entry, not a transition inside
      // the old one.
      const bool same_stream =
          contiguous && ticks[i - 1].tech == tk.tech && dl_run != nullptr;
      if (!same_stream) {
        ss.dl_runs.emplace_back();
        dl_run = &ss.dl_runs.back();
      }
      dl_run->push_back(tk.throughput);
      if (tk.handover) ++ss.handover_ticks;
    }
  }

  struct RttTick {
    SimMillis t;
    radio::Technology tech;
    double rtt;
  };
  std::map<std::uint32_t, std::vector<RttTick>> rtt_by_test;
  std::map<std::uint32_t, radio::Carrier> rtt_carrier;
  for (const measure::RttRecord& r : db.rtts) {
    rtt_by_test[r.test_id].push_back({r.t, r.tech, r.rtt});
    rtt_carrier[r.test_id] = r.carrier;
  }
  for (auto& [test_id, ticks] : rtt_by_test) {
    std::sort(ticks.begin(), ticks.end(),
              [](const RttTick& a, const RttTick& b) { return a.t < b.t; });
    const radio::Carrier carrier = rtt_carrier[test_id];
    std::vector<double>* run = nullptr;
    for (std::size_t i = 0; i < ticks.size(); ++i) {
      const RttTick& tk = ticks[i];
      const bool same_run = i > 0 && tk.t == ticks[i - 1].t + tick_ms &&
                            ticks[i - 1].tech == tk.tech && run != nullptr;
      StreamSeries& ss = out.stream(carrier, tk.tech);
      if (!same_run) {
        ss.rtt_runs.emplace_back();
        run = &ss.rtt_runs.back();
      }
      run->push_back(tk.rtt);
    }
  }
}

FleetSeries extract_series(const measure::ConsolidatedDb& db,
                           SimMillis tick_ms) {
  FleetSeries out;
  append_series(out, db, tick_ms);
  return out;
}

}  // namespace wheels::synth

// Per-(carrier, RAT) tick series extracted from a ConsolidatedDb.
//
// The fitter and the KS validator both need the same view of a bundle: the
// time-ordered 500 ms downlink-throughput and RTT sequences of every
// (carrier, technology) stream, split into *runs* — maximal stretches of
// tick-contiguous rows of one test — so Markov transitions are only ever
// counted between ticks that really were adjacent in the recording, never
// across test boundaries, gaps, or (for the per-stream series) RAT changes.
// The per-carrier technology sequence keeps RAT changes inside a run: that
// is the inter-RAT transition evidence the carrier mix chain is fitted from.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "measure/records.hpp"
#include "radio/technology.hpp"

namespace wheels::synth {

/// One (carrier, tech) stream's evidence.
struct StreamSeries {
  /// Downlink KPI throughput, grouped into tick-contiguous same-tech runs.
  std::vector<std::vector<double>> dl_runs;
  /// RTT samples, grouped into tick-contiguous runs.
  std::vector<std::vector<double>> rtt_runs;
  /// Downlink ticks whose KPI row recorded at least one handover.
  std::uint64_t handover_ticks = 0;

  std::uint64_t dl_ticks() const;
  std::uint64_t rtt_ticks() const;
  /// All run values concatenated in run order (the stream's marginal).
  std::vector<double> dl_values() const;
  std::vector<double> rtt_values() const;
};

/// One carrier's RAT sequence evidence.
struct CarrierSeries {
  /// Tech of every downlink tick, grouped into tick-contiguous runs of one
  /// test (runs do NOT break on tech change — that change is the signal).
  std::vector<std::vector<radio::Technology>> tech_runs;
};

struct FleetSeries {
  std::array<std::array<StreamSeries, radio::kTechnologyCount>,
             radio::kCarrierCount>
      streams;
  std::array<CarrierSeries, radio::kCarrierCount> carriers;

  StreamSeries& stream(radio::Carrier c, radio::Technology t);
  const StreamSeries& stream(radio::Carrier c, radio::Technology t) const;
};

/// Append `db`'s evidence to `out`. Rows are grouped by test id and sorted
/// by timestamp before run-splitting, so the extraction is independent of
/// the database's row order; a run breaks wherever the timestamp step is not
/// exactly `tick_ms`.
void append_series(FleetSeries& out, const measure::ConsolidatedDb& db,
                   SimMillis tick_ms);

FleetSeries extract_series(const measure::ConsolidatedDb& db,
                           SimMillis tick_ms);

}  // namespace wheels::synth

// Sample unlimited synthetic drive cycles from a fitted SynthProfile.
//
// Every uniform the sampler consumes is a counter-based draw: a splitmix64
// hash of (seed, carrier, cycle index, tick index, channel), never a shared
// generator — so any cycle can be produced independently, reproduced alone
// or in a batch, and the bundle is byte-identical at every thread count.
// Per cycle and carrier, a RAT mix chain picks the active technology each
// tick (handover arrivals reset the throughput regime — post-handover
// re-establishment — while inter-RAT switching is the mix chain itself),
// the active stream's regime chains step and emit 500 ms downlink/uplink
// throughput and RTT, and the scenario knobs (rush-hour load, degraded
// coverage, RAT cap) reshape the draw. Cycles flow through the regular
// ingest join (join_streams), so a synthesized bundle replays through
// ReplayCampaign / ReplayFleet exactly like a recorded one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ingest/resample.hpp"
#include "ingest/stream.hpp"
#include "replay/ingest.hpp"
#include "synth/profile.hpp"

namespace wheels::synth {

struct ScenarioSpec {
  /// Drive-cycle length in seconds. 0 derives it from route_km / speed_kmh.
  double duration_s = 120.0;
  /// Route length; with duration_s = 0, cycle duration is the drive time of
  /// this route at speed_kmh.
  double route_km = 0.0;
  double speed_kmh = 40.0;
  /// Rush-hour load multiplier: capacities divide by it, RTTs inflate by
  /// 1 + 0.3 * (load - 1). 1.0 reproduces the fitted conditions.
  double load = 1.0;
  /// Degraded-coverage what-if: multiplies the probability of entering the
  /// throughput outage regime (a stream that never recorded an outage has
  /// no outage emission and stays outage-free). 1.0 = as fitted.
  double outage_factor = 1.0;
  /// Cap the RAT mix at this tier (e.g. LTE-only what-if). A carrier whose
  /// fitted techs are all above the cap is an error.
  std::optional<radio::Technology> max_tier;
  /// Carriers to synthesize; empty = every carrier in the profile.
  std::vector<radio::Carrier> carriers;
};

/// Parse "key=value[,key=value...]": duration_s, route_km, speed_kmh, load,
/// outage_factor, max_tier (technology name), carriers
/// (carrier[+carrier...], canonical names). Empty spec = defaults. Throws
/// std::runtime_error naming the offending key or value.
ScenarioSpec parse_scenario_spec(const std::string& spec);

/// One-line human rendering of the resolved spec.
std::string scenario_summary(const ScenarioSpec& spec, SimMillis tick_ms);

/// Canonical machine rendering of the spec: every field, fixed order,
/// doubles at %.17g — two specs produce the same string iff they sample the
/// same cycles. wheelsd hashes this into its synth-job cache key.
std::string scenario_canonical(const ScenarioSpec& spec);

/// Ticks per cycle under `spec` (>= 1).
std::int64_t cycle_ticks(const ScenarioSpec& spec, SimMillis tick_ms);

/// Stream one carrier's cycles [first_cycle, first_cycle + cycles) into
/// `sink`: cycle j's ticks start at (j - first_cycle) * cycle span, with an
/// inter-cycle gap that splits cycles into separate drive cycles under
/// sample_resample_spec(). A given (profile, spec, seed, carrier, cycle)
/// always produces the same points, wherever and however often it runs.
void sample_stream(const SynthProfile& profile, const ScenarioSpec& spec,
                   std::uint64_t seed, radio::Carrier carrier, int first_cycle,
                   int cycles, ingest::PointSink& sink);

/// The resample spec a sampled stream is joined under: the profile's tick,
/// hold fill, and a gap threshold the inter-cycle gap exceeds.
ingest::ResampleSpec sample_resample_spec(const SynthProfile& profile);

/// Synthesize `cycles` drive cycles (indices first_cycle ..) for every
/// selected carrier and join them into one validated ReplayBundle via
/// ingest::join_streams — byte-identical for every `threads` (0 = auto).
/// The manifest digest hashes the joined ticks; manifest.seed records the
/// sampling seed.
replay::ReplayBundle sample_bundle(const SynthProfile& profile,
                                   const ScenarioSpec& spec,
                                   std::uint64_t seed, int first_cycle,
                                   int cycles, int threads = 1);

/// Sample a bundle and write it into `directory` (the callable job entry
/// point wheelsd schedules). Returns the manifest the bundle was written
/// with; `canonical_provenance` pins its wall-clock/threads fields
/// (core::obs::canonicalize_provenance) so identical requests produce
/// byte-identical bundles.
core::obs::RunManifest sample_to_bundle(const SynthProfile& profile,
                                        const ScenarioSpec& spec,
                                        std::uint64_t seed, int first_cycle,
                                        int cycles, int threads,
                                        const std::string& directory,
                                        bool canonical_provenance = false);

}  // namespace wheels::synth

#include "synth/sample.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/obs/metrics.hpp"
#include "core/obs/trace_export.hpp"
#include "ingest/join.hpp"
#include "measure/csv_export.hpp"
#include "measure/enum_names.hpp"

namespace wheels::synth {

namespace {

/// splitmix64 finaliser (the ue_pool discipline): every uniform is a hash of
/// its coordinates, so there is no generator state to share or sequence.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double u01(std::uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

/// Draw channels within one tick.
enum Channel : std::uint64_t {
  kChTech = 0,
  kChDlStep = 1,
  kChDlEmit = 2,
  kChUlEmit = 3,
  kChRttStep = 4,
  kChRttEmit = 5,
  kChHandover = 6,
  kChHandoverRegime = 7,
  kChannels = 8,
};

struct DrawStream {
  std::uint64_t base;

  DrawStream(std::uint64_t seed, radio::Carrier carrier, std::int64_t cycle)
      : base(mix64(seed ^ mix64(0x5eedc0de +
                                static_cast<std::uint64_t>(carrier) * 0x101) ^
                   mix64(0xc7c1eull ^ static_cast<std::uint64_t>(cycle)))) {}

  double at(std::int64_t tick, Channel ch) const {
    return u01(mix64(base ^ (static_cast<std::uint64_t>(tick) * kChannels +
                             static_cast<std::uint64_t>(ch) + 1) *
                                0x9e3779b97f4a7c15ull));
  }
};

/// Invert the kEmissionGrid-point inverse CDF at u in [0, 1).
double emit(const EmissionModel& em, double u) {
  const std::size_t n = em.points.size();
  const double pos = u * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, n - 1);
  const double frac = pos - static_cast<double>(lo);
  return em.points[lo] + (em.points[hi] - em.points[lo]) * frac;
}

/// Sample an index from a (sub-)stochastic weight row; the row must carry
/// positive mass. Deterministic: walks the row in index order.
std::size_t sample_index(const std::vector<double>& weights, double u) {
  double total = 0.0;
  for (double w : weights) total += w;
  double x = u * total;
  std::size_t last = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    last = i;
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return last;  // floating-point tail: the last positive entry
}

/// The degraded-coverage what-if applied to one dl transition/occupancy
/// row: scale the outage-regime mass by `factor` (clamped to 0.95 so the
/// chain can always leave), renormalizing the rest. A row with no outage
/// mass is returned unchanged — an unobserved outage cannot be synthesized.
std::vector<double> boost_outage(std::vector<double> row, double factor) {
  if (factor == 1.0 || row.empty() || row[0] <= 0.0) return row;
  double rest = 0.0;
  for (std::size_t i = 1; i < row.size(); ++i) rest += row[i];
  const double p0 = std::min(row[0] * factor, rest > 0.0 ? 0.95 : 1.0);
  if (rest > 0.0) {
    const double scale = (1.0 - p0) / rest;
    for (std::size_t i = 1; i < row.size(); ++i) row[i] *= scale;
  }
  row[0] = p0;
  return row;
}

/// The carrier's mix restricted by the spec's RAT cap: indices into
/// mix.techs that stay allowed.
std::vector<std::size_t> allowed_techs(const CarrierMix& mix,
                                       const ScenarioSpec& spec) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < mix.techs.size(); ++i) {
    if (!spec.max_tier.has_value() ||
        radio::technology_tier(mix.techs[i]) <=
            radio::technology_tier(*spec.max_tier)) {
      out.push_back(i);
    }
  }
  return out;
}

/// Restrict a weight row to the allowed indices (others zeroed). Falls back
/// to `fallback` (same restriction) when nothing survives.
std::vector<double> restrict_row(const std::vector<double>& row,
                                 const std::vector<std::size_t>& allowed,
                                 const std::vector<double>& fallback) {
  std::vector<double> out(row.size(), 0.0);
  double mass = 0.0;
  for (std::size_t i : allowed) {
    out[i] = row[i];
    mass += row[i];
  }
  if (mass > 0.0) return out;
  for (std::size_t i : allowed) out[i] = fallback[i];
  return out;
}

void check_spec(const ScenarioSpec& spec) {
  if (spec.duration_s < 0.0 || spec.route_km < 0.0) {
    throw std::runtime_error{"spec: duration_s/route_km must be >= 0"};
  }
  if (spec.duration_s == 0.0 && spec.route_km == 0.0) {
    throw std::runtime_error{"spec: need duration_s > 0 or route_km > 0"};
  }
  if (spec.route_km > 0.0 && spec.speed_kmh <= 0.0) {
    throw std::runtime_error{"spec: route_km needs speed_kmh > 0"};
  }
  if (spec.load <= 0.0) throw std::runtime_error{"spec: load must be > 0"};
  if (spec.outage_factor < 0.0) {
    throw std::runtime_error{"spec: outage_factor must be >= 0"};
  }
}

double cycle_duration_s(const ScenarioSpec& spec) {
  if (spec.duration_s > 0.0) return spec.duration_s;
  return spec.route_km / spec.speed_kmh * 3600.0;
}

/// Inter-cycle spacing: cycles land gap-split into separate drive cycles.
SimMillis cycle_stride(const ScenarioSpec& spec, SimMillis tick_ms) {
  return cycle_ticks(spec, tick_ms) * tick_ms + 4 * tick_ms;
}

}  // namespace

std::int64_t cycle_ticks(const ScenarioSpec& spec, SimMillis tick_ms) {
  check_spec(spec);
  const double ticks = cycle_duration_s(spec) * 1000.0 /
                       static_cast<double>(tick_ms);
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(ticks));
}

ingest::ResampleSpec sample_resample_spec(const SynthProfile& profile) {
  ingest::ResampleSpec spec;
  spec.tick_ms = profile.tick_ms;
  spec.fill = ingest::GapFill::Hold;
  spec.max_gap_ms = 2 * profile.tick_ms;
  return spec;
}

ScenarioSpec parse_scenario_spec(const std::string& text) {
  ScenarioSpec spec;
  if (text.empty()) return spec;
  std::istringstream is{text};
  std::string item;
  while (std::getline(is, item, ',')) {
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::runtime_error{"spec: expected key=value, got '" + item + "'"};
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    const auto number = [&]() {
      char* end = nullptr;
      const double v = std::strtod(value.c_str(), &end);
      if (end != value.c_str() + value.size() || value.empty()) {
        throw std::runtime_error{"spec: " + key + ": malformed number '" +
                                 value + "'"};
      }
      return v;
    };
    if (key == "duration_s") {
      spec.duration_s = number();
    } else if (key == "route_km") {
      spec.route_km = number();
      if (spec.duration_s == 120.0) spec.duration_s = 0.0;  // route sizes it
    } else if (key == "speed_kmh") {
      spec.speed_kmh = number();
    } else if (key == "load") {
      spec.load = number();
    } else if (key == "outage_factor") {
      spec.outage_factor = number();
    } else if (key == "max_tier") {
      spec.max_tier = measure::names::parse_technology(value);
    } else if (key == "carriers") {
      std::istringstream cs{value};
      std::string name;
      while (std::getline(cs, name, '+')) {
        spec.carriers.push_back(measure::names::parse_carrier(name));
      }
      if (spec.carriers.empty()) {
        throw std::runtime_error{"spec: carriers: empty list"};
      }
    } else {
      throw std::runtime_error{"spec: unknown key '" + key + "'"};
    }
  }
  check_spec(spec);
  return spec;
}

std::string scenario_summary(const ScenarioSpec& spec, SimMillis tick_ms) {
  std::ostringstream os;
  os << cycle_ticks(spec, tick_ms) << " ticks/cycle ("
     << cycle_duration_s(spec) << " s";
  if (spec.route_km > 0.0) {
    os << ", " << spec.route_km << " km @ " << spec.speed_kmh << " km/h";
  }
  os << "), load x" << spec.load << ", outage x" << spec.outage_factor;
  if (spec.max_tier.has_value()) {
    os << ", max tier " << measure::names::to_name(*spec.max_tier);
  }
  return os.str();
}

std::string scenario_canonical(const ScenarioSpec& spec) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "duration_s=%.17g;route_km=%.17g;speed_kmh=%.17g;load=%.17g;"
                "outage_factor=%.17g",
                spec.duration_s, spec.route_km, spec.speed_kmh, spec.load,
                spec.outage_factor);
  std::string out{buf};
  out += ";max_tier=";
  out += spec.max_tier.has_value()
             ? std::string{measure::names::to_name(*spec.max_tier)}
             : "none";
  out += ";carriers=";
  for (std::size_t i = 0; i < spec.carriers.size(); ++i) {
    if (i) out += '+';
    out += measure::names::to_name(spec.carriers[i]);
  }
  return out;
}

void sample_stream(const SynthProfile& profile, const ScenarioSpec& spec,
                   std::uint64_t seed, radio::Carrier carrier, int first_cycle,
                   int cycles, ingest::PointSink& sink) {
  static const core::obs::Counter points_sampled{"synth.points_sampled"};
  const CarrierMix* mix = profile.find_mix(carrier);
  if (mix == nullptr) {
    throw std::runtime_error{
        "sample: no fitted mix for carrier " +
        std::string{measure::names::to_name(carrier)}};
  }
  const std::vector<std::size_t> allowed = allowed_techs(*mix, spec);
  if (allowed.empty()) {
    throw std::runtime_error{
        "sample: max_tier excludes every fitted tech for carrier " +
        std::string{measure::names::to_name(carrier)}};
  }
  const std::int64_t n_ticks = cycle_ticks(spec, profile.tick_ms);
  const SimMillis stride = cycle_stride(spec, profile.tick_ms);
  const double rtt_mult = std::max(0.1, 1.0 + 0.3 * (spec.load - 1.0));

  // Per-tech chain state, lazily entered per cycle: -1 = not yet visited.
  struct TechState {
    int dl_regime = -1;
    int rtt_regime = -1;
  };

  ingest::RunEmitter out{sink};
  std::uint64_t emitted = 0;
  for (int j = 0; j < cycles; ++j) {
    const std::int64_t cycle = first_cycle + j;
    const DrawStream draws{seed, carrier, cycle};
    const SimMillis base_t = static_cast<SimMillis>(j) * stride;
    std::array<TechState, radio::kTechnologyCount> state{};
    for (auto& s : state) s = TechState{};
    int tech_i = -1;
    for (std::int64_t k = 0; k < n_ticks; ++k) {
      // RAT step: enter from (restricted) occupancy, then walk the mix
      // chain's (restricted) transition rows.
      const double u_tech = draws.at(k, kChTech);
      if (tech_i < 0) {
        tech_i = static_cast<int>(sample_index(
            restrict_row(mix->occupancy, allowed, mix->occupancy), u_tech));
      } else {
        tech_i = static_cast<int>(sample_index(
            restrict_row(mix->transitions[static_cast<std::size_t>(tech_i)],
                         allowed, mix->occupancy),
            u_tech));
      }
      const radio::Technology tech = mix->techs[static_cast<std::size_t>(
          tech_i)];
      const StreamModel* model = profile.find_stream(carrier, tech);
      // parse_profile guarantees every mix tech has a stream.
      TechState& ts = state[static_cast<std::size_t>(tech)];

      // Throughput regime: handover arrivals re-enter from occupancy
      // (post-handover re-establishment); otherwise step the chain.
      const bool handover = draws.at(k, kChHandover) < model->handover_rate;
      if (handover || ts.dl_regime < 0) {
        const double u = handover ? draws.at(k, kChHandoverRegime)
                                  : draws.at(k, kChDlStep);
        ts.dl_regime = static_cast<int>(sample_index(
            boost_outage(model->dl.occupancy, spec.outage_factor), u));
      } else {
        ts.dl_regime = static_cast<int>(sample_index(
            boost_outage(
                model->dl.transitions[static_cast<std::size_t>(ts.dl_regime)],
                spec.outage_factor),
            draws.at(k, kChDlStep)));
      }
      if (ts.rtt_regime < 0) {
        ts.rtt_regime = static_cast<int>(
            sample_index(model->rtt.occupancy, draws.at(k, kChRttStep)));
      } else {
        ts.rtt_regime = static_cast<int>(sample_index(
            model->rtt.transitions[static_cast<std::size_t>(ts.rtt_regime)],
            draws.at(k, kChRttStep)));
      }

      ingest::TracePoint p;
      p.t = base_t + static_cast<SimMillis>(k) * profile.tick_ms;
      p.tech = tech;
      p.cap_dl_mbps =
          emit(model->dl.emissions[static_cast<std::size_t>(ts.dl_regime)],
               draws.at(k, kChDlEmit)) /
          spec.load;
      const EmissionModel& ul =
          model->ul[static_cast<std::size_t>(ts.dl_regime)];
      p.cap_ul_mbps = ul.empty() ? 0.0
                                 : emit(ul, draws.at(k, kChUlEmit)) /
                                       spec.load;
      p.rtt_ms = std::max(
          0.1,
          emit(model->rtt.emissions[static_cast<std::size_t>(ts.rtt_regime)],
               draws.at(k, kChRttEmit)) *
              rtt_mult);
      out.push(p);
      ++emitted;
    }
  }
  out.finish();
  points_sampled.add(emitted);
}

replay::ReplayBundle sample_bundle(const SynthProfile& profile,
                                   const ScenarioSpec& spec,
                                   std::uint64_t seed, int first_cycle,
                                   int cycles, int threads) {
  core::obs::ScopedSpan span{"synth.sample", "synth"};
  check_spec(spec);
  if (cycles < 1) throw std::runtime_error{"sample: cycles must be >= 1"};
  std::vector<radio::Carrier> carriers = spec.carriers;
  if (carriers.empty()) {
    for (const CarrierMix& mix : profile.mixes) carriers.push_back(mix.carrier);
  }
  if (carriers.empty()) {
    throw std::runtime_error{"sample: profile has no fitted carriers"};
  }

  std::vector<ingest::StreamSource> sources;
  sources.reserve(carriers.size());
  for (radio::Carrier carrier : carriers) {
    if (profile.find_mix(carrier) == nullptr) {
      throw std::runtime_error{
          "sample: no fitted mix for carrier " +
          std::string{measure::names::to_name(carrier)}};
    }
    ingest::StreamSource source;
    source.carrier = carrier;
    source.name = "synth:" +
                  std::string{measure::names::to_name(carrier)} + ":cycles " +
                  std::to_string(first_cycle) + "+" + std::to_string(cycles);
    source.produce = [&profile, spec, seed, carrier, first_cycle,
                      cycles](ingest::PointSink& sink) {
      sample_stream(profile, spec, seed, carrier, first_cycle, cycles, sink);
    };
    sources.push_back(std::move(source));
  }

  ingest::JoinOptions join;
  join.align_clocks = false;  // cycles are born on the shared t = 0 timeline
  replay::ReplayBundle bundle = ingest::join_streams(
      std::move(sources), join, sample_resample_spec(profile), threads);
  bundle.manifest.seed = seed;
  return bundle;
}

core::obs::RunManifest sample_to_bundle(const SynthProfile& profile,
                                        const ScenarioSpec& spec,
                                        std::uint64_t seed, int first_cycle,
                                        int cycles, int threads,
                                        const std::string& directory,
                                        bool canonical_provenance) {
  replay::ReplayBundle bundle =
      sample_bundle(profile, spec, seed, first_cycle, cycles, threads);
  if (canonical_provenance) {
    core::obs::canonicalize_provenance(bundle.manifest);
  }
  measure::write_dataset(bundle.db, directory, bundle.manifest);
  return bundle.manifest;
}

}  // namespace wheels::synth

#include "synth/validate.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "analysis/stats.hpp"
#include "measure/enum_names.hpp"
#include "synth/series.hpp"

namespace wheels::synth {

double ValidationReport::max_ks() const {
  double m = 0.0;
  for (const StreamKs& s : streams) {
    if (!s.gated) continue;
    m = std::max({m, s.ks_throughput, s.ks_rtt});
  }
  return m;
}

bool ValidationReport::passes(double gate) const {
  bool any = false;
  for (const StreamKs& s : streams) {
    if (!s.gated) continue;
    any = true;
    if (s.ks_throughput > gate || s.ks_rtt > gate) return false;
  }
  return any;
}

ValidationReport validate_synthesis(const measure::ConsolidatedDb& source,
                                    const measure::ConsolidatedDb& synth,
                                    const SynthProfile& profile) {
  const FleetSeries src = extract_series(source, profile.tick_ms);
  const FleetSeries syn = extract_series(synth, profile.tick_ms);

  ValidationReport report;
  for (const StreamModel& model : profile.streams) {
    const StreamSeries& a = src.stream(model.carrier, model.tech);
    const StreamSeries& b = syn.stream(model.carrier, model.tech);
    StreamKs ks;
    ks.carrier = model.carrier;
    ks.tech = model.tech;
    ks.n_source = a.dl_ticks();
    ks.n_synth = b.dl_ticks();
    ks.n_source_rtt = a.rtt_ticks();
    ks.n_synth_rtt = b.rtt_ticks();
    ks.gated = ks.n_source >= kMinSynthSamples &&
               ks.n_synth >= kMinSynthSamples &&
               ks.n_source_rtt >= kMinSynthSamples &&
               ks.n_synth_rtt >= kMinSynthSamples;
    if (ks.n_source > 0 && ks.n_synth > 0) {
      ks.ks_throughput = analysis::ks_distance(a.dl_values(), b.dl_values());
    }
    if (ks.n_source_rtt > 0 && ks.n_synth_rtt > 0) {
      ks.ks_rtt = analysis::ks_distance(a.rtt_values(), b.rtt_values());
    }
    report.streams.push_back(ks);
  }
  return report;
}

void print_validation(std::ostream& os, const ValidationReport& report,
                      double gate) {
  os << "KS validation (gate " << gate << " on 500 ms marginals):\n";
  os << "  carrier    tech       n_src  n_syn  KS(tput)  KS(rtt)  gated\n";
  for (const StreamKs& s : report.streams) {
    os << "  " << std::left << std::setw(10)
       << measure::names::to_name(s.carrier) << " " << std::setw(10)
       << measure::names::to_name(s.tech) << std::right << " " << std::setw(6)
       << s.n_source << " " << std::setw(6) << s.n_synth << "  " << std::fixed
       << std::setprecision(4) << std::setw(8) << s.ks_throughput << " "
       << std::setw(8) << s.ks_rtt << "  "
       << (s.gated ? (s.ks_throughput <= gate && s.ks_rtt <= gate ? "ok"
                                                                  : "FAIL")
                   : "-")
       << '\n';
    os.unsetf(std::ios::fixed);
    os << std::setprecision(6);
  }
  os << (report.passes(gate) ? "KS gate PASSED" : "KS gate FAILED")
     << " (max gated KS " << report.max_ks() << ")\n";
}

}  // namespace wheels::synth

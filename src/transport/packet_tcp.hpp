// Round-based (per-RTT) TCP model, used to cross-validate the fluid model.
//
// TcpBulkFlow advances in fixed 50 ms fluid steps — fast enough to run a
// whole campaign. This model instead simulates TCP the classic way: one
// round per RTT, a full congestion window in flight, drop-tail overflow at
// the bottleneck. It is slower and jumpier but closer to the textbook
// dynamics; the cross-validation tests assert that both models agree on
// long-run goodput over steady and dipping links, which is what gives the
// fluid model its standing in the campaign.
#pragma once

#include "core/rng.hpp"
#include "core/units.hpp"
#include "transport/cubic.hpp"

namespace wheels::transport {

struct PacketTcpConfig {
  double buffer_bdp_factor = 4.0;
  double min_buffer_bytes = 256.0 * 1024.0;
};

class PacketTcpFlow {
 public:
  PacketTcpFlow(Millis base_rtt, PacketTcpConfig config = {});

  /// Advance by `dt` with the given bottleneck capacity; returns delivered
  /// bytes. Internally runs whole RTT rounds; leftover time carries over.
  double advance(Mbps capacity, Millis dt);

  Millis current_rtt() const;
  double cwnd_segments() const { return cubic_.cwnd_segments(); }
  double total_delivered_bytes() const { return total_delivered_; }

 private:
  /// One full RTT round at the given capacity; returns delivered bytes and
  /// advances `now_` by the round's RTT.
  double run_round(Mbps capacity);

  Cubic cubic_;
  PacketTcpConfig config_;
  Millis base_rtt_;
  Millis now_ = 0.0;
  Millis round_debt_ = 0.0;  // unconsumed time carried between calls
  double queue_bytes_ = 0.0;
  double total_delivered_ = 0.0;
  Mbps last_capacity_ = 1.0;
};

}  // namespace wheels::transport

#include "transport/packet_tcp.hpp"

#include <algorithm>

namespace wheels::transport {

PacketTcpFlow::PacketTcpFlow(Millis base_rtt, PacketTcpConfig config)
    : config_(config), base_rtt_(base_rtt) {}

Millis PacketTcpFlow::current_rtt() const {
  const double service = std::max(last_capacity_, 0.01) * 1e6 / 8.0;  // B/s
  return base_rtt_ + queue_bytes_ / service * 1000.0;
}

double PacketTcpFlow::run_round(Mbps capacity) {
  last_capacity_ = std::max(capacity, 0.01);
  const double service_per_s = last_capacity_ * 1e6 / 8.0;  // bytes/s
  const Millis rtt = base_rtt_ + queue_bytes_ / service_per_s * 1000.0;

  // A full window enters the pipe over one RTT; the bottleneck drains at
  // line rate for the same duration.
  const double arrivals = cubic_.cwnd_segments() * Cubic::kMssBytes;
  const double service = service_per_s * (rtt / 1000.0);
  const double total = queue_bytes_ + arrivals;
  const double delivered = std::min(total, service);
  queue_bytes_ = total - delivered;

  const double bdp = service_per_s * (base_rtt_ / 1000.0);
  const double buffer =
      std::max(config_.min_buffer_bytes, bdp * config_.buffer_bdp_factor);

  now_ += rtt;
  if (queue_bytes_ > buffer) {
    queue_bytes_ = buffer;
    cubic_.on_loss(now_);
  } else {
    cubic_.on_ack(delivered / Cubic::kMssBytes, rtt, now_);
  }
  total_delivered_ += delivered;
  return delivered;
}

double PacketTcpFlow::advance(Mbps capacity, Millis dt) {
  // Run whole RTT rounds; unconsumed time carries into the next call (a
  // round never spans two different capacity values exactly, but long-run
  // goodput — what the cross-validation asserts — is unaffected).
  round_debt_ += dt;
  double delivered = 0.0;
  while (true) {
    const double service_per_s = std::max(capacity, 0.01) * 1e6 / 8.0;
    const Millis next_rtt =
        base_rtt_ + queue_bytes_ / service_per_s * 1000.0;
    if (next_rtt > round_debt_) break;
    delivered += run_round(capacity);
    round_debt_ -= next_rtt;
  }
  return delivered;
}

}  // namespace wheels::transport

#include "transport/cubic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace wheels::transport {

Cubic::Cubic(double initial_cwnd_segments)
    : cwnd_(initial_cwnd_segments),
      ssthresh_(std::numeric_limits<double>::infinity()) {}

double Cubic::cubic_window(double t_seconds) const {
  const double d = t_seconds - k_seconds_;
  return kC * d * d * d + w_max_;
}

void Cubic::on_ack(double acked_segments, Millis rtt, Millis now) {
  if (acked_segments <= 0.0) return;
  if (slow_start_) {
    cwnd_ += acked_segments;
    if (cwnd_ >= ssthresh_) slow_start_ = false;
    return;
  }
  if (!epoch_started_) {
    // First congestion-avoidance ACK without a preceding loss (e.g. after
    // leaving slow start via ssthresh): start an epoch at the current window.
    w_max_ = cwnd_;
    k_seconds_ = 0.0;
    epoch_start_ = now;
    epoch_started_ = true;
  }
  const double t = (now - epoch_start_) / 1000.0;
  const double target = cubic_window(t + rtt / 1000.0);

  // TCP-friendly region (standard TCP's AIMD estimate).
  const double w_est =
      w_max_ * kBeta +
      (3.0 * (1.0 - kBeta) / (1.0 + kBeta)) * (t / (rtt / 1000.0));

  const double goal = std::max(target, w_est);
  if (goal > cwnd_) {
    cwnd_ += (goal - cwnd_) / cwnd_ * acked_segments;
  } else {
    cwnd_ += 0.01 * acked_segments / cwnd_;  // minimal probing
  }
}

void Cubic::on_loss(Millis now) {
  w_max_ = cwnd_;
  cwnd_ = std::max(kMinCwnd, cwnd_ * kBeta);
  ssthresh_ = cwnd_;
  slow_start_ = false;
  k_seconds_ = std::cbrt(w_max_ * (1.0 - kBeta) / kC);
  epoch_start_ = now;
  epoch_started_ = true;
}

}  // namespace wheels::transport

#include "transport/multipath.hpp"

#include <algorithm>
#include <limits>

namespace wheels::transport {

std::string_view multipath_scheduler_name(MultipathScheduler s) {
  switch (s) {
    case MultipathScheduler::MinRtt: return "min-rtt";
    case MultipathScheduler::Redundant: return "redundant";
    case MultipathScheduler::RoundRobin: return "round-robin";
  }
  return "?";
}

MultipathFlow::MultipathFlow(std::vector<Millis> base_rtts,
                             MultipathScheduler scheduler, Rng rng)
    : scheduler_(scheduler) {
  for (std::size_t i = 0; i < base_rtts.size(); ++i) {
    subflows_.push_back(std::make_unique<TcpBulkFlow>(
        base_rtts[i], rng.fork("subflow", i)));
  }
}

double MultipathFlow::advance(std::span<const Mbps> capacities, Millis dt) {
  const std::size_t n = subflows_.size();
  double delivered = 0.0;

  switch (scheduler_) {
    case MultipathScheduler::MinRtt: {
      // A backlogged MPTCP sender keeps every subflow's window full; the
      // scheduler preference shows up in which subflow carries *new* data
      // first, but for bulk transfer all subflows contribute their goodput.
      for (std::size_t i = 0; i < n; ++i) {
        delivered += subflows_[i]->advance(capacities[i], dt);
      }
      break;
    }
    case MultipathScheduler::Redundant: {
      // Every byte is sent on every path: distinct delivery is the max of
      // the per-path deliveries, not the sum.
      double best = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        best = std::max(best, subflows_[i]->advance(capacities[i], dt));
      }
      delivered = best;
      break;
    }
    case MultipathScheduler::RoundRobin: {
      // Equal split regardless of path quality: each path is asked to carry
      // 1/n of the stream, so the aggregate is gated by the slowest path
      // (classic head-of-line blocking under heterogeneity).
      double slowest = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < n; ++i) {
        slowest =
            std::min(slowest, subflows_[i]->advance(capacities[i], dt));
      }
      delivered = slowest * static_cast<double>(n);
      break;
    }
  }

  total_delivered_ += delivered;
  return delivered;
}

Millis MultipathFlow::effective_rtt() const {
  Millis best = std::numeric_limits<Millis>::infinity();
  Millis worst = 0.0;
  for (const auto& sf : subflows_) {
    best = std::min(best, sf->srtt());
    worst = std::max(worst, sf->srtt());
  }
  return scheduler_ == MultipathScheduler::RoundRobin ? worst : best;
}

}  // namespace wheels::transport

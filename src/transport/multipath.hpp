// Multipath transport over multiple cellular operators.
//
// The paper's §5.4 finding — operator performance at the same place and time
// is highly diverse, and the "winning" operator flips constantly — leads to
// its recommendation (2): aggregate links from multiple operators, e.g. over
// Multipath TCP. This module implements that recommendation so it can be
// evaluated against the single-operator baseline (bench: ablation_multipath).
//
// Each subflow is a full CUBIC TcpBulkFlow over its operator's link; the
// scheduler decides how application data is spread:
//  - MinRtt:    packets go to the subflow with the lowest current SRTT that
//               has window space (the Linux MPTCP default);
//  - Redundant: duplicate over all subflows (latency-optimal, capacity-poor);
//  - RoundRobin: naive equal split (the classic MPTCP pathology under
//               heterogeneous paths — head-of-line blocking).
#pragma once

#include <memory>
#include <vector>

#include "core/rng.hpp"
#include "core/units.hpp"
#include "transport/tcp_flow.hpp"

namespace wheels::transport {

enum class MultipathScheduler { MinRtt, Redundant, RoundRobin };

std::string_view multipath_scheduler_name(MultipathScheduler s);

struct SubflowState {
  Mbps capacity = 0.0;  // set per tick by the caller
  Millis base_rtt = 50.0;
};

class MultipathFlow {
 public:
  /// One subflow per path; `base_rtts[i]` seeds path i's RTT.
  MultipathFlow(std::vector<Millis> base_rtts, MultipathScheduler scheduler,
                Rng rng);

  /// Advance all subflows by `dt` given each path's capacity; returns the
  /// bytes of *distinct* application data delivered (duplicates collapse).
  double advance(std::span<const Mbps> capacities, Millis dt);

  std::size_t subflow_count() const { return subflows_.size(); }
  /// Effective smoothed RTT of the aggregate: what a latency-sensitive app
  /// sees (min over subflows for MinRtt/Redundant, max for RoundRobin since
  /// in-order delivery waits for the slowest path).
  Millis effective_rtt() const;
  const TcpBulkFlow& subflow(std::size_t i) const { return *subflows_[i]; }
  double total_delivered_bytes() const { return total_delivered_; }

 private:
  MultipathScheduler scheduler_;
  std::vector<std::unique_ptr<TcpBulkFlow>> subflows_;
  double total_delivered_ = 0.0;
};

}  // namespace wheels::transport

// Fluid-model TCP bulk flow over a time-varying bottleneck.
//
// This is the nuttcp equivalent: a single backlogged CUBIC connection whose
// bottleneck is the radio link capacity produced by the channel model. The
// flow is advanced in 50 ms fluid steps inside each 500 ms radio tick; the
// caller reads back delivered bytes per tick, i.e. exactly the 500 ms
// application-layer throughput samples XCAL logs.
//
// The model captures what shapes the paper's throughput CDFs:
//  - slow-start ramp at test start (tests last only 30 s);
//  - cellular bufferbloat: a deep drop-tail buffer (several BDPs) whose
//    occupancy adds queueing delay — the source of multi-second loaded RTTs;
//  - loss → CUBIC multiplicative decrease → sawtooth;
//  - capacity dips (outages, handovers) drain into the queue first, then
//    starve the link.
#pragma once

#include <deque>

#include "core/rng.hpp"
#include "core/units.hpp"
#include "transport/cubic.hpp"

namespace wheels::transport {

/// Congestion-control algorithm for a bulk flow. The paper's nuttcp tests
/// ran Linux's default CUBIC; the BBR variant exists for the ablation_cc
/// experiment (model-based pacing keeps cellular queues short instead of
/// filling them — the bufferbloat alternative).
enum class CcAlgo { Cubic, Bbr };

std::string_view cc_algo_name(CcAlgo a);

struct TcpFlowConfig {
  CcAlgo algo = CcAlgo::Cubic;
  Millis fluid_step = 50.0;
  /// Bottleneck buffer in multiples of the instantaneous BDP.
  double buffer_bdp_factor = 4.0;
  /// Minimum buffer (bytes) — cellular schedulers buffer deeply even on
  /// slow bearers.
  double min_buffer_bytes = 256.0 * 1024.0;
  /// Residual random loss probability per fluid step (post-HARQ).
  double random_loss_p = 2e-4;
};

class TcpBulkFlow {
 public:
  TcpBulkFlow(Millis base_rtt, Rng rng, TcpFlowConfig config = {});

  /// Advance the flow by `dt` with the given bottleneck capacity; returns
  /// the bytes delivered to the application during `dt`.
  double advance(Mbps capacity, Millis dt);

  /// Queueing delay currently added by the bottleneck buffer.
  Millis queue_delay() const { return queue_delay_; }
  /// Smoothed RTT the sender currently observes.
  Millis srtt() const { return base_rtt_ + queue_delay_; }
  double cwnd_segments() const { return cubic_.cwnd_segments(); }
  double total_delivered_bytes() const { return total_delivered_; }
  /// BBR's current bottleneck-bandwidth estimate (Mbps); 0 under CUBIC.
  Mbps btl_bw_estimate() const { return btl_bw_ * 8.0 / 1e6; }

  /// Update the path RTT (e.g. when the serving server changes).
  void set_base_rtt(Millis rtt) { base_rtt_ = rtt; }

 private:
  double bbr_send_rate_bps();
  void bbr_on_delivered(double bytes, Millis step);

  Cubic cubic_;
  TcpFlowConfig config_;
  Millis base_rtt_;
  Rng rng_;
  Millis now_ = 0.0;
  double queue_bytes_ = 0.0;
  Millis queue_delay_ = 0.0;
  double total_delivered_ = 0.0;

  // --- BBR state (used when config_.algo == CcAlgo::Bbr) ---
  /// Windowed max-filter of delivered rate samples (time, bytes/s).
  std::deque<std::pair<Millis, double>> bw_samples_;
  double btl_bw_ = 0.0;  // bytes/s
  bool startup_done_ = false;
  double startup_prev_bw_ = 0.0;
  int startup_stall_rounds_ = 0;
  Millis last_startup_check_ = 0.0;
};

}  // namespace wheels::transport

#include "transport/tcp_flow.hpp"

#include <algorithm>
#include <cmath>

#include "core/obs/metrics.hpp"

namespace wheels::transport {

namespace {

// Loss/cwnd events are driven by the seeded Rng and the deterministic fluid
// model, so these counters belong in the deterministic snapshot.
core::obs::MetricId retransmits_id() {
  static const core::obs::MetricId id =
      core::obs::MetricsRegistry::global().counter_id("transport.retransmits");
  return id;
}

core::obs::MetricId cwnd_resets_id() {
  static const core::obs::MetricId id =
      core::obs::MetricsRegistry::global().counter_id("transport.cwnd_resets");
  return id;
}

const core::obs::MetricsRegistry::HistogramHandle& srtt_hist() {
  static const core::obs::MetricsRegistry::HistogramHandle h =
      core::obs::MetricsRegistry::global().histogram("transport.srtt_ms");
  return h;
}

}  // namespace

std::string_view cc_algo_name(CcAlgo a) {
  return a == CcAlgo::Cubic ? "cubic" : "bbr";
}

TcpBulkFlow::TcpBulkFlow(Millis base_rtt, Rng rng, TcpFlowConfig config)
    : config_(config), base_rtt_(base_rtt), rng_(std::move(rng)) {}

void TcpBulkFlow::bbr_on_delivered(double bytes, Millis step) {
  const double rate = bytes / (step / 1000.0);  // bytes/s
  bw_samples_.emplace_back(now_, rate);
  // Max filter over ~2.5 s: stale samples expire so the estimate tracks
  // capacity drops (outages) within a couple of seconds.
  while (!bw_samples_.empty() && now_ - bw_samples_.front().first > 2'500.0) {
    bw_samples_.pop_front();
  }
  btl_bw_ = 0.0;
  for (const auto& [t, r] : bw_samples_) btl_bw_ = std::max(btl_bw_, r);

  // Startup exits when the bandwidth estimate plateaus (<5% growth across
  // three consecutive RTT-ish checks).
  if (!startup_done_ && now_ - last_startup_check_ >= base_rtt_) {
    last_startup_check_ = now_;
    if (btl_bw_ < startup_prev_bw_ * 1.05) {
      if (++startup_stall_rounds_ >= 3) startup_done_ = true;
    } else {
      startup_stall_rounds_ = 0;
    }
    startup_prev_bw_ = btl_bw_;
  }
}

double TcpBulkFlow::bbr_send_rate_bps() {
  // Initial rate: 10 segments per RTT.
  const double floor_rate =
      10.0 * Cubic::kMssBytes / (base_rtt_ / 1000.0);  // bytes/s
  const double bw = std::max(btl_bw_, floor_rate);

  double gain;
  if (!startup_done_) {
    gain = 2.0;  // startup: doubling per round (2/ln2 in real BBR)
  } else {
    // ProbeBW gain cycle, one phase per RTT.
    static constexpr double kGains[8] = {1.25, 0.75, 1.0, 1.0,
                                         1.0,  1.0,  1.0, 1.0};
    const auto phase = static_cast<std::size_t>(
                           now_ / std::max(base_rtt_, 10.0)) %
                       8;
    gain = kGains[phase];
  }

  // Inflight cap at 2xBDP: once the standing queue reaches ~1 BDP, pacing
  // backs off regardless of the gain — this is what keeps BBR's queues
  // short where CUBIC fills the buffer.
  const double bdp_bytes = bw * (base_rtt_ / 1000.0);
  if (queue_bytes_ > bdp_bytes) gain = std::min(gain, 0.5);

  return bw * gain * 8.0;  // bits/s
}

double TcpBulkFlow::advance(Mbps capacity, Millis dt) {
  double delivered_bytes = 0.0;
  Millis remaining = dt;

  while (remaining > 1e-9) {
    const Millis step = std::min(config_.fluid_step, remaining);
    remaining -= step;
    now_ += step;

    const Millis srtt_now = base_rtt_ + queue_delay_;
    const double send_rate_bps =
        config_.algo == CcAlgo::Bbr
            ? bbr_send_rate_bps()
            : cubic_.cwnd_segments() * Cubic::kMssBytes * 8.0 /
                  (srtt_now / 1000.0);
    const double arrivals = send_rate_bps / 8.0 * (step / 1000.0);  // bytes
    const double service = capacity * 1e6 / 8.0 * (step / 1000.0);  // bytes

    const double backlog = queue_bytes_ + arrivals;
    const double out = std::min(backlog, service);
    queue_bytes_ = backlog - out;
    delivered_bytes += out;

    // Buffer sizing tracks the instantaneous BDP, floored for slow bearers.
    const double bdp_bytes = capacity * 1e6 / 8.0 * (base_rtt_ / 1000.0);
    const double buffer =
        std::max(config_.min_buffer_bytes,
                 bdp_bytes * config_.buffer_bdp_factor);

    bool loss = false;
    if (queue_bytes_ > buffer) {
      queue_bytes_ = buffer;
      loss = true;
    }
    if (!loss && rng_.bernoulli(config_.random_loss_p)) loss = true;
    if (loss) core::obs::MetricsRegistry::global().add(retransmits_id());

    if (config_.algo == CcAlgo::Bbr) {
      // BBR v1 is loss-agnostic: it paces off the bandwidth model.
      bbr_on_delivered(out, step);
    } else if (loss) {
      cubic_.on_loss(now_);
      core::obs::MetricsRegistry::global().add(cwnd_resets_id());
    } else if (out > 0.0) {
      cubic_.on_ack(out / Cubic::kMssBytes, srtt_now, now_);
    }

    // Queue delay as seen by new arrivals.
    queue_delay_ = capacity > 1e-3
                       ? queue_bytes_ * 8.0 / (capacity * 1e6) * 1000.0
                       : std::min(queue_delay_ + step, 4'000.0);
  }

  // One sample per advance() call, not per fluid step, to keep the
  // instrumentation off the inner-loop hot path.
  core::obs::MetricsRegistry::global().observe(srtt_hist(),
                                               base_rtt_ + queue_delay_);

  total_delivered_ += delivered_bytes;
  return delivered_bytes;
}

}  // namespace wheels::transport

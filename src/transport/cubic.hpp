// TCP CUBIC congestion control (RFC 8312 shape), in segment units.
//
// The paper measured bulk transfers with nuttcp over Linux's default CUBIC
// (§5); reproducing the congestion-control dynamics matters because the
// 500 ms application-layer throughput samples it reports include slow-start
// ramps, sawtooth drains and post-handover recoveries.
#pragma once

#include "core/units.hpp"

namespace wheels::transport {

class Cubic {
 public:
  explicit Cubic(double initial_cwnd_segments = 10.0);

  /// Register `acked_segments` worth of ACKs at time `now`.
  void on_ack(double acked_segments, Millis rtt, Millis now);

  /// Multiplicative decrease + new cubic epoch at time `now`.
  void on_loss(Millis now);

  double cwnd_segments() const { return cwnd_; }
  bool in_slow_start() const { return slow_start_; }

  static constexpr double kBeta = 0.7;
  static constexpr double kC = 0.4;
  static constexpr double kMssBytes = 1460.0;
  static constexpr double kMinCwnd = 2.0;

 private:
  double cubic_window(double t_seconds) const;

  double cwnd_;
  double ssthresh_;
  bool slow_start_ = true;
  double w_max_ = 0.0;
  double k_seconds_ = 0.0;
  Millis epoch_start_ = 0.0;
  bool epoch_started_ = false;
};

}  // namespace wheels::transport

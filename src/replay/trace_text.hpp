// Shared strict-text helpers for trace ingestion.
//
// The minimal external adapter (replay/external_adapter.hpp) and every
// src/ingest adapter read text formats published by third parties, so they
// share one dialect: '#'-prefixed comment lines and blank lines are skipped
// anywhere (published traces carry both), CRLF endings are accepted, numbers
// must parse full-string and finite, and every diagnostic carries the
// physical 1-based line number of the offending line — skipping a line never
// renumbers the ones after it.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/sim_time.hpp"

namespace wheels::replay {

/// Cursor over the payload lines of a trace: yields each non-blank,
/// non-comment line with CR stripped, tracking physical line numbers.
class TraceLineReader {
 public:
  explicit TraceLineReader(std::istream& is) : is_(is) {}

  /// Advance to the next payload line; false at end of input.
  bool next(std::string& line);

  /// Physical 1-based line number of the last line `next` returned (or of
  /// the end of input once `next` returned false).
  std::size_t line_number() const { return line_; }

 private:
  std::istream& is_;
  std::size_t line_ = 0;
};

/// Split one CSV row on ','. The caller strips CR via TraceLineReader.
std::vector<std::string> split_trace_row(const std::string& line);

/// Zero-copy split for the chunked ingest path: refill `cells` with views
/// into `line` (valid only as long as the underlying buffer).
void split_trace_row(std::string_view line, std::vector<std::string_view>& cells);

/// Full-string strtod with a finiteness check. Throws std::runtime_error
/// "line N: ..." on malformed input (callers prefix their own context).
/// The string_view overload has identical semantics and never requires the
/// cell to be NUL-terminated.
double parse_trace_double(const std::string& cell, std::size_t line);
double parse_trace_double(std::string_view cell, std::size_t line);

/// Non-negative integer milliseconds, full-string. Throws like above.
SimMillis parse_trace_time_ms(const std::string& cell, std::size_t line);
SimMillis parse_trace_time_ms(std::string_view cell, std::size_t line);

/// Throws std::runtime_error{"line N: msg"}.
[[noreturn]] void trace_fail(std::size_t line, const std::string& msg);

}  // namespace wheels::replay

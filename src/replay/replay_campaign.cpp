#include "replay/replay_campaign.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "apps/gaming.hpp"
#include "apps/link_trace.hpp"
#include "apps/offload.hpp"
#include "apps/video.hpp"
#include "core/env.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/trace_export.hpp"
#include "core/thread_pool.hpp"
#include "geo/latlon.hpp"
#include "measure/csv_export.hpp"
#include "measure/enum_names.hpp"
#include "replay/fleet.hpp"
#include "measure/shard.hpp"
#include "net/latency.hpp"
#include "radio/band_plan.hpp"

namespace wheels::replay {

using apps::LinkTick;
using apps::LinkTrace;
using measure::AppKind;
using measure::ConsolidatedDb;
using measure::TestRecord;
using measure::TestType;
using radio::Carrier;
using radio::Direction;

ReplayConfig replay_config_from_env() {
  ReplayConfig cfg;
  if (const auto v = core::env_int("WHEELS_REPLAY_SEED")) {
    if (*v >= 0) {
      cfg.seed = static_cast<std::uint64_t>(*v);
    } else {
      std::fprintf(stderr,
                   "[wheels] ignoring WHEELS_REPLAY_SEED=%lld: expected >= 0\n",
                   *v);
    }
  }
  if (const char* v = std::getenv("WHEELS_REPLAY_INTERP")) {
    const std::string s{v};
    if (s == "hold") {
      cfg.policy = HoldPolicy::Hold;
    } else if (s == "linear") {
      cfg.policy = HoldPolicy::Interpolate;
    } else {
      std::fprintf(
          stderr,
          "[wheels] ignoring WHEELS_REPLAY_INTERP=%s: expected hold|linear\n",
          v);
    }
  }
  if (const char* v = std::getenv("WHEELS_REPLAY_CC")) {
    const std::string s{v};
    if (s == transport::cc_algo_name(transport::CcAlgo::Cubic)) {
      cfg.knobs.cc = transport::CcAlgo::Cubic;
    } else if (s == transport::cc_algo_name(transport::CcAlgo::Bbr)) {
      cfg.knobs.cc = transport::CcAlgo::Bbr;
    } else {
      std::fprintf(stderr,
                   "[wheels] ignoring WHEELS_REPLAY_CC=%s: expected cubic|bbr\n",
                   v);
    }
  }
  if (const char* v = std::getenv("WHEELS_REPLAY_SERVER")) {
    try {
      cfg.knobs.server = measure::names::parse_server_kind(v);
    } catch (const std::runtime_error&) {
      std::fprintf(
          stderr,
          "[wheels] ignoring WHEELS_REPLAY_SERVER=%s: expected cloud|edge\n",
          v);
    }
  }
  if (const char* v = std::getenv("WHEELS_REPLAY_MAX_TIER")) {
    try {
      cfg.knobs.max_tier = measure::names::parse_technology(v);
    } catch (const std::runtime_error&) {
      std::fprintf(stderr,
                   "[wheels] ignoring WHEELS_REPLAY_MAX_TIER=%s: expected a "
                   "technology name (LTE, 5G-mid, ...)\n",
                   v);
    }
  }
  cfg.threads = 0;
  return cfg;
}

namespace {

constexpr Millis kTick = 500.0;

/// Default tick budgets for static app sessions, whose recorded test windows
/// are zero-length (the static battery does not advance the drive clock) —
/// the campaign's standard durations.
int default_app_ticks(TestType type) {
  switch (type) {
    case TestType::ArApp:
    case TestType::CavApp:
      return 40;  // 20 s
    case TestType::Video:
      return 360;  // 180 s
    case TestType::Gaming:
      return 120;  // 60 s
    default:
      return 0;
  }
}

std::optional<AppKind> app_kind_for(TestType type) {
  switch (type) {
    case TestType::ArApp:
      return AppKind::Ar;
    case TestType::CavApp:
      return AppKind::Cav;
    case TestType::Video:
      return AppKind::Video;
    case TestType::Gaming:
      return AppKind::Gaming;
    default:
      return std::nullopt;
  }
}

/// Thread-private sink of one carrier's replayed records. Each record is
/// tagged with the index of the recorded row it re-creates, so the
/// coordinator can rebuild the recording's exact global row order (the
/// campaign interleaves carriers chronologically; a single end-of-run merge
/// in carrier order would not) — replayed tables line up row-for-row with
/// the recorded ones.
struct ReplayShard {
  std::vector<std::pair<std::size_t, measure::KpiRecord>> kpis;
  std::vector<std::pair<std::size_t, measure::RttRecord>> rtts;
  std::vector<std::pair<std::size_t, measure::HandoverRecord>> handovers;
  std::vector<std::pair<std::size_t, measure::AppRunRecord>> app_runs;
  std::vector<std::pair<std::size_t, measure::LinkTickRecord>> link_ticks;
  double rx_bytes = 0.0;
  double tx_bytes = 0.0;
};

/// Drain `shards` into `out`, restoring the recorded row order.
template <typename Record, typename Get>
void merge_ordered(std::array<ReplayShard, radio::kCarrierCount>& shards,
                   std::vector<Record>& out, Get get) {
  std::vector<std::pair<std::size_t, Record>> all;
  for (ReplayShard& shard : shards) {
    auto& rows = get(shard);
    all.insert(all.end(), std::make_move_iterator(rows.begin()),
               std::make_move_iterator(rows.end()));
    rows.clear();
  }
  std::stable_sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.first < b.first;
  });
  out.reserve(all.size());
  for (auto& [index, record] : all) out.push_back(std::move(record));
}

class ReplayRunner {
 public:
  ReplayRunner(const ReplayBundle& bundle, const ReplayConfig& cfg)
      : bundle_(bundle),
        cfg_(cfg),
        root_(cfg.seed),
        route_(geo::Route::cross_country()),
        fleet_(net::ServerFleet::standard(route_)),
        scale_(bundle.manifest.scale > 0.0 ? bundle.manifest.scale : 1.0),
        pool_(carrier_workers(cfg.threads)) {
    const ConsolidatedDb& rec = bundle_.db;
    kpis_by_test_.reserve(rec.tests.size());
    for (const auto& k : rec.kpis) kpis_by_test_[k.test_id].push_back(&k);
    for (const auto& r : rec.rtts) rtts_by_test_[r.test_id].push_back(&r);
    for (const auto& h : rec.handovers) {
      handovers_by_test_[h.test_id].push_back(&h);
    }
    for (const auto& a : rec.app_runs) app_run_by_test_[a.test_id] = &a;
    for (const auto& l : rec.link_ticks) {
      link_ticks_by_test_[l.test_id].push_back(&l);
    }
  }

  ConsolidatedDb run() {
    core::obs::ScopedSpan span{"replay.run", "replay"};
    const ConsolidatedDb& rec = bundle_.db;

    // The radio world is fixed: geometry-derived state carries over.
    db_.driven_km = rec.driven_km;
    db_.passive = rec.passive;
    db_.active_coverage = rec.active_coverage;
    db_.active_cells = rec.active_cells;
    db_.experiment_runtime = rec.experiment_runtime;

    // Tests keep their recorded ids, order and windows; the server knob
    // rewrites which server class each test talks to.
    db_.tests = rec.tests;
    if (cfg_.knobs.server.has_value()) {
      for (auto& t : db_.tests) t.server = *cfg_.knobs.server;
    }

    // Bundles written before link_ticks.csv existed cannot replay app
    // sessions from their recorded per-tick traces; say so once, up front,
    // rather than silently degrading to the statistical timeline.
    if (rec.link_ticks.empty()) {
      for (const auto& t : rec.tests) {
        if (app_kind_for(t.type).has_value()) {
          std::fprintf(stderr,
                       "[wheels] replay: bundle records no link_ticks.csv "
                       "(written before per-run traces); app sessions replay "
                       "from the statistical carrier timeline\n");
          break;
        }
      }
    }

    std::array<ReplayShard, radio::kCarrierCount> shards;
    std::vector<core::ThreadPool::Task> tasks;
    tasks.reserve(radio::kCarrierCount);
    for (Carrier c : radio::kAllCarriers) {
      ReplayShard& shard = shards[measure::carrier_index(c)];
      tasks.push_back([this, c, &shard] { replay_carrier(c, shard); });
    }
    pool_.run_batch(std::move(tasks));
    merge_ordered(shards, db_.kpis, [](ReplayShard& s) -> auto& {
      return s.kpis;
    });
    merge_ordered(shards, db_.rtts, [](ReplayShard& s) -> auto& {
      return s.rtts;
    });
    merge_ordered(shards, db_.handovers, [](ReplayShard& s) -> auto& {
      return s.handovers;
    });
    merge_ordered(shards, db_.app_runs, [](ReplayShard& s) -> auto& {
      return s.app_runs;
    });
    merge_ordered(shards, db_.link_ticks, [](ReplayShard& s) -> auto& {
      return s.link_ticks;
    });
    // Byte counters sum in canonical carrier order — the same fixed
    // floating-point summation order for every thread count.
    for (const ReplayShard& shard : shards) {
      db_.rx_bytes += shard.rx_bytes;
      db_.tx_bytes += shard.tx_bytes;
    }
    return std::move(db_);
  }

 private:
  static int carrier_workers(int requested) {
    const int threads = core::resolve_threads(requested);
    return std::min(threads, static_cast<int>(radio::kCarrierCount)) - 1;
  }

  /// The server a test of the given class talks to at `pos`. Clouds follow
  /// the recorded timezone split; the edge counterfactual picks the nearest
  /// Wavelength city (ignoring the metro-radius gate — the "what if edge
  /// were reachable everywhere" scenario).
  const net::Server& server_for(net::ServerKind kind, geo::Timezone tz,
                                const geo::LatLon& pos) const {
    if (kind == net::ServerKind::Cloud) return fleet_.cloud_for(tz);
    const net::Server* best = nullptr;
    Km best_km = 0.0;
    for (const auto& s : fleet_.servers()) {
      if (s.kind != net::ServerKind::Edge) continue;
      const Km d = geo::haversine_km(s.pos, pos);
      if (best == nullptr || d < best_km) {
        best = &s;
        best_km = d;
      }
    }
    return best != nullptr ? *best : fleet_.cloud_for(tz);
  }

  radio::Technology effective_tech(radio::Technology tech) const {
    if (cfg_.knobs.max_tier.has_value() &&
        radio::technology_tier(tech) >
            radio::technology_tier(*cfg_.knobs.max_tier)) {
      return *cfg_.knobs.max_tier;
    }
    return tech;
  }

  /// PHY ceiling of a technology for the tier-cap counterfactual: per-CC
  /// peak rate x max aggregated carriers, bounded by the device cap.
  Mbps tier_capacity_cap(Carrier carrier, radio::Technology tech,
                         Direction dir) const {
    const radio::BandPlan plan = radio::band_plan(carrier, tech);
    const bool dl = dir == Direction::Downlink;
    const Mbps per_cc = radio::cc_peak_rate(plan, dl);
    const int cc = dl ? plan.max_cc_dl : plan.max_cc_ul;
    const Mbps device = dl ? radio::kDeviceCapDl : radio::kDeviceCapUl;
    return std::min(per_cc * static_cast<Mbps>(cc), device);
  }

  /// Recorded capacity after the tier knob: downgraded ticks are clamped to
  /// the replacement tier's ceiling; everything else replays untouched.
  Mbps capped_capacity(Mbps recorded, Carrier carrier,
                       radio::Technology recorded_tech, Direction dir) const {
    const radio::Technology tech = effective_tech(recorded_tech);
    if (tech == recorded_tech) return recorded;
    return std::min(recorded, tier_capacity_cap(carrier, tech, dir));
  }

  /// UE position of a test at time `t`: the recorded physical-km window
  /// interpolated linearly, mapped to the full route via the bundle's scale.
  geo::RoutePoint point_at(const TestRecord& test, SimMillis t) const {
    double f = 0.0;
    if (test.end > test.start) {
      f = std::clamp(static_cast<double>(t - test.start) /
                         static_cast<double>(test.end - test.start),
                     0.0, 1.0);
    }
    const Km km = test.start_km + (test.end_km - test.start_km) * f;
    return route_.at(km / scale_);
  }

  /// RTT shift a knob causes at one recorded observation: the base-RTT
  /// difference between the replayed and the recorded path. Exactly zero
  /// when neither the server class nor the technology changed.
  Millis rtt_delta(Carrier carrier, radio::Technology recorded_tech,
                   net::ServerKind recorded_kind, net::ServerKind new_kind,
                   geo::Timezone tz, const geo::LatLon& pos) const {
    const radio::Technology tech = effective_tech(recorded_tech);
    if (tech == recorded_tech && new_kind == recorded_kind) return 0.0;
    const net::Server& old_server = server_for(recorded_kind, tz, pos);
    const net::Server& new_server = server_for(new_kind, tz, pos);
    return net::base_rtt(carrier, tech, new_server, pos) -
           net::base_rtt(carrier, recorded_tech, old_server, pos);
  }

  void replay_carrier(Carrier carrier, ReplayShard& shard) {
    // App sessions recorded no KPI rows; their radio conditions come from
    // the carrier's merged bulk/RTT timeline in the matching motion regime.
    const TraceChannel moving =
        carrier_timeline(bundle_.db, carrier, false, cfg_.policy);
    const TraceChannel statics =
        carrier_timeline(bundle_.db, carrier, true, cfg_.policy);

    for (std::size_t i = 0; i < bundle_.db.tests.size(); ++i) {
      const TestRecord& recorded = bundle_.db.tests[i];
      if (recorded.carrier != carrier) continue;
      const TestRecord& replayed = db_.tests[i];
      switch (recorded.type) {
        case TestType::DownlinkBulk:
        case TestType::UplinkBulk:
          replay_bulk(recorded, replayed, shard);
          break;
        case TestType::Rtt:
          replay_rtt(recorded, replayed, shard);
          break;
        default:
          replay_app(recorded, replayed,
                     recorded.is_static && !statics.empty() ? statics : moving,
                     shard);
          break;
      }
      refire_handovers(recorded.id, shard);
      count_test();
    }
  }

  /// Recorded row index of a record, recovered from its address inside the
  /// recorded table (the by-test maps store pointers into those tables).
  template <typename Record>
  std::size_t row_index(const std::vector<Record>& table,
                        const Record* row) const {
    return static_cast<std::size_t>(row - table.data());
  }

  void refire_handovers(std::uint32_t test_id, ReplayShard& shard) {
    const auto it = handovers_by_test_.find(test_id);
    if (it == handovers_by_test_.end()) return;
    for (const measure::HandoverRecord* h : it->second) {
      shard.handovers.emplace_back(row_index(bundle_.db.handovers, h), *h);
    }
  }

  void replay_bulk(const TestRecord& recorded, const TestRecord& replayed,
                   ReplayShard& shard) {
    const auto it = kpis_by_test_.find(recorded.id);
    if (it == kpis_by_test_.end() || it->second.empty()) return;
    const auto& rows = it->second;
    const Direction dir = recorded.direction;
    const Carrier carrier = recorded.carrier;

    transport::TcpFlowConfig fc;
    fc.algo = cfg_.knobs.cc.value_or(transport::CcAlgo::Cubic);
    const geo::RoutePoint start_pt = route_.at(rows.front()->map_km);
    const net::Server& server0 =
        server_for(replayed.server, recorded.tz, start_pt.pos);
    transport::TcpBulkFlow flow{
        net::base_rtt(carrier, effective_tech(rows.front()->tech), server0,
                      start_pt.pos),
        root_.fork(radio::carrier_name(carrier)).fork("bulk", recorded.id),
        fc};

    auto& reg = core::obs::MetricsRegistry::global();
    static const core::obs::MetricId ticks =
        reg.counter_id("replay.kpi_ticks");
    for (const measure::KpiRecord* k : rows) {
      const radio::Technology tech = effective_tech(k->tech);
      const Mbps cap = capped_capacity(k->throughput, carrier, k->tech, dir);
      const geo::RoutePoint pt = route_.at(k->map_km);
      flow.set_base_rtt(net::base_rtt(
          carrier, tech, server_for(replayed.server, k->tz, pt.pos), pt.pos));
      const double bytes = flow.advance(cap, kTick);

      measure::KpiRecord out = *k;
      out.tech = tech;
      out.server = replayed.server;
      out.throughput = bytes * 8.0 / 1e6 / (kTick / 1000.0);
      shard.kpis.emplace_back(row_index(bundle_.db.kpis, k), out);
      if (dir == Direction::Downlink) {
        shard.rx_bytes += bytes;
      } else {
        shard.tx_bytes += bytes;
      }
      reg.add(ticks);
    }
  }

  void replay_rtt(const TestRecord& recorded, const TestRecord& replayed,
                  ReplayShard& shard) {
    const auto it = rtts_by_test_.find(recorded.id);
    if (it == rtts_by_test_.end()) return;
    auto& reg = core::obs::MetricsRegistry::global();
    static const core::obs::MetricId samples =
        reg.counter_id("replay.rtt_samples");
    for (const measure::RttRecord* r : it->second) {
      const geo::RoutePoint pt = point_at(recorded, r->t);
      const Millis delta =
          rtt_delta(recorded.carrier, r->tech, recorded.server,
                    replayed.server, r->tz, pt.pos);
      measure::RttRecord out = *r;
      out.tech = effective_tech(r->tech);
      out.server = replayed.server;
      out.rtt = delta == 0.0 ? r->rtt : std::max(1.0, r->rtt + delta);
      shard.rtts.emplace_back(row_index(bundle_.db.rtts, r), out);
      reg.add(samples);
    }
  }

  void replay_app(const TestRecord& recorded, const TestRecord& replayed,
                  const TraceChannel& timeline, ReplayShard& shard) {
    const std::optional<AppKind> kind = app_kind_for(recorded.type);
    if (!kind.has_value()) return;
    const Carrier carrier = recorded.carrier;

    // Bundles that carry link_ticks.csv replay the session from the exact
    // per-tick trace the recorded app consumed: with every knob unset the
    // replayed app_runs row is byte-identical to the recorded one. Older
    // bundles fall back to the statistical carrier timeline.
    const std::vector<const measure::LinkTickRecord*>* exact = nullptr;
    if (const auto it = link_ticks_by_test_.find(recorded.id);
        it != link_ticks_by_test_.end() && !it->second.empty()) {
      exact = &it->second;
    }

    LinkTrace trace;
    if (exact != nullptr) {
      trace.reserve(exact->size());
      for (const measure::LinkTickRecord* r : *exact) {
        LinkTick lt;
        lt.tech = effective_tech(r->tech);
        lt.cap_dl =
            capped_capacity(r->cap_dl, carrier, r->tech, Direction::Downlink);
        lt.cap_ul =
            capped_capacity(r->cap_ul, carrier, r->tech, Direction::Uplink);
        const geo::RoutePoint pt = point_at(recorded, r->t);
        const Millis delta = rtt_delta(carrier, r->tech, recorded.server,
                                       replayed.server, recorded.tz, pt.pos);
        lt.rtt = delta == 0.0 ? r->rtt : std::max(1.0, r->rtt + delta);
        lt.interruption = r->interruption;
        lt.handovers = r->handovers;
        trace.push_back(lt);
      }
    } else {
      int n_ticks = default_app_ticks(recorded.type);
      if (recorded.end > recorded.start) {
        n_ticks = static_cast<int>(
            (recorded.end - recorded.start +
             static_cast<SimMillis>(kTick) - 1) /
            static_cast<SimMillis>(kTick));
      }
      if (n_ticks <= 0) return;

      // The session's own recorded handovers re-fire at their original
      // ticks.
      std::vector<const measure::HandoverRecord*> events;
      if (const auto it = handovers_by_test_.find(recorded.id);
          it != handovers_by_test_.end()) {
        events = it->second;
      }
      std::sort(events.begin(), events.end(),
                [](const measure::HandoverRecord* a,
                   const measure::HandoverRecord* b) {
                  return a->event.t < b->event.t;
                });

      trace.reserve(static_cast<std::size_t>(n_ticks));
      std::size_t e = 0;
      for (int i = 0; i < n_ticks; ++i) {
        const SimMillis t = recorded.start + static_cast<SimMillis>(i) *
                                                 static_cast<SimMillis>(kTick);
        const TraceSample s = timeline.at(t);
        LinkTick lt;
        lt.tech = effective_tech(s.tech);
        lt.cap_dl = capped_capacity(s.capacity_dl, carrier, s.tech,
                                    Direction::Downlink);
        lt.cap_ul =
            capped_capacity(s.capacity_ul, carrier, s.tech, Direction::Uplink);
        const geo::RoutePoint pt = route_.at(s.map_km);
        const Millis delta = rtt_delta(carrier, s.tech, recorded.server,
                                       replayed.server, recorded.tz, pt.pos);
        lt.rtt = delta == 0.0 ? s.rtt : std::max(1.0, s.rtt + delta);
        const SimMillis window_end = t + static_cast<SimMillis>(kTick);
        while (e < events.size() && events[e]->event.t < window_end) {
          if (events[e]->event.t >= t) {
            ++lt.handovers;
            lt.interruption =
                std::min(lt.interruption + events[e]->event.duration, kTick);
          }
          ++e;
        }
        trace.push_back(lt);
      }
    }
    if (trace.empty()) return;

    // Re-emit the replayed trace so a replay's own bundle replays exactly
    // too: recorded rows keep their row indices (and bytes, when no knob
    // fires); fallback rows sort past the recorded table, grouped by test.
    for (std::size_t i = 0; i < trace.size(); ++i) {
      measure::LinkTickRecord lrec;
      lrec.test_id = recorded.id;
      lrec.carrier = carrier;
      lrec.tech = trace[i].tech;
      lrec.cap_dl = trace[i].cap_dl;
      lrec.cap_ul = trace[i].cap_ul;
      lrec.rtt = trace[i].rtt;
      lrec.interruption = trace[i].interruption;
      lrec.handovers = trace[i].handovers;
      std::size_t lindex;
      if (exact != nullptr) {
        lrec.t = (*exact)[i]->t;
        lindex = row_index(bundle_.db.link_ticks, (*exact)[i]);
      } else {
        lrec.t = recorded.start +
                 static_cast<SimMillis>(i) * static_cast<SimMillis>(kTick);
        lindex = bundle_.db.link_ticks.size() +
                 static_cast<std::size_t>(recorded.id) * 1000000 + i;
      }
      shard.link_ticks.emplace_back(lindex, lrec);
    }

    measure::AppRunRecord out;
    out.test_id = recorded.id;
    out.app = *kind;
    out.carrier = carrier;
    out.is_static = recorded.is_static;
    out.server = replayed.server;
    out.high_speed_5g_fraction = apps::high_speed_5g_fraction(trace);
    out.handovers = apps::total_handovers(trace);

    // Sort key: the recorded run's row when the bundle has one, else past
    // the end (keyed by test id for a stable order among such extras).
    std::size_t index = bundle_.db.app_runs.size() + recorded.id;
    const measure::AppRunRecord* recorded_run = nullptr;
    if (const auto it = app_run_by_test_.find(recorded.id);
        it != app_run_by_test_.end()) {
      recorded_run = it->second;
      index = row_index(bundle_.db.app_runs, recorded_run);
    }

    if (*kind == AppKind::Ar || *kind == AppKind::Cav) {
      const bool compressed =
          recorded_run != nullptr && recorded_run->compressed;
      const apps::OffloadApp app{*kind == AppKind::Ar ? apps::ar_config()
                                                      : apps::cav_config()};
      const apps::OffloadRunResult run = app.run(trace, compressed);
      out.compressed = run.compressed;
      out.median_e2e = run.median_e2e;
      out.offload_fps = run.offload_fps;
      out.map_percent = run.map_percent;
      const double frame_kb =
          run.compressed ? (*kind == AppKind::Ar ? 50.0 : 38.0)
                         : (*kind == AppKind::Ar ? 450.0 : 2000.0);
      shard.tx_bytes +=
          static_cast<double>(run.frames.size()) * frame_kb * 1024.0;
    } else if (*kind == AppKind::Video) {
      apps::VideoConfig vc;
      vc.run_duration = static_cast<Millis>(trace.size()) * kTick;
      const apps::VideoRunResult run = apps::VideoApp{vc}.run(trace);
      out.qoe = run.avg_qoe;
      out.rebuffer_fraction = run.rebuffer_fraction;
      out.avg_bitrate = run.avg_bitrate;
      shard.rx_bytes += run.avg_bitrate * 1e6 / 8.0 * (vc.run_duration / 1000.0);
    } else {
      apps::GamingConfig gc;
      gc.run_duration = static_cast<Millis>(trace.size()) * kTick;
      const apps::GamingRunResult run = apps::GamingApp{gc}.run(trace);
      out.gaming_bitrate = run.median_bitrate;
      out.gaming_latency = run.median_latency;
      out.gaming_frame_drop = run.median_frame_drop;
      out.gaming_max_frame_drop = run.max_frame_drop;
      shard.rx_bytes +=
          run.median_bitrate * 1e6 / 8.0 * (gc.run_duration / 1000.0);
    }
    shard.app_runs.emplace_back(index, out);

    auto& reg = core::obs::MetricsRegistry::global();
    static const core::obs::MetricId runs = reg.counter_id("replay.app_runs");
    reg.add(runs);
  }

  static void count_test() {
    auto& reg = core::obs::MetricsRegistry::global();
    static const core::obs::MetricId tests = reg.counter_id("replay.tests");
    reg.add(tests);
  }

  const ReplayBundle& bundle_;
  const ReplayConfig& cfg_;
  Rng root_;
  geo::Route route_;
  net::ServerFleet fleet_;
  double scale_;
  ConsolidatedDb db_;
  std::unordered_map<std::uint32_t, std::vector<const measure::KpiRecord*>>
      kpis_by_test_;
  std::unordered_map<std::uint32_t, std::vector<const measure::RttRecord*>>
      rtts_by_test_;
  std::unordered_map<std::uint32_t,
                     std::vector<const measure::HandoverRecord*>>
      handovers_by_test_;
  std::unordered_map<std::uint32_t, const measure::AppRunRecord*>
      app_run_by_test_;
  std::unordered_map<std::uint32_t,
                     std::vector<const measure::LinkTickRecord*>>
      link_ticks_by_test_;
  core::ThreadPool pool_;
};

}  // namespace

ConsolidatedDb ReplayCampaign::run() const {
  ReplayRunner runner{bundle_, config_};
  return runner.run();
}

core::obs::RunManifest make_replay_manifest(
    const ReplayConfig& config, const core::obs::RunManifest& source) {
  core::obs::RunManifest m = core::obs::make_run_manifest();
  m.seed = config.seed;
  m.scale = source.scale;
  m.threads = core::resolve_threads(config.threads);
  // Canonical rendering of everything that shapes the replayed data: the
  // knob cell (cell_label's fixed axis order), the hold policy, and the
  // source bundle's identity. Mirrors campaign::make_manifest's discipline:
  // threads is recorded but excluded — it never changes a byte.
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "replay;src=%s;srcseed=%llu;srcscale=%.17g;knobs=%s;interp=%s",
                source.config_digest.c_str(),
                static_cast<unsigned long long>(source.seed), source.scale,
                cell_label(config.knobs).c_str(),
                config.policy == HoldPolicy::Hold ? "hold" : "linear");
  m.config_digest = core::obs::hex64(core::obs::fnv1a64(buf));
  return m;
}

core::obs::RunManifest replay_to_bundle(const ReplayBundle& bundle,
                                        const ReplayConfig& config,
                                        const std::string& directory,
                                        bool canonical_provenance) {
  core::obs::RunManifest manifest =
      make_replay_manifest(config, bundle.manifest);
  if (canonical_provenance) core::obs::canonicalize_provenance(manifest);
  const ConsolidatedDb db = ReplayCampaign{bundle, config}.run();
  measure::write_dataset(db, directory, manifest);
  return manifest;
}

}  // namespace wheels::replay

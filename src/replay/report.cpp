#include "replay/report.hpp"

#include <ostream>
#include <vector>

#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "measure/enum_names.hpp"

namespace wheels::replay {

void CarrierSamples::append(const CarrierSamples& other) {
  tests += other.tests;
  app_runs += other.app_runs;
  const auto cat = [](std::vector<double>& into,
                      const std::vector<double>& from) {
    into.insert(into.end(), from.begin(), from.end());
  };
  cat(dl_mbps, other.dl_mbps);
  cat(ul_mbps, other.ul_mbps);
  cat(rtt_ms, other.rtt_ms);
  cat(video_qoe, other.video_qoe);
  cat(gaming_latency_ms, other.gaming_latency_ms);
  cat(offload_e2e_ms, other.offload_e2e_ms);
}

DbSamples collect_samples(const measure::ConsolidatedDb& db) {
  DbSamples out;
  for (radio::Carrier c : radio::kAllCarriers) {
    CarrierSamples& cs = out[measure::carrier_index(c)];
    cs.carrier = c;
    for (const auto& k : db.kpis) {
      if (k.carrier != c) continue;
      (k.direction == radio::Direction::Downlink ? cs.dl_mbps : cs.ul_mbps)
          .push_back(k.throughput);
    }
    for (const auto& r : db.rtts) {
      if (r.carrier == c) cs.rtt_ms.push_back(r.rtt);
    }
    for (const auto& a : db.app_runs) {
      if (a.carrier != c) continue;
      ++cs.app_runs;
      switch (a.app) {
        case measure::AppKind::Video:
          cs.video_qoe.push_back(a.qoe);
          break;
        case measure::AppKind::Gaming:
          cs.gaming_latency_ms.push_back(a.gaming_latency);
          break;
        default:
          cs.offload_e2e_ms.push_back(a.median_e2e);
          break;
      }
    }
    for (const auto& t : db.tests) {
      if (t.carrier == c) ++cs.tests;
    }
  }
  return out;
}

ReportSummary summarize_samples(const DbSamples& samples) {
  ReportSummary s;
  for (std::size_t ci = 0; ci < samples.size(); ++ci) {
    const CarrierSamples& in = samples[ci];
    CarrierSummary& cs = s.carriers[ci];
    cs.carrier = in.carrier;
    cs.tests = in.tests;
    cs.kpi_samples = in.dl_mbps.size() + in.ul_mbps.size();
    cs.rtt_samples = in.rtt_ms.size();
    cs.app_runs = in.app_runs;
    cs.dl_median_mbps = analysis::median_of(in.dl_mbps);
    cs.ul_median_mbps = analysis::median_of(in.ul_mbps);
    cs.rtt_median_ms = analysis::median_of(in.rtt_ms);
    cs.video_qoe = analysis::median_of(in.video_qoe);
    cs.gaming_latency_ms = analysis::median_of(in.gaming_latency_ms);
    cs.offload_e2e_ms = analysis::median_of(in.offload_e2e_ms);
  }
  return s;
}

ReportSummary summarize(const measure::ConsolidatedDb& db) {
  return summarize_samples(collect_samples(db));
}

namespace {

struct Metric {
  const char* name;
  double CarrierSummary::* field;
};

constexpr Metric kMetrics[] = {
    {"DL median (Mbps)", &CarrierSummary::dl_median_mbps},
    {"UL median (Mbps)", &CarrierSummary::ul_median_mbps},
    {"RTT median (ms)", &CarrierSummary::rtt_median_ms},
    {"video QoE", &CarrierSummary::video_qoe},
    {"gaming latency (ms)", &CarrierSummary::gaming_latency_ms},
    {"offload E2E (ms)", &CarrierSummary::offload_e2e_ms},
};

std::string fmt_change(double before, double after) {
  if (before == 0.0) return after == 0.0 ? "0%" : "-";
  return analysis::fmt_pct((after - before) / before);
}

}  // namespace

void print_summary(std::ostream& os, const std::string& title,
                   const ReportSummary& s) {
  os << title << "\n";
  analysis::Table t{{"carrier", "tests", "kpis", "rtts", "apps", "DL med",
                     "UL med", "RTT med", "QoE", "game lat", "E2E"}};
  for (const CarrierSummary& cs : s.carriers) {
    t.add_row({std::string{measure::names::to_name(cs.carrier)},
               std::to_string(cs.tests), std::to_string(cs.kpi_samples),
               std::to_string(cs.rtt_samples), std::to_string(cs.app_runs),
               analysis::fmt(cs.dl_median_mbps),
               analysis::fmt(cs.ul_median_mbps),
               analysis::fmt(cs.rtt_median_ms), analysis::fmt(cs.video_qoe),
               analysis::fmt(cs.gaming_latency_ms),
               analysis::fmt(cs.offload_e2e_ms)});
  }
  t.print(os);
}

void print_comparison(std::ostream& os, const std::string& before_title,
                      const ReportSummary& before,
                      const std::string& after_title,
                      const ReportSummary& after) {
  analysis::Table t{
      {"carrier", "metric", before_title, after_title, "change"}};
  for (std::size_t ci = 0; ci < before.carriers.size(); ++ci) {
    const CarrierSummary& b = before.carriers[ci];
    const CarrierSummary& a = after.carriers[ci];
    for (const Metric& m : kMetrics) {
      t.add_row({std::string{measure::names::to_name(b.carrier)}, m.name,
                 analysis::fmt(b.*m.field), analysis::fmt(a.*m.field),
                 fmt_change(b.*m.field, a.*m.field)});
    }
  }
  t.print(os);
}

}  // namespace wheels::replay

#include "replay/report.hpp"

#include <ostream>
#include <vector>

#include "analysis/report.hpp"
#include "analysis/stats.hpp"
#include "measure/enum_names.hpp"

namespace wheels::replay {

ReportSummary summarize(const measure::ConsolidatedDb& db) {
  ReportSummary s;
  for (radio::Carrier c : radio::kAllCarriers) {
    CarrierSummary& cs = s.carriers[measure::carrier_index(c)];
    cs.carrier = c;

    std::vector<double> dl;
    std::vector<double> ul;
    for (const auto& k : db.kpis) {
      if (k.carrier != c) continue;
      ++cs.kpi_samples;
      (k.direction == radio::Direction::Downlink ? dl : ul)
          .push_back(k.throughput);
    }
    std::vector<double> rtts;
    for (const auto& r : db.rtts) {
      if (r.carrier != c) continue;
      rtts.push_back(r.rtt);
    }
    cs.rtt_samples = rtts.size();
    std::vector<double> qoe;
    std::vector<double> glat;
    std::vector<double> e2e;
    for (const auto& a : db.app_runs) {
      if (a.carrier != c) continue;
      ++cs.app_runs;
      switch (a.app) {
        case measure::AppKind::Video:
          qoe.push_back(a.qoe);
          break;
        case measure::AppKind::Gaming:
          glat.push_back(a.gaming_latency);
          break;
        default:
          e2e.push_back(a.median_e2e);
          break;
      }
    }
    for (const auto& t : db.tests) {
      if (t.carrier == c) ++cs.tests;
    }
    cs.dl_median_mbps = analysis::median_of(std::move(dl));
    cs.ul_median_mbps = analysis::median_of(std::move(ul));
    cs.rtt_median_ms = analysis::median_of(std::move(rtts));
    cs.video_qoe = analysis::median_of(std::move(qoe));
    cs.gaming_latency_ms = analysis::median_of(std::move(glat));
    cs.offload_e2e_ms = analysis::median_of(std::move(e2e));
  }
  return s;
}

namespace {

struct Metric {
  const char* name;
  double CarrierSummary::* field;
};

constexpr Metric kMetrics[] = {
    {"DL median (Mbps)", &CarrierSummary::dl_median_mbps},
    {"UL median (Mbps)", &CarrierSummary::ul_median_mbps},
    {"RTT median (ms)", &CarrierSummary::rtt_median_ms},
    {"video QoE", &CarrierSummary::video_qoe},
    {"gaming latency (ms)", &CarrierSummary::gaming_latency_ms},
    {"offload E2E (ms)", &CarrierSummary::offload_e2e_ms},
};

std::string fmt_change(double before, double after) {
  if (before == 0.0) return after == 0.0 ? "0%" : "-";
  return analysis::fmt_pct((after - before) / before);
}

}  // namespace

void print_summary(std::ostream& os, const std::string& title,
                   const ReportSummary& s) {
  os << title << "\n";
  analysis::Table t{{"carrier", "tests", "kpis", "rtts", "apps", "DL med",
                     "UL med", "RTT med", "QoE", "game lat", "E2E"}};
  for (const CarrierSummary& cs : s.carriers) {
    t.add_row({std::string{measure::names::to_name(cs.carrier)},
               std::to_string(cs.tests), std::to_string(cs.kpi_samples),
               std::to_string(cs.rtt_samples), std::to_string(cs.app_runs),
               analysis::fmt(cs.dl_median_mbps),
               analysis::fmt(cs.ul_median_mbps),
               analysis::fmt(cs.rtt_median_ms), analysis::fmt(cs.video_qoe),
               analysis::fmt(cs.gaming_latency_ms),
               analysis::fmt(cs.offload_e2e_ms)});
  }
  t.print(os);
}

void print_comparison(std::ostream& os, const std::string& before_title,
                      const ReportSummary& before,
                      const std::string& after_title,
                      const ReportSummary& after) {
  analysis::Table t{
      {"carrier", "metric", before_title, after_title, "change"}};
  for (std::size_t ci = 0; ci < before.carriers.size(); ++ci) {
    const CarrierSummary& b = before.carriers[ci];
    const CarrierSummary& a = after.carriers[ci];
    for (const Metric& m : kMetrics) {
      t.add_row({std::string{measure::names::to_name(b.carrier)}, m.name,
                 analysis::fmt(b.*m.field), analysis::fmt(a.*m.field),
                 fmt_change(b.*m.field, a.*m.field)});
    }
  }
  t.print(os);
}

}  // namespace wheels::replay

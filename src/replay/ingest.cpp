#include "replay/ingest.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "core/obs/metrics.hpp"
#include "core/obs/trace_export.hpp"
#include "measure/csv_export.hpp"
#include "measure/validate.hpp"

namespace wheels::replay {

namespace {

namespace fs = std::filesystem;

/// Open `name` under `dir` and run `read` on it, prefixing any parse error
/// with the full bundle-relative path — when a fleet run ingests many
/// bundles, the error must identify *which* bundle was malformed, not just
/// which table.
template <typename Read>
auto read_file(const fs::path& dir, const std::string& name, Read read) {
  const fs::path path = dir / name;
  std::ifstream is{path};
  if (!is) {
    throw std::runtime_error{"replay: missing bundle file " + path.string()};
  }
  try {
    return read(is);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error{path.string() + ": " + e.what()};
  }
}

}  // namespace

ReplayBundle read_dataset(const std::string& directory,
                          std::string_view expected_config_digest) {
  core::obs::ScopedSpan span{"replay.ingest", "replay"};
  const fs::path dir{directory};
  ReplayBundle bundle;
  measure::ConsolidatedDb& db = bundle.db;

  bundle.manifest = core::obs::read_manifest((dir / "manifest.json").string());
  if (!expected_config_digest.empty() &&
      bundle.manifest.config_digest != expected_config_digest) {
    throw std::runtime_error{
        "replay: bundle config digest " + bundle.manifest.config_digest +
        " does not match expected " + std::string{expected_config_digest}};
  }

  db.tests = read_file(dir, "tests.csv", measure::read_tests_csv);
  db.kpis = read_file(dir, "kpis.csv", measure::read_kpis_csv);
  db.rtts = read_file(dir, "rtts.csv", measure::read_rtts_csv);
  db.handovers = read_file(dir, "handovers.csv", measure::read_handovers_csv);
  db.app_runs = read_file(dir, "app_runs.csv", measure::read_app_runs_csv);
  // Optional table: only campaigns that ran app sessions write it, and
  // older bundles predate it entirely (their app replays fall back to the
  // statistical carrier timeline).
  if (fs::exists(dir / "link_ticks.csv")) {
    db.link_ticks =
        read_file(dir, "link_ticks.csv", measure::read_link_ticks_csv);
  }
  // Optional table: only population campaigns (WHEELS_UES > 0) write it, and
  // older bundles predate it entirely.
  if (fs::exists(dir / "cell_load.csv")) {
    db.cell_load =
        read_file(dir, "cell_load.csv", measure::read_cell_load_csv);
  }
  for (radio::Carrier c : radio::kAllCarriers) {
    const std::size_t ci = measure::carrier_index(c);
    const std::string base{radio::carrier_name(c)};
    db.passive[ci].carrier = c;
    db.passive[ci].segments =
        read_file(dir, "coverage_passive_" + base + ".csv",
                  [&](std::istream& is) {
                    return measure::read_coverage_csv(is, c, true);
                  });
    db.active_coverage[ci] =
        read_file(dir, "coverage_active_" + base + ".csv",
                  [&](std::istream& is) {
                    return measure::read_coverage_csv(is, c, false);
                  });
  }
  read_file(dir, "summary.csv", [&](std::istream& is) {
    measure::read_summary_csv(is, db);
    return 0;
  });
  read_file(dir, "cells.csv", [&](std::istream& is) {
    measure::read_cells_csv(is, db);
    return 0;
  });

  try {
    measure::validate_or_throw(db);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error{directory + ": " + e.what()};
  }

  auto& reg = core::obs::MetricsRegistry::global();
  static const core::obs::MetricId bundles =
      reg.counter_id("replay.bundles_ingested");
  static const core::obs::MetricId rows =
      reg.counter_id("replay.rows_ingested");
  reg.add(bundles);
  reg.add(rows, db.tests.size() + db.kpis.size() + db.rtts.size() +
                    db.handovers.size() + db.app_runs.size() +
                    db.link_ticks.size());
  return bundle;
}

}  // namespace wheels::replay

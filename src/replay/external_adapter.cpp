#include "replay/external_adapter.hpp"

#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "measure/enum_names.hpp"
#include "measure/validate.hpp"
#include "replay/trace_text.hpp"

namespace wheels::replay {

namespace {

constexpr SimMillis kTickMs = 500;

measure::TestRecord make_test(std::uint32_t id, measure::TestType type,
                              radio::Carrier carrier, radio::Direction dir,
                              SimMillis start, SimMillis end) {
  measure::TestRecord t;
  t.id = id;
  t.type = type;
  t.carrier = carrier;
  t.is_static = false;
  t.start = start;
  t.end = end;
  t.start_km = 0.0;
  t.end_km = 0.0;
  t.tz = geo::Timezone::Pacific;
  t.server = net::ServerKind::Cloud;
  t.direction = dir;
  t.cycle = 0;
  return t;
}

struct Row {
  SimMillis t;
  double cap_dl;
  double cap_ul;
  double rtt;
  radio::Technology tech;
};

std::vector<Row> parse_rows(std::istream& in, bool& has_tech) {
  TraceLineReader reader{in};
  std::string line;
  if (!reader.next(line)) trace_fail(reader.line_number(), "empty trace");
  const std::vector<std::string> header = split_trace_row(line);
  const std::vector<std::string> base{"t_ms", "cap_dl_mbps", "cap_ul_mbps",
                                      "rtt_ms"};
  has_tech = false;
  if (header.size() == base.size() + 1 && header.back() == "tech") {
    has_tech = true;
  } else if (header.size() != base.size()) {
    trace_fail(reader.line_number(),
               "expected header t_ms,cap_dl_mbps,cap_ul_mbps,rtt_ms[,tech]");
  }
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (header[i] != base[i]) {
      trace_fail(reader.line_number(), "expected header column '" + base[i] +
                                           "', got '" + header[i] + "'");
    }
  }

  std::vector<Row> rows;
  while (reader.next(line)) {
    const std::size_t line_no = reader.line_number();
    const std::vector<std::string> cells = split_trace_row(line);
    if (cells.size() != base.size() + (has_tech ? 1 : 0)) {
      trace_fail(line_no,
                 "expected " +
                     std::to_string(base.size() + (has_tech ? 1 : 0)) +
                     " columns, got " + std::to_string(cells.size()));
    }
    Row r;
    r.t = parse_trace_time_ms(cells[0], line_no);
    r.cap_dl = parse_trace_double(cells[1], line_no);
    r.cap_ul = parse_trace_double(cells[2], line_no);
    r.rtt = parse_trace_double(cells[3], line_no);
    if (r.cap_dl < 0.0 || r.cap_ul < 0.0) {
      trace_fail(line_no, "negative capacity");
    }
    if (r.rtt <= 0.0) trace_fail(line_no, "rtt must be > 0");
    r.tech = radio::Technology::Lte;
    if (has_tech) {
      try {
        r.tech = measure::names::parse_technology(cells[4]);
      } catch (const std::runtime_error& e) {
        trace_fail(line_no, e.what());
      }
    }
    if (!rows.empty() && r.t < rows.back().t) {
      trace_fail(line_no, "time going backwards");
    }
    if (!rows.empty() && r.t == rows.back().t) {
      trace_fail(line_no, "duplicate time " + std::to_string(r.t));
    }
    rows.push_back(r);
  }
  if (rows.empty()) trace_fail(reader.line_number(), "trace has no data rows");
  return rows;
}

}  // namespace

ReplayBundle import_external_trace_csv(std::istream& is,
                                       radio::Carrier carrier) {
  std::ostringstream raw;
  raw << is.rdbuf();
  const std::string content = raw.str();
  std::istringstream in{content};

  std::vector<Row> rows;
  try {
    bool has_tech = false;
    rows = parse_rows(in, has_tech);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error{std::string{"external trace: "} + e.what()};
  }

  ReplayBundle bundle;
  measure::ConsolidatedDb& db = bundle.db;
  const SimMillis start = rows.front().t;
  const SimMillis end = rows.back().t + kTickMs;

  db.tests.push_back(make_test(1, measure::TestType::DownlinkBulk, carrier,
                               radio::Direction::Downlink, start, end));
  db.tests.push_back(make_test(2, measure::TestType::UplinkBulk, carrier,
                               radio::Direction::Uplink, start, end));
  db.tests.push_back(make_test(3, measure::TestType::Rtt, carrier,
                               radio::Direction::Downlink, start, end));

  for (const Row& r : rows) {
    for (const bool dl : {true, false}) {
      measure::KpiRecord k;
      k.test_id = dl ? 1 : 2;
      k.t = r.t;
      k.carrier = carrier;
      k.tech = r.tech;
      k.cell_id = 1;
      k.rsrp = -90.0;
      k.mcs = 20;
      k.bler = 0.0;
      k.ca = 1;
      k.throughput = dl ? r.cap_dl : r.cap_ul;
      k.direction = dl ? radio::Direction::Downlink : radio::Direction::Uplink;
      db.kpis.push_back(k);
    }
    measure::RttRecord rr;
    rr.test_id = 3;
    rr.t = r.t;
    rr.carrier = carrier;
    rr.tech = r.tech;
    rr.rtt = r.rtt;
    db.rtts.push_back(rr);
  }

  for (radio::Carrier c : radio::kAllCarriers) {
    db.passive[measure::carrier_index(c)].carrier = c;
  }
  db.experiment_runtime[measure::carrier_index(carrier)] =
      static_cast<Millis>(end - start) * 3.0;

  bundle.manifest = core::obs::make_run_manifest();
  bundle.manifest.seed = 0;
  bundle.manifest.scale = 1.0;
  bundle.manifest.threads = 1;
  bundle.manifest.config_digest =
      core::obs::hex64(core::obs::fnv1a64(content));

  measure::validate_or_throw(db);
  return bundle;
}

ReplayBundle import_external_trace_file(const std::string& path,
                                        radio::Carrier carrier) {
  std::ifstream is{path};
  if (!is) {
    throw std::runtime_error{"external trace: cannot open " + path};
  }
  try {
    return import_external_trace_csv(is, carrier);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error{path + ": " + e.what()};
  }
}

}  // namespace wheels::replay

#include "replay/trace_channel.hpp"

#include <algorithm>
#include <cmath>

namespace wheels::replay {

namespace {

double lerp(double a, double b, double f) { return a + (b - a) * f; }

TraceSample from_kpi(const measure::KpiRecord& k, Mbps cap_dl, Mbps cap_ul) {
  TraceSample s;
  s.t = k.t;
  s.tech = k.tech;
  s.cell_id = k.cell_id;
  s.rsrp = k.rsrp;
  s.mcs = k.mcs;
  s.bler = k.bler;
  s.ca = k.ca;
  s.capacity_dl = cap_dl;
  s.capacity_ul = cap_ul;
  s.speed = k.speed;
  s.km = k.km;
  s.map_km = k.map_km;
  s.tz = k.tz;
  s.region = k.region;
  return s;
}

}  // namespace

TraceChannel::TraceChannel(std::vector<TraceSample> samples,
                           std::vector<ran::HandoverEvent> handovers,
                           HoldPolicy policy)
    : samples_(std::move(samples)),
      handovers_(std::move(handovers)),
      policy_(policy) {
  std::stable_sort(
      samples_.begin(), samples_.end(),
      [](const TraceSample& a, const TraceSample& b) { return a.t < b.t; });
  std::stable_sort(handovers_.begin(), handovers_.end(),
                   [](const ran::HandoverEvent& a,
                      const ran::HandoverEvent& b) { return a.t < b.t; });
}

std::size_t TraceChannel::index_at(SimMillis t) const {
  // Last sample with sample.t <= t; upper_bound finds the first later one.
  const auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](SimMillis value, const TraceSample& s) { return value < s.t; });
  if (it == samples_.begin()) return 0;
  return static_cast<std::size_t>(it - samples_.begin()) - 1;
}

TraceSample TraceChannel::at(SimMillis t) const {
  if (samples_.empty()) return TraceSample{};
  const std::size_t i = index_at(t);
  TraceSample s = samples_[i];
  if (policy_ == HoldPolicy::Hold || i + 1 >= samples_.size() ||
      t <= samples_[i].t) {
    return s;
  }
  const TraceSample& next = samples_[i + 1];
  const double span = static_cast<double>(next.t - s.t);
  if (span <= 0.0) return s;
  const double f = std::clamp(static_cast<double>(t - s.t) / span, 0.0, 1.0);
  s.capacity_dl = lerp(s.capacity_dl, next.capacity_dl, f);
  s.capacity_ul = lerp(s.capacity_ul, next.capacity_ul, f);
  s.rsrp = lerp(s.rsrp, next.rsrp, f);
  s.bler = lerp(s.bler, next.bler, f);
  s.rtt = lerp(s.rtt, next.rtt, f);
  s.speed = lerp(s.speed, next.speed, f);
  s.km = lerp(s.km, next.km, f);
  s.map_km = lerp(s.map_km, next.map_km, f);
  // tech / cell / mcs / ca / tz / region are discrete: they hold.
  return s;
}

radio::LinkKpis TraceChannel::kpis_at(SimMillis t) const {
  const TraceSample s = at(t);
  radio::LinkKpis k;
  k.rsrp = s.rsrp;
  k.mcs_dl = s.mcs;
  k.mcs_ul = s.mcs;
  k.bler_dl = s.bler;
  k.bler_ul = s.bler;
  k.cc_dl = s.ca;
  k.cc_ul = s.ca;
  k.capacity_dl = s.capacity_dl;
  k.capacity_ul = s.capacity_ul;
  k.outage =
      std::max(s.capacity_dl, s.capacity_ul) < kOutageThresholdMbps;
  return k;
}

TraceEvents TraceChannel::events_in(SimMillis t, Millis dt) const {
  TraceEvents ev;
  const auto lo = std::lower_bound(
      handovers_.begin(), handovers_.end(), t,
      [](const ran::HandoverEvent& h, SimMillis value) { return h.t < value; });
  const SimMillis window_end = t + static_cast<SimMillis>(dt);
  for (auto it = lo; it != handovers_.end() && it->t < window_end; ++it) {
    ++ev.handovers;
    ev.interruption += it->duration;
  }
  ev.interruption = std::min(ev.interruption, dt);
  return ev;
}

TraceChannel channel_for_test(const measure::ConsolidatedDb& db,
                              const measure::TestRecord& test,
                              HoldPolicy policy) {
  std::vector<TraceSample> samples;
  if (test.type == measure::TestType::Rtt) {
    for (const auto& r : db.rtts) {
      if (r.test_id != test.id) continue;
      TraceSample s;
      s.t = r.t;
      s.tech = r.tech;
      s.rtt = r.rtt;
      s.speed = r.speed;
      s.tz = r.tz;
      samples.push_back(s);
    }
  } else {
    for (const auto& k : db.kpis) {
      if (k.test_id != test.id) continue;
      // The recorded application-layer throughput is what the link actually
      // delivered that tick — it becomes the replayed bottleneck capacity.
      samples.push_back(from_kpi(k, k.throughput, k.throughput));
    }
  }
  std::vector<ran::HandoverEvent> handovers;
  for (const auto& h : db.handovers) {
    if (h.test_id == test.id) handovers.push_back(h.event);
  }
  return TraceChannel{std::move(samples), std::move(handovers), policy};
}

TraceChannel carrier_timeline(const measure::ConsolidatedDb& db,
                              radio::Carrier carrier, bool is_static,
                              HoldPolicy policy) {
  std::vector<const measure::KpiRecord*> rows;
  for (const auto& k : db.kpis) {
    if (k.carrier == carrier && k.is_static == is_static) rows.push_back(&k);
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const measure::KpiRecord* a,
                      const measure::KpiRecord* b) { return a->t < b->t; });

  std::vector<TraceSample> samples;
  samples.reserve(rows.size());
  Mbps last_dl = 0.0;
  Mbps last_ul = 0.0;
  for (const measure::KpiRecord* k : rows) {
    if (k->direction == radio::Direction::Downlink) {
      last_dl = k->throughput;
    } else {
      last_ul = k->throughput;
    }
    samples.push_back(from_kpi(*k, last_dl, last_ul));
  }

  // Fold the carrier's RTT observations in: each sample carries the most
  // recent echo at or before it (the link's unloaded path RTT there).
  std::vector<const measure::RttRecord*> echoes;
  for (const auto& r : db.rtts) {
    if (r.carrier == carrier && r.is_static == is_static) echoes.push_back(&r);
  }
  std::stable_sort(echoes.begin(), echoes.end(),
                   [](const measure::RttRecord* a,
                      const measure::RttRecord* b) { return a->t < b->t; });
  std::size_t e = 0;
  Millis last_rtt = 50.0;
  for (TraceSample& s : samples) {
    while (e < echoes.size() && echoes[e]->t <= s.t) {
      last_rtt = echoes[e]->rtt;
      ++e;
    }
    s.rtt = last_rtt;
  }

  std::vector<ran::HandoverEvent> handovers;
  for (const auto& h : db.handovers) {
    if (h.carrier == carrier) handovers.push_back(h.event);
  }
  return TraceChannel{std::move(samples), std::move(handovers), policy};
}

ran::UePool::CapacityFn population_capacity_from_trace(
    const TraceChannel& channel) {
  return [&channel](const radio::CellSite& cell, SimMillis t,
                    Mbps model_capacity) -> Mbps {
    if (channel.empty()) return model_capacity;
    const TraceSample s = channel.at(t);
    // Only the cell the recorded phone was camped on has evidence in the
    // trace; every other cell keeps the band-plan model.
    if (s.cell_id != cell.id) return model_capacity;
    return std::max<Mbps>(s.capacity_dl, 0.0);
  };
}

}  // namespace wheels::replay

#include "replay/fleet.hpp"

#include <algorithm>
#include <filesystem>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "analysis/report.hpp"
#include "campaign/fleet_runner.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/trace_export.hpp"
#include "measure/csv_export.hpp"
#include "measure/enum_names.hpp"
#include "replay/external_adapter.hpp"

namespace wheels::replay {

namespace {
constexpr std::size_t kCarriers = radio::kCarrierCount;
}  // namespace

const std::array<const char*, kFleetMetricCount> kFleetMetricNames{
    "dl_mbps",    "ul_mbps",          "rtt_ms",
    "video_qoe",  "gaming_latency_ms", "offload_e2e_ms"};

const std::vector<double>& metric_series(const CarrierSamples& samples,
                                         std::size_t metric) {
  switch (metric) {
    case 0:
      return samples.dl_mbps;
    case 1:
      return samples.ul_mbps;
    case 2:
      return samples.rtt_ms;
    case 3:
      return samples.video_qoe;
    case 4:
      return samples.gaming_latency_ms;
    default:
      return samples.offload_e2e_ms;
  }
}

namespace {

bool is_baseline(const ReplayKnobs& k) {
  return !k.cc.has_value() && !k.server.has_value() &&
         !k.max_tier.has_value();
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string cell;
  for (char ch : s) {
    if (ch == ',') {
      out.push_back(cell);
      cell.clear();
    } else {
      cell.push_back(ch);
    }
  }
  out.push_back(cell);
  return out;
}

/// Percentile bootstrap of (median(cell) - median(base)) with independent
/// resamples of both series per iteration. Mirrors bootstrap_ci's stream
/// discipline (one child per iteration, stats sorted before the quantiles
/// are read) so the CI is identical for every thread count.
analysis::ConfidenceInterval bootstrap_delta_ci(
    const std::vector<double>& cell, const std::vector<double>& base_xs,
    Rng& rng, double level, int iterations) {
  analysis::ConfidenceInterval ci;
  ci.point = analysis::median_of(cell) - analysis::median_of(base_xs);

  std::vector<double> stats(static_cast<std::size_t>(iterations));
  const Rng base{rng.next_u64()};
  std::vector<double> rc(cell.size());
  std::vector<double> rb(base_xs.size());
  const auto draw = [](Rng& r, const std::vector<double>& from,
                       std::vector<double>& into) {
    for (std::size_t i = 0; i < into.size(); ++i) {
      into[i] = from[static_cast<std::size_t>(
          r.uniform_int(0, static_cast<int>(from.size()) - 1))];
    }
  };
  for (int it = 0; it < iterations; ++it) {
    Rng r_cell = base.fork("cell", static_cast<std::uint64_t>(it));
    Rng r_base = base.fork("base", static_cast<std::uint64_t>(it));
    draw(r_cell, cell, rc);
    draw(r_base, base_xs, rb);
    stats[static_cast<std::size_t>(it)] =
        analysis::median_of(rc) - analysis::median_of(rb);
  }
  std::sort(stats.begin(), stats.end());
  const double alpha = (1.0 - level) / 2.0;
  const auto idx = [&](double q) {
    return stats[static_cast<std::size_t>(
        std::clamp(q * static_cast<double>(stats.size() - 1), 0.0,
                   static_cast<double>(stats.size() - 1)))];
  };
  ci.lo = idx(alpha);
  ci.hi = idx(1.0 - alpha);
  return ci;
}

transport::CcAlgo parse_cc(const std::string& text) {
  if (text == transport::cc_algo_name(transport::CcAlgo::Cubic)) {
    return transport::CcAlgo::Cubic;
  }
  if (text == transport::cc_algo_name(transport::CcAlgo::Bbr)) {
    return transport::CcAlgo::Bbr;
  }
  throw std::runtime_error{"unknown cc algorithm '" + text +
                           "' (expected cubic|bbr)"};
}

/// One axis's value list: "recorded" keeps the knob unset, anything else
/// goes through `parse`. Rejects empty lists and repeated values.
template <typename T, typename Parse>
std::vector<std::optional<T>> parse_axis(const std::string& values,
                                         Parse parse) {
  std::vector<std::optional<T>> out;
  for (const std::string& v : split_csv(values)) {
    if (v.empty()) throw std::runtime_error{"empty value in list"};
    std::optional<T> cell;
    if (v != "recorded") cell = parse(v);
    for (const std::optional<T>& seen : out) {
      if (seen == cell) {
        throw std::runtime_error{"duplicated value '" + v + "'"};
      }
    }
    out.push_back(cell);
  }
  return out;
}

}  // namespace

void apply_grid_axis(KnobGrid& grid, const std::string& spec) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
    throw std::runtime_error{"fleet grid: expected DIM=value,value,... got '" +
                             spec + "'"};
  }
  const std::string dim = spec.substr(0, eq);
  const std::string values = spec.substr(eq + 1);
  try {
    if (dim == "cc") {
      grid.cc = parse_axis<transport::CcAlgo>(values, parse_cc);
    } else if (dim == "server") {
      grid.server = parse_axis<net::ServerKind>(
          values, [](const std::string& v) {
            return measure::names::parse_server_kind(v);
          });
    } else if (dim == "tier" || dim == "max_tier") {
      grid.max_tier = parse_axis<radio::Technology>(
          values, [](const std::string& v) {
            return measure::names::parse_technology(v);
          });
    } else {
      throw std::runtime_error{"unknown dimension '" + dim +
                               "' (expected cc|server|tier)"};
    }
  } catch (const std::runtime_error& e) {
    throw std::runtime_error{"fleet grid: " + spec + ": " + e.what()};
  }
}

std::vector<ReplayKnobs> expand_grid(const KnobGrid& grid) {
  std::vector<ReplayKnobs> cells;
  cells.reserve(grid.cc.size() * grid.server.size() * grid.max_tier.size() +
                1);
  bool has_baseline = false;
  for (const auto& cc : grid.cc) {
    for (const auto& server : grid.server) {
      for (const auto& tier : grid.max_tier) {
        ReplayKnobs k;
        k.cc = cc;
        k.server = server;
        k.max_tier = tier;
        has_baseline = has_baseline || is_baseline(k);
        cells.push_back(k);
      }
    }
  }
  if (!has_baseline) {
    cells.insert(cells.begin(), ReplayKnobs{});
  }
  return cells;
}

std::string cell_label(const ReplayKnobs& knobs) {
  if (is_baseline(knobs)) return "recorded";
  std::string out = "cc=";
  out += knobs.cc.has_value()
             ? std::string{transport::cc_algo_name(*knobs.cc)}
             : "recorded";
  out += "|server=";
  out += knobs.server.has_value()
             ? std::string{measure::names::to_name(*knobs.server)}
             : "recorded";
  out += "|tier=";
  out += knobs.max_tier.has_value()
             ? std::string{measure::names::to_name(*knobs.max_tier)}
             : "recorded";
  return out;
}

ReplayBundle load_fleet_bundle(const std::string& spec) {
  std::string path = spec;
  radio::Carrier carrier = radio::Carrier::Verizon;
  if (const std::size_t at = spec.rfind('@');
      at != std::string::npos && at + 1 < spec.size()) {
    carrier = measure::names::parse_carrier(spec.substr(at + 1));
    path = spec.substr(0, at);
  }
  const bool is_csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (is_csv) return import_external_trace_file(path, carrier);
  return read_dataset(path);
}

std::vector<std::string> expand_fleet_specs(
    const std::vector<std::string>& specs) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  for (const std::string& spec : specs) {
    const bool is_csv = spec.find(".csv") != std::string::npos;
    if (is_csv || !fs::is_directory(spec) ||
        fs::exists(fs::path{spec} / "manifest.json")) {
      out.push_back(spec);
      continue;
    }
    std::vector<std::string> children;
    for (const fs::directory_entry& entry : fs::directory_iterator{spec}) {
      if (entry.is_directory() &&
          fs::exists(entry.path() / "manifest.json")) {
        children.push_back(entry.path().string());
      }
    }
    if (children.empty()) {
      throw std::runtime_error{"fleet: " + spec +
                               " contains no bundle directories"};
    }
    std::sort(children.begin(), children.end());
    out.insert(out.end(), children.begin(), children.end());
  }
  return out;
}

ReplayFleet::ReplayFleet(FleetConfig config)
    : config_(std::move(config)), cells_(expand_grid(config_.grid)) {}

FleetResult ReplayFleet::run(const std::vector<FleetItem>& items) const {
  core::obs::ScopedSpan span{"replay.fleet.run", "replay"};
  static const core::obs::Counter fleet_bundles{"replay.fleet.bundles"};
  static const core::obs::Counter fleet_cells{"replay.fleet.cells"};
  fleet_bundles.add(items.size());
  fleet_cells.add(cells_.size());

  FleetResult out;
  out.cells = cells_;
  out.bundles.reserve(items.size());
  for (const FleetItem& item : items) out.bundles.push_back(item.name);

  // Phase 1: every (bundle, cell) pair replays into its own slot.
  const std::size_t ncells = cells_.size();
  const std::size_t jobs = items.size() * ncells;
  std::vector<DbSamples> samples(jobs);
  out.runs.resize(jobs);
  campaign::run_indexed(config_.threads, jobs, [&](std::size_t j) {
    core::obs::ScopedSpan item_span{"replay.fleet.item", "replay"};
    static const core::obs::Counter runs{"replay.fleet.runs"};
    runs.add();
    const std::size_t bi = j / ncells;
    const std::size_t ci = j % ncells;
    ReplayConfig cfg = config_.replay;
    cfg.threads = 1;  // fleet-level parallelism only (see FleetConfig)
    cfg.knobs = cells_[ci];
    const measure::ConsolidatedDb db =
        ReplayCampaign{*items[bi].bundle, cfg}.run();
    samples[j] = collect_samples(db);
    out.runs[j].bundle = bi;
    out.runs[j].cell = ci;
    out.runs[j].summary = summarize_samples(samples[j]);
  });

  // Pool each cell's samples across bundles in submission order — the same
  // fixed concatenation order for every thread count.
  std::vector<DbSamples> pooled(ncells);
  for (std::size_t ci = 0; ci < ncells; ++ci) {
    for (std::size_t c = 0; c < kCarriers; ++c) {
      pooled[ci][c].carrier = radio::kAllCarriers[c];
      for (std::size_t bi = 0; bi < items.size(); ++bi) {
        pooled[ci][c].append(samples[bi * ncells + ci][c]);
      }
    }
  }

  // Phase 2: pooled medians and bootstrap CIs, one independent job per
  // (cell, carrier, metric) slot. Each CI draws from its own Rng stream
  // forked off (seed, cell, carrier, metric), so the aggregate does not
  // depend on job scheduling.
  out.aggregate.resize(ncells);
  for (std::size_t ci = 0; ci < ncells; ++ci) out.aggregate[ci].cell = ci;
  constexpr std::size_t kPerCell = kCarriers * kFleetMetricCount;
  campaign::run_indexed(
      config_.threads, ncells * kPerCell, [&](std::size_t j) {
        const std::size_t ci = j / kPerCell;
        const std::size_t c = (j % kPerCell) / kFleetMetricCount;
        const std::size_t m = j % kFleetMetricCount;
        const std::vector<double>& xs = metric_series(pooled[ci][c], m);
        MetricAggregate& agg = out.aggregate[ci].metrics[c][m];
        agg.n = xs.size();
        if (xs.empty()) return;
        agg.median = analysis::median_of(xs);
        Rng rng = Rng{config_.replay.seed}
                      .fork("fleet.ci", ci)
                      .fork(radio::carrier_name(pooled[ci][c].carrier))
                      .fork(kFleetMetricNames[m]);
        agg.ci = analysis::bootstrap_median_ci(xs, rng, 0.95,
                                               config_.ci_iterations, 1);
        // Significance vs the recorded baseline: does the knob's delta
        // clear bootstrap noise? Baseline rows carry no delta.
        const std::vector<double>& base_xs = metric_series(pooled[0][c], m);
        if (ci == 0 || base_xs.empty()) return;
        Rng drng = Rng{config_.replay.seed}
                       .fork("fleet.delta", ci)
                       .fork(radio::carrier_name(pooled[ci][c].carrier))
                       .fork(kFleetMetricNames[m]);
        agg.delta_ci =
            bootstrap_delta_ci(xs, base_xs, drng, 0.95, config_.ci_iterations);
        agg.has_delta = true;
        agg.significant = agg.delta_ci.lo > 0.0 || agg.delta_ci.hi < 0.0;
      });
  return out;
}

void write_fleet_csv(std::ostream& os, const FleetResult& result) {
  os << "cell,carrier,metric,n,median,ci_lo,ci_hi,delta_vs_recorded_pct,"
        "significant\n";
  for (const CellAggregate& cell : result.aggregate) {
    const std::string label = cell_label(result.cells[cell.cell]);
    for (std::size_t c = 0; c < kCarriers; ++c) {
      for (std::size_t m = 0; m < kFleetMetricCount; ++m) {
        const MetricAggregate& a = cell.metrics[c][m];
        const MetricAggregate& base = result.aggregate.front().metrics[c][m];
        os << label << ','
           << measure::names::to_name(radio::kAllCarriers[c]) << ','
           << kFleetMetricNames[m] << ',' << a.n << ',';
        if (a.n > 0) {
          os << measure::csv_double(a.median) << ','
             << measure::csv_double(a.ci.lo) << ','
             << measure::csv_double(a.ci.hi);
        } else {
          os << ",,";
        }
        os << ',';
        if (a.n > 0 && base.n > 0 && base.median != 0.0) {
          os << measure::csv_double((a.median / base.median - 1.0) * 100.0);
        }
        os << ',';
        if (a.has_delta) os << (a.significant ? '1' : '0');
        os << '\n';
      }
    }
  }
}

namespace {

std::string fmt_agg(const MetricAggregate& a) {
  if (a.n == 0) return "-";
  return analysis::fmt(a.median) + " [" + analysis::fmt(a.ci.lo) + "," +
         analysis::fmt(a.ci.hi) + "]";
}

std::string fmt_delta(const MetricAggregate& a, const MetricAggregate& base) {
  if (a.n == 0 || base.n == 0 || base.median == 0.0) return "-";
  std::string out = analysis::fmt_pct(a.median / base.median - 1.0);
  // '*': the delta's own bootstrap CI excludes zero.
  if (a.significant) out += " *";
  return out;
}

}  // namespace

void print_fleet(std::ostream& os, const FleetResult& result) {
  const std::size_t ncells = result.cells.size();
  for (std::size_t ci = 0; ci < ncells; ++ci) {
    os << "Cell " << cell_label(result.cells[ci]) << " — per-bundle medians\n";
    analysis::Table t{{"bundle", "carrier", "tests", "DL med", "UL med",
                       "RTT med", "QoE", "game lat", "E2E"}};
    for (std::size_t bi = 0; bi < result.bundles.size(); ++bi) {
      const ReportSummary& s = result.runs[bi * ncells + ci].summary;
      for (const CarrierSummary& cs : s.carriers) {
        t.add_row({result.bundles[bi],
                   std::string{measure::names::to_name(cs.carrier)},
                   std::to_string(cs.tests), analysis::fmt(cs.dl_median_mbps),
                   analysis::fmt(cs.ul_median_mbps),
                   analysis::fmt(cs.rtt_median_ms),
                   analysis::fmt(cs.video_qoe),
                   analysis::fmt(cs.gaming_latency_ms),
                   analysis::fmt(cs.offload_e2e_ms)});
      }
    }
    t.print(os);
    os << '\n';
  }

  os << "Fleet aggregate — pooled medians [95% CI]\n";
  analysis::Table agg{{"cell", "carrier", "DL med", "UL med", "RTT med",
                       "QoE", "game lat", "E2E"}};
  for (const CellAggregate& cell : result.aggregate) {
    for (std::size_t c = 0; c < kCarriers; ++c) {
      std::vector<std::string> row{
          cell_label(result.cells[cell.cell]),
          std::string{measure::names::to_name(radio::kAllCarriers[c])}};
      for (std::size_t m = 0; m < kFleetMetricCount; ++m) {
        row.push_back(fmt_agg(cell.metrics[c][m]));
      }
      agg.add_row(std::move(row));
    }
  }
  agg.print(os);

  if (ncells > 1) {
    os << "\nCounterfactual deltas vs recorded baseline\n";
    analysis::Table delta{{"cell", "carrier", "DL", "UL", "RTT", "QoE",
                           "game lat", "E2E"}};
    for (std::size_t ci = 1; ci < ncells; ++ci) {
      for (std::size_t c = 0; c < kCarriers; ++c) {
        std::vector<std::string> row{
            cell_label(result.cells[ci]),
            std::string{measure::names::to_name(radio::kAllCarriers[c])}};
        for (std::size_t m = 0; m < kFleetMetricCount; ++m) {
          row.push_back(fmt_delta(result.aggregate[ci].metrics[c][m],
                                  result.aggregate.front().metrics[c][m]));
        }
        delta.add_row(std::move(row));
      }
    }
    delta.print(os);
    os << "(* = delta's bootstrap 95% CI excludes zero)\n";
  }
}

}  // namespace wheels::replay

// ReplayCampaign: re-run the transport and application layers over a
// recorded drive.
//
// The recorded bundle pins the radio layer (per-test TraceChannels and
// per-carrier timelines replace the stochastic channel); TCP bulk flows, the
// ping latency model and all four apps run live on top. With unchanged knobs
// the replay reproduces the recorded per-test summaries; with a knob turned
// — another congestion control, cloud<->edge, a service-tier cap — the same
// recorded radio conditions answer a counterfactual.
//
// Execution mirrors DriveCampaign's determinism contract: the per-carrier
// replays are computationally independent (per-test Rng streams forked from
// (seed, carrier, test id)), fan out across core::ThreadPool, and merge
// their measure::RecordShards in canonical carrier order — the produced
// ConsolidatedDb is byte-identical for every WHEELS_THREADS
// (tests/test_replay.cpp).
#pragma once

#include <cstdint>
#include <optional>

#include "measure/records.hpp"
#include "net/server.hpp"
#include "radio/technology.hpp"
#include "replay/ingest.hpp"
#include "replay/trace_channel.hpp"
#include "transport/tcp_flow.hpp"

namespace wheels::replay {

/// Counterfactual switches. Unset = replay what was recorded.
struct ReplayKnobs {
  /// Congestion control for the replayed bulk transfers (recorded: CUBIC).
  std::optional<transport::CcAlgo> cc;
  /// Force every test onto this server class (cloud<->edge swap); RTTs and
  /// app latency shift by the base-RTT delta at the recorded position.
  std::optional<net::ServerKind> server;
  /// Service-tier policy cap: technologies above this tier are downgraded
  /// to it and the replayed capacity is clamped to the tier's PHY ceiling
  /// ("what if this plan had no mmWave?").
  std::optional<radio::Technology> max_tier;
};

struct ReplayConfig {
  /// Seed of the replay's own stochastic layers (transport loss draws). The
  /// radio timeline is recorded and does not consume randomness.
  std::uint64_t seed = 20220808;
  HoldPolicy policy = HoldPolicy::Hold;
  /// Worker threads, resolved like the campaign's (0 = WHEELS_THREADS/auto).
  int threads = 0;
  ReplayKnobs knobs;
};

/// Read WHEELS_REPLAY_SEED, WHEELS_REPLAY_INTERP (hold|linear),
/// WHEELS_REPLAY_CC (cubic|bbr), WHEELS_REPLAY_SERVER (cloud|edge) and
/// WHEELS_REPLAY_MAX_TIER (a technology name). Malformed values warn on
/// stderr and keep the default, like campaign::config_from_env.
ReplayConfig replay_config_from_env();

/// The provenance manifest of a replay about to run: seed = the replay's
/// own seed, scale carried over from the source, and a config digest over
/// everything that shapes the replayed data — the knob cell, the hold
/// policy, and the source bundle's identity (config digest, seed, scale).
/// Computable before the replay runs, so wheelsd keys its result cache on
/// it; written into every bundle replay_to_bundle produces.
core::obs::RunManifest make_replay_manifest(
    const ReplayConfig& config, const core::obs::RunManifest& source);

/// Replay `bundle` under `config` and write the resulting dataset bundle
/// into `directory` (the callable job entry point wheelsd schedules).
/// Returns the manifest the bundle was written with; `canonical_provenance`
/// pins its wall-clock/threads fields (core::obs::canonicalize_provenance)
/// so identical requests produce byte-identical bundles.
core::obs::RunManifest replay_to_bundle(const ReplayBundle& bundle,
                                        const ReplayConfig& config,
                                        const std::string& directory,
                                        bool canonical_provenance = false);

class ReplayCampaign {
 public:
  ReplayCampaign(const ReplayBundle& bundle, ReplayConfig config)
      : bundle_(bundle), config_(config) {}

  /// Replay every recorded test and return the resulting database. Test ids,
  /// order and windows are preserved from the recording; geometry-derived
  /// state (driven km, passive logs, coverage, cells, runtimes) is carried
  /// over unchanged — the radio world is fixed, only transport/apps re-run.
  measure::ConsolidatedDb run() const;

  const ReplayConfig& config() const { return config_; }

 private:
  const ReplayBundle& bundle_;
  ReplayConfig config_;
};

}  // namespace wheels::replay

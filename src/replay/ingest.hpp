// Bundle ingestion: reassemble a ConsolidatedDb from a dataset directory.
//
// The inverse of measure::write_dataset. Every table the writer emits is
// read back through the strict measure readers, the manifest is parsed, and
// the assembled database passes measure::validate_or_throw before anything
// replays over it — a hand-edited or third-party bundle fails loudly, with
// the offending file and line.
#pragma once

#include <string>
#include <string_view>

#include "core/obs/manifest.hpp"
#include "measure/records.hpp"

namespace wheels::replay {

struct ReplayBundle {
  measure::ConsolidatedDb db;
  core::obs::RunManifest manifest;
};

/// Read the bundle at `directory` (the file set write_dataset produces).
/// Throws std::runtime_error — prefixed with the offending file — on a
/// missing file, malformed content, or a database that fails validation.
/// When `expected_config_digest` is non-empty it is checked against the
/// manifest's recorded digest, so a caller can verify the bundle was
/// produced by the configuration it is about to compare against.
ReplayBundle read_dataset(const std::string& directory,
                          std::string_view expected_config_digest = {});

}  // namespace wheels::replay

// Per-carrier summaries of a (replayed or recorded) ConsolidatedDb and a
// side-by-side comparison table — the CLI's "what changed" view and the
// fidelity test's yardstick.
#pragma once

#include <array>
#include <iosfwd>
#include <string>

#include "measure/records.hpp"
#include "radio/technology.hpp"

namespace wheels::replay {

/// Headline medians of one carrier's slice of a database.
struct CarrierSummary {
  radio::Carrier carrier = radio::Carrier::Verizon;
  std::size_t tests = 0;
  std::size_t kpi_samples = 0;
  std::size_t rtt_samples = 0;
  std::size_t app_runs = 0;
  double dl_median_mbps = 0.0;
  double ul_median_mbps = 0.0;
  double rtt_median_ms = 0.0;
  double video_qoe = 0.0;
  double gaming_latency_ms = 0.0;
  double offload_e2e_ms = 0.0;
};

struct ReportSummary {
  std::array<CarrierSummary, radio::kCarrierCount> carriers;
};

ReportSummary summarize(const measure::ConsolidatedDb& db);

/// Print one database's per-carrier headline table.
void print_summary(std::ostream& os, const std::string& title,
                   const ReportSummary& s);

/// Print `before` and `after` side by side, one row per (carrier, metric),
/// with the relative change — the counterfactual diff view.
void print_comparison(std::ostream& os, const std::string& before_title,
                      const ReportSummary& before,
                      const std::string& after_title,
                      const ReportSummary& after);

}  // namespace wheels::replay

// Per-carrier summaries of a (replayed or recorded) ConsolidatedDb and a
// side-by-side comparison table — the CLI's "what changed" view and the
// fidelity test's yardstick.
#pragma once

#include <array>
#include <iosfwd>
#include <string>
#include <vector>

#include "measure/records.hpp"
#include "radio/technology.hpp"

namespace wheels::replay {

/// Raw per-carrier sample series of a database — the inputs the headline
/// medians are computed from. ReplayFleet pools these across bundles, so
/// fleet-level medians/CIs are over the union of samples, not medians of
/// medians.
struct CarrierSamples {
  radio::Carrier carrier = radio::Carrier::Verizon;
  std::size_t tests = 0;
  std::vector<double> dl_mbps;
  std::vector<double> ul_mbps;
  std::vector<double> rtt_ms;
  std::vector<double> video_qoe;
  std::vector<double> gaming_latency_ms;
  std::vector<double> offload_e2e_ms;
  std::size_t app_runs = 0;

  /// Append every series of `other` (same carrier) to this one.
  void append(const CarrierSamples& other);
};

using DbSamples = std::array<CarrierSamples, radio::kCarrierCount>;

DbSamples collect_samples(const measure::ConsolidatedDb& db);

/// Headline medians of one carrier's slice of a database.
struct CarrierSummary {
  radio::Carrier carrier = radio::Carrier::Verizon;
  std::size_t tests = 0;
  std::size_t kpi_samples = 0;
  std::size_t rtt_samples = 0;
  std::size_t app_runs = 0;
  double dl_median_mbps = 0.0;
  double ul_median_mbps = 0.0;
  double rtt_median_ms = 0.0;
  double video_qoe = 0.0;
  double gaming_latency_ms = 0.0;
  double offload_e2e_ms = 0.0;
};

struct ReportSummary {
  std::array<CarrierSummary, radio::kCarrierCount> carriers;
};

ReportSummary summarize(const measure::ConsolidatedDb& db);

/// The summary `summarize` would produce for a database whose samples are
/// `s` — the path ReplayFleet uses on pooled series.
ReportSummary summarize_samples(const DbSamples& s);

/// Print one database's per-carrier headline table.
void print_summary(std::ostream& os, const std::string& title,
                   const ReportSummary& s);

/// Print `before` and `after` side by side, one row per (carrier, metric),
/// with the relative change — the counterfactual diff view.
void print_comparison(std::ostream& os, const std::string& before_title,
                      const ReportSummary& before,
                      const std::string& after_title,
                      const ReportSummary& after);

}  // namespace wheels::replay

#include "replay/trace_text.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <stdexcept>

namespace wheels::replay {

bool TraceLineReader::next(std::string& line) {
  while (std::getline(is_, line)) {
    ++line_;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line.front() == '#') continue;
    return true;
  }
  ++line_;  // diagnostics at end of input point past the last line
  return false;
}

std::vector<std::string> split_trace_row(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (char ch : line) {
    if (ch == ',') {
      cells.push_back(cell);
      cell.clear();
    } else {
      cell.push_back(ch);
    }
  }
  cells.push_back(cell);
  return cells;
}

double parse_trace_double(const std::string& cell, std::size_t line) {
  if (cell.empty()) trace_fail(line, "empty numeric field");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  if (end != cell.c_str() + cell.size()) {
    trace_fail(line, "malformed number '" + cell + "'");
  }
  if (errno == ERANGE || !std::isfinite(v)) {
    trace_fail(line, "non-finite number '" + cell + "'");
  }
  return v;
}

SimMillis parse_trace_time_ms(const std::string& cell, std::size_t line) {
  if (cell.empty()) trace_fail(line, "empty time field");
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(cell.c_str(), &end, 10);
  if (end != cell.c_str() + cell.size() || errno == ERANGE) {
    trace_fail(line, "malformed time '" + cell + "'");
  }
  if (v < 0) trace_fail(line, "negative time '" + cell + "'");
  return static_cast<SimMillis>(v);
}

void trace_fail(std::size_t line, const std::string& msg) {
  throw std::runtime_error{"line " + std::to_string(line) + ": " + msg};
}

}  // namespace wheels::replay

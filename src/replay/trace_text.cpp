#include "replay/trace_text.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <stdexcept>

namespace wheels::replay {

bool TraceLineReader::next(std::string& line) {
  while (std::getline(is_, line)) {
    ++line_;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line.front() == '#') continue;
    return true;
  }
  ++line_;  // diagnostics at end of input point past the last line
  return false;
}

std::vector<std::string> split_trace_row(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (char ch : line) {
    if (ch == ',') {
      cells.push_back(cell);
      cell.clear();
    } else {
      cell.push_back(ch);
    }
  }
  cells.push_back(cell);
  return cells;
}

void split_trace_row(std::string_view line,
                     std::vector<std::string_view>& cells) {
  cells.clear();
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      cells.push_back(line.substr(start));
      return;
    }
    cells.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

namespace {

// strtod/strtoll need NUL-terminated input; views into a mapped chunk are
// not. Numeric cells are short, so a stack copy keeps the exact classic
// parsing semantics (sign, hex floats, ERANGE) without heap traffic.
template <typename Fn>
auto with_cstr(std::string_view cell, Fn&& fn) {
  char stack[64];
  if (cell.size() < sizeof(stack)) {
    std::memcpy(stack, cell.data(), cell.size());
    stack[cell.size()] = '\0';
    return fn(stack);
  }
  const std::string heap{cell};
  return fn(heap.c_str());
}

}  // namespace

double parse_trace_double(std::string_view cell, std::size_t line) {
  if (cell.empty()) trace_fail(line, "empty numeric field");
  return with_cstr(cell, [&](const char* c_str) {
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(c_str, &end);
    if (end != c_str + cell.size()) {
      trace_fail(line, "malformed number '" + std::string{cell} + "'");
    }
    if (errno == ERANGE || !std::isfinite(v)) {
      trace_fail(line, "non-finite number '" + std::string{cell} + "'");
    }
    return v;
  });
}

double parse_trace_double(const std::string& cell, std::size_t line) {
  return parse_trace_double(std::string_view{cell}, line);
}

SimMillis parse_trace_time_ms(std::string_view cell, std::size_t line) {
  if (cell.empty()) trace_fail(line, "empty time field");
  return with_cstr(cell, [&](const char* c_str) {
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(c_str, &end, 10);
    if (end != c_str + cell.size() || errno == ERANGE) {
      trace_fail(line, "malformed time '" + std::string{cell} + "'");
    }
    if (v < 0) trace_fail(line, "negative time '" + std::string{cell} + "'");
    return static_cast<SimMillis>(v);
  });
}

SimMillis parse_trace_time_ms(const std::string& cell, std::size_t line) {
  return parse_trace_time_ms(std::string_view{cell}, line);
}

void trace_fail(std::size_t line, const std::string& msg) {
  throw std::runtime_error{"line " + std::to_string(line) + ": " + msg};
}

}  // namespace wheels::replay

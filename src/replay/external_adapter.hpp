// Adapter for external per-tick KPI traces.
//
// Real drive datasets (ERRANT-style logs, Mahimahi traces re-sampled to
// 500 ms, the paper's released CSVs) carry far less than a full bundle:
// typically a capacity/RTT time series per direction. This adapter lifts
// such a minimal trace into a synthetic ReplayBundle — one downlink bulk
// test, one uplink bulk test and one RTT test spanning the trace window —
// so the whole replay stack (TraceChannel, ReplayCampaign, counterfactual
// knobs, reports) runs over it unchanged.
#pragma once

#include <iosfwd>
#include <string>

#include "radio/technology.hpp"
#include "replay/ingest.hpp"

namespace wheels::replay {

/// Parse an external trace CSV into a synthetic bundle for `carrier`.
///
/// Expected header: `t_ms,cap_dl_mbps,cap_ul_mbps,rtt_ms` with an optional
/// trailing `,tech` column (a canonical technology name; defaults to LTE).
/// Rows must be in strictly increasing time order (out-of-order and
/// duplicated `t_ms` are both rejected); CRLF line endings, `#`-prefixed
/// comment lines and blank lines (anywhere, including before the header)
/// are accepted, and skipped lines still count toward the physical line
/// numbers diagnostics cite. Throws std::runtime_error with the offending
/// 1-based line number on malformed input, and validates the assembled
/// database before returning.
ReplayBundle import_external_trace_csv(std::istream& is,
                                       radio::Carrier carrier);

/// File-path convenience; errors are prefixed with `path`.
ReplayBundle import_external_trace_file(const std::string& path,
                                        radio::Carrier carrier);

}  // namespace wheels::replay

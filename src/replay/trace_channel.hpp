// TraceChannel: a recorded radio timeline standing in for the stochastic
// channel model.
//
// Trace-driven emulation (ERRANT's approach for cellular, Mahimahi's for
// fixed links) replaces the channel's random processes with a recorded
// per-tick KPI timeline: the per-500 ms application-layer throughput a test
// actually achieved becomes the replayed link's capacity, and the recorded
// handover events are re-fired at their original times. The transport and
// app layers above then run live, so counterfactuals (a different congestion
// control, another server) react to the *same* radio conditions the drive
// recorded.
#pragma once

#include <vector>

#include "core/sim_time.hpp"
#include "core/units.hpp"
#include "geo/route.hpp"
#include "geo/timezone.hpp"
#include "measure/records.hpp"
#include "radio/channel.hpp"
#include "ran/handover.hpp"
#include "ran/ue_pool.hpp"

namespace wheels::replay {

/// Behaviour between two recorded 500 ms samples. XCAL rows are snapshots,
/// so Hold (previous sample applies until the next one) is the faithful
/// default; Interpolate linearly blends the continuous fields (capacity,
/// rsrp, rtt, speed, position) for smoother app input. Discrete fields
/// (tech, cell, mcs, ca) always hold.
enum class HoldPolicy { Hold, Interpolate };

/// Below this capacity a replayed tick counts as an outage — the recorded
/// row delivered essentially nothing (the paper's "below 2 Mbps" cutoff is
/// two orders of magnitude above this, so only true zero-throughput ticks
/// qualify).
inline constexpr Mbps kOutageThresholdMbps = 0.01;

/// One recorded timeline point, assembled from a KpiRecord or RttRecord.
struct TraceSample {
  SimMillis t = 0;
  radio::Technology tech = radio::Technology::Lte;
  std::uint32_t cell_id = 0;
  Dbm rsrp = -120.0;
  int mcs = 0;
  double bler = 0.0;
  int ca = 1;
  Mbps capacity_dl = 0.0;
  Mbps capacity_ul = 0.0;
  Millis rtt = 50.0;
  MilesPerHour speed = 0.0;
  Km km = 0.0;
  Km map_km = 0.0;
  geo::Timezone tz = geo::Timezone::Pacific;
  geo::RegionType region = geo::RegionType::Highway;
};

/// Recorded handover activity inside one replay window.
struct TraceEvents {
  int handovers = 0;
  Millis interruption = 0.0;
};

class TraceChannel {
 public:
  /// `samples` must be sorted by t (the builders below guarantee it);
  /// `handovers` are the events to re-fire, by recorded time.
  TraceChannel(std::vector<TraceSample> samples,
               std::vector<ran::HandoverEvent> handovers,
               HoldPolicy policy = HoldPolicy::Hold);

  bool empty() const { return samples_.empty(); }
  SimMillis start() const { return samples_.empty() ? 0 : samples_.front().t; }
  SimMillis end() const { return samples_.empty() ? 0 : samples_.back().t; }

  /// The sample governing time t under the channel's policy (clamped to the
  /// recorded range). Hold: the last sample at or before t. Interpolate:
  /// continuous fields lerped towards the next sample.
  TraceSample at(SimMillis t) const;

  /// The LinkKpis the radio layer would report at time t — the drop-in
  /// replacement for ChannelModel::sample().
  radio::LinkKpis kpis_at(SimMillis t) const;

  /// Recorded handovers re-fired in [t, t + dt); the interruption is capped
  /// at dt (an interruption longer than the window blanks the whole window).
  TraceEvents events_in(SimMillis t, Millis dt) const;

  const std::vector<TraceSample>& samples() const { return samples_; }
  const std::vector<ran::HandoverEvent>& handovers() const {
    return handovers_;
  }
  HoldPolicy policy() const { return policy_; }

 private:
  /// Index of the last sample with samples_[i].t <= t (0 when t precedes the
  /// trace). Requires !empty().
  std::size_t index_at(SimMillis t) const;

  std::vector<TraceSample> samples_;
  std::vector<ran::HandoverEvent> handovers_;
  HoldPolicy policy_;
};

/// Per-test channel: the test's own recorded rows. Bulk tests use their KPI
/// rows (recorded throughput -> replay capacity, both directions); RTT tests
/// use their echo observations (rtt timeline, zero capacity). Handovers are
/// the test's recorded events.
TraceChannel channel_for_test(const measure::ConsolidatedDb& db,
                              const measure::TestRecord& test,
                              HoldPolicy policy = HoldPolicy::Hold);

/// Whole-carrier timeline for one carrier and one motion regime: every KPI
/// row with matching is_static merged in time order, holding the last seen
/// capacity per direction across test boundaries, with the carrier's RTT
/// observations folded in (last echo at or before each sample). App-session
/// replays read this — app tests recorded no KPI rows of their own, so their
/// radio conditions come from the bulk tests bracketing them.
TraceChannel carrier_timeline(const measure::ConsolidatedDb& db,
                              radio::Carrier carrier, bool is_static,
                              HoldPolicy policy = HoldPolicy::Hold);

/// Adapt a recorded timeline into the UE pool's per-cell capacity hook
/// (ran::UePool::set_capacity_override): every cell the recorded phone is
/// currently attached to replays the recorded downlink capacity instead of
/// the band-plan model — trace-driven cell load, the massive-UE half of the
/// data-driven/model-based hybrid (docs/SCALING.md, "Replay"). Cells the
/// trace is not visiting at time t keep their model capacity. `channel` must
/// outlive the returned callback.
ran::UePool::CapacityFn population_capacity_from_trace(
    const TraceChannel& channel);

}  // namespace wheels::replay

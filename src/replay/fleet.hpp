// ReplayFleet: multi-trace fleet replay with knob sweeps.
//
// The paper's dataset is a *fleet* of recordings — days, carriers, routes,
// scales — and campaign-wide claims (Tables 2-4 medians, counterfactual
// deltas) only reproduce over many recordings at once. ReplayFleet is the
// campaign::FleetRunner of the replay world: it fans (bundle, knob-cell)
// work items across core::ThreadPool, runs each through ReplayCampaign, and
// pools the per-bundle sample series into one fleet-level aggregate —
// per-carrier medians with bootstrap CIs per knob cell, plus each cell's
// delta against the all-recorded baseline.
//
// Determinism contract (the FleetRunner discipline, fleet_runner.hpp):
// every work item writes only its own pre-allocated slot, inner replays run
// serially (they are thread-count invariant anyway), and pooling/aggregation
// read the slots in submission order — so FleetResult, and the CSV
// write_fleet_csv emits, are byte-identical for every WHEELS_THREADS.
#pragma once

#include <array>
#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "analysis/bootstrap.hpp"
#include "net/server.hpp"
#include "radio/technology.hpp"
#include "replay/ingest.hpp"
#include "replay/replay_campaign.hpp"
#include "replay/report.hpp"
#include "transport/tcp_flow.hpp"

namespace wheels::replay {

/// Value lists of the knob sweep, one axis per ReplayKnobs field; nullopt is
/// the "as recorded" value. Defaults to the single recorded value on every
/// axis, so an empty grid replays the fleet once, baseline only.
struct KnobGrid {
  std::vector<std::optional<transport::CcAlgo>> cc{std::nullopt};
  std::vector<std::optional<net::ServerKind>> server{std::nullopt};
  std::vector<std::optional<radio::Technology>> max_tier{std::nullopt};
};

/// Apply one CLI grid token to `grid`, replacing that axis: "cc=cubic,bbr",
/// "server=cloud,edge" or "tier=LTE,5G-mid" (the value "recorded" selects
/// the unset knob). Throws std::runtime_error naming the offending
/// dimension, value, or duplicated value.
void apply_grid_axis(KnobGrid& grid, const std::string& spec);

/// Cartesian expansion in fixed cc-major, server, tier-minor order, with the
/// all-recorded baseline cell prepended when the product does not already
/// contain it — cell 0 is always the reference the deltas are against.
std::vector<ReplayKnobs> expand_grid(const KnobGrid& grid);

/// Stable label of one cell, e.g. "cc=bbr|server=edge|tier=recorded"; the
/// all-recorded baseline is "recorded".
std::string cell_label(const ReplayKnobs& knobs);

/// One bundle to replay: a display name plus a non-owning pointer to a
/// loaded bundle the caller keeps alive across run().
struct FleetItem {
  std::string name;
  const ReplayBundle* bundle = nullptr;
};

/// Load a bundle from a fleet path spec: a dataset directory, or an external
/// per-tick trace CSV (a path ending in ".csv"), optionally suffixed
/// "@carrier" to pick the synthetic bundle's carrier (default Verizon).
ReplayBundle load_fleet_bundle(const std::string& spec);

/// Expand fleet path specs in place of globbing: a spec naming a directory
/// that is not itself a bundle (no manifest.json) but holds bundle
/// subdirectories — e.g. synth_trace --out output, output/cycle-000/... —
/// expands to those subdirectories in lexicographic name order. Every other
/// spec (bundle dirs, ".csv[@carrier]" traces) passes through unchanged.
/// Throws std::runtime_error when a directory spec contains no bundles.
std::vector<std::string> expand_fleet_specs(
    const std::vector<std::string>& specs);

struct FleetConfig {
  /// Per-replay configuration. `replay.threads` is ignored: inner replays
  /// run serially and all parallelism is spent at the fleet level, which
  /// changes no output byte (replay_campaign.hpp's invariance).
  ReplayConfig replay;
  /// Concurrent (bundle, cell) work items; 0 = auto (WHEELS_THREADS).
  int threads = 0;
  KnobGrid grid;
  /// Bootstrap iterations behind each pooled median's 95% CI.
  int ci_iterations = 300;
};

/// Pooled statistics of one metric over every bundle's samples in one cell.
struct MetricAggregate {
  std::size_t n = 0;
  double median = 0.0;
  /// Percentile-bootstrap 95% CI of the median; {0,0,0} when n == 0.
  analysis::ConfidenceInterval ci;
  /// Percentile-bootstrap 95% CI of (this cell's median - the recorded
  /// baseline's median), from independent resamples of both pooled series.
  /// Only meaningful when has_delta.
  analysis::ConfidenceInterval delta_ci;
  /// delta_ci was computed: a non-baseline cell with samples on both sides.
  bool has_delta = false;
  /// delta_ci excludes zero — the knob's effect on this metric clears
  /// bootstrap sampling noise at the 95% level.
  bool significant = false;
};

/// The six headline series of CarrierSamples, in fleet table order.
inline constexpr std::size_t kFleetMetricCount = 6;
extern const std::array<const char*, kFleetMetricCount> kFleetMetricNames;

/// Series `metric` (an index into kFleetMetricNames) of one carrier's
/// samples.
const std::vector<double>& metric_series(const CarrierSamples& samples,
                                         std::size_t metric);

struct CellAggregate {
  std::size_t cell = 0;  // index into FleetResult::cells
  std::array<std::array<MetricAggregate, kFleetMetricCount>,
             radio::kCarrierCount>
      metrics{};
};

/// One (bundle, cell) replay's headline summary.
struct FleetRunResult {
  std::size_t bundle = 0;
  std::size_t cell = 0;
  ReportSummary summary;
};

struct FleetResult {
  std::vector<std::string> bundles;      // submission order
  std::vector<ReplayKnobs> cells;        // expand_grid order, baseline first
  std::vector<FleetRunResult> runs;      // bundle-major, cell-minor
  std::vector<CellAggregate> aggregate;  // one per cell, same order
};

class ReplayFleet {
 public:
  explicit ReplayFleet(FleetConfig config = {});

  const FleetConfig& config() const { return config_; }
  /// The expanded knob grid (baseline first).
  const std::vector<ReplayKnobs>& cells() const { return cells_; }

  /// Replay every (bundle, cell) pair and aggregate. Deterministic and
  /// identically ordered for every thread count.
  FleetResult run(const std::vector<FleetItem>& items) const;

 private:
  FleetConfig config_;
  std::vector<ReplayKnobs> cells_;
};

/// The aggregate as CSV — `cell,carrier,metric,n,median,ci_lo,ci_hi,
/// delta_vs_recorded_pct,significant`, doubles at measure::csv_double
/// precision, rows in (cell, carrier, metric) order: byte-identical for
/// every WHEELS_THREADS. Empty-series medians/CIs render as empty fields, as
/// does the delta of a zero or empty baseline; `significant` is 1/0 where a
/// delta CI exists (non-baseline cell, samples on both sides) and empty
/// elsewhere.
void write_fleet_csv(std::ostream& os, const FleetResult& result);

/// Human-readable report: one per-bundle table per cell, then the pooled
/// aggregate with 95% CIs and deltas against the recorded baseline.
void print_fleet(std::ostream& os, const FleetResult& result);

}  // namespace wheels::replay

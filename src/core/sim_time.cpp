#include "core/sim_time.hpp"

#include <cstdio>
#include <stdexcept>

namespace wheels {

namespace {
constexpr std::int64_t kMillisPerDay = 86'400'000;
constexpr std::int64_t kMillisPerHour = 3'600'000;
constexpr std::int64_t kMillisPerMinute = 60'000;
}  // namespace

std::int64_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2u) / 5u +
      static_cast<unsigned>(d) - 1u;
  const unsigned doe = yoe * 365u + yoe / 4u - yoe / 100u + doy;
  return static_cast<std::int64_t>(era) * 146097 +
         static_cast<std::int64_t>(doe) - 719468;
}

void civil_from_days(std::int64_t z, int& year, int& month, int& day) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp < 10 ? mp + 3 : mp - 9;
  year = static_cast<int>(y + (m <= 2));
  month = static_cast<int>(m);
  day = static_cast<int>(d);
}

UnixMillis campaign_start_unix_ms() {
  return days_from_civil(2022, 8, 8) * kMillisPerDay + 15 * kMillisPerHour;
}

UnixMillis unix_from_sim(SimMillis t) { return campaign_start_unix_ms() + t; }
SimMillis sim_from_unix(UnixMillis t) { return t - campaign_start_unix_ms(); }

CivilDateTime civil_from_unix(UnixMillis t, int utc_offset_minutes) {
  const std::int64_t shifted = t + utc_offset_minutes * kMillisPerMinute;
  std::int64_t days = shifted / kMillisPerDay;
  std::int64_t rem = shifted % kMillisPerDay;
  if (rem < 0) {
    rem += kMillisPerDay;
    --days;
  }
  CivilDateTime c;
  civil_from_days(days, c.year, c.month, c.day);
  c.hour = static_cast<int>(rem / kMillisPerHour);
  rem %= kMillisPerHour;
  c.minute = static_cast<int>(rem / kMillisPerMinute);
  rem %= kMillisPerMinute;
  c.second = static_cast<int>(rem / 1000);
  c.millisecond = static_cast<int>(rem % 1000);
  return c;
}

UnixMillis unix_from_civil(const CivilDateTime& c, int utc_offset_minutes) {
  const std::int64_t days = days_from_civil(c.year, c.month, c.day);
  const std::int64_t local = days * kMillisPerDay + c.hour * kMillisPerHour +
                             c.minute * kMillisPerMinute + c.second * 1000 +
                             c.millisecond;
  return local - utc_offset_minutes * kMillisPerMinute;
}

std::string format_civil(const CivilDateTime& c) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d.%03d", c.year,
                c.month, c.day, c.hour, c.minute, c.second, c.millisecond);
  return buf;
}

std::string format_timestamp(UnixMillis t, int utc_offset_minutes) {
  return format_civil(civil_from_unix(t, utc_offset_minutes));
}

CivilDateTime parse_civil(const std::string& text) {
  CivilDateTime c;
  int millis = 0;
  const int matched =
      std::sscanf(text.c_str(), "%d-%d-%d %d:%d:%d.%d", &c.year, &c.month,
                  &c.day, &c.hour, &c.minute, &c.second, &millis);
  if (matched < 6) {
    throw std::invalid_argument{"parse_civil: malformed timestamp '" + text +
                                "'"};
  }
  c.millisecond = matched >= 7 ? millis : 0;
  if (c.month < 1 || c.month > 12 || c.day < 1 || c.day > 31 || c.hour < 0 ||
      c.hour > 23 || c.minute < 0 || c.minute > 59 || c.second < 0 ||
      c.second > 60 || c.millisecond < 0 || c.millisecond > 999) {
    throw std::invalid_argument{"parse_civil: out-of-range field in '" + text +
                                "'"};
  }
  return c;
}

}  // namespace wheels

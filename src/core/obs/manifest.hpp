// RunManifest: provenance of one dataset bundle.
//
// The paper's release ships a ConsolidatedDb-equivalent dataset; a run
// manifest written alongside it (manifest.json) records *how* the data was
// produced — seed, config digest, resolved thread count, library version,
// UTC start time — so a released bundle can be re-generated bit-exactly.
// campaign::make_manifest fills the campaign-specific fields;
// measure::write_dataset writes the file with every bundle.
//
// Schema (all keys always present):
//   {"seed": u64, "scale": double, "config_digest": "16-hex-fnv1a64",
//    "threads": int, "library_version": "x.y.z",
//    "started_utc": "YYYY-MM-DD HH:MM:SS.mmm"}
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace wheels::core::obs {

struct RunManifest {
  std::uint64_t seed = 0;
  double scale = 0.0;
  /// FNV-1a 64 digest (hex64()) of the producer's canonical config string —
  /// two bundles with equal digest + seed came from identical configs.
  std::string config_digest;
  /// Resolved worker-thread count (informational; never affects the data).
  int threads = 0;
  std::string library_version;
  /// Wall-clock UTC start, "YYYY-MM-DD HH:MM:SS.mmm".
  std::string started_utc;

  std::string to_json() const;
};

/// The wheels library version (CMake project version).
std::string library_version();

/// FNV-1a 64-bit over `bytes` — the config-digest hash.
std::uint64_t fnv1a64(std::string_view bytes);

/// Lower-case 16-hex-digit rendering.
std::string hex64(std::uint64_t v);

/// A manifest with library_version and started_utc (now, wall clock) filled;
/// the producer fills the rest.
RunManifest make_run_manifest();

/// The pinned started_utc of a canonical-provenance bundle (the Unix epoch).
inline constexpr const char* kCanonicalStartedUtc = "1970-01-01 00:00:00.000";

/// Pin the two provenance fields that vary between byte-identical runs —
/// started_utc (wall clock) and threads (machine-dependent resolution) — to
/// fixed values (kCanonicalStartedUtc, 1). The wheelsd result cache writes
/// every bundle through this, so an identical (config, seed, input) request
/// reproduces the cached bundle byte for byte.
void canonicalize_provenance(RunManifest& manifest);

/// Write `manifest.to_json()` to `path`. Throws std::runtime_error when the
/// file cannot be opened.
void write_manifest(const RunManifest& manifest, const std::string& path);

/// Inverse of to_json() for the fixed schema above. Throws
/// std::runtime_error naming the first missing or malformed key.
RunManifest parse_manifest(std::string_view json);

/// Read and parse `path`. Throws std::runtime_error when the file cannot be
/// opened or fails to parse.
RunManifest read_manifest(const std::string& path);

}  // namespace wheels::core::obs

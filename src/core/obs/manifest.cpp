#include "core/obs/manifest.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <stdexcept>

#include "core/sim_time.hpp"

namespace wheels::core::obs {

std::string library_version() {
#ifdef WHEELS_VERSION
  return WHEELS_VERSION;
#else
  return "0.0.0";
#endif
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

RunManifest make_run_manifest() {
  RunManifest m;
  m.library_version = library_version();
  using namespace std::chrono;
  const auto now_ms =
      duration_cast<milliseconds>(system_clock::now().time_since_epoch())
          .count();
  m.started_utc = format_timestamp(static_cast<UnixMillis>(now_ms), 0);
  return m;
}

void canonicalize_provenance(RunManifest& manifest) {
  manifest.started_utc = kCanonicalStartedUtc;
  manifest.threads = 1;
}

std::string RunManifest::to_json() const {
  char scale_buf[64];
  std::snprintf(scale_buf, sizeof(scale_buf), "%.17g", scale);
  std::string out = "{\n";
  out += "  \"seed\": " + std::to_string(seed) + ",\n";
  out += "  \"scale\": " + std::string(scale_buf) + ",\n";
  out += "  \"config_digest\": \"" + config_digest + "\",\n";
  out += "  \"threads\": " + std::to_string(threads) + ",\n";
  out += "  \"library_version\": \"" + library_version + "\",\n";
  out += "  \"started_utc\": \"" + started_utc + "\"\n";
  out += "}";
  return out;
}

void write_manifest(const RunManifest& manifest, const std::string& path) {
  std::ofstream os{path};
  if (!os) throw std::runtime_error{"manifest: cannot open " + path};
  os << manifest.to_json() << '\n';
}

namespace {

// to_json() emits a fixed flat schema, so the inverse is a keyed scan, not a
// general JSON parser. Values never contain escaped quotes or commas.
std::string_view raw_value(std::string_view json, const char* key) {
  const std::string needle = std::string{"\""} + key + "\":";
  const auto pos = json.find(needle);
  if (pos == std::string_view::npos) {
    throw std::runtime_error{std::string{"manifest: missing key \""} + key +
                             "\""};
  }
  std::size_t start = pos + needle.size();
  while (start < json.size() && json[start] == ' ') ++start;
  std::size_t end = start;
  while (end < json.size() && json[end] != ',' && json[end] != '\n' &&
         json[end] != '}') {
    ++end;
  }
  if (start == end) {
    throw std::runtime_error{std::string{"manifest: empty value for \""} +
                             key + "\""};
  }
  return json.substr(start, end - start);
}

std::string string_value(std::string_view json, const char* key) {
  const std::string_view raw = raw_value(json, key);
  if (raw.size() < 2 || raw.front() != '"' || raw.back() != '"') {
    throw std::runtime_error{std::string{"manifest: key \""} + key +
                             "\" is not a string"};
  }
  return std::string{raw.substr(1, raw.size() - 2)};
}

template <typename Convert>
auto number_value(std::string_view json, const char* key, Convert convert) {
  const std::string text{raw_value(json, key)};
  errno = 0;
  char* end = nullptr;
  const auto v = convert(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE) {
    throw std::runtime_error{std::string{"manifest: malformed value for \""} +
                             key + "\": '" + text + "'"};
  }
  return v;
}

}  // namespace

RunManifest parse_manifest(std::string_view json) {
  RunManifest m;
  m.seed = number_value(
      json, "seed", [](const char* s, char** e) { return std::strtoull(s, e, 10); });
  m.scale = number_value(
      json, "scale", [](const char* s, char** e) { return std::strtod(s, e); });
  m.config_digest = string_value(json, "config_digest");
  m.threads = static_cast<int>(number_value(
      json, "threads", [](const char* s, char** e) { return std::strtol(s, e, 10); }));
  m.library_version = string_value(json, "library_version");
  m.started_utc = string_value(json, "started_utc");
  return m;
}

RunManifest read_manifest(const std::string& path) {
  std::ifstream is{path};
  if (!is) throw std::runtime_error{"manifest: cannot open " + path};
  std::string json{std::istreambuf_iterator<char>{is},
                   std::istreambuf_iterator<char>{}};
  return parse_manifest(json);
}

}  // namespace wheels::core::obs

#include "core/obs/manifest.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "core/sim_time.hpp"

namespace wheels::core::obs {

std::string library_version() {
#ifdef WHEELS_VERSION
  return WHEELS_VERSION;
#else
  return "0.0.0";
#endif
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

RunManifest make_run_manifest() {
  RunManifest m;
  m.library_version = library_version();
  using namespace std::chrono;
  const auto now_ms =
      duration_cast<milliseconds>(system_clock::now().time_since_epoch())
          .count();
  m.started_utc = format_timestamp(static_cast<UnixMillis>(now_ms), 0);
  return m;
}

std::string RunManifest::to_json() const {
  char scale_buf[64];
  std::snprintf(scale_buf, sizeof(scale_buf), "%.17g", scale);
  std::string out = "{\n";
  out += "  \"seed\": " + std::to_string(seed) + ",\n";
  out += "  \"scale\": " + std::string(scale_buf) + ",\n";
  out += "  \"config_digest\": \"" + config_digest + "\",\n";
  out += "  \"threads\": " + std::to_string(threads) + ",\n";
  out += "  \"library_version\": \"" + library_version + "\",\n";
  out += "  \"started_utc\": \"" + started_utc + "\"\n";
  out += "}";
  return out;
}

void write_manifest(const RunManifest& manifest, const std::string& path) {
  std::ofstream os{path};
  if (!os) throw std::runtime_error{"manifest: cannot open " + path};
  os << manifest.to_json() << '\n';
}

}  // namespace wheels::core::obs

// Chrome-tracing-format span export.
//
// Spans are coarse wall-clock intervals (a campaign phase, a fleet job, a
// pool batch) collected by TraceCollector and serialised as the Trace Event
// Format's complete events ("ph":"X"), loadable in chrome://tracing or
// Perfetto. Spans are *runtime* observability — wall-clock readings, not
// simulation state — so they never feed the deterministic metric snapshot;
// see metrics.hpp for that split.
//
// Cost: a disabled collector makes ScopedSpan a no-op (one relaxed atomic
// load, no clock reads). The global collector enables itself when
// WHEELS_TRACE_OUT is set; tests flip it explicitly with set_enabled().
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace wheels::core::obs {

struct TraceEvent {
  std::string name;
  std::string category;
  std::int64_t ts_us = 0;   // start, microseconds since the trace epoch
  std::int64_t dur_us = 0;  // duration, microseconds
  int tid = 0;              // small per-thread id (trace_thread_id())
};

/// Microseconds since the process's trace epoch (first call; steady clock).
std::int64_t trace_now_us();

/// Small dense id of the calling thread, stable for the thread's lifetime.
int trace_thread_id();

class TraceCollector {
 public:
  /// Process-wide collector; enabled at construction iff WHEELS_TRACE_OUT is
  /// set in the environment.
  static TraceCollector& global();

  TraceCollector() = default;
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  void record(std::string_view name, std::string_view category,
              std::int64_t ts_us, std::int64_t dur_us);

  std::size_t size() const;
  void clear();

  /// Serialise every recorded span as a Chrome trace JSON object
  /// ({"traceEvents": [...], ...}).
  void write_chrome_trace(std::ostream& os) const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// RAII span: records [construction, destruction) into the collector when it
/// is enabled at construction time; free otherwise.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name, std::string_view category,
                      TraceCollector& collector = TraceCollector::global());
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceCollector* collector_ = nullptr;  // nullptr: disabled, no-op
  std::string name_;
  std::string category_;
  std::int64_t start_us_ = 0;
};

}  // namespace wheels::core::obs

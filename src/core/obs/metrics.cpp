#include "core/obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/obs/trace_export.hpp"

namespace wheels::core::obs {

namespace {

constexpr double kDefaultMsBounds[] = {
    0.5,    1.0,    2.0,    5.0,     10.0,    20.0,    50.0,    100.0,
    200.0,  500.0,  1000.0, 2000.0,  5000.0,  10000.0, 30000.0, 60000.0};

std::uint64_t next_registry_uid() {
  static std::atomic<std::uint64_t> n{1};
  return n.fetch_add(1, std::memory_order_relaxed);
}

/// Shortest-exact double for the JSON rendering (bounds come from static
/// tables, so the text is stable across runs and platforms with IEEE754).
std::string json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

bool is_runtime_metric(std::string_view name) {
  return name.substr(0, 3) == "rt.";
}

struct MetricsRegistry::HistogramDef {
  std::string name;
  std::vector<double> upper_bounds;
};

struct MetricsRegistry::Shard {
  /// Guards the two tables below. Only the owning thread writes, so the hot
  /// path (add/observe) takes an uncontended lock; cross-thread readers —
  /// snapshot() and reset() — contend only for the duration of one merge.
  /// This is what lets wheelsd stream progress snapshots while jobs are
  /// still incrementing counters on pool workers.
  std::mutex mu;
  std::vector<std::uint64_t> counters;
  /// Indexed by histogram id; inner vector sized upper_bounds.size() + 1.
  std::vector<std::vector<std::uint64_t>> histograms;
};

namespace {

struct TlsEntry {
  std::uint64_t uid;
  void* shard;  // MetricsRegistry::Shard* (private; cast in local_shard)
};

/// Per-thread cache of (registry uid -> shard). Entries for destroyed
/// registries are never matched (uids are not reused) and never dereferenced.
thread_local std::vector<TlsEntry> tls_shards;

}  // namespace

MetricsRegistry::MetricsRegistry() : uid_(next_registry_uid()) {}
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() const {
  for (const TlsEntry& e : tls_shards) {
    if (e.uid == uid_) return *static_cast<Shard*>(e.shard);
  }
  std::lock_guard lk{mu_};
  shards_.push_back(std::make_unique<Shard>());
  Shard* s = shards_.back().get();
  tls_shards.push_back({uid_, s});
  return *s;
}

MetricId MetricsRegistry::counter_id(std::string_view name) {
  std::lock_guard lk{mu_};
  const auto it = counter_ids_.find(name);
  if (it != counter_ids_.end()) return it->second;
  const MetricId id = counter_names_.size();
  counter_names_.emplace_back(name);
  counter_ids_.emplace(std::string{name}, id);
  return id;
}

MetricsRegistry::HistogramHandle MetricsRegistry::histogram(
    std::string_view name, std::span<const double> upper_bounds) {
  std::lock_guard lk{mu_};
  const auto it = histogram_ids_.find(name);
  if (it != histogram_ids_.end()) {
    return {it->second, histogram_defs_[it->second].get()};
  }
  const MetricId id = histogram_defs_.size();
  auto def = std::make_unique<HistogramDef>();
  def->name = std::string{name};
  if (upper_bounds.empty()) upper_bounds = default_ms_bounds();
  def->upper_bounds.assign(upper_bounds.begin(), upper_bounds.end());
  const HistogramHandle handle{id, def.get()};
  histogram_defs_.push_back(std::move(def));
  histogram_ids_.emplace(std::string{name}, id);
  return handle;
}

void MetricsRegistry::add(MetricId counter, std::uint64_t delta) {
  Shard& s = local_shard();
  std::lock_guard sl{s.mu};
  if (s.counters.size() <= counter) s.counters.resize(counter + 1, 0);
  s.counters[counter] += delta;
}

void MetricsRegistry::observe(const HistogramHandle& histogram, double value) {
  const auto* def = static_cast<const HistogramDef*>(histogram.def);
  const auto& bounds = def->upper_bounds;
  // lower_bound makes each upper bound inclusive (value <= bound), matching
  // the documented HistogramSnapshot contract.
  const auto bucket = static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
  Shard& s = local_shard();
  std::lock_guard sl{s.mu};
  if (s.histograms.size() <= histogram.id) {
    s.histograms.resize(histogram.id + 1);
  }
  auto& counts = s.histograms[histogram.id];
  if (counts.empty()) counts.assign(bounds.size() + 1, 0);
  ++counts[bucket];
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard lk{mu_};
  Snapshot out;

  // Merge each shard once under its own lock, so a snapshot taken while
  // other threads are still incrementing (a wheelsd progress poll) sees a
  // consistent per-shard view instead of racing the vectors.
  std::vector<std::uint64_t> counter_totals(counter_names_.size(), 0);
  std::vector<std::vector<std::uint64_t>> histogram_totals(
      histogram_defs_.size());
  for (MetricId id = 0; id < histogram_defs_.size(); ++id) {
    histogram_totals[id].assign(histogram_defs_[id]->upper_bounds.size() + 1,
                                0);
  }
  for (const auto& shard : shards_) {
    std::lock_guard sl{shard->mu};
    const std::size_t n =
        std::min(shard->counters.size(), counter_totals.size());
    for (MetricId id = 0; id < n; ++id) {
      counter_totals[id] += shard->counters[id];
    }
    const std::size_t m =
        std::min(shard->histograms.size(), histogram_totals.size());
    for (MetricId id = 0; id < m; ++id) {
      const auto& counts = shard->histograms[id];
      for (std::size_t b = 0; b < counts.size(); ++b) {
        histogram_totals[id][b] += counts[b];
      }
    }
  }

  std::map<std::string, std::uint64_t> counters;
  for (MetricId id = 0; id < counter_names_.size(); ++id) {
    counters.emplace(counter_names_[id], counter_totals[id]);
  }
  out.counters.assign(counters.begin(), counters.end());

  std::map<std::string, HistogramSnapshot> histograms;
  for (MetricId id = 0; id < histogram_defs_.size(); ++id) {
    HistogramSnapshot h;
    h.upper_bounds = histogram_defs_[id]->upper_bounds;
    h.counts = histogram_totals[id];
    for (const std::uint64_t c : h.counts) h.total += c;
    histograms.emplace(histogram_defs_[id]->name, std::move(h));
  }
  out.histograms.assign(std::make_move_iterator(histograms.begin()),
                        std::make_move_iterator(histograms.end()));
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard lk{mu_};
  for (const auto& shard : shards_) {
    std::lock_guard sl{shard->mu};
    std::fill(shard->counters.begin(), shard->counters.end(), 0);
    for (auto& counts : shard->histograms) {
      std::fill(counts.begin(), counts.end(), 0);
    }
  }
}

std::span<const double> MetricsRegistry::default_ms_bounds() {
  return kDefaultMsBounds;
}

const std::uint64_t* MetricsRegistry::Snapshot::find_counter(
    std::string_view name) const {
  for (const auto& [counter_name, value] : counters) {
    if (counter_name == name) return &value;
  }
  return nullptr;
}

std::string MetricsRegistry::Snapshot::to_json(bool include_runtime) const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!include_runtime && is_runtime_metric(name)) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!include_runtime && is_runtime_metric(name)) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": {\"upper_bounds\": [";
    for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += json_double(h.upper_bounds[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(h.counts[i]);
    }
    out += "], \"total\": " + std::to_string(h.total) + "}";
  }
  out += first ? "}\n}" : "\n  }\n}";
  return out;
}

void flush_to_env_sinks() {
  if (const char* path = std::getenv("WHEELS_METRICS_OUT")) {
    std::ofstream os{path};
    if (os) {
      os << MetricsRegistry::global().snapshot().to_json(true) << '\n';
    } else {
      std::fprintf(stderr, "[wheels] cannot write WHEELS_METRICS_OUT=%s\n",
                   path);
    }
  }
  if (const char* path = std::getenv("WHEELS_TRACE_OUT")) {
    std::ofstream os{path};
    if (os) {
      TraceCollector::global().write_chrome_trace(os);
    } else {
      std::fprintf(stderr, "[wheels] cannot write WHEELS_TRACE_OUT=%s\n",
                   path);
    }
  }
}

void flush_at_exit() {
  static const bool registered = [] {
    std::atexit([] { flush_to_env_sinks(); });
    return true;
  }();
  (void)registered;
}

}  // namespace wheels::core::obs

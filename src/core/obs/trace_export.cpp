#include "core/obs/trace_export.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace wheels::core::obs {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::int64_t trace_now_us() {
  using namespace std::chrono;
  static const steady_clock::time_point epoch = steady_clock::now();
  return duration_cast<microseconds>(steady_clock::now() - epoch).count();
}

int trace_thread_id() {
  static std::atomic<int> next{1};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

TraceCollector& TraceCollector::global() {
  static TraceCollector collector;
  static const bool env_enabled = [] {
    if (std::getenv("WHEELS_TRACE_OUT") != nullptr) {
      collector.set_enabled(true);
    }
    return true;
  }();
  (void)env_enabled;
  return collector;
}

void TraceCollector::record(std::string_view name, std::string_view category,
                            std::int64_t ts_us, std::int64_t dur_us) {
  TraceEvent e;
  e.name = std::string{name};
  e.category = std::string{category};
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.tid = trace_thread_id();
  std::lock_guard lk{mu_};
  events_.push_back(std::move(e));
}

std::size_t TraceCollector::size() const {
  std::lock_guard lk{mu_};
  return events_.size();
}

void TraceCollector::clear() {
  std::lock_guard lk{mu_};
  events_.clear();
}

void TraceCollector::write_chrome_trace(std::ostream& os) const {
  std::lock_guard lk{mu_};
  os << "{\"traceEvents\": [";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    if (i > 0) os << ',';
    os << "\n  {\"name\": \"" << json_escape(e.name) << "\", \"cat\": \""
       << json_escape(e.category) << "\", \"ph\": \"X\", \"ts\": " << e.ts_us
       << ", \"dur\": " << e.dur_us << ", \"pid\": 1, \"tid\": " << e.tid
       << "}";
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

ScopedSpan::ScopedSpan(std::string_view name, std::string_view category,
                       TraceCollector& collector) {
  if (!collector.enabled()) return;
  collector_ = &collector;
  name_ = std::string{name};
  category_ = std::string{category};
  start_us_ = trace_now_us();
}

ScopedSpan::~ScopedSpan() {
  if (collector_ == nullptr) return;
  collector_->record(name_, category_, start_us_, trace_now_us() - start_us_);
}

}  // namespace wheels::core::obs

// MetricsRegistry: named counters and fixed-bucket histograms with
// thread-local shards merged on snapshot.
//
// The same shard-then-merge discipline as measure::RecordShard, for the same
// reason: instrumented code runs on whatever worker thread the pool picked,
// so every thread increments its own private shard (no locks, no contention)
// and snapshot() merges the shards. All stored quantities are integers, so
// the merge is order-free and the *deterministic* snapshot — everything not
// prefixed "rt." — is byte-identical for any WHEELS_THREADS (enforced by
// tests/test_obs.cpp, the same gate pattern as test_campaign_parallel.cpp).
//
// Cost model: an increment is one thread-local lookup, an uncontended
// per-shard lock, and a vector index — always on, cheap enough for per-tick
// call sites. The shard lock is what makes snapshot() safe to call *while*
// instrumented work runs (wheelsd streams job progress from mid-run
// snapshots); it is only ever contended by such a concurrent snapshot.
// Wall-clock reads and anything else that varies run-to-run must be filed
// under an "rt." name so the deterministic snapshot stays exact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wheels::core::obs {

/// Dense per-registry metric index. Resolve once (e.g. in a function-local
/// static) and reuse; resolution takes the registry lock, add/observe do not.
using MetricId = std::size_t;

/// Names prefixed "rt." are *runtime* metrics (scheduler steals, wall-clock
/// batch times): legitimate observability, but dependent on thread count and
/// machine load, so Snapshot::to_json(false) excludes them.
bool is_runtime_metric(std::string_view name);

class MetricsRegistry {
 public:
  /// A resolved histogram: the id plus its immutable bucket definition, so
  /// observe() never touches the registry lock.
  struct HistogramHandle {
    MetricId id = 0;
    const void* def = nullptr;  // internal HistogramDef*
  };

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every instrumentation hook reports to.
  static MetricsRegistry& global();

  /// Id of the named counter (created on first use).
  MetricId counter_id(std::string_view name);

  /// Handle of the named histogram (created on first use). `upper_bounds`
  /// are ascending bucket upper bounds; an implicit +inf bucket is appended.
  /// Empty means default_ms_bounds(). Later calls with the same name reuse
  /// the first definition.
  HistogramHandle histogram(std::string_view name,
                            std::span<const double> upper_bounds = {});

  void add(MetricId counter, std::uint64_t delta = 1);
  void observe(const HistogramHandle& histogram, double value);

  struct HistogramSnapshot {
    std::vector<double> upper_bounds;
    /// counts[i] observations <= upper_bounds[i]; counts.back() is the
    /// overflow (+inf) bucket. Size = upper_bounds.size() + 1.
    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;
  };
  struct Snapshot {
    /// Sorted by name.
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
    /// Stable JSON rendering; with include_runtime=false, "rt." metrics are
    /// dropped and the result is byte-identical across thread counts.
    std::string to_json(bool include_runtime = false) const;
    /// The named counter's merged value, or nullptr when it never fired —
    /// the progress-snapshot hook wheelsd streams job progress from (and
    /// tests assert cache behaviour with) without parsing to_json().
    const std::uint64_t* find_counter(std::string_view name) const;
  };

  /// Merge every thread's shard. Safe to call while instrumented work is
  /// still running (each shard is merged under its own lock) — a mid-run
  /// snapshot is a consistent progress view. For an *exact* total, call
  /// after the concurrent work has joined (e.g. after DriveCampaign::run
  /// returned); a batch completion on core::ThreadPool establishes the
  /// needed happens-before edge.
  Snapshot snapshot() const;

  /// Zero every shard's totals (the name table survives, ids stay valid).
  void reset();

  /// Default bucket upper bounds for millisecond-scale histograms
  /// (0.5 ms .. 60 s).
  static std::span<const double> default_ms_bounds();

 private:
  struct Shard;
  struct HistogramDef;

  Shard& local_shard() const;

  const std::uint64_t uid_;  // never reused; keys the thread-local cache
  mutable std::mutex mu_;
  std::vector<std::string> counter_names_;
  std::map<std::string, MetricId, std::less<>> counter_ids_;
  std::vector<std::unique_ptr<HistogramDef>> histogram_defs_;
  std::map<std::string, MetricId, std::less<>> histogram_ids_;
  mutable std::vector<std::unique_ptr<Shard>> shards_;
};

/// A named counter bound to the global registry, resolved once at
/// construction — collapses the "static MetricId + registry lookup"
/// boilerplate at instrumentation sites to
///   static const Counter c{"replay.fleet.runs"};
///   c.add();
/// Safe to construct as a function-local static from any thread (the
/// registry lock serialises the id lookup).
class Counter {
 public:
  explicit Counter(std::string_view name)
      : id_(MetricsRegistry::global().counter_id(name)) {}
  void add(std::uint64_t delta = 1) const {
    MetricsRegistry::global().add(id_, delta);
  }

 private:
  MetricId id_;
};

/// Write the global registry's full snapshot (runtime metrics included) to
/// $WHEELS_METRICS_OUT and the global trace collector to $WHEELS_TRACE_OUT,
/// when those variables name writable paths. No-op when unset. Called by
/// measure::write_dataset and, via flush_at_exit(), by the bench binaries.
void flush_to_env_sinks();

/// Idempotently register a std::atexit hook running flush_to_env_sinks().
void flush_at_exit();

}  // namespace wheels::core::obs

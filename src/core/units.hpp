// Units used throughout the library.
//
// We deliberately use documented aliases over heavyweight strong types: every
// quantity in this codebase carries its unit in the type alias or the variable
// name, and conversion helpers below are the only sanctioned way to cross
// units. This keeps arithmetic-heavy simulation code readable while still
// making unit errors greppable.
#pragma once

#include <cstdint>

namespace wheels {

/// Throughput in megabits per second (application-layer unless noted).
using Mbps = double;
/// Latency / duration in milliseconds.
using Millis = double;
/// Distance in kilometres.
using Km = double;
/// Speed in miles per hour (the paper bins speed in mph).
using MilesPerHour = double;
/// Signal power in dBm (RSRP).
using Dbm = double;
/// Signal-to-noise ratio in dB.
using Db = double;
/// Data volume in megabytes.
using MegaBytes = double;

inline constexpr double kKmPerMile = 1.609344;
inline constexpr double kMilesPerKm = 1.0 / kKmPerMile;
inline constexpr double kSecondsPerHour = 3600.0;
inline constexpr double kMillisPerSecond = 1000.0;
inline constexpr double kBitsPerByte = 8.0;

/// Convert mph to km travelled per millisecond.
constexpr Km km_per_ms_from_mph(MilesPerHour mph) {
  return mph * kKmPerMile / kSecondsPerHour / kMillisPerSecond;
}

constexpr MilesPerHour mph_from_kmh(double kmh) { return kmh * kMilesPerKm; }
constexpr double kmh_from_mph(MilesPerHour mph) { return mph * kKmPerMile; }

/// Megabytes transferred by a flow running at `rate` for `duration`.
constexpr MegaBytes megabytes_transferred(Mbps rate, Millis duration) {
  return rate * (duration / kMillisPerSecond) / kBitsPerByte;
}

/// Time (ms) to move `bytes` bytes at `rate` Mbps. Returns a huge-but-finite
/// sentinel when the rate is (effectively) zero so schedulers can still order
/// events.
constexpr Millis transfer_time_ms(double bytes, Mbps rate) {
  constexpr double kFloorMbps = 1e-6;
  const double r = rate > kFloorMbps ? rate : kFloorMbps;
  return bytes * kBitsPerByte / (r * 1e6) * kMillisPerSecond;
}

}  // namespace wheels

#include "core/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace wheels {

namespace {

// splitmix64 finaliser: decorrelates sequential / low-entropy seeds before
// they reach the mt19937_64 state.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t stable_hash(std::string_view text, std::uint64_t basis) {
  std::uint64_t h = basis ^ 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) : seed_(seed), engine_(mix(seed)) {}

Rng Rng::fork(std::string_view label) const {
  return Rng{stable_hash(label, seed_)};
}

Rng Rng::fork(std::string_view label, std::uint64_t index) const {
  return Rng{mix(stable_hash(label, seed_) + 0x9e3779b97f4a7c15ULL * (index + 1))};
}

std::uint64_t Rng::next_u64() { return engine_(); }

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int Rng::uniform_int(int lo, int hi) {
  return std::uniform_int_distribution<int>(lo, hi)(engine_);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::lognormal(double mu, double sigma) {
  return std::lognormal_distribution<double>(mu, sigma)(engine_);
}

double Rng::exponential(double rate) {
  return std::exponential_distribution<double>(rate)(engine_);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine_);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  if (total <= 0.0) {
    throw std::invalid_argument{"weighted_index: no positive weight"};
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;  // numeric edge: land on last positive bucket
}

}  // namespace wheels

// Time handling for the simulated campaign.
//
// Two clocks exist, exactly as in the real measurement pipeline:
//  - SimMillis: milliseconds since the campaign started (the simulator's
//    internal clock; monotone, timezone-free).
//  - UnixMillis: milliseconds since the Unix epoch in UTC (what log files
//    record, after applying the writer's UTC offset).
//
// The paper's challenge C2 — app logs in UTC or local time, XCAL .drm files
// named in local time but *content*-stamped in EDT, four timezones crossed —
// is reproduced faithfully by `measure::LogSynchronizer`, which leans on the
// civil-time conversions implemented here (Howard Hinnant's algorithms, no
// locale or tzdata dependency).
#pragma once

#include <cstdint>
#include <string>

namespace wheels {

using SimMillis = std::int64_t;
using UnixMillis = std::int64_t;

/// Campaign epoch: 2022-08-08 08:00:00 PDT (= 15:00:00 UTC), the morning the
/// paper's drive left Los Angeles.
UnixMillis campaign_start_unix_ms();

UnixMillis unix_from_sim(SimMillis t);
SimMillis sim_from_unix(UnixMillis t);

/// A civil (calendar) date-time in some unspecified offset.
struct CivilDateTime {
  int year = 1970;
  int month = 1;  // 1..12
  int day = 1;    // 1..31
  int hour = 0;
  int minute = 0;
  int second = 0;
  int millisecond = 0;

  bool operator==(const CivilDateTime&) const = default;
};

/// Days since 1970-01-01 for a civil date (proleptic Gregorian).
std::int64_t days_from_civil(int year, int month, int day);
/// Inverse of days_from_civil.
void civil_from_days(std::int64_t days, int& year, int& month, int& day);

/// Civil date-time seen on a wall clock `utc_offset_minutes` east of UTC.
CivilDateTime civil_from_unix(UnixMillis t, int utc_offset_minutes);
/// Unix ms for a civil date-time recorded at the given UTC offset.
UnixMillis unix_from_civil(const CivilDateTime& c, int utc_offset_minutes);

/// "YYYY-MM-DD HH:MM:SS.mmm".
std::string format_civil(const CivilDateTime& c);
/// Formats `t` as observed at the given offset.
std::string format_timestamp(UnixMillis t, int utc_offset_minutes);
/// Parses "YYYY-MM-DD HH:MM:SS[.mmm]". Throws std::invalid_argument on
/// malformed input.
CivilDateTime parse_civil(const std::string& text);

}  // namespace wheels

#include "core/json.hpp"

#include <cstdlib>
#include <stdexcept>

namespace wheels::core::json {

namespace {

/// The recursive-descent reader behind Doc::parse. Tracks the current line
/// so every token (and so every decode error downstream) can cite it.
class Reader {
 public:
  Reader(std::string_view text, const Doc& doc, int first_line)
      : text_(text), doc_(doc), line_(first_line) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ < text_.size()) doc_.fail(line_, "trailing content after document");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') ++line_;
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) doc_.fail(line_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      doc_.fail(line_, std::string{"expected '"} + c + "', got '" +
                           text_[pos_] + "'");
    }
    ++pos_;
  }

  Value value() {
    const char c = peek();
    Value v;
    v.line = line_;
    switch (c) {
      case '{': return object(v);
      case '[': return array(v);
      case '"':
        v.kind = Value::Kind::String;
        v.text = string();
        return v;
      case 't':
      case 'f':
        v.kind = Value::Kind::Bool;
        v.boolean = c == 't';
        literal(c == 't' ? "true" : "false");
        return v;
      case 'n':
        literal("null");
        return v;
      default: return number(v);
    }
  }

  Value object(Value v) {
    v.kind = Value::Kind::Object;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      if (peek() != '"') doc_.fail(line_, "expected a quoted object key");
      std::string key = string();
      expect(':');
      v.keys.emplace_back(std::move(key), value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array(Value v) {
    v.kind = Value::Kind::Array;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\n') doc_.fail(line_, "unterminated string");
      if (c == '\\') {
        if (pos_ >= text_.size()) doc_.fail(line_, "unterminated escape");
        out.push_back(text_[pos_++]);
      } else {
        out.push_back(c);
      }
    }
    doc_.fail(line_, "unterminated string");
  }

  void literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      doc_.fail(line_,
                "malformed literal (expected '" + std::string{word} + "')");
    }
    pos_ += word.size();
  }

  Value number(Value v) {
    v.kind = Value::Kind::Number;
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token{text_.substr(start, pos_ - start)};
    if (token.empty()) doc_.fail(line_, "expected a value");
    char* end = nullptr;
    v.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      doc_.fail(v.line, "malformed number '" + token + "'");
    }
    return v;
  }

  std::string_view text_;
  const Doc& doc_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

Value Doc::parse(std::string_view text) const {
  return Reader{text, *this, first_line_}.parse();
}

void Doc::fail(int line, const std::string& msg) const {
  throw std::runtime_error{prefix_ + ": line " + std::to_string(line) + ": " +
                           msg};
}

const Value* Doc::find(const Value& object, std::string_view key) const {
  for (const auto& [k, v] : object.keys) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Doc::get(const Value& object, std::string_view key) const {
  if (const Value* v = find(object, key)) return *v;
  fail(object.line, "missing key \"" + std::string{key} + "\"");
}

const Value& Doc::as(const Value& v, Value::Kind kind,
                     const std::string& what) const {
  if (v.kind != kind) fail(v.line, "expected " + what);
  return v;
}

double Doc::num(const Value& object, std::string_view key) const {
  return as(get(object, key), Value::Kind::Number,
            "a number for \"" + std::string{key} + "\"")
      .number;
}

std::string Doc::str(const Value& object, std::string_view key) const {
  return as(get(object, key), Value::Kind::String,
            "a string for \"" + std::string{key} + "\"")
      .text;
}

bool Doc::flag(const Value& object, std::string_view key) const {
  return as(get(object, key), Value::Kind::Bool,
            "a boolean for \"" + std::string{key} + "\"")
      .boolean;
}

std::vector<double> Doc::doubles(const Value& v) const {
  as(v, Value::Kind::Array, "an array of numbers");
  std::vector<double> out;
  out.reserve(v.items.size());
  for (const Value& item : v.items) {
    out.push_back(
        as(item, Value::Kind::Number, "a number in the array").number);
  }
  return out;
}

std::string escape(std::string_view s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace wheels::core::json

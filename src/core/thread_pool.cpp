#include "core/thread_pool.hpp"

#include <chrono>
#include <cstdio>

#include "core/env.hpp"
#include "core/obs/metrics.hpp"

namespace wheels::core {

namespace {

// Dense ids resolved once; add() is a thread-local vector increment.
obs::MetricId tasks_run_id() {
  static const obs::MetricId id =
      obs::MetricsRegistry::global().counter_id("pool.tasks_run");
  return id;
}

obs::MetricId batches_id() {
  static const obs::MetricId id =
      obs::MetricsRegistry::global().counter_id("pool.batches");
  return id;
}

// Steals and wall-clock depend on scheduling, hence the "rt." prefix that
// keeps them out of the deterministic snapshot.
obs::MetricId steals_id() {
  static const obs::MetricId id =
      obs::MetricsRegistry::global().counter_id("rt.pool.steals");
  return id;
}

const obs::MetricsRegistry::HistogramHandle& batch_ms_hist() {
  static const obs::MetricsRegistry::HistogramHandle h =
      obs::MetricsRegistry::global().histogram("rt.pool.batch_ms");
  return h;
}

}  // namespace

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  if (const auto v = env_int("WHEELS_THREADS")) {
    if (*v >= 1 && *v <= 4096) return static_cast<int>(*v);
    std::fprintf(stderr,
                 "[wheels] ignoring WHEELS_THREADS=%lld: expected 1..4096, "
                 "using auto\n",
                 *v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int workers) {
  if (workers < 0) workers = 0;
  queues_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk{mu_};
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

bool ThreadPool::try_take(std::size_t prefer, Task& out) {
  const std::size_t n = queues_.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (prefer + k) % n;
    Queue& q = *queues_[i];
    std::lock_guard lk{q.mu};
    if (q.q.empty()) continue;
    if (i == prefer) {
      out = std::move(q.q.front());
      q.q.pop_front();
    } else {
      out = std::move(q.q.back());
      q.q.pop_back();
      obs::MetricsRegistry::global().add(steals_id());
    }
    std::lock_guard blk{mu_};
    --unstarted_;
    return true;
  }
  return false;
}

void ThreadPool::finish_task() {
  std::lock_guard lk{mu_};
  if (--pending_ == 0) done_cv_.notify_all();
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    Task task;
    if (try_take(self, task)) {
      task();
      obs::MetricsRegistry::global().add(tasks_run_id());
      finish_task();
      continue;
    }
    std::unique_lock lk{mu_};
    work_cv_.wait(lk, [this] { return stop_ || unstarted_ > 0; });
    if (stop_) return;
  }
}

void ThreadPool::run_batch(std::vector<Task> tasks) {
  if (tasks.empty()) return;
  auto& registry = obs::MetricsRegistry::global();
  registry.add(batches_id());
  const auto batch_start = std::chrono::steady_clock::now();
  if (queues_.empty()) {
    for (Task& t : tasks) {
      t();
      registry.add(tasks_run_id());
    }
    registry.observe(batch_ms_hist(),
                     std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - batch_start)
                         .count());
    return;
  }
  {
    std::lock_guard lk{mu_};
    unstarted_ += tasks.size();
    pending_ += tasks.size();
  }
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    Queue& q = *queues_[i % queues_.size()];
    std::lock_guard lk{q.mu};
    q.q.push_back(std::move(tasks[i]));
  }
  work_cv_.notify_all();

  // Help drain the batch, then wait out the stragglers.
  Task task;
  while (try_take(0, task)) {
    task();
    registry.add(tasks_run_id());
    finish_task();
  }
  {
    std::unique_lock lk{mu_};
    done_cv_.wait(lk, [this] { return pending_ == 0; });
  }
  registry.observe(batch_ms_hist(),
                   std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - batch_start)
                       .count());
}

}  // namespace wheels::core

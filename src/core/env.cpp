#include "core/env.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace wheels::core {

namespace {

void warn(const char* name, const char* value, const char* why) {
  std::fprintf(stderr, "[wheels] ignoring %s='%s': %s\n", name, value, why);
}

}  // namespace

std::optional<long long> env_int(const char* name) {
  const char* s = std::getenv(name);
  if (s == nullptr) return std::nullopt;
  if (*s == '\0') {
    warn(name, s, "empty value");
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0') {
    warn(name, s, "not an integer");
    return std::nullopt;
  }
  if (errno == ERANGE) {
    warn(name, s, "out of range");
    return std::nullopt;
  }
  return v;
}

std::optional<double> env_double(const char* name) {
  const char* s = std::getenv(name);
  if (s == nullptr) return std::nullopt;
  if (*s == '\0') {
    warn(name, s, "empty value");
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') {
    warn(name, s, "not a number");
    return std::nullopt;
  }
  if (errno == ERANGE) {
    warn(name, s, "out of range");
    return std::nullopt;
  }
  return v;
}

}  // namespace wheels::core

// Validated environment-variable parsing for the WHEELS_* knobs.
//
// The original knob readers used atoi/atof, which silently turn "abc" into 0
// and saturate overflow into garbage — a malformed WHEELS_THREADS fell back
// to auto without a word. These helpers do full-string, range-checked
// parsing and complain on stderr, so a typo'd knob is loud instead of
// silently ignored. Callers still apply their own semantic range checks
// (e.g. threads >= 1) and warn when those fail.
#pragma once

#include <optional>

namespace wheels::core {

/// Parse env var `name` as a base-10 integer. Returns nullopt when the
/// variable is unset, and also — after a stderr warning — when the value is
/// empty, has trailing junk, or overflows long long.
std::optional<long long> env_int(const char* name);

/// Parse env var `name` as a double, with the same full-string and range
/// validation (stderr warning + nullopt on malformed or overflowing input).
std::optional<double> env_double(const char* name);

}  // namespace wheels::core

// Small math helpers shared by the radio / transport / analysis code.
#pragma once

#include <algorithm>
#include <cmath>

namespace wheels {

/// Linear value from decibels.
inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

/// Decibels from a (positive) linear value.
inline double linear_to_db(double linear) { return 10.0 * std::log10(linear); }

/// Clamp into [0, 1].
constexpr double clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

/// Linear interpolation; `t` outside [0,1] extrapolates.
constexpr double lerp(double a, double b, double t) { return a + (b - a) * t; }

/// Inverse lerp: where `x` sits between `a` and `b` (a != b).
constexpr double inverse_lerp(double a, double b, double x) {
  return (x - a) / (b - a);
}

/// Logistic sigmoid centred at `mid` with steepness `k`.
inline double logistic(double x, double mid, double k) {
  return 1.0 / (1.0 + std::exp(-k * (x - mid)));
}

/// Shannon spectral efficiency (bits/s/Hz) from an SNR in dB, clipped to a
/// practical ceiling (256-QAM-ish) as real modems cannot track capacity.
inline double shannon_efficiency(double snr_db, double ceiling = 7.4) {
  const double eff = std::log2(1.0 + db_to_linear(snr_db));
  return std::clamp(eff, 0.0, ceiling);
}

}  // namespace wheels

// A strict line-tracking recursive-descent JSON reader, shared by every
// subsystem that speaks newline-delimited or whole-file JSON (synth
// profiles, the wheelsd wire protocol, the result-cache index).
//
// The contract every user relies on: parsing never guesses. A malformed
// document, a missing or mistyped key, trailing content — each fails with
// "<prefix>: line N: <what>", N the 1-based line the offending token starts
// on, so a hand-edited profile, a torn cache index line, or a buggy client
// is debuggable from the error alone. Doc carries the prefix (and an
// optional first-line offset for parsers that read one line of a larger
// file at a time), so the message format cannot drift between callers.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wheels::core::json {

/// One parsed JSON value. `line` is the 1-based line its first token starts
/// on (offset by the owning Doc's first_line).
struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  int line = 0;
  bool boolean = false;
  double number = 0.0;
  std::string text;                              // String
  std::vector<Value> items;                      // Array
  std::vector<std::pair<std::string, Value>> keys;  // Object, in input order
};

/// Parse + typed-decode context: every error this object raises is
/// "<prefix>: line N: ...". `first_line` shifts reported line numbers, for
/// callers that parse line K of a larger file as its own document.
class Doc {
 public:
  explicit Doc(std::string prefix, int first_line = 1)
      : prefix_(std::move(prefix)), first_line_(first_line) {}

  const std::string& prefix() const { return prefix_; }

  /// Parse one complete JSON document; trailing non-whitespace fails.
  Value parse(std::string_view text) const;

  /// Throw std::runtime_error{"<prefix>: line N: <msg>"}.
  [[noreturn]] void fail(int line, const std::string& msg) const;

  /// The value under `key`, or nullptr when absent (no error).
  const Value* find(const Value& object, std::string_view key) const;

  /// The value under `key`; fails at the object's line when missing.
  const Value& get(const Value& object, std::string_view key) const;

  /// `v` itself after checking its kind; fails "expected <what>" otherwise.
  const Value& as(const Value& v, Value::Kind kind,
                  const std::string& what) const;

  /// Typed key lookups: get + kind check in one step.
  double num(const Value& object, std::string_view key) const;
  std::string str(const Value& object, std::string_view key) const;
  bool flag(const Value& object, std::string_view key) const;

  /// Decode an array of numbers.
  std::vector<double> doubles(const Value& v) const;

 private:
  std::string prefix_;
  int first_line_ = 1;
};

/// Escape `s` for embedding in a JSON string literal (backslash and quote;
/// the dataset's strings carry no control characters).
std::string escape(std::string_view s);

}  // namespace wheels::core::json

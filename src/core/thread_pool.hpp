// A small work-stealing thread pool for deterministic fan-out/join
// parallelism.
//
// The campaign runner fans the three per-carrier pipelines of one campaign
// across this pool; campaign::FleetRunner fans whole (seed, config)
// campaigns across it. Both callers rely on the same contract: the pool
// guarantees *completion* of a batch, never execution order. Callers that
// need reproducible output must make their tasks computationally independent
// and merge the results in a fixed order after run_batch returns — see
// measure::merge_shard_into for the campaign's merge step.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace wheels::core {

/// Resolve a requested worker-thread count: values > 0 pass through
/// unchanged; 0 means "auto" — the WHEELS_THREADS environment variable when
/// set to a positive integer, otherwise std::thread::hardware_concurrency().
/// Always returns >= 1; 1 selects the legacy serial path everywhere.
int resolve_threads(int requested);

/// Batch-oriented work-stealing pool. Tasks are dealt round-robin onto
/// per-worker deques; a worker pops from the front of its own deque and
/// steals from the back of a sibling's when it runs dry. The thread calling
/// run_batch participates in draining the batch, so a pool with W workers
/// executes batches W+1 wide (ThreadPool{0} runs everything inline on the
/// caller — the serial path).
class ThreadPool {
 public:
  using Task = std::function<void()>;

  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Run every task, blocking until all have completed. One batch at a time
  /// per pool; a task that throws terminates the process (campaign tasks
  /// report failure through their results, not exceptions).
  void run_batch(std::vector<Task> tasks);

 private:
  struct Queue {
    std::mutex mu;
    std::deque<Task> q;
  };

  /// Take a task, preferring queue `prefer` (front) and stealing from the
  /// back of the others. Decrements unstarted_ on success.
  bool try_take(std::size_t prefer, Task& out);
  void finish_task();
  void worker_loop(std::size_t self);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: "a task may be available"
  std::condition_variable done_cv_;  // run_batch: "the batch completed"
  std::size_t unstarted_ = 0;        // queued, not yet picked up
  std::size_t pending_ = 0;          // queued or running
  bool stop_ = false;
};

}  // namespace wheels::core

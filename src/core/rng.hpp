// Deterministic, splittable random number generation.
//
// Every stochastic subsystem receives its own `Rng` forked from the campaign
// root by a string label. Forking hashes (root seed, label) so the stream a
// subsystem sees is independent of how many draws any *other* subsystem has
// made — this is what makes whole-campaign simulations reproducible even as
// modules evolve.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <string_view>

namespace wheels {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Child generator with an independent stream derived from (seed, label).
  [[nodiscard]] Rng fork(std::string_view label) const;
  /// Child generator derived from (seed, label, index) — for per-item streams.
  [[nodiscard]] Rng fork(std::string_view label, std::uint64_t index) const;

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Inclusive integer range.
  int uniform_int(int lo, int hi);
  double normal(double mean, double stddev);
  /// Lognormal parameterised by the *underlying* normal's mu/sigma.
  double lognormal(double mu, double sigma);
  double exponential(double rate);
  bool bernoulli(double p);

  /// Pick an index in [0, weights.size()) with probability proportional to
  /// the weights (which need not be normalised; non-positive weights are
  /// treated as zero). Requires at least one positive weight.
  std::size_t weighted_index(std::span<const double> weights);

  template <typename T>
  const T& pick(std::span<const T> items) {
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<int>(items.size()) - 1))];
  }

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

/// Stable 64-bit hash (FNV-1a) used for seed derivation.
std::uint64_t stable_hash(std::string_view text, std::uint64_t basis);

}  // namespace wheels

#include "geo/speed_profile.hpp"

#include <algorithm>
#include <cmath>

namespace wheels::geo {

SpeedBand region_speed_band(RegionType region) {
  switch (region) {
    case RegionType::Urban: return {0.0, 25.0, 12.0};
    case RegionType::Suburban: return {22.0, 58.0, 42.0};
    case RegionType::Highway: return {58.0, 78.0, 68.0};
  }
  return {};
}

SpeedBin speed_bin(MilesPerHour speed) {
  if (speed < 20.0) return SpeedBin::Low;
  if (speed < 60.0) return SpeedBin::Mid;
  return SpeedBin::High;
}

std::string_view speed_bin_name(SpeedBin bin) {
  switch (bin) {
    case SpeedBin::Low: return "0-20 mph";
    case SpeedBin::Mid: return "20-60 mph";
    case SpeedBin::High: return "60+ mph";
  }
  return "?";
}

SpeedProfile::SpeedProfile(Rng rng) : rng_(std::move(rng)) {}

void SpeedProfile::maybe_retarget(RegionType region, Millis dt) {
  until_retarget_ -= dt;
  const bool region_changed = region != last_region_;
  last_region_ = region;
  if (until_retarget_ > 0.0 && !region_changed) return;

  const SpeedBand band = region_speed_band(region);
  // Urban driving stops at lights/intersections now and then.
  if (region == RegionType::Urban && rng_.bernoulli(0.18)) {
    target_ = 0.0;
  } else {
    target_ = std::clamp(rng_.normal(band.typical, (band.hi - band.lo) / 5.0),
                         band.lo, band.hi);
  }
  until_retarget_ = rng_.uniform(15'000.0, 60'000.0);
}

MilesPerHour SpeedProfile::advance(RegionType region, Millis dt) {
  maybe_retarget(region, dt);
  // First-order pursuit of the target (~6 s time constant) plus mild jitter.
  const double alpha = 1.0 - std::exp(-dt / 6'000.0);
  speed_ += (target_ - speed_) * alpha;
  speed_ += rng_.normal(0.0, 0.4) * std::sqrt(dt / 500.0);
  speed_ = std::max(0.0, speed_);
  return speed_;
}

}  // namespace wheels::geo

#include "geo/route.hpp"

#include <algorithm>
#include <cmath>

namespace wheels::geo {

std::string_view region_name(RegionType r) {
  switch (r) {
    case RegionType::Urban: return "urban";
    case RegionType::Suburban: return "suburban";
    case RegionType::Highway: return "highway";
  }
  return "?";
}

Route::Route(std::vector<Waypoint> waypoints, Km total_km)
    : waypoints_(std::move(waypoints)) {
  // Per-leg great-circle lengths, scaled by one road factor to reach the
  // surveyed road distance.
  std::vector<Km> leg(waypoints_.size() - 1);
  Km straight = 0.0;
  for (std::size_t i = 0; i + 1 < waypoints_.size(); ++i) {
    leg[i] = haversine_km(waypoints_[i].pos, waypoints_[i + 1].pos);
    straight += leg[i];
  }
  const double road_factor = total_km / straight;
  cum_km_.resize(waypoints_.size());
  cum_km_[0] = 0.0;
  for (std::size_t i = 0; i + 1 < waypoints_.size(); ++i) {
    cum_km_[i + 1] = cum_km_[i] + leg[i] * road_factor;
  }

  // Synthetic towns roughly every 90 km, jittered deterministically, skipped
  // when they would overlap a major city's suburban ring.
  for (int i = 0;; ++i) {
    const Km km = 55.0 + 90.0 * i + 20.0 * std::sin(i * 1.7);
    if (km >= total_km) break;
    bool near_city = false;
    for (Km ck : cum_km_) {
      if (std::abs(km - ck) < kSuburbanRadiusKm + kTownRadiusKm) {
        near_city = true;
        break;
      }
    }
    if (!near_city) town_km_.push_back(km);
  }
}

Route Route::cross_country() {
  std::vector<Waypoint> wps{
      {"Los Angeles", {34.05, -118.24}, true, true},
      {"Las Vegas", {36.17, -115.14}, true, true},
      {"Salt Lake City", {40.76, -111.89}, true, false},
      {"Denver", {39.74, -104.99}, true, true},
      {"Omaha", {41.26, -95.93}, true, false},
      {"Chicago", {41.88, -87.63}, true, true},
      {"Indianapolis", {39.77, -86.16}, true, false},
      {"Cleveland", {41.50, -81.69}, true, false},
      {"Rochester", {43.16, -77.61}, true, false},
      {"Boston", {42.36, -71.06}, true, true},
  };
  return Route{std::move(wps), 5711.0};
}

RoutePoint Route::at(Km km) const {
  km = std::clamp(km, 0.0, total_km());

  RoutePoint p;
  p.km = km;

  // Segment lookup + position interpolation.
  const auto it = std::upper_bound(cum_km_.begin(), cum_km_.end(), km);
  const std::size_t seg =
      it == cum_km_.begin()
          ? 0
          : std::min(static_cast<std::size_t>(it - cum_km_.begin()) - 1,
                     waypoints_.size() - 2);
  const Km seg_len = cum_km_[seg + 1] - cum_km_[seg];
  const double t = seg_len > 0.0 ? (km - cum_km_[seg]) / seg_len : 0.0;
  p.pos = interpolate(waypoints_[seg].pos, waypoints_[seg + 1].pos, t);
  p.tz = timezone_from_longitude(p.pos.lon_deg);

  // Nearest major city by along-route distance.
  Km best = 1e18;
  for (std::size_t i = 0; i < cum_km_.size(); ++i) {
    const Km d = std::abs(km - cum_km_[i]);
    if (d < best) {
      best = d;
      p.nearest_city = i;
    }
  }
  p.city_distance_km = best;

  if (best < kUrbanRadiusKm) {
    p.region = RegionType::Urban;
  } else if (best < kSuburbanRadiusKm) {
    p.region = RegionType::Suburban;
  } else {
    p.region = RegionType::Highway;
    for (Km town : town_km_) {
      if (std::abs(km - town) < kTownRadiusKm) {
        p.region = RegionType::Suburban;
        break;
      }
    }
  }
  return p;
}

}  // namespace wheels::geo

#include "geo/drive_trace.hpp"

#include <algorithm>

#include "geo/scaled_route.hpp"

namespace wheels::geo {

DriveTraceGenerator::DriveTraceGenerator(const Route& route,
                                         DriveTraceConfig config, Rng rng)
    : route_(&route),
      config_(config),
      speed_(rng.fork("speed-profile")) {
  start_day(0);
}

void DriveTraceGenerator::start_day(int day) {
  day_ = day;
  const Km total = route_->total_km() * config_.scale;
  day_end_km_ = total * static_cast<double>(day + 1) /
                static_cast<double>(config_.days);
  // Guard against rounding: final day always reaches the destination.
  if (day + 1 == config_.days) day_end_km_ = total;
}

std::optional<DriveSample> DriveTraceGenerator::next() {
  if (done_) return std::nullopt;

  const ScaledRoute view{*route_, config_.scale};
  const RoutePoint here = view.at_physical(driven_km_);

  DriveSample s;
  s.t = t_;
  s.km = driven_km_;
  s.pos = here.pos;
  s.region = here.region;
  s.tz = here.tz;
  s.day = day_;
  s.speed = speed_.advance(here.region, config_.sample_period);

  // Advance position for the next sample.
  driven_km_ += km_per_ms_from_mph(s.speed) * config_.sample_period;
  t_ += static_cast<SimMillis>(config_.sample_period);

  if (driven_km_ >= view.total_physical_km()) {
    done_ = true;
  } else if (driven_km_ >= day_end_km_) {
    // Overnight stop: resume at 08:00 local time the next morning.
    const int offset = utc_offset_minutes(here.tz);
    CivilDateTime local = civil_from_unix(unix_from_sim(t_), offset);
    const std::int64_t next_day = days_from_civil(local.year, local.month,
                                                  local.day) + 1;
    civil_from_days(next_day, local.year, local.month, local.day);
    local.hour = 8;
    local.minute = 0;
    local.second = 0;
    local.millisecond = 0;
    t_ = sim_from_unix(unix_from_civil(local, offset));
    start_day(day_ + 1);
  }
  return s;
}

std::vector<DriveSample> generate_trace(const Route& route,
                                        const DriveTraceConfig& config,
                                        Rng rng) {
  DriveTraceGenerator gen{route, config, std::move(rng)};
  std::vector<DriveSample> out;
  while (auto s = gen.next()) out.push_back(*s);
  return out;
}

}  // namespace wheels::geo

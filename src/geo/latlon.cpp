#include "geo/latlon.hpp"

#include <cmath>

#include "core/math_util.hpp"

namespace wheels::geo {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
}  // namespace

Km haversine_km(const LatLon& a, const LatLon& b) {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double s = std::sin(dlat / 2.0) * std::sin(dlat / 2.0) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2.0) *
                       std::sin(dlon / 2.0);
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(s));
}

LatLon interpolate(const LatLon& a, const LatLon& b, double t) {
  return LatLon{lerp(a.lat_deg, b.lat_deg, t), lerp(a.lon_deg, b.lon_deg, t)};
}

}  // namespace wheels::geo

// The LA→Boston drive route.
//
// The route is modelled as the polyline through the ten major cities the
// paper lists (Table 1 / §3), with per-leg great-circle lengths scaled by a
// single road-winding factor so the total distance matches the paper's
// 5,711 km. Between cities the route passes synthetic "towns" so the
// suburban (20-60 mph) regime the paper observes between cities and
// interstates exists in the model.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/units.hpp"
#include "geo/latlon.hpp"
#include "geo/timezone.hpp"

namespace wheels::geo {

/// The paper's three implicit region types: cities (low speed), suburban
/// in-between areas (mid speed), interstate highway (high speed). §5.5 uses
/// speed bins as a proxy for exactly these.
enum class RegionType { Urban, Suburban, Highway };

inline constexpr int kRegionCount = 3;

std::string_view region_name(RegionType r);

struct Waypoint {
  std::string name;
  LatLon pos;
  bool major_city = true;
  /// AWS Wavelength edge deployment city (LA, Las Vegas, Denver, Chicago,
  /// Boston — Verizon only, §3).
  bool has_edge_server = false;
};

/// A resolved position along the route.
struct RoutePoint {
  Km km = 0.0;
  LatLon pos;
  Timezone tz = Timezone::Pacific;
  RegionType region = RegionType::Highway;
  /// Index (into waypoints()) of the nearest major city.
  std::size_t nearest_city = 0;
  /// |along-route km| to that city's centre.
  Km city_distance_km = 0.0;
};

class Route {
 public:
  /// The cross-continental route of the paper:
  /// LA, Las Vegas, Salt Lake City, Denver, Omaha, Chicago, Indianapolis,
  /// Cleveland, Rochester, Boston. Total length 5,711 km.
  static Route cross_country();

  Km total_km() const { return cum_km_.back(); }
  const std::vector<Waypoint>& waypoints() const { return waypoints_; }

  /// Along-route position of a waypoint's city centre.
  Km city_km(std::size_t waypoint_index) const {
    return cum_km_.at(waypoint_index);
  }

  /// Resolve a km offset (clamped into [0, total_km]) to a position.
  RoutePoint at(Km km) const;

  /// Radius (in along-route km) treated as urban around a major city.
  static constexpr Km kUrbanRadiusKm = 10.0;
  /// Radius treated as suburban around a major city (beyond urban).
  static constexpr Km kSuburbanRadiusKm = 35.0;
  /// Radius treated as suburban around a synthetic town.
  static constexpr Km kTownRadiusKm = 7.0;

 private:
  Route(std::vector<Waypoint> waypoints, Km total_km);

  std::vector<Waypoint> waypoints_;
  std::vector<Km> cum_km_;
  std::vector<Km> town_km_;
};

}  // namespace wheels::geo

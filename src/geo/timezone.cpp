#include "geo/timezone.hpp"

namespace wheels::geo {

std::string_view timezone_name(Timezone tz) {
  switch (tz) {
    case Timezone::Pacific: return "Pacific";
    case Timezone::Mountain: return "Mountain";
    case Timezone::Central: return "Central";
    case Timezone::Eastern: return "Eastern";
  }
  return "?";
}

int utc_offset_minutes(Timezone tz) {
  switch (tz) {
    case Timezone::Pacific: return -7 * 60;
    case Timezone::Mountain: return -6 * 60;
    case Timezone::Central: return -5 * 60;
    case Timezone::Eastern: return -4 * 60;
  }
  return 0;
}

Timezone timezone_from_longitude(double lon_deg) {
  if (lon_deg < -114.04) return Timezone::Pacific;
  if (lon_deg < -101.40) return Timezone::Mountain;
  if (lon_deg < -84.80) return Timezone::Central;
  return Timezone::Eastern;
}

}  // namespace wheels::geo

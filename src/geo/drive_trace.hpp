// Generation of the 8-day drive trace.
//
// The trace is the shared ground truth for all three operator phones: one van,
// one route, one clock. Each sample carries position, speed, region and
// timezone at a fixed period (500 ms by default, matching XCAL's logging
// frequency). Overnight stops advance the wall clock to 08:00 local the next
// morning, as in the paper's 8-day itinerary.
#pragma once

#include <optional>
#include <vector>

#include "core/rng.hpp"
#include "core/sim_time.hpp"
#include "core/units.hpp"
#include "geo/route.hpp"
#include "geo/speed_profile.hpp"

namespace wheels::geo {

struct DriveSample {
  SimMillis t = 0;
  Km km = 0.0;
  LatLon pos;
  MilesPerHour speed = 0.0;
  RegionType region = RegionType::Highway;
  Timezone tz = Timezone::Pacific;
  int day = 0;  // 0-based trip day
};

struct DriveTraceConfig {
  Millis sample_period = 500.0;
  int days = 8;
  /// Fraction of the full route length to drive (1.0 = the whole 5,711 km).
  /// Scaling keeps the day structure: each day covers `scale` of its quota,
  /// so all timezones/regions remain represented at small scales.
  double scale = 1.0;
};

class DriveTraceGenerator {
 public:
  DriveTraceGenerator(const Route& route, DriveTraceConfig config, Rng rng);

  /// Next sample, or nullopt once the destination is reached.
  std::optional<DriveSample> next();

  const Route& route() const { return *route_; }
  const DriveTraceConfig& config() const { return config_; }

 private:
  void start_day(int day);

  const Route* route_;
  DriveTraceConfig config_;
  SpeedProfile speed_;
  SimMillis t_ = 0;
  Km driven_km_ = 0.0;  // km driven so far (scaled trip)
  int day_ = 0;
  Km day_end_km_ = 0.0;  // driven-km quota at which the current day ends
  bool done_ = false;
};

/// Convenience: materialise the whole trace.
std::vector<DriveSample> generate_trace(const Route& route,
                                        const DriveTraceConfig& config,
                                        Rng rng);

}  // namespace wheels::geo

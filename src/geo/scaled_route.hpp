// A scale-compressed view of the route.
//
// At scale s the van physically drives s * 5,711 km, but the *map* under it —
// cities, timezones, regions — is compressed by the same factor, so the whole
// country is still traversed. Everything downstream (cell placement, handover
// rates, per-mile statistics) operates in *physical* km, which keeps all
// per-mile quantities scale-invariant; only the trip is shorter.
#pragma once

#include "core/units.hpp"
#include "geo/route.hpp"

namespace wheels::geo {

class ScaledRoute {
 public:
  ScaledRoute(const Route& route, double scale)
      : route_(&route), scale_(scale) {}

  /// Resolve a physical-km offset. The returned RoutePoint's `km` field is in
  /// map space; `city_distance_km` is converted back to physical km so radii
  /// remain meaningful at any scale.
  RoutePoint at_physical(Km physical_km) const {
    RoutePoint p = route_->at(physical_km / scale_);
    p.city_distance_km *= scale_;
    return p;
  }

  Km total_physical_km() const { return route_->total_km() * scale_; }
  Km physical_city_km(std::size_t waypoint_index) const {
    return route_->city_km(waypoint_index) * scale_;
  }

  const Route& route() const { return *route_; }
  double scale() const { return scale_; }

 private:
  const Route* route_;
  double scale_;
};

}  // namespace wheels::geo

// The four US timezones the drive crosses, with August-2022 (DST) offsets.
#pragma once

#include <string_view>

#include "core/sim_time.hpp"

namespace wheels::geo {

enum class Timezone { Pacific, Mountain, Central, Eastern };

inline constexpr int kTimezoneCount = 4;

std::string_view timezone_name(Timezone tz);

/// UTC offset in minutes during the campaign (daylight-saving time):
/// PDT -420, MDT -360, CDT -300, EDT -240.
int utc_offset_minutes(Timezone tz);

/// Timezone from longitude, using the boundaries the I-15/I-80/I-90 route
/// actually crosses (NV/UT border, central Nebraska, IN/OH border).
Timezone timezone_from_longitude(double lon_deg);

}  // namespace wheels::geo

// Geographic coordinates and great-circle distance.
#pragma once

#include "core/units.hpp"

namespace wheels::geo {

struct LatLon {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  bool operator==(const LatLon&) const = default;
};

/// Great-circle (haversine) distance in km.
Km haversine_km(const LatLon& a, const LatLon& b);

/// Linear interpolation between two coordinates (fine at road scales).
LatLon interpolate(const LatLon& a, const LatLon& b, double t);

}  // namespace wheels::geo

// Vehicle speed model.
//
// Speeds are drawn per region to match the paper's three analysis bins
// (§4.2, §5.5): urban 0-20 mph, suburban 20-60 mph, highway 60+ mph. The
// instantaneous speed follows a retargeted first-order process (smooth
// accelerations, occasional urban stops) rather than white noise, so that
// speed-binned analyses see realistic dwell times in each bin.
#pragma once

#include "core/rng.hpp"
#include "core/units.hpp"
#include "geo/route.hpp"

namespace wheels::geo {

struct SpeedBand {
  MilesPerHour lo = 0.0;
  MilesPerHour hi = 0.0;
  MilesPerHour typical = 0.0;
};

/// The speed envelope the vehicle targets in each region type.
SpeedBand region_speed_band(RegionType region);

/// The paper's speed bins: low [0,20), mid [20,60), high [60,inf) mph.
enum class SpeedBin { Low, Mid, High };
inline constexpr int kSpeedBinCount = 3;

SpeedBin speed_bin(MilesPerHour speed);
std::string_view speed_bin_name(SpeedBin bin);

class SpeedProfile {
 public:
  explicit SpeedProfile(Rng rng);

  /// Advance the speed process by `dt` in the given region and return the new
  /// instantaneous speed (mph, >= 0).
  MilesPerHour advance(RegionType region, Millis dt);

  MilesPerHour current() const { return speed_; }

 private:
  void maybe_retarget(RegionType region, Millis dt);

  Rng rng_;
  MilesPerHour speed_ = 0.0;
  MilesPerHour target_ = 0.0;
  RegionType last_region_ = RegionType::Urban;
  Millis until_retarget_ = 0.0;
};

}  // namespace wheels::geo

// Resampling and gap handling: native trace timestamps -> simulator ticks.
//
// External traces rarely sample on the simulator's 500 ms grid: MONROE logs
// tick at 1 s, Mahimahi delivery opportunities are per-millisecond, drive
// logs pause at gas stations. resample() lays a uniform tick grid over each
// contiguous stretch of a CanonicalTrace, filling between source samples by
// holding the last one or linearly interpolating (the same HoldPolicy choice
// replay::TraceChannel offers at replay time), and splits the trace into
// independent segments wherever the source goes quiet for longer than
// max_gap_ms — a gap is missing data, not a record of zero capacity.
#pragma once

#include <vector>

#include "ingest/column_map.hpp"

namespace wheels::ingest {

enum class GapFill { Hold, Interpolate };

struct ResampleSpec {
  SimMillis tick_ms = 500;
  GapFill fill = GapFill::Hold;
  /// A step between consecutive source samples strictly larger than this
  /// starts a new segment; 0 disables splitting. Must be 0 or >= tick_ms.
  SimMillis max_gap_ms = 10'000;
};

/// One contiguous stretch after resampling: ticks spaced exactly tick_ms
/// apart, anchored at the segment's first source timestamp.
struct TraceSegment {
  std::vector<TracePoint> ticks;
};

/// Resample `trace` onto `spec`'s grid. Tick timestamps are strictly
/// increasing within and across segments (segments inherit the source
/// order), every source stretch contributes ticks from its first through
/// its last sample, and a single-sample stretch yields one tick. Throws
/// std::invalid_argument on a malformed spec, std::runtime_error on an
/// empty trace.
std::vector<TraceSegment> resample(const CanonicalTrace& trace,
                                   const ResampleSpec& spec);

}  // namespace wheels::ingest

// Resampling and gap handling: native trace timestamps -> simulator ticks.
//
// External traces rarely sample on the simulator's 500 ms grid: MONROE logs
// tick at 1 s, Mahimahi delivery opportunities are per-millisecond, drive
// logs pause at gas stations. The StreamingResampler lays a uniform tick
// grid over each contiguous stretch of a point stream with *bounded
// lookahead* — interpolation needs only the bracketing source pair, and a
// gap split compares adjacent points — so resampling a multi-GB trace holds
// one pending point plus the segment being built. It also validates the
// stream: source timestamps must be strictly increasing (a duplicate would
// divide by zero under GapFill::Interpolate, a backwards step would corrupt
// the tick loop), and violations throw with the 1-based point index.
// resample() is the whole-trace convenience wrapper over the same core.
#pragma once

#include <functional>
#include <vector>

#include "ingest/column_map.hpp"
#include "ingest/stream.hpp"

namespace wheels::ingest {

enum class GapFill { Hold, Interpolate };

struct ResampleSpec {
  SimMillis tick_ms = 500;
  GapFill fill = GapFill::Hold;
  /// A step between consecutive source samples strictly larger than this
  /// starts a new segment; 0 disables splitting. Must be 0 or >= tick_ms.
  SimMillis max_gap_ms = 10'000;
};

/// One contiguous stretch after resampling: ticks spaced exactly tick_ms
/// apart, anchored at the segment's first source timestamp.
struct TraceSegment {
  std::vector<TracePoint> ticks;
};

/// PointSink that resamples a strictly-increasing point stream onto `spec`'s
/// grid, handing each completed segment to `emit`. Tick timestamps are
/// strictly increasing within and across segments, every source stretch
/// contributes ticks from its first through its last sample, and a
/// single-sample stretch yields one tick. Memory is O(one segment); the
/// only lookahead is the pending source point. Throws std::invalid_argument
/// on a malformed spec (at construction), std::runtime_error "resample:
/// point N: ..." on a non-monotonic stream and "resample: empty trace" when
/// finish() is reached without any point.
class StreamingResampler final : public PointSink {
 public:
  using SegmentFn = std::function<void(TraceSegment&&)>;

  StreamingResampler(const ResampleSpec& spec, SegmentFn emit);

  void on_run(std::span<const TracePoint> run) override;
  void finish() override;

 private:
  void accept(const TracePoint& p);
  void close_segment();

  ResampleSpec spec_;
  SegmentFn emit_;
  TraceSegment seg_;
  TracePoint prev_{};
  bool have_prev_ = false;
  SimMillis t_next_ = 0;
  std::size_t index_ = 0;  // 1-based count of points consumed, diagnostics
  bool finished_ = false;
};

/// Resample a whole trace onto `spec`'s grid: the in-memory wrapper over
/// StreamingResampler, with identical semantics and errors.
std::vector<TraceSegment> resample(const CanonicalTrace& trace,
                                   const ResampleSpec& spec);

}  // namespace wheels::ingest

// The built-in trace adapters.
//
// minimal  — the repo's own t_ms,cap_dl_mbps,cap_ul_mbps,rtt_ms[,tech] CSV.
// mahimahi — Mahimahi packet-delivery-opportunity traces (one integer ms
//            timestamp per line, one MTU per line), windowed into Mbps.
// errant   — ERRANT-style per-model KPI logs (kbps columns, RAT names).
// monroe   — MONROE-style metadata+throughput logs (unix-second clock,
//            bps columns).
// paper    — the paper's released per-table CSVs (a kpis.csv table, with an
//            optional rtts.csv overlay).
//
// minimal, errant and monroe are pure ColumnMap instances — the proof that
// formats of that family are data, not code.
#pragma once

#include <iosfwd>
#include <memory>

#include "ingest/adapter.hpp"

namespace wheels::ingest {

std::unique_ptr<TraceAdapter> make_minimal_adapter();
std::unique_ptr<TraceAdapter> make_mahimahi_adapter();
std::unique_ptr<TraceAdapter> make_errant_adapter();
std::unique_ptr<TraceAdapter> make_monroe_adapter();
std::unique_ptr<TraceAdapter> make_paper_tables_adapter();

/// Merge a paired Mahimahi uplink trace into `down` (both already windowed
/// by the mahimahi adapter on the same tick grid): cap_ul is replaced by the
/// uplink trace's windowed rate; the shorter side holds its last windowed
/// rate to the longer side's end.
void merge_mahimahi_uplink(CanonicalTrace& down, const CanonicalTrace& up);

/// Streaming form of the uplink merge: a PointSink wrapper that applies the
/// positional merge to the downlink stream flowing through it and forwards
/// the result (plus any uplink tail) to `inner`. The (already windowed)
/// uplink trace is held in memory — O(duration / tick), not O(file bytes).
std::unique_ptr<PointSink> make_mahimahi_uplink_merge(CanonicalTrace up,
                                                      PointSink& inner);

/// Overlay recorded RTT samples (a paper rtts.csv table) onto `trace`: each
/// point takes the latest recorded RTT at or before its timestamp (rows for
/// other carriers are ignored; points before the first RTT sample keep
/// their fill value). Throws std::runtime_error on a malformed table.
void attach_paper_rtts(CanonicalTrace& trace, std::istream& rtts,
                       radio::Carrier carrier);

/// Streaming form of the RTT overlay: loads the rtts.csv table up front
/// (paper tables are small) and rewrites each point flowing through to
/// `inner`. Throws std::runtime_error on a malformed table.
std::unique_ptr<PointSink> make_paper_rtt_overlay(std::istream& rtts,
                                                  radio::Carrier carrier,
                                                  PointSink& inner);

}  // namespace wheels::ingest

// Mahimahi packet-delivery-opportunity traces.
//
// The de-facto interchange format for cellular capacity records (Winstein et
// al., NSDI '13; also consumed by ERRANT, Pensieve, Puffer, ...): one line
// per MTU-sized (1500 B) delivery opportunity, holding the opportunity's
// integer millisecond timestamp; repeated timestamps mean several packets in
// the same millisecond, and timestamps are non-decreasing. The adapter
// windows the opportunity count over the simulator tick and converts it to
// Mbps — `count * 1500 B * 8 / tick` — producing a trace that is already on
// the tick grid (windows with no opportunities are zero-capacity, which is a
// recorded outage, not a gap). A Mahimahi file covers one direction; the
// paired up/down merge lives in merge_mahimahi_uplink().
#include <algorithm>
#include <istream>
#include <stdexcept>
#include <string>

#include "ingest/adapters.hpp"
#include "replay/trace_text.hpp"

namespace wheels::ingest {

namespace {

constexpr double kMtuBits = 1500.0 * 8.0;

bool all_digits(const std::string& line) {
  if (line.empty()) return false;
  for (char ch : line) {
    if (ch < '0' || ch > '9') return false;
  }
  return true;
}

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

class MahimahiAdapter final : public TraceAdapter {
 public:
  std::string_view name() const override { return "mahimahi"; }

  std::string_view description() const override {
    return "Mahimahi packet-delivery-opportunity trace (one integer ms "
           "timestamp per line, one 1500 B opportunity each)";
  }

  int sniff(const SniffInput& input) const override {
    if (ends_with(input.path, ".down") || ends_with(input.path, ".up") ||
        ends_with(input.path, ".pps")) {
      return 85;
    }
    if (input.head.empty()) return 0;
    for (const std::string& line : input.head) {
      if (!all_digits(line)) return 0;
    }
    return 70;
  }

  CanonicalTrace parse(std::istream& is,
                       const IngestOptions& options) const override {
    const SimMillis tick = options.resample.tick_ms;
    if (tick <= 0) {
      throw std::runtime_error{"mahimahi: tick_ms must be > 0"};
    }
    if (options.default_rtt_ms <= 0.0) {
      throw std::runtime_error{"mahimahi: default rtt must be > 0"};
    }

    replay::TraceLineReader reader{is};
    std::string line;
    std::vector<std::size_t> window_counts;
    SimMillis last = -1;
    while (reader.next(line)) {
      const std::size_t line_no = reader.line_number();
      const SimMillis t = replay::parse_trace_time_ms(line, line_no);
      if (t < last) {
        replay::trace_fail(line_no, "time going backwards");
      }
      last = t;
      const std::size_t window = static_cast<std::size_t>(t / tick);
      if (window >= window_counts.size()) window_counts.resize(window + 1, 0);
      ++window_counts[window];
    }
    if (window_counts.empty()) {
      replay::trace_fail(reader.line_number(), "trace has no data rows");
    }

    CanonicalTrace trace;
    trace.points.reserve(window_counts.size());
    for (std::size_t w = 0; w < window_counts.size(); ++w) {
      TracePoint p;
      p.t = static_cast<SimMillis>(w) * tick;
      p.cap_dl_mbps = static_cast<double>(window_counts[w]) * kMtuBits /
                      (static_cast<double>(tick) * 1e-3) / 1e6;
      p.cap_ul_mbps = p.cap_dl_mbps * options.mahimahi_ul_share;
      p.rtt_ms = options.default_rtt_ms;
      p.tech = options.default_tech;
      trace.points.push_back(p);
    }
    return trace;
  }
};

}  // namespace

std::unique_ptr<TraceAdapter> make_mahimahi_adapter() {
  return std::make_unique<MahimahiAdapter>();
}

void merge_mahimahi_uplink(CanonicalTrace& down, const CanonicalTrace& up) {
  if (down.points.empty() || up.points.empty()) {
    throw std::runtime_error{"mahimahi merge: empty trace"};
  }
  for (std::size_t i = 0; i < down.points.size(); ++i) {
    const std::size_t j = std::min(i, up.points.size() - 1);
    down.points[i].cap_ul_mbps = up.points[j].cap_dl_mbps;
  }
  // The uplink trace may outlast the downlink one; extend by holding the
  // downlink's last windowed rate so neither side's recording is dropped.
  for (std::size_t j = down.points.size(); j < up.points.size(); ++j) {
    TracePoint p = down.points.back();
    p.t = up.points[j].t;
    p.cap_ul_mbps = up.points[j].cap_dl_mbps;
    down.points.push_back(p);
  }
}

}  // namespace wheels::ingest

// Mahimahi packet-delivery-opportunity traces.
//
// The de-facto interchange format for cellular capacity records (Winstein et
// al., NSDI '13; also consumed by ERRANT, Pensieve, Puffer, ...): one line
// per MTU-sized (1500 B) delivery opportunity, holding the opportunity's
// integer millisecond timestamp; repeated timestamps mean several packets in
// the same millisecond, and timestamps are non-decreasing. The adapter
// windows the opportunity count over the simulator tick and converts it to
// Mbps — `count * 1500 B * 8 / tick` — producing a trace that is already on
// the tick grid. Windows are counted incrementally as timestamps stream by:
// the first timestamp anchors the first window (a recording that starts on
// an epoch-millisecond clock must not allocate one counter per window since
// 1970 — that dense vector is exactly the OOM this replaces), interior
// windows with no opportunities emit zero capacity (a recorded outage, not a
// gap), and parser state is O(1) in the trace length. A Mahimahi file covers
// one direction; the paired up/down merge lives in the uplink-merge sink.
#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "ingest/adapters.hpp"
#include "replay/trace_text.hpp"

namespace wheels::ingest {

namespace {

constexpr double kMtuBits = 1500.0 * 8.0;

bool all_digits(const std::string& line) {
  if (line.empty()) return false;
  for (char ch : line) {
    if (ch < '0' || ch > '9') return false;
  }
  return true;
}

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

class MahimahiAdapter final : public TraceAdapter {
 public:
  std::string_view name() const override { return "mahimahi"; }

  std::string_view description() const override {
    return "Mahimahi packet-delivery-opportunity trace (one integer ms "
           "timestamp per line, one 1500 B opportunity each)";
  }

  int sniff(const SniffInput& input) const override {
    if (ends_with(input.path, ".down") || ends_with(input.path, ".up") ||
        ends_with(input.path, ".pps")) {
      return 85;
    }
    if (input.head.empty()) return 0;
    for (const std::string& line : input.head) {
      if (!all_digits(line)) return 0;
    }
    return 70;
  }

  void parse_stream(LineSource& lines, const IngestOptions& options,
                    PointSink& sink) const override {
    const SimMillis tick = options.resample.tick_ms;
    if (tick <= 0) {
      throw std::runtime_error{"mahimahi: tick_ms must be > 0"};
    }
    if (options.default_rtt_ms <= 0.0) {
      throw std::runtime_error{"mahimahi: default rtt must be > 0"};
    }

    RunEmitter out{sink};
    const auto emit_window = [&](SimMillis window, std::size_t count) {
      TracePoint p;
      p.t = window * tick;
      p.cap_dl_mbps = static_cast<double>(count) * kMtuBits /
                      (static_cast<double>(tick) * 1e-3) / 1e6;
      p.cap_ul_mbps = p.cap_dl_mbps * options.mahimahi_ul_share;
      p.rtt_ms = options.default_rtt_ms;
      p.tech = options.default_tech;
      out.push(p);
    };

    std::vector<LineRef> batch;
    SimMillis last = -1;
    SimMillis window = 0;  // current window index, valid once have_window
    std::size_t count = 0;
    bool have_window = false;
    while (lines.next_batch(batch)) {
      for (const LineRef& line : batch) {
        const SimMillis t = replay::parse_trace_time_ms(line.text,
                                                        line.number);
        if (t < last) {
          replay::trace_fail(line.number, "time going backwards");
        }
        last = t;
        const SimMillis w = t / tick;
        if (!have_window) {
          // The first timestamp anchors windowing — no counters for the
          // (possibly billions of) empty windows before the recording.
          window = w;
          have_window = true;
        }
        while (window < w) {
          emit_window(window, count);
          ++window;
          count = 0;
        }
        ++count;
      }
    }
    if (!have_window) {
      replay::trace_fail(lines.line_number(), "trace has no data rows");
    }
    emit_window(window, count);
    out.finish();
  }
};

/// Streaming positional merge of a paired (windowed) uplink trace: downlink
/// point i takes up[min(i, last)]'s downlink rate as its uplink capacity,
/// and when the uplink trace outlasts the downlink one the tail extends by
/// holding the downlink's final windowed rate. The uplink side is already
/// reduced to one point per covered window, so holding it is O(recording
/// duration / tick), not O(file bytes).
class MahimahiUplinkMerge final : public PointSink {
 public:
  MahimahiUplinkMerge(CanonicalTrace up, PointSink& inner)
      : up_(std::move(up)), inner_(inner) {
    if (up_.points.empty()) {
      throw std::runtime_error{"mahimahi merge: empty trace"};
    }
  }

  void on_run(std::span<const TracePoint> run) override {
    scratch_.assign(run.begin(), run.end());
    for (TracePoint& p : scratch_) {
      const std::size_t j = std::min(index_, up_.points.size() - 1);
      p.cap_ul_mbps = up_.points[j].cap_dl_mbps;
      ++index_;
    }
    if (!scratch_.empty()) last_ = scratch_.back();
    inner_.on_run(std::span<const TracePoint>{scratch_.data(),
                                              scratch_.size()});
  }

  void finish() override {
    if (index_ == 0) {
      throw std::runtime_error{"mahimahi merge: empty trace"};
    }
    if (index_ < up_.points.size()) {
      std::vector<TracePoint> tail;
      tail.reserve(up_.points.size() - index_);
      for (std::size_t j = index_; j < up_.points.size(); ++j) {
        TracePoint p = last_;
        p.t = up_.points[j].t;
        p.cap_ul_mbps = up_.points[j].cap_dl_mbps;
        tail.push_back(p);
      }
      inner_.on_run(std::span<const TracePoint>{tail.data(), tail.size()});
    }
    inner_.finish();
  }

 private:
  CanonicalTrace up_;
  PointSink& inner_;
  std::vector<TracePoint> scratch_;
  TracePoint last_{};
  std::size_t index_ = 0;
};

}  // namespace

std::unique_ptr<TraceAdapter> make_mahimahi_adapter() {
  return std::make_unique<MahimahiAdapter>();
}

std::unique_ptr<PointSink> make_mahimahi_uplink_merge(CanonicalTrace up,
                                                      PointSink& inner) {
  return std::make_unique<MahimahiUplinkMerge>(std::move(up), inner);
}

void merge_mahimahi_uplink(CanonicalTrace& down, const CanonicalTrace& up) {
  CollectSink merged;
  const auto sink = make_mahimahi_uplink_merge(up, merged);
  sink->on_run(std::span<const TracePoint>{down.points.data(),
                                           down.points.size()});
  sink->finish();
  down = merged.take();
}

}  // namespace wheels::ingest

// TracePoint run plumbing for the streaming ingest pipeline.
//
// Incremental adapters do not build one giant point vector; they push points
// through a RunEmitter, which packs them into a fixed-capacity arena block
// and hands the consumer bounded *runs* (spans into the recycled block).
// Consumers are PointSinks — the streaming resampler, the join layer's
// rebase/trim wrappers, the Mahimahi uplink merger — chained so a point
// flows reader -> adapter -> arena -> resample/join without the full trace
// ever existing in memory. CollectSink terminates a chain with an in-memory
// CanonicalTrace; it is what keeps the whole-file convenience entry points
// thin wrappers over the same streaming core.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "ingest/column_map.hpp"

namespace wheels::ingest {

/// Consumer of a point stream. Points arrive in runs; across the whole
/// stream their timestamps follow the producing adapter's ordering contract
/// (strictly increasing for every built-in format). Runs die when on_run
/// returns — a sink that keeps points must copy them.
class PointSink {
 public:
  virtual ~PointSink() = default;
  virtual void on_run(std::span<const TracePoint> run) = 0;
  /// End of stream. A producer finishes its sink exactly once; wrapper
  /// sinks forward the call down the chain.
  virtual void finish() {}
};

/// Push-side helper over a PointSink: buffers points in one arena block of
/// `run_points` capacity and flushes it as a run each time it fills (and
/// once more on finish). The block is recycled, so an emitter's memory is
/// O(run_points) for the life of the stream. Counts rows and arena bytes
/// into the core::obs registry ("ingest.rows_emitted", "ingest.arena_bytes").
class RunEmitter {
 public:
  static constexpr std::size_t kDefaultRunPoints = 4096;

  explicit RunEmitter(PointSink& sink,
                      std::size_t run_points = kDefaultRunPoints);

  void push(const TracePoint& p) {
    arena_.push_back(p);
    if (arena_.size() >= capacity_) flush();
  }

  /// Flush the partial run and finish the sink. Call exactly once.
  void finish();

 private:
  void flush();

  PointSink& sink_;
  std::size_t capacity_;
  std::vector<TracePoint> arena_;
};

/// Terminal sink that materializes the stream — the bridge back to the
/// in-memory CanonicalTrace API.
class CollectSink final : public PointSink {
 public:
  void on_run(std::span<const TracePoint> run) override {
    trace.points.insert(trace.points.end(), run.begin(), run.end());
  }

  CanonicalTrace take() { return std::move(trace); }

  CanonicalTrace trace;
};

}  // namespace wheels::ingest

#include "ingest/adapter.hpp"

#include <fstream>
#include <stdexcept>

#include "ingest/adapters.hpp"
#include "replay/trace_text.hpp"

namespace wheels::ingest {

CanonicalTrace TraceAdapter::parse(std::istream& is,
                                   const IngestOptions& options) const {
  IstreamLineSource lines{is, options.chunk.batch_lines};
  CollectSink sink;
  parse_stream(lines, options, sink);
  return sink.take();
}

void AdapterRegistry::add(std::unique_ptr<TraceAdapter> adapter) {
  for (const auto& existing : adapters_) {
    if (existing->name() == adapter->name()) {
      throw std::runtime_error{"adapter registry: duplicate format '" +
                               std::string{adapter->name()} + "'"};
    }
  }
  adapters_.push_back(std::move(adapter));
}

const TraceAdapter* AdapterRegistry::find(std::string_view name) const {
  for (const auto& adapter : adapters_) {
    if (adapter->name() == name) return adapter.get();
  }
  return nullptr;
}

std::vector<const TraceAdapter*> AdapterRegistry::adapters() const {
  std::vector<const TraceAdapter*> out;
  out.reserve(adapters_.size());
  for (const auto& adapter : adapters_) out.push_back(adapter.get());
  return out;
}

namespace {

std::string known_formats(const AdapterRegistry& registry) {
  std::string out;
  for (const TraceAdapter* adapter : registry.adapters()) {
    if (!out.empty()) out += '|';
    out += adapter->name();
  }
  return out;
}

}  // namespace

const TraceAdapter& AdapterRegistry::resolve(std::string_view format,
                                             const SniffInput& input) const {
  if (format == "auto") return sniff_or_throw(input);
  if (const TraceAdapter* adapter = find(format)) return *adapter;
  throw std::runtime_error{"unknown trace format '" + std::string{format} +
                           "' (expected auto|" + known_formats(*this) + ")"};
}

const TraceAdapter& AdapterRegistry::sniff_or_throw(
    const SniffInput& input) const {
  const TraceAdapter* best = nullptr;
  int best_score = 0;
  bool tied = false;
  for (const auto& adapter : adapters_) {
    const int score = adapter->sniff(input);
    if (score > best_score) {
      best = adapter.get();
      best_score = score;
      tied = false;
    } else if (score == best_score && score > 0) {
      tied = true;
    }
  }
  if (best == nullptr) {
    throw std::runtime_error{
        "cannot sniff trace format of '" + input.path +
        "' — pass an explicit format (" + known_formats(*this) + ")"};
  }
  if (tied) {
    throw std::runtime_error{"ambiguous trace format for '" + input.path +
                             "' — pass an explicit format (" +
                             known_formats(*this) + ")"};
  }
  return *best;
}

const AdapterRegistry& builtin_registry() {
  static const AdapterRegistry registry = [] {
    AdapterRegistry r;
    r.add(make_minimal_adapter());
    r.add(make_mahimahi_adapter());
    r.add(make_errant_adapter());
    r.add(make_monroe_adapter());
    r.add(make_paper_tables_adapter());
    return r;
  }();
  return registry;
}

SniffInput sniff_file(const std::string& path, std::size_t max_lines) {
  std::ifstream is{path};
  if (!is) {
    throw std::runtime_error{"cannot open " + path};
  }
  SniffInput input;
  input.path = path;
  replay::TraceLineReader reader{is};
  std::string line;
  while (input.head.size() < max_lines && reader.next(line)) {
    input.head.push_back(line);
  }
  return input;
}

}  // namespace wheels::ingest

// Pluggable trace adapters and the format registry.
//
// One TraceAdapter per supported input format lifts a native trace file into
// the canonical per-sample record (ingest/column_map.hpp); the registry maps
// format names to adapters and sniffs unlabelled files (header, extension
// and first-data-line heuristics), so `--format auto` works for every
// registered format and new formats plug in without touching any caller.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ingest/chunked_reader.hpp"
#include "ingest/column_map.hpp"
#include "ingest/resample.hpp"
#include "ingest/stream.hpp"
#include "radio/technology.hpp"

namespace wheels::ingest {

/// What sniffing may look at: the file path (extension heuristics) and the
/// first payload lines (comments and blanks already skipped).
struct SniffInput {
  std::string path;
  std::vector<std::string> head;
};

/// Per-ingest knobs, shared by every adapter.
struct IngestOptions {
  /// Carrier the synthetic bundle is tagged with (single-trace ingest; the
  /// multi-carrier join names a carrier per input instead).
  radio::Carrier carrier = radio::Carrier::Verizon;
  /// Technology when the format records none.
  radio::Technology default_tech = radio::Technology::Lte;
  /// RTT fill for formats that record none (Mahimahi, paper KPI tables).
  double default_rtt_ms = 50.0;
  /// Mahimahi: paired uplink trace merged by load_trace(); when empty,
  /// cap_ul is synthesised as mahimahi_ul_share * cap_dl.
  std::string mahimahi_uplink_path;
  double mahimahi_ul_share = 0.1;
  /// Paper tables: optional rtts.csv overlaid onto the KPI timeline; when
  /// empty, a sibling rtts.csv next to a kpis.csv input is picked up
  /// automatically.
  std::string paper_rtts_path;
  ResampleSpec resample;
  /// Geometry of the chunked file reader (window size, batch size, mmap).
  ChunkSpec chunk;
  /// Ingest shards for multi-trace joins: one worker per input file.
  /// 0 = resolve from WHEELS_THREADS / hardware concurrency.
  int threads = 1;
};

class TraceAdapter {
 public:
  virtual ~TraceAdapter() = default;

  /// Registry key and `--format` value, e.g. "mahimahi".
  virtual std::string_view name() const = 0;
  /// One-line description for --list-formats and docs.
  virtual std::string_view description() const = 0;
  /// Confidence in [0, 100] that `input` is this format; 0 = no. The
  /// registry picks the highest strictly positive score.
  virtual int sniff(const SniffInput& input) const = 0;
  /// Incrementally parse one trace: pull bounded line batches from `lines`,
  /// emit canonical points into `sink` (finishing it exactly once, on
  /// success). Adapter state stays O(1) in the input size. Throws
  /// std::runtime_error "line N: ..." on malformed input (callers prefix
  /// the file path).
  virtual void parse_stream(LineSource& lines, const IngestOptions& options,
                            PointSink& sink) const = 0;
  /// Whole-stream convenience wrapper over parse_stream; identical
  /// semantics and errors.
  CanonicalTrace parse(std::istream& is, const IngestOptions& options) const;
};

class AdapterRegistry {
 public:
  /// Register an adapter; throws on a duplicated name.
  void add(std::unique_ptr<TraceAdapter> adapter);

  /// nullptr when no adapter has that name.
  const TraceAdapter* find(std::string_view name) const;

  /// "auto" sniffs `input`; any other value is an exact adapter name.
  /// Throws std::runtime_error listing the known formats on an unknown name
  /// or an unsniffable input.
  const TraceAdapter& resolve(std::string_view format,
                              const SniffInput& input) const;

  /// Best-scoring adapter for `input`; throws when every score is 0 or two
  /// formats tie at the top (an ambiguous file needs an explicit --format).
  const TraceAdapter& sniff_or_throw(const SniffInput& input) const;

  /// Registration order.
  std::vector<const TraceAdapter*> adapters() const;

 private:
  std::vector<std::unique_ptr<TraceAdapter>> adapters_;
};

/// The registry with every built-in adapter (minimal, mahimahi, errant,
/// monroe, paper) registered.
const AdapterRegistry& builtin_registry();

/// Read the first payload lines of `path` for sniffing. Throws
/// std::runtime_error when the file cannot be opened.
SniffInput sniff_file(const std::string& path, std::size_t max_lines = 8);

}  // namespace wheels::ingest

#include "ingest/resample.hpp"

#include <stdexcept>

namespace wheels::ingest {

namespace {

double lerp(double a, double b, double f) { return a + (b - a) * f; }

/// Value at tick `t`, bracketed by pts[prev] and pts[prev + 1]; `end` bounds
/// the current run so interpolation never reaches across a gap split.
TracePoint sample_at(const std::vector<TracePoint>& pts, std::size_t prev,
                     std::size_t end, SimMillis t, GapFill fill) {
  TracePoint out = pts[prev];
  out.t = t;
  if (fill == GapFill::Interpolate && prev + 1 < end && t > pts[prev].t) {
    const TracePoint& a = pts[prev];
    const TracePoint& b = pts[prev + 1];
    const double f = static_cast<double>(t - a.t) /
                     static_cast<double>(b.t - a.t);
    out.cap_dl_mbps = lerp(a.cap_dl_mbps, b.cap_dl_mbps, f);
    out.cap_ul_mbps = lerp(a.cap_ul_mbps, b.cap_ul_mbps, f);
    out.rtt_ms = lerp(a.rtt_ms, b.rtt_ms, f);
    // tech is categorical: held from the earlier sample, like TraceChannel.
  }
  return out;
}

}  // namespace

std::vector<TraceSegment> resample(const CanonicalTrace& trace,
                                   const ResampleSpec& spec) {
  if (spec.tick_ms <= 0) {
    throw std::invalid_argument{"resample: tick_ms must be > 0"};
  }
  if (spec.max_gap_ms != 0 && spec.max_gap_ms < spec.tick_ms) {
    throw std::invalid_argument{"resample: max_gap_ms must be 0 or >= tick_ms"};
  }
  const std::vector<TracePoint>& pts = trace.points;
  if (pts.empty()) {
    throw std::runtime_error{"resample: empty trace"};
  }

  std::vector<TraceSegment> segments;
  std::size_t run_start = 0;
  for (std::size_t i = 1; i <= pts.size(); ++i) {
    const bool split =
        i == pts.size() ||
        (spec.max_gap_ms != 0 && pts[i].t - pts[i - 1].t > spec.max_gap_ms);
    if (!split) continue;

    TraceSegment seg;
    const SimMillis t0 = pts[run_start].t;
    const SimMillis t_last = pts[i - 1].t;
    std::size_t prev = run_start;
    for (SimMillis t = t0; t <= t_last; t += spec.tick_ms) {
      while (prev + 1 < i && pts[prev + 1].t <= t) ++prev;
      seg.ticks.push_back(sample_at(pts, prev, i, t, spec.fill));
    }
    segments.push_back(std::move(seg));
    run_start = i;
  }
  return segments;
}

}  // namespace wheels::ingest

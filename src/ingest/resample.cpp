#include "ingest/resample.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace wheels::ingest {

namespace {

double lerp(double a, double b, double f) { return a + (b - a) * f; }

}  // namespace

StreamingResampler::StreamingResampler(const ResampleSpec& spec,
                                       SegmentFn emit)
    : spec_(spec), emit_(std::move(emit)) {
  if (spec_.tick_ms <= 0) {
    throw std::invalid_argument{"resample: tick_ms must be > 0"};
  }
  if (spec_.max_gap_ms != 0 && spec_.max_gap_ms < spec_.tick_ms) {
    throw std::invalid_argument{"resample: max_gap_ms must be 0 or >= tick_ms"};
  }
}

void StreamingResampler::on_run(std::span<const TracePoint> run) {
  for (const TracePoint& p : run) accept(p);
}

void StreamingResampler::accept(const TracePoint& p) {
  ++index_;
  if (!have_prev_) {
    prev_ = p;
    have_prev_ = true;
    t_next_ = p.t;
    return;
  }
  if (p.t == prev_.t) {
    throw std::runtime_error{"resample: point " + std::to_string(index_) +
                             ": duplicate time " + std::to_string(p.t)};
  }
  if (p.t < prev_.t) {
    throw std::runtime_error{"resample: point " + std::to_string(index_) +
                             ": time going backwards (" +
                             std::to_string(p.t) + " after " +
                             std::to_string(prev_.t) + ")"};
  }
  if (spec_.max_gap_ms != 0 && p.t - prev_.t > spec_.max_gap_ms) {
    close_segment();
    prev_ = p;
    t_next_ = p.t;
    return;
  }
  // Every grid tick strictly before the new point is bracketed by
  // (prev_, p) — the bounded lookahead: one pending source sample.
  while (t_next_ < p.t) {
    TracePoint out = prev_;
    out.t = t_next_;
    if (spec_.fill == GapFill::Interpolate && t_next_ > prev_.t) {
      const double f = static_cast<double>(t_next_ - prev_.t) /
                       static_cast<double>(p.t - prev_.t);
      out.cap_dl_mbps = lerp(prev_.cap_dl_mbps, p.cap_dl_mbps, f);
      out.cap_ul_mbps = lerp(prev_.cap_ul_mbps, p.cap_ul_mbps, f);
      out.rtt_ms = lerp(prev_.rtt_ms, p.rtt_ms, f);
      // tech is categorical: held from the earlier sample, like TraceChannel.
    }
    seg_.ticks.push_back(out);
    t_next_ += spec_.tick_ms;
  }
  prev_ = p;
}

void StreamingResampler::close_segment() {
  // All ticks before prev_.t were emitted when prev_ arrived; at most the
  // tick landing exactly on the segment's last sample remains.
  while (t_next_ <= prev_.t) {
    TracePoint out = prev_;
    out.t = t_next_;
    seg_.ticks.push_back(out);
    t_next_ += spec_.tick_ms;
  }
  emit_(std::move(seg_));
  seg_ = TraceSegment{};
}

void StreamingResampler::finish() {
  if (finished_) return;
  finished_ = true;
  if (!have_prev_) {
    throw std::runtime_error{"resample: empty trace"};
  }
  close_segment();
}

std::vector<TraceSegment> resample(const CanonicalTrace& trace,
                                   const ResampleSpec& spec) {
  std::vector<TraceSegment> segments;
  StreamingResampler resampler{
      spec, [&segments](TraceSegment&& seg) {
        segments.push_back(std::move(seg));
      }};
  resampler.on_run(std::span<const TracePoint>{trace.points.data(),
                                               trace.points.size()});
  resampler.finish();
  return segments;
}

}  // namespace wheels::ingest

// The paper's released per-table CSVs.
//
// The dataset release ships the ConsolidatedDb tables as individual CSVs
// (measure/csv_export.hpp). A complete bundle goes through
// replay::read_dataset; this adapter covers the partial-release case — a
// lone kpis.csv table — by pivoting its per-direction throughput rows into
// the canonical capacity series: per timestamp, the mean downlink and mean
// uplink app-layer throughput across that carrier's rows. RTTs live in a
// separate rtts.csv table; attach_paper_rtts() overlays one when available,
// otherwise the configured fill applies.
#include <istream>
#include <map>
#include <stdexcept>
#include <string>

#include "measure/csv_export.hpp"
#include "measure/enum_names.hpp"

#include "ingest/adapters.hpp"

namespace wheels::ingest {

namespace {

bool starts_with(const std::string& s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

class PaperTablesAdapter final : public TraceAdapter {
 public:
  std::string_view name() const override { return "paper"; }

  std::string_view description() const override {
    return "the paper's released kpis.csv table (optionally with a sibling "
           "rtts.csv overlay)";
  }

  int sniff(const SniffInput& input) const override {
    if (input.head.empty()) return 0;
    return starts_with(input.head.front(), "test_id,t,carrier,tech,cell_id")
               ? 95
               : 0;
  }

  CanonicalTrace parse(std::istream& is,
                       const IngestOptions& options) const override {
    if (options.default_rtt_ms <= 0.0) {
      throw std::runtime_error{"paper tables: default rtt must be > 0"};
    }
    const std::vector<measure::KpiRecord> kpis = measure::read_kpis_csv(is);

    struct Accumulator {
      double dl_sum = 0.0;
      std::size_t dl_n = 0;
      double ul_sum = 0.0;
      std::size_t ul_n = 0;
      radio::Technology tech = radio::Technology::Lte;
    };
    std::map<SimMillis, Accumulator> by_t;
    std::size_t rows = 0;
    for (const measure::KpiRecord& k : kpis) {
      if (k.carrier != options.carrier) continue;
      ++rows;
      Accumulator& acc = by_t[k.t];
      if (k.direction == radio::Direction::Downlink) {
        acc.dl_sum += k.throughput;
        ++acc.dl_n;
      } else {
        acc.ul_sum += k.throughput;
        ++acc.ul_n;
      }
      acc.tech = k.tech;  // rows share the tick's serving technology
    }
    if (rows == 0) {
      throw std::runtime_error{
          "paper tables: no KPI rows for carrier " +
          std::string{measure::names::to_name(options.carrier)}};
    }

    CanonicalTrace trace;
    trace.points.reserve(by_t.size());
    for (const auto& [t, acc] : by_t) {
      TracePoint p;
      p.t = t;
      p.cap_dl_mbps = acc.dl_n > 0
                          ? acc.dl_sum / static_cast<double>(acc.dl_n)
                          : 0.0;
      p.cap_ul_mbps = acc.ul_n > 0
                          ? acc.ul_sum / static_cast<double>(acc.ul_n)
                          : 0.0;
      p.rtt_ms = options.default_rtt_ms;
      p.tech = acc.tech;
      trace.points.push_back(p);
    }
    return trace;
  }
};

}  // namespace

std::unique_ptr<TraceAdapter> make_paper_tables_adapter() {
  return std::make_unique<PaperTablesAdapter>();
}

void attach_paper_rtts(CanonicalTrace& trace, std::istream& rtts,
                       radio::Carrier carrier) {
  const std::vector<measure::RttRecord> records = measure::read_rtts_csv(rtts);
  // (t -> rtt) for this carrier; read_rtts_csv does not require ordering,
  // the map provides it.
  std::map<SimMillis, double> by_t;
  for (const measure::RttRecord& r : records) {
    if (r.carrier == carrier) by_t[r.t] = r.rtt;
  }
  if (by_t.empty()) return;
  for (TracePoint& p : trace.points) {
    auto it = by_t.upper_bound(p.t);
    if (it == by_t.begin()) continue;  // before the first sample: keep fill
    p.rtt_ms = std::prev(it)->second;
  }
}

}  // namespace wheels::ingest

// The paper's released per-table CSVs.
//
// The dataset release ships the ConsolidatedDb tables as individual CSVs
// (measure/csv_export.hpp). A complete bundle goes through
// replay::read_dataset; this adapter covers the partial-release case — a
// lone kpis.csv table — by pivoting its per-direction throughput rows into
// the canonical capacity series: per timestamp, the mean downlink and mean
// uplink app-layer throughput across that carrier's rows. Rows stream
// through an incremental parser that keeps only the per-timestamp
// accumulators (the pivot's inherent state, O(unique ticks), independent of
// the row count). RTTs live in a separate rtts.csv table;
// attach_paper_rtts() / make_paper_rtt_overlay() overlay one when
// available, otherwise the configured fill applies.
#include <charconv>
#include <istream>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "measure/csv_export.hpp"
#include "measure/enum_names.hpp"

#include "ingest/adapters.hpp"
#include "replay/trace_text.hpp"

namespace wheels::ingest {

namespace {

// Mirrors measure/csv_export.cpp's kKpiHeader; the full-bundle reader over
// there and this partial-release parser must accept the same table.
constexpr std::string_view kKpiHeader =
    "test_id,t,carrier,tech,cell_id,rsrp,mcs,bler,ca,throughput,speed,km,"
    "map_km,tz,region,handovers,server,direction,is_static";
constexpr std::size_t kKpiColumns = 19;

bool starts_with(const std::string& s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

[[noreturn]] void csv_fail(std::size_t line, const std::string& msg) {
  throw std::runtime_error{"csv: line " + std::to_string(line) + ": " + msg};
}

SimMillis csv_i64(std::string_view cell, std::size_t line) {
  if (cell.empty()) csv_fail(line, "empty integer field");
  SimMillis v = 0;
  const auto [ptr, ec] =
      std::from_chars(cell.data(), cell.data() + cell.size(), v);
  if (ec == std::errc::result_out_of_range) {
    csv_fail(line, "integer out of range '" + std::string{cell} + "'");
  }
  if (ec != std::errc{} || ptr != cell.data() + cell.size()) {
    csv_fail(line, "malformed integer '" + std::string{cell} + "'");
  }
  return v;
}

template <typename Parser>
auto csv_enum(std::string_view cell, std::size_t line, Parser parser) {
  try {
    return parser(cell);
  } catch (const std::runtime_error& e) {
    csv_fail(line, e.what());
  }
}

class PaperTablesAdapter final : public TraceAdapter {
 public:
  std::string_view name() const override { return "paper"; }

  std::string_view description() const override {
    return "the paper's released kpis.csv table (optionally with a sibling "
           "rtts.csv overlay)";
  }

  int sniff(const SniffInput& input) const override {
    if (input.head.empty()) return 0;
    return starts_with(input.head.front(), "test_id,t,carrier,tech,cell_id")
               ? 95
               : 0;
  }

  void parse_stream(LineSource& lines, const IngestOptions& options,
                    PointSink& sink) const override {
    if (options.default_rtt_ms <= 0.0) {
      throw std::runtime_error{"paper tables: default rtt must be > 0"};
    }

    std::vector<LineRef> batch;
    if (!lines.next_batch(batch)) {
      csv_fail(1, "missing header, expected '" + std::string{kKpiHeader} +
                      "'");
    }
    if (batch.front().text != kKpiHeader) {
      csv_fail(batch.front().number,
               "unexpected header '" + std::string{batch.front().text} +
                   "', expected '" + std::string{kKpiHeader} + "'");
    }
    std::size_t row = 1;

    struct Accumulator {
      double dl_sum = 0.0;
      std::size_t dl_n = 0;
      double ul_sum = 0.0;
      std::size_t ul_n = 0;
      radio::Technology tech = radio::Technology::Lte;
    };
    std::map<SimMillis, Accumulator> by_t;
    std::size_t rows = 0;
    std::vector<std::string_view> cells;
    while (true) {
      if (row == batch.size()) {
        if (!lines.next_batch(batch)) break;
        row = 0;
      }
      const std::string_view text = batch[row].text;
      const std::size_t line_no = batch[row].number;
      ++row;
      if (text == kKpiHeader) csv_fail(line_no, "duplicated header");
      replay::split_trace_row(text, cells);
      if (cells.size() != kKpiColumns) {
        csv_fail(line_no, "expected " + std::to_string(kKpiColumns) +
                              " fields, got " +
                              std::to_string(cells.size()));
      }
      const auto carrier =
          csv_enum(cells[2], line_no, measure::names::parse_carrier);
      if (carrier != options.carrier) continue;
      ++rows;
      Accumulator& acc = by_t[csv_i64(cells[1], line_no)];
      const auto direction =
          csv_enum(cells[17], line_no, measure::names::parse_direction);
      const double throughput = replay::parse_trace_double(cells[9], line_no);
      if (direction == radio::Direction::Downlink) {
        acc.dl_sum += throughput;
        ++acc.dl_n;
      } else {
        acc.ul_sum += throughput;
        ++acc.ul_n;
      }
      acc.tech = csv_enum(cells[3], line_no,
                          measure::names::parse_technology);
    }
    if (rows == 0) {
      throw std::runtime_error{
          "paper tables: no KPI rows for carrier " +
          std::string{measure::names::to_name(options.carrier)}};
    }

    RunEmitter out{sink};
    for (const auto& [t, acc] : by_t) {
      TracePoint p;
      p.t = t;
      p.cap_dl_mbps = acc.dl_n > 0
                          ? acc.dl_sum / static_cast<double>(acc.dl_n)
                          : 0.0;
      p.cap_ul_mbps = acc.ul_n > 0
                          ? acc.ul_sum / static_cast<double>(acc.ul_n)
                          : 0.0;
      p.rtt_ms = options.default_rtt_ms;
      p.tech = acc.tech;
      out.push(p);
    }
    out.finish();
  }
};

std::map<SimMillis, double> load_rtt_map(std::istream& rtts,
                                         radio::Carrier carrier) {
  const std::vector<measure::RttRecord> records = measure::read_rtts_csv(rtts);
  // (t -> rtt) for this carrier; read_rtts_csv does not require ordering,
  // the map provides it.
  std::map<SimMillis, double> by_t;
  for (const measure::RttRecord& r : records) {
    if (r.carrier == carrier) by_t[r.t] = r.rtt;
  }
  return by_t;
}

void overlay_rtt(const std::map<SimMillis, double>& by_t, TracePoint& p) {
  auto it = by_t.upper_bound(p.t);
  if (it == by_t.begin()) return;  // before the first sample: keep fill
  p.rtt_ms = std::prev(it)->second;
}

class PaperRttOverlay final : public PointSink {
 public:
  PaperRttOverlay(std::istream& rtts, radio::Carrier carrier,
                  PointSink& inner)
      : by_t_(load_rtt_map(rtts, carrier)), inner_(inner) {}

  void on_run(std::span<const TracePoint> run) override {
    if (by_t_.empty()) {
      inner_.on_run(run);
      return;
    }
    scratch_.assign(run.begin(), run.end());
    for (TracePoint& p : scratch_) overlay_rtt(by_t_, p);
    inner_.on_run(std::span<const TracePoint>{scratch_.data(),
                                              scratch_.size()});
  }

  void finish() override { inner_.finish(); }

 private:
  std::map<SimMillis, double> by_t_;
  PointSink& inner_;
  std::vector<TracePoint> scratch_;
};

}  // namespace

std::unique_ptr<TraceAdapter> make_paper_tables_adapter() {
  return std::make_unique<PaperTablesAdapter>();
}

void attach_paper_rtts(CanonicalTrace& trace, std::istream& rtts,
                       radio::Carrier carrier) {
  const std::map<SimMillis, double> by_t = load_rtt_map(rtts, carrier);
  if (by_t.empty()) return;
  for (TracePoint& p : trace.points) overlay_rtt(by_t, p);
}

std::unique_ptr<PointSink> make_paper_rtt_overlay(std::istream& rtts,
                                                  radio::Carrier carrier,
                                                  PointSink& inner) {
  return std::make_unique<PaperRttOverlay>(rtts, carrier, inner);
}

}  // namespace wheels::ingest

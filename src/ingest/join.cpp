#include "ingest/join.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/thread_pool.hpp"
#include "measure/csv_export.hpp"
#include "measure/enum_names.hpp"
#include "measure/validate.hpp"

namespace wheels::ingest {

namespace {

measure::TestRecord make_test(std::uint32_t id, measure::TestType type,
                              radio::Carrier carrier, radio::Direction dir,
                              SimMillis start, SimMillis end, int cycle) {
  measure::TestRecord t;
  t.id = id;
  t.type = type;
  t.carrier = carrier;
  t.is_static = false;
  t.start = start;
  t.end = end;
  t.start_km = 0.0;
  t.end_km = 0.0;
  t.tz = geo::Timezone::Pacific;
  t.server = net::ServerKind::Cloud;
  t.direction = dir;
  t.cycle = cycle;
  return t;
}

void append_segment(measure::ConsolidatedDb& db, radio::Carrier carrier,
                    const TraceSegment& seg, SimMillis tick_ms, int cycle,
                    std::uint32_t& next_test_id) {
  const SimMillis start = seg.ticks.front().t;
  const SimMillis end = seg.ticks.back().t + tick_ms;
  const std::uint32_t dl_id = next_test_id++;
  const std::uint32_t ul_id = next_test_id++;
  const std::uint32_t rtt_id = next_test_id++;

  db.tests.push_back(make_test(dl_id, measure::TestType::DownlinkBulk,
                               carrier, radio::Direction::Downlink, start,
                               end, cycle));
  db.tests.push_back(make_test(ul_id, measure::TestType::UplinkBulk, carrier,
                               radio::Direction::Uplink, start, end, cycle));
  db.tests.push_back(make_test(rtt_id, measure::TestType::Rtt, carrier,
                               radio::Direction::Downlink, start, end,
                               cycle));

  for (const TracePoint& p : seg.ticks) {
    for (const bool dl : {true, false}) {
      measure::KpiRecord k;
      k.test_id = dl ? dl_id : ul_id;
      k.t = p.t;
      k.carrier = carrier;
      k.tech = p.tech;
      k.cell_id = 1;
      k.rsrp = -90.0;
      k.mcs = 20;
      k.bler = 0.0;
      k.ca = 1;
      k.throughput = dl ? p.cap_dl_mbps : p.cap_ul_mbps;
      k.direction = dl ? radio::Direction::Downlink : radio::Direction::Uplink;
      db.kpis.push_back(k);
    }
    measure::RttRecord rr;
    rr.test_id = rtt_id;
    rr.t = p.t;
    rr.carrier = carrier;
    rr.tech = p.tech;
    rr.rtt = p.rtt_ms;
    db.rtts.push_back(rr);
  }

  db.experiment_runtime[measure::carrier_index(carrier)] +=
      static_cast<Millis>(end - start) * 3.0;
}

/// Pass-through sink that throws `msg` when the stream ends empty. Sits at
/// the head of each source's chain so an empty source reports the join's
/// error, not a downstream one.
class EmptyGuard final : public PointSink {
 public:
  EmptyGuard(std::string msg, PointSink& inner)
      : msg_(std::move(msg)), inner_(inner) {}

  void on_run(std::span<const TracePoint> run) override {
    if (!run.empty()) seen_ = true;
    inner_.on_run(run);
  }

  void finish() override {
    if (!seen_) throw std::runtime_error{msg_};
    inner_.finish();
  }

 private:
  std::string msg_;
  PointSink& inner_;
  bool seen_ = false;
};

/// Clock-offset alignment: subtracts the stream's first timestamp from
/// every point, so the recording starts at t = 0.
class RebaseSink final : public PointSink {
 public:
  explicit RebaseSink(PointSink& inner) : inner_(inner) {}

  void on_run(std::span<const TracePoint> run) override {
    if (run.empty()) return;
    if (!have_base_) {
      base_ = run.front().t;
      have_base_ = true;
    }
    scratch_.assign(run.begin(), run.end());
    for (TracePoint& p : scratch_) p.t -= base_;
    inner_.on_run(std::span<const TracePoint>{scratch_.data(),
                                              scratch_.size()});
  }

  void finish() override { inner_.finish(); }

 private:
  PointSink& inner_;
  std::vector<TracePoint> scratch_;
  SimMillis base_ = 0;
  bool have_base_ = false;
};

/// Overlap trimming: forwards only the points inside [lo, hi]. A
/// downstream EmptyGuard reports the nothing-survived error.
class TrimSink final : public PointSink {
 public:
  TrimSink(SimMillis lo, SimMillis hi, PointSink& inner)
      : lo_(lo), hi_(hi), inner_(inner) {}

  void on_run(std::span<const TracePoint> run) override {
    scratch_.clear();
    for (const TracePoint& p : run) {
      if (p.t >= lo_ && p.t <= hi_) scratch_.push_back(p);
    }
    if (scratch_.empty()) return;
    inner_.on_run(std::span<const TracePoint>{scratch_.data(),
                                              scratch_.size()});
  }

  void finish() override { inner_.finish(); }

 private:
  SimMillis lo_;
  SimMillis hi_;
  PointSink& inner_;
  std::vector<TracePoint> scratch_;
};

/// Bounds pre-pass for overlap trimming: records the (aligned) first and
/// last timestamp of the stream.
class SpanSink final : public PointSink {
 public:
  void on_run(std::span<const TracePoint> run) override {
    if (run.empty()) return;
    if (!seen_) {
      first = run.front().t;
      seen_ = true;
    }
    last = run.back().t;
  }

  bool seen() const { return seen_; }

  SimMillis first = 0;
  SimMillis last = 0;

 private:
  bool seen_ = false;
};

/// Run `fn(i)` for every source index, sharded `width` wide over a
/// core::ThreadPool when width > 1. Exceptions are captured per shard and
/// rethrown in canonical (index) order — a multi-source failure reports the
/// same error at every thread count.
void run_sharded(std::size_t n, int threads,
                 const std::function<void(std::size_t)>& fn) {
  const int width = static_cast<int>(
      std::min<std::size_t>(n, static_cast<std::size_t>(
                                   core::resolve_threads(threads))));
  if (width <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::exception_ptr> errors(n);
  std::vector<core::ThreadPool::Task> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks.push_back([&fn, &errors, i] {
      // The pool terminates on an escaping exception; capture and rethrow
      // deterministically after the batch drains.
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  core::ThreadPool pool{width - 1};
  pool.run_batch(std::move(tasks));
  for (std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace

replay::ReplayBundle join_streams(std::vector<StreamSource> sources,
                                  const JoinOptions& join,
                                  const ResampleSpec& resample_spec,
                                  int threads) {
  if (sources.empty()) {
    throw std::runtime_error{"join: no input traces"};
  }
  std::sort(sources.begin(), sources.end(),
            [](const StreamSource& a, const StreamSource& b) {
              return measure::carrier_index(a.carrier) <
                     measure::carrier_index(b.carrier);
            });
  for (std::size_t i = 1; i < sources.size(); ++i) {
    if (sources[i].carrier == sources[i - 1].carrier) {
      throw std::runtime_error{
          "join: carrier " +
          std::string{measure::names::to_name(sources[i].carrier)} +
          " appears twice (" + sources[i - 1].name + ", " + sources[i].name +
          ")"};
    }
  }
  // Spec errors must not wait for the first stream to flow.
  { StreamingResampler probe{resample_spec, [](TraceSegment&&) {}}; }

  // Overlap trimming needs every source's (aligned) bounds before any
  // stream can be resampled: a bounds pre-pass over all sources.
  SimMillis trim_lo = 0;
  SimMillis trim_hi = 0;
  if (join.trim_to_overlap) {
    std::vector<SpanSink> spans(sources.size());
    run_sharded(sources.size(), threads, [&](std::size_t i) {
      SpanSink& span = spans[i];
      EmptyGuard guard{"join: " + sources[i].name + ": empty trace", span};
      if (join.align_clocks) {
        RebaseSink rebase{guard};
        sources[i].produce(rebase);
      } else {
        sources[i].produce(guard);
      }
    });
    trim_lo = spans.front().first;
    trim_hi = spans.front().last;
    for (const SpanSink& span : spans) {
      trim_lo = std::max(trim_lo, span.first);
      trim_hi = std::min(trim_hi, span.last);
    }
    if (trim_lo > trim_hi) {
      throw std::runtime_error{
          "join: traces share no overlapping window (re-run without "
          "trimming, or check the clock alignment)"};
    }
  }

  // Main pass: every source flows produce -> [rebase] -> [trim] -> resample
  // into its own segment list. Shards only race on disjoint slots; the
  // bundle below is assembled serially in canonical order, which is what
  // keeps the output byte-identical at any thread count.
  std::vector<std::vector<TraceSegment>> segments(sources.size());
  run_sharded(sources.size(), threads, [&](std::size_t i) {
    std::vector<TraceSegment>& out = segments[i];
    StreamingResampler resampler{resample_spec, [&out](TraceSegment&& seg) {
                                   out.push_back(std::move(seg));
                                 }};
    PointSink* sink = &resampler;
    std::unique_ptr<TrimSink> trim;
    std::unique_ptr<EmptyGuard> survived;
    if (join.trim_to_overlap) {
      survived = std::make_unique<EmptyGuard>(
          "join: " + sources[i].name + ": no samples inside the overlap "
          "window",
          *sink);
      trim = std::make_unique<TrimSink>(trim_lo, trim_hi, *survived);
      sink = trim.get();
    }
    EmptyGuard guard{"join: " + sources[i].name + ": empty trace", *sink};
    if (join.align_clocks) {
      RebaseSink rebase{guard};
      sources[i].produce(rebase);
    } else {
      sources[i].produce(guard);
    }
  });

  replay::ReplayBundle bundle;
  measure::ConsolidatedDb& db = bundle.db;
  for (radio::Carrier c : radio::kAllCarriers) {
    db.passive[measure::carrier_index(c)].carrier = c;
  }

  std::ostringstream digest;
  std::uint32_t next_test_id = 1;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    digest << measure::names::to_name(sources[i].carrier) << ':'
           << sources[i].name << '\n';
    int cycle = 0;
    for (const TraceSegment& seg : segments[i]) {
      append_segment(db, sources[i].carrier, seg, resample_spec.tick_ms,
                     cycle++, next_test_id);
      for (const TracePoint& p : seg.ticks) {
        digest << p.t << ',' << measure::csv_double(p.cap_dl_mbps) << ','
               << measure::csv_double(p.cap_ul_mbps) << ','
               << measure::csv_double(p.rtt_ms) << ','
               << measure::names::to_name(p.tech) << '\n';
      }
    }
  }

  bundle.manifest = core::obs::make_run_manifest();
  bundle.manifest.seed = 0;
  bundle.manifest.scale = 1.0;
  bundle.manifest.threads = 1;
  bundle.manifest.config_digest =
      core::obs::hex64(core::obs::fnv1a64(digest.str()));

  measure::validate_or_throw(db);
  return bundle;
}

replay::ReplayBundle join_traces(std::vector<JoinInput> inputs,
                                 const JoinOptions& join,
                                 const ResampleSpec& resample_spec) {
  std::vector<StreamSource> sources;
  sources.reserve(inputs.size());
  for (JoinInput& input : inputs) {
    StreamSource source;
    source.carrier = input.carrier;
    source.name = std::move(input.name);
    // Shared: the trim pre-pass replays the producer.
    auto trace = std::make_shared<CanonicalTrace>(std::move(input.trace));
    source.produce = [trace](PointSink& sink) {
      sink.on_run(std::span<const TracePoint>{trace->points.data(),
                                              trace->points.size()});
      sink.finish();
    };
    sources.push_back(std::move(source));
  }
  return join_streams(std::move(sources), join, resample_spec, 1);
}

replay::ReplayBundle build_bundle(CanonicalTrace trace, radio::Carrier carrier,
                                  const ResampleSpec& resample_spec) {
  std::vector<JoinInput> inputs(1);
  inputs[0].carrier = carrier;
  inputs[0].name = "trace";
  inputs[0].trace = std::move(trace);
  return join_traces(std::move(inputs), JoinOptions{}, resample_spec);
}

}  // namespace wheels::ingest

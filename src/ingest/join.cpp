#include "ingest/join.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "measure/csv_export.hpp"
#include "measure/enum_names.hpp"
#include "measure/validate.hpp"

namespace wheels::ingest {

namespace {

measure::TestRecord make_test(std::uint32_t id, measure::TestType type,
                              radio::Carrier carrier, radio::Direction dir,
                              SimMillis start, SimMillis end, int cycle) {
  measure::TestRecord t;
  t.id = id;
  t.type = type;
  t.carrier = carrier;
  t.is_static = false;
  t.start = start;
  t.end = end;
  t.start_km = 0.0;
  t.end_km = 0.0;
  t.tz = geo::Timezone::Pacific;
  t.server = net::ServerKind::Cloud;
  t.direction = dir;
  t.cycle = cycle;
  return t;
}

void append_segment(measure::ConsolidatedDb& db, radio::Carrier carrier,
                    const TraceSegment& seg, SimMillis tick_ms, int cycle,
                    std::uint32_t& next_test_id) {
  const SimMillis start = seg.ticks.front().t;
  const SimMillis end = seg.ticks.back().t + tick_ms;
  const std::uint32_t dl_id = next_test_id++;
  const std::uint32_t ul_id = next_test_id++;
  const std::uint32_t rtt_id = next_test_id++;

  db.tests.push_back(make_test(dl_id, measure::TestType::DownlinkBulk,
                               carrier, radio::Direction::Downlink, start,
                               end, cycle));
  db.tests.push_back(make_test(ul_id, measure::TestType::UplinkBulk, carrier,
                               radio::Direction::Uplink, start, end, cycle));
  db.tests.push_back(make_test(rtt_id, measure::TestType::Rtt, carrier,
                               radio::Direction::Downlink, start, end,
                               cycle));

  for (const TracePoint& p : seg.ticks) {
    for (const bool dl : {true, false}) {
      measure::KpiRecord k;
      k.test_id = dl ? dl_id : ul_id;
      k.t = p.t;
      k.carrier = carrier;
      k.tech = p.tech;
      k.cell_id = 1;
      k.rsrp = -90.0;
      k.mcs = 20;
      k.bler = 0.0;
      k.ca = 1;
      k.throughput = dl ? p.cap_dl_mbps : p.cap_ul_mbps;
      k.direction = dl ? radio::Direction::Downlink : radio::Direction::Uplink;
      db.kpis.push_back(k);
    }
    measure::RttRecord rr;
    rr.test_id = rtt_id;
    rr.t = p.t;
    rr.carrier = carrier;
    rr.tech = p.tech;
    rr.rtt = p.rtt_ms;
    db.rtts.push_back(rr);
  }

  db.experiment_runtime[measure::carrier_index(carrier)] +=
      static_cast<Millis>(end - start) * 3.0;
}

}  // namespace

replay::ReplayBundle join_traces(std::vector<JoinInput> inputs,
                                 const JoinOptions& join,
                                 const ResampleSpec& resample_spec) {
  if (inputs.empty()) {
    throw std::runtime_error{"join: no input traces"};
  }
  std::sort(inputs.begin(), inputs.end(),
            [](const JoinInput& a, const JoinInput& b) {
              return measure::carrier_index(a.carrier) <
                     measure::carrier_index(b.carrier);
            });
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    if (inputs[i].carrier == inputs[i - 1].carrier) {
      throw std::runtime_error{
          "join: carrier " +
          std::string{measure::names::to_name(inputs[i].carrier)} +
          " appears twice (" + inputs[i - 1].name + ", " + inputs[i].name +
          ")"};
    }
  }
  for (const JoinInput& input : inputs) {
    if (input.trace.points.empty()) {
      throw std::runtime_error{"join: " + input.name + ": empty trace"};
    }
  }

  // Clock-offset alignment: every carrier's recording starts at t = 0.
  if (join.align_clocks) {
    for (JoinInput& input : inputs) {
      const SimMillis base = input.trace.points.front().t;
      for (TracePoint& p : input.trace.points) p.t -= base;
    }
  }

  // Overlap trimming: keep the window every carrier covers.
  if (join.trim_to_overlap) {
    SimMillis lo = inputs.front().trace.points.front().t;
    SimMillis hi = inputs.front().trace.points.back().t;
    for (const JoinInput& input : inputs) {
      lo = std::max(lo, input.trace.points.front().t);
      hi = std::min(hi, input.trace.points.back().t);
    }
    if (lo > hi) {
      throw std::runtime_error{
          "join: traces share no overlapping window (re-run without "
          "trimming, or check the clock alignment)"};
    }
    for (JoinInput& input : inputs) {
      std::vector<TracePoint>& pts = input.trace.points;
      std::erase_if(pts, [&](const TracePoint& p) {
        return p.t < lo || p.t > hi;
      });
      if (pts.empty()) {
        throw std::runtime_error{"join: " + input.name +
                                 ": no samples inside the overlap window"};
      }
    }
  }

  replay::ReplayBundle bundle;
  measure::ConsolidatedDb& db = bundle.db;
  for (radio::Carrier c : radio::kAllCarriers) {
    db.passive[measure::carrier_index(c)].carrier = c;
  }

  std::ostringstream digest;
  std::uint32_t next_test_id = 1;
  for (const JoinInput& input : inputs) {
    const std::vector<TraceSegment> segments =
        resample(input.trace, resample_spec);
    digest << measure::names::to_name(input.carrier) << ':' << input.name
           << '\n';
    int cycle = 0;
    for (const TraceSegment& seg : segments) {
      append_segment(db, input.carrier, seg, resample_spec.tick_ms, cycle++,
                     next_test_id);
      for (const TracePoint& p : seg.ticks) {
        digest << p.t << ',' << measure::csv_double(p.cap_dl_mbps) << ','
               << measure::csv_double(p.cap_ul_mbps) << ','
               << measure::csv_double(p.rtt_ms) << ','
               << measure::names::to_name(p.tech) << '\n';
      }
    }
  }

  bundle.manifest = core::obs::make_run_manifest();
  bundle.manifest.seed = 0;
  bundle.manifest.scale = 1.0;
  bundle.manifest.threads = 1;
  bundle.manifest.config_digest =
      core::obs::hex64(core::obs::fnv1a64(digest.str()));

  measure::validate_or_throw(db);
  return bundle;
}

replay::ReplayBundle build_bundle(CanonicalTrace trace, radio::Carrier carrier,
                                  const ResampleSpec& resample_spec) {
  std::vector<JoinInput> inputs(1);
  inputs[0].carrier = carrier;
  inputs[0].name = "trace";
  inputs[0].trace = std::move(trace);
  return join_traces(std::move(inputs), JoinOptions{}, resample_spec);
}

}  // namespace wheels::ingest

#include "ingest/stream.hpp"

#include "core/obs/metrics.hpp"

namespace wheels::ingest {

RunEmitter::RunEmitter(PointSink& sink, std::size_t run_points)
    : sink_(sink), capacity_(run_points == 0 ? 1 : run_points) {
  arena_.reserve(capacity_);
  static const core::obs::Counter arena_bytes{"ingest.arena_bytes"};
  arena_bytes.add(capacity_ * sizeof(TracePoint));
}

void RunEmitter::flush() {
  if (arena_.empty()) return;
  static const core::obs::Counter rows{"ingest.rows_emitted"};
  rows.add(arena_.size());
  sink_.on_run(std::span<const TracePoint>{arena_.data(), arena_.size()});
  arena_.clear();
}

void RunEmitter::finish() {
  flush();
  sink_.finish();
}

}  // namespace wheels::ingest

// Declarative column mapping: lift a heterogeneous trace CSV into the
// canonical per-sample record.
//
// Real drive datasets disagree on everything — column names, time units
// (ms vs. fractional unix seconds), throughput units (Mbps, kbps, bps),
// whether RTT or technology is recorded at all. A ColumnMap describes one
// format as *data*: source column -> canonical field, a unit scale, and a
// constant fill for columns the format lacks. parse_with_map() is the single
// strict parser behind the minimal/ERRANT/MONROE adapters, so adding a
// format of this family means writing a ColumnMap, not a parser.
//
// The streaming overload is the real parser: it pulls bounded line batches
// from a LineSource and emits points into a PointSink, holding only the
// header binding and the previous timestamp — O(1) state however large the
// input. The istream overload is the whole-file wrapper over it.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/sim_time.hpp"
#include "radio/technology.hpp"

namespace wheels::ingest {

class LineSource;
class PointSink;

/// One canonical sample: what every adapter reduces its native row to.
struct TracePoint {
  SimMillis t = 0;
  double cap_dl_mbps = 0.0;
  double cap_ul_mbps = 0.0;
  double rtt_ms = 0.0;
  radio::Technology tech = radio::Technology::Lte;
};

/// A parsed trace at its native (possibly irregular) timestamps, strictly
/// increasing in t. The resampling layer turns this into simulator ticks.
struct CanonicalTrace {
  std::vector<TracePoint> points;
};

/// Canonical numeric fields a source column can feed.
enum class Field { CapDl, CapUl, Rtt };

struct ColumnRule {
  std::string source;          // header name in the input
  Field field = Field::CapDl;  // canonical destination
  double scale = 1.0;          // unit conversion (e.g. kbps -> Mbps: 1e-3)
  /// Used when `source` is missing from the header; without a fill a
  /// missing column is an error.
  std::optional<double> fill;
};

/// Extra technology spellings a format uses ("4G", "NR-SA", ...), consulted
/// before the canonical measure::names::parse_technology lookup.
struct TechAlias {
  std::string name;
  radio::Technology tech;
};

struct ColumnMap {
  std::string time_column;
  /// Source time unit in milliseconds (1.0 = ms, 1000.0 = seconds). The
  /// source value may be fractional; the product is rounded to SimMillis.
  double time_scale_ms = 1.0;
  /// Subtract the first sample's time, so unix-epoch clocks land at t = 0.
  bool rebase_time = false;
  std::vector<ColumnRule> rules;
  /// Optional technology column; empty name, or a named column missing from
  /// the header, falls back to the caller's default technology.
  std::string tech_column;
  std::vector<TechAlias> tech_aliases;
  /// Ignore source columns no rule mentions (operator ids, RSRP, ...).
  bool allow_extra_columns = false;
};

/// Incrementally parse `lines` under `map`, emitting canonical points into
/// `sink` (finishing it exactly once). Shares the strict trace dialect of
/// replay/trace_text.hpp: '#' comments and blank lines are skipped without
/// renumbering, CRLF is accepted, numbers parse full-string, and time must
/// be strictly increasing after scaling (duplicates and backwards steps are
/// rejected). Capacities must be >= 0 and RTTs > 0 after scaling. Throws
/// std::runtime_error "line N: ..." on the first violation.
void parse_with_map(LineSource& lines, const ColumnMap& map,
                    radio::Technology default_tech, PointSink& sink);

/// Whole-stream wrapper over the streaming parser; identical semantics.
CanonicalTrace parse_with_map(std::istream& is, const ColumnMap& map,
                              radio::Technology default_tech);

}  // namespace wheels::ingest

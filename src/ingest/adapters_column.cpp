// The ColumnMap-based adapters: minimal, ERRANT-style, MONROE-style.
//
// Each adapter is a ColumnMap literal plus a sniffing heuristic; the whole
// parser lives in ingest/column_map.cpp. Adding another format of this
// family is a ~20-line function here.
#include <string>

#include "ingest/adapters.hpp"

namespace wheels::ingest {

namespace {

bool starts_with(const std::string& s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool header_has_column(const std::string& header, std::string_view name) {
  // Exact cell match, not substring: "rtt_ms" must not match "x_rtt_ms".
  std::string cell;
  for (std::size_t i = 0; i <= header.size(); ++i) {
    if (i == header.size() || header[i] == ',') {
      if (cell == name) return true;
      cell.clear();
    } else {
      cell.push_back(header[i]);
    }
  }
  return false;
}

class ColumnMapAdapter : public TraceAdapter {
 public:
  ColumnMapAdapter(std::string name, std::string description)
      : name_(std::move(name)), description_(std::move(description)) {}

  std::string_view name() const override { return name_; }
  std::string_view description() const override { return description_; }

  void parse_stream(LineSource& lines, const IngestOptions& options,
                    PointSink& sink) const override {
    parse_with_map(lines, map(options), options.default_tech, sink);
  }

 protected:
  virtual ColumnMap map(const IngestOptions& options) const = 0;

 private:
  std::string name_;
  std::string description_;
};

// --- minimal ---------------------------------------------------------------

class MinimalAdapter final : public ColumnMapAdapter {
 public:
  MinimalAdapter()
      : ColumnMapAdapter(
            "minimal",
            "t_ms,cap_dl_mbps,cap_ul_mbps,rtt_ms[,tech] per-tick CSV") {}

  int sniff(const SniffInput& input) const override {
    if (input.head.empty()) return 0;
    return starts_with(input.head.front(),
                       "t_ms,cap_dl_mbps,cap_ul_mbps,rtt_ms")
               ? 95
               : 0;
  }

 protected:
  ColumnMap map(const IngestOptions&) const override {
    ColumnMap m;
    m.time_column = "t_ms";
    m.rules = {{"cap_dl_mbps", Field::CapDl, 1.0, {}},
               {"cap_ul_mbps", Field::CapUl, 1.0, {}},
               {"rtt_ms", Field::Rtt, 1.0, {}}};
    m.tech_column = "tech";
    return m;
  }
};

// --- ERRANT-style ----------------------------------------------------------

class ErrantAdapter final : public ColumnMapAdapter {
 public:
  ErrantAdapter()
      : ColumnMapAdapter("errant",
                         "ERRANT-style per-model KPI log (kbps columns, "
                         "RAT names; RSRP/SINR ignored)") {}

  int sniff(const SniffInput& input) const override {
    if (input.head.empty()) return 0;
    const std::string& header = input.head.front();
    return header_has_column(header, "dl_kbps") &&
                   header_has_column(header, "net_mode")
               ? 90
               : 0;
  }

 protected:
  ColumnMap map(const IngestOptions&) const override {
    ColumnMap m;
    m.time_column = "ts_ms";
    m.rules = {{"dl_kbps", Field::CapDl, 1e-3, {}},
               {"ul_kbps", Field::CapUl, 1e-3, {}},
               {"ping_ms", Field::Rtt, 1.0, {}}};
    m.tech_column = "net_mode";
    m.tech_aliases = {{"4G", radio::Technology::Lte},
                      {"4G+", radio::Technology::LteA},
                      {"5G", radio::Technology::NrMid}};
    m.allow_extra_columns = true;  // op, rsrp_dbm, sinr_db, ...
    return m;
  }
};

// --- MONROE-style ----------------------------------------------------------

class MonroeAdapter final : public ColumnMapAdapter {
 public:
  MonroeAdapter()
      : ColumnMapAdapter("monroe",
                         "MONROE-style metadata+throughput log (unix-second "
                         "clock, bps columns)") {}

  int sniff(const SniffInput& input) const override {
    if (input.head.empty()) return 0;
    const std::string& header = input.head.front();
    return header_has_column(header, "downlink_bps") &&
                   header_has_column(header, "nodeid")
               ? 90
               : 0;
  }

 protected:
  ColumnMap map(const IngestOptions&) const override {
    ColumnMap m;
    m.time_column = "timestamp";  // unix seconds, possibly fractional
    m.time_scale_ms = 1000.0;
    m.rebase_time = true;
    m.rules = {{"downlink_bps", Field::CapDl, 1e-6, {}},
               {"uplink_bps", Field::CapUl, 1e-6, {}},
               {"rtt_ms", Field::Rtt, 1.0, {}}};
    m.tech_column = "mode";
    m.tech_aliases = {{"NR-NSA", radio::Technology::NrLow},
                      {"NR-SA", radio::Technology::NrMid},
                      {"5G", radio::Technology::NrMid}};
    m.allow_extra_columns = true;  // nodeid, operator, iccid, ...
    return m;
  }
};

}  // namespace

std::unique_ptr<TraceAdapter> make_minimal_adapter() {
  return std::make_unique<MinimalAdapter>();
}

std::unique_ptr<TraceAdapter> make_errant_adapter() {
  return std::make_unique<ErrantAdapter>();
}

std::unique_ptr<TraceAdapter> make_monroe_adapter() {
  return std::make_unique<MonroeAdapter>();
}

}  // namespace wheels::ingest

// Multi-carrier joins: several single-carrier traces -> one campaign bundle.
//
// The paper's campaign runs three carrier phones over one timeline; public
// traces are recorded one carrier at a time, each on its own clock. The join
// aligns the clocks (each trace re-based so its first sample is t = 0),
// optionally trims to the window every carrier covers, resamples each trace
// onto the shared tick grid, and emits one validated ReplayBundle whose
// per-carrier test sets live on one timeline — ready for ReplayCampaign and
// ReplayFleet, which fan out per carrier.
//
// join_streams() is the core: each input is a *producer* that pushes its
// point stream through the align/trim/resample sink chain, so a source
// backed by a chunked file reader joins without its raw trace ever being
// materialized. Sources may be sharded across a core::ThreadPool (one
// worker per input file); the bundle is always assembled serially in
// canonical carrier order, so the output — manifest digest included — is
// byte-identical at any thread count. join_traces() is the in-memory
// wrapper over the same core.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ingest/resample.hpp"
#include "ingest/stream.hpp"
#include "radio/technology.hpp"
#include "replay/ingest.hpp"

namespace wheels::ingest {

struct JoinInput {
  radio::Carrier carrier = radio::Carrier::Verizon;
  /// Diagnostics label (usually the source path).
  std::string name;
  CanonicalTrace trace;
};

/// One input of a streaming join: `produce` pushes the source's whole point
/// stream into the sink it is given (finishing it exactly once) and must be
/// repeatable — overlap trimming runs a bounds pre-pass over every source
/// before the real one. With shards > 1 producers run concurrently, so a
/// producer must not touch shared mutable state.
struct StreamSource {
  radio::Carrier carrier = radio::Carrier::Verizon;
  std::string name;
  std::function<void(PointSink&)> produce;
};

struct JoinOptions {
  /// Re-base every trace so its first sample lands at t = 0 — the
  /// clock-offset alignment that makes traces recorded on different days
  /// share a timeline. Off: native timestamps are kept.
  bool align_clocks = true;
  /// Keep only the window every carrier covers (after alignment); a join
  /// with no common window is an error. Off: each carrier keeps its full
  /// span.
  bool trim_to_overlap = false;
};

/// Join one point stream per carrier (>= 1 sources, one per distinct
/// carrier) into a single synthetic bundle: per carrier and per resampled
/// segment, one downlink-bulk, one uplink-bulk and one RTT test over the
/// segment's ticks. Sources are assembled in canonical carrier order
/// regardless of argument order (and of `threads`, the ingest shard count —
/// 0 resolves via WHEELS_THREADS), the manifest digest hashes the joined
/// tick content, and the database passes measure::validate_or_throw before
/// returning.
replay::ReplayBundle join_streams(std::vector<StreamSource> sources,
                                  const JoinOptions& join,
                                  const ResampleSpec& resample,
                                  int threads = 1);

/// In-memory convenience over join_streams: identical output and errors.
replay::ReplayBundle join_traces(std::vector<JoinInput> inputs,
                                 const JoinOptions& join,
                                 const ResampleSpec& resample);

/// Single-trace convenience: a join of one.
replay::ReplayBundle build_bundle(CanonicalTrace trace, radio::Carrier carrier,
                                  const ResampleSpec& resample);

}  // namespace wheels::ingest

// Multi-carrier joins: several single-carrier traces -> one campaign bundle.
//
// The paper's campaign runs three carrier phones over one timeline; public
// traces are recorded one carrier at a time, each on its own clock. The join
// aligns the clocks (each trace re-based so its first sample is t = 0),
// optionally trims to the window every carrier covers, resamples each trace
// onto the shared tick grid, and emits one validated ReplayBundle whose
// per-carrier test sets live on one timeline — ready for ReplayCampaign and
// ReplayFleet, which fan out per carrier.
#pragma once

#include <string>
#include <vector>

#include "ingest/resample.hpp"
#include "radio/technology.hpp"
#include "replay/ingest.hpp"

namespace wheels::ingest {

struct JoinInput {
  radio::Carrier carrier = radio::Carrier::Verizon;
  /// Diagnostics label (usually the source path).
  std::string name;
  CanonicalTrace trace;
};

struct JoinOptions {
  /// Re-base every trace so its first sample lands at t = 0 — the
  /// clock-offset alignment that makes traces recorded on different days
  /// share a timeline. Off: native timestamps are kept.
  bool align_clocks = true;
  /// Keep only the window every carrier covers (after alignment); a join
  /// with no common window is an error. Off: each carrier keeps its full
  /// span.
  bool trim_to_overlap = false;
};

/// Join one trace per carrier (>= 1 inputs, one per distinct carrier) into
/// a single synthetic bundle: per carrier and per resampled segment, one
/// downlink-bulk, one uplink-bulk and one RTT test over the segment's
/// ticks. Inputs are assembled in canonical carrier order regardless of
/// argument order, the manifest digest hashes the joined tick content, and
/// the database passes measure::validate_or_throw before returning.
replay::ReplayBundle join_traces(std::vector<JoinInput> inputs,
                                 const JoinOptions& join,
                                 const ResampleSpec& resample);

/// Single-trace convenience: a join of one.
replay::ReplayBundle build_bundle(CanonicalTrace trace, radio::Carrier carrier,
                                  const ResampleSpec& resample);

}  // namespace wheels::ingest

// Top-level ingest API: file in, validated ReplayBundle out.
//
// The free functions here tie the subsystem together for callers (the
// ingest_trace CLI, replay_dataset --import, tests): resolve an adapter from
// the registry (sniffing the file only when the format is "auto" — an
// explicit format never requires a readable, sniffable head), stream the
// file through the adapter's incremental parser with the format's
// side-channel companions applied in-line (Mahimahi uplink merge, paper
// rtts.csv overlay), and hand the point stream to the join layer for
// resampling and bundle assembly. stream_trace() is the bounded-memory
// core; load_trace() is its whole-file wrapper. Every error is prefixed
// with the offending path.
#pragma once

#include <string>
#include <vector>

#include "ingest/adapter.hpp"
#include "ingest/join.hpp"

namespace wheels::ingest {

/// Stream one file's canonical points into `sink` (finished exactly once on
/// success) through a ChunkedReader sized by options.chunk. `format` is an
/// adapter name or "auto" (sniff — only then is the file head read twice).
/// Applies the Mahimahi uplink merge when options.mahimahi_uplink_path is
/// set and the resolved adapter is "mahimahi", and the paper rtts.csv
/// overlay when options.paper_rtts_path is set (or a sibling rtts.csv
/// exists) and the resolved adapter is "paper". Errors carry the path.
void stream_trace(const AdapterRegistry& registry, const std::string& format,
                  const std::string& path, const IngestOptions& options,
                  PointSink& sink);

/// Whole-file wrapper over stream_trace: materializes the stream as a
/// CanonicalTrace. Identical resolution, companions and errors.
CanonicalTrace load_trace(const AdapterRegistry& registry,
                          const std::string& format, const std::string& path,
                          const IngestOptions& options);

/// stream_trace + the join layer against the builtin registry: the one-call
/// single-carrier import, with peak memory bounded by options.chunk rather
/// than the input size.
replay::ReplayBundle ingest_file(const std::string& format,
                                 const std::string& path,
                                 const IngestOptions& options);

struct JoinEntry {
  radio::Carrier carrier = radio::Carrier::Verizon;
  std::string path;
};

/// Parse "Carrier=path[,Carrier=path...]" (canonical carrier names) into
/// join entries. Throws on malformed specs or unknown carriers.
std::vector<JoinEntry> parse_join_spec(const std::string& spec);

/// Stream every entry (each sniffed independently when `format` is "auto")
/// and join them onto one campaign timeline. Inputs are sharded
/// options.threads wide (one worker per input file, 0 = WHEELS_THREADS /
/// auto); the bundle is byte-identical at every shard count.
replay::ReplayBundle ingest_join(const std::string& format,
                                 const std::vector<JoinEntry>& entries,
                                 const IngestOptions& options,
                                 const JoinOptions& join);

}  // namespace wheels::ingest

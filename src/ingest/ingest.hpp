// Top-level ingest API: file in, validated ReplayBundle out.
//
// The free functions here tie the subsystem together for callers (the
// ingest_trace CLI, replay_dataset --import, tests): resolve an adapter from
// the registry (sniffing the file when the format is "auto"), parse the file
// into a CanonicalTrace, apply the format's side-channel companions
// (Mahimahi uplink merge, paper rtts.csv overlay), and hand the result to
// the join layer for resampling and bundle assembly. Every error is
// prefixed with the offending path.
#pragma once

#include <string>
#include <vector>

#include "ingest/adapter.hpp"
#include "ingest/join.hpp"

namespace wheels::ingest {

/// Parse one file into a canonical trace. `format` is an adapter name or
/// "auto" (sniff). Applies the Mahimahi uplink merge when
/// options.mahimahi_uplink_path is set and the resolved adapter is
/// "mahimahi", and the paper rtts.csv overlay when options.paper_rtts_path
/// is set and the resolved adapter is "paper". Errors carry the path.
CanonicalTrace load_trace(const AdapterRegistry& registry,
                          const std::string& format, const std::string& path,
                          const IngestOptions& options);

/// load_trace + build_bundle against the builtin registry: the one-call
/// single-carrier import.
replay::ReplayBundle ingest_file(const std::string& format,
                                 const std::string& path,
                                 const IngestOptions& options);

struct JoinEntry {
  radio::Carrier carrier = radio::Carrier::Verizon;
  std::string path;
};

/// Parse "Carrier=path[,Carrier=path...]" (canonical carrier names) into
/// join entries. Throws on malformed specs or unknown carriers.
std::vector<JoinEntry> parse_join_spec(const std::string& spec);

/// Load every entry (each sniffed independently when `format` is "auto")
/// and join them onto one campaign timeline.
replay::ReplayBundle ingest_join(const std::string& format,
                                 const std::vector<JoinEntry>& entries,
                                 const IngestOptions& options,
                                 const JoinOptions& join);

}  // namespace wheels::ingest

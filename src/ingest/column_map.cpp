#include "ingest/column_map.hpp"

#include <cmath>
#include <istream>
#include <stdexcept>

#include "ingest/chunked_reader.hpp"
#include "ingest/stream.hpp"
#include "measure/enum_names.hpp"
#include "replay/trace_text.hpp"

namespace wheels::ingest {

namespace {

using replay::parse_trace_double;
using replay::split_trace_row;
using replay::trace_fail;

constexpr std::size_t kMissing = static_cast<std::size_t>(-1);

std::size_t find_column(const std::vector<std::string>& header,
                        const std::string& name, std::size_t line) {
  std::size_t found = kMissing;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] != name) continue;
    if (found != kMissing) {
      trace_fail(line, "duplicated column '" + name + "'");
    }
    found = i;
  }
  return found;
}

radio::Technology parse_tech(const ColumnMap& map, std::string_view cell,
                             std::size_t line) {
  for (const TechAlias& alias : map.tech_aliases) {
    if (std::string_view{alias.name} == cell) return alias.tech;
  }
  try {
    return measure::names::parse_technology(cell);
  } catch (const std::runtime_error& e) {
    trace_fail(line, e.what());
  }
}

}  // namespace

void parse_with_map(LineSource& lines, const ColumnMap& map,
                    radio::Technology default_tech, PointSink& sink) {
  if (map.time_column.empty() || map.time_scale_ms <= 0.0) {
    throw std::runtime_error{"column map: missing time column or scale"};
  }

  std::vector<LineRef> batch;
  if (!lines.next_batch(batch)) {
    trace_fail(lines.line_number(), "empty trace");
  }
  std::size_t row = 0;  // cursor into the current batch

  // Bind the header row. The header is tiny and owned — batch views die at
  // the next pull, so the column names are copied out.
  std::vector<std::string_view> cells;
  split_trace_row(batch[row].text, cells);
  std::vector<std::string> header;
  header.reserve(cells.size());
  for (std::string_view cell : cells) header.emplace_back(cell);
  const std::size_t header_line = batch[row].number;
  ++row;

  const std::size_t time_idx = find_column(header, map.time_column,
                                           header_line);
  if (time_idx == kMissing) {
    trace_fail(header_line, "missing time column '" + map.time_column + "'");
  }
  struct Bound {
    const ColumnRule* rule;
    std::size_t index;  // kMissing -> use rule->fill
  };
  std::vector<Bound> bound;
  bound.reserve(map.rules.size());
  std::vector<bool> mapped(header.size(), false);
  mapped[time_idx] = true;
  for (const ColumnRule& rule : map.rules) {
    const std::size_t idx = find_column(header, rule.source, header_line);
    if (idx == kMissing && !rule.fill.has_value()) {
      trace_fail(header_line, "missing column '" + rule.source + "'");
    }
    if (idx != kMissing) mapped[idx] = true;
    bound.push_back({&rule, idx});
  }
  std::size_t tech_idx = kMissing;
  if (!map.tech_column.empty()) {
    tech_idx = find_column(header, map.tech_column, header_line);
    if (tech_idx != kMissing) mapped[tech_idx] = true;
  }
  if (!map.allow_extra_columns) {
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (!mapped[i]) {
        trace_fail(header_line, "unmapped column '" + header[i] + "'");
      }
    }
  }

  RunEmitter out{sink};
  std::optional<double> time_base;
  SimMillis prev_t = 0;
  bool have_prev = false;
  while (true) {
    if (row == batch.size()) {
      if (!lines.next_batch(batch)) break;
      row = 0;
    }
    const std::size_t line_no = batch[row].number;
    split_trace_row(batch[row].text, cells);
    ++row;
    if (cells.size() != header.size()) {
      trace_fail(line_no, "expected " + std::to_string(header.size()) +
                              " columns, got " +
                              std::to_string(cells.size()));
    }

    double raw_t = parse_trace_double(cells[time_idx], line_no);
    if (raw_t < 0.0) trace_fail(line_no, "negative time");
    if (map.rebase_time) {
      if (!time_base.has_value()) time_base = raw_t;
      raw_t -= *time_base;
    }
    TracePoint p;
    p.t = static_cast<SimMillis>(std::llround(raw_t * map.time_scale_ms));
    p.rtt_ms = 0.0;

    for (const Bound& b : bound) {
      const double v =
          b.index == kMissing
              ? *b.rule->fill
              : parse_trace_double(cells[b.index], line_no) * b.rule->scale;
      switch (b.rule->field) {
        case Field::CapDl:
          p.cap_dl_mbps = v;
          break;
        case Field::CapUl:
          p.cap_ul_mbps = v;
          break;
        case Field::Rtt:
          p.rtt_ms = v;
          break;
      }
    }
    if (p.cap_dl_mbps < 0.0 || p.cap_ul_mbps < 0.0) {
      trace_fail(line_no, "negative capacity");
    }
    if (p.rtt_ms <= 0.0) trace_fail(line_no, "rtt must be > 0");

    p.tech = tech_idx == kMissing ? default_tech
                                  : parse_tech(map, cells[tech_idx], line_no);

    if (have_prev && p.t < prev_t) {
      trace_fail(line_no, "time going backwards");
    }
    if (have_prev && p.t == prev_t) {
      trace_fail(line_no, "duplicate time " + std::to_string(p.t));
    }
    prev_t = p.t;
    have_prev = true;
    out.push(p);
  }
  if (!have_prev) {
    trace_fail(lines.line_number(), "trace has no data rows");
  }
  out.finish();
}

CanonicalTrace parse_with_map(std::istream& is, const ColumnMap& map,
                              radio::Technology default_tech) {
  IstreamLineSource lines{is};
  CollectSink sink;
  parse_with_map(lines, map, default_tech, sink);
  return sink.take();
}

}  // namespace wheels::ingest

#include "ingest/ingest.hpp"

#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <utility>

#include "ingest/adapters.hpp"
#include "measure/enum_names.hpp"

namespace wheels::ingest {

namespace {

/// Resolve `format` against the registry, sniffing the file's head only for
/// "auto" — an explicit format must work on files the sniffer cannot score
/// (satellite-dish CSVs with reordered headers, unreadable-by-sniff pipes).
const TraceAdapter& resolve_adapter(const AdapterRegistry& registry,
                                    const std::string& format,
                                    const std::string& path) {
  try {
    if (format == "auto") {
      return registry.resolve(format, sniff_file(path));
    }
    return registry.resolve(format, SniffInput{});
  } catch (const std::runtime_error& e) {
    throw std::runtime_error{path + ": " + e.what()};
  }
}

/// Chunked parse of `path` through `adapter` into `sink`, with the adapter
/// errors prefixed "path: adapter: ...". The open error is not prefixed —
/// it already names the path.
void parse_path(const TraceAdapter& adapter, const std::string& path,
                const IngestOptions& options, PointSink& sink) {
  ChunkedReader reader{path, options.chunk};
  try {
    adapter.parse_stream(reader, options, sink);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error{path + ": " + std::string{adapter.name()} + ": " +
                             e.what()};
  }
}

/// The paper adapter's rtts.csv resolution: the explicit option, or the
/// sibling pickup — a kpis.csv input next to an rtts.csv gets the overlay
/// without being asked.
std::string resolve_paper_rtts(const std::string& path,
                               const IngestOptions& options) {
  if (!options.paper_rtts_path.empty()) return options.paper_rtts_path;
  const std::filesystem::path p{path};
  if (p.filename() == "kpis.csv") {
    const std::filesystem::path sibling = p.parent_path() / "rtts.csv";
    std::error_code ec;
    if (std::filesystem::exists(sibling, ec)) {
      return sibling.string();
    }
  }
  return {};
}

}  // namespace

void stream_trace(const AdapterRegistry& registry, const std::string& format,
                  const std::string& path, const IngestOptions& options,
                  PointSink& sink) {
  const TraceAdapter& adapter = resolve_adapter(registry, format, path);

  // Companion side-channels wrap the caller's sink so the main trace flows
  // through them without being materialized.
  PointSink* target = &sink;
  std::unique_ptr<PointSink> companion;
  if (adapter.name() == "mahimahi" && !options.mahimahi_uplink_path.empty()) {
    // The paired uplink is windowed into memory first — O(duration / tick),
    // not O(file bytes) — then merged positionally into the downlink stream.
    CollectSink up;
    parse_path(adapter, options.mahimahi_uplink_path, options, up);
    companion = make_mahimahi_uplink_merge(up.take(), sink);
    target = companion.get();
  } else if (adapter.name() == "paper") {
    const std::string rtts_path = resolve_paper_rtts(path, options);
    if (!rtts_path.empty()) {
      std::ifstream rtts{rtts_path};
      if (!rtts) {
        throw std::runtime_error{"ingest: cannot open " + rtts_path};
      }
      try {
        companion = make_paper_rtt_overlay(rtts, options.carrier, sink);
      } catch (const std::runtime_error& e) {
        throw std::runtime_error{rtts_path + ": " + e.what()};
      }
      target = companion.get();
    }
  }

  parse_path(adapter, path, options, *target);
}

CanonicalTrace load_trace(const AdapterRegistry& registry,
                          const std::string& format, const std::string& path,
                          const IngestOptions& options) {
  CollectSink sink;
  stream_trace(registry, format, path, options, sink);
  return sink.take();
}

replay::ReplayBundle ingest_file(const std::string& format,
                                 const std::string& path,
                                 const IngestOptions& options) {
  std::vector<StreamSource> sources(1);
  sources[0].carrier = options.carrier;
  sources[0].name = "trace";
  sources[0].produce = [&format, &path, &options](PointSink& sink) {
    stream_trace(builtin_registry(), format, path, options, sink);
  };
  return join_streams(std::move(sources), JoinOptions{}, options.resample, 1);
}

std::vector<JoinEntry> parse_join_spec(const std::string& spec) {
  std::vector<JoinEntry> entries;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    const std::size_t eq = item.find('=');
    if (item.empty() || eq == std::string::npos || eq == 0 ||
        eq + 1 == item.size()) {
      throw std::runtime_error{
          "join spec: expected CARRIER=PATH[,CARRIER=PATH...], got '" + spec +
          "'"};
    }
    JoinEntry entry;
    entry.carrier = measure::names::parse_carrier(item.substr(0, eq));
    entry.path = item.substr(eq + 1);
    entries.push_back(std::move(entry));
    pos = comma + 1;
    if (comma == spec.size()) break;
  }
  if (entries.empty()) {
    throw std::runtime_error{"join spec: empty"};
  }
  return entries;
}

replay::ReplayBundle ingest_join(const std::string& format,
                                 const std::vector<JoinEntry>& entries,
                                 const IngestOptions& options,
                                 const JoinOptions& join) {
  std::vector<StreamSource> sources;
  sources.reserve(entries.size());
  for (const JoinEntry& entry : entries) {
    IngestOptions per_carrier = options;
    per_carrier.carrier = entry.carrier;
    StreamSource source;
    source.carrier = entry.carrier;
    source.name = entry.path;
    source.produce = [&format, path = entry.path,
                      per_carrier](PointSink& sink) {
      stream_trace(builtin_registry(), format, path, per_carrier, sink);
    };
    sources.push_back(std::move(source));
  }
  return join_streams(std::move(sources), join, options.resample,
                      options.threads);
}

}  // namespace wheels::ingest

#include "ingest/ingest.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "ingest/adapters.hpp"
#include "measure/enum_names.hpp"

namespace wheels::ingest {

namespace {

CanonicalTrace parse_file(const TraceAdapter& adapter, const std::string& path,
                          const IngestOptions& options) {
  std::ifstream is{path};
  if (!is) {
    throw std::runtime_error{"ingest: cannot open " + path};
  }
  try {
    return adapter.parse(is, options);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error{path + ": " + std::string{adapter.name()} + ": " +
                             e.what()};
  }
}

}  // namespace

CanonicalTrace load_trace(const AdapterRegistry& registry,
                          const std::string& format, const std::string& path,
                          const IngestOptions& options) {
  const TraceAdapter* adapter = nullptr;
  try {
    adapter = &registry.resolve(format, sniff_file(path));
  } catch (const std::runtime_error& e) {
    throw std::runtime_error{path + ": " + e.what()};
  }
  CanonicalTrace trace = parse_file(*adapter, path, options);

  if (adapter->name() == "mahimahi" && !options.mahimahi_uplink_path.empty()) {
    const CanonicalTrace up =
        parse_file(*adapter, options.mahimahi_uplink_path, options);
    merge_mahimahi_uplink(trace, up);
  }
  if (adapter->name() == "paper") {
    std::string rtts_path = options.paper_rtts_path;
    if (rtts_path.empty()) {
      // Sibling pickup: a kpis.csv input next to an rtts.csv gets the
      // overlay without being asked.
      const std::filesystem::path p{path};
      if (p.filename() == "kpis.csv") {
        const std::filesystem::path sibling = p.parent_path() / "rtts.csv";
        std::error_code ec;
        if (std::filesystem::exists(sibling, ec)) {
          rtts_path = sibling.string();
        }
      }
    }
    if (!rtts_path.empty()) {
      std::ifstream rtts{rtts_path};
      if (!rtts) {
        throw std::runtime_error{"ingest: cannot open " + rtts_path};
      }
      try {
        attach_paper_rtts(trace, rtts, options.carrier);
      } catch (const std::runtime_error& e) {
        throw std::runtime_error{rtts_path + ": " + e.what()};
      }
    }
  }
  return trace;
}

replay::ReplayBundle ingest_file(const std::string& format,
                                 const std::string& path,
                                 const IngestOptions& options) {
  return build_bundle(load_trace(builtin_registry(), format, path, options),
                      options.carrier, options.resample);
}

std::vector<JoinEntry> parse_join_spec(const std::string& spec) {
  std::vector<JoinEntry> entries;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    const std::size_t eq = item.find('=');
    if (item.empty() || eq == std::string::npos || eq == 0 ||
        eq + 1 == item.size()) {
      throw std::runtime_error{
          "join spec: expected CARRIER=PATH[,CARRIER=PATH...], got '" + spec +
          "'"};
    }
    JoinEntry entry;
    entry.carrier = measure::names::parse_carrier(item.substr(0, eq));
    entry.path = item.substr(eq + 1);
    entries.push_back(std::move(entry));
    pos = comma + 1;
    if (comma == spec.size()) break;
  }
  if (entries.empty()) {
    throw std::runtime_error{"join spec: empty"};
  }
  return entries;
}

replay::ReplayBundle ingest_join(const std::string& format,
                                 const std::vector<JoinEntry>& entries,
                                 const IngestOptions& options,
                                 const JoinOptions& join) {
  std::vector<JoinInput> inputs;
  inputs.reserve(entries.size());
  for (const JoinEntry& entry : entries) {
    IngestOptions per_carrier = options;
    per_carrier.carrier = entry.carrier;
    JoinInput input;
    input.carrier = entry.carrier;
    input.name = entry.path;
    input.trace =
        load_trace(builtin_registry(), format, entry.path, per_carrier);
    inputs.push_back(std::move(input));
  }
  return join_traces(std::move(inputs), join, options.resample);
}

}  // namespace wheels::ingest

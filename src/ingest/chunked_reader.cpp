#include "ingest/chunked_reader.hpp"

#include <cstring>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define WHEELS_INGEST_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "core/obs/metrics.hpp"

namespace wheels::ingest {

namespace {

void count_window(std::size_t bytes) {
  static const core::obs::Counter chunks{"ingest.chunks"};
  static const core::obs::Counter read{"ingest.bytes_read"};
  chunks.add();
  read.add(bytes);
}

}  // namespace

ChunkedReader::ChunkedReader(const std::string& path, const ChunkSpec& spec)
    : spec_(spec), path_(path) {
  if (spec_.chunk_bytes == 0) spec_.chunk_bytes = 1;
  if (spec_.batch_lines == 0) spec_.batch_lines = 1;
#ifdef WHEELS_INGEST_HAVE_MMAP
  if (spec_.use_mmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st {};
      if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
        fd_ = fd;
        file_size_ = static_cast<std::uint64_t>(st.st_size);
        return;
      }
      ::close(fd);  // pipe, device, directory: buffered fallback below
    }
  }
#endif
  is_.open(path, std::ios::binary);
  if (!is_) {
    throw std::runtime_error{"ingest: cannot open " + path};
  }
}

ChunkedReader::~ChunkedReader() {
  unmap();
#ifdef WHEELS_INGEST_HAVE_MMAP
  if (fd_ >= 0) ::close(fd_);
#endif
}

void ChunkedReader::unmap() {
#ifdef WHEELS_INGEST_HAVE_MMAP
  if (map_ != nullptr) {
    ::munmap(map_, map_len_);
    map_ = nullptr;
    map_len_ = 0;
  }
#endif
}

bool ChunkedReader::load_window() {
  data_ = nullptr;
  size_ = 0;
  cur_ = 0;
#ifdef WHEELS_INGEST_HAVE_MMAP
  if (fd_ >= 0) {
    if (offset_ >= file_size_) return false;
    unmap();
    static const std::size_t page =
        static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    const std::uint64_t aligned = offset_ & ~static_cast<std::uint64_t>(page - 1);
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(spec_.chunk_bytes, file_size_ - offset_));
    map_len_ = static_cast<std::size_t>(offset_ - aligned) + want;
    void* map = ::mmap(nullptr, map_len_, PROT_READ, MAP_PRIVATE, fd_,
                       static_cast<off_t>(aligned));
    if (map == MAP_FAILED) {
      map_len_ = 0;
      throw std::runtime_error{"ingest: mmap failed on " + path_};
    }
    map_ = map;
#ifdef MADV_SEQUENTIAL
    ::madvise(map_, map_len_, MADV_SEQUENTIAL);
#endif
    data_ = static_cast<const char*>(map_) + (offset_ - aligned);
    size_ = want;
    offset_ += want;
    count_window(want);
    return true;
  }
#endif
  buf_.resize(spec_.chunk_bytes);
  is_.read(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  const std::size_t got = static_cast<std::size_t>(is_.gcount());
  if (got == 0) return false;
  data_ = buf_.data();
  size_ = got;
  count_window(got);
  return true;
}

bool ChunkedReader::next_batch(std::vector<LineRef>& batch) {
  batch.clear();
  carry_.clear();
  if (finished_) return false;
  while (true) {
    if (cur_ == size_) {
      // Window exhausted. A non-empty batch must be returned before the
      // window is replaced — its views point into this window.
      if (!batch.empty()) return true;
      if (!load_window()) {
        if (pending_active_) {
          // Final physical line without a trailing newline.
          pending_active_ = false;
          ++line_;
          if (!pending_.empty() && pending_.back() == '\r') pending_.pop_back();
          if (!pending_.empty() && pending_.front() != '#') {
            carry_.push_back(std::move(pending_));
            pending_.clear();
            batch.push_back({carry_.back(), line_});
            return true;
          }
          pending_.clear();
        }
        finished_ = true;
        ++line_;  // diagnostics at end of input point past the last line
        return false;
      }
      continue;
    }
    const char* nl = static_cast<const char*>(
        std::memchr(data_ + cur_, '\n', size_ - cur_));
    if (nl == nullptr) {
      pending_.append(data_ + cur_, size_ - cur_);
      pending_active_ = true;
      cur_ = size_;
      continue;
    }
    std::string_view text{data_ + cur_,
                          static_cast<std::size_t>(nl - (data_ + cur_))};
    cur_ = static_cast<std::size_t>(nl - data_) + 1;
    ++line_;
    if (pending_active_) {
      pending_.append(text);
      pending_active_ = false;
      if (!pending_.empty() && pending_.back() == '\r') pending_.pop_back();
      if (pending_.empty() || pending_.front() == '#') {
        pending_.clear();
        continue;
      }
      carry_.push_back(std::move(pending_));
      pending_.clear();
      text = carry_.back();
    } else {
      if (!text.empty() && text.back() == '\r') text.remove_suffix(1);
      if (text.empty() || text.front() == '#') continue;
    }
    batch.push_back({text, line_});
    if (batch.size() >= spec_.batch_lines) return true;
  }
}

IstreamLineSource::IstreamLineSource(std::istream& is, std::size_t batch_lines)
    : reader_(is), batch_lines_(batch_lines == 0 ? 1 : batch_lines) {}

bool IstreamLineSource::next_batch(std::vector<LineRef>& batch) {
  batch.clear();
  if (done_) return false;
  lines_.clear();
  std::string line;
  while (lines_.size() < batch_lines_) {
    if (!reader_.next(line)) {
      done_ = true;  // the reader's line number now points past the end
      break;
    }
    lines_.emplace_back(line, reader_.line_number());
  }
  if (lines_.empty()) return false;
  batch.reserve(lines_.size());
  for (const auto& [text, number] : lines_) {
    batch.push_back({text, number});
  }
  return true;
}

}  // namespace wheels::ingest

// Bounded-memory line input for the streaming ingest path.
//
// Multi-GB drive recordings cannot be slurped through std::getline into one
// CanonicalTrace; the chunked pull model reads a fixed-size window of the
// input at a time and hands adapters *bounded line batches* — views into the
// current window plus the physical 1-based line number of every line, with
// the shared trace dialect (comment/blank skipping, CRLF) already applied.
// Peak memory is O(chunk_bytes + batch carry), independent of file size.
//
// Two backends sit behind one interface:
//  - ChunkedReader maps chunk-sized windows of a regular file (mmap,
//    MADV_SEQUENTIAL, unmapped as the cursor advances — address space stays
//    O(chunk_bytes), which is what lets a 100 MB trace ingest under a tight
//    ulimit -v) and falls back to buffered ifstream reads for pipes,
//    non-regular files, or when ChunkSpec.use_mmap is off;
//  - IstreamLineSource adapts any std::istream, so the whole-file
//    convenience entry points (TraceAdapter::parse, tests on stringstreams)
//    run through the exact same incremental parsers.
#pragma once

#include <cstddef>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "replay/trace_text.hpp"

namespace wheels::ingest {

/// Geometry of the chunked pull path.
struct ChunkSpec {
  /// Bytes per input window. Values below one are clamped to one; tiny
  /// windows are legal (the equivalence tests sweep them) but slow.
  std::size_t chunk_bytes = 1 << 20;
  /// Upper bound on lines per pulled batch (clamped to >= 1). A batch also
  /// ends at a window boundary, so views never outlive their window.
  std::size_t batch_lines = 4096;
  /// Map windows of regular files instead of copying them through a read
  /// buffer. Ignored (with the buffered fallback) for non-regular inputs.
  bool use_mmap = true;
};

/// One payload line: CR-stripped text plus its physical 1-based line number.
/// The view is valid only until the next next_batch() call.
struct LineRef {
  std::string_view text;
  std::size_t number = 0;
};

/// Pull interface the incremental adapters consume.
class LineSource {
 public:
  virtual ~LineSource() = default;

  /// Refill `batch` with the next payload lines (at least one, at most
  /// ChunkSpec.batch_lines); false once the input is exhausted (the batch is
  /// left empty). Views die at the next call.
  virtual bool next_batch(std::vector<LineRef>& batch) = 0;

  /// Physical 1-based line number of the last line handed out, or one past
  /// the final physical line once next_batch returned false — the same
  /// end-of-input convention as replay::TraceLineReader.
  virtual std::size_t line_number() const = 0;
};

/// File-backed LineSource: mmap windows with a buffered-read fallback.
/// Throws std::runtime_error{"ingest: cannot open <path>"} on open failure.
class ChunkedReader final : public LineSource {
 public:
  ChunkedReader(const std::string& path, const ChunkSpec& spec);
  ~ChunkedReader() override;

  ChunkedReader(const ChunkedReader&) = delete;
  ChunkedReader& operator=(const ChunkedReader&) = delete;

  bool next_batch(std::vector<LineRef>& batch) override;
  std::size_t line_number() const override { return line_; }

  /// True when the mmap backend drives this reader (tests assert the fast
  /// path actually engaged on regular files).
  bool mmap_active() const { return fd_ >= 0; }

 private:
  bool load_window();
  void unmap();

  ChunkSpec spec_;
  std::string path_;

  // Current window, whichever backend filled it.
  const char* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cur_ = 0;

  // mmap backend.
  int fd_ = -1;
  void* map_ = nullptr;
  std::size_t map_len_ = 0;
  std::uint64_t file_size_ = 0;
  std::uint64_t offset_ = 0;

  // Buffered fallback backend.
  std::ifstream is_;
  std::vector<char> buf_;

  /// Partial line spanning a window boundary, accumulated across windows.
  std::string pending_;
  bool pending_active_ = false;
  /// Completed boundary-spanning lines of the current batch (stable storage
  /// for their views; at most one per window crossed).
  std::vector<std::string> carry_;

  std::size_t line_ = 0;
  bool finished_ = false;
};

/// Adapts any std::istream to the pull interface (owned string storage per
/// batch). The legacy whole-file parse path and stringstream-based tests run
/// through this, so every adapter has exactly one parser.
class IstreamLineSource final : public LineSource {
 public:
  explicit IstreamLineSource(std::istream& is, std::size_t batch_lines = 4096);

  bool next_batch(std::vector<LineRef>& batch) override;
  std::size_t line_number() const override { return reader_.line_number(); }

 private:
  replay::TraceLineReader reader_;
  std::size_t batch_lines_;
  std::vector<std::pair<std::string, std::size_t>> lines_;
  bool done_ = false;
};

}  // namespace wheels::ingest

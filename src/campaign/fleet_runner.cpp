#include "campaign/fleet_runner.hpp"

#include "core/obs/metrics.hpp"
#include "core/obs/trace_export.hpp"
#include "core/thread_pool.hpp"

namespace wheels::campaign {

void run_indexed(int threads, std::size_t jobs,
                 const std::function<void(std::size_t)>& job) {
  std::vector<core::ThreadPool::Task> tasks;
  tasks.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    tasks.push_back([&job, i] { job(i); });
  }
  // The calling thread drains the batch too, so `threads` jobs run
  // concurrently with a pool of threads - 1 workers.
  core::ThreadPool pool{core::resolve_threads(threads) - 1};
  pool.run_batch(std::move(tasks));
}

FleetRunner::FleetRunner(int threads)
    : threads_(core::resolve_threads(threads)) {}

std::vector<measure::ConsolidatedDb> FleetRunner::run_all(
    std::vector<CampaignConfig> configs) const {
  core::obs::ScopedSpan span{"fleet.run_all", "campaign"};
  std::vector<measure::ConsolidatedDb> results(configs.size());

  // Each job writes only its own slot, so no lock is needed; the slot index
  // pins results to submission order whatever the completion order is.
  run_indexed(threads_, configs.size(), [&results, &configs](std::size_t i) {
    core::obs::ScopedSpan job_span{"fleet.job", "campaign"};
    static const core::obs::Counter jobs{"campaign.fleet.jobs"};
    jobs.add();
    CampaignConfig cfg = configs[i];
    // All parallelism lives at the fleet level; the inner serial path
    // produces the identical database (campaign.hpp).
    cfg.threads = 1;
    results[i] = DriveCampaign{cfg}.run();
  });
  return results;
}

}  // namespace wheels::campaign

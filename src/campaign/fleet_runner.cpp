#include "campaign/fleet_runner.hpp"

#include "core/obs/metrics.hpp"
#include "core/obs/trace_export.hpp"
#include "core/thread_pool.hpp"

namespace wheels::campaign {

FleetRunner::FleetRunner(int threads)
    : threads_(core::resolve_threads(threads)) {}

std::vector<measure::ConsolidatedDb> FleetRunner::run_all(
    std::vector<CampaignConfig> configs) const {
  core::obs::ScopedSpan span{"fleet.run_all", "campaign"};
  std::vector<measure::ConsolidatedDb> results(configs.size());

  // Each job writes only its own slot, so no lock is needed; the slot index
  // pins results to submission order whatever the completion order is.
  std::vector<core::ThreadPool::Task> tasks;
  tasks.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    tasks.push_back([&results, &configs, i] {
      core::obs::ScopedSpan job_span{"fleet.job", "campaign"};
      auto& reg = core::obs::MetricsRegistry::global();
      static const core::obs::MetricId jobs =
          reg.counter_id("campaign.fleet.jobs");
      reg.add(jobs);
      CampaignConfig cfg = configs[i];
      // All parallelism lives at the fleet level; the inner serial path
      // produces the identical database (campaign.hpp).
      cfg.threads = 1;
      results[i] = DriveCampaign{cfg}.run();
    });
  }

  // The calling thread drains the batch too, so `threads_` campaigns run
  // concurrently with a pool of threads_ - 1 workers.
  core::ThreadPool pool{threads_ - 1};
  pool.run_batch(std::move(tasks));
  return results;
}

}  // namespace wheels::campaign

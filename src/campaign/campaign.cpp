#include "campaign/campaign.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>

#include "apps/gaming.hpp"
#include "apps/link_trace.hpp"
#include "apps/offload.hpp"
#include "apps/video.hpp"
#include "geo/drive_trace.hpp"
#include "geo/scaled_route.hpp"
#include "measure/log_sync.hpp"
#include "measure/logfile.hpp"
#include "measure/passive_logger.hpp"
#include "net/latency.hpp"
#include "net/server.hpp"
#include "ran/rrc.hpp"
#include "ran/session.hpp"
#include "transport/tcp_flow.hpp"

namespace wheels::campaign {

using apps::LinkTick;
using apps::LinkTrace;
using geo::DriveSample;
using measure::AppKind;
using measure::ConsolidatedDb;
using measure::KpiRecord;
using measure::TestRecord;
using measure::TestType;
using radio::Carrier;
using radio::Direction;
using ran::TrafficProfile;

CampaignConfig config_from_env(double default_scale) {
  CampaignConfig cfg;
  cfg.scale = default_scale;
  if (const char* s = std::getenv("WHEELS_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0 && v <= 1.0) cfg.scale = v;
  }
  if (const char* s = std::getenv("WHEELS_SEED")) {
    cfg.seed = static_cast<std::uint64_t>(std::atoll(s));
  }
  return cfg;
}

namespace {

constexpr Millis kTick = 500.0;

struct CarrierContext {
  Carrier carrier;
  std::unique_ptr<radio::Deployment> deployment;
  std::unique_ptr<ran::RadioSession> session;
  std::unique_ptr<measure::PassiveLogger> passive;
  std::unique_ptr<net::RttProcess> rtt_process;
  std::unique_ptr<ran::RrcMachine> rrc;
  measure::CoverageTracker active_coverage;
  Rng rng{0};
};

class CampaignRunner {
 public:
  CampaignRunner(const CampaignConfig& cfg)
      : cfg_(cfg),
        root_(cfg.seed),
        route_(geo::Route::cross_country()),
        view_(route_, cfg.scale),
        fleet_(net::ServerFleet::standard(route_)),
        trace_gen_(route_, make_trace_config(cfg), root_.fork("trace")) {
    for (Carrier c : radio::kAllCarriers) {
      auto& ctx = contexts_[measure::carrier_index(c)];
      ctx.carrier = c;
      Rng crng = root_.fork(radio::carrier_name(c));
      ctx.deployment = std::make_unique<radio::Deployment>(
          view_, c, crng.fork("deployment"), cfg.deployment);
      ctx.session = std::make_unique<ran::RadioSession>(
          *ctx.deployment, TrafficProfile::BackloggedDownlink,
          crng.fork("active-session"));
      ctx.passive = std::make_unique<measure::PassiveLogger>(
          *ctx.deployment, cfg.scale, crng.fork("passive"));
      ctx.rtt_process = std::make_unique<net::RttProcess>(
          c, crng.fork("rtt-process"));
      ctx.rrc = std::make_unique<ran::RrcMachine>(crng.fork("rrc"));
      ctx.rng = crng.fork("tests");
    }
    advance();  // prime the cursor
  }

  ConsolidatedDb run() {
    while (current_.has_value()) {
      run_cycle();
      for (int i = 0; i < cfg_.idle_ticks_between_cycles && current_; ++i) {
        advance();
      }
      ++cycle_;
    }
    finalize();
    return std::move(db_);
  }

 private:
  static geo::DriveTraceConfig make_trace_config(const CampaignConfig& cfg) {
    geo::DriveTraceConfig tc;
    tc.scale = cfg.scale;
    return tc;
  }

  /// Advance the van by one tick; feeds passive loggers and triggers static
  /// batteries on first city arrival.
  void advance() {
    current_ = trace_gen_.next();
    if (!current_) return;
    for (auto& ctx : contexts_) ctx.passive->tick(*current_);
    db_.driven_km = current_->km;

    if (cfg_.run_static) {
      const geo::RoutePoint p = view_.at_physical(current_->km);
      if (p.region == geo::RegionType::Urban &&
          !visited_city_[p.nearest_city]) {
        visited_city_[p.nearest_city] = true;
        run_static_battery(p.nearest_city);
      }
    }
  }

  void run_cycle() {
    run_bulk(Direction::Downlink);
    run_bulk(Direction::Uplink);
    run_rtt();
    if (cfg_.run_apps) {
      run_offload(AppKind::Ar);
      run_offload(AppKind::Cav);
      if (cycle_ % cfg_.long_app_stride == 0) {
        run_long_app(AppKind::Video);
        run_long_app(AppKind::Gaming);
      }
    }
  }

  KpiRecord make_kpi(CarrierContext& ctx, const ran::RadioTick& tick,
                     const DriveSample& s, std::uint32_t test_id,
                     Direction dir, net::ServerKind server,
                     bool is_static) const {
    KpiRecord k;
    k.test_id = test_id;
    k.t = s.t;
    k.carrier = ctx.carrier;
    k.tech = tick.tech;
    k.cell_id = tick.cell_id;
    // XCAL logs instantaneous modem snapshots, not 500 ms averages: the
    // logged KPI carries measurement noise on top of the channel state (one
    // reason the paper's KPI-vs-throughput correlations are weak, Table 2).
    k.rsrp = tick.kpis.rsrp + ctx.rng.normal(0.0, 3.5);
    k.mcs = std::clamp(
        tick.kpis.mcs(dir) +
            static_cast<int>(std::lround(ctx.rng.normal(0.0, 2.2))),
        0, 28);
    k.bler = std::clamp(tick.kpis.bler(dir) + ctx.rng.normal(0.0, 0.06),
                        0.0, 1.0);
    k.ca = tick.kpis.cc(dir);
    k.speed = s.speed;
    k.km = s.km;
    k.map_km = s.km / cfg_.scale;
    k.tz = s.tz;
    k.region = s.region;
    k.handovers = static_cast<int>(tick.handovers.size());
    k.server = server;
    k.direction = dir;
    k.is_static = is_static;
    return k;
  }

  TestRecord open_test(TestType type, Carrier carrier, net::ServerKind server,
                       Direction dir, bool is_static) {
    TestRecord t;
    t.id = next_test_id_++;
    t.type = type;
    t.carrier = carrier;
    t.is_static = is_static;
    t.server = server;
    t.direction = dir;
    t.cycle = is_static ? -1 : cycle_;
    if (current_) {
      t.start = current_->t;
      t.start_km = current_->km;
      t.tz = current_->tz;
    }
    return t;
  }

  void close_test(TestRecord t, Millis duration) {
    if (current_) {
      t.end = current_->t;
      t.end_km = current_->km;
    } else {
      t.end = t.start + static_cast<SimMillis>(duration);
      t.end_km = db_.driven_km;
    }
    db_.experiment_runtime[measure::carrier_index(t.carrier)] += duration;
    db_.tests.push_back(t);
  }

  /// One 30 s nuttcp bulk transfer on all three phones concurrently, routed
  /// through the .drm + app-log + LogSynchronizer pipeline.
  void run_bulk(Direction dir) {
    if (!current_) return;
    const TrafficProfile traffic = dir == Direction::Downlink
                                       ? TrafficProfile::BackloggedDownlink
                                       : TrafficProfile::BackloggedUplink;

    struct BulkState {
      TestRecord test;
      const net::Server* server = nullptr;
      std::unique_ptr<transport::TcpBulkFlow> flow;
      measure::XcalLogger xcal;
      measure::AppLogger applog;
    };
    std::array<std::optional<BulkState>, radio::kCarrierCount> states;

    const geo::RoutePoint start_pt = view_.at_physical(current_->km);
    const int local_offset = geo::utc_offset_minutes(current_->tz);
    for (auto& ctx : contexts_) {
      ctx.session->set_traffic(traffic);
      const net::Server& server =
          fleet_.select(ctx.carrier, route_, route_.at(start_pt.km));
      BulkState st{
          open_test(dir == Direction::Downlink ? TestType::DownlinkBulk
                                               : TestType::UplinkBulk,
                    ctx.carrier, server.kind, dir, false),
          &server,
          std::make_unique<transport::TcpBulkFlow>(
              net::base_rtt(ctx.carrier, ctx.session->current_tech(), server,
                            start_pt.pos),
              ctx.rng.fork("bulk", next_test_id_)),
          measure::XcalLogger{ctx.carrier, unix_from_sim(current_->t),
                              local_offset},
          measure::AppLogger{"nuttcp", measure::TimestampPolicy::Utc, 0}};
      states[measure::carrier_index(ctx.carrier)].emplace(std::move(st));
    }

    int ticks = 0;
    for (; ticks < cfg_.bulk_ticks && current_; ++ticks, advance()) {
      const DriveSample& s = *current_;
      for (auto& ctx : contexts_) {
        BulkState& st = *states[measure::carrier_index(ctx.carrier)];
        (void)ctx.rrc->on_traffic(s.t);
        const ran::RadioTick tick = ctx.session->tick(s, kTick);
        st.flow->set_base_rtt(net::base_rtt(ctx.carrier, tick.tech,
                                            *st.server, s.pos));
        const Mbps cap = tick.kpis.capacity(dir);
        const double bytes = st.flow->advance(cap, kTick);
        const Mbps mbps = bytes * 8.0 / 1e6 / (kTick / 1000.0);

        const UnixMillis now = unix_from_sim(s.t);
        st.xcal.log(now, make_kpi(ctx, tick, s, st.test.id, dir,
                                  st.server->kind, false));
        st.applog.log(now, mbps);

        record_common(ctx, tick, s, st.test.id, dir);
        if (dir == Direction::Downlink) {
          db_.rx_bytes += bytes;
        } else {
          db_.tx_bytes += bytes;
        }
      }
    }

    for (auto& ctx : contexts_) {
      BulkState& st = *states[measure::carrier_index(ctx.carrier)];
      auto joined = measure::LogSynchronizer::join(
          std::move(st.xcal).finish(), std::move(st.applog).finish());
      db_.kpis.insert(db_.kpis.end(), joined.begin(), joined.end());
      close_test(st.test, ticks * kTick);
    }
  }

  /// 20 s of 200 ms pings on all three phones.
  void run_rtt() {
    if (!current_) return;
    struct RttState {
      TestRecord test;
      const net::Server* server = nullptr;
      measure::AppLogger applog;
      std::vector<std::pair<radio::Technology, MilesPerHour>> tick_info;
      SimMillis start = 0;
    };
    std::array<std::optional<RttState>, radio::kCarrierCount> states;

    const geo::RoutePoint start_pt = view_.at_physical(current_->km);
    const int local_offset = geo::utc_offset_minutes(current_->tz);
    for (auto& ctx : contexts_) {
      ctx.session->set_traffic(TrafficProfile::IdlePing);
      const net::Server& server =
          fleet_.select(ctx.carrier, route_, route_.at(start_pt.km));
      states[measure::carrier_index(ctx.carrier)].emplace(RttState{
          open_test(TestType::Rtt, ctx.carrier, server.kind,
                    Direction::Downlink, false),
          &server,
          measure::AppLogger{"ping", measure::TimestampPolicy::LocalTime,
                             local_offset},
          {},
          current_->t});
    }

    Millis next_ping = 0.0;  // offset within the test, shared by phones
    int ticks = 0;
    for (; ticks < cfg_.rtt_ticks && current_; ++ticks, advance()) {
      const DriveSample& s = *current_;
      const Millis tick_start = ticks * kTick;
      for (auto& ctx : contexts_) {
        RttState& st = *states[measure::carrier_index(ctx.carrier)];
        const ran::RadioTick tick = ctx.session->tick(s, kTick);
        st.tick_info.emplace_back(tick.tech, s.speed);
        record_common(ctx, tick, s, st.test.id, Direction::Downlink);

        for (Millis p = next_ping; p < tick_start + kTick; p += 200.0) {
          Millis interruption =
              tick.interruption > 0.0 && p == next_ping ? tick.interruption
                                                        : 0.0;
          // An idle radio pays the RRC idle->connected promotion on the
          // first echo (why the paper's logger pings every 200 ms).
          interruption +=
              ctx.rrc->on_traffic(st.start + static_cast<SimMillis>(p));
          const Millis rtt = ctx.rtt_process->sample(
              tick.tech, *st.server, s.pos, s.speed, 0.0, interruption);
          st.applog.log(unix_from_sim(st.start) +
                            static_cast<UnixMillis>(p),
                        rtt);
        }
      }
      while (next_ping < tick_start + kTick) next_ping += 200.0;
    }

    for (auto& ctx : contexts_) {
      RttState& st = *states[measure::carrier_index(ctx.carrier)];
      const auto series =
          measure::LogSynchronizer::normalize_series(std::move(st.applog).finish());
      for (const auto& [t, value] : series) {
        const auto idx = static_cast<std::size_t>(
            std::clamp<SimMillis>((t - st.start) / static_cast<SimMillis>(kTick),
                                  0,
                                  static_cast<SimMillis>(st.tick_info.size()) - 1));
        measure::RttRecord r;
        r.test_id = st.test.id;
        r.t = t;
        r.carrier = ctx.carrier;
        r.tech = st.tick_info[idx].first;
        r.rtt = value;
        r.speed = st.tick_info[idx].second;
        r.tz = st.test.tz;
        r.server = st.test.server;
        r.is_static = false;
        db_.rtts.push_back(r);
      }
      close_test(st.test, ticks * kTick);
    }
  }

  /// Collect a link trace of `ticks` ticks for every carrier (lockstep).
  std::array<LinkTrace, radio::kCarrierCount> collect_link_traces(
      int ticks, std::array<const net::Server*, radio::kCarrierCount>& servers,
      std::array<std::uint32_t, radio::kCarrierCount> test_ids) {
    std::array<LinkTrace, radio::kCarrierCount> traces;
    for (auto& ctx : contexts_) {
      ctx.session->set_traffic(TrafficProfile::Interactive);
    }
    for (int i = 0; i < ticks && current_; ++i, advance()) {
      const DriveSample& s = *current_;
      for (auto& ctx : contexts_) {
        const std::size_t ci = measure::carrier_index(ctx.carrier);
        (void)ctx.rrc->on_traffic(s.t);
        const ran::RadioTick tick = ctx.session->tick(s, kTick);
        LinkTick lt;
        lt.cap_dl = tick.kpis.capacity_dl;
        lt.cap_ul = tick.kpis.capacity_ul;
        lt.rtt = ctx.rtt_process->sample(tick.tech, *servers[ci], s.pos,
                                         s.speed, 0.0, 0.0);
        lt.interruption = tick.interruption;
        lt.handovers = static_cast<int>(tick.handovers.size());
        lt.tech = tick.tech;
        traces[ci].push_back(lt);
        record_common(ctx, tick, s, test_ids[ci], Direction::Uplink);
      }
    }
    return traces;
  }

  void push_offload_run(const CarrierContext& ctx, AppKind kind,
                        const TestRecord& test, const LinkTrace& trace,
                        const apps::OffloadRunResult& run) {
    measure::AppRunRecord r;
    r.test_id = test.id;
    r.app = kind;
    r.carrier = ctx.carrier;
    r.is_static = test.is_static;
    r.server = test.server;
    r.high_speed_5g_fraction = apps::high_speed_5g_fraction(trace);
    r.handovers = apps::total_handovers(trace);
    r.compressed = run.compressed;
    r.median_e2e = run.median_e2e;
    r.offload_fps = run.offload_fps;
    r.map_percent = run.map_percent;
    db_.app_runs.push_back(r);
    // Uplink frames leave the device.
    const double frame_kb = run.compressed
                                ? (kind == AppKind::Ar ? 50.0 : 38.0)
                                : (kind == AppKind::Ar ? 450.0 : 2000.0);
    db_.tx_bytes += static_cast<double>(run.frames.size()) * frame_kb * 1024.0;
  }

  void run_offload(AppKind kind) {
    if (!current_) return;
    const apps::OffloadApp app{kind == AppKind::Ar ? apps::ar_config()
                                                   : apps::cav_config()};
    const TestType type =
        kind == AppKind::Ar ? TestType::ArApp : TestType::CavApp;

    for (const bool compressed : {false, true}) {
      if (!current_) return;
      std::array<const net::Server*, radio::kCarrierCount> servers{};
      std::array<std::uint32_t, radio::kCarrierCount> ids{};
      std::array<std::optional<TestRecord>, radio::kCarrierCount> tests;
      const geo::RoutePoint pt = view_.at_physical(current_->km);
      for (auto& ctx : contexts_) {
        const std::size_t ci = measure::carrier_index(ctx.carrier);
        servers[ci] = &fleet_.select(ctx.carrier, route_, route_.at(pt.km));
        tests[ci] = open_test(type, ctx.carrier, servers[ci]->kind,
                              Direction::Uplink, false);
        ids[ci] = tests[ci]->id;
      }
      const auto traces = collect_link_traces(cfg_.offload_ticks, servers, ids);
      for (auto& ctx : contexts_) {
        const std::size_t ci = measure::carrier_index(ctx.carrier);
        const auto run = app.run(traces[ci], compressed);
        push_offload_run(ctx, kind, *tests[ci], traces[ci], run);
        close_test(*tests[ci], cfg_.offload_ticks * kTick);
      }
    }
  }

  void run_long_app(AppKind kind) {
    if (!current_) return;
    const int ticks =
        kind == AppKind::Video ? cfg_.video_ticks : cfg_.gaming_ticks;
    const TestType type =
        kind == AppKind::Video ? TestType::Video : TestType::Gaming;

    std::array<const net::Server*, radio::kCarrierCount> servers{};
    std::array<std::uint32_t, radio::kCarrierCount> ids{};
    std::array<std::optional<TestRecord>, radio::kCarrierCount> tests;
    const geo::RoutePoint pt = view_.at_physical(current_->km);
    for (auto& ctx : contexts_) {
      const std::size_t ci = measure::carrier_index(ctx.carrier);
      servers[ci] = &fleet_.select(ctx.carrier, route_, route_.at(pt.km));
      tests[ci] = open_test(type, ctx.carrier, servers[ci]->kind,
                            Direction::Downlink, false);
      ids[ci] = tests[ci]->id;
    }
    const auto traces = collect_link_traces(ticks, servers, ids);
    for (auto& ctx : contexts_) {
      const std::size_t ci = measure::carrier_index(ctx.carrier);
      push_long_app_run(ctx, kind, *tests[ci], traces[ci]);
      close_test(*tests[ci], ticks * kTick);
    }
  }

  void push_long_app_run(const CarrierContext& ctx, AppKind kind,
                         const TestRecord& test, const LinkTrace& trace) {
    measure::AppRunRecord r;
    r.test_id = test.id;
    r.app = kind;
    r.carrier = ctx.carrier;
    r.is_static = test.is_static;
    r.server = test.server;
    r.high_speed_5g_fraction = apps::high_speed_5g_fraction(trace);
    r.handovers = apps::total_handovers(trace);
    if (kind == AppKind::Video) {
      apps::VideoConfig vc;
      vc.run_duration = static_cast<Millis>(trace.size()) * kTick;
      const auto run = apps::VideoApp{vc}.run(trace);
      r.qoe = run.avg_qoe;
      r.rebuffer_fraction = run.rebuffer_fraction;
      r.avg_bitrate = run.avg_bitrate;
      db_.rx_bytes += run.avg_bitrate * 1e6 / 8.0 *
                      (vc.run_duration / 1000.0);
    } else {
      apps::GamingConfig gc;
      gc.run_duration = static_cast<Millis>(trace.size()) * kTick;
      const auto run = apps::GamingApp{gc}.run(trace);
      r.gaming_bitrate = run.median_bitrate;
      r.gaming_latency = run.median_latency;
      r.gaming_frame_drop = run.median_frame_drop;
      r.gaming_max_frame_drop = run.max_frame_drop;
      db_.rx_bytes += run.median_bitrate * 1e6 / 8.0 *
                      (gc.run_duration / 1000.0);
    }
    db_.app_runs.push_back(r);
  }

  /// Handover records, coverage tracking, unique-cell bookkeeping shared by
  /// every active test tick.
  void record_common(CarrierContext& ctx, const ran::RadioTick& tick,
                     const DriveSample& s, std::uint32_t test_id,
                     Direction dir) {
    const std::size_t ci = measure::carrier_index(ctx.carrier);
    for (const auto& ho : tick.handovers) {
      db_.handovers.push_back({test_id, ctx.carrier, dir, ho});
    }
    ctx.active_coverage.observe(s.km / cfg_.scale, tick.tech);
    db_.active_cells[ci].insert(tick.cell_id);
    if (tick.anchor_cell_id != 0) {
      db_.active_cells[ci].insert(tick.anchor_cell_id);
    }
  }

  void run_static_battery(std::size_t city) {
    const Km city_km = view_.physical_city_km(city);
    const geo::RoutePoint city_pt = route_.at(route_.city_km(city));
    const SimMillis t0 = current_ ? current_->t : 0;

    for (auto& ctx : contexts_) {
      auto session = ran::StaticSession::try_create(
          *ctx.deployment, city_km, 10.0, ctx.rng.fork("static", city));
      if (!session.has_value()) continue;  // omitted, as in the paper
      const net::Server& server =
          fleet_.select(ctx.carrier, route_, city_pt);

      // Bulk transfers, both directions.
      for (const Direction dir :
           {Direction::Downlink, Direction::Uplink}) {
        TestRecord test = open_test(dir == Direction::Downlink
                                        ? TestType::DownlinkBulk
                                        : TestType::UplinkBulk,
                                    ctx.carrier, server.kind, dir, true);
        test.tz = city_pt.tz;
        test.start = t0;
        transport::TcpBulkFlow flow{
            net::base_rtt(ctx.carrier, session->tech(), server, city_pt.pos),
            ctx.rng.fork("static-bulk", city * 2 + (dir == Direction::Uplink))};
        for (int i = 0; i < cfg_.bulk_ticks; ++i) {
          const ran::RadioTick tick = session->tick(kTick);
          const double bytes = flow.advance(tick.kpis.capacity(dir), kTick);
          DriveSample fake;
          fake.t = t0 + static_cast<SimMillis>(i * kTick);
          fake.km = city_km;
          fake.pos = city_pt.pos;
          fake.speed = 0.0;
          fake.region = geo::RegionType::Urban;
          fake.tz = city_pt.tz;
          KpiRecord k = make_kpi(ctx, tick, fake, test.id, dir, server.kind,
                                 true);
          k.throughput = bytes * 8.0 / 1e6 / (kTick / 1000.0);
          db_.kpis.push_back(k);
        }
        close_test(test, cfg_.bulk_ticks * kTick);
      }

      // Ping test.
      {
        TestRecord test = open_test(TestType::Rtt, ctx.carrier, server.kind,
                                    Direction::Downlink, true);
        test.tz = city_pt.tz;
        test.start = t0;
        for (int i = 0; i < cfg_.rtt_ticks; ++i) {
          const ran::RadioTick tick = session->tick(kTick);
          const int pings = i % 2 == 0 ? 2 : 3;
          for (int p = 0; p < pings; ++p) {
            measure::RttRecord r;
            r.test_id = test.id;
            r.t = t0 + static_cast<SimMillis>(i * kTick) + p * 200;
            r.carrier = ctx.carrier;
            r.tech = tick.tech;
            r.rtt = ctx.rtt_process->sample(tick.tech, server, city_pt.pos,
                                            0.0, 0.0, 0.0);
            r.speed = 0.0;
            r.tz = city_pt.tz;
            r.server = server.kind;
            r.is_static = true;
            db_.rtts.push_back(r);
          }
        }
        close_test(test, cfg_.rtt_ticks * kTick);
      }

      if (cfg_.run_apps) run_static_apps(ctx, *session, server, city_pt, t0);
    }
  }

  void run_static_apps(CarrierContext& ctx, ran::StaticSession& session,
                       const net::Server& server,
                       const geo::RoutePoint& city_pt, SimMillis t0) {
    auto make_trace = [&](int ticks) {
      LinkTrace trace;
      for (int i = 0; i < ticks; ++i) {
        const ran::RadioTick tick = session.tick(kTick);
        LinkTick lt;
        lt.cap_dl = tick.kpis.capacity_dl;
        lt.cap_ul = tick.kpis.capacity_ul;
        lt.rtt = ctx.rtt_process->sample(tick.tech, server, city_pt.pos, 0.0,
                                         0.0, 0.0);
        lt.tech = tick.tech;
        trace.push_back(lt);
      }
      return trace;
    };

    for (const AppKind kind : {AppKind::Ar, AppKind::Cav}) {
      const apps::OffloadApp app{kind == AppKind::Ar ? apps::ar_config()
                                                     : apps::cav_config()};
      for (const bool compressed : {false, true}) {
        TestRecord test = open_test(
            kind == AppKind::Ar ? TestType::ArApp : TestType::CavApp,
            ctx.carrier, server.kind, Direction::Uplink, true);
        test.tz = city_pt.tz;
        test.start = t0;
        const LinkTrace trace = make_trace(cfg_.offload_ticks);
        push_offload_run(ctx, kind, test, trace, app.run(trace, compressed));
        close_test(test, cfg_.offload_ticks * kTick);
      }
    }
    for (const AppKind kind : {AppKind::Video, AppKind::Gaming}) {
      TestRecord test = open_test(
          kind == AppKind::Video ? TestType::Video : TestType::Gaming,
          ctx.carrier, server.kind, Direction::Downlink, true);
      test.tz = city_pt.tz;
      test.start = t0;
      const int ticks =
          kind == AppKind::Video ? cfg_.video_ticks : cfg_.gaming_ticks;
      const LinkTrace trace = make_trace(ticks);
      push_long_app_run(ctx, kind, test, trace);
      close_test(test, ticks * kTick);
    }
  }

  void finalize() {
    for (auto& ctx : contexts_) {
      const std::size_t ci = measure::carrier_index(ctx.carrier);
      db_.passive[ci] = std::move(*ctx.passive).finish();
      db_.active_coverage[ci] = std::move(ctx.active_coverage).finish();
    }
  }

  CampaignConfig cfg_;
  Rng root_;
  geo::Route route_;
  geo::ScaledRoute view_;
  net::ServerFleet fleet_;
  geo::DriveTraceGenerator trace_gen_;
  std::array<CarrierContext, radio::kCarrierCount> contexts_;
  std::optional<DriveSample> current_;
  ConsolidatedDb db_;
  std::uint32_t next_test_id_ = 1;
  int cycle_ = 0;
  std::array<bool, 16> visited_city_{};
};

}  // namespace

ConsolidatedDb DriveCampaign::run() const {
  CampaignRunner runner{config_};
  return runner.run();
}

}  // namespace wheels::campaign

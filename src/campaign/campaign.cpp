#include "campaign/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/gaming.hpp"
#include "apps/link_trace.hpp"
#include "apps/offload.hpp"
#include "apps/video.hpp"
#include "core/env.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/trace_export.hpp"
#include "core/thread_pool.hpp"
#include "geo/drive_trace.hpp"
#include "measure/csv_export.hpp"
#include "geo/scaled_route.hpp"
#include "measure/log_sync.hpp"
#include "measure/logfile.hpp"
#include "measure/passive_logger.hpp"
#include "measure/shard.hpp"
#include "net/latency.hpp"
#include "net/server.hpp"
#include "ran/rrc.hpp"
#include "ran/session.hpp"
#include "ran/ue_pool.hpp"
#include "transport/tcp_flow.hpp"

namespace wheels::campaign {

using apps::LinkTick;
using apps::LinkTrace;
using geo::DriveSample;
using measure::AppKind;
using measure::ConsolidatedDb;
using measure::KpiRecord;
using measure::TestRecord;
using measure::TestType;
using radio::Carrier;
using radio::Direction;
using ran::TrafficProfile;

CampaignConfig config_from_env(double default_scale) {
  CampaignConfig cfg;
  cfg.scale = default_scale;
  if (const auto v = core::env_double("WHEELS_SCALE")) {
    if (*v > 0.0 && *v <= 1.0) {
      cfg.scale = *v;
    } else {
      std::fprintf(stderr,
                   "[wheels] ignoring WHEELS_SCALE=%g: expected (0, 1]\n", *v);
    }
  }
  if (const auto v = core::env_int("WHEELS_SEED")) {
    if (*v >= 0) {
      cfg.seed = static_cast<std::uint64_t>(*v);
    } else {
      std::fprintf(stderr,
                   "[wheels] ignoring WHEELS_SEED=%lld: expected >= 0\n", *v);
    }
  }
  // resolve_threads re-reads WHEELS_THREADS when cfg.threads stays 0; going
  // through it here keeps the two readers' validation identical.
  cfg.threads = 0;
  if (const auto v = core::env_int("WHEELS_UES")) {
    if (*v >= 0 && *v <= std::numeric_limits<int>::max()) {
      cfg.population = static_cast<int>(*v);
    } else {
      std::fprintf(stderr,
                   "[wheels] ignoring WHEELS_UES=%lld: expected >= 0\n", *v);
    }
  }
  if (const char* v = std::getenv("WHEELS_SCHEDULER")) {
    if (const auto kind = ran::parse_scheduler_kind(v)) {
      cfg.scheduler = *kind;
    } else {
      std::fprintf(stderr,
                   "[wheels] ignoring WHEELS_SCHEDULER=%s: expected pf|rr\n",
                   v);
    }
  }
  return cfg;
}

core::obs::RunManifest make_manifest(const CampaignConfig& cfg) {
  core::obs::RunManifest m = core::obs::make_run_manifest();
  m.seed = cfg.seed;
  m.scale = cfg.scale;
  m.threads = core::resolve_threads(cfg.threads);
  // Canonical rendering of every field that influences the produced data.
  // Doubles use %.17g so distinct configs never collide on formatting.
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "seed=%llu;scale=%.17g;apps=%d;stride=%d;static=%d;idle=%d;"
      "dep=%.17g,%.17g,%.17g;ticks=%d,%d,%d,%d,%d",
      static_cast<unsigned long long>(cfg.seed), cfg.scale,
      cfg.run_apps ? 1 : 0, cfg.long_app_stride, cfg.run_static ? 1 : 0,
      cfg.idle_ticks_between_cycles, cfg.deployment.low_multiplier,
      cfg.deployment.mid_multiplier, cfg.deployment.mmwave_multiplier,
      cfg.bulk_ticks, cfg.rtt_ticks, cfg.offload_ticks, cfg.video_ticks,
      cfg.gaming_ticks);
  std::string canonical{buf};
  // Population fields join the digest only when a population exists, so
  // every pre-population bundle (and the committed golden expectations)
  // keeps its digest.
  if (cfg.population > 0) {
    std::snprintf(buf, sizeof(buf), ";ues=%d;sched=%.8s", cfg.population,
                  std::string{ran::scheduler_kind_name(cfg.scheduler)}.c_str());
    canonical += buf;
  }
  m.config_digest = core::obs::hex64(core::obs::fnv1a64(canonical));
  return m;
}

namespace {

constexpr Millis kTick = 500.0;

struct CarrierContext {
  Carrier carrier;
  std::unique_ptr<radio::Deployment> deployment;
  std::unique_ptr<ran::RadioSession> session;
  std::unique_ptr<measure::PassiveLogger> passive;
  std::unique_ptr<net::RttProcess> rtt_process;
  std::unique_ptr<ran::RrcMachine> rrc;
  /// The carrier's share of the simulated background population; null when
  /// cfg.population == 0 (the six-handset paper campaign).
  std::unique_ptr<ran::UePool> ue_pool;
  measure::CoverageTracker active_coverage;
  Rng rng{0};
  /// Thread-private record sink; drained into the db after every fan-out.
  measure::RecordShard shard;
};

// The campaign is executed as a sequence of *segments* (one bulk transfer,
// one ping test, one app collection, one static battery). For each segment
// the coordinator thread opens the test records and advances the shared
// drive trace, then fans the three carrier pipelines — computationally
// independent by construction — across the worker pool, and finally merges
// their record shards into the ConsolidatedDb in canonical carrier order.
// With threads=1 the identical per-carrier closures run inline in carrier
// order, which is why the parallel database is byte-identical to the serial
// one (the determinism gate in test_campaign_parallel.cpp).
class CampaignRunner {
 public:
  CampaignRunner(const CampaignConfig& cfg)
      : cfg_(cfg),
        root_(cfg.seed),
        route_(geo::Route::cross_country()),
        view_(route_, cfg.scale),
        fleet_(net::ServerFleet::standard(route_)),
        trace_gen_(route_, make_trace_config(cfg), root_.fork("trace")),
        pool_(carrier_workers(cfg.threads, cfg.population)) {
    for (Carrier c : radio::kAllCarriers) {
      auto& ctx = contexts_[measure::carrier_index(c)];
      ctx.carrier = c;
      Rng crng = root_.fork(radio::carrier_name(c));
      ctx.deployment = std::make_unique<radio::Deployment>(
          view_, c, crng.fork("deployment"), cfg.deployment);
      ctx.session = std::make_unique<ran::RadioSession>(
          *ctx.deployment, TrafficProfile::BackloggedDownlink,
          crng.fork("active-session"));
      ctx.passive = std::make_unique<measure::PassiveLogger>(
          *ctx.deployment, cfg.scale, crng.fork("passive"));
      ctx.rtt_process = std::make_unique<net::RttProcess>(
          c, crng.fork("rtt-process"));
      ctx.rrc = std::make_unique<ran::RrcMachine>(crng.fork("rrc"));
      if (cfg.population > 0) {
        // Remainder UEs land on the first carriers in canonical order.
        const std::size_t ci = measure::carrier_index(c);
        const int base = cfg.population / radio::kCarrierCount;
        const int extra =
            static_cast<std::size_t>(cfg.population % radio::kCarrierCount) >
                    ci
                ? 1
                : 0;
        ran::UePoolConfig pc;
        pc.count = static_cast<std::uint32_t>(base + extra);
        pc.scheduler = cfg.scheduler;
        pc.tick = kTick;
        ctx.ue_pool = std::make_unique<ran::UePool>(
            *ctx.deployment, view_.total_physical_km(), pc,
            crng.fork("ue-pool"));
      }
      ctx.rng = crng.fork("tests");
    }
    advance();  // prime the cursor
  }

  ConsolidatedDb run() {
    core::obs::ScopedSpan span{"campaign.run", "campaign"};
    while (current_.has_value()) {
      run_cycle();
      for (int i = 0; i < cfg_.idle_ticks_between_cycles && current_; ++i) {
        advance();
      }
      ++cycle_;
    }
    finalize();
    return std::move(db_);
  }

 private:
  static geo::DriveTraceConfig make_trace_config(const CampaignConfig& cfg) {
    geo::DriveTraceConfig tc;
    tc.scale = cfg.scale;
    return tc;
  }

  /// The inner fan-out is at most kCarrierCount wide and the coordinator
  /// thread drains batches too, so kCarrierCount - 1 workers saturate it —
  /// unless a UE population is simulated, whose block fan-out (ran::UePool)
  /// is far wider than three and reuses this pool on the coordinator.
  static int carrier_workers(int requested, int population) {
    const int threads = core::resolve_threads(requested);
    if (population > 0) return threads - 1;
    return std::min(threads, static_cast<int>(radio::kCarrierCount)) - 1;
  }

  /// Advance the van by one tick. The sample joins the passive backlog
  /// (flushed to the per-carrier passive loggers at the next fan-out) and
  /// first arrivals in a city queue a static battery for the next segment
  /// boundary.
  void advance() {
    current_ = trace_gen_.next();
    if (!current_) return;
    pending_passive_.push_back(*current_);
    last_t_ = current_->t;
    db_.driven_km = current_->km;

    if (cfg_.run_static) {
      const geo::RoutePoint p = view_.at_physical(current_->km);
      if (p.region == geo::RegionType::Urban &&
          !visited_city_[p.nearest_city]) {
        visited_city_[p.nearest_city] = true;
        pending_cities_.push_back(p.nearest_city);
      }
    }
  }

  /// Consume up to `max_ticks` trace samples for one segment.
  std::vector<DriveSample> take_ticks(int max_ticks) {
    std::vector<DriveSample> ticks;
    ticks.reserve(static_cast<std::size_t>(std::max(max_ticks, 0)));
    for (int i = 0; i < max_ticks && current_; ++i) {
      ticks.push_back(*current_);
      advance();
    }
    return ticks;
  }

  /// Fan `fn(ctx)` across the carriers (worker pool if available, inline in
  /// carrier order otherwise), then merge every carrier's shard into the db
  /// in canonical carrier order. Each worker first flushes the pending
  /// passive backlog to its own passive logger, so passive logs see every
  /// sample exactly once, in production order.
  template <typename Fn>
  void parallel_carriers(Fn&& fn) {
    const std::vector<DriveSample> backlog = std::move(pending_passive_);
    pending_passive_.clear();
    // The UE pools advance on the coordinator, one pool at a time, each tick
    // fanning its UE blocks across the full pool — run_batch admits one
    // batch at a time, so the population tick must not nest inside the
    // carrier fan-out below. The measurement phones therefore see the
    // population's contention frozen at segment granularity (documented in
    // docs/SCALING.md).
    if (cfg_.population > 0) {
      for (const DriveSample& s : backlog) {
        for (auto& ctx : contexts_) ctx.ue_pool->tick(s.t, &pool_);
      }
    }
    auto work = [&](CarrierContext& ctx) {
      for (const DriveSample& s : backlog) ctx.passive->tick(s);
      fn(ctx);
    };
    // With zero workers run_batch executes the tasks inline in submission
    // (= carrier) order, so one code path serves both modes — and the pool's
    // deterministic counters (pool.batches, pool.tasks_run) see the same
    // batches whatever the thread count.
    std::vector<core::ThreadPool::Task> tasks;
    tasks.reserve(contexts_.size());
    for (auto& ctx : contexts_) {
      tasks.push_back([&work, &ctx] { work(ctx); });
    }
    pool_.run_batch(std::move(tasks));
    for (auto& ctx : contexts_) {
      measure::merge_shard_into(db_, ctx.shard);
    }
  }

  /// Run the static batteries queued by advance(). Called at segment
  /// boundaries so a battery (itself a parallel fan-out) never interleaves
  /// with a moving test's tick loop.
  void drain_pending_cities() {
    while (!pending_cities_.empty()) {
      const std::size_t city = pending_cities_.front();
      pending_cities_.pop_front();
      run_static_battery(city);
    }
  }

  void run_cycle() {
    auto& reg = core::obs::MetricsRegistry::global();
    static const core::obs::MetricId cycles = reg.counter_id("campaign.cycles");
    reg.add(cycles);
    drain_pending_cities();
    run_bulk(Direction::Downlink);
    run_bulk(Direction::Uplink);
    run_rtt();
    if (cfg_.run_apps) {
      run_offload(AppKind::Ar);
      run_offload(AppKind::Cav);
      if (cycle_ % cfg_.long_app_stride == 0) {
        run_long_app(AppKind::Video);
        run_long_app(AppKind::Gaming);
      }
    }
  }

  KpiRecord make_kpi(CarrierContext& ctx, const ran::RadioTick& tick,
                     const DriveSample& s, std::uint32_t test_id,
                     Direction dir, net::ServerKind server,
                     bool is_static) const {
    KpiRecord k;
    k.test_id = test_id;
    k.t = s.t;
    k.carrier = ctx.carrier;
    k.tech = tick.tech;
    k.cell_id = tick.cell_id;
    // XCAL logs instantaneous modem snapshots, not 500 ms averages: the
    // logged KPI carries measurement noise on top of the channel state (one
    // reason the paper's KPI-vs-throughput correlations are weak, Table 2).
    k.rsrp = tick.kpis.rsrp + ctx.rng.normal(0.0, 3.5);
    k.mcs = std::clamp(
        tick.kpis.mcs(dir) +
            static_cast<int>(std::lround(ctx.rng.normal(0.0, 2.2))),
        0, 28);
    k.bler = std::clamp(tick.kpis.bler(dir) + ctx.rng.normal(0.0, 0.06),
                        0.0, 1.0);
    k.ca = tick.kpis.cc(dir);
    k.speed = s.speed;
    k.km = s.km;
    k.map_km = s.km / cfg_.scale;
    k.tz = s.tz;
    k.region = s.region;
    k.handovers = static_cast<int>(tick.handovers.size());
    k.server = server;
    k.direction = dir;
    k.is_static = is_static;
    return k;
  }

  TestRecord open_test(TestType type, Carrier carrier, net::ServerKind server,
                       Direction dir, bool is_static) {
    TestRecord t;
    t.id = next_test_id_++;
    t.type = type;
    t.carrier = carrier;
    t.is_static = is_static;
    t.server = server;
    t.direction = dir;
    t.cycle = is_static ? -1 : cycle_;
    if (current_) {
      t.start = current_->t;
      t.start_km = current_->km;
      t.tz = current_->tz;
    }
    return t;
  }

  void close_test(TestRecord t, Millis duration) {
    auto& reg = core::obs::MetricsRegistry::global();
    static const core::obs::MetricId tests = reg.counter_id("campaign.tests");
    reg.add(tests);
    if (current_) {
      t.end = current_->t;
      t.end_km = current_->km;
    } else {
      t.end = t.start + static_cast<SimMillis>(duration);
      t.end_km = db_.driven_km;
    }
    db_.experiment_runtime[measure::carrier_index(t.carrier)] += duration;
    db_.tests.push_back(t);
  }

  /// One 30 s nuttcp bulk transfer on all three phones concurrently, routed
  /// through the .drm + app-log + LogSynchronizer pipeline.
  void run_bulk(Direction dir) {
    if (!current_) return;
    core::obs::ScopedSpan span{dir == Direction::Downlink
                                   ? "campaign.bulk_dl"
                                   : "campaign.bulk_ul",
                               "campaign"};
    const TrafficProfile traffic = dir == Direction::Downlink
                                       ? TrafficProfile::BackloggedDownlink
                                       : TrafficProfile::BackloggedUplink;

    struct BulkState {
      TestRecord test;
      const net::Server* server = nullptr;
      std::unique_ptr<transport::TcpBulkFlow> flow;
      measure::XcalLogger xcal;
      measure::AppLogger applog;
    };
    std::array<std::optional<BulkState>, radio::kCarrierCount> states;

    const geo::RoutePoint start_pt = view_.at_physical(current_->km);
    const int local_offset = geo::utc_offset_minutes(current_->tz);
    for (auto& ctx : contexts_) {
      ctx.session->set_traffic(traffic);
      const net::Server& server =
          fleet_.select(ctx.carrier, route_, route_.at(start_pt.km));
      BulkState st{
          open_test(dir == Direction::Downlink ? TestType::DownlinkBulk
                                               : TestType::UplinkBulk,
                    ctx.carrier, server.kind, dir, false),
          &server,
          std::make_unique<transport::TcpBulkFlow>(
              net::base_rtt(ctx.carrier, ctx.session->current_tech(), server,
                            start_pt.pos),
              ctx.rng.fork("bulk", next_test_id_)),
          measure::XcalLogger{ctx.carrier, unix_from_sim(current_->t),
                              local_offset},
          measure::AppLogger{"nuttcp", measure::TimestampPolicy::Utc, 0}};
      states[measure::carrier_index(ctx.carrier)].emplace(std::move(st));
    }

    const std::vector<DriveSample> ticks = take_ticks(cfg_.bulk_ticks);

    parallel_carriers([&](CarrierContext& ctx) {
      BulkState& st = *states[measure::carrier_index(ctx.carrier)];
      for (const DriveSample& s : ticks) {
        (void)ctx.rrc->on_traffic(s.t);
        const ran::RadioTick tick = ctx.session->tick(s, kTick);
        st.flow->set_base_rtt(net::base_rtt(ctx.carrier, tick.tech,
                                            *st.server, s.pos));
        Mbps cap = tick.kpis.capacity(dir);
        // The simulated population contends for the same cell: the phone
        // keeps only its scheduler share of the downlink (uplink demand is
        // not modelled by the population).
        if (ctx.ue_pool && dir == Direction::Downlink) {
          cap *= ctx.ue_pool->population_share(tick.cell_id);
        }
        const double bytes = st.flow->advance(cap, kTick);
        const Mbps mbps = bytes * 8.0 / 1e6 / (kTick / 1000.0);

        const UnixMillis now = unix_from_sim(s.t);
        st.xcal.log(now, make_kpi(ctx, tick, s, st.test.id, dir,
                                  st.server->kind, false));
        st.applog.log(now, mbps);

        record_common(ctx, tick, s, st.test.id, dir);
        if (dir == Direction::Downlink) {
          ctx.shard.rx_bytes += bytes;
        } else {
          ctx.shard.tx_bytes += bytes;
        }
      }
      auto joined = measure::LogSynchronizer::join(
          std::move(st.xcal).finish(), std::move(st.applog).finish());
      ctx.shard.kpis.insert(ctx.shard.kpis.end(), joined.begin(),
                            joined.end());
    });

    for (auto& ctx : contexts_) {
      close_test(states[measure::carrier_index(ctx.carrier)]->test,
                 static_cast<Millis>(ticks.size()) * kTick);
    }
    drain_pending_cities();
  }

  /// 20 s of 200 ms pings on all three phones.
  void run_rtt() {
    if (!current_) return;
    core::obs::ScopedSpan span{"campaign.rtt", "campaign"};
    struct RttState {
      TestRecord test;
      const net::Server* server = nullptr;
      measure::AppLogger applog;
      std::vector<std::pair<radio::Technology, MilesPerHour>> tick_info;
      SimMillis start = 0;
    };
    std::array<std::optional<RttState>, radio::kCarrierCount> states;

    const geo::RoutePoint start_pt = view_.at_physical(current_->km);
    const int local_offset = geo::utc_offset_minutes(current_->tz);
    for (auto& ctx : contexts_) {
      ctx.session->set_traffic(TrafficProfile::IdlePing);
      const net::Server& server =
          fleet_.select(ctx.carrier, route_, route_.at(start_pt.km));
      states[measure::carrier_index(ctx.carrier)].emplace(RttState{
          open_test(TestType::Rtt, ctx.carrier, server.kind,
                    Direction::Downlink, false),
          &server,
          measure::AppLogger{"ping", measure::TimestampPolicy::LocalTime,
                             local_offset},
          {},
          current_->t});
    }

    const std::vector<DriveSample> ticks = take_ticks(cfg_.rtt_ticks);

    parallel_carriers([&](CarrierContext& ctx) {
      RttState& st = *states[measure::carrier_index(ctx.carrier)];
      // The ping schedule is shared by the three phones (one van, one
      // clock); every worker replays the identical offsets.
      Millis next_ping = 0.0;
      for (std::size_t i = 0; i < ticks.size(); ++i) {
        const DriveSample& s = ticks[i];
        const Millis tick_start = static_cast<Millis>(i) * kTick;
        const ran::RadioTick tick = ctx.session->tick(s, kTick);
        st.tick_info.emplace_back(tick.tech, s.speed);
        record_common(ctx, tick, s, st.test.id, Direction::Downlink);

        for (Millis p = next_ping; p < tick_start + kTick; p += 200.0) {
          Millis interruption =
              tick.interruption > 0.0 && p == next_ping ? tick.interruption
                                                        : 0.0;
          // An idle radio pays the RRC idle->connected promotion on the
          // first echo (why the paper's logger pings every 200 ms).
          interruption +=
              ctx.rrc->on_traffic(st.start + static_cast<SimMillis>(p));
          const Millis rtt = ctx.rtt_process->sample(
              tick.tech, *st.server, s.pos, s.speed, 0.0, interruption);
          st.applog.log(unix_from_sim(st.start) +
                            static_cast<UnixMillis>(p),
                        rtt);
        }
        while (next_ping < tick_start + kTick) next_ping += 200.0;
      }

      const auto series = measure::LogSynchronizer::normalize_series(
          std::move(st.applog).finish());
      for (const auto& [t, value] : series) {
        const auto idx = static_cast<std::size_t>(
            std::clamp<SimMillis>((t - st.start) / static_cast<SimMillis>(kTick),
                                  0,
                                  static_cast<SimMillis>(st.tick_info.size()) - 1));
        measure::RttRecord r;
        r.test_id = st.test.id;
        r.t = t;
        r.carrier = ctx.carrier;
        r.tech = st.tick_info[idx].first;
        r.rtt = value;
        r.speed = st.tick_info[idx].second;
        r.tz = st.test.tz;
        r.server = st.test.server;
        r.is_static = false;
        ctx.shard.rtts.push_back(r);
      }
    });

    for (auto& ctx : contexts_) {
      close_test(states[measure::carrier_index(ctx.carrier)]->test,
                 static_cast<Millis>(ticks.size()) * kTick);
    }
    drain_pending_cities();
  }

  /// One carrier's half of a lockstep link-trace collection (the per-carrier
  /// worker body of the app segments).
  LinkTrace collect_link_trace(CarrierContext& ctx,
                               const std::vector<DriveSample>& ticks,
                               const net::Server& server,
                               std::uint32_t test_id) {
    LinkTrace trace;
    ctx.session->set_traffic(TrafficProfile::Interactive);
    for (const DriveSample& s : ticks) {
      (void)ctx.rrc->on_traffic(s.t);
      const ran::RadioTick tick = ctx.session->tick(s, kTick);
      LinkTick lt;
      lt.cap_dl = tick.kpis.capacity_dl;
      if (ctx.ue_pool) {
        lt.cap_dl *= ctx.ue_pool->population_share(tick.cell_id);
      }
      lt.cap_ul = tick.kpis.capacity_ul;
      lt.rtt = ctx.rtt_process->sample(tick.tech, server, s.pos, s.speed,
                                       0.0, 0.0);
      lt.interruption = tick.interruption;
      lt.handovers = static_cast<int>(tick.handovers.size());
      lt.tech = tick.tech;
      trace.push_back(lt);
      record_link_tick(ctx, test_id, s.t, lt);
      record_common(ctx, tick, s, test_id, Direction::Uplink);
    }
    return trace;
  }

  /// Record the LinkTick an app session consumed this tick — the exact-replay
  /// table (link_ticks.csv) and the export subsystem's per-run source. Pure
  /// observation: consumes no randomness and perturbs no other table.
  static void record_link_tick(CarrierContext& ctx, std::uint32_t test_id,
                               SimMillis t, const LinkTick& lt) {
    measure::LinkTickRecord rec;
    rec.test_id = test_id;
    rec.t = t;
    rec.carrier = ctx.carrier;
    rec.tech = lt.tech;
    rec.cap_dl = lt.cap_dl;
    rec.cap_ul = lt.cap_ul;
    rec.rtt = lt.rtt;
    rec.interruption = lt.interruption;
    rec.handovers = lt.handovers;
    ctx.shard.link_ticks.push_back(rec);
  }

  void push_offload_run(CarrierContext& ctx, AppKind kind,
                        const TestRecord& test, const LinkTrace& trace,
                        const apps::OffloadRunResult& run) {
    measure::AppRunRecord r;
    r.test_id = test.id;
    r.app = kind;
    r.carrier = ctx.carrier;
    r.is_static = test.is_static;
    r.server = test.server;
    r.high_speed_5g_fraction = apps::high_speed_5g_fraction(trace);
    r.handovers = apps::total_handovers(trace);
    r.compressed = run.compressed;
    r.median_e2e = run.median_e2e;
    r.offload_fps = run.offload_fps;
    r.map_percent = run.map_percent;
    ctx.shard.app_runs.push_back(r);
    // Uplink frames leave the device.
    const double frame_kb = run.compressed
                                ? (kind == AppKind::Ar ? 50.0 : 38.0)
                                : (kind == AppKind::Ar ? 450.0 : 2000.0);
    ctx.shard.tx_bytes +=
        static_cast<double>(run.frames.size()) * frame_kb * 1024.0;
  }

  void run_offload(AppKind kind) {
    if (!current_) return;
    core::obs::ScopedSpan span{
        kind == AppKind::Ar ? "campaign.offload_ar" : "campaign.offload_cav",
        "campaign"};
    const apps::OffloadApp app{kind == AppKind::Ar ? apps::ar_config()
                                                   : apps::cav_config()};
    const TestType type =
        kind == AppKind::Ar ? TestType::ArApp : TestType::CavApp;

    for (const bool compressed : {false, true}) {
      if (!current_) return;
      std::array<const net::Server*, radio::kCarrierCount> servers{};
      std::array<std::uint32_t, radio::kCarrierCount> ids{};
      std::array<std::optional<TestRecord>, radio::kCarrierCount> tests;
      const geo::RoutePoint pt = view_.at_physical(current_->km);
      for (auto& ctx : contexts_) {
        const std::size_t ci = measure::carrier_index(ctx.carrier);
        servers[ci] = &fleet_.select(ctx.carrier, route_, route_.at(pt.km));
        tests[ci] = open_test(type, ctx.carrier, servers[ci]->kind,
                              Direction::Uplink, false);
        ids[ci] = tests[ci]->id;
      }

      const std::vector<DriveSample> ticks = take_ticks(cfg_.offload_ticks);

      parallel_carriers([&](CarrierContext& ctx) {
        const std::size_t ci = measure::carrier_index(ctx.carrier);
        const LinkTrace trace =
            collect_link_trace(ctx, ticks, *servers[ci], ids[ci]);
        const auto run = app.run(trace, compressed);
        push_offload_run(ctx, kind, *tests[ci], trace, run);
      });

      for (auto& ctx : contexts_) {
        const std::size_t ci = measure::carrier_index(ctx.carrier);
        close_test(*tests[ci], cfg_.offload_ticks * kTick);
      }
      drain_pending_cities();
    }
  }

  void run_long_app(AppKind kind) {
    if (!current_) return;
    core::obs::ScopedSpan span{
        kind == AppKind::Video ? "campaign.video" : "campaign.gaming",
        "campaign"};
    const int tick_budget =
        kind == AppKind::Video ? cfg_.video_ticks : cfg_.gaming_ticks;
    const TestType type =
        kind == AppKind::Video ? TestType::Video : TestType::Gaming;

    std::array<const net::Server*, radio::kCarrierCount> servers{};
    std::array<std::uint32_t, radio::kCarrierCount> ids{};
    std::array<std::optional<TestRecord>, radio::kCarrierCount> tests;
    const geo::RoutePoint pt = view_.at_physical(current_->km);
    for (auto& ctx : contexts_) {
      const std::size_t ci = measure::carrier_index(ctx.carrier);
      servers[ci] = &fleet_.select(ctx.carrier, route_, route_.at(pt.km));
      tests[ci] = open_test(type, ctx.carrier, servers[ci]->kind,
                            Direction::Downlink, false);
      ids[ci] = tests[ci]->id;
    }

    const std::vector<DriveSample> ticks = take_ticks(tick_budget);

    parallel_carriers([&](CarrierContext& ctx) {
      const std::size_t ci = measure::carrier_index(ctx.carrier);
      const LinkTrace trace =
          collect_link_trace(ctx, ticks, *servers[ci], ids[ci]);
      push_long_app_run(ctx, kind, *tests[ci], trace);
    });

    for (auto& ctx : contexts_) {
      const std::size_t ci = measure::carrier_index(ctx.carrier);
      close_test(*tests[ci], tick_budget * kTick);
    }
    drain_pending_cities();
  }

  void push_long_app_run(CarrierContext& ctx, AppKind kind,
                         const TestRecord& test, const LinkTrace& trace) {
    measure::AppRunRecord r;
    r.test_id = test.id;
    r.app = kind;
    r.carrier = ctx.carrier;
    r.is_static = test.is_static;
    r.server = test.server;
    r.high_speed_5g_fraction = apps::high_speed_5g_fraction(trace);
    r.handovers = apps::total_handovers(trace);
    if (kind == AppKind::Video) {
      apps::VideoConfig vc;
      vc.run_duration = static_cast<Millis>(trace.size()) * kTick;
      const auto run = apps::VideoApp{vc}.run(trace);
      r.qoe = run.avg_qoe;
      r.rebuffer_fraction = run.rebuffer_fraction;
      r.avg_bitrate = run.avg_bitrate;
      ctx.shard.rx_bytes += run.avg_bitrate * 1e6 / 8.0 *
                            (vc.run_duration / 1000.0);
    } else {
      apps::GamingConfig gc;
      gc.run_duration = static_cast<Millis>(trace.size()) * kTick;
      const auto run = apps::GamingApp{gc}.run(trace);
      r.gaming_bitrate = run.median_bitrate;
      r.gaming_latency = run.median_latency;
      r.gaming_frame_drop = run.median_frame_drop;
      r.gaming_max_frame_drop = run.max_frame_drop;
      ctx.shard.rx_bytes += run.median_bitrate * 1e6 / 8.0 *
                            (gc.run_duration / 1000.0);
    }
    ctx.shard.app_runs.push_back(r);
  }

  /// Handover records, coverage tracking, unique-cell bookkeeping shared by
  /// every active test tick. Runs on the carrier's worker: it touches only
  /// the carrier's shard, coverage tracker and the carrier's own slot of
  /// db_.active_cells.
  void record_common(CarrierContext& ctx, const ran::RadioTick& tick,
                     const DriveSample& s, std::uint32_t test_id,
                     Direction dir) {
    const std::size_t ci = measure::carrier_index(ctx.carrier);
    for (const auto& ho : tick.handovers) {
      ctx.shard.handovers.push_back({test_id, ctx.carrier, dir, ho});
    }
    ctx.active_coverage.observe(s.km / cfg_.scale, tick.tech);
    db_.active_cells[ci].insert(tick.cell_id);
    if (tick.anchor_cell_id != 0) {
      db_.active_cells[ci].insert(tick.anchor_cell_id);
    }
  }

  /// The per-carrier plan of one city's static battery: the session (absent
  /// when the carrier has no high-speed 5G site there, as in the paper) and
  /// the pre-opened test records in canonical per-carrier order.
  struct BatteryPlan {
    std::optional<ran::StaticSession> session;
    const net::Server* server = nullptr;
    std::vector<TestRecord> tests;
    std::vector<Millis> durations;
  };

  void run_static_battery(std::size_t city) {
    core::obs::ScopedSpan span{"campaign.static_battery", "campaign"};
    const Km city_km = view_.physical_city_km(city);
    const geo::RoutePoint city_pt = route_.at(route_.city_km(city));
    const SimMillis t0 = current_ ? current_->t : last_t_;

    std::array<BatteryPlan, radio::kCarrierCount> plans;
    for (auto& ctx : contexts_) {
      BatteryPlan& plan = plans[measure::carrier_index(ctx.carrier)];
      plan.session = ran::StaticSession::try_create(
          *ctx.deployment, city_km, 10.0, ctx.rng.fork("static", city));
      if (!plan.session.has_value()) continue;  // omitted, as in the paper
      plan.server = &fleet_.select(ctx.carrier, route_, city_pt);

      auto open_static = [&](TestType type, Direction dir, int n_ticks) {
        TestRecord t =
            open_test(type, ctx.carrier, plan.server->kind, dir, true);
        t.tz = city_pt.tz;
        t.start = t0;
        plan.tests.push_back(t);
        plan.durations.push_back(n_ticks * kTick);
      };
      open_static(TestType::DownlinkBulk, Direction::Downlink,
                  cfg_.bulk_ticks);
      open_static(TestType::UplinkBulk, Direction::Uplink, cfg_.bulk_ticks);
      open_static(TestType::Rtt, Direction::Downlink, cfg_.rtt_ticks);
      if (cfg_.run_apps) {
        open_static(TestType::ArApp, Direction::Uplink, cfg_.offload_ticks);
        open_static(TestType::ArApp, Direction::Uplink, cfg_.offload_ticks);
        open_static(TestType::CavApp, Direction::Uplink, cfg_.offload_ticks);
        open_static(TestType::CavApp, Direction::Uplink, cfg_.offload_ticks);
        open_static(TestType::Video, Direction::Downlink, cfg_.video_ticks);
        open_static(TestType::Gaming, Direction::Downlink,
                    cfg_.gaming_ticks);
      }
    }

    parallel_carriers([&](CarrierContext& ctx) {
      BatteryPlan& plan = plans[measure::carrier_index(ctx.carrier)];
      if (!plan.session.has_value()) return;
      run_static_battery_for(ctx, plan, city_pt, city, t0);
    });

    for (auto& ctx : contexts_) {
      BatteryPlan& plan = plans[measure::carrier_index(ctx.carrier)];
      for (std::size_t i = 0; i < plan.tests.size(); ++i) {
        close_test(plan.tests[i], plan.durations[i]);
      }
    }
  }

  /// One carrier's whole static battery, on that carrier's worker.
  void run_static_battery_for(CarrierContext& ctx, BatteryPlan& plan,
                              const geo::RoutePoint& city_pt,
                              std::size_t city, SimMillis t0) {
    ran::StaticSession& session = *plan.session;
    const net::Server& server = *plan.server;
    std::size_t ti = 0;  // cursor into plan.tests, in open order

    // Bulk transfers, both directions.
    for (const Direction dir :
         {Direction::Downlink, Direction::Uplink}) {
      const TestRecord& test = plan.tests[ti++];
      transport::TcpBulkFlow flow{
          net::base_rtt(ctx.carrier, session.tech(), server, city_pt.pos),
          ctx.rng.fork("static-bulk", city * 2 + (dir == Direction::Uplink))};
      for (int i = 0; i < cfg_.bulk_ticks; ++i) {
        const ran::RadioTick tick = session.tick(kTick);
        Mbps cap = tick.kpis.capacity(dir);
        if (ctx.ue_pool && dir == Direction::Downlink) {
          cap *= ctx.ue_pool->population_share(tick.cell_id);
        }
        const double bytes = flow.advance(cap, kTick);
        DriveSample fake;
        fake.t = t0 + static_cast<SimMillis>(i * kTick);
        fake.km = view_.physical_city_km(city);
        fake.pos = city_pt.pos;
        fake.speed = 0.0;
        fake.region = geo::RegionType::Urban;
        fake.tz = city_pt.tz;
        KpiRecord k = make_kpi(ctx, tick, fake, test.id, dir, server.kind,
                               true);
        k.throughput = bytes * 8.0 / 1e6 / (kTick / 1000.0);
        ctx.shard.kpis.push_back(k);
      }
    }

    // Ping test.
    {
      const TestRecord& test = plan.tests[ti++];
      for (int i = 0; i < cfg_.rtt_ticks; ++i) {
        const ran::RadioTick tick = session.tick(kTick);
        const int pings = i % 2 == 0 ? 2 : 3;
        for (int p = 0; p < pings; ++p) {
          measure::RttRecord r;
          r.test_id = test.id;
          r.t = t0 + static_cast<SimMillis>(i * kTick) + p * 200;
          r.carrier = ctx.carrier;
          r.tech = tick.tech;
          r.rtt = ctx.rtt_process->sample(tick.tech, server, city_pt.pos,
                                          0.0, 0.0, 0.0);
          r.speed = 0.0;
          r.tz = city_pt.tz;
          r.server = server.kind;
          r.is_static = true;
          ctx.shard.rtts.push_back(r);
        }
      }
    }

    if (!cfg_.run_apps) return;

    auto make_trace = [&](std::uint32_t test_id, int n_ticks) {
      LinkTrace trace;
      for (int i = 0; i < n_ticks; ++i) {
        const ran::RadioTick tick = session.tick(kTick);
        LinkTick lt;
        lt.cap_dl = tick.kpis.capacity_dl;
        if (ctx.ue_pool) {
          lt.cap_dl *= ctx.ue_pool->population_share(tick.cell_id);
        }
        lt.cap_ul = tick.kpis.capacity_ul;
        lt.rtt = ctx.rtt_process->sample(tick.tech, server, city_pt.pos, 0.0,
                                         0.0, 0.0);
        lt.tech = tick.tech;
        trace.push_back(lt);
        record_link_tick(ctx, test_id,
                         t0 + static_cast<SimMillis>(i * kTick), lt);
      }
      return trace;
    };

    for (const AppKind kind : {AppKind::Ar, AppKind::Cav}) {
      const apps::OffloadApp app{kind == AppKind::Ar ? apps::ar_config()
                                                     : apps::cav_config()};
      for (const bool compressed : {false, true}) {
        const TestRecord& test = plan.tests[ti++];
        const LinkTrace trace = make_trace(test.id, cfg_.offload_ticks);
        push_offload_run(ctx, kind, test, trace, app.run(trace, compressed));
      }
    }
    for (const AppKind kind : {AppKind::Video, AppKind::Gaming}) {
      const TestRecord& test = plan.tests[ti++];
      const int n_ticks =
          kind == AppKind::Video ? cfg_.video_ticks : cfg_.gaming_ticks;
      const LinkTrace trace = make_trace(test.id, n_ticks);
      push_long_app_run(ctx, kind, test, trace);
    }
  }

  void finalize() {
    drain_pending_cities();
    if (!pending_passive_.empty()) {
      // Trailing idle ticks produced samples after the last fan-out; flush
      // them to the passive loggers.
      parallel_carriers([](CarrierContext&) {});
    }
    for (auto& ctx : contexts_) {
      const std::size_t ci = measure::carrier_index(ctx.carrier);
      db_.passive[ci] = std::move(*ctx.passive).finish();
      db_.active_coverage[ci] = std::move(ctx.active_coverage).finish();
    }
    // Drain the population's per-cell aggregates in canonical carrier order
    // (cell_load() is sorted by cell id within each carrier).
    for (auto& ctx : contexts_) {
      if (!ctx.ue_pool) continue;
      for (const ran::CellLoadSummary& s : ctx.ue_pool->cell_load()) {
        measure::CellLoadRecord r;
        r.carrier = ctx.carrier;
        r.cell_id = s.cell_id;
        r.tech = s.tech;
        r.ticks = s.ticks;
        r.avg_attached = s.avg_attached;
        r.avg_active = s.avg_active;
        r.avg_demand = s.avg_demand;
        r.avg_allocated = s.avg_allocated;
        r.avg_capacity = s.avg_capacity;
        r.utilization = s.utilization;
        r.fairness = s.fairness;
        db_.cell_load.push_back(r);
      }
    }
  }

  CampaignConfig cfg_;
  Rng root_;
  geo::Route route_;
  geo::ScaledRoute view_;
  net::ServerFleet fleet_;
  geo::DriveTraceGenerator trace_gen_;
  std::array<CarrierContext, radio::kCarrierCount> contexts_;
  std::optional<DriveSample> current_;
  ConsolidatedDb db_;
  std::uint32_t next_test_id_ = 1;
  int cycle_ = 0;
  std::array<bool, 16> visited_city_{};
  /// Samples produced but not yet fed to the passive loggers.
  std::vector<DriveSample> pending_passive_;
  /// Cities reached but whose static battery has not run yet.
  std::deque<std::size_t> pending_cities_;
  SimMillis last_t_ = 0;
  core::ThreadPool pool_;
};

}  // namespace

ConsolidatedDb DriveCampaign::run() const {
  CampaignRunner runner{config_};
  return runner.run();
}

core::obs::RunManifest run_to_bundle(const CampaignConfig& cfg,
                                     const std::string& directory,
                                     bool canonical_provenance) {
  core::obs::RunManifest manifest = make_manifest(cfg);
  if (canonical_provenance) core::obs::canonicalize_provenance(manifest);
  const ConsolidatedDb db = DriveCampaign{cfg}.run();
  measure::write_dataset(db, directory, manifest);
  return manifest;
}

}  // namespace wheels::campaign

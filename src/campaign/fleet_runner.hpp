// FleetRunner: campaign-level parallelism.
//
// The ablation and bootstrap benches run many *independent* campaigns —
// different seeds, scenario overrides, scales. FleetRunner fans those
// (seed, CampaignConfig) jobs across a work-stealing thread pool
// (core::ThreadPool) and returns the databases in submission order.
//
// Because a campaign's ConsolidatedDb is invariant to its own thread count
// (see campaign.hpp), FleetRunner forces every inner campaign to the serial
// path (threads = 1) and spends all parallelism at the fleet level — the
// efficient shape when jobs outnumber cores — without changing a single
// output byte.
#pragma once

#include <vector>

#include "campaign/campaign.hpp"

namespace wheels::campaign {

class FleetRunner {
 public:
  /// `threads` = total concurrent campaigns (the calling thread works too).
  /// 0 = auto: WHEELS_THREADS, else hardware_concurrency.
  explicit FleetRunner(int threads = 0);

  int threads() const { return threads_; }

  /// Run every campaign and return the databases in submission order,
  /// regardless of thread count or completion order.
  std::vector<measure::ConsolidatedDb> run_all(
      std::vector<CampaignConfig> configs) const;

 private:
  int threads_;
};

}  // namespace wheels::campaign

// FleetRunner: campaign-level parallelism.
//
// The ablation and bootstrap benches run many *independent* campaigns —
// different seeds, scenario overrides, scales. FleetRunner fans those
// (seed, CampaignConfig) jobs across a work-stealing thread pool
// (core::ThreadPool) and returns the databases in submission order.
//
// Because a campaign's ConsolidatedDb is invariant to its own thread count
// (see campaign.hpp), FleetRunner forces every inner campaign to the serial
// path (threads = 1) and spends all parallelism at the fleet level — the
// efficient shape when jobs outnumber cores — without changing a single
// output byte.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "campaign/campaign.hpp"

namespace wheels::campaign {

/// Slot-ordered fan-out: run `job(i)` for every i in [0, jobs) across a
/// work-stealing pool `threads` wide (0 = auto: WHEELS_THREADS, else
/// hardware_concurrency; the calling thread participates, so `threads` jobs
/// run concurrently). Blocks until every job completed.
///
/// This is the deterministic-fleet discipline shared by FleetRunner and
/// replay::ReplayFleet: each job writes only its own pre-allocated result
/// slot, so no lock is needed and downstream merges that read the slots in
/// index order produce identical output for every thread count.
void run_indexed(int threads, std::size_t jobs,
                 const std::function<void(std::size_t)>& job);

class FleetRunner {
 public:
  /// `threads` = total concurrent campaigns (the calling thread works too).
  /// 0 = auto: WHEELS_THREADS, else hardware_concurrency.
  explicit FleetRunner(int threads = 0);

  int threads() const { return threads_; }

  /// Run every campaign and return the databases in submission order,
  /// regardless of thread count or completion order.
  std::vector<measure::ConsolidatedDb> run_all(
      std::vector<CampaignConfig> configs) const;

 private:
  int threads_;
};

}  // namespace wheels::campaign

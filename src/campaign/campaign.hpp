// DriveCampaign: the public entry point of the library.
//
// Re-enacts the paper's 8-day LA→Boston measurement campaign: three carrier
// phones in one van run round-robin tests (30 s nuttcp DL, 30 s nuttcp UL,
// 20 s ping, AR ×2, CAV ×2, periodic 3-min 360° video and 1-min cloud
// gaming) against the timezone-appropriate cloud server (or a Wavelength
// edge for Verizon near edge cities), while three more phones passively log
// handovers with 200 ms pings, and static baseline tests run in each major
// city in front of the best high-speed 5G site. Every throughput/RTT test's
// data flows through the XCAL `.drm` + app-log + LogSynchronizer pipeline
// before landing in the ConsolidatedDb.
//
// The whole campaign is deterministic in (seed, config) — including across
// thread counts: the three carrier pipelines are computationally independent
// (core::Rng::fork gives each subsystem its own stream) and their records
// are merged into the ConsolidatedDb in canonical carrier order, so
// WHEELS_THREADS only changes wall-clock time, never a single byte of the
// database.
#pragma once

#include <cstdint>

#include "core/obs/manifest.hpp"
#include "measure/records.hpp"
#include "radio/deployment.hpp"
#include "ran/scheduler.hpp"

namespace wheels::campaign {

struct CampaignConfig {
  std::uint64_t seed = 20220808;
  /// Fraction of the full 5,711 km trip to drive (map compressed, see
  /// geo::ScaledRoute). 1.0 reproduces the paper; benches use ~0.05-0.2.
  double scale = 1.0;
  /// Run the four killer-app tests (AR/CAV every cycle, video & gaming every
  /// `long_app_stride` cycles — they are long).
  bool run_apps = true;
  int long_app_stride = 4;
  /// Run static city baselines.
  bool run_static = true;
  /// Idle ticks (500 ms each) inserted between round-robin cycles.
  int idle_ticks_between_cycles = 0;

  /// What-if deployment scaling (1.0 everywhere = the paper's 2022 world).
  radio::DeploymentOverrides deployment;

  /// Test durations (ticks of 500 ms), defaults per the paper.
  int bulk_ticks = 60;      // 30 s
  int rtt_ticks = 40;       // 20 s
  int offload_ticks = 40;   // 20 s per AR/CAV run
  int video_ticks = 360;    // 180 s
  int gaming_ticks = 120;   // 60 s

  /// Worker threads for the per-carrier pipelines (radio ticks, transport,
  /// apps, passive logging). 0 = auto (WHEELS_THREADS, else
  /// hardware_concurrency); 1 = the legacy serial path. The resulting
  /// ConsolidatedDb is byte-identical for every value — see
  /// docs/ARCHITECTURE.md, "Parallel execution".
  int threads = 0;

  /// Size of the simulated background UE population (ran::UePool), split
  /// evenly across the three carriers; the measurement phones then share
  /// each cell's downlink with the population (WHEELS_UES). 0 — the default
  /// — disables the pool entirely and reproduces the six-handset paper
  /// campaign byte-for-byte; see docs/SCALING.md.
  int population = 0;
  /// Per-cell scheduling discipline of the population (WHEELS_SCHEDULER:
  /// "pf" or "rr"). No effect when population == 0.
  ran::SchedulerKind scheduler = ran::SchedulerKind::ProportionalFair;
};

/// Reads WHEELS_SCALE / WHEELS_SEED / WHEELS_THREADS / WHEELS_UES /
/// WHEELS_SCHEDULER from the environment (used by the bench binaries so one
/// knob tunes the whole suite). Falls back to the defaults; malformed values
/// warn on stderr (core::env_int / core::env_double) instead of silently
/// parsing as 0.
CampaignConfig config_from_env(double default_scale = 0.08);

/// The provenance manifest of a campaign about to run with `cfg`: seed,
/// scale, resolved thread count, and the FNV-1a digest of every field that
/// influences the produced data (threads is recorded but excluded from the
/// digest — it never changes a byte of the database). Pass to
/// measure::write_dataset so the bundle's manifest.json identifies the run.
core::obs::RunManifest make_manifest(const CampaignConfig& cfg);

/// Run the campaign and write the resulting dataset bundle into `directory`
/// (the callable job entry point wheelsd schedules). Returns the manifest
/// the bundle was written with. With `canonical_provenance`, the manifest's
/// wall-clock/threads fields are pinned (core::obs::canonicalize_provenance)
/// so identical configs produce byte-identical bundles — the result-cache
/// contract.
core::obs::RunManifest run_to_bundle(const CampaignConfig& cfg,
                                     const std::string& directory,
                                     bool canonical_provenance = false);

class DriveCampaign {
 public:
  explicit DriveCampaign(CampaignConfig config) : config_(config) {}

  /// Run the whole campaign and return the consolidated database.
  measure::ConsolidatedDb run() const;

  const CampaignConfig& config() const { return config_; }

 private:
  CampaignConfig config_;
};

}  // namespace wheels::campaign

#include "apps/offload.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace wheels::apps {

OffloadConfig ar_config() {
  return OffloadConfig{30.0, 450.0, 50.0, 6.3, 24.9, 1.0, 20'000.0, 4.0};
}

OffloadConfig cav_config() {
  return OffloadConfig{10.0, 2000.0, 38.0, 34.8, 44.0, 19.1, 20'000.0, 8.0};
}

namespace {

// Table 5 of the paper: mAP (%) per E2E-latency bin (in frame times), with
// the Argoverse dataset, Faster R-CNN on the server and local tracking on
// the device.
constexpr std::array<double, 30> kMapNoCompression{
    38.45, 37.22, 36.04, 34.65, 33.36, 32.20, 31.08, 28.03, 27.01, 25.62,
    25.77, 23.29, 22.75, 22.48, 21.59, 20.59, 20.11, 19.53, 18.40, 18.01,
    17.52, 16.96, 16.59, 15.41, 15.78, 15.86, 14.81, 14.70, 14.44, 14.05};

constexpr std::array<double, 30> kMapWithCompression{
    38.45, 36.14, 34.75, 33.12, 31.82, 30.50, 29.53, 26.99, 25.73, 25.21,
    24.35, 22.44, 21.56, 21.64, 21.16, 20.35, 19.69, 18.95, 17.61, 17.85,
    17.00, 16.55, 15.97, 15.16, 14.94, 15.37, 14.71, 13.77, 13.62, 13.70};

}  // namespace

double map_from_latency(Millis e2e_latency, double fps, bool compressed) {
  const double frame_time = 1000.0 / fps;
  const int bin = std::max(0, static_cast<int>(e2e_latency / frame_time));
  const auto& table = compressed ? kMapWithCompression : kMapNoCompression;
  if (bin < static_cast<int>(table.size())) {
    return table[static_cast<std::size_t>(bin)];
  }
  // Past the table, local tracking keeps decaying gently toward a floor.
  const double last = table.back();
  return std::max(5.0, last - 0.35 * (bin - (static_cast<int>(table.size()) - 1)));
}

Millis OffloadApp::transfer_end(const LinkTrace& link, Millis start, double kb,
                                bool uplink) const {
  double remaining_bits = kb * 1024.0 * 8.0;
  Millis t = start;
  const Millis deadline = start + 15'000.0;  // give up on a dead link
  while (remaining_bits > 0.0 && t < deadline) {
    const LinkTick& tick = tick_at(link, t);
    const Mbps rate = std::max(uplink ? tick.cap_ul : tick.cap_dl, 0.01);
    const Millis tick_end =
        (std::floor(t / kLinkTickMs) + 1.0) * kLinkTickMs;
    const Millis window = std::min(tick_end - t, deadline - t);
    const double can_move = rate * 1e6 / 1000.0 * window;  // bits in window
    if (can_move >= remaining_bits) {
      t += remaining_bits / (rate * 1e6 / 1000.0);
      remaining_bits = 0.0;
    } else {
      remaining_bits -= can_move;
      t = tick_end;
    }
  }
  return t;
}

OffloadRunResult OffloadApp::run(const LinkTrace& link, bool compressed) const {
  OffloadRunResult result;
  result.compressed = compressed;
  if (link.empty()) return result;

  const Millis frame_period = 1000.0 / config_.fps;
  Millis pipeline_free_at = 0.0;
  double map_sum = 0.0;

  for (Millis arrival = 0.0; arrival < config_.run_duration;
       arrival += frame_period) {
    if (arrival < pipeline_free_at) continue;  // local tracking handles it

    Millis t = arrival;
    if (compressed) t += config_.compression_ms;
    const double upload_kb = compressed ? config_.compressed_kb : config_.raw_kb;

    // App-protocol request overhead (half an RTT before the upload starts),
    // half an RTT for the last byte to reach the server, half for the first
    // response byte back: 1.5 RTT total per frame, as an HTTP-like
    // request/response offload pipeline pays.
    const Millis rtt = tick_at(link, t).rtt;
    t += rtt / 2.0;
    t = transfer_end(link, t, upload_kb, /*uplink=*/true);
    t += rtt / 2.0;
    t += config_.inference_ms;
    t = transfer_end(link, t, config_.result_kb, /*uplink=*/false);
    t += rtt / 2.0;
    if (compressed) t += config_.decompression_ms;

    OffloadFrame frame;
    frame.offload_start = arrival;
    frame.e2e_latency = t - arrival;
    result.frames.push_back(frame);
    map_sum += map_from_latency(frame.e2e_latency, config_.fps, compressed);
    pipeline_free_at = t;
  }

  if (!result.frames.empty()) {
    std::vector<Millis> lats;
    lats.reserve(result.frames.size());
    for (const auto& f : result.frames) lats.push_back(f.e2e_latency);
    std::nth_element(lats.begin(), lats.begin() + lats.size() / 2, lats.end());
    result.median_e2e = lats[lats.size() / 2];
    result.offload_fps = static_cast<double>(result.frames.size()) /
                         (config_.run_duration / 1000.0);
    result.map_percent = map_sum / static_cast<double>(result.frames.size());
  }
  return result;
}

}  // namespace wheels::apps

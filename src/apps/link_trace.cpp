#include "apps/link_trace.hpp"

#include <algorithm>

namespace wheels::apps {

double high_speed_5g_fraction(const LinkTrace& trace) {
  if (trace.empty()) return 0.0;
  int hs = 0;
  for (const LinkTick& t : trace) hs += radio::is_high_speed_5g(t.tech);
  return static_cast<double>(hs) / static_cast<double>(trace.size());
}

int total_handovers(const LinkTrace& trace) {
  int n = 0;
  for (const LinkTick& t : trace) n += t.handovers;
  return n;
}

const LinkTick& tick_at(const LinkTrace& trace, Millis t) {
  const auto idx = static_cast<std::size_t>(std::max(0.0, t) / kLinkTickMs);
  return trace[std::min(idx, trace.size() - 1)];
}

}  // namespace wheels::apps

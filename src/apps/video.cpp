#include "apps/video.hpp"

#include <algorithm>
#include <cmath>

namespace wheels::apps {

std::string_view abr_kind_name(AbrKind k) {
  return k == AbrKind::BufferBased ? "buffer-based (BBA)" : "rate-based";
}

Mbps VideoApp::select_bitrate(double buffer_s) const {
  const auto& ladder = config_.ladder;  // descending
  if (buffer_s <= config_.reservoir_s) return ladder.back();
  if (buffer_s >= config_.cushion_s) return ladder.front();
  // Linear map across the cushion, quantised down to a ladder rung.
  const double t = (buffer_s - config_.reservoir_s) /
                   (config_.cushion_s - config_.reservoir_s);
  const Mbps target = ladder.back() + t * (ladder.front() - ladder.back());
  for (Mbps rate : ladder) {
    if (rate <= target) return rate;
  }
  return ladder.back();
}

Mbps VideoApp::select_bitrate_rate_based(Mbps estimated_throughput) const {
  constexpr double kSafety = 0.8;
  for (Mbps rate : config_.ladder) {  // descending
    if (rate <= kSafety * estimated_throughput) return rate;
  }
  return config_.ladder.back();
}

VideoRunResult VideoApp::run(const LinkTrace& link) const {
  VideoRunResult result;
  if (link.empty()) return result;

  double buffer_s = 0.0;
  Millis now = 0.0;
  Mbps prev_bitrate = 0.0;
  bool first_chunk = true;
  Mbps est_throughput = config_.ladder.back();  // conservative start

  while (now < config_.run_duration) {
    const Mbps bitrate = config_.abr == AbrKind::BufferBased
                             ? select_bitrate(buffer_s)
                             : select_bitrate_rate_based(est_throughput);
    const double chunk_bits = bitrate * 1e6 * (config_.chunk_duration / 1000.0);

    // Download the chunk across the tick-varying capacity. Each chunk is a
    // fresh HTTP request: 1.5 RTT of request/response overhead plus a
    // slow-start ramp before the transfer reaches line rate.
    Millis t = now + 1.5 * tick_at(link, now).rtt;
    const Millis transfer_start = t;
    double remaining = chunk_bits;
    const Millis deadline = now + 60'000.0;
    while (remaining > 0.0 && t < deadline && t < config_.run_duration) {
      const LinkTick& tick = tick_at(link, t);
      const double ramp =
          std::min(1.0, (t - transfer_start + 100.0) / (8.0 * tick.rtt));
      const Mbps rate = std::max(tick.cap_dl * ramp, 0.01);
      const Millis tick_end = (std::floor(t / kLinkTickMs) + 1.0) * kLinkTickMs;
      const Millis window = std::min(tick_end - t, deadline - t);
      const double can = rate * 1e3 * window;  // bits in `window` ms
      if (can >= remaining) {
        t += remaining / (rate * 1e3);
        remaining = 0.0;
      } else {
        remaining -= can;
        t = tick_end;
      }
    }
    const Millis download_time = t - now;
    if (download_time > 1.0) {
      const Mbps measured = chunk_bits / 1e3 / download_time;  // Mbps
      est_throughput = 0.6 * est_throughput + 0.4 * measured;
    }

    // Playback drains the buffer while downloading.
    const double drained_s = download_time / 1000.0;
    Millis rebuffer = 0.0;
    if (drained_s > buffer_s) {
      rebuffer = (drained_s - buffer_s) * 1000.0;
      buffer_s = 0.0;
    } else {
      buffer_s -= drained_s;
    }
    buffer_s += config_.chunk_duration / 1000.0;

    ChunkStat chunk;
    chunk.bitrate = bitrate;
    chunk.download_time = download_time;
    chunk.rebuffer_time = rebuffer;
    const double switch_penalty =
        first_chunk ? 0.0 : config_.lambda * std::abs(bitrate - prev_bitrate);
    chunk.qoe = bitrate - switch_penalty - config_.mu * (rebuffer / 1000.0);
    result.chunks.push_back(chunk);

    prev_bitrate = bitrate;
    first_chunk = false;
    now = t;

    // Client-side pacing: if the buffer is full, wait before the next fetch.
    if (buffer_s > config_.max_buffer_s) {
      const double wait_s = buffer_s - config_.max_buffer_s;
      now += wait_s * 1000.0;
      buffer_s = config_.max_buffer_s;
    }
  }

  if (!result.chunks.empty()) {
    double qoe = 0.0, rate = 0.0, rebuf = 0.0;
    for (const auto& c : result.chunks) {
      qoe += c.qoe;
      rate += c.bitrate;
      rebuf += c.rebuffer_time;
    }
    const double n = static_cast<double>(result.chunks.size());
    result.avg_qoe = qoe / n;
    result.avg_bitrate = rate / n;
    result.rebuffer_fraction = rebuf / config_.run_duration;
  }
  return result;
}

}  // namespace wheels::apps

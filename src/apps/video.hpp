// 360° video streaming client (paper §7.2, Appendix D).
//
// A Puffer-style server streams 2-second chunks encoded at four quality
// levels (100/50/10/5 Mbps). The client runs BBA — buffer-based adaptation
// [27]: bitrate is a pure function of buffer occupancy (reservoir/cushion),
// no capacity estimation. QoE follows [53]:
//   QoE_k = B_k − λ·|B_k − B_{k−1}| − μ·T_k,   λ = 1, μ = 100 (per second),
// averaged over the chunks of a 3-minute session.
#pragma once

#include <string_view>
#include <vector>

#include "apps/link_trace.hpp"
#include "core/units.hpp"

namespace wheels::apps {

/// ABR algorithm. The paper customises Puffer to run BBA; RateBased is the
/// classic throughput-prediction alternative, kept for the ABR ablation
/// bench (ablation_abr).
enum class AbrKind { BufferBased, RateBased };

std::string_view abr_kind_name(AbrKind k);

struct VideoConfig {
  AbrKind abr = AbrKind::BufferBased;
  std::vector<Mbps> ladder{100.0, 50.0, 10.0, 5.0};  // descending
  Millis chunk_duration = 2'000.0;
  Millis run_duration = 180'000.0;
  /// BBA reservoir / cushion (seconds of buffer).
  double reservoir_s = 5.0;
  double cushion_s = 15.0;
  double lambda = 1.0;   // bitrate-switch penalty weight
  double mu = 100.0;     // rebuffer penalty weight (per second)
  double max_buffer_s = 30.0;
};

struct ChunkStat {
  Mbps bitrate = 0.0;
  Millis download_time = 0.0;
  Millis rebuffer_time = 0.0;
  double qoe = 0.0;
};

struct VideoRunResult {
  std::vector<ChunkStat> chunks;
  double avg_qoe = 0.0;
  Mbps avg_bitrate = 0.0;
  /// Rebuffer time as a fraction of the session duration.
  double rebuffer_fraction = 0.0;
};

class VideoApp {
 public:
  explicit VideoApp(VideoConfig config = {}) : config_(config) {}

  VideoRunResult run(const LinkTrace& link) const;

  /// BBA bitrate choice for a buffer level (seconds).
  Mbps select_bitrate(double buffer_s) const;

  /// Rate-based choice: highest rung below `safety` x estimated throughput.
  Mbps select_bitrate_rate_based(Mbps estimated_throughput) const;

  const VideoConfig& config() const { return config_; }

 private:
  VideoConfig config_;
};

}  // namespace wheels::apps

// The link-state view applications run over.
//
// The campaign produces one LinkTick per 500 ms of a test run (capacity in
// both directions, path RTT, handover interruptions, serving technology).
// Apps consume the trace at their own granularity, interpolating within
// ticks. This mirrors the paper's methodology: apps ran over whatever the
// radio link gave them, while XCAL logged the same 500 ms intervals.
#pragma once

#include <vector>

#include "core/units.hpp"
#include "radio/technology.hpp"

namespace wheels::apps {

struct LinkTick {
  Mbps cap_dl = 0.0;
  Mbps cap_ul = 0.0;
  Millis rtt = 50.0;
  /// Handover interruption within this tick.
  Millis interruption = 0.0;
  int handovers = 0;
  radio::Technology tech = radio::Technology::Lte;
};

using LinkTrace = std::vector<LinkTick>;

inline constexpr Millis kLinkTickMs = 500.0;

/// Fraction of the run spent on high-speed 5G (midband/mmWave) — the x-axis
/// of the paper's Fig. 13b/14b/15b app scatter plots.
double high_speed_5g_fraction(const LinkTrace& trace);

/// Total handovers across the run.
int total_handovers(const LinkTrace& trace);

/// Link state at an arbitrary millisecond offset into the run (clamped).
const LinkTick& tick_at(const LinkTrace& trace, Millis t);

}  // namespace wheels::apps

// Canonical edge-assisted AR / CAV offloading app (paper §7.1, Appendix C).
//
// An Android app offloads camera frames (AR) or LIDAR point clouds (CAV) to
// a GPU server in a best-effort manner: while an offload is in flight,
// incoming frames are handled by on-device local tracking and skipped. The
// per-frame pipeline is
//   compress → upload → server inference → download result → decompress
// with the Table 4 constants. For the AR app, object detection accuracy
// (mAP) is derived from the E2E latency via the paper's Table 5 lookup.
#pragma once

#include <optional>
#include <vector>

#include "apps/link_trace.hpp"
#include "core/units.hpp"

namespace wheels::apps {

/// Table 4 of the paper.
struct OffloadConfig {
  double fps = 30.0;
  double raw_kb = 450.0;
  double compressed_kb = 50.0;
  Millis compression_ms = 6.3;
  Millis inference_ms = 24.9;
  Millis decompression_ms = 1.0;
  Millis run_duration = 20'000.0;
  /// Server result payload (bounding boxes / fused view), KB.
  double result_kb = 4.0;
};

OffloadConfig ar_config();
OffloadConfig cav_config();

/// Table 5: object detection accuracy (mAP, %) from E2E latency measured in
/// frame times, with and without frame compression.
double map_from_latency(Millis e2e_latency, double fps, bool compressed);

struct OffloadFrame {
  Millis offload_start = 0.0;
  Millis e2e_latency = 0.0;
};

struct OffloadRunResult {
  std::vector<OffloadFrame> frames;  // frames actually offloaded
  Millis median_e2e = 0.0;
  double offload_fps = 0.0;
  /// AR only; mean Table 5 accuracy across offloaded frames.
  double map_percent = 0.0;
  bool compressed = false;
};

class OffloadApp {
 public:
  explicit OffloadApp(OffloadConfig config) : config_(config) {}

  /// Run one 20 s session over the link trace.
  OffloadRunResult run(const LinkTrace& link, bool compressed) const;

  const OffloadConfig& config() const { return config_; }

 private:
  /// Time to move `kb` kilobytes starting at time `t`, walking the
  /// tick-varying capacity; returns completion time.
  Millis transfer_end(const LinkTrace& link, Millis start, double kb,
                      bool uplink) const;

  OffloadConfig config_;
};

}  // namespace wheels::apps

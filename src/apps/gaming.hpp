// Cloud gaming over Steam Remote Play (paper §7.3, Appendix E).
//
// The server streams 4K@60FPS video whose bitrate is chosen by an adaptive
// bitrate controller capped at 100 Mbps (the platform's maximum target). The
// paper's observation: the adapter keeps the frame drop rate low by lowering
// the frame rate / bitrate, trading latency instead. Metrics per run: send
// bitrate (Mbps), network latency (ms), frame drop rate (%).
#pragma once

#include <vector>

#include "apps/link_trace.hpp"
#include "core/units.hpp"

namespace wheels::apps {

struct GamingConfig {
  double fps = 60.0;
  Mbps max_bitrate = 100.0;
  Mbps min_bitrate = 2.0;
  /// Fraction of estimated capacity the adapter targets.
  double target_utilization = 0.8;
  /// EWMA factor for capacity estimation per 500 ms interval.
  double ewma_alpha = 0.25;
  Millis run_duration = 60'000.0;
};

struct GamingInterval {
  Mbps send_bitrate = 0.0;
  Millis latency = 0.0;
  double frame_drop_rate = 0.0;  // 0..1 within the interval
};

struct GamingRunResult {
  std::vector<GamingInterval> intervals;
  Mbps median_bitrate = 0.0;
  Millis median_latency = 0.0;
  double median_frame_drop = 0.0;  // fraction
  double max_frame_drop = 0.0;
};

class GamingApp {
 public:
  explicit GamingApp(GamingConfig config = {}) : config_(config) {}

  GamingRunResult run(const LinkTrace& link) const;

  const GamingConfig& config() const { return config_; }

 private:
  GamingConfig config_;
};

}  // namespace wheels::apps

#include "apps/gaming.hpp"

#include <algorithm>
#include <cmath>

namespace wheels::apps {

namespace {

double median_of(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const auto mid = xs.begin() + static_cast<std::ptrdiff_t>(xs.size() / 2);
  std::nth_element(xs.begin(), mid, xs.end());
  return *mid;
}

}  // namespace

GamingRunResult GamingApp::run(const LinkTrace& link) const {
  GamingRunResult result;
  if (link.empty()) return result;

  // The adapter starts optimistic (a fresh session probes upward quickly).
  Mbps est_capacity = 30.0;

  for (Millis t = 0.0; t < config_.run_duration; t += kLinkTickMs) {
    const LinkTick& tick = tick_at(link, t);

    // Capacity estimate follows delivered goodput (EWMA).
    est_capacity = (1.0 - config_.ewma_alpha) * est_capacity +
                   config_.ewma_alpha * tick.cap_dl;
    const Mbps bitrate =
        std::clamp(config_.target_utilization * est_capacity,
                   config_.min_bitrate, config_.max_bitrate);

    GamingInterval iv;
    iv.send_bitrate = bitrate;

    // When the instantaneous link cannot carry the chosen bitrate, the
    // encoder's output queues: latency inflates; frames are dropped only
    // when the deficit is severe (the adapter protects the frame rate).
    const double deficit = bitrate > tick.cap_dl && tick.cap_dl > 0.0
                               ? bitrate / tick.cap_dl
                               : 1.0;
    const Millis queue_ms =
        deficit > 1.0 ? std::min((deficit - 1.0) * 120.0, 1'200.0) : 0.0;
    iv.latency = tick.rtt + queue_ms + tick.interruption;

    // Steady residual losses scale with utilisation; hard deficits add
    // bursts, but frame-rate adaptation bounds the worst case (the paper's
    // maxima stay below ~25%).
    const double utilisation =
        tick.cap_dl > 0.0 ? bitrate / tick.cap_dl : 10.0;
    double drop = 0.015 * std::min(utilisation, 1.5) +
                  std::max(0.0, (deficit - 1.3)) * 0.08;
    drop = std::min(drop, 0.30);
    // A handover interruption drops the frames in flight.
    drop = std::min(1.0, drop + tick.interruption / kLinkTickMs * 0.5);
    iv.frame_drop_rate = drop;

    result.intervals.push_back(iv);
  }

  std::vector<double> rates, lats, drops;
  for (const auto& iv : result.intervals) {
    rates.push_back(iv.send_bitrate);
    lats.push_back(iv.latency);
    drops.push_back(iv.frame_drop_rate);
    result.max_frame_drop = std::max(result.max_frame_drop,
                                     iv.frame_drop_rate);
  }
  result.median_bitrate = median_of(rates);
  result.median_latency = median_of(lats);
  result.median_frame_drop = median_of(drops);
  return result;
}

}  // namespace wheels::apps

// UePool: the batched, cache-friendly massive-UE simulation core.
//
// The paper's campaign simulates six handsets, one heap-allocated
// RadioSession each. That shape cannot scale to the population a real
// carrier serves, so the UePool keeps *all* per-UE state in parallel arrays
// (structure-of-arrays): position, velocity, traffic profile, per-tick
// demand, transmit backlog, served-rate average, RRC idle counter and the
// attached cell. One tick sweeps the arrays in fixed-size blocks fanned
// across the core::ThreadPool, then runs one per-cell scheduler
// (ran/scheduler.hpp) per occupied cell to share the cell's capacity among
// every attached UE — which turns cell load, contention and tier-policy
// fairness into first-class simulated phenomena instead of a stochastic
// stand-in.
//
// Determinism contract (the same one the campaign runner obeys, see
// docs/SCALING.md): every parallel phase writes only disjoint array slots,
// all per-tick randomness is counter-based (hash of (UE seed, tick), no
// shared generator), block boundaries are fixed by config — never by thread
// count — and block-level reductions are merged in block order. The pool's
// state after N ticks is therefore byte-identical for every WHEELS_THREADS.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/rng.hpp"
#include "core/sim_time.hpp"
#include "core/thread_pool.hpp"
#include "core/units.hpp"
#include "radio/deployment.hpp"
#include "ran/scheduler.hpp"

namespace wheels::ran {

/// The traffic classes of the simulated population (rough 2022 mobile mix).
/// Each class is a mean downlink rate, an on/off duty cycle and a backlog
/// ceiling; per-UE per-tick draws perturb the rate.
enum class UeProfile : std::uint8_t { Idle, Web, Audio, Video, Bulk };
inline constexpr int kUeProfileCount = 5;

std::string_view ue_profile_name(UeProfile p);

struct UePoolConfig {
  /// Population size. 0 is a valid (empty) pool.
  std::uint32_t count = 0;
  SchedulerKind scheduler = SchedulerKind::ProportionalFair;
  /// Tick length; the campaign's 500 ms XCAL interval.
  Millis tick = 500.0;
  /// Smoothing factor of the PF served-rate EWMA.
  double ewma_alpha = 0.1;
  /// UEs per parallel block. Part of the determinism contract: block
  /// boundaries depend on this constant only, never on the thread count.
  std::uint32_t block = 2048;
  /// RRC inactivity release, in ticks (10 s at the default tick).
  std::uint32_t rrc_idle_ticks = 20;
};

/// Per-cell aggregate of the whole run, drained once at campaign end (the
/// campaign converts these into measure::CellLoadRecord rows).
struct CellLoadSummary {
  std::uint32_t cell_id = 0;
  radio::Technology tech = radio::Technology::Lte;
  /// Ticks during which at least one UE was attached.
  std::int64_t ticks = 0;
  double avg_attached = 0.0;   // mean attached UEs over those ticks
  double avg_active = 0.0;     // mean UEs with positive demand
  Mbps avg_demand = 0.0;       // mean summed demand
  Mbps avg_allocated = 0.0;    // mean summed allocation
  Mbps avg_capacity = 0.0;     // mean cell capacity offered
  double utilization = 0.0;    // avg_allocated / avg_capacity
  double fairness = 0.0;       // mean Jain index over per-UE allocations
};

class UePool {
 public:
  /// Replaces the model-driven per-cell capacity: called once per occupied
  /// cell per tick with the cell, the tick time and the model capacity it
  /// would have used. replay::population_capacity_from_trace adapts a
  /// recorded TraceChannel timeline into this hook, which is how the
  /// scheduler consumes replayed capacity.
  using CapacityFn =
      std::function<Mbps(const radio::CellSite&, SimMillis, Mbps)>;

  /// Place `cfg.count` UEs along `route_length_km` of `deployment`'s route.
  /// All initial draws (placement, velocity, profile, device tier) come from
  /// `rng`; per-tick randomness is derived per UE, counter-based.
  UePool(const radio::Deployment& deployment, Km route_length_km,
         const UePoolConfig& cfg, Rng rng);

  void set_capacity_override(CapacityFn fn) { capacity_fn_ = std::move(fn); }

  /// Advance the whole population by one tick at sim time `t`. `pool`
  /// receives the block fan-out (its worker count never changes the result);
  /// nullptr runs every block inline.
  void tick(SimMillis t, core::ThreadPool* pool);

  std::uint32_t size() const { return cfg_.count; }
  std::int64_t ticks() const { return tick_index_; }
  const UePoolConfig& config() const { return cfg_; }
  radio::Carrier carrier() const { return deployment_->carrier(); }

  /// Fraction of its serving cell's capacity a *measurement* UE attached to
  /// `cell_id` would retain this tick: one more proportional-fair user on
  /// the cell, floored by the cell's unused headroom. 1.0 when the cell is
  /// empty or unknown (anchor/sector ids never match pool cells).
  double population_share(std::uint32_t cell_id) const;

  /// Whole-run totals (block-order deterministic sums).
  struct Totals {
    double delivered_bytes = 0.0;  // application bytes served
    std::int64_t handovers = 0;    // serving-cell changes
    std::int64_t rrc_promotions = 0;
    std::int64_t active_ue_ticks = 0;  // (UE, tick) pairs with demand > 0
  };
  const Totals& totals() const { return totals_; }

  /// Per-cell load/fairness aggregates for every cell that ever hosted a UE,
  /// sorted by cell id.
  std::vector<CellLoadSummary> cell_load() const;

  /// Read-only views of the SoA arrays (tests and benches; indexed by UE).
  std::span<const double> demand_mbps() const { return demand_; }
  std::span<const double> alloc_mbps() const { return alloc_; }
  std::span<const double> avg_mbps() const { return avg_; }
  std::span<const std::uint32_t> attached_cell_index() const { return cell_; }
  const radio::CellSite& cell_site(std::uint32_t cell_index) const;

 private:
  struct BlockStats {
    double delivered_bytes = 0.0;
    std::int64_t handovers = 0;
    std::int64_t rrc_promotions = 0;
    std::int64_t active_ue_ticks = 0;
  };

  void update_ue_block(std::uint32_t begin, std::uint32_t end, SimMillis t,
                       BlockStats& stats);
  void schedule_cell_block(std::uint32_t begin, std::uint32_t end,
                           SimMillis t, SchedulerScratch& scratch);
  void apply_block(std::uint32_t begin, std::uint32_t end, BlockStats& stats);
  void rebuild_members();
  void run_blocks(core::ThreadPool* pool, std::size_t n_items,
                  std::size_t block,
                  const std::function<void(std::uint32_t, std::uint32_t,
                                           std::uint32_t)>& fn);

  const radio::Deployment* deployment_;
  UePoolConfig cfg_;
  Km route_km_;
  CapacityFn capacity_fn_;

  // ---- SoA per-UE state (all vectors have size() == cfg_.count) ----
  std::vector<double> km_;        // position along the physical route
  std::vector<double> vel_kmh_;   // signed speed (reflects at route ends)
  std::vector<std::uint64_t> seed_;  // per-UE stream for counter-based draws
  std::vector<UeProfile> profile_;
  std::vector<std::uint8_t> max_tier_;   // device/plan ceiling (Technology)
  std::vector<std::uint16_t> idle_ticks_;  // ticks since last positive demand
  std::vector<double> demand_;    // demand offered to the scheduler
  std::vector<double> alloc_;     // scheduler output
  std::vector<double> avg_;       // served-rate EWMA (PF weight input)
  std::vector<double> backlog_bytes_;
  std::vector<std::uint32_t> cell_;  // dense cell index, kNoCell if none

  // ---- dense cell tables (size() == deployment cells) ----
  std::vector<const radio::CellSite*> cell_sites_;
  std::unordered_map<std::uint32_t, std::uint32_t> cell_index_by_id_;
  std::vector<double> model_cap_dl_;  // model-driven capacity per cell
  // Per-tick scheduling state, written in the cell phase (disjoint per cell).
  std::vector<std::uint32_t> cell_active_;  // members with demand > 0
  std::vector<double> cell_util_;           // allocated / capacity
  // Whole-run per-cell running sums.
  std::vector<std::int64_t> agg_ticks_;
  std::vector<double> agg_attached_;
  std::vector<double> agg_active_;
  std::vector<double> agg_demand_;
  std::vector<double> agg_alloc_;
  std::vector<double> agg_capacity_;
  std::vector<double> agg_fairness_;

  // Membership (counting sort by cell, rebuilt every tick).
  std::vector<std::uint32_t> members_;      // UE indices grouped by cell
  std::vector<std::uint32_t> cell_begin_;   // size cells+1, offsets into members_
  std::vector<std::uint32_t> count_scratch_;

  std::vector<SchedulerScratch> scheduler_scratch_;  // one per cell block
  std::vector<BlockStats> block_stats_;              // one per UE block

  std::int64_t tick_index_ = 0;
  Totals totals_;

  static constexpr std::uint32_t kNoCell = 0xffffffffu;
};

}  // namespace wheels::ran

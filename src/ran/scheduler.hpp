// Per-cell MAC scheduler: how one cell's capacity is shared among all the
// UEs attached to it.
//
// The paper measured six phones, each effectively alone in its cell's
// schedule (the channel model's load process stands in for everyone else).
// The massive-UE core inverts that: the population is simulated explicitly,
// so the cell's capacity must be *allocated* — and the allocation policy is
// where tier fairness becomes a first-class simulated phenomenon. Two
// textbook disciplines are provided:
//
//  - Round-robin (RR): every backlogged UE gets an equal share of the
//    remaining capacity, water-filled so a UE never receives more than it
//    demands and the leftover of satisfied UEs is redistributed.
//  - Proportional-fair (PF): each backlogged UE is weighted by the inverse
//    of its exponentially-averaged served rate, so a UE that has been
//    starved is prioritised until its average catches up. PF maximises
//    sum(log(R_i)) in the fluid limit; RR maximises min-share per round.
//
// Both disciplines conserve capacity exactly: the sum of allocations equals
// min(capacity, total demand) up to floating-point rounding — "to the byte"
// at any realistic tick length (tests/test_scheduler.cpp pins this).
//
// The scheduler is deliberately stateless: it reads demand/average spans and
// writes an allocation span, so the UePool can keep all per-UE state in
// structure-of-arrays form and fan cells across threads with disjoint
// writes (docs/SCALING.md, "Determinism").
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/units.hpp"

namespace wheels::ran {

enum class SchedulerKind { ProportionalFair, RoundRobin };

std::string_view scheduler_kind_name(SchedulerKind k);

/// Parse a scheduler name ("pf", "rr", also the long forms
/// "proportional-fair" / "round-robin"). nullopt on anything else — callers
/// warn and fall back, matching the WHEELS_* env-knob convention.
std::optional<SchedulerKind> parse_scheduler_kind(std::string_view name);

/// Reusable scratch buffers for schedule_cell (one per worker thread; kept
/// outside the call so the hot path never allocates).
struct SchedulerScratch {
  std::vector<std::uint32_t> order;  // member positions, sorted for the fill
  std::vector<double> weight;        // PF weights per member position
};

/// Share `capacity_mbps` among `members` (indices into the demand/avg/alloc
/// arrays). Reads demand_mbps[m] (what the UE wants this tick) and
/// avg_mbps[m] (its served-rate EWMA, used only by PF); writes alloc_mbps[m]
/// for every member, zero for members with zero demand. Allocations never
/// exceed demand, and their sum equals min(capacity, sum of demands) up to
/// rounding. Members not in `members` are untouched.
void schedule_cell(SchedulerKind kind, Mbps capacity_mbps,
                   std::span<const std::uint32_t> members,
                   std::span<const double> demand_mbps,
                   std::span<const double> avg_mbps,
                   std::span<double> alloc_mbps, SchedulerScratch& scratch);

/// Jain's fairness index over the positive entries of `values`:
/// (sum x)^2 / (n * sum x^2), in (0, 1]; 1.0 means perfectly equal. Returns
/// 1.0 for empty/all-zero input (an empty cell is trivially fair).
double jain_fairness(std::span<const double> values);

}  // namespace wheels::ran

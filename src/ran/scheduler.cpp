#include "ran/scheduler.hpp"

#include <algorithm>
#include <cmath>

namespace wheels::ran {

namespace {

/// Floor on the PF rate average: a UE that has never been served would have
/// an infinite weight, so averages are clamped before inversion. 1 kbps —
/// far below any real allocation, so a genuinely starved UE still dominates.
constexpr double kMinAvgMbps = 1e-3;

}  // namespace

std::string_view scheduler_kind_name(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::ProportionalFair: return "pf";
    case SchedulerKind::RoundRobin: return "rr";
  }
  return "pf";
}

std::optional<SchedulerKind> parse_scheduler_kind(std::string_view name) {
  if (name == "pf" || name == "proportional-fair") {
    return SchedulerKind::ProportionalFair;
  }
  if (name == "rr" || name == "round-robin") {
    return SchedulerKind::RoundRobin;
  }
  return std::nullopt;
}

// Both disciplines are one pass of water-filling over the backlogged members,
// sorted by the level at which each member saturates (its demand for RR, its
// demand/weight ratio for PF). Processing in that order means that once one
// member fails to saturate, none of the remaining ones can either, so each
// subsequent allocation is an exact proportional slice of the remaining
// capacity. The telescoping `remaining -= alloc` updates make the total
// allocated exactly equal min(capacity, total demand) in floating point:
// satisfied members receive their demand verbatim, and the final unsatisfied
// member receives `remaining` itself.
void schedule_cell(SchedulerKind kind, Mbps capacity_mbps,
                   std::span<const std::uint32_t> members,
                   std::span<const double> demand_mbps,
                   std::span<const double> avg_mbps,
                   std::span<double> alloc_mbps, SchedulerScratch& scratch) {
  scratch.order.clear();
  scratch.weight.clear();
  scratch.weight.resize(members.size(), 0.0);

  double total_weight = 0.0;
  for (std::uint32_t pos = 0; pos < members.size(); ++pos) {
    const std::uint32_t ue = members[pos];
    alloc_mbps[ue] = 0.0;
    const double demand = demand_mbps[ue];
    if (demand <= 0.0) continue;
    const double w = kind == SchedulerKind::ProportionalFair
                         ? 1.0 / std::max(avg_mbps[ue], kMinAvgMbps)
                         : 1.0;
    scratch.weight[pos] = w;
    total_weight += w;
    scratch.order.push_back(pos);
  }
  if (scratch.order.empty() || capacity_mbps <= 0.0) return;

  // Saturation level of member at `pos` is demand/weight: the per-unit-weight
  // capacity at which its demand is met. Ties break on position so the fill
  // order — and therefore every rounding — is independent of thread count.
  std::sort(scratch.order.begin(), scratch.order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const double la = demand_mbps[members[a]] / scratch.weight[a];
              const double lb = demand_mbps[members[b]] / scratch.weight[b];
              if (la != lb) return la < lb;
              return a < b;
            });

  double remaining = capacity_mbps;
  double weight_left = total_weight;
  for (const std::uint32_t pos : scratch.order) {
    const std::uint32_t ue = members[pos];
    const double w = scratch.weight[pos];
    const double fair = remaining * (w / weight_left);
    const double alloc = std::min(demand_mbps[ue], fair);
    alloc_mbps[ue] = alloc;
    remaining -= alloc;
    weight_left -= w;
    if (remaining <= 0.0) break;
  }
}

double jain_fairness(std::span<const double> values) {
  double sum = 0.0;
  double sum_sq = 0.0;
  std::size_t n = 0;
  for (const double v : values) {
    if (v <= 0.0) continue;
    sum += v;
    sum_sq += v * v;
    ++n;
  }
  if (n == 0 || sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(n) * sum_sq);
}

}  // namespace wheels::ran

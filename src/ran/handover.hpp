// Handover events and their interruption model.
#pragma once

#include <cstdint>
#include <string_view>

#include "core/rng.hpp"
#include "core/sim_time.hpp"
#include "core/units.hpp"
#include "radio/channel.hpp"
#include "radio/technology.hpp"

namespace wheels::ran {

/// Horizontal (same RAT generation) vs vertical (4G↔5G) classification used
/// in Fig. 12's breakdown.
enum class HandoverType { FourToFour, FourToFive, FiveToFour, FiveToFive };

std::string_view handover_type_name(HandoverType t);
HandoverType classify_handover(radio::Technology from, radio::Technology to);
constexpr bool is_vertical(HandoverType t) {
  return t == HandoverType::FourToFive || t == HandoverType::FiveToFour;
}

struct HandoverEvent {
  SimMillis t = 0;
  Millis duration = 0.0;  // data interruption
  radio::Technology from = radio::Technology::Lte;
  radio::Technology to = radio::Technology::Lte;
  std::uint32_t from_cell = 0;
  std::uint32_t to_cell = 0;
  HandoverType type = HandoverType::FourToFour;
};

/// Handover interruption duration (ms). Medians match Fig. 11b:
/// ~53/76/58 ms (DL) and ~49/75/57 ms (UL) for Verizon/T-Mobile/AT&T;
/// vertical handovers run somewhat longer.
Millis sample_handover_duration(radio::Carrier carrier, radio::Direction dir,
                                bool vertical, Rng& rng);

}  // namespace wheels::ran

// Operator service-tier selection policy.
//
// The paper's central coverage finding (§4.1) is that the technology a UE is
// *granted* is a policy decision, not a propagation fact: under idle/ping
// traffic operators park UEs on LTE (making passive coverage logging look
// pessimistic, Fig. 1), under backlogged downlink they upgrade aggressively
// to high-speed 5G, and under backlogged uplink they prefer 5G-low/LTE
// (Fig. 2b). This module encodes those policies per carrier.
#pragma once

#include <span>
#include <string_view>

#include "core/rng.hpp"
#include "geo/timezone.hpp"
#include "radio/technology.hpp"

namespace wheels::ran {

/// What the UE's traffic looks like to the scheduler.
enum class TrafficProfile {
  IdlePing,            // 38-byte ICMP every 200 ms (the handover loggers)
  BackloggedDownlink,  // nuttcp DL bulk transfer
  BackloggedUplink,    // nuttcp UL bulk transfer
  Interactive,         // app traffic: moderate, bidirectional
};

std::string_view traffic_profile_name(TrafficProfile t);

/// Probability that the carrier upgrades a UE to `tech` (when available)
/// under the given traffic profile. Evaluated top tier first; the first
/// accepted tier wins.
double upgrade_probability(radio::Carrier carrier, radio::Technology tech,
                           TrafficProfile traffic, geo::Timezone tz);

/// Select the serving technology from the available set (any order).
/// Falls back to the best available 4G tier (LTE always exists).
radio::Technology select_technology(radio::Carrier carrier,
                                    std::span<const radio::Technology> available,
                                    TrafficProfile traffic, geo::Timezone tz,
                                    Rng& rng);

}  // namespace wheels::ran

#include "ran/rrc.hpp"

#include <cmath>

#include "core/obs/metrics.hpp"

namespace wheels::ran {

RrcMachine::RrcMachine(Rng rng, Millis inactivity_timeout)
    : rng_(std::move(rng)), inactivity_timeout_(inactivity_timeout) {}

Millis RrcMachine::sample_promotion_delay(Rng& rng) {
  return rng.lognormal(std::log(180.0), 0.35);
}

RrcState RrcMachine::state_at(SimMillis t) const {
  if (!ever_active_) return RrcState::Idle;
  return (t - last_traffic_) > static_cast<SimMillis>(inactivity_timeout_)
             ? RrcState::Idle
             : RrcState::Connected;
}

Millis RrcMachine::on_traffic(SimMillis t) {
  const bool promotes = state_at(t) == RrcState::Idle;
  last_traffic_ = t;
  ever_active_ = true;
  if (promotes) {
    auto& reg = core::obs::MetricsRegistry::global();
    static const core::obs::MetricId promotions =
        reg.counter_id("ran.rrc.promotions");
    reg.add(promotions);
  }
  return promotes ? sample_promotion_delay(rng_) : 0.0;
}

}  // namespace wheels::ran

#include "ran/handover.hpp"

#include <cmath>

namespace wheels::ran {

std::string_view handover_type_name(HandoverType t) {
  switch (t) {
    case HandoverType::FourToFour: return "4G->4G";
    case HandoverType::FourToFive: return "4G->5G";
    case HandoverType::FiveToFour: return "5G->4G";
    case HandoverType::FiveToFive: return "5G->5G";
  }
  return "?";
}

HandoverType classify_handover(radio::Technology from, radio::Technology to) {
  const bool f5 = radio::is_5g(from);
  const bool t5 = radio::is_5g(to);
  if (f5 && t5) return HandoverType::FiveToFive;
  if (f5) return HandoverType::FiveToFour;
  if (t5) return HandoverType::FourToFive;
  return HandoverType::FourToFour;
}

Millis sample_handover_duration(radio::Carrier carrier, radio::Direction dir,
                                bool vertical, Rng& rng) {
  double median = 55.0;
  switch (carrier) {
    case radio::Carrier::Verizon:
      median = dir == radio::Direction::Downlink ? 53.0 : 49.0;
      break;
    case radio::Carrier::TMobile:
      median = dir == radio::Direction::Downlink ? 76.0 : 75.0;
      break;
    case radio::Carrier::Att:
      median = dir == radio::Direction::Downlink ? 58.0 : 57.0;
      break;
  }
  if (vertical) median *= 1.35;
  return rng.lognormal(std::log(median), 0.40);
}

}  // namespace wheels::ran

#include "ran/ue_pool.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "radio/band_plan.hpp"

namespace wheels::ran {

namespace {

/// Per-profile traffic shape: mean downlink rate when a session is on, the
/// fraction of 30 s epochs that are on, and how many seconds of unserved
/// demand the UE will queue before dropping (browser tabs give up, players
/// rebuffer at lower rates).
struct ProfileShape {
  double mean_mbps;
  double duty;
  double backlog_seconds;
};

constexpr ProfileShape kProfileShapes[kUeProfileCount] = {
    /*Idle*/ {0.01, 0.10, 1.0},
    /*Web*/ {2.0, 0.35, 4.0},
    /*Audio*/ {0.3, 0.60, 8.0},
    /*Video*/ {8.0, 0.50, 6.0},
    /*Bulk*/ {40.0, 0.25, 10.0},
};

/// Population mix across the profiles (rough 2022 smartphone traffic split:
/// mostly idle/web, video dominating the byte count).
constexpr double kProfileWeights[kUeProfileCount] = {0.35, 0.30, 0.12, 0.18,
                                                     0.05};

/// Device/plan ceiling mix across technology tiers (LTE-only holdouts
/// through mmWave-capable flagships).
constexpr double kTierWeights[radio::kTechnologyCount] = {0.10, 0.25, 0.20,
                                                          0.30, 0.15};

/// Session epochs: traffic switches on/off at this granularity, so a UE's
/// demand pattern looks like bursts, not per-tick noise.
constexpr std::int64_t kEpochTicks = 60;  // 30 s at the 500 ms tick

/// Fraction of the aggregated PHY peak a loaded cell can actually deliver
/// (scheduling overhead, control channels, imperfect CQI).
constexpr double kCellEfficiency = 0.7;

/// Cells per task in the scheduling phase (cells are few; keep blocks small
/// enough that the fan-out still parallelises a 3-carrier deployment).
constexpr std::uint32_t kCellBlock = 16;

/// splitmix64 finaliser: the counter-based per-(UE, tick) randomness. Mixing
/// a per-UE seed with a tick or epoch counter yields an independent draw per
/// slot with no generator state to share across threads.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from a hash.
double u01(std::uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

double bytes_per_mbps_tick(Millis tick) {
  return tick / kMillisPerSecond * 1e6 / kBitsPerByte;
}

}  // namespace

std::string_view ue_profile_name(UeProfile p) {
  switch (p) {
    case UeProfile::Idle: return "idle";
    case UeProfile::Web: return "web";
    case UeProfile::Audio: return "audio";
    case UeProfile::Video: return "video";
    case UeProfile::Bulk: return "bulk";
  }
  return "idle";
}

UePool::UePool(const radio::Deployment& deployment, Km route_length_km,
               const UePoolConfig& cfg, Rng rng)
    : deployment_(&deployment), cfg_(cfg), route_km_(route_length_km) {
  const std::uint32_t n = cfg_.count;
  km_.resize(n);
  vel_kmh_.resize(n);
  seed_.resize(n);
  profile_.resize(n);
  max_tier_.resize(n);
  idle_ticks_.assign(n, static_cast<std::uint16_t>(cfg_.rrc_idle_ticks));
  demand_.assign(n, 0.0);
  alloc_.assign(n, 0.0);
  avg_.assign(n, 0.0);
  backlog_bytes_.assign(n, 0.0);
  cell_.assign(n, kNoCell);

  const auto& cells = deployment.cells();
  cell_sites_.reserve(cells.size());
  for (const auto& cell : cells) {
    cell_index_by_id_.emplace(
        cell.id, static_cast<std::uint32_t>(cell_sites_.size()));
    cell_sites_.push_back(&cell);
    const auto plan = radio::band_plan(cell.carrier, cell.tech);
    model_cap_dl_.push_back(radio::cc_peak_rate(plan, true) * plan.max_cc_dl *
                            kCellEfficiency);
  }
  const std::size_t c = cell_sites_.size();
  cell_active_.assign(c, 0);
  cell_util_.assign(c, 0.0);
  agg_ticks_.assign(c, 0);
  agg_attached_.assign(c, 0.0);
  agg_active_.assign(c, 0.0);
  agg_demand_.assign(c, 0.0);
  agg_alloc_.assign(c, 0.0);
  agg_capacity_.assign(c, 0.0);
  agg_fairness_.assign(c, 0.0);
  cell_begin_.assign(c + 1, 0);
  count_scratch_.assign(c + 1, 0);
  members_.resize(n);
  scheduler_scratch_.resize(c == 0 ? 0 : (c + kCellBlock - 1) / kCellBlock);
  block_stats_.resize(
      cfg_.block == 0 || n == 0 ? 0 : (n + cfg_.block - 1) / cfg_.block);

  // All initial draws come from one serial pass over `rng`; per-tick
  // randomness never touches it again.
  Rng init = rng.fork("ue-pool-init");
  for (std::uint32_t i = 0; i < n; ++i) {
    km_[i] = route_km_ > 0.0 ? init.uniform(0.0, route_km_) : 0.0;
    // Roughly a third of the population is vehicular (the highway the route
    // follows); the rest moves at pedestrian/indoor speeds.
    if (init.bernoulli(0.35)) {
      vel_kmh_[i] = init.uniform(30.0, 110.0) * (init.bernoulli(0.5) ? 1 : -1);
    } else {
      vel_kmh_[i] = init.uniform(-4.0, 4.0);
    }
    seed_[i] = init.next_u64();
    profile_[i] = static_cast<UeProfile>(init.weighted_index(kProfileWeights));
    max_tier_[i] = static_cast<std::uint8_t>(init.weighted_index(kTierWeights));
  }
}

const radio::CellSite& UePool::cell_site(std::uint32_t cell_index) const {
  return *cell_sites_[cell_index];
}

void UePool::run_blocks(
    core::ThreadPool* pool, std::size_t n_items, std::size_t block,
    const std::function<void(std::uint32_t, std::uint32_t, std::uint32_t)>&
        fn) {
  if (n_items == 0) return;
  const std::size_t n_blocks = (n_items + block - 1) / block;
  if (pool == nullptr || pool->workers() == 0 || n_blocks == 1) {
    for (std::size_t b = 0; b < n_blocks; ++b) {
      const auto begin = static_cast<std::uint32_t>(b * block);
      const auto end =
          static_cast<std::uint32_t>(std::min(n_items, (b + 1) * block));
      fn(static_cast<std::uint32_t>(b), begin, end);
    }
    return;
  }
  std::vector<core::ThreadPool::Task> tasks;
  tasks.reserve(n_blocks);
  for (std::size_t b = 0; b < n_blocks; ++b) {
    const auto begin = static_cast<std::uint32_t>(b * block);
    const auto end =
        static_cast<std::uint32_t>(std::min(n_items, (b + 1) * block));
    tasks.push_back(
        [&fn, b, begin, end] { fn(static_cast<std::uint32_t>(b), begin, end); });
  }
  pool->run_batch(std::move(tasks));
}

// Phase 1: per-UE state advance. Writes only slots [begin, end) of the UE
// arrays plus this block's stats entry — disjoint across tasks.
void UePool::update_ue_block(std::uint32_t begin, std::uint32_t end,
                             SimMillis /*t*/, BlockStats& stats) {
  const double km_per_tick_per_kmh =
      cfg_.tick / kMillisPerSecond / kSecondsPerHour;
  const std::int64_t epoch = tick_index_ / kEpochTicks;
  const double backlog_to_mbps = 1.0 / bytes_per_mbps_tick(cfg_.tick);

  for (std::uint32_t i = begin; i < end; ++i) {
    // Move, reflecting at the route ends so the population density stays
    // uniform along the corridor.
    if (route_km_ > 0.0) {
      double km = km_[i] + vel_kmh_[i] * km_per_tick_per_kmh;
      if (km < 0.0) {
        km = -km;
        vel_kmh_[i] = -vel_kmh_[i];
      } else if (km > route_km_) {
        km = 2.0 * route_km_ - km;
        vel_kmh_[i] = -vel_kmh_[i];
      }
      km_[i] = std::clamp(km, 0.0, route_km_);
    }

    // Counter-based draws: session on/off per 30 s epoch, rate jitter per
    // tick. No generator state — any thread may compute any UE's draw.
    const ProfileShape& shape =
        kProfileShapes[static_cast<std::size_t>(profile_[i])];
    const std::uint64_t seed = seed_[i];
    const bool session_on =
        u01(mix64(seed ^ (0x5e551007u + static_cast<std::uint64_t>(epoch) *
                                            0x9e3779b97f4a7c15ull))) <
        shape.duty;
    double fresh_mbps = 0.0;
    if (session_on) {
      const double jitter = 0.5 + u01(mix64(
          seed ^ (0x7ea512aBu + static_cast<std::uint64_t>(tick_index_) *
                                    0xbf58476d1ce4e5b9ull)));
      fresh_mbps = shape.mean_mbps * jitter;
    }
    demand_[i] = fresh_mbps + backlog_bytes_[i] * backlog_to_mbps;

    // Lightweight RRC: a UE with no demand for rrc_idle_ticks is released;
    // the next positive demand is a promotion (connection setup).
    if (demand_[i] > 0.0) {
      if (idle_ticks_[i] >= cfg_.rrc_idle_ticks) ++stats.rrc_promotions;
      idle_ticks_[i] = 0;
    } else if (idle_ticks_[i] < std::numeric_limits<std::uint16_t>::max()) {
      ++idle_ticks_[i];
    }

    // Attachment mirrors the paper's idle policy: released UEs camp on LTE;
    // connected UEs ride the best available tier their device supports.
    const radio::CellSite* site = nullptr;
    if (idle_ticks_[i] >= cfg_.rrc_idle_ticks) {
      site = deployment_->covering_cell(radio::Technology::Lte, km_[i]);
    } else {
      for (int tier = max_tier_[i]; tier >= 0 && site == nullptr; --tier) {
        site = deployment_->covering_cell(
            static_cast<radio::Technology>(tier), km_[i]);
      }
    }
    std::uint32_t new_cell = kNoCell;
    if (site != nullptr) {
      const auto it = cell_index_by_id_.find(site->id);
      if (it != cell_index_by_id_.end()) new_cell = it->second;
    }
    if (new_cell != cell_[i] && cell_[i] != kNoCell && new_cell != kNoCell) {
      ++stats.handovers;
    }
    cell_[i] = new_cell;
  }
}

// Phase 2 (coordinator only): counting sort of UEs into per-cell member
// groups. O(N + C), no allocation after the first tick.
void UePool::rebuild_members() {
  const std::size_t c = cell_sites_.size();
  std::fill(count_scratch_.begin(), count_scratch_.end(), 0u);
  for (std::uint32_t i = 0; i < cfg_.count; ++i) {
    if (cell_[i] != kNoCell) ++count_scratch_[cell_[i]];
  }
  std::uint32_t offset = 0;
  for (std::size_t cc = 0; cc < c; ++cc) {
    cell_begin_[cc] = offset;
    offset += count_scratch_[cc];
    count_scratch_[cc] = cell_begin_[cc];
  }
  cell_begin_[c] = offset;
  for (std::uint32_t i = 0; i < cfg_.count; ++i) {
    if (cell_[i] != kNoCell) members_[count_scratch_[cell_[i]]++] = i;
  }
}

// Phase 3: per-cell scheduling. Each cell's members, allocations and
// aggregate slots are written by exactly one task (cells are partitioned by
// block), so writes stay disjoint even though `alloc_` is shared.
void UePool::schedule_cell_block(std::uint32_t begin, std::uint32_t end,
                                 SimMillis t, SchedulerScratch& scratch) {
  for (std::uint32_t c = begin; c < end; ++c) {
    const std::uint32_t m_begin = cell_begin_[c];
    const std::uint32_t m_end = cell_begin_[c + 1];
    cell_active_[c] = 0;
    cell_util_[c] = 0.0;
    if (m_begin == m_end) continue;

    const std::span<const std::uint32_t> members(members_.data() + m_begin,
                                                 m_end - m_begin);
    Mbps capacity = model_cap_dl_[c];
    if (capacity_fn_) capacity = capacity_fn_(*cell_sites_[c], t, capacity);

    schedule_cell(cfg_.scheduler, capacity, members, demand_, avg_, alloc_,
                  scratch);

    double demand_sum = 0.0;
    double alloc_sum = 0.0;
    std::uint32_t active = 0;
    for (const std::uint32_t ue : members) {
      demand_sum += demand_[ue];
      alloc_sum += alloc_[ue];
      if (demand_[ue] > 0.0) ++active;
    }
    cell_active_[c] = active;
    cell_util_[c] = capacity > 0.0 ? std::min(alloc_sum / capacity, 1.0) : 1.0;

    ++agg_ticks_[c];
    agg_attached_[c] += static_cast<double>(members.size());
    agg_active_[c] += static_cast<double>(active);
    agg_demand_[c] += demand_sum;
    agg_alloc_[c] += alloc_sum;
    agg_capacity_[c] += capacity;
    // Fairness over this tick's allocations; scratch.weight is free again.
    scratch.weight.clear();
    for (const std::uint32_t ue : members) {
      if (demand_[ue] > 0.0) scratch.weight.push_back(alloc_[ue]);
    }
    agg_fairness_[c] += jain_fairness(scratch.weight);
  }
}

// Phase 4: fold allocations back into per-UE state. Disjoint UE slots plus
// this block's stats entry.
void UePool::apply_block(std::uint32_t begin, std::uint32_t end,
                         BlockStats& stats) {
  const double bytes_per_tick = bytes_per_mbps_tick(cfg_.tick);
  for (std::uint32_t i = begin; i < end; ++i) {
    const double alloc = cell_[i] == kNoCell ? 0.0 : alloc_[i];
    if (cell_[i] == kNoCell) alloc_[i] = 0.0;
    const double demand = demand_[i];
    if (demand > 0.0) ++stats.active_ue_ticks;
    stats.delivered_bytes += alloc * bytes_per_tick;

    const ProfileShape& shape =
        kProfileShapes[static_cast<std::size_t>(profile_[i])];
    const double unmet = std::max(demand - alloc, 0.0);
    const double cap_bytes = shape.mean_mbps * shape.backlog_seconds *
                             kMillisPerSecond / cfg_.tick * bytes_per_tick;
    backlog_bytes_[i] = std::min(unmet * bytes_per_tick, cap_bytes);

    avg_[i] = (1.0 - cfg_.ewma_alpha) * avg_[i] + cfg_.ewma_alpha * alloc;
  }
}

void UePool::tick(SimMillis t, core::ThreadPool* pool) {
  if (cfg_.count == 0) {
    ++tick_index_;
    return;
  }

  for (auto& s : block_stats_) s = BlockStats{};

  run_blocks(pool, cfg_.count, cfg_.block,
             [this, t](std::uint32_t b, std::uint32_t begin,
                       std::uint32_t end) {
               update_ue_block(begin, end, t, block_stats_[b]);
             });

  rebuild_members();

  run_blocks(pool, cell_sites_.size(), kCellBlock,
             [this, t](std::uint32_t b, std::uint32_t begin,
                       std::uint32_t end) {
               schedule_cell_block(begin, end, t, scheduler_scratch_[b]);
             });

  run_blocks(pool, cfg_.count, cfg_.block,
             [this](std::uint32_t b, std::uint32_t begin, std::uint32_t end) {
               apply_block(begin, end, block_stats_[b]);
             });

  // Merge block reductions in block order — the other half of the
  // determinism contract (completion order never feeds a sum).
  for (const BlockStats& s : block_stats_) {
    totals_.delivered_bytes += s.delivered_bytes;
    totals_.handovers += s.handovers;
    totals_.rrc_promotions += s.rrc_promotions;
    totals_.active_ue_ticks += s.active_ue_ticks;
  }
  ++tick_index_;
}

double UePool::population_share(std::uint32_t cell_id) const {
  const auto it = cell_index_by_id_.find(cell_id);
  if (it == cell_index_by_id_.end()) return 1.0;
  const std::uint32_t c = it->second;
  const std::uint32_t active = cell_active_[c];
  if (active == 0) return 1.0;
  // One more PF user joining `active` others gets ~1/(n+1) of the cell —
  // unless the cell has idle headroom, in which case the headroom wins.
  const double pf_share = 1.0 / static_cast<double>(active + 1);
  const double headroom = std::max(1.0 - cell_util_[c], 0.0);
  return std::clamp(std::max(pf_share, headroom), 0.0, 1.0);
}

std::vector<CellLoadSummary> UePool::cell_load() const {
  std::vector<CellLoadSummary> out;
  for (std::size_t c = 0; c < cell_sites_.size(); ++c) {
    if (agg_ticks_[c] == 0) continue;
    const double ticks = static_cast<double>(agg_ticks_[c]);
    CellLoadSummary s;
    s.cell_id = cell_sites_[c]->id;
    s.tech = cell_sites_[c]->tech;
    s.ticks = agg_ticks_[c];
    s.avg_attached = agg_attached_[c] / ticks;
    s.avg_active = agg_active_[c] / ticks;
    s.avg_demand = agg_demand_[c] / ticks;
    s.avg_allocated = agg_alloc_[c] / ticks;
    s.avg_capacity = agg_capacity_[c] / ticks;
    s.utilization =
        s.avg_capacity > 0.0 ? std::min(s.avg_allocated / s.avg_capacity, 1.0)
                             : 0.0;
    s.fairness = agg_fairness_[c] / ticks;
    out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const CellLoadSummary& a, const CellLoadSummary& b) {
              return a.cell_id < b.cell_id;
            });
  return out;
}

}  // namespace wheels::ran

#include "ran/service_policy.hpp"

#include <algorithm>

namespace wheels::ran {

using radio::Carrier;
using radio::Technology;

std::string_view traffic_profile_name(TrafficProfile t) {
  switch (t) {
    case TrafficProfile::IdlePing: return "idle-ping";
    case TrafficProfile::BackloggedDownlink: return "backlogged-dl";
    case TrafficProfile::BackloggedUplink: return "backlogged-ul";
    case TrafficProfile::Interactive: return "interactive";
  }
  return "?";
}

double upgrade_probability(Carrier carrier, Technology tech,
                           TrafficProfile traffic, geo::Timezone tz) {
  // 4G tiers are the fallback, not an upgrade decision.
  if (!radio::is_5g(tech)) return tech == Technology::LteA ? 1.0 : 1.0;

  switch (traffic) {
    case TrafficProfile::IdlePing:
      // Conservative: a trickle of ICMP does not justify an NR grant.
      // AT&T never upgrades (Fig. 1d shows LTE/LTE-A only); T-Mobile's
      // policy differs by half of the country — the passive and active
      // views agree in the east but not the west (Fig. 1c vs 1f).
      if (carrier == Carrier::Att) return 0.0;
      if (carrier == Carrier::TMobile) {
        const bool east = tz == geo::Timezone::Central ||
                          tz == geo::Timezone::Eastern;
        if (tech == Technology::NrLow || tech == Technology::NrMid) {
          return east ? 0.75 : 0.06;
        }
        return 0.0;  // no mmWave for ping traffic
      }
      // Verizon: occasional 5G-low only.
      return tech == Technology::NrLow ? 0.08 : 0.0;

    case TrafficProfile::BackloggedDownlink:
      // Aggressive upgrades for heavy DL (Fig. 2b).
      switch (tech) {
        case Technology::NrMmWave: return 0.95;
        case Technology::NrMid: return 0.95;
        case Technology::NrLow: return 0.90;
        default: return 1.0;
      }

    case TrafficProfile::BackloggedUplink:
      // Heavy UL is kept on lower tiers (Fig. 2b): high-speed 5G UL
      // coverage is visibly lower than DL for all carriers, and Verizon's /
      // AT&T's overall 5G share drops too.
      switch (tech) {
        case Technology::NrMmWave:
          return carrier == Carrier::TMobile ? 0.45 : 0.35;
        case Technology::NrMid:
          return carrier == Carrier::TMobile ? 0.70 : 0.50;
        case Technology::NrLow:
          return carrier == Carrier::TMobile ? 0.80 : 0.55;
        default: return 1.0;
      }

    case TrafficProfile::Interactive:
      switch (tech) {
        case Technology::NrMmWave: return 0.70;
        case Technology::NrMid: return 0.80;
        case Technology::NrLow: return 0.80;
        default: return 1.0;
      }
  }
  return 0.0;
}

Technology select_technology(Carrier carrier,
                             std::span<const Technology> available,
                             TrafficProfile traffic, geo::Timezone tz,
                             Rng& rng) {
  // Walk tiers from highest to lowest; first accepted upgrade wins.
  Technology best_4g = Technology::Lte;
  Technology sorted[radio::kTechnologyCount];
  int n = 0;
  for (Technology t : available) sorted[n++] = t;
  std::sort(sorted, sorted + n, [](Technology a, Technology b) {
    return radio::technology_tier(a) > radio::technology_tier(b);
  });

  for (int i = 0; i < n; ++i) {
    const Technology t = sorted[i];
    if (radio::is_5g(t)) {
      if (rng.bernoulli(upgrade_probability(carrier, t, traffic, tz))) {
        return t;
      }
    } else {
      best_4g = std::max(best_4g, t, [](Technology a, Technology b) {
        return radio::technology_tier(a) < radio::technology_tier(b);
      });
    }
  }
  return best_4g;
}

}  // namespace wheels::ran

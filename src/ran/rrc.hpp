// RRC connection state machine.
//
// The paper's handover-logger app "constantly send[s] ICMP-based ping
// traffic … at an interval of 200 ms to prevent the cellular radio from
// going to sleep mode" (§3). This models why that was necessary: after an
// inactivity timeout the RRC connection is released, and the next packet
// pays a connection-setup (promotion) delay of a few hundred ms. The
// campaign charges that delay to the first probe of a test that follows an
// idle gap; the 200 ms keep-alive cadence never triggers it.
#pragma once

#include "core/rng.hpp"
#include "core/sim_time.hpp"
#include "core/units.hpp"

namespace wheels::ran {

enum class RrcState { Idle, Connected };

class RrcMachine {
 public:
  explicit RrcMachine(Rng rng, Millis inactivity_timeout = 10'000.0);

  /// Account for traffic at time `t`. Returns the promotion delay this
  /// packet pays (0 when already connected). `t` must be non-decreasing
  /// across calls.
  Millis on_traffic(SimMillis t);

  /// State the connection would be in at time `t` (without traffic).
  RrcState state_at(SimMillis t) const;

  Millis inactivity_timeout() const { return inactivity_timeout_; }

  /// Promotion delay distribution: median ~180 ms (idle→connected RRC setup
  /// over sub-6 control plane).
  static Millis sample_promotion_delay(Rng& rng);

 private:
  Rng rng_;
  Millis inactivity_timeout_;
  SimMillis last_traffic_ = 0;
  bool ever_active_ = false;
};

}  // namespace wheels::ran

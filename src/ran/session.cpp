#include "ran/session.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/obs/metrics.hpp"

namespace wheels::ran {

using radio::CellSite;
using radio::Deployment;
using radio::Direction;
using radio::Technology;

RadioSession::RadioSession(const Deployment& deployment,
                           TrafficProfile traffic, Rng rng)
    : deployment_(&deployment),
      traffic_(traffic),
      channel_(deployment.carrier(), rng.fork("channel")),
      rng_(rng.fork("session")) {}

void RadioSession::set_traffic(TrafficProfile traffic) {
  if (traffic == traffic_) return;
  traffic_ = traffic;
  since_policy_eval_ = 1e18;  // re-evaluate immediately on next tick
  force_fresh_eval_ = true;   // a new traffic profile means a new grant
}

void RadioSession::evaluate_policy(Km km, geo::Timezone tz,
                                   bool availability_changed) {
  last_available_ = deployment_->available(km);
  // Grants are sticky: while the available set is unchanged, the network
  // keeps the current tier most of the time instead of re-rolling the
  // policy (otherwise idle phones would flap between layers every few
  // seconds, which the paper's passive handover counts rule out).
  const bool still_available =
      std::find(last_available_.begin(), last_available_.end(), desired_) !=
      last_available_.end();
  if (!force_fresh_eval_ && !availability_changed && still_available &&
      rng_.bernoulli(0.9)) {
    since_policy_eval_ = 0.0;
    return;
  }
  force_fresh_eval_ = false;
  desired_ = select_technology(deployment_->carrier(), last_available_,
                               traffic_, tz, rng_);
  since_policy_eval_ = 0.0;
}

Km RadioSession::sector_handover_rate(radio::Carrier c) {
  switch (c) {
    case radio::Carrier::Verizon: return 0.55;
    case radio::Carrier::TMobile: return 0.45;
    case radio::Carrier::Att: return 0.35;
  }
  return 0.45;
}

namespace {

/// Log identifier of a (site, sector) pair, distinct from bare site ids.
std::uint32_t sector_id(std::uint32_t site, int sector) {
  return 0x8000'0000u | (site << 2) | static_cast<std::uint32_t>(sector);
}

/// Count one handover in the global registry. A handover whose interruption
/// eats the whole tick counts as a failure — the same "data plane stalled
/// for >= one scheduling period" criterion the throughput penalty uses.
void record_handover(const HandoverEvent& ho, Millis dt) {
  auto& reg = core::obs::MetricsRegistry::global();
  static const core::obs::MetricId attempts =
      reg.counter_id("ran.handover.attempts");
  static const core::obs::MetricId vertical =
      reg.counter_id("ran.handover.vertical");
  static const core::obs::MetricId failures =
      reg.counter_id("ran.handover.failures");
  static const core::obs::MetricsRegistry::HistogramHandle duration =
      reg.histogram("ran.handover.duration_ms");
  reg.add(attempts);
  if (is_vertical(ho.type)) reg.add(vertical);
  if (ho.duration >= dt) reg.add(failures);
  reg.observe(duration, ho.duration);
}

}  // namespace

RadioTick RadioSession::tick(const geo::DriveSample& s, Millis dt) {
  since_policy_eval_ += dt;

  // Re-evaluate the tier grant periodically or when the available set
  // changed (entering/leaving a deployment zone).
  const auto avail = deployment_->available(s.km);
  const bool availability_changed = avail != last_available_;
  if (availability_changed || since_policy_eval_ >= kPolicyPeriod) {
    evaluate_policy(s.km, s.tz, availability_changed);
  }

  // Candidate serving cell for the desired tier; if the tier lost coverage
  // mid-grant, fall back through the tiers (LTE always covers).
  const CellSite* candidate = deployment_->covering_cell(desired_, s.km);
  if (candidate == nullptr) {
    evaluate_policy(s.km, s.tz, true);
    candidate = deployment_->covering_cell(desired_, s.km);
  }
  if (candidate == nullptr) {
    desired_ = Technology::Lte;
    candidate = deployment_->covering_cell(Technology::Lte, s.km);
  }
  if (candidate == nullptr && serving_ == nullptr) {
    // No coverage at all at this position — a deployment must always carry
    // an LTE floor (Deployment guarantees it); fail loudly, not with UB.
    throw std::logic_error{"RadioSession: no serving cell available"};
  }

  RadioTick out;
  if (serving_ == nullptr) {
    serving_ = candidate;
    channel_.attach(*serving_);
  } else if (candidate != nullptr && candidate->id != serving_->id) {
    // Same-tech reselection honours a hysteresis margin; tech changes and
    // loss of serving coverage switch unconditionally.
    const bool same_tech = candidate->tech == serving_->tech;
    const Km gain = std::abs(serving_->center_km - s.km) -
                    std::abs(candidate->center_km - s.km);
    const bool still_covered = serving_->covers(s.km);
    if (!same_tech || !still_covered || gain > kReselectionMarginKm) {
      HandoverEvent ho;
      ho.t = s.t;
      ho.from = serving_->tech;
      ho.to = candidate->tech;
      ho.from_cell = serving_->id;
      ho.to_cell = candidate->id;
      ho.type = classify_handover(ho.from, ho.to);
      const Direction dir = traffic_ == TrafficProfile::BackloggedUplink
                                ? Direction::Uplink
                                : Direction::Downlink;
      ho.duration = sample_handover_duration(deployment_->carrier(), dir,
                                             is_vertical(ho.type), rng_);
      record_handover(ho, dt);
      out.handovers.push_back(ho);
      out.interruption = std::min<Millis>(ho.duration, dt);
      serving_ = candidate;
      channel_.attach(*serving_);
      sector_ = rng_.uniform_int(0, 2);
    }
  }

  // Intra-site sector handovers: Poisson in distance driven. Idle UEs
  // reselect far more lazily than traffic-loaded ones (the paper's passive
  // loggers log ~0.5 handovers/km while its loaded tests see 1-3/mile).
  {
    const Km moved = km_per_ms_from_mph(s.speed) * dt;
    const double idle_factor =
        traffic_ == TrafficProfile::IdlePing ? 0.15 : 1.0;
    const double p =
        1.0 - std::exp(-sector_handover_rate(deployment_->carrier()) *
                       idle_factor * moved);
    if (rng_.bernoulli(p)) {
      const int next = (sector_ + rng_.uniform_int(1, 2)) % 3;
      HandoverEvent ho;
      ho.t = s.t;
      ho.from = serving_->tech;
      ho.to = serving_->tech;
      ho.from_cell = sector_id(serving_->id, sector_);
      ho.to_cell = sector_id(serving_->id, next);
      ho.type = classify_handover(ho.from, ho.to);
      const Direction dir = traffic_ == TrafficProfile::BackloggedUplink
                                ? Direction::Uplink
                                : Direction::Downlink;
      // Intra-site switches are the fastest handovers.
      ho.duration = 0.7 * sample_handover_duration(deployment_->carrier(),
                                                   dir, false, rng_);
      record_handover(ho, dt);
      out.handovers.push_back(ho);
      out.interruption = std::min<Millis>(out.interruption + ho.duration, dt);
      sector_ = next;
    }
  }

  // EN-DC anchor management: NSA 5G rides on an LTE/LTE-A anchor whose
  // reselections are handovers too — XCAL counts them, which is part of why
  // the paper's per-mile handover counts exceed bare serving-cell changes.
  if (radio::is_5g(serving_->tech)) {
    const CellSite* anchor =
        deployment_->covering_cell(Technology::LteA, s.km);
    if (anchor == nullptr) {
      anchor = deployment_->covering_cell(Technology::Lte, s.km);
    }
    if (anchor != nullptr && anchor_ != nullptr &&
        anchor->id != anchor_->id) {
      HandoverEvent ho;
      ho.t = s.t;
      ho.from = anchor_->tech;
      ho.to = anchor->tech;
      ho.from_cell = anchor_->id;
      ho.to_cell = anchor->id;
      ho.type = classify_handover(ho.from, ho.to);
      const Direction dir = traffic_ == TrafficProfile::BackloggedUplink
                                ? Direction::Uplink
                                : Direction::Downlink;
      // Anchor changes are brief (no user-plane path switch on the NR leg).
      ho.duration = 0.5 * sample_handover_duration(deployment_->carrier(),
                                                   dir, false, rng_);
      record_handover(ho, dt);
      out.handovers.push_back(ho);
      out.interruption =
          std::min<Millis>(out.interruption + ho.duration, dt);
    }
    anchor_ = anchor;
  } else {
    anchor_ = nullptr;
  }

  out.kpis = channel_.sample(*serving_, s.km, s.speed, dt);
  out.tech = serving_->tech;
  out.cell_id = serving_->id;
  out.anchor_cell_id = anchor_ != nullptr ? anchor_->id : 0;

  // The interruption suppresses the data plane for part of the tick; the
  // surrounding RACH / path-switch / cwnd-restart costs multiply it (charged
  // at 3x, floored so a tick never fully vanishes).
  if (out.interruption > 0.0) {
    const double live =
        std::max(0.15, 1.0 - 3.0 * out.interruption / dt);
    out.kpis.capacity_dl *= live;
    out.kpis.capacity_ul *= live;
  }
  return out;
}

std::optional<StaticSession> StaticSession::try_create(
    const Deployment& deployment, Km city_km, Km search_radius_km, Rng rng) {
  // Prefer a mmWave site, else midband — the paper's static methodology.
  for (Technology tech : {Technology::NrMmWave, Technology::NrMid}) {
    const CellSite* best = nullptr;
    Km best_dist = search_radius_km;
    for (const CellSite& c : deployment.cells()) {
      if (c.tech != tech) continue;
      const Km d = std::abs(c.center_km - city_km);
      if (d <= best_dist) {
        best = &c;
        best_dist = d;
      }
    }
    if (best != nullptr) {
      return StaticSession{deployment, *best, std::move(rng)};
    }
  }
  return std::nullopt;
}

StaticSession::StaticSession(const Deployment& deployment, CellSite cell,
                             Rng rng)
    : cell_(cell), channel_(deployment.carrier(), rng.fork("static")) {
  channel_.attach(cell_);
}

RadioTick StaticSession::tick(Millis dt) {
  RadioTick out;
  out.kpis = channel_.sample_static_best(cell_, dt);
  out.tech = cell_.tech;
  out.cell_id = cell_.id;
  return out;
}

}  // namespace wheels::ran

// RadioSession: the UE-side connection manager.
//
// Ties together deployment (what is available at the van's position), the
// service policy (what tier the operator grants for the current traffic),
// the channel model (what the granted link delivers) and the handover engine
// (what happens at cell boundaries). One RadioSession corresponds to one
// phone on one carrier.
#pragma once

#include <optional>
#include <vector>

#include "core/rng.hpp"
#include "geo/drive_trace.hpp"
#include "radio/channel.hpp"
#include "radio/deployment.hpp"
#include "ran/handover.hpp"
#include "ran/service_policy.hpp"

namespace wheels::ran {

/// Everything the modem reports for one tick.
struct RadioTick {
  radio::LinkKpis kpis;
  radio::Technology tech = radio::Technology::Lte;
  std::uint32_t cell_id = 0;
  /// EN-DC: while on NSA 5G the UE keeps an LTE/LTE-A anchor; 0 when the
  /// serving technology is 4G (the serving cell *is* the anchor).
  std::uint32_t anchor_cell_id = 0;
  std::vector<HandoverEvent> handovers;
  /// Data-plane interruption within this tick caused by handovers, capped at
  /// the tick length.
  Millis interruption = 0.0;
};

class RadioSession {
 public:
  RadioSession(const radio::Deployment& deployment, TrafficProfile traffic,
               Rng rng);

  void set_traffic(TrafficProfile traffic);
  TrafficProfile traffic() const { return traffic_; }

  /// Advance by one drive sample (dt = trace sample period).
  RadioTick tick(const geo::DriveSample& s, Millis dt);

  radio::Technology current_tech() const { return desired_; }
  radio::Carrier carrier() const { return deployment_->carrier(); }

 private:
  void evaluate_policy(Km km, geo::Timezone tz, bool availability_changed);

  const radio::Deployment* deployment_;
  TrafficProfile traffic_;
  radio::ChannelModel channel_;
  Rng rng_;
  const radio::CellSite* serving_ = nullptr;
  const radio::CellSite* anchor_ = nullptr;  // EN-DC LTE anchor while on NR
  int sector_ = 0;                           // serving sector (3 per site)
  radio::Technology desired_ = radio::Technology::Lte;
  Millis since_policy_eval_ = 1e18;  // force evaluation on first tick
  bool force_fresh_eval_ = true;     // bypass grant stickiness once
  std::vector<radio::Technology> last_available_;
  /// Hysteresis margin for same-technology reselection (km).
  static constexpr Km kReselectionMarginKm = 0.08;
  /// Intra-site sector handover rate (events per km driven). Sites have 3
  /// sectors; crossing a sector boundary is a handover without a new site —
  /// a large share of the paper's per-mile handover counts.
  static Km sector_handover_rate(radio::Carrier c);
  /// Policy re-evaluation period (ms).
  static constexpr Millis kPolicyPeriod = 8'000.0;
};

/// A static test session: standing in front of the best high-speed 5G base
/// station found near a city centre. The paper omitted static tests for
/// (operator, city) pairs without mmWave or midband coverage — try_create
/// mirrors that by returning nullopt.
class StaticSession {
 public:
  static std::optional<StaticSession> try_create(
      const radio::Deployment& deployment, Km city_km, Km search_radius_km,
      Rng rng);

  RadioTick tick(Millis dt);
  radio::Technology tech() const { return cell_.tech; }

 private:
  StaticSession(const radio::Deployment& deployment, radio::CellSite cell,
                Rng rng);

  radio::CellSite cell_;
  radio::ChannelModel channel_;
};

}  // namespace wheels::ran

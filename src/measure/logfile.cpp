#include "measure/logfile.hpp"

#include <cstdio>

namespace wheels::measure {

std::string drm_filename(radio::Carrier carrier, UnixMillis t,
                         int local_offset_minutes) {
  const CivilDateTime c = civil_from_unix(t, local_offset_minutes);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d_%02d-%02d-%02d_", c.year,
                c.month, c.day, c.hour, c.minute, c.second);
  std::string name{buf};
  name += carrier_name(carrier);
  name += ".drm";
  return name;
}

XcalLogger::XcalLogger(radio::Carrier carrier, UnixMillis open_time,
                       int local_offset_minutes) {
  file_.filename = drm_filename(carrier, open_time, local_offset_minutes);
}

void XcalLogger::log(UnixMillis t, const KpiRecord& kpi) {
  DrmRow row;
  row.edt_timestamp = format_timestamp(t, kEdtOffsetMinutes);
  row.kpi = kpi;
  file_.rows.push_back(std::move(row));
}

DrmFile XcalLogger::finish() && { return std::move(file_); }

AppLogger::AppLogger(std::string app_name, TimestampPolicy policy,
                     int local_offset_minutes) {
  file_.app_name = std::move(app_name);
  file_.policy = policy;
  file_.local_offset_minutes = local_offset_minutes;
}

void AppLogger::log(UnixMillis t, double value) {
  int offset = 0;
  switch (file_.policy) {
    case TimestampPolicy::Utc: offset = 0; break;
    case TimestampPolicy::LocalTime: offset = file_.local_offset_minutes; break;
    case TimestampPolicy::Edt: offset = kEdtOffsetMinutes; break;
  }
  file_.lines.push_back({format_timestamp(t, offset), value});
}

AppLogFile AppLogger::finish() && { return std::move(file_); }

}  // namespace wheels::measure

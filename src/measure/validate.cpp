#include "measure/validate.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "measure/enum_names.hpp"
#include "ran/handover.hpp"

namespace wheels::measure {

namespace {

// KPI rows of a static battery test carry t >= start while the test record
// keeps end == start (the battery runner does not advance the drive clock),
// so samples are only checked against the start edge, with one tick of
// slack for the synchronizer's join.
constexpr SimMillis kSampleSlackMs = 1000;

// Coverage segment endpoints are accumulated sums of tick distances; allow
// float noise when checking ordering.
constexpr double kKmEps = 1e-9;

class Collector {
 public:
  explicit Collector(std::size_t cap) : cap_(cap) {}

  bool full() const { return out_.size() >= cap_; }

  template <typename... Parts>
  void add(Parts&&... parts) {
    if (full()) return;
    std::ostringstream os;
    (os << ... << parts);
    out_.push_back(os.str());
  }

  std::vector<std::string> take() { return std::move(out_); }

 private:
  std::size_t cap_;
  std::vector<std::string> out_;
};

bool bad_fraction(double v) { return !std::isfinite(v) || v < 0.0 || v > 1.0; }

void check_coverage(const std::vector<CoverageSegment>& segments,
                    const char* what, radio::Carrier carrier, Collector& out) {
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const auto& s = segments[i];
    if (!std::isfinite(s.map_km_start) || !std::isfinite(s.map_km_end) ||
        s.map_km_end < s.map_km_start - kKmEps) {
      out.add(what, " coverage[", i, "] of ", names::to_name(carrier),
              ": bad segment [", s.map_km_start, ", ", s.map_km_end, "]");
    }
    if (i > 0 && s.map_km_start < segments[i - 1].map_km_end - kKmEps) {
      out.add(what, " coverage[", i, "] of ", names::to_name(carrier),
              ": overlaps previous segment (", s.map_km_start, " < ",
              segments[i - 1].map_km_end, ")");
    }
  }
}

}  // namespace

std::vector<std::string> validate(const ConsolidatedDb& db,
                                  std::size_t max_violations) {
  Collector out{max_violations};

  std::unordered_map<std::uint32_t, const TestRecord*> by_id;
  by_id.reserve(db.tests.size());
  for (const auto& t : db.tests) {
    if (!by_id.emplace(t.id, &t).second) {
      out.add("test ", t.id, ": duplicate id");
    }
    if (t.end < t.start) {
      out.add("test ", t.id, ": end ", t.end, " before start ", t.start);
    }
    if (!std::isfinite(t.start_km) || !std::isfinite(t.end_km)) {
      out.add("test ", t.id, ": non-finite km bounds");
    }
  }

  auto resolve = [&](const char* table, std::size_t i, std::uint32_t test_id,
                     radio::Carrier carrier) -> const TestRecord* {
    const auto it = by_id.find(test_id);
    if (it == by_id.end()) {
      out.add(table, "[", i, "]: unknown test id ", test_id);
      return nullptr;
    }
    if (it->second->carrier != carrier) {
      out.add(table, "[", i, "]: carrier ", names::to_name(carrier),
              " does not match test ", test_id, "'s ",
              names::to_name(it->second->carrier));
    }
    return it->second;
  };

  for (std::size_t i = 0; i < db.kpis.size() && !out.full(); ++i) {
    const auto& k = db.kpis[i];
    const TestRecord* t = resolve("kpis", i, k.test_id, k.carrier);
    if (t != nullptr) {
      if (k.is_static != t->is_static) {
        out.add("kpis[", i, "]: is_static mismatch with test ", t->id);
      }
      if (k.t + kSampleSlackMs < t->start) {
        out.add("kpis[", i, "]: sample at ", k.t, " before test ", t->id,
                "'s start ", t->start);
      }
    }
    if (!std::isfinite(k.rsrp) || !std::isfinite(k.throughput) ||
        !std::isfinite(k.speed) || !std::isfinite(k.km) ||
        !std::isfinite(k.map_km)) {
      out.add("kpis[", i, "]: non-finite field");
    }
    if (bad_fraction(k.bler)) {
      out.add("kpis[", i, "]: bler ", k.bler, " outside [0, 1]");
    }
    if (k.throughput < 0.0) {
      out.add("kpis[", i, "]: negative throughput ", k.throughput);
    }
  }

  for (std::size_t i = 0; i < db.rtts.size() && !out.full(); ++i) {
    const auto& r = db.rtts[i];
    const TestRecord* t = resolve("rtts", i, r.test_id, r.carrier);
    if (t != nullptr) {
      if (r.is_static != t->is_static) {
        out.add("rtts[", i, "]: is_static mismatch with test ", t->id);
      }
      if (r.server != t->server) {
        out.add("rtts[", i, "]: server mismatch with test ", t->id);
      }
      if (r.t + kSampleSlackMs < t->start) {
        out.add("rtts[", i, "]: sample at ", r.t, " before test ", t->id,
                "'s start ", t->start);
      }
    }
    if (!std::isfinite(r.rtt) || r.rtt <= 0.0) {
      out.add("rtts[", i, "]: non-positive rtt ", r.rtt);
    }
  }

  for (std::size_t i = 0; i < db.handovers.size() && !out.full(); ++i) {
    const auto& h = db.handovers[i];
    resolve("handovers", i, h.test_id, h.carrier);
    if (h.event.type != ran::classify_handover(h.event.from, h.event.to)) {
      out.add("handovers[", i, "]: type ", names::to_name(h.event.type),
              " does not match ", names::to_name(h.event.from), " -> ",
              names::to_name(h.event.to));
    }
    if (!std::isfinite(h.event.duration) || h.event.duration < 0.0) {
      out.add("handovers[", i, "]: bad duration ", h.event.duration);
    }
  }

  for (std::size_t i = 0; i < db.app_runs.size() && !out.full(); ++i) {
    const auto& r = db.app_runs[i];
    const TestRecord* t = resolve("app_runs", i, r.test_id, r.carrier);
    if (t != nullptr) {
      if (r.is_static != t->is_static) {
        out.add("app_runs[", i, "]: is_static mismatch with test ", t->id);
      }
      if (r.server != t->server) {
        out.add("app_runs[", i, "]: server mismatch with test ", t->id);
      }
    }
    if (bad_fraction(r.high_speed_5g_fraction)) {
      out.add("app_runs[", i, "]: high_speed_5g_fraction ",
              r.high_speed_5g_fraction, " outside [0, 1]");
    }
    if (bad_fraction(r.rebuffer_fraction)) {
      out.add("app_runs[", i, "]: rebuffer_fraction ", r.rebuffer_fraction,
              " outside [0, 1]");
    }
    if (!std::isfinite(r.median_e2e) || r.median_e2e < 0.0 ||
        !std::isfinite(r.offload_fps) || r.offload_fps < 0.0 ||
        !std::isfinite(r.qoe) || !std::isfinite(r.avg_bitrate) ||
        r.avg_bitrate < 0.0 || !std::isfinite(r.gaming_bitrate) ||
        r.gaming_bitrate < 0.0 || !std::isfinite(r.gaming_latency) ||
        r.gaming_latency < 0.0 || !std::isfinite(r.gaming_frame_drop) ||
        r.gaming_frame_drop < 0.0 ||
        !std::isfinite(r.gaming_max_frame_drop) ||
        r.gaming_max_frame_drop < 0.0) {
      out.add("app_runs[", i, "]: non-finite or negative metric");
    }
    if (!std::isfinite(r.map_percent) || r.map_percent < 0.0 ||
        r.map_percent > 100.0) {
      out.add("app_runs[", i, "]: map_percent ", r.map_percent,
              " outside [0, 100]");
    }
  }

  for (std::size_t i = 0; i < db.link_ticks.size() && !out.full(); ++i) {
    const auto& l = db.link_ticks[i];
    const TestRecord* t = resolve("link_ticks", i, l.test_id, l.carrier);
    if (t != nullptr && l.t + kSampleSlackMs < t->start) {
      out.add("link_ticks[", i, "]: sample at ", l.t, " before test ", t->id,
              "'s start ", t->start);
    }
    if (!std::isfinite(l.cap_dl) || l.cap_dl < 0.0 ||
        !std::isfinite(l.cap_ul) || l.cap_ul < 0.0) {
      out.add("link_ticks[", i, "]: bad capacity dl=", l.cap_dl, " ul=",
              l.cap_ul);
    }
    if (!std::isfinite(l.rtt) || l.rtt <= 0.0) {
      out.add("link_ticks[", i, "]: non-positive rtt ", l.rtt);
    }
    if (!std::isfinite(l.interruption) || l.interruption < 0.0) {
      out.add("link_ticks[", i, "]: bad interruption ", l.interruption);
    }
    if (l.handovers < 0) {
      out.add("link_ticks[", i, "]: negative handovers ", l.handovers);
    }
  }

  for (std::size_t i = 0; i < db.cell_load.size() && !out.full(); ++i) {
    const auto& c = db.cell_load[i];
    if (c.ticks <= 0) {
      out.add("cell_load[", i, "]: non-positive ticks ", c.ticks);
    }
    if (!std::isfinite(c.avg_attached) || c.avg_attached < 0.0 ||
        !std::isfinite(c.avg_active) || c.avg_active < 0.0 ||
        !std::isfinite(c.avg_demand) || c.avg_demand < 0.0 ||
        !std::isfinite(c.avg_allocated) || c.avg_allocated < 0.0 ||
        !std::isfinite(c.avg_capacity) || c.avg_capacity < 0.0) {
      out.add("cell_load[", i, "]: non-finite or negative load field");
    }
    if (c.avg_active > c.avg_attached) {
      out.add("cell_load[", i, "]: avg_active ", c.avg_active,
              " exceeds avg_attached ", c.avg_attached);
    }
    if (bad_fraction(c.utilization)) {
      out.add("cell_load[", i, "]: utilization ", c.utilization,
              " outside [0, 1]");
    }
    if (bad_fraction(c.fairness)) {
      out.add("cell_load[", i, "]: fairness ", c.fairness, " outside [0, 1]");
    }
  }

  for (radio::Carrier c : radio::kAllCarriers) {
    if (out.full()) break;
    const std::size_t ci = carrier_index(c);
    check_coverage(db.active_coverage[ci], "active", c, out);
    check_coverage(db.passive[ci].segments, "passive", c, out);
    if (db.passive[ci].handovers < 0 || db.passive[ci].pings < 0) {
      out.add("passive log of ", names::to_name(c), ": negative counters");
    }
    if (!std::isfinite(db.experiment_runtime[ci]) ||
        db.experiment_runtime[ci] < 0.0) {
      out.add("experiment_runtime of ", names::to_name(c), ": bad value ",
              db.experiment_runtime[ci]);
    }
  }
  if (!std::isfinite(db.driven_km) || db.driven_km < 0.0) {
    out.add("driven_km: bad value ", db.driven_km);
  }
  if (!std::isfinite(db.rx_bytes) || db.rx_bytes < 0.0 ||
      !std::isfinite(db.tx_bytes) || db.tx_bytes < 0.0) {
    out.add("byte counters: bad values rx=", db.rx_bytes, " tx=",
            db.tx_bytes);
  }

  return out.take();
}

void validate_or_throw(const ConsolidatedDb& db) {
  const auto violations = validate(db);
  if (violations.empty()) return;
  std::string msg = "consolidated db failed validation:";
  for (const auto& v : violations) {
    msg += "\n  - " + v;
  }
  throw std::runtime_error{msg};
}

}  // namespace wheels::measure

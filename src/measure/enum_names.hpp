// Centralised bidirectional enum <-> name mapping for every enum that
// appears in the released CSV dataset.
//
// Each module still owns its canonical `*_name()` function; the tables here
// are *built from* those functions (one entry per enumerator), so the CSV
// writers, the read-back parsers and the report binaries all share a single
// source of truth and cannot drift. tests/test_csv_export.cpp parses every
// printed name back through these tables.
#pragma once

#include <array>
#include <string_view>

#include "geo/route.hpp"
#include "geo/timezone.hpp"
#include "measure/records.hpp"
#include "net/server.hpp"
#include "radio/channel.hpp"
#include "radio/technology.hpp"
#include "ran/handover.hpp"

namespace wheels::measure::names {

// Every enumerator of the enums that lack a module-level kAll* array
// (radio::kAllCarriers / kAllTechnologies already exist).
inline constexpr std::array<TestType, 7> kAllTestTypes{
    TestType::DownlinkBulk, TestType::UplinkBulk, TestType::Rtt,
    TestType::ArApp,        TestType::CavApp,     TestType::Video,
    TestType::Gaming};
inline constexpr std::array<AppKind, 4> kAllAppKinds{
    AppKind::Ar, AppKind::Cav, AppKind::Video, AppKind::Gaming};
inline constexpr std::array<geo::RegionType, 3> kAllRegions{
    geo::RegionType::Urban, geo::RegionType::Suburban,
    geo::RegionType::Highway};
inline constexpr std::array<geo::Timezone, 4> kAllTimezones{
    geo::Timezone::Pacific, geo::Timezone::Mountain, geo::Timezone::Central,
    geo::Timezone::Eastern};
inline constexpr std::array<net::ServerKind, 2> kAllServerKinds{
    net::ServerKind::Cloud, net::ServerKind::Edge};
inline constexpr std::array<radio::Direction, 2> kAllDirections{
    radio::Direction::Downlink, radio::Direction::Uplink};
inline constexpr std::array<ran::HandoverType, 4> kAllHandoverTypes{
    ran::HandoverType::FourToFour, ran::HandoverType::FourToFive,
    ran::HandoverType::FiveToFour, ran::HandoverType::FiveToFive};

/// One overload set over all dataset enums, delegating to the owning
/// module's canonical name function.
std::string_view to_name(TestType v);
std::string_view to_name(AppKind v);
std::string_view to_name(radio::Carrier v);
std::string_view to_name(radio::Technology v);
std::string_view to_name(geo::RegionType v);
std::string_view to_name(geo::Timezone v);
std::string_view to_name(net::ServerKind v);
std::string_view to_name(radio::Direction v);
std::string_view to_name(ran::HandoverType v);

/// Exact-match reverse lookups over every enumerator's printed name.
/// Throw std::runtime_error naming the offending text on unknown input.
TestType parse_test_type(std::string_view text);
AppKind parse_app_kind(std::string_view text);
radio::Carrier parse_carrier(std::string_view text);
radio::Technology parse_technology(std::string_view text);
geo::RegionType parse_region(std::string_view text);
geo::Timezone parse_timezone(std::string_view text);
net::ServerKind parse_server_kind(std::string_view text);
radio::Direction parse_direction(std::string_view text);
ran::HandoverType parse_handover_type(std::string_view text);

}  // namespace wheels::measure::names

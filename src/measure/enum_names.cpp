#include "measure/enum_names.hpp"

#include <stdexcept>
#include <string>

namespace wheels::measure::names {

std::string_view to_name(TestType v) { return test_type_name(v); }
std::string_view to_name(AppKind v) { return app_kind_name(v); }
std::string_view to_name(radio::Carrier v) { return radio::carrier_name(v); }
std::string_view to_name(radio::Technology v) {
  return radio::technology_name(v);
}
std::string_view to_name(geo::RegionType v) { return geo::region_name(v); }
std::string_view to_name(geo::Timezone v) { return geo::timezone_name(v); }
std::string_view to_name(net::ServerKind v) {
  return net::server_kind_name(v);
}
std::string_view to_name(radio::Direction v) {
  return radio::direction_name(v);
}
std::string_view to_name(ran::HandoverType v) {
  return ran::handover_type_name(v);
}

namespace {

template <typename E, std::size_t N>
E parse_enum(std::string_view text, const std::array<E, N>& all,
             const char* what) {
  for (const E e : all) {
    if (to_name(e) == text) return e;
  }
  throw std::runtime_error{std::string{"unknown "} + what + " name '" +
                           std::string{text} + "'"};
}

}  // namespace

TestType parse_test_type(std::string_view text) {
  return parse_enum(text, kAllTestTypes, "test type");
}
AppKind parse_app_kind(std::string_view text) {
  return parse_enum(text, kAllAppKinds, "app kind");
}
radio::Carrier parse_carrier(std::string_view text) {
  return parse_enum(text, radio::kAllCarriers, "carrier");
}
radio::Technology parse_technology(std::string_view text) {
  return parse_enum(text, radio::kAllTechnologies, "technology");
}
geo::RegionType parse_region(std::string_view text) {
  return parse_enum(text, kAllRegions, "region");
}
geo::Timezone parse_timezone(std::string_view text) {
  return parse_enum(text, kAllTimezones, "timezone");
}
net::ServerKind parse_server_kind(std::string_view text) {
  return parse_enum(text, kAllServerKinds, "server kind");
}
radio::Direction parse_direction(std::string_view text) {
  return parse_enum(text, kAllDirections, "direction");
}
ran::HandoverType parse_handover_type(std::string_view text) {
  return parse_enum(text, kAllHandoverTypes, "handover type");
}

}  // namespace wheels::measure::names

// Invariant checker for a ConsolidatedDb — the ingest-side guard.
//
// A bundle written by this library always satisfies these invariants; a
// hand-edited or third-party bundle may not. replay::read_dataset runs
// validate_or_throw() after reassembly so the replay engine never operates
// on an inconsistent database.
#pragma once

#include <string>
#include <vector>

#include "measure/records.hpp"

namespace wheels::measure {

/// Checks structural invariants of `db` and returns one human-readable
/// violation string per problem (empty == valid):
///  - test ids are unique; every record's test_id resolves to a test;
///  - records agree with their test on carrier / is_static / server;
///  - test windows are ordered (start <= end) and KPI/RTT samples are not
///    earlier than their test's start;
///  - doubles are finite, fractions (bler, rebuffer, ...) are in [0, 1],
///    RTTs are positive;
///  - coverage segments are ordered, non-overlapping and non-negative;
///  - every handover's type matches ran::classify_handover(from, to).
/// Reporting stops at `max_violations` (the rest would usually repeat the
/// same root cause).
std::vector<std::string> validate(const ConsolidatedDb& db,
                                  std::size_t max_violations = 32);

/// Throws std::runtime_error listing the first violations when validate()
/// finds any.
void validate_or_throw(const ConsolidatedDb& db);

}  // namespace wheels::measure

#include "measure/shard.hpp"

namespace wheels::measure {

bool RecordShard::empty() const {
  return kpis.empty() && rtts.empty() && handovers.empty() &&
         app_runs.empty() && link_ticks.empty() && rx_bytes == 0.0 &&
         tx_bytes == 0.0;
}

void RecordShard::clear() {
  kpis.clear();
  rtts.clear();
  handovers.clear();
  app_runs.clear();
  link_ticks.clear();
  rx_bytes = 0.0;
  tx_bytes = 0.0;
}

void merge_shard_into(ConsolidatedDb& db, RecordShard& shard) {
  db.kpis.insert(db.kpis.end(), shard.kpis.begin(), shard.kpis.end());
  db.rtts.insert(db.rtts.end(), shard.rtts.begin(), shard.rtts.end());
  db.handovers.insert(db.handovers.end(), shard.handovers.begin(),
                      shard.handovers.end());
  db.app_runs.insert(db.app_runs.end(), shard.app_runs.begin(),
                     shard.app_runs.end());
  db.link_ticks.insert(db.link_ticks.end(), shard.link_ticks.begin(),
                       shard.link_ticks.end());
  db.rx_bytes += shard.rx_bytes;
  db.tx_bytes += shard.tx_bytes;
  shard.clear();
}

}  // namespace wheels::measure

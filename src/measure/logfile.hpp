// Raw log files, with all their real-world timestamp pathologies.
//
// Challenge C2 of the paper (§3, Appendix B): XCAL saves `.drm` files whose
// *filenames* carry local-time stamps while their *contents* are stamped in
// EDT; app logs use UTC or local time depending on the app; and the van
// crosses four timezones. This module produces logs in exactly those
// formats; `LogSynchronizer` (log_sync.hpp) is the software that untangles
// them, and the campaign routes every throughput/RTT test through that path
// so the synchronisation logic is exercised end-to-end.
#pragma once

#include <string>
#include <vector>

#include "core/sim_time.hpp"
#include "measure/records.hpp"

namespace wheels::measure {

/// How an app stamps its log lines.
enum class TimestampPolicy { Utc, LocalTime, Edt };

/// Offset of EDT (the XCAL content timezone) from UTC, minutes.
inline constexpr int kEdtOffsetMinutes = -240;

/// One XCAL row: an EDT-stamped snapshot of PHY KPIs. The throughput field
/// of the payload is left at 0 — it is filled by joining the app log.
struct DrmRow {
  std::string edt_timestamp;  // "YYYY-MM-DD HH:MM:SS.mmm"
  KpiRecord kpi;
};

struct DrmFile {
  /// "YYYY-MM-DD_HH-MM-SS_<carrier>.drm", stamped in the *local* timezone of
  /// wherever the van was when the file was opened.
  std::string filename;
  std::vector<DrmRow> rows;
};

/// One app-layer log line: a timestamp in the app's policy plus a value
/// (Mbps for nuttcp, ms for ping).
struct AppLogLine {
  std::string timestamp;
  double value = 0.0;
};

struct AppLogFile {
  std::string app_name;
  TimestampPolicy policy = TimestampPolicy::Utc;
  /// UTC offset (minutes) the app used when policy == LocalTime.
  int local_offset_minutes = 0;
  std::vector<AppLogLine> lines;
};

/// Writer producing DrmFiles the way XCAL does.
class XcalLogger {
 public:
  /// Opens a .drm file; `open_time` and the local offset make the filename.
  XcalLogger(radio::Carrier carrier, UnixMillis open_time,
             int local_offset_minutes);

  void log(UnixMillis t, const KpiRecord& kpi);
  DrmFile finish() &&;

 private:
  DrmFile file_;
};

/// Writer producing app logs under a timestamp policy.
class AppLogger {
 public:
  AppLogger(std::string app_name, TimestampPolicy policy,
            int local_offset_minutes);

  void log(UnixMillis t, double value);
  AppLogFile finish() &&;

 private:
  AppLogFile file_;
};

/// Filename for a .drm file opened at `t` observed at `local_offset`.
std::string drm_filename(radio::Carrier carrier, UnixMillis t,
                         int local_offset_minutes);

}  // namespace wheels::measure

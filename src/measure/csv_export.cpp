#include "measure/csv_export.hpp"

#include <filesystem>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/obs/metrics.hpp"

namespace wheels::measure {

namespace {

// The default ostream precision (6 significant digits) silently rounds
// doubles on the way out, so a written-then-read bundle was NOT the database
// that produced it. max_digits10 (17) guarantees the decimal text converts
// back to the identical bits (verified by tests/test_csv_export.cpp).
class LosslessDoubles {
 public:
  explicit LosslessDoubles(std::ostream& os)
      : os_(os),
        saved_(os.precision(std::numeric_limits<double>::max_digits10)) {}
  ~LosslessDoubles() { os_.precision(saved_); }
  LosslessDoubles(const LosslessDoubles&) = delete;
  LosslessDoubles& operator=(const LosslessDoubles&) = delete;

 private:
  std::ostream& os_;
  std::streamsize saved_;
};

constexpr char kKpiHeader[] =
    "test_id,t,carrier,tech,cell_id,rsrp,mcs,bler,ca,throughput,speed,km,"
    "map_km,tz,region,handovers,server,direction,is_static";

constexpr char kRttHeader[] =
    "test_id,t,carrier,tech,rtt,speed,tz,server,is_static";

int carrier_code(radio::Carrier c) { return static_cast<int>(c); }
int tech_code(radio::Technology t) { return static_cast<int>(t); }

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> out;
  std::string cell;
  std::stringstream ss{line};
  while (std::getline(ss, cell, ',')) out.push_back(cell);
  return out;
}

void expect_header(std::istream& is, const char* expected) {
  std::string header;
  if (!std::getline(is, header) || header != expected) {
    throw std::runtime_error{"csv: unexpected header '" + header + "'"};
  }
}

}  // namespace

void write_tests_csv(std::ostream& os, const ConsolidatedDb& db) {
  LosslessDoubles guard{os};
  os << "id,type,carrier,is_static,start,end,start_km,end_km,tz,server,"
        "direction,cycle\n";
  for (const auto& t : db.tests) {
    os << t.id << ',' << test_type_name(t.type) << ','
       << carrier_code(t.carrier) << ',' << t.is_static << ',' << t.start
       << ',' << t.end << ',' << t.start_km << ',' << t.end_km << ','
       << static_cast<int>(t.tz) << ',' << static_cast<int>(t.server) << ','
       << static_cast<int>(t.direction) << ',' << t.cycle << '\n';
  }
}

void write_kpis_csv(std::ostream& os, const ConsolidatedDb& db) {
  LosslessDoubles guard{os};
  os << kKpiHeader << '\n';
  for (const auto& k : db.kpis) {
    os << k.test_id << ',' << k.t << ',' << carrier_code(k.carrier) << ','
       << tech_code(k.tech) << ',' << k.cell_id << ',' << k.rsrp << ','
       << k.mcs << ',' << k.bler << ',' << k.ca << ',' << k.throughput << ','
       << k.speed << ',' << k.km << ',' << k.map_km << ','
       << static_cast<int>(k.tz) << ',' << static_cast<int>(k.region) << ','
       << k.handovers << ',' << static_cast<int>(k.server) << ','
       << static_cast<int>(k.direction) << ',' << k.is_static << '\n';
  }
}

void write_rtts_csv(std::ostream& os, const ConsolidatedDb& db) {
  LosslessDoubles guard{os};
  os << kRttHeader << '\n';
  for (const auto& r : db.rtts) {
    os << r.test_id << ',' << r.t << ',' << carrier_code(r.carrier) << ','
       << tech_code(r.tech) << ',' << r.rtt << ',' << r.speed << ','
       << static_cast<int>(r.tz) << ',' << static_cast<int>(r.server) << ','
       << r.is_static << '\n';
  }
}

void write_handovers_csv(std::ostream& os, const ConsolidatedDb& db) {
  LosslessDoubles guard{os};
  os << "test_id,carrier,direction,t,duration,from_tech,to_tech,from_cell,"
        "to_cell,type\n";
  for (const auto& h : db.handovers) {
    os << h.test_id << ',' << carrier_code(h.carrier) << ','
       << static_cast<int>(h.direction) << ',' << h.event.t << ','
       << h.event.duration << ',' << tech_code(h.event.from) << ','
       << tech_code(h.event.to) << ',' << h.event.from_cell << ','
       << h.event.to_cell << ',' << static_cast<int>(h.event.type) << '\n';
  }
}

void write_app_runs_csv(std::ostream& os, const ConsolidatedDb& db) {
  LosslessDoubles guard{os};
  os << "test_id,app,carrier,is_static,server,high_speed_5g_fraction,"
        "handovers,compressed,median_e2e,offload_fps,map_percent,qoe,"
        "rebuffer_fraction,avg_bitrate,gaming_bitrate,gaming_latency,"
        "gaming_frame_drop,gaming_max_frame_drop\n";
  for (const auto& r : db.app_runs) {
    os << r.test_id << ',' << app_kind_name(r.app) << ','
       << carrier_code(r.carrier) << ',' << r.is_static << ','
       << static_cast<int>(r.server) << ',' << r.high_speed_5g_fraction << ','
       << r.handovers << ',' << r.compressed << ',' << r.median_e2e << ','
       << r.offload_fps << ',' << r.map_percent << ',' << r.qoe << ','
       << r.rebuffer_fraction << ',' << r.avg_bitrate << ','
       << r.gaming_bitrate << ',' << r.gaming_latency << ','
       << r.gaming_frame_drop << ',' << r.gaming_max_frame_drop << '\n';
  }
}

void write_coverage_csv(std::ostream& os,
                        const std::vector<CoverageSegment>& segments,
                        radio::Carrier carrier, bool passive) {
  LosslessDoubles guard{os};
  os << "carrier,view,map_km_start,map_km_end,tech\n";
  for (const auto& s : segments) {
    os << carrier_code(carrier) << ',' << (passive ? "passive" : "active")
       << ',' << s.map_km_start << ',' << s.map_km_end << ','
       << tech_code(s.tech) << '\n';
  }
}

std::vector<KpiRecord> read_kpis_csv(std::istream& is) {
  expect_header(is, kKpiHeader);
  std::vector<KpiRecord> out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto cells = split_line(line);
    if (cells.size() != 19) {
      throw std::runtime_error{"csv: bad kpi row '" + line + "'"};
    }
    KpiRecord k;
    k.test_id = static_cast<std::uint32_t>(std::stoul(cells[0]));
    k.t = std::stoll(cells[1]);
    k.carrier = static_cast<radio::Carrier>(std::stoi(cells[2]));
    k.tech = static_cast<radio::Technology>(std::stoi(cells[3]));
    k.cell_id = static_cast<std::uint32_t>(std::stoul(cells[4]));
    k.rsrp = std::stod(cells[5]);
    k.mcs = std::stoi(cells[6]);
    k.bler = std::stod(cells[7]);
    k.ca = std::stoi(cells[8]);
    k.throughput = std::stod(cells[9]);
    k.speed = std::stod(cells[10]);
    k.km = std::stod(cells[11]);
    k.map_km = std::stod(cells[12]);
    k.tz = static_cast<geo::Timezone>(std::stoi(cells[13]));
    k.region = static_cast<geo::RegionType>(std::stoi(cells[14]));
    k.handovers = std::stoi(cells[15]);
    k.server = static_cast<net::ServerKind>(std::stoi(cells[16]));
    k.direction = static_cast<radio::Direction>(std::stoi(cells[17]));
    k.is_static = cells[18] == "1";
    out.push_back(k);
  }
  return out;
}

std::vector<RttRecord> read_rtts_csv(std::istream& is) {
  expect_header(is, kRttHeader);
  std::vector<RttRecord> out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto cells = split_line(line);
    if (cells.size() != 9) {
      throw std::runtime_error{"csv: bad rtt row '" + line + "'"};
    }
    RttRecord r;
    r.test_id = static_cast<std::uint32_t>(std::stoul(cells[0]));
    r.t = std::stoll(cells[1]);
    r.carrier = static_cast<radio::Carrier>(std::stoi(cells[2]));
    r.tech = static_cast<radio::Technology>(std::stoi(cells[3]));
    r.rtt = std::stod(cells[4]);
    r.speed = std::stod(cells[5]);
    r.tz = static_cast<geo::Timezone>(std::stoi(cells[6]));
    r.server = static_cast<net::ServerKind>(std::stoi(cells[7]));
    r.is_static = cells[8] == "1";
    out.push_back(r);
  }
  return out;
}

std::vector<std::string> write_dataset(
    const ConsolidatedDb& db, const std::string& directory,
    const core::obs::RunManifest& manifest) {
  namespace fs = std::filesystem;
  fs::create_directories(directory);
  std::vector<std::string> written;

  auto emit = [&](const std::string& name, auto&& writer) {
    const fs::path path = fs::path(directory) / name;
    std::ofstream os{path};
    if (!os) throw std::runtime_error{"csv: cannot open " + path.string()};
    writer(os);
    written.push_back(path.string());
  };

  emit("tests.csv", [&](std::ostream& os) { write_tests_csv(os, db); });
  emit("kpis.csv", [&](std::ostream& os) { write_kpis_csv(os, db); });
  emit("rtts.csv", [&](std::ostream& os) { write_rtts_csv(os, db); });
  emit("handovers.csv",
       [&](std::ostream& os) { write_handovers_csv(os, db); });
  emit("app_runs.csv", [&](std::ostream& os) { write_app_runs_csv(os, db); });
  for (radio::Carrier c : radio::kAllCarriers) {
    const std::size_t ci = carrier_index(c);
    const std::string base{carrier_name(c)};
    emit("coverage_passive_" + base + ".csv", [&](std::ostream& os) {
      write_coverage_csv(os, db.passive[ci].segments, c, true);
    });
    emit("coverage_active_" + base + ".csv", [&](std::ostream& os) {
      write_coverage_csv(os, db.active_coverage[ci], c, false);
    });
  }
  const fs::path manifest_path = fs::path(directory) / "manifest.json";
  core::obs::write_manifest(manifest, manifest_path.string());
  written.push_back(manifest_path.string());

  core::obs::flush_to_env_sinks();
  return written;
}

std::vector<std::string> write_dataset(const ConsolidatedDb& db,
                                       const std::string& directory) {
  return write_dataset(db, directory, core::obs::make_run_manifest());
}

}  // namespace wheels::measure

#include "measure/csv_export.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/obs/metrics.hpp"
#include "measure/enum_names.hpp"

namespace wheels::measure {

namespace {

// The default ostream precision (6 significant digits) silently rounds
// doubles on the way out, so a written-then-read bundle was NOT the database
// that produced it. max_digits10 (17) guarantees the decimal text converts
// back to the identical bits (verified by tests/test_csv_export.cpp).
class LosslessDoubles {
 public:
  explicit LosslessDoubles(std::ostream& os)
      : os_(os),
        saved_(os.precision(std::numeric_limits<double>::max_digits10)) {}
  ~LosslessDoubles() { os_.precision(saved_); }
  LosslessDoubles(const LosslessDoubles&) = delete;
  LosslessDoubles& operator=(const LosslessDoubles&) = delete;

 private:
  std::ostream& os_;
  std::streamsize saved_;
};

constexpr char kTestHeader[] =
    "id,type,carrier,is_static,start,end,start_km,end_km,tz,server,"
    "direction,cycle";

constexpr char kKpiHeader[] =
    "test_id,t,carrier,tech,cell_id,rsrp,mcs,bler,ca,throughput,speed,km,"
    "map_km,tz,region,handovers,server,direction,is_static";

constexpr char kRttHeader[] =
    "test_id,t,carrier,tech,rtt,speed,tz,server,is_static";

constexpr char kHandoverHeader[] =
    "test_id,carrier,direction,t,duration,from_tech,to_tech,from_cell,"
    "to_cell,type";

constexpr char kAppRunHeader[] =
    "test_id,app,carrier,is_static,server,high_speed_5g_fraction,"
    "handovers,compressed,median_e2e,offload_fps,map_percent,qoe,"
    "rebuffer_fraction,avg_bitrate,gaming_bitrate,gaming_latency,"
    "gaming_frame_drop,gaming_max_frame_drop";

constexpr char kLinkTickHeader[] =
    "test_id,t,carrier,tech,cap_dl,cap_ul,rtt,interruption,handovers";

constexpr char kCellLoadHeader[] =
    "carrier,cell_id,tech,ticks,avg_attached,avg_active,avg_demand,"
    "avg_allocated,avg_capacity,utilization,fairness";

constexpr char kCoverageHeader[] = "carrier,view,map_km_start,map_km_end,tech";

constexpr char kSummaryHeader[] = "key,carrier,value";

constexpr char kCellsHeader[] = "carrier,view,cell_id";

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(',', start);
    if (pos == std::string::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

// Strict row cursor over one CSV table. Verifies the header on construction,
// enforces the column count per row, rejects a repeated header line, and
// parses each field with full-string validation. Every failure throws
// std::runtime_error citing the 1-based line number of the offending line.
class CsvTable {
 public:
  CsvTable(std::istream& is, const char* header, std::size_t columns)
      : is_(is), header_(header), columns_(columns) {
    std::string line;
    if (!std::getline(is_, line)) {
      throw std::runtime_error{"csv: line 1: missing header, expected '" +
                               header_ + "'"};
    }
    strip_cr(line);
    if (line != header_) {
      throw std::runtime_error{"csv: line 1: unexpected header '" + line +
                               "', expected '" + header_ + "'"};
    }
  }

  /// Advances to the next data row; false at end of input. Blank lines are
  /// skipped (the writers never emit them mid-table).
  bool next(std::vector<std::string>& cells) {
    std::string line;
    while (std::getline(is_, line)) {
      ++line_;
      strip_cr(line);
      if (line.empty()) continue;
      if (line == header_) fail("duplicated header");
      cells = split_line(line);
      if (cells.size() != columns_) {
        fail("expected " + std::to_string(columns_) + " fields, got " +
             std::to_string(cells.size()));
      }
      return true;
    }
    return false;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error{"csv: line " + std::to_string(line_) + ": " +
                             msg};
  }

  double as_double(const std::string& cell) const {
    if (cell.empty()) fail("empty numeric field");
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(cell.c_str(), &end);
    if (end != cell.c_str() + cell.size()) {
      fail("malformed number '" + cell + "'");
    }
    if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
      fail("number out of range '" + cell + "'");
    }
    if (!std::isfinite(v)) fail("non-finite number '" + cell + "'");
    return v;
  }

  long long as_i64(const std::string& cell) const {
    if (cell.empty()) fail("empty integer field");
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(cell.c_str(), &end, 10);
    if (end != cell.c_str() + cell.size()) {
      fail("malformed integer '" + cell + "'");
    }
    if (errno == ERANGE) fail("integer out of range '" + cell + "'");
    return v;
  }

  int as_int(const std::string& cell) const {
    const long long v = as_i64(cell);
    if (v < std::numeric_limits<int>::min() ||
        v > std::numeric_limits<int>::max()) {
      fail("integer out of range '" + cell + "'");
    }
    return static_cast<int>(v);
  }

  std::uint32_t as_u32(const std::string& cell) const {
    const long long v = as_i64(cell);
    if (v < 0 || v > std::numeric_limits<std::uint32_t>::max()) {
      fail("id out of range '" + cell + "'");
    }
    return static_cast<std::uint32_t>(v);
  }

  bool as_bool(const std::string& cell) const {
    if (cell == "0") return false;
    if (cell == "1") return true;
    fail("malformed bool '" + cell + "' (expected 0 or 1)");
  }

  /// Runs one of the names::parse_* lookups, re-raising its "unknown ...
  /// name" error with this row's line number attached.
  template <typename Parser>
  auto as_enum(const std::string& cell, Parser parser) const {
    try {
      return parser(cell);
    } catch (const std::runtime_error& e) {
      fail(e.what());
    }
  }

 private:
  std::istream& is_;
  std::string header_;
  std::size_t columns_;
  std::size_t line_ = 1;  // the header occupies line 1
};

}  // namespace

std::string csv_double(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

void write_tests_csv(std::ostream& os, const ConsolidatedDb& db) {
  LosslessDoubles guard{os};
  os << kTestHeader << '\n';
  for (const auto& t : db.tests) {
    os << t.id << ',' << names::to_name(t.type) << ','
       << names::to_name(t.carrier) << ',' << t.is_static << ',' << t.start
       << ',' << t.end << ',' << t.start_km << ',' << t.end_km << ','
       << names::to_name(t.tz) << ',' << names::to_name(t.server) << ','
       << names::to_name(t.direction) << ',' << t.cycle << '\n';
  }
}

void write_kpis_csv(std::ostream& os, const ConsolidatedDb& db) {
  LosslessDoubles guard{os};
  os << kKpiHeader << '\n';
  for (const auto& k : db.kpis) {
    os << k.test_id << ',' << k.t << ',' << names::to_name(k.carrier) << ','
       << names::to_name(k.tech) << ',' << k.cell_id << ',' << k.rsrp << ','
       << k.mcs << ',' << k.bler << ',' << k.ca << ',' << k.throughput << ','
       << k.speed << ',' << k.km << ',' << k.map_km << ','
       << names::to_name(k.tz) << ',' << names::to_name(k.region) << ','
       << k.handovers << ',' << names::to_name(k.server) << ','
       << names::to_name(k.direction) << ',' << k.is_static << '\n';
  }
}

void write_rtts_csv(std::ostream& os, const ConsolidatedDb& db) {
  LosslessDoubles guard{os};
  os << kRttHeader << '\n';
  for (const auto& r : db.rtts) {
    os << r.test_id << ',' << r.t << ',' << names::to_name(r.carrier) << ','
       << names::to_name(r.tech) << ',' << r.rtt << ',' << r.speed << ','
       << names::to_name(r.tz) << ',' << names::to_name(r.server) << ','
       << r.is_static << '\n';
  }
}

void write_handovers_csv(std::ostream& os, const ConsolidatedDb& db) {
  LosslessDoubles guard{os};
  os << kHandoverHeader << '\n';
  for (const auto& h : db.handovers) {
    os << h.test_id << ',' << names::to_name(h.carrier) << ','
       << names::to_name(h.direction) << ',' << h.event.t << ','
       << h.event.duration << ',' << names::to_name(h.event.from) << ','
       << names::to_name(h.event.to) << ',' << h.event.from_cell << ','
       << h.event.to_cell << ',' << names::to_name(h.event.type) << '\n';
  }
}

void write_app_runs_csv(std::ostream& os, const ConsolidatedDb& db) {
  LosslessDoubles guard{os};
  os << kAppRunHeader << '\n';
  for (const auto& r : db.app_runs) {
    os << r.test_id << ',' << names::to_name(r.app) << ','
       << names::to_name(r.carrier) << ',' << r.is_static << ','
       << names::to_name(r.server) << ',' << r.high_speed_5g_fraction << ','
       << r.handovers << ',' << r.compressed << ',' << r.median_e2e << ','
       << r.offload_fps << ',' << r.map_percent << ',' << r.qoe << ','
       << r.rebuffer_fraction << ',' << r.avg_bitrate << ','
       << r.gaming_bitrate << ',' << r.gaming_latency << ','
       << r.gaming_frame_drop << ',' << r.gaming_max_frame_drop << '\n';
  }
}

void write_link_ticks_csv(std::ostream& os, const ConsolidatedDb& db) {
  LosslessDoubles guard{os};
  os << kLinkTickHeader << '\n';
  for (const auto& l : db.link_ticks) {
    os << l.test_id << ',' << l.t << ',' << names::to_name(l.carrier) << ','
       << names::to_name(l.tech) << ',' << l.cap_dl << ',' << l.cap_ul << ','
       << l.rtt << ',' << l.interruption << ',' << l.handovers << '\n';
  }
}

void write_cell_load_csv(std::ostream& os, const ConsolidatedDb& db) {
  LosslessDoubles guard{os};
  os << kCellLoadHeader << '\n';
  for (const auto& c : db.cell_load) {
    os << names::to_name(c.carrier) << ',' << c.cell_id << ','
       << names::to_name(c.tech) << ',' << c.ticks << ',' << c.avg_attached
       << ',' << c.avg_active << ',' << c.avg_demand << ',' << c.avg_allocated
       << ',' << c.avg_capacity << ',' << c.utilization << ',' << c.fairness
       << '\n';
  }
}

void write_coverage_csv(std::ostream& os,
                        const std::vector<CoverageSegment>& segments,
                        radio::Carrier carrier, bool passive) {
  LosslessDoubles guard{os};
  os << kCoverageHeader << '\n';
  for (const auto& s : segments) {
    os << names::to_name(carrier) << ',' << (passive ? "passive" : "active")
       << ',' << s.map_km_start << ',' << s.map_km_end << ','
       << names::to_name(s.tech) << '\n';
  }
}

void write_summary_csv(std::ostream& os, const ConsolidatedDb& db) {
  LosslessDoubles guard{os};
  os << kSummaryHeader << '\n';
  os << "driven_km,," << db.driven_km << '\n';
  os << "rx_bytes,," << db.rx_bytes << '\n';
  os << "tx_bytes,," << db.tx_bytes << '\n';
  for (radio::Carrier c : radio::kAllCarriers) {
    const std::size_t ci = carrier_index(c);
    os << "experiment_runtime," << names::to_name(c) << ','
       << db.experiment_runtime[ci] << '\n';
    os << "passive_handovers," << names::to_name(c) << ','
       << db.passive[ci].handovers << '\n';
    os << "passive_pings," << names::to_name(c) << ',' << db.passive[ci].pings
       << '\n';
  }
}

void write_cells_csv(std::ostream& os, const ConsolidatedDb& db) {
  os << kCellsHeader << '\n';
  for (radio::Carrier c : radio::kAllCarriers) {
    const std::size_t ci = carrier_index(c);
    for (const std::uint32_t id : db.active_cells[ci]) {
      os << names::to_name(c) << ",active," << id << '\n';
    }
    for (const std::uint32_t id : db.passive[ci].cells) {
      os << names::to_name(c) << ",passive," << id << '\n';
    }
  }
}

std::vector<TestRecord> read_tests_csv(std::istream& is) {
  CsvTable table{is, kTestHeader, 12};
  std::vector<TestRecord> out;
  std::vector<std::string> cells;
  while (table.next(cells)) {
    TestRecord t;
    t.id = table.as_u32(cells[0]);
    t.type = table.as_enum(cells[1], names::parse_test_type);
    t.carrier = table.as_enum(cells[2], names::parse_carrier);
    t.is_static = table.as_bool(cells[3]);
    t.start = table.as_i64(cells[4]);
    t.end = table.as_i64(cells[5]);
    t.start_km = table.as_double(cells[6]);
    t.end_km = table.as_double(cells[7]);
    t.tz = table.as_enum(cells[8], names::parse_timezone);
    t.server = table.as_enum(cells[9], names::parse_server_kind);
    t.direction = table.as_enum(cells[10], names::parse_direction);
    t.cycle = table.as_int(cells[11]);
    out.push_back(t);
  }
  return out;
}

std::vector<KpiRecord> read_kpis_csv(std::istream& is) {
  CsvTable table{is, kKpiHeader, 19};
  std::vector<KpiRecord> out;
  std::vector<std::string> cells;
  while (table.next(cells)) {
    KpiRecord k;
    k.test_id = table.as_u32(cells[0]);
    k.t = table.as_i64(cells[1]);
    k.carrier = table.as_enum(cells[2], names::parse_carrier);
    k.tech = table.as_enum(cells[3], names::parse_technology);
    k.cell_id = table.as_u32(cells[4]);
    k.rsrp = table.as_double(cells[5]);
    k.mcs = table.as_int(cells[6]);
    k.bler = table.as_double(cells[7]);
    k.ca = table.as_int(cells[8]);
    k.throughput = table.as_double(cells[9]);
    k.speed = table.as_double(cells[10]);
    k.km = table.as_double(cells[11]);
    k.map_km = table.as_double(cells[12]);
    k.tz = table.as_enum(cells[13], names::parse_timezone);
    k.region = table.as_enum(cells[14], names::parse_region);
    k.handovers = table.as_int(cells[15]);
    k.server = table.as_enum(cells[16], names::parse_server_kind);
    k.direction = table.as_enum(cells[17], names::parse_direction);
    k.is_static = table.as_bool(cells[18]);
    out.push_back(k);
  }
  return out;
}

std::vector<RttRecord> read_rtts_csv(std::istream& is) {
  CsvTable table{is, kRttHeader, 9};
  std::vector<RttRecord> out;
  std::vector<std::string> cells;
  while (table.next(cells)) {
    RttRecord r;
    r.test_id = table.as_u32(cells[0]);
    r.t = table.as_i64(cells[1]);
    r.carrier = table.as_enum(cells[2], names::parse_carrier);
    r.tech = table.as_enum(cells[3], names::parse_technology);
    r.rtt = table.as_double(cells[4]);
    r.speed = table.as_double(cells[5]);
    r.tz = table.as_enum(cells[6], names::parse_timezone);
    r.server = table.as_enum(cells[7], names::parse_server_kind);
    r.is_static = table.as_bool(cells[8]);
    out.push_back(r);
  }
  return out;
}

std::vector<HandoverRecord> read_handovers_csv(std::istream& is) {
  CsvTable table{is, kHandoverHeader, 10};
  std::vector<HandoverRecord> out;
  std::vector<std::string> cells;
  while (table.next(cells)) {
    HandoverRecord h;
    h.test_id = table.as_u32(cells[0]);
    h.carrier = table.as_enum(cells[1], names::parse_carrier);
    h.direction = table.as_enum(cells[2], names::parse_direction);
    h.event.t = table.as_i64(cells[3]);
    h.event.duration = table.as_double(cells[4]);
    h.event.from = table.as_enum(cells[5], names::parse_technology);
    h.event.to = table.as_enum(cells[6], names::parse_technology);
    h.event.from_cell = table.as_u32(cells[7]);
    h.event.to_cell = table.as_u32(cells[8]);
    h.event.type = table.as_enum(cells[9], names::parse_handover_type);
    out.push_back(h);
  }
  return out;
}

std::vector<AppRunRecord> read_app_runs_csv(std::istream& is) {
  CsvTable table{is, kAppRunHeader, 18};
  std::vector<AppRunRecord> out;
  std::vector<std::string> cells;
  while (table.next(cells)) {
    AppRunRecord r;
    r.test_id = table.as_u32(cells[0]);
    r.app = table.as_enum(cells[1], names::parse_app_kind);
    r.carrier = table.as_enum(cells[2], names::parse_carrier);
    r.is_static = table.as_bool(cells[3]);
    r.server = table.as_enum(cells[4], names::parse_server_kind);
    r.high_speed_5g_fraction = table.as_double(cells[5]);
    r.handovers = table.as_int(cells[6]);
    r.compressed = table.as_bool(cells[7]);
    r.median_e2e = table.as_double(cells[8]);
    r.offload_fps = table.as_double(cells[9]);
    r.map_percent = table.as_double(cells[10]);
    r.qoe = table.as_double(cells[11]);
    r.rebuffer_fraction = table.as_double(cells[12]);
    r.avg_bitrate = table.as_double(cells[13]);
    r.gaming_bitrate = table.as_double(cells[14]);
    r.gaming_latency = table.as_double(cells[15]);
    r.gaming_frame_drop = table.as_double(cells[16]);
    r.gaming_max_frame_drop = table.as_double(cells[17]);
    out.push_back(r);
  }
  return out;
}

std::vector<CoverageSegment> read_coverage_csv(std::istream& is,
                                               radio::Carrier expected_carrier,
                                               bool expected_passive) {
  CsvTable table{is, kCoverageHeader, 5};
  std::vector<CoverageSegment> out;
  std::vector<std::string> cells;
  const std::string expected_view = expected_passive ? "passive" : "active";
  while (table.next(cells)) {
    const auto carrier = table.as_enum(cells[0], names::parse_carrier);
    if (carrier != expected_carrier) {
      table.fail("carrier '" + cells[0] + "' does not match the file's '" +
                 std::string{names::to_name(expected_carrier)} + "'");
    }
    if (cells[1] != expected_view) {
      table.fail("view '" + cells[1] + "' does not match the file's '" +
                 expected_view + "'");
    }
    CoverageSegment s;
    s.map_km_start = table.as_double(cells[2]);
    s.map_km_end = table.as_double(cells[3]);
    s.tech = table.as_enum(cells[4], names::parse_technology);
    out.push_back(s);
  }
  return out;
}

std::vector<LinkTickRecord> read_link_ticks_csv(std::istream& is) {
  CsvTable table{is, kLinkTickHeader, 9};
  std::vector<LinkTickRecord> out;
  std::vector<std::string> cells;
  while (table.next(cells)) {
    LinkTickRecord l;
    l.test_id = table.as_u32(cells[0]);
    l.t = table.as_i64(cells[1]);
    l.carrier = table.as_enum(cells[2], names::parse_carrier);
    l.tech = table.as_enum(cells[3], names::parse_technology);
    l.cap_dl = table.as_double(cells[4]);
    l.cap_ul = table.as_double(cells[5]);
    l.rtt = table.as_double(cells[6]);
    l.interruption = table.as_double(cells[7]);
    l.handovers = table.as_int(cells[8]);
    out.push_back(l);
  }
  return out;
}

std::vector<CellLoadRecord> read_cell_load_csv(std::istream& is) {
  CsvTable table{is, kCellLoadHeader, 11};
  std::vector<CellLoadRecord> out;
  std::vector<std::string> cells;
  while (table.next(cells)) {
    CellLoadRecord c;
    c.carrier = table.as_enum(cells[0], names::parse_carrier);
    c.cell_id = table.as_u32(cells[1]);
    c.tech = table.as_enum(cells[2], names::parse_technology);
    c.ticks = table.as_i64(cells[3]);
    c.avg_attached = table.as_double(cells[4]);
    c.avg_active = table.as_double(cells[5]);
    c.avg_demand = table.as_double(cells[6]);
    c.avg_allocated = table.as_double(cells[7]);
    c.avg_capacity = table.as_double(cells[8]);
    c.utilization = table.as_double(cells[9]);
    c.fairness = table.as_double(cells[10]);
    out.push_back(c);
  }
  return out;
}

void read_summary_csv(std::istream& is, ConsolidatedDb& db) {
  CsvTable table{is, kSummaryHeader, 3};
  std::vector<std::string> cells;
  while (table.next(cells)) {
    const std::string& key = cells[0];
    const bool global = cells[1].empty();
    if (key == "driven_km" || key == "rx_bytes" || key == "tx_bytes") {
      if (!global) table.fail("key '" + key + "' takes no carrier");
      const double v = table.as_double(cells[2]);
      if (key == "driven_km") {
        db.driven_km = v;
      } else if (key == "rx_bytes") {
        db.rx_bytes = v;
      } else {
        db.tx_bytes = v;
      }
      continue;
    }
    if (global) table.fail("key '" + key + "' requires a carrier");
    const auto carrier = table.as_enum(cells[1], names::parse_carrier);
    const std::size_t ci = carrier_index(carrier);
    if (key == "experiment_runtime") {
      db.experiment_runtime[ci] = table.as_double(cells[2]);
    } else if (key == "passive_handovers") {
      db.passive[ci].carrier = carrier;
      db.passive[ci].handovers = table.as_i64(cells[2]);
    } else if (key == "passive_pings") {
      db.passive[ci].carrier = carrier;
      db.passive[ci].pings = table.as_i64(cells[2]);
    } else {
      table.fail("unknown summary key '" + key + "'");
    }
  }
}

void read_cells_csv(std::istream& is, ConsolidatedDb& db) {
  CsvTable table{is, kCellsHeader, 3};
  std::vector<std::string> cells;
  while (table.next(cells)) {
    const auto carrier = table.as_enum(cells[0], names::parse_carrier);
    const std::size_t ci = carrier_index(carrier);
    const std::uint32_t id = table.as_u32(cells[2]);
    if (cells[1] == "active") {
      db.active_cells[ci].insert(id);
    } else if (cells[1] == "passive") {
      db.passive[ci].carrier = carrier;
      db.passive[ci].cells.insert(id);
    } else {
      table.fail("unknown view '" + cells[1] + "' (expected active|passive)");
    }
  }
}

std::vector<std::string> write_dataset(
    const ConsolidatedDb& db, const std::string& directory,
    const core::obs::RunManifest& manifest) {
  namespace fs = std::filesystem;
  fs::create_directories(directory);
  std::vector<std::string> written;

  auto emit = [&](const std::string& name, auto&& writer) {
    const fs::path path = fs::path(directory) / name;
    std::ofstream os{path};
    if (!os) throw std::runtime_error{"csv: cannot open " + path.string()};
    writer(os);
    written.push_back(path.string());
  };

  emit("tests.csv", [&](std::ostream& os) { write_tests_csv(os, db); });
  emit("kpis.csv", [&](std::ostream& os) { write_kpis_csv(os, db); });
  emit("rtts.csv", [&](std::ostream& os) { write_rtts_csv(os, db); });
  emit("handovers.csv",
       [&](std::ostream& os) { write_handovers_csv(os, db); });
  emit("app_runs.csv", [&](std::ostream& os) { write_app_runs_csv(os, db); });
  // link_ticks.csv exists only when app sessions recorded their per-tick
  // link state: emitting an empty table unconditionally would change the
  // byte content of the committed golden bundle and every appless bundle.
  if (!db.link_ticks.empty()) {
    emit("link_ticks.csv",
         [&](std::ostream& os) { write_link_ticks_csv(os, db); });
  }
  // cell_load.csv exists only for population campaigns: emitting an empty
  // table unconditionally would change the byte content of every seed bundle
  // (and the replay_roundtrip / golden CI gates diff bundles recursively).
  if (!db.cell_load.empty()) {
    emit("cell_load.csv",
         [&](std::ostream& os) { write_cell_load_csv(os, db); });
  }
  for (radio::Carrier c : radio::kAllCarriers) {
    const std::size_t ci = carrier_index(c);
    const std::string base{carrier_name(c)};
    emit("coverage_passive_" + base + ".csv", [&](std::ostream& os) {
      write_coverage_csv(os, db.passive[ci].segments, c, true);
    });
    emit("coverage_active_" + base + ".csv", [&](std::ostream& os) {
      write_coverage_csv(os, db.active_coverage[ci], c, false);
    });
  }
  emit("summary.csv", [&](std::ostream& os) { write_summary_csv(os, db); });
  emit("cells.csv", [&](std::ostream& os) { write_cells_csv(os, db); });
  const fs::path manifest_path = fs::path(directory) / "manifest.json";
  core::obs::write_manifest(manifest, manifest_path.string());
  written.push_back(manifest_path.string());

  core::obs::flush_to_env_sinks();
  return written;
}

std::vector<std::string> write_dataset(const ConsolidatedDb& db,
                                       const std::string& directory) {
  return write_dataset(db, directory, core::obs::make_run_manifest());
}

}  // namespace wheels::measure

#include "measure/records.hpp"

namespace wheels::measure {

std::string_view test_type_name(TestType t) {
  switch (t) {
    case TestType::DownlinkBulk: return "downlink-bulk";
    case TestType::UplinkBulk: return "uplink-bulk";
    case TestType::Rtt: return "rtt";
    case TestType::ArApp: return "ar";
    case TestType::CavApp: return "cav";
    case TestType::Video: return "video";
    case TestType::Gaming: return "gaming";
  }
  return "?";
}

std::string_view app_kind_name(AppKind a) {
  switch (a) {
    case AppKind::Ar: return "AR";
    case AppKind::Cav: return "CAV";
    case AppKind::Video: return "360-video";
    case AppKind::Gaming: return "cloud-gaming";
  }
  return "?";
}

const TestRecord* ConsolidatedDb::find_test(std::uint32_t id) const {
  for (const TestRecord& t : tests) {
    if (t.id == id) return &t;
  }
  return nullptr;
}

}  // namespace wheels::measure

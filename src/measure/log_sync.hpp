// LogSynchronizer: the "sophisticated software" of §3.
//
// Normalises every timestamp format in play back to Unix time:
//  - .drm content rows are EDT regardless of where the van is;
//  - app logs follow their declared policy (UTC / local-with-offset / EDT);
// then joins app-layer values onto the XCAL rows by nearest-timestamp match
// within a tolerance. The output is the throughput-annotated KPI rows that
// populate the ConsolidatedDb.
#pragma once

#include <optional>
#include <vector>

#include "measure/logfile.hpp"

namespace wheels::measure {

class LogSynchronizer {
 public:
  /// Normalise a .drm content timestamp (always EDT) to Unix ms.
  static UnixMillis normalize_drm_timestamp(const std::string& edt_text);

  /// Normalise an app log line under the file's policy.
  static UnixMillis normalize_app_timestamp(const AppLogLine& line,
                                            const AppLogFile& file);

  /// Join app-layer values onto KPI rows: each DRM row receives the value of
  /// the nearest app line within `tolerance`; rows with no match keep their
  /// previous value (0 for throughput-less rows). Returns rows in time
  /// order with `kpi.t` rewritten to the normalised sim time and
  /// `kpi.throughput` filled from the app log.
  static std::vector<KpiRecord> join(const DrmFile& drm,
                                     const AppLogFile& app,
                                     Millis tolerance = 260.0);

  /// Same normalisation for standalone RTT logs: returns (sim time, value)
  /// pairs in time order.
  static std::vector<std::pair<SimMillis, double>> normalize_series(
      const AppLogFile& app);
};

}  // namespace wheels::measure

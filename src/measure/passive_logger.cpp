#include "measure/passive_logger.hpp"

namespace wheels::measure {

void CoverageTracker::observe(Km map_km, radio::Technology tech) {
  if (open_start_ < 0.0) {
    open_start_ = map_km;
    open_tech_ = tech;
  } else if (tech != open_tech_) {
    if (map_km > open_start_) {
      segments_.push_back({open_start_, map_km, open_tech_});
    }
    open_start_ = map_km;
    open_tech_ = tech;
  }
  last_km_ = map_km;
}

std::vector<CoverageSegment> CoverageTracker::finish() && {
  if (open_start_ >= 0.0 && last_km_ > open_start_) {
    segments_.push_back({open_start_, last_km_, open_tech_});
  }
  return std::move(segments_);
}

PassiveLogger::PassiveLogger(const radio::Deployment& deployment,
                             double route_scale, Rng rng)
    : session_(deployment, ran::TrafficProfile::IdlePing, std::move(rng)),
      scale_(route_scale) {
  log_.carrier = deployment.carrier();
}

void PassiveLogger::tick(const geo::DriveSample& s) {
  const ran::RadioTick tick = session_.tick(s, 500.0);
  const Km map_km = s.km / scale_;

  log_.handovers += static_cast<std::int64_t>(tick.handovers.size());
  log_.pings += (ticks_++ % 2 == 0) ? 2 : 3;  // 2.5 pings per 500 ms
  log_.cells.insert(tick.cell_id);

  if (open_start_map_km_ < 0.0) {
    open_start_map_km_ = map_km;
    open_tech_ = tick.tech;
  } else if (tick.tech != open_tech_) {
    if (map_km > open_start_map_km_) {
      log_.segments.push_back({open_start_map_km_, map_km, open_tech_});
    }
    open_start_map_km_ = map_km;
    open_tech_ = tick.tech;
  }
  last_map_km_ = map_km;
}

PassiveLog PassiveLogger::finish() && {
  if (open_start_map_km_ >= 0.0 && last_map_km_ > open_start_map_km_) {
    log_.segments.push_back({open_start_map_km_, last_map_km_, open_tech_});
  }
  return std::move(log_);
}

}  // namespace wheels::measure

// Typed records of the consolidated measurement database.
//
// The paper's pipeline joins XCAL `.drm` PHY logs with app-layer logs into
// "a consolidated database, which includes both the XCAL and the app layer
// data" (§3). ConsolidatedDb is that database: every analysis and every
// bench binary reads from it and nothing else.
#pragma once

#include <array>
#include <cstdint>
#include <set>
#include <string_view>
#include <vector>

#include "core/sim_time.hpp"
#include "core/units.hpp"
#include "geo/route.hpp"
#include "geo/speed_profile.hpp"
#include "geo/timezone.hpp"
#include "net/server.hpp"
#include "radio/channel.hpp"
#include "radio/technology.hpp"
#include "ran/handover.hpp"

namespace wheels::measure {

enum class TestType {
  DownlinkBulk,
  UplinkBulk,
  Rtt,
  ArApp,
  CavApp,
  Video,
  Gaming,
};

std::string_view test_type_name(TestType t);

enum class AppKind { Ar, Cav, Video, Gaming };

std::string_view app_kind_name(AppKind a);

/// One test run (bulk transfer, ping test or app session).
struct TestRecord {
  std::uint32_t id = 0;
  TestType type = TestType::DownlinkBulk;
  radio::Carrier carrier = radio::Carrier::Verizon;
  bool is_static = false;
  SimMillis start = 0;
  SimMillis end = 0;
  Km start_km = 0.0;
  Km end_km = 0.0;
  geo::Timezone tz = geo::Timezone::Pacific;
  net::ServerKind server = net::ServerKind::Cloud;
  radio::Direction direction = radio::Direction::Downlink;
  /// Round-robin cycle index; tests of the same cycle ran concurrently on
  /// the three carrier phones (used for the operator-diversity analysis).
  int cycle = -1;
};

/// One 500 ms cross-layer row: XCAL PHY KPIs joined with the app-layer
/// throughput of the same interval.
struct KpiRecord {
  std::uint32_t test_id = 0;
  SimMillis t = 0;
  radio::Carrier carrier = radio::Carrier::Verizon;
  radio::Technology tech = radio::Technology::Lte;
  std::uint32_t cell_id = 0;
  Dbm rsrp = -120.0;
  int mcs = 0;
  double bler = 0.0;
  int ca = 1;
  Mbps throughput = 0.0;
  MilesPerHour speed = 0.0;
  Km km = 0.0;      // physical km driven
  Km map_km = 0.0;  // position on the full-route map
  geo::Timezone tz = geo::Timezone::Pacific;
  geo::RegionType region = geo::RegionType::Highway;
  int handovers = 0;
  net::ServerKind server = net::ServerKind::Cloud;
  radio::Direction direction = radio::Direction::Downlink;
  bool is_static = false;
};

/// One ICMP echo observation.
struct RttRecord {
  std::uint32_t test_id = 0;
  SimMillis t = 0;
  radio::Carrier carrier = radio::Carrier::Verizon;
  radio::Technology tech = radio::Technology::Lte;
  Millis rtt = 0.0;
  MilesPerHour speed = 0.0;
  geo::Timezone tz = geo::Timezone::Pacific;
  net::ServerKind server = net::ServerKind::Cloud;
  bool is_static = false;
};

struct HandoverRecord {
  std::uint32_t test_id = 0;
  radio::Carrier carrier = radio::Carrier::Verizon;
  radio::Direction direction = radio::Direction::Downlink;
  ran::HandoverEvent event;
};

/// One app session's QoE metrics (only the fields for `app` are meaningful).
struct AppRunRecord {
  std::uint32_t test_id = 0;
  AppKind app = AppKind::Ar;
  radio::Carrier carrier = radio::Carrier::Verizon;
  bool is_static = false;
  net::ServerKind server = net::ServerKind::Cloud;
  double high_speed_5g_fraction = 0.0;
  int handovers = 0;
  // AR / CAV
  bool compressed = false;
  Millis median_e2e = 0.0;
  double offload_fps = 0.0;
  double map_percent = 0.0;
  // 360° video
  double qoe = 0.0;
  double rebuffer_fraction = 0.0;
  Mbps avg_bitrate = 0.0;
  // Cloud gaming
  Mbps gaming_bitrate = 0.0;
  Millis gaming_latency = 0.0;
  double gaming_frame_drop = 0.0;
  double gaming_max_frame_drop = 0.0;
};

/// One 500 ms link-state sample recorded alongside an app session: the
/// exact apps::LinkTick the video/gaming/offload model consumed, keyed by
/// the owning test. Present only when the campaign ran app sessions —
/// bundles recorded before this table existed simply lack it, and replay
/// falls back to the statistical per-carrier timeline (with a warning).
/// The export subsystem (src/export/) turns these rows into emulator
/// schedules, and ReplayCampaign replays app sessions from them exactly.
struct LinkTickRecord {
  std::uint32_t test_id = 0;
  SimMillis t = 0;
  radio::Carrier carrier = radio::Carrier::Verizon;
  radio::Technology tech = radio::Technology::Lte;
  Mbps cap_dl = 0.0;
  Mbps cap_ul = 0.0;
  Millis rtt = 50.0;
  /// Handover interruption within this tick.
  Millis interruption = 0.0;
  int handovers = 0;
};

/// A stretch of the route (map km) served by one technology — the unit of
/// the Fig. 1 coverage maps and all coverage-by-miles statistics.
struct CoverageSegment {
  Km map_km_start = 0.0;
  Km map_km_end = 0.0;
  radio::Technology tech = radio::Technology::Lte;

  Km length() const { return map_km_end - map_km_start; }
};

/// Output of one passive handover-logger phone (8 days of 200 ms pings).
struct PassiveLog {
  radio::Carrier carrier = radio::Carrier::Verizon;
  std::vector<CoverageSegment> segments;
  std::int64_t handovers = 0;
  std::int64_t pings = 0;
  std::set<std::uint32_t> cells;
};

/// Whole-run load/fairness aggregate of one cell hosting the simulated UE
/// population (ran::UePool). Present only when the campaign ran with
/// WHEELS_UES > 0 — the six-handset paper campaign has no population and
/// writes no cell_load table, keeping seed bundles byte-identical.
struct CellLoadRecord {
  radio::Carrier carrier = radio::Carrier::Verizon;
  std::uint32_t cell_id = 0;
  radio::Technology tech = radio::Technology::Lte;
  /// Ticks during which at least one UE was attached to the cell.
  std::int64_t ticks = 0;
  double avg_attached = 0.0;  // mean attached UEs over those ticks
  double avg_active = 0.0;    // mean UEs with positive demand
  Mbps avg_demand = 0.0;      // mean summed offered demand
  Mbps avg_allocated = 0.0;   // mean summed scheduler allocation
  Mbps avg_capacity = 0.0;    // mean cell capacity offered
  double utilization = 0.0;   // avg_allocated / avg_capacity, in [0, 1]
  double fairness = 0.0;      // mean per-tick Jain index, in (0, 1]
};

struct ConsolidatedDb {
  std::vector<TestRecord> tests;
  std::vector<KpiRecord> kpis;
  std::vector<RttRecord> rtts;
  std::vector<HandoverRecord> handovers;
  std::vector<AppRunRecord> app_runs;
  /// Per-tick link state of every app session (empty unless apps ran; see
  /// LinkTickRecord).
  std::vector<LinkTickRecord> link_ticks;
  /// Per-cell population load (empty unless the campaign simulated a UE
  /// population; see CellLoadRecord).
  std::vector<CellLoadRecord> cell_load;
  std::array<PassiveLog, radio::kCarrierCount> passive;
  /// Coverage observed by XCAL during active tests, per carrier.
  std::array<std::vector<CoverageSegment>, radio::kCarrierCount>
      active_coverage;
  /// Unique cells connected during active tests, per carrier.
  std::array<std::set<std::uint32_t>, radio::kCarrierCount> active_cells;
  /// Total application-layer bytes moved (Table 1's data usage).
  double rx_bytes = 0.0;
  double tx_bytes = 0.0;
  /// Cumulative test runtime per carrier (Table 1).
  std::array<Millis, radio::kCarrierCount> experiment_runtime{};
  /// Physical km driven.
  Km driven_km = 0.0;

  const TestRecord* find_test(std::uint32_t id) const;
};

constexpr std::size_t carrier_index(radio::Carrier c) {
  return static_cast<std::size_t>(c);
}

}  // namespace wheels::measure

// The handover-logger phones (§3).
//
// Three additional unrooted phones ran a custom app sending 38-byte ICMP
// pings every 200 ms (to keep the radio awake) while logging cell ID,
// technology and GPS. Because operators do not upgrade idle UEs, these logs
// paint the pessimistic coverage picture of Figs. 1b-1d — which is exactly
// what this logger reproduces by running its RadioSession under the
// IdlePing traffic profile.
#pragma once

#include "geo/drive_trace.hpp"
#include "measure/records.hpp"
#include "ran/session.hpp"

namespace wheels::measure {

class PassiveLogger {
 public:
  PassiveLogger(const radio::Deployment& deployment, double route_scale,
                Rng rng);

  /// Feed one 500 ms drive sample (2-3 pings worth of keep-alive traffic).
  void tick(const geo::DriveSample& s);

  /// Close the current segment and return the log.
  PassiveLog finish() &&;

 private:
  ran::RadioSession session_;
  double scale_;
  PassiveLog log_;
  std::int64_t ticks_ = 0;
  radio::Technology open_tech_ = radio::Technology::Lte;
  Km open_start_map_km_ = -1.0;
  Km last_map_km_ = 0.0;
};

/// Shared helper: fold a stream of (map_km, tech) observations into merged
/// coverage segments. Used by both the passive logger and the active (XCAL)
/// coverage extraction.
class CoverageTracker {
 public:
  void observe(Km map_km, radio::Technology tech);
  std::vector<CoverageSegment> finish() &&;

 private:
  std::vector<CoverageSegment> segments_;
  radio::Technology open_tech_ = radio::Technology::Lte;
  Km open_start_ = -1.0;
  Km last_km_ = 0.0;
};

}  // namespace wheels::measure

// Per-carrier record shards: the thread-safe sink strategy of the parallel
// campaign.
//
// ConsolidatedDb's record vectors are shared across carriers, so three
// concurrent carrier pipelines cannot append to them directly. Instead each
// carrier appends — lock-free, because the shard is thread-private — to its
// own RecordShard, and the campaign coordinator drains the shards into the
// database in canonical carrier order once the fan-out has joined. The
// serial path (WHEELS_THREADS=1) runs the identical code inline, so the
// database contents are byte-identical for every thread count: same
// per-carrier record streams, same merge order, same floating-point
// summation order for the byte counters.
#pragma once

#include "measure/records.hpp"

namespace wheels::measure {

struct RecordShard {
  std::vector<KpiRecord> kpis;
  std::vector<RttRecord> rtts;
  std::vector<HandoverRecord> handovers;
  std::vector<AppRunRecord> app_runs;
  std::vector<LinkTickRecord> link_ticks;
  /// Application-layer bytes moved by this carrier during the fan-out.
  double rx_bytes = 0.0;
  double tx_bytes = 0.0;

  bool empty() const;
  void clear();
};

/// Append `shard`'s records and byte counters to `db`, then clear the shard
/// for reuse. Must be called once per carrier, in carrier-index order, after
/// every fan-out joins — that fixed merge order is the determinism contract
/// of the parallel campaign (docs/ARCHITECTURE.md, "Parallel execution").
void merge_shard_into(ConsolidatedDb& db, RecordShard& shard);

}  // namespace wheels::measure

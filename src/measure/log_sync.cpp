#include "measure/log_sync.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace wheels::measure {

UnixMillis LogSynchronizer::normalize_drm_timestamp(
    const std::string& edt_text) {
  return unix_from_civil(parse_civil(edt_text), kEdtOffsetMinutes);
}

UnixMillis LogSynchronizer::normalize_app_timestamp(const AppLogLine& line,
                                                    const AppLogFile& file) {
  int offset = 0;
  switch (file.policy) {
    case TimestampPolicy::Utc: offset = 0; break;
    case TimestampPolicy::LocalTime: offset = file.local_offset_minutes; break;
    case TimestampPolicy::Edt: offset = kEdtOffsetMinutes; break;
  }
  return unix_from_civil(parse_civil(line.timestamp), offset);
}

std::vector<KpiRecord> LogSynchronizer::join(const DrmFile& drm,
                                             const AppLogFile& app,
                                             Millis tolerance) {
  // Normalise the app series once, sorted by time.
  std::vector<std::pair<UnixMillis, double>> series;
  series.reserve(app.lines.size());
  for (const AppLogLine& line : app.lines) {
    series.emplace_back(normalize_app_timestamp(line, app), line.value);
  }
  std::sort(series.begin(), series.end());

  std::vector<KpiRecord> out;
  out.reserve(drm.rows.size());
  for (const DrmRow& row : drm.rows) {
    const UnixMillis t = normalize_drm_timestamp(row.edt_timestamp);
    KpiRecord kpi = row.kpi;
    kpi.t = sim_from_unix(t);

    if (!series.empty()) {
      const auto it = std::lower_bound(
          series.begin(), series.end(), std::make_pair(t, -1e300));
      UnixMillis best_dt = static_cast<UnixMillis>(tolerance) + 1;
      double best_value = kpi.throughput;
      if (it != series.end()) {
        const UnixMillis dt = std::llabs(it->first - t);
        if (dt < best_dt) {
          best_dt = dt;
          best_value = it->second;
        }
      }
      if (it != series.begin()) {
        const auto prev = std::prev(it);
        const UnixMillis dt = std::llabs(prev->first - t);
        if (dt < best_dt) {
          best_dt = dt;
          best_value = prev->second;
        }
      }
      if (best_dt <= static_cast<UnixMillis>(tolerance)) {
        kpi.throughput = best_value;
      }
    }
    out.push_back(kpi);
  }
  std::sort(out.begin(), out.end(),
            [](const KpiRecord& a, const KpiRecord& b) { return a.t < b.t; });
  return out;
}

std::vector<std::pair<SimMillis, double>> LogSynchronizer::normalize_series(
    const AppLogFile& app) {
  std::vector<std::pair<SimMillis, double>> out;
  out.reserve(app.lines.size());
  for (const AppLogLine& line : app.lines) {
    out.emplace_back(sim_from_unix(normalize_app_timestamp(line, app)),
                     line.value);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace wheels::measure

// CSV export/import of the consolidated database.
//
// The paper releases its dataset and scripts publicly [8]; this module is
// the equivalent release path: every table of the ConsolidatedDb is written
// as CSV and every table can be read back, so a bundle directory reassembles
// into the full database (src/replay/ ingests bundles through these readers
// and re-runs the transport/app stack over them).
//
// Format contracts:
//  - doubles are written at max_digits10, so a written-then-read value is
//    bit-identical (tests/test_csv_export.cpp);
//  - enum columns carry the canonical printed names of
//    measure/enum_names.hpp — the writers and parsers share one table and
//    cannot drift;
//  - readers are strict: truncated rows, unknown enum names, non-finite
//    numbers and duplicated headers all raise std::runtime_error citing the
//    offending 1-based line number. Nothing is silently skipped.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/obs/manifest.hpp"
#include "measure/records.hpp"

namespace wheels::measure {

/// Format `v` exactly as the CSV writers below do (max_digits10, so the
/// text converts back to the identical bits) — for auxiliary tables (fleet
/// aggregates, golden expectations) that must diff cleanly against files
/// this module wrote.
std::string csv_double(double v);

void write_tests_csv(std::ostream& os, const ConsolidatedDb& db);
void write_kpis_csv(std::ostream& os, const ConsolidatedDb& db);
void write_rtts_csv(std::ostream& os, const ConsolidatedDb& db);
void write_handovers_csv(std::ostream& os, const ConsolidatedDb& db);
void write_app_runs_csv(std::ostream& os, const ConsolidatedDb& db);
/// Per-app-session link-state ticks (written into a bundle only when
/// non-empty, so appless campaigns and pre-existing golden bundles keep
/// their exact bytes and manifest digest).
void write_link_ticks_csv(std::ostream& os, const ConsolidatedDb& db);
/// Per-cell population load (written into a bundle only when non-empty, so
/// populationless campaigns keep producing byte-identical bundles).
void write_cell_load_csv(std::ostream& os, const ConsolidatedDb& db);
void write_coverage_csv(std::ostream& os,
                        const std::vector<CoverageSegment>& segments,
                        radio::Carrier carrier, bool passive);
/// Scalar fields of the database (driven_km, byte counters, per-carrier
/// runtimes and passive-logger tallies) as key,carrier,value rows.
void write_summary_csv(std::ostream& os, const ConsolidatedDb& db);
/// Unique cells connected per carrier, active and passive views.
void write_cells_csv(std::ostream& os, const ConsolidatedDb& db);

/// Parse back what the corresponding writer wrote. All readers throw
/// std::runtime_error (with the offending line number) on malformed input.
std::vector<TestRecord> read_tests_csv(std::istream& is);
std::vector<KpiRecord> read_kpis_csv(std::istream& is);
std::vector<RttRecord> read_rtts_csv(std::istream& is);
std::vector<HandoverRecord> read_handovers_csv(std::istream& is);
std::vector<AppRunRecord> read_app_runs_csv(std::istream& is);
std::vector<LinkTickRecord> read_link_ticks_csv(std::istream& is);
std::vector<CellLoadRecord> read_cell_load_csv(std::istream& is);
/// Also verifies every row matches the expected carrier and view (a bundle
/// names both in the file name).
std::vector<CoverageSegment> read_coverage_csv(std::istream& is,
                                               radio::Carrier expected_carrier,
                                               bool expected_passive);
/// Fill `db`'s scalar fields / cell sets from the two auxiliary tables.
void read_summary_csv(std::istream& is, ConsolidatedDb& db);
void read_cells_csv(std::istream& is, ConsolidatedDb& db);

/// Write the whole dataset bundle into a directory (created if needed),
/// including a manifest.json recording the bundle's provenance. Returns the
/// list of files written. Also flushes the global metrics/trace sinks when
/// WHEELS_METRICS_OUT / WHEELS_TRACE_OUT are set.
std::vector<std::string> write_dataset(const ConsolidatedDb& db,
                                       const std::string& directory,
                                       const core::obs::RunManifest& manifest);

/// As above with a default manifest (library version + start time only; use
/// campaign::make_manifest to record seed, scale and config digest).
std::vector<std::string> write_dataset(const ConsolidatedDb& db,
                                       const std::string& directory);

}  // namespace wheels::measure

// CSV export/import of the consolidated database.
//
// The paper releases its dataset and scripts publicly [8]; this module is
// the equivalent release path: every table of the ConsolidatedDb can be
// written as CSV and the two largest tables (KPI rows, RTT samples) can be
// read back, enabling offline analysis in other tools.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/obs/manifest.hpp"
#include "measure/records.hpp"

namespace wheels::measure {

void write_tests_csv(std::ostream& os, const ConsolidatedDb& db);
void write_kpis_csv(std::ostream& os, const ConsolidatedDb& db);
void write_rtts_csv(std::ostream& os, const ConsolidatedDb& db);
void write_handovers_csv(std::ostream& os, const ConsolidatedDb& db);
void write_app_runs_csv(std::ostream& os, const ConsolidatedDb& db);
void write_coverage_csv(std::ostream& os,
                        const std::vector<CoverageSegment>& segments,
                        radio::Carrier carrier, bool passive);

/// Parse back what write_kpis_csv wrote. Throws std::runtime_error on a
/// malformed header or row.
std::vector<KpiRecord> read_kpis_csv(std::istream& is);
std::vector<RttRecord> read_rtts_csv(std::istream& is);

/// Write the whole dataset bundle into a directory (created if needed),
/// including a manifest.json recording the bundle's provenance. Returns the
/// list of files written. Also flushes the global metrics/trace sinks when
/// WHEELS_METRICS_OUT / WHEELS_TRACE_OUT are set.
std::vector<std::string> write_dataset(const ConsolidatedDb& db,
                                       const std::string& directory,
                                       const core::obs::RunManifest& manifest);

/// As above with a default manifest (library version + start time only; use
/// campaign::make_manifest to record seed, scale and config digest).
std::vector<std::string> write_dataset(const ConsolidatedDb& db,
                                       const std::string& directory);

}  // namespace wheels::measure

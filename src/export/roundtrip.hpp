// Round-trip verification of the Mahimahi backend against the ingest
// adapter it inverts.
//
// The quantization contract (documented in backend_mahimahi.cpp): exporting
// a timeline and re-ingesting the .down artifact recovers every covered
// tick's downlink capacity to within one 1500 B opportunity per tick —
// 12000 bits / tick, 0.024 Mbps at the default 500 ms tick. verify() runs
// that loop in-process (render -> ingest mahimahi adapter -> per-tick
// compare) so the CLI (--verify-roundtrip) and CI can prove the bound on
// any concrete export, and the property test can prove it on randomized
// timelines.
#pragma once

#include <cstddef>

#include "export/timeline.hpp"

namespace wheels::emu {

struct RoundTripReport {
  /// Largest |re-ingested − exported| downlink capacity over all ticks.
  double max_error_mbps = 0.0;
  /// The quantization bound the error must stay under: one opportunity
  /// (1500 B * 8) per tick, in Mbps.
  double bound_mbps = 0.0;
  std::size_t ticks_checked = 0;

  bool ok() const { return max_error_mbps <= bound_mbps; }
};

/// Export `timeline` through the mahimahi backend, re-ingest the .down
/// artifact with the builtin mahimahi ingest adapter at the same tick, and
/// compare per-tick downlink capacity. Ticks outside the re-ingested
/// window (leading/trailing all-zero ticks produce no opportunities to
/// anchor a window on) are compared against zero capacity. Throws only on
/// an invalid timeline — a violated bound is reported, not thrown.
RoundTripReport verify_mahimahi_roundtrip(const EmuTimeline& timeline);

}  // namespace wheels::emu

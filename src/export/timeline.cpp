#include "export/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "radio/channel.hpp"
#include "replay/trace_channel.hpp"

namespace wheels::emu {

void validate_timeline(const EmuTimeline& timeline) {
  if (timeline.tick_ms <= 0) {
    throw std::runtime_error{"export: timeline tick_ms must be > 0, got " +
                             std::to_string(timeline.tick_ms)};
  }
  if (timeline.ticks.empty()) {
    throw std::runtime_error{"export: timeline has no ticks"};
  }
  for (std::size_t i = 0; i < timeline.ticks.size(); ++i) {
    const EmuTick& t = timeline.ticks[i];
    if (!std::isfinite(t.cap_dl_mbps) || t.cap_dl_mbps < 0.0 ||
        !std::isfinite(t.cap_ul_mbps) || t.cap_ul_mbps < 0.0) {
      throw std::runtime_error{"export: tick " + std::to_string(i) +
                               ": bad capacity"};
    }
    if (!std::isfinite(t.rtt_ms) || t.rtt_ms <= 0.0) {
      throw std::runtime_error{"export: tick " + std::to_string(i) +
                               ": non-positive rtt"};
    }
    if (!std::isfinite(t.loss) || t.loss < 0.0 || t.loss > 1.0) {
      throw std::runtime_error{"export: tick " + std::to_string(i) +
                               ": loss outside [0, 1]"};
    }
  }
}

EmuTimeline timeline_from_link_ticks(
    const std::vector<measure::LinkTickRecord>& rows, SimMillis tick_ms) {
  if (rows.empty()) {
    throw std::runtime_error{"export: no link ticks to export"};
  }
  if (tick_ms <= 0) {
    throw std::runtime_error{"export: tick_ms must be > 0"};
  }
  EmuTimeline tl;
  tl.tick_ms = tick_ms;
  tl.start_ms = rows.front().t;
  tl.ticks.reserve(rows.size());
  const double tick = static_cast<double>(tick_ms);
  for (const measure::LinkTickRecord& r : rows) {
    EmuTick t;
    t.cap_dl_mbps = r.cap_dl;
    t.cap_ul_mbps = r.cap_ul;
    t.rtt_ms = r.rtt;
    t.loss = std::clamp(r.interruption / tick, 0.0, 1.0);
    t.tech = r.tech;
    tl.ticks.push_back(t);
  }
  validate_timeline(tl);
  return tl;
}

EmuTimeline timeline_from_bundle_test(const measure::ConsolidatedDb& db,
                                      std::uint32_t test_id) {
  std::vector<measure::LinkTickRecord> rows;
  for (const measure::LinkTickRecord& r : db.link_ticks) {
    if (r.test_id == test_id) rows.push_back(r);
  }
  if (rows.empty()) {
    throw std::runtime_error{
        "export: bundle records no link_ticks for test " +
        std::to_string(test_id) +
        " (not an app session, or a bundle written before per-run traces)"};
  }
  return timeline_from_link_ticks(rows);
}

EmuTimeline timeline_from_bundle(const measure::ConsolidatedDb& db,
                                 radio::Carrier carrier, bool is_static) {
  const replay::TraceChannel channel =
      replay::carrier_timeline(db, carrier, is_static);
  if (channel.empty()) {
    throw std::runtime_error{
        std::string{"export: bundle has no "} +
        std::string{radio::carrier_name(carrier)} + " samples in the " +
        (is_static ? "static" : "moving") + " regime"};
  }
  EmuTimeline tl;
  tl.tick_ms = 500;
  tl.start_ms = channel.start();
  const SimMillis tick = tl.tick_ms;
  const double tick_d = static_cast<double>(tick);
  for (SimMillis t = channel.start(); t <= channel.end(); t += tick) {
    const replay::TraceSample s = channel.at(t);
    const replay::TraceEvents ev = channel.events_in(t, tick_d);
    EmuTick out;
    out.cap_dl_mbps = s.capacity_dl;
    out.cap_ul_mbps = s.capacity_ul;
    out.rtt_ms = s.rtt;
    out.loss = std::clamp(ev.interruption / tick_d, 0.0, 1.0);
    out.tech = s.tech;
    tl.ticks.push_back(out);
  }
  validate_timeline(tl);
  return tl;
}

EmuTimeline timeline_from_canonical(const ingest::CanonicalTrace& trace,
                                    SimMillis tick_ms) {
  if (trace.points.empty()) {
    throw std::runtime_error{"export: trace has no points"};
  }
  if (tick_ms <= 0) {
    throw std::runtime_error{"export: tick_ms must be > 0"};
  }
  EmuTimeline tl;
  tl.tick_ms = tick_ms;
  tl.start_ms = trace.points.front().t;
  const std::vector<ingest::TracePoint>& pts = trace.points;
  std::size_t i = 0;
  for (SimMillis t = pts.front().t; t <= pts.back().t; t += tick_ms) {
    while (i + 1 < pts.size() && pts[i + 1].t <= t) ++i;
    EmuTick out;
    out.cap_dl_mbps = pts[i].cap_dl_mbps;
    out.cap_ul_mbps = pts[i].cap_ul_mbps;
    out.rtt_ms = pts[i].rtt_ms;
    out.tech = pts[i].tech;
    tl.ticks.push_back(out);
  }
  validate_timeline(tl);
  return tl;
}

}  // namespace wheels::emu

// Mahimahi delivery-opportunity backend: the exact inverse of the ingest
// mahimahi adapter (ingest/adapters_mahimahi.cpp).
//
// One line per 1500 B (MTU) delivery opportunity, carrying its integer
// millisecond timestamp. Tick i of the timeline becomes
// round(cap * tick / 12000 bits) opportunities spread evenly across
// [i*tick, (i+1)*tick); re-ingesting the file windows them back at the same
// tick and recovers the capacity to within half an opportunity —
// kMtuBits / tick quantization, 0.024 Mbps at the default 500 ms tick
// (tests/test_export.cpp bounds this on randomized timelines). Ticks with
// zero opportunities before the first (or after the last) nonzero tick
// round-trip as recorded outages only when interior — the windowing anchor
// is the first timestamp, matching Mahimahi's own file semantics.
#include <charconv>
#include <cmath>
#include <string>

#include "export/exporter.hpp"

namespace wheels::emu {

namespace {

constexpr double kMtuBits = 1500.0 * 8.0;

long long opportunities(double cap_mbps, SimMillis tick_ms) {
  const double tick_s = static_cast<double>(tick_ms) * 1e-3;
  return std::llround(cap_mbps * 1e6 * tick_s / kMtuBits);
}

/// Render one direction: timestamps rebased to zero (start_ms is
/// provenance; mahimahi files start at their first opportunity). A
/// hundreds-of-Mbps link is thousands of opportunities per tick, so the
/// writer is sized and formatted for tens of millions of lines (one
/// counting pass to reserve, std::to_chars per line).
std::string render_direction(const EmuTimeline& tl, bool downlink) {
  const auto cap_of = [&](const EmuTick& t) {
    return downlink ? t.cap_dl_mbps : t.cap_ul_mbps;
  };
  std::size_t total = 0;
  for (const EmuTick& t : tl.ticks) {
    total += static_cast<std::size_t>(opportunities(cap_of(t), tl.tick_ms));
  }
  std::string out;
  out.reserve(total * 12);
  char buf[24];
  for (std::size_t i = 0; i < tl.ticks.size(); ++i) {
    const long long count = opportunities(cap_of(tl.ticks[i]), tl.tick_ms);
    const long long base = static_cast<long long>(i) *
                           static_cast<long long>(tl.tick_ms);
    for (long long j = 0; j < count; ++j) {
      // Even spread: opportunity j at base + floor(j * tick / count),
      // always inside this tick's window, non-decreasing across the file.
      const long long t =
          base + j * static_cast<long long>(tl.tick_ms) / count;
      const auto res = std::to_chars(buf, buf + sizeof(buf), t);
      out.append(buf, res.ptr);
      out.push_back('\n');
    }
  }
  return out;
}

class MahimahiExporter final : public EmuExporter {
 public:
  std::string_view name() const override { return "mahimahi"; }

  std::string_view description() const override {
    return "Mahimahi packet-delivery-opportunity traces (.down/.up, one "
           "integer ms timestamp per 1500 B opportunity)";
  }

  std::vector<ExportArtifact> render(
      const EmuTimeline& timeline) const override {
    validate_timeline(timeline);
    return {
        {".down", render_direction(timeline, true)},
        {".up", render_direction(timeline, false)},
    };
  }
};

}  // namespace

std::unique_ptr<EmuExporter> make_mahimahi_exporter() {
  return std::make_unique<MahimahiExporter>();
}

}  // namespace wheels::emu

// tc-netem/HTB backend: a self-contained shell script replaying the
// schedule on a live interface (ERRANT's emulation recipe).
//
// The script installs an HTB root with one shaped class (downlink rate)
// and a netem child (one-way delay = rtt/2, loss percentage), then steps
// through the timeline with `sleep tick` + `tc ... change` pairs — the
// standard way to impose a time-varying cellular schedule on real traffic
// without kernel patches. Uplink shaping needs a second interface (or an
// ifb redirect), so the script shapes the downlink and records the uplink
// rate in a comment per step. The output is plain POSIX sh; CI runs
// `bash -n` over a generated script to keep it parseable.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "export/exporter.hpp"

namespace wheels::emu {

namespace {

/// HTB refuses a zero rate; clamp to a floor well below one opportunity
/// per tick so an outage tick still throttles to effectively nothing.
long long rate_kbit(double cap_mbps) {
  return std::max(8LL, std::llround(cap_mbps * 1000.0));
}

double loss_percent(double loss) {
  return std::clamp(loss * 100.0, 0.0, 100.0);
}

class NetemExporter final : public EmuExporter {
 public:
  std::string_view name() const override { return "netem"; }

  std::string_view description() const override {
    return "tc qdisc schedule script (.sh): HTB rate shaping + netem "
           "delay/loss, one timed change per tick";
  }

  std::vector<ExportArtifact> render(
      const EmuTimeline& timeline) const override {
    validate_timeline(timeline);
    std::string out;
    char buf[256];
    const double tick_s = static_cast<double>(timeline.tick_ms) * 1e-3;
    std::snprintf(buf, sizeof(buf),
                  "#!/bin/sh\n"
                  "# wheels link schedule: %zu ticks x %lld ms\n"
                  "# usage: %s [iface]   (default eth0; needs root)\n"
                  "set -e\n"
                  "IFACE=\"${1:-eth0}\"\n"
                  "tc qdisc del dev \"$IFACE\" root 2>/dev/null || true\n"
                  "tc qdisc add dev \"$IFACE\" root handle 1: htb default "
                  "10\n",
                  timeline.ticks.size(),
                  static_cast<long long>(timeline.tick_ms), "schedule.sh");
    out += buf;
    for (std::size_t i = 0; i < timeline.ticks.size(); ++i) {
      const EmuTick& t = timeline.ticks[i];
      const char* class_verb = i == 0 ? "add" : "change";
      if (i > 0) {
        std::snprintf(buf, sizeof(buf), "sleep %.3f\n", tick_s);
        out += buf;
      }
      std::snprintf(buf, sizeof(buf), "# tick %zu: ul %.3f Mbps\n", i,
                    t.cap_ul_mbps);
      out += buf;
      std::snprintf(buf, sizeof(buf),
                    "tc class %s dev \"$IFACE\" parent 1: classid 1:10 htb "
                    "rate %lldkbit\n",
                    class_verb, rate_kbit(t.cap_dl_mbps));
      out += buf;
      std::snprintf(buf, sizeof(buf),
                    "tc qdisc %s dev \"$IFACE\" parent 1:10 handle 10: "
                    "netem delay %.3fms loss %.3f%%\n",
                    class_verb, t.rtt_ms / 2.0, loss_percent(t.loss));
      out += buf;
    }
    out += "tc qdisc del dev \"$IFACE\" root\n";
    return {{".sh", out}};
  }
};

}  // namespace

std::unique_ptr<EmuExporter> make_netem_exporter() {
  return std::make_unique<NetemExporter>();
}

}  // namespace wheels::emu

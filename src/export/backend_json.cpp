// Versioned JSON schedule backend (CloudEmu-style): the machine-readable
// interchange form of an EmuTimeline.
//
// One tick object per line, doubles at max_digits10 (measure::csv_double),
// so render ∘ parse is bit-exact — the same contract synth profiles keep —
// and parse errors cite the 1-based line of the offending token through
// core::json::Doc. Version 1 is the only version; a reader meeting a
// future version fails loudly instead of guessing.
#include <cmath>
#include <string>

#include "core/json.hpp"
#include "export/exporter.hpp"
#include "measure/csv_export.hpp"
#include "measure/enum_names.hpp"

namespace wheels::emu {

namespace {

std::string render_schedule(const EmuTimeline& tl) {
  std::string out;
  out += "{\n";
  out += "  \"version\": 1,\n";
  out += "  \"tick_ms\": " + std::to_string(tl.tick_ms) + ",\n";
  out += "  \"start_ms\": " + std::to_string(tl.start_ms) + ",\n";
  out += "  \"ticks\": [\n";
  for (std::size_t i = 0; i < tl.ticks.size(); ++i) {
    const EmuTick& t = tl.ticks[i];
    out += "    {\"cap_dl_mbps\": " + measure::csv_double(t.cap_dl_mbps) +
           ", \"cap_ul_mbps\": " + measure::csv_double(t.cap_ul_mbps) +
           ", \"rtt_ms\": " + measure::csv_double(t.rtt_ms) +
           ", \"loss\": " + measure::csv_double(t.loss) + ", \"tech\": \"" +
           core::json::escape(measure::names::to_name(t.tech)) + "\"}";
    out += i + 1 < tl.ticks.size() ? ",\n" : "\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

/// `key` of `object` as a non-negative integral count.
long long integer_of(const core::json::Doc& doc,
                     const core::json::Value& object, std::string_view key) {
  const double v = doc.num(object, key);
  if (!std::isfinite(v) || v != std::floor(v)) {
    doc.fail(doc.get(object, key).line,
             std::string{key} + " must be an integer");
  }
  return static_cast<long long>(v);
}

class JsonExporter final : public EmuExporter {
 public:
  std::string_view name() const override { return "json"; }

  std::string_view description() const override {
    return "versioned JSON schedule (.json): one tick object per line, "
           "bit-exact under parse_schedule_json";
  }

  std::vector<ExportArtifact> render(
      const EmuTimeline& timeline) const override {
    validate_timeline(timeline);
    return {{".json", render_schedule(timeline)}};
  }
};

}  // namespace

std::unique_ptr<EmuExporter> make_json_exporter() {
  return std::make_unique<JsonExporter>();
}

EmuTimeline parse_schedule_json(std::string_view text) {
  const core::json::Doc doc{"schedule"};
  const core::json::Value root = doc.parse(text);
  doc.as(root, core::json::Value::Kind::Object, "an object");

  const long long version = integer_of(doc, root, "version");
  if (version != 1) {
    doc.fail(doc.get(root, "version").line,
             "unsupported schedule version " + std::to_string(version) +
                 " (expected 1)");
  }

  EmuTimeline tl;
  const long long tick = integer_of(doc, root, "tick_ms");
  if (tick <= 0) {
    doc.fail(doc.get(root, "tick_ms").line, "tick_ms must be > 0");
  }
  tl.tick_ms = static_cast<SimMillis>(tick);
  if (doc.find(root, "start_ms") != nullptr) {
    tl.start_ms = static_cast<SimMillis>(integer_of(doc, root, "start_ms"));
  }

  const core::json::Value& ticks = doc.as(
      doc.get(root, "ticks"), core::json::Value::Kind::Array, "an array");
  if (ticks.items.empty()) {
    doc.fail(ticks.line, "ticks must not be empty");
  }
  tl.ticks.reserve(ticks.items.size());
  for (const core::json::Value& item : ticks.items) {
    doc.as(item, core::json::Value::Kind::Object, "a tick object");
    EmuTick t;
    t.cap_dl_mbps = doc.num(item, "cap_dl_mbps");
    t.cap_ul_mbps = doc.num(item, "cap_ul_mbps");
    t.rtt_ms = doc.num(item, "rtt_ms");
    t.loss = doc.num(item, "loss");
    if (!std::isfinite(t.cap_dl_mbps) || t.cap_dl_mbps < 0.0) {
      doc.fail(doc.get(item, "cap_dl_mbps").line,
               "cap_dl_mbps must be finite and >= 0");
    }
    if (!std::isfinite(t.cap_ul_mbps) || t.cap_ul_mbps < 0.0) {
      doc.fail(doc.get(item, "cap_ul_mbps").line,
               "cap_ul_mbps must be finite and >= 0");
    }
    if (!std::isfinite(t.rtt_ms) || t.rtt_ms <= 0.0) {
      doc.fail(doc.get(item, "rtt_ms").line, "rtt_ms must be > 0");
    }
    if (!std::isfinite(t.loss) || t.loss < 0.0 || t.loss > 1.0) {
      doc.fail(doc.get(item, "loss").line, "loss must be in [0, 1]");
    }
    const core::json::Value& tech = doc.as(
        doc.get(item, "tech"), core::json::Value::Kind::String, "a string");
    try {
      t.tech = measure::names::parse_technology(tech.text);
    } catch (const std::runtime_error& e) {
      doc.fail(tech.line, e.what());
    }
    tl.ticks.push_back(t);
  }
  return tl;
}

}  // namespace wheels::emu

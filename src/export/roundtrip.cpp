#include "export/roundtrip.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "export/exporter.hpp"
#include "ingest/adapter.hpp"

namespace wheels::emu {

RoundTripReport verify_mahimahi_roundtrip(const EmuTimeline& timeline) {
  validate_timeline(timeline);
  const std::unique_ptr<EmuExporter> exporter = make_mahimahi_exporter();
  const std::vector<ExportArtifact> artifacts = exporter->render(timeline);
  const ExportArtifact* down = nullptr;
  for (const ExportArtifact& a : artifacts) {
    if (a.suffix == ".down") down = &a;
  }
  if (down == nullptr) {
    throw std::runtime_error{"export: mahimahi backend emitted no .down"};
  }

  RoundTripReport report;
  report.ticks_checked = timeline.ticks.size();
  report.bound_mbps = 1500.0 * 8.0 /
                      (static_cast<double>(timeline.tick_ms) * 1e-3) / 1e6;

  std::vector<double> got(timeline.ticks.size(), 0.0);
  if (!down->content.empty()) {
    const ingest::TraceAdapter* adapter =
        ingest::builtin_registry().find("mahimahi");
    if (adapter == nullptr) {
      throw std::runtime_error{"export: no mahimahi ingest adapter"};
    }
    ingest::IngestOptions options;
    options.resample.tick_ms = timeline.tick_ms;
    std::istringstream is{down->content};
    const ingest::CanonicalTrace trace = adapter->parse(is, options);
    for (const ingest::TracePoint& p : trace.points) {
      const std::size_t i = static_cast<std::size_t>(p.t / timeline.tick_ms);
      if (i < got.size()) got[i] = p.cap_dl_mbps;
    }
  }
  for (std::size_t i = 0; i < timeline.ticks.size(); ++i) {
    report.max_error_mbps =
        std::max(report.max_error_mbps,
                 std::fabs(got[i] - timeline.ticks[i].cap_dl_mbps));
  }
  return report;
}

}  // namespace wheels::emu

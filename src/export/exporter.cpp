#include "export/exporter.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>

namespace wheels::emu {

void ExporterRegistry::add(std::unique_ptr<EmuExporter> exporter) {
  for (const auto& e : exporters_) {
    if (e->name() == exporter->name()) {
      throw std::runtime_error{"export: duplicate backend name '" +
                               std::string{exporter->name()} + "'"};
    }
  }
  exporters_.push_back(std::move(exporter));
}

const EmuExporter* ExporterRegistry::find(std::string_view name) const {
  for (const auto& e : exporters_) {
    if (e->name() == name) return e.get();
  }
  return nullptr;
}

const EmuExporter& ExporterRegistry::resolve(std::string_view name) const {
  if (const EmuExporter* e = find(name)) return *e;
  std::string known;
  for (const auto& e : exporters_) {
    if (!known.empty()) known += ", ";
    known += e->name();
  }
  throw std::runtime_error{"export: unknown backend '" + std::string{name} +
                           "' (known: " + known + ")"};
}

std::vector<const EmuExporter*> ExporterRegistry::exporters() const {
  std::vector<const EmuExporter*> out;
  out.reserve(exporters_.size());
  for (const auto& e : exporters_) out.push_back(e.get());
  return out;
}

const ExporterRegistry& builtin_exporter_registry() {
  static const ExporterRegistry* registry = [] {
    auto* r = new ExporterRegistry;
    r->add(make_mahimahi_exporter());
    r->add(make_netem_exporter());
    r->add(make_json_exporter());
    return r;
  }();
  return *registry;
}

std::vector<std::string> write_export(const EmuExporter& exporter,
                                      const EmuTimeline& timeline,
                                      const std::string& out_base) {
  std::vector<std::string> paths;
  for (const ExportArtifact& a : exporter.render(timeline)) {
    const std::string path = out_base + a.suffix;
    std::ofstream os{path, std::ios::binary};
    if (!os) {
      throw std::runtime_error{"export: cannot open " + path +
                               " for writing"};
    }
    os << a.content;
    if (!os) {
      throw std::runtime_error{"export: write failed for " + path};
    }
    paths.push_back(path);
  }
  return paths;
}

}  // namespace wheels::emu

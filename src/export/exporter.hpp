// Pluggable emulation-export backends and their registry.
//
// The mirror image of the ingest adapter registry (ingest/adapter.hpp): one
// EmuExporter per target emulator renders an EmuTimeline into that
// emulator's native artifact(s), and the registry maps backend names to
// exporters so `--backend` works for every registered backend and new
// emulators plug in without touching any caller. Three backends are built
// in:
//   mahimahi  packet-delivery-opportunity traces (.down/.up), the exact
//             inverse of the ingest mahimahi adapter;
//   netem     a tc qdisc/HTB shell script replaying the schedule with
//             timed `tc ... change` commands (ERRANT-style);
//   json      a versioned JSON schedule with a strict line-numbered parser
//             (render ∘ parse is bit-exact, like synth profiles).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "export/timeline.hpp"

namespace wheels::emu {

/// One rendered output file: `suffix` is appended to the caller's output
/// base path (e.g. ".down"), `content` is the complete file body.
struct ExportArtifact {
  std::string suffix;
  std::string content;
};

class EmuExporter {
 public:
  virtual ~EmuExporter() = default;

  /// Registry key and `--backend` value, e.g. "mahimahi".
  virtual std::string_view name() const = 0;
  /// One-line description for --list-backends and docs.
  virtual std::string_view description() const = 0;
  /// Render the timeline into this backend's artifacts. Validates the
  /// timeline first; throws std::runtime_error on an unrenderable one.
  virtual std::vector<ExportArtifact> render(
      const EmuTimeline& timeline) const = 0;
};

class ExporterRegistry {
 public:
  /// Register an exporter; throws on a duplicated name.
  void add(std::unique_ptr<EmuExporter> exporter);

  /// nullptr when no exporter has that name.
  const EmuExporter* find(std::string_view name) const;

  /// Exact-name lookup; throws std::runtime_error listing the known
  /// backends on an unknown name.
  const EmuExporter& resolve(std::string_view name) const;

  /// Registration order.
  std::vector<const EmuExporter*> exporters() const;

 private:
  std::vector<std::unique_ptr<EmuExporter>> exporters_;
};

/// The registry with every built-in backend (mahimahi, netem, json).
const ExporterRegistry& builtin_exporter_registry();

std::unique_ptr<EmuExporter> make_mahimahi_exporter();
std::unique_ptr<EmuExporter> make_netem_exporter();
std::unique_ptr<EmuExporter> make_json_exporter();

/// Render `timeline` through `exporter` and write each artifact to
/// `out_base` + suffix. Returns the paths written. Throws on I/O failure.
std::vector<std::string> write_export(const EmuExporter& exporter,
                                      const EmuTimeline& timeline,
                                      const std::string& out_base);

/// Parse a schedule the "json" backend wrote (or a hand-written one) back
/// into a timeline. Strict: unknown versions, missing keys, mistyped or
/// out-of-range values all throw std::runtime_error citing the 1-based
/// line ("schedule: line N: ..."). render(parse(s)) == s for every s the
/// backend produced.
EmuTimeline parse_schedule_json(std::string_view text);

}  // namespace wheels::emu

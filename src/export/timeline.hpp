// Emulation timelines: the neutral per-tick link schedule every export
// backend renders.
//
// An EmuTimeline is the lowest common denominator of the three emulator
// families this subsystem targets (Mahimahi delivery-opportunity traces,
// tc-netem/HTB shaping schedules, CloudEmu-style JSON schedules): a uniform
// tick grid carrying downlink/uplink capacity, RTT, a loss fraction and the
// serving technology. Builders lift every timeline source the simulator
// knows into it — a recorded campaign bundle's per-run link_ticks, a
// bundle's statistical carrier timeline, an ingested CanonicalTrace, and
// (via the bundle path) a synthesized drive cycle — so each backend renders
// one representation and inherits every source for free.
#pragma once

#include <cstdint>
#include <vector>

#include "core/sim_time.hpp"
#include "core/units.hpp"
#include "ingest/column_map.hpp"
#include "measure/records.hpp"
#include "radio/technology.hpp"

namespace wheels::emu {

/// One emulation tick: the link state an emulator should impose for
/// `tick_ms` milliseconds.
struct EmuTick {
  Mbps cap_dl_mbps = 0.0;
  Mbps cap_ul_mbps = 0.0;
  Millis rtt_ms = 50.0;
  /// Packet-loss fraction in [0, 1]. Built from the recorded handover
  /// interruption (interruption / tick: the fraction of the tick the link
  /// delivered nothing) — netem renders it as a loss percentage.
  double loss = 0.0;
  radio::Technology tech = radio::Technology::Lte;
};

struct EmuTimeline {
  /// Tick duration; every backend renders one schedule entry per tick.
  SimMillis tick_ms = 500;
  /// Simulator time of ticks[0] — provenance only; backends emit schedules
  /// rebased to zero.
  SimMillis start_ms = 0;
  std::vector<EmuTick> ticks;
};

/// Throw std::runtime_error on an unrenderable timeline: non-positive tick,
/// no ticks, non-finite or negative capacity, non-positive RTT, loss
/// outside [0, 1]. Every backend validates before rendering.
void validate_timeline(const EmuTimeline& timeline);

/// Lift recorded per-app-session link ticks (one test's rows from
/// link_ticks.csv, in recorded order) onto a timeline. loss is
/// interruption / tick clamped to [0, 1]. Throws on empty `rows`.
EmuTimeline timeline_from_link_ticks(
    const std::vector<measure::LinkTickRecord>& rows, SimMillis tick_ms = 500);

/// The exact trace one recorded app session consumed: `test_id`'s rows of
/// db.link_ticks. Throws when the bundle records none for that test (an
/// appless test, or a bundle written before per-run traces existed).
EmuTimeline timeline_from_bundle_test(const measure::ConsolidatedDb& db,
                                      std::uint32_t test_id);

/// One carrier's statistical timeline (replay::carrier_timeline) sampled
/// onto the tick grid, with recorded handovers folded into loss. Throws
/// when the bundle has no samples for the carrier/regime.
EmuTimeline timeline_from_bundle(const measure::ConsolidatedDb& db,
                                 radio::Carrier carrier,
                                 bool is_static = false);

/// An ingested trace hold-sampled onto the tick grid anchored at its first
/// point (the same hold rule the resampler applies). Throws on an empty
/// trace.
EmuTimeline timeline_from_canonical(const ingest::CanonicalTrace& trace,
                                    SimMillis tick_ms = 500);

}  // namespace wheels::emu

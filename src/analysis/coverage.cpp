#include "analysis/coverage.hpp"

#include <algorithm>

namespace wheels::analysis {

double share_of(const TechShares& shares, radio::Technology t) {
  return shares[static_cast<std::size_t>(t)];
}

double five_g_share(const TechShares& shares) {
  return share_of(shares, radio::Technology::NrLow) +
         share_of(shares, radio::Technology::NrMid) +
         share_of(shares, radio::Technology::NrMmWave);
}

double high_speed_share(const TechShares& shares) {
  return share_of(shares, radio::Technology::NrMid) +
         share_of(shares, radio::Technology::NrMmWave);
}

TechShares coverage_from_segments(
    const std::vector<measure::CoverageSegment>& segments) {
  TechShares shares{};
  double total = 0.0;
  for (const auto& seg : segments) {
    const Km len = seg.length();
    if (len <= 0.0) continue;
    shares[static_cast<std::size_t>(seg.tech)] += len;
    total += len;
  }
  if (total > 0.0) {
    for (double& s : shares) s /= total;
  }
  return shares;
}

std::string coverage_strip(
    const std::vector<measure::CoverageSegment>& segments, Km route_km,
    int width) {
  std::string strip(static_cast<std::size_t>(width), ' ');
  auto glyph = [](radio::Technology t) {
    switch (t) {
      case radio::Technology::Lte: return '.';
      case radio::Technology::LteA: return ':';
      case radio::Technology::NrLow: return 'l';
      case radio::Technology::NrMid: return 'M';
      case radio::Technology::NrMmWave: return 'W';
    }
    return '?';
  };
  // Highest tier seen in a bin wins the glyph so thin mmWave pockets stay
  // visible at map resolution.
  std::vector<int> tier(static_cast<std::size_t>(width), -1);
  for (const auto& seg : segments) {
    const int lo = std::clamp(
        static_cast<int>(seg.map_km_start / route_km * width), 0, width - 1);
    const int hi = std::clamp(
        static_cast<int>(seg.map_km_end / route_km * width), lo, width - 1);
    for (int i = lo; i <= hi; ++i) {
      const int t = radio::technology_tier(seg.tech);
      if (t > tier[static_cast<std::size_t>(i)]) {
        tier[static_cast<std::size_t>(i)] = t;
        strip[static_cast<std::size_t>(i)] = glyph(seg.tech);
      }
    }
  }
  return strip;
}

}  // namespace wheels::analysis

// Multivariate analysis of throughput vs KPIs.
//
// §5.5 closes with: "An in-depth understanding of the impact of multiple
// KPIs on performance requires a multivariate analysis, which is part of
// our future work." This module implements that analysis: ordinary least
// squares on standardised variables, so coefficients are comparable across
// KPIs, plus R² to quantify how much of the throughput variance the whole
// KPI vector explains (the paper's univariate Table 2 suggests: not much).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "analysis/correlations.hpp"
#include "measure/records.hpp"

namespace wheels::analysis {

struct RegressionResult {
  /// Standardised (beta) coefficient per regressor, in input order.
  std::vector<double> beta;
  /// Intercept in standardised space (≈0 by construction).
  double intercept = 0.0;
  /// Coefficient of determination on the fitted data.
  double r_squared = 0.0;
  std::size_t n = 0;
};

/// OLS fit of y on X (columns = regressors). All variables are standardised
/// internally (zero mean, unit variance); constant columns get a zero
/// coefficient. Throws std::invalid_argument on size mismatch or n < 2.
RegressionResult ols_standardized(std::span<const std::vector<double>> columns,
                                  std::span<const double> y);

/// The paper's future-work experiment: regress 500 ms throughput on all six
/// Table 2 factors for one (carrier, direction).
struct MultivariateReport {
  radio::Carrier carrier;
  radio::Direction direction;
  RegressionResult fit;  // beta order follows kAllKpiFactors
};

MultivariateReport multivariate_throughput(const measure::ConsolidatedDb& db,
                                           radio::Carrier carrier,
                                           radio::Direction direction);

/// Solve the symmetric linear system A x = b (Gaussian elimination with
/// partial pivoting). Exposed for testing. Throws on singular A.
std::vector<double> solve_linear_system(std::vector<std::vector<double>> a,
                                        std::vector<double> b);

}  // namespace wheels::analysis

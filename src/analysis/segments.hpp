// Route-segment quality maps.
//
// Summarises the campaign per stretch of road: per-carrier median downlink
// throughput, the winning operator, and how often the winner flips along the
// route — the spatial version of the paper's §5.4 operator-diversity
// analysis, and the substrate for the trip-planner example.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "measure/records.hpp"

namespace wheels::analysis {

struct SegmentQuality {
  Km map_km_start = 0.0;
  Km map_km_end = 0.0;
  /// Median driving DL throughput per carrier in this segment (Mbps);
  /// nullopt when the segment holds no samples for that carrier.
  std::array<std::optional<double>, radio::kCarrierCount> median_dl;
  /// Best carrier by median DL (unset if no samples at all).
  std::optional<radio::Carrier> best;
  double best_median = 0.0;
  /// Median over the per-tick max across carriers — what an ideal
  /// multi-operator device would see.
  std::optional<double> best_of_all_median;
};

/// Cut the route into `segment_km`-long pieces (map km) and summarise
/// driving DL KPI samples into each.
std::vector<SegmentQuality> segment_quality(const measure::ConsolidatedDb& db,
                                            Km route_km, Km segment_km);

/// Number of winner changes between consecutive segments that both have a
/// winner.
int operator_flips(const std::vector<SegmentQuality>& segments);

/// Fraction of segments (with data) where `carrier` wins.
double win_share(const std::vector<SegmentQuality>& segments,
                 radio::Carrier carrier);

}  // namespace wheels::analysis

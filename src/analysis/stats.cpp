#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wheels::analysis {

namespace {

double interpolated_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;

  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());

  double sum = 0.0;
  for (double x : sorted) sum += x;
  s.mean = sum / static_cast<double>(s.n);

  double var = 0.0;
  for (double x : sorted) var += (x - s.mean) * (x - s.mean);
  s.stddev = s.n > 1 ? std::sqrt(var / static_cast<double>(s.n - 1)) : 0.0;

  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = interpolated_quantile(sorted, 0.25);
  s.median = interpolated_quantile(sorted, 0.50);
  s.p75 = interpolated_quantile(sorted, 0.75);
  s.p90 = interpolated_quantile(sorted, 0.90);
  return s;
}

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::quantile(double q) const {
  return interpolated_quantile(sorted_, q);
}

double Cdf::fraction_below(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Cdf::min() const { return sorted_.empty() ? 0.0 : sorted_.front(); }
double Cdf::max() const { return sorted_.empty() ? 0.0 : sorted_.back(); }

double pearson(std::span<const double> x, std::span<const double> y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double ks_distance(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument{"ks_distance: empty sample"};
  }
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  std::size_t ia = 0, ib = 0;
  double ks = 0.0;
  while (ia < sa.size() && ib < sb.size()) {
    // Consume every observation tied at the smaller head value from *both*
    // sides, then compare the CDFs just past it: the exact statistic, with
    // no dependence on which side a tie was drained from first.
    const double x = std::min(sa[ia], sb[ib]);
    while (ia < sa.size() && sa[ia] == x) ++ia;
    while (ib < sb.size() && sb[ib] == x) ++ib;
    ks = std::max(ks, std::abs(static_cast<double>(ia) / na -
                               static_cast<double>(ib) / nb));
  }
  // The tail of the longer sample only narrows the gap back to 0.
  return ks;
}

double median_of(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const auto mid = xs.begin() + static_cast<std::ptrdiff_t>(xs.size() / 2);
  std::nth_element(xs.begin(), mid, xs.end());
  double m = *mid;
  if (xs.size() % 2 == 0) {
    const auto lower = std::max_element(xs.begin(), mid);
    m = (m + *lower) / 2.0;
  }
  return m;
}

}  // namespace wheels::analysis

#include "analysis/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace wheels::analysis {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) {
    width[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "  ";
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      for (std::size_t p = row[i].size(); p < width[i] + 2; ++p) os << ' ';
    }
    os << '\n';
  };
  print_row(header_);
  std::string rule;
  for (std::size_t w : width) rule += std::string(w, '-') + "  ";
  os << "  " << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void banner(std::ostream& os, const std::string& id,
            const std::string& title) {
  os << '\n'
     << "==== " << id << ": " << title << " ====\n";
}

void compare_line(std::ostream& os, const std::string& what, double paper,
                  double measured, const std::string& unit) {
  os << "  " << what << ": paper " << fmt(paper) << ' ' << unit
     << "  |  measured " << fmt(measured) << ' ' << unit << '\n';
}

std::string cdf_row(const Cdf& cdf) {
  if (cdf.empty()) return "(no samples)";
  std::string out;
  out += "n=" + std::to_string(cdf.size());
  out += "  p10=" + fmt(cdf.quantile(0.10));
  out += "  p25=" + fmt(cdf.quantile(0.25));
  out += "  p50=" + fmt(cdf.quantile(0.50));
  out += "  p75=" + fmt(cdf.quantile(0.75));
  out += "  p90=" + fmt(cdf.quantile(0.90));
  out += "  max=" + fmt(cdf.max());
  return out;
}

std::string fmt_quantile(const Cdf& cdf, double q, int precision) {
  if (cdf.empty()) return "-";
  return fmt(cdf.quantile(q), precision);
}

}  // namespace wheels::analysis

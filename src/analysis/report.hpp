// Report formatting shared by the bench binaries: fixed-width tables and
// paper-vs-measured rows.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/stats.hpp"

namespace wheels::analysis {

/// Fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt(double v, int precision = 2);
std::string fmt_pct(double fraction, int precision = 1);

/// Print a section banner for an experiment.
void banner(std::ostream& os, const std::string& id,
            const std::string& title);

/// One "paper vs measured" comparison line.
void compare_line(std::ostream& os, const std::string& what, double paper,
                  double measured, const std::string& unit);

/// Quantile row of a CDF for figure-style output.
std::string cdf_row(const Cdf& cdf);

/// `fmt(cdf.quantile(q))`, except an empty CDF renders as "-" instead of the
/// 0.0 sentinel (stats.hpp) masquerading as a real value.
std::string fmt_quantile(const Cdf& cdf, double q, int precision = 2);

}  // namespace wheels::analysis

// Statistics primitives used by every experiment.
#pragma once

#include <span>
#include <vector>

namespace wheels::analysis {

/// Summary statistics of a sample set.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
};

Summary summarize(std::span<const double> xs);

/// Empirical CDF over a sample set.
class Cdf {
 public:
  explicit Cdf(std::vector<double> samples);

  std::size_t size() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }

  /// Value at quantile q in [0, 1] (linear interpolation).
  ///
  /// SENTINEL: returns 0.0 when the CDF is empty. 0.0 is also a legitimate
  /// sample value (an RTT floor, a zero throughput), so callers that may see
  /// empty series must check empty() first and render the absence explicitly
  /// (analysis::fmt_quantile does this; report.cpp's cdf_row prints
  /// "(no samples)") rather than reporting a fake 0.
  double quantile(double q) const;
  /// Fraction of samples <= x. SENTINEL: 0.0 on empty, same caveat as
  /// quantile().
  double fraction_below(double x) const;
  /// SENTINEL: 0.0 on empty, same caveat as quantile().
  double min() const;
  /// SENTINEL: 0.0 on empty, same caveat as quantile().
  double max() const;

  const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Pearson correlation coefficient; returns 0 when either side is constant
/// or the series are shorter than 2.
double pearson(std::span<const double> x, std::span<const double> y);

/// Exact two-sample Kolmogorov-Smirnov statistic: sup_x |F_a(x) - F_b(x)|
/// over the empirical CDFs of the two samples. Ties — within one sample and
/// across the two — are handled exactly: all observations equal to a value
/// are consumed on both sides before the CDF gap at that value is taken, so
/// the result is independent of input order (and of any sort tie-breaking).
/// Throws std::invalid_argument when either sample is empty.
double ks_distance(std::span<const double> a, std::span<const double> b);

/// Median convenience. SENTINEL: returns 0.0 for an empty input — check
/// xs.empty() before calling when 0 is a plausible median.
double median_of(std::vector<double> xs);

}  // namespace wheels::analysis

// Bootstrap confidence intervals.
//
// The paper reports point estimates; when comparing our simulated medians
// against them it matters whether a gap is real or sampling noise. This is a
// standard percentile bootstrap over resampled datasets.
#pragma once

#include <functional>
#include <span>

#include "core/rng.hpp"

namespace wheels::analysis {

struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
  double point = 0.0;

  bool contains(double v) const { return v >= lo && v <= hi; }
  double width() const { return hi - lo; }
};

/// Percentile-bootstrap CI for `statistic` over `samples`.
/// `level` is the two-sided confidence level (e.g. 0.95).
///
/// Each resample draws from its own child stream forked off `rng`
/// (`fork("resample", it)`), so the result is identical for every `threads`
/// value: the multiset of bootstrap statistics does not depend on how
/// iterations are partitioned across workers, and the stats are sorted
/// before the quantiles are read. `threads` = 1 (default) runs inline;
/// 0 = auto (WHEELS_THREADS, else hardware_concurrency). `statistic` must be
/// safe to call concurrently from several threads (a pure function of its
/// span — which every statistic in analysis/stats.hpp is).
ConfidenceInterval bootstrap_ci(
    std::span<const double> samples,
    const std::function<double(std::span<const double>)>& statistic, Rng& rng,
    double level = 0.95, int iterations = 1000, int threads = 1);

/// Convenience: CI of the median.
ConfidenceInterval bootstrap_median_ci(std::span<const double> samples,
                                       Rng& rng, double level = 0.95,
                                       int iterations = 1000, int threads = 1);

}  // namespace wheels::analysis

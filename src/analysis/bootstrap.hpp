// Bootstrap confidence intervals.
//
// The paper reports point estimates; when comparing our simulated medians
// against them it matters whether a gap is real or sampling noise. This is a
// standard percentile bootstrap over resampled datasets.
#pragma once

#include <functional>
#include <span>

#include "core/rng.hpp"

namespace wheels::analysis {

struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
  double point = 0.0;

  bool contains(double v) const { return v >= lo && v <= hi; }
  double width() const { return hi - lo; }
};

/// Percentile-bootstrap CI for `statistic` over `samples`.
/// `level` is the two-sided confidence level (e.g. 0.95).
ConfidenceInterval bootstrap_ci(
    std::span<const double> samples,
    const std::function<double(std::span<const double>)>& statistic, Rng& rng,
    double level = 0.95, int iterations = 1000);

/// Convenience: CI of the median.
ConfidenceInterval bootstrap_median_ci(std::span<const double> samples,
                                       Rng& rng, double level = 0.95,
                                       int iterations = 1000);

}  // namespace wheels::analysis

#include "analysis/bootstrap.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "analysis/stats.hpp"

namespace wheels::analysis {

ConfidenceInterval bootstrap_ci(
    std::span<const double> samples,
    const std::function<double(std::span<const double>)>& statistic, Rng& rng,
    double level, int iterations) {
  if (samples.empty()) {
    throw std::invalid_argument{"bootstrap_ci: empty sample set"};
  }
  if (level <= 0.0 || level >= 1.0) {
    throw std::invalid_argument{"bootstrap_ci: level must be in (0,1)"};
  }

  ConfidenceInterval ci;
  ci.point = statistic(samples);

  const auto n = samples.size();
  std::vector<double> resample(n);
  std::vector<double> stats;
  stats.reserve(static_cast<std::size_t>(iterations));
  for (int it = 0; it < iterations; ++it) {
    for (std::size_t i = 0; i < n; ++i) {
      resample[i] =
          samples[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<int>(n) - 1))];
    }
    stats.push_back(statistic(resample));
  }
  std::sort(stats.begin(), stats.end());
  const double alpha = (1.0 - level) / 2.0;
  const auto idx = [&](double q) {
    return stats[static_cast<std::size_t>(
        std::clamp(q * static_cast<double>(stats.size() - 1), 0.0,
                   static_cast<double>(stats.size() - 1)))];
  };
  ci.lo = idx(alpha);
  ci.hi = idx(1.0 - alpha);
  return ci;
}

ConfidenceInterval bootstrap_median_ci(std::span<const double> samples,
                                       Rng& rng, double level,
                                       int iterations) {
  return bootstrap_ci(
      samples,
      [](std::span<const double> xs) {
        return median_of({xs.begin(), xs.end()});
      },
      rng, level, iterations);
}

}  // namespace wheels::analysis

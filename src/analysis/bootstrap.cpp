#include "analysis/bootstrap.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "analysis/stats.hpp"
#include "core/thread_pool.hpp"

namespace wheels::analysis {

ConfidenceInterval bootstrap_ci(
    std::span<const double> samples,
    const std::function<double(std::span<const double>)>& statistic, Rng& rng,
    double level, int iterations, int threads) {
  if (samples.empty()) {
    throw std::invalid_argument{"bootstrap_ci: empty sample set"};
  }
  if (level <= 0.0 || level >= 1.0) {
    throw std::invalid_argument{"bootstrap_ci: level must be in (0,1)"};
  }

  ConfidenceInterval ci;
  ci.point = statistic(samples);

  const auto n = samples.size();
  std::vector<double> stats(static_cast<std::size_t>(iterations));
  // One child stream per iteration: stats[it] depends only on (base, it),
  // never on which worker computed it or in what order, so the CI is
  // identical for every thread count.
  const Rng base{rng.next_u64()};
  auto run_range = [&](int lo, int hi) {
    std::vector<double> resample(n);
    for (int it = lo; it < hi; ++it) {
      Rng r = base.fork("resample", static_cast<std::uint64_t>(it));
      for (std::size_t i = 0; i < n; ++i) {
        resample[i] = samples[static_cast<std::size_t>(
            r.uniform_int(0, static_cast<int>(n) - 1))];
      }
      stats[static_cast<std::size_t>(it)] = statistic(resample);
    }
  };

  const int width =
      std::min(core::resolve_threads(threads), std::max(iterations, 1));
  if (width <= 1) {
    run_range(0, iterations);
  } else {
    std::vector<core::ThreadPool::Task> tasks;
    tasks.reserve(static_cast<std::size_t>(width));
    const int chunk = (iterations + width - 1) / width;
    for (int lo = 0; lo < iterations; lo += chunk) {
      const int hi = std::min(lo + chunk, iterations);
      tasks.push_back([&run_range, lo, hi] { run_range(lo, hi); });
    }
    core::ThreadPool pool{width - 1};
    pool.run_batch(std::move(tasks));
  }
  std::sort(stats.begin(), stats.end());
  const double alpha = (1.0 - level) / 2.0;
  const auto idx = [&](double q) {
    return stats[static_cast<std::size_t>(
        std::clamp(q * static_cast<double>(stats.size() - 1), 0.0,
                   static_cast<double>(stats.size() - 1)))];
  };
  ci.lo = idx(alpha);
  ci.hi = idx(1.0 - alpha);
  return ci;
}

ConfidenceInterval bootstrap_median_ci(std::span<const double> samples,
                                       Rng& rng, double level, int iterations,
                                       int threads) {
  return bootstrap_ci(
      samples,
      [](std::span<const double> xs) {
        return median_of({xs.begin(), xs.end()});
      },
      rng, level, iterations, threads);
}

}  // namespace wheels::analysis

// Operator-diversity analysis (Fig. 6): throughput differences between
// operator pairs measured concurrently (same round-robin cycle, same tick),
// broken down by whether each operator used a high-throughput (HT: midband /
// mmWave) or low-throughput (LT: LTE / LTE-A / 5G-low) technology.
#pragma once

#include <array>
#include <vector>

#include "measure/records.hpp"

namespace wheels::analysis {

enum class TechClassPair { HtHt, HtLt, LtHt, LtLt };
inline constexpr int kTechClassPairCount = 4;

std::string_view tech_class_pair_name(TechClassPair p);

struct PairedSample {
  double diff = 0.0;  // throughput(first) − throughput(second), Mbps
  TechClassPair cls = TechClassPair::LtLt;
};

struct OperatorPairAnalysis {
  radio::Carrier first;
  radio::Carrier second;
  std::vector<PairedSample> samples;

  std::vector<double> diffs() const;
  std::vector<double> diffs(TechClassPair cls) const;
  /// Share of samples in each class bin.
  std::array<double, kTechClassPairCount> class_shares() const;
};

/// Pair concurrent 500 ms samples of the two carriers for the direction.
OperatorPairAnalysis pair_operators(const measure::ConsolidatedDb& db,
                                    radio::Carrier first,
                                    radio::Carrier second,
                                    radio::Direction dir);

/// The paper's three pairs: (V,T), (T,A), (A,V).
std::vector<std::pair<radio::Carrier, radio::Carrier>> canonical_pairs();

}  // namespace wheels::analysis

#include "analysis/queries.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "analysis/stats.hpp"

namespace wheels::analysis {

bool KpiFilter::matches(const measure::KpiRecord& k) const {
  if (carrier && *carrier != k.carrier) return false;
  if (direction && *direction != k.direction) return false;
  if (tech && *tech != k.tech) return false;
  if (tz && *tz != k.tz) return false;
  if (speed_bin && *speed_bin != geo::speed_bin(k.speed)) return false;
  if (server && *server != k.server) return false;
  if (is_static && *is_static != k.is_static) return false;
  return true;
}

bool RttFilter::matches(const measure::RttRecord& r) const {
  if (carrier && *carrier != r.carrier) return false;
  if (tech && *tech != r.tech) return false;
  if (tz && *tz != r.tz) return false;
  if (speed_bin && *speed_bin != geo::speed_bin(r.speed)) return false;
  if (server && *server != r.server) return false;
  if (is_static && *is_static != r.is_static) return false;
  return true;
}

std::vector<double> throughput_samples(const measure::ConsolidatedDb& db,
                                       const KpiFilter& filter) {
  std::vector<double> out;
  for (const auto& k : db.kpis) {
    if (filter.matches(k)) out.push_back(k.throughput);
  }
  return out;
}

std::vector<double> rtt_samples(const measure::ConsolidatedDb& db,
                                const RttFilter& filter) {
  std::vector<double> out;
  for (const auto& r : db.rtts) {
    if (filter.matches(r)) out.push_back(r.rtt);
  }
  return out;
}

std::vector<double> kpi_column(
    const measure::ConsolidatedDb& db, const KpiFilter& filter,
    const std::function<double(const measure::KpiRecord&)>& get) {
  std::vector<double> out;
  for (const auto& k : db.kpis) {
    if (filter.matches(k)) out.push_back(get(k));
  }
  return out;
}

std::vector<PerTestStat> per_test_throughput(const measure::ConsolidatedDb& db,
                                             radio::Carrier carrier,
                                             radio::Direction dir,
                                             bool is_static) {
  std::map<std::uint32_t, std::vector<const measure::KpiRecord*>> by_test;
  for (const auto& k : db.kpis) {
    if (k.carrier != carrier || k.direction != dir ||
        k.is_static != is_static) {
      continue;
    }
    by_test[k.test_id].push_back(&k);
  }

  std::vector<PerTestStat> out;
  for (const auto& [test_id, rows] : by_test) {
    std::vector<double> tput;
    int hs = 0, hos = 0;
    for (const auto* k : rows) {
      tput.push_back(k->throughput);
      hs += radio::is_high_speed_5g(k->tech);
      hos += k->handovers;
    }
    const Summary s = summarize(tput);
    PerTestStat stat;
    stat.test_id = test_id;
    stat.mean = s.mean;
    stat.stddev_pct = s.mean > 1e-9 ? s.stddev / s.mean * 100.0 : 0.0;
    stat.high_speed_5g_fraction =
        static_cast<double>(hs) / static_cast<double>(rows.size());
    stat.handovers = hos;
    if (const auto* test = db.find_test(test_id)) {
      stat.distance_km = test->end_km - test->start_km;
    }
    out.push_back(stat);
  }
  return out;
}

std::vector<PerTestStat> per_test_rtt(const measure::ConsolidatedDb& db,
                                      radio::Carrier carrier,
                                      bool is_static) {
  std::map<std::uint32_t, std::vector<const measure::RttRecord*>> by_test;
  for (const auto& r : db.rtts) {
    if (r.carrier != carrier || r.is_static != is_static) continue;
    by_test[r.test_id].push_back(&r);
  }

  std::vector<PerTestStat> out;
  for (const auto& [test_id, rows] : by_test) {
    std::vector<double> rtt;
    int hs = 0;
    for (const auto* r : rows) {
      rtt.push_back(r->rtt);
      hs += radio::is_high_speed_5g(r->tech);
    }
    const Summary s = summarize(rtt);
    PerTestStat stat;
    stat.test_id = test_id;
    stat.mean = s.mean;
    stat.stddev_pct = s.mean > 1e-9 ? s.stddev / s.mean * 100.0 : 0.0;
    stat.high_speed_5g_fraction =
        static_cast<double>(hs) / static_cast<double>(rows.size());
    if (const auto* test = db.find_test(test_id)) {
      stat.distance_km = test->end_km - test->start_km;
    }
    out.push_back(stat);
  }
  return out;
}

std::vector<const measure::AppRunRecord*> app_runs(
    const measure::ConsolidatedDb& db, measure::AppKind app,
    std::optional<radio::Carrier> carrier, std::optional<bool> is_static,
    std::optional<bool> compressed) {
  std::vector<const measure::AppRunRecord*> out;
  for (const auto& r : db.app_runs) {
    if (r.app != app) continue;
    if (carrier && *carrier != r.carrier) continue;
    if (is_static && *is_static != r.is_static) continue;
    if (compressed && *compressed != r.compressed) continue;
    out.push_back(&r);
  }
  return out;
}

}  // namespace wheels::analysis

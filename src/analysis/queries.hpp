// Typed filters/extractors over the ConsolidatedDb.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "measure/records.hpp"

namespace wheels::analysis {

/// Predicate-style filter for KPI rows; unset fields match everything.
struct KpiFilter {
  std::optional<radio::Carrier> carrier;
  std::optional<radio::Direction> direction;
  std::optional<radio::Technology> tech;
  std::optional<geo::Timezone> tz;
  std::optional<geo::SpeedBin> speed_bin;
  std::optional<net::ServerKind> server;
  std::optional<bool> is_static;

  bool matches(const measure::KpiRecord& k) const;
};

struct RttFilter {
  std::optional<radio::Carrier> carrier;
  std::optional<radio::Technology> tech;
  std::optional<geo::Timezone> tz;
  std::optional<geo::SpeedBin> speed_bin;
  std::optional<net::ServerKind> server;
  std::optional<bool> is_static;

  bool matches(const measure::RttRecord& r) const;
};

/// Throughput samples (Mbps) matching a filter.
std::vector<double> throughput_samples(const measure::ConsolidatedDb& db,
                                       const KpiFilter& filter);

/// RTT samples (ms) matching a filter.
std::vector<double> rtt_samples(const measure::ConsolidatedDb& db,
                                const RttFilter& filter);

/// Extract one numeric KPI column under a filter; `get` maps a record to the
/// value.
std::vector<double> kpi_column(
    const measure::ConsolidatedDb& db, const KpiFilter& filter,
    const std::function<double(const measure::KpiRecord&)>& get);

/// Per-test aggregates: mean throughput of each bulk test (Fig. 9 top) and
/// its stddev as a percentage of the mean (Fig. 9 bottom).
struct PerTestStat {
  std::uint32_t test_id = 0;
  double mean = 0.0;
  double stddev_pct = 0.0;
  /// Fraction of the test spent on high-speed 5G (Fig. 10's x-axis).
  double high_speed_5g_fraction = 0.0;
  int handovers = 0;
  Km distance_km = 0.0;
};

std::vector<PerTestStat> per_test_throughput(const measure::ConsolidatedDb& db,
                                             radio::Carrier carrier,
                                             radio::Direction dir,
                                             bool is_static = false);

std::vector<PerTestStat> per_test_rtt(const measure::ConsolidatedDb& db,
                                      radio::Carrier carrier,
                                      bool is_static = false);

/// App runs matching (app, carrier, static?).
std::vector<const measure::AppRunRecord*> app_runs(
    const measure::ConsolidatedDb& db, measure::AppKind app,
    std::optional<radio::Carrier> carrier,
    std::optional<bool> is_static = std::nullopt,
    std::optional<bool> compressed = std::nullopt);

}  // namespace wheels::analysis

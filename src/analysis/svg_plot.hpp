// Minimal dependency-free SVG plotting.
//
// The paper's results are figures; the bench binaries print their data as
// tables, and this module draws them — CDF curves and scatter plots — as
// standalone SVG files (see examples/render_figures). No external plotting
// stack required.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "analysis/stats.hpp"

namespace wheels::analysis {

struct PlotPoint {
  double x = 0.0;
  double y = 0.0;
};

class SvgPlot {
 public:
  SvgPlot(std::string title, std::string x_label, std::string y_label,
          int width = 640, int height = 420);

  /// Line series through the given points (sorted by the caller).
  void add_line(std::vector<PlotPoint> points, std::string label);
  /// Scatter series.
  void add_scatter(std::vector<PlotPoint> points, std::string label);
  /// Convenience: an empirical CDF as a line series (y in [0,1]).
  void add_cdf(const Cdf& cdf, std::string label, int resolution = 128);

  /// Log10 x-axis (positive xs only; non-positive points are dropped).
  void set_log_x(bool log_x) { log_x_ = log_x; }

  /// Render the full SVG document.
  std::string render() const;
  /// Write to a file; creates parent directories. Throws on I/O failure.
  void save(const std::string& path) const;

  std::size_t series_count() const { return series_.size(); }

 private:
  struct Series {
    std::vector<PlotPoint> points;
    std::string label;
    bool scatter = false;
  };

  std::string title_, x_label_, y_label_;
  int width_, height_;
  bool log_x_ = false;
  std::vector<Series> series_;
};

/// "Nice" tick positions covering [lo, hi].
std::vector<double> nice_ticks(double lo, double hi, int target_count = 6);

}  // namespace wheels::analysis

// Handover statistics and throughput impact (§6, Figs. 11 & 12).
#pragma once

#include <optional>
#include <vector>

#include "measure/records.hpp"
#include "ran/handover.hpp"

namespace wheels::analysis {

/// Handovers per mile for each bulk test of (carrier, direction) — Fig. 11a.
std::vector<double> handovers_per_mile(const measure::ConsolidatedDb& db,
                                       radio::Carrier carrier,
                                       radio::Direction dir);

/// Handover durations (ms) — Fig. 11b.
std::vector<double> handover_durations(const measure::ConsolidatedDb& db,
                                       radio::Carrier carrier,
                                       radio::Direction dir);

/// The paper's Fig. 11c deltas around a handover at interval t3:
///   ΔT1 = T3 − (T2 + T4)/2          (dip during the HO)
///   ΔT2 = (T4 + T5)/2 − (T1 + T2)/2 (post- vs pre-HO level)
struct HandoverDelta {
  double dt1 = 0.0;
  double dt2 = 0.0;
  ran::HandoverType type = ran::HandoverType::FourToFour;
};

/// Compute ΔT1/ΔT2 for every handover inside bulk tests of (carrier, dir)
/// with at least 2 intervals of context on each side.
std::vector<HandoverDelta> handover_deltas(const measure::ConsolidatedDb& db,
                                           radio::Carrier carrier,
                                           radio::Direction dir);

/// Filter deltas by handover type.
std::vector<double> delta_values(const std::vector<HandoverDelta>& deltas,
                                 bool dt1,
                                 std::optional<ran::HandoverType> type =
                                     std::nullopt);

}  // namespace wheels::analysis

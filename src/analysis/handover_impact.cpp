#include "analysis/handover_impact.hpp"

#include <algorithm>
#include <map>

namespace wheels::analysis {

namespace {

bool is_bulk(measure::TestType t) {
  return t == measure::TestType::DownlinkBulk ||
         t == measure::TestType::UplinkBulk;
}

}  // namespace

std::vector<double> handovers_per_mile(const measure::ConsolidatedDb& db,
                                       radio::Carrier carrier,
                                       radio::Direction dir) {
  std::map<std::uint32_t, int> ho_count;
  for (const auto& h : db.handovers) {
    if (h.carrier == carrier && h.direction == dir) ++ho_count[h.test_id];
  }
  std::vector<double> out;
  for (const auto& t : db.tests) {
    if (t.carrier != carrier || t.direction != dir || t.is_static ||
        !is_bulk(t.type)) {
      continue;
    }
    const double miles = (t.end_km - t.start_km) * kMilesPerKm;
    // Tests run while (almost) parked make HOs-per-mile degenerate; the
    // paper normalises over moving tests.
    if (miles < 0.05) continue;
    const auto it = ho_count.find(t.id);
    const int hos = it == ho_count.end() ? 0 : it->second;
    out.push_back(hos / miles);
  }
  return out;
}

std::vector<double> handover_durations(const measure::ConsolidatedDb& db,
                                       radio::Carrier carrier,
                                       radio::Direction dir) {
  std::vector<double> out;
  for (const auto& h : db.handovers) {
    if (h.carrier != carrier || h.direction != dir) continue;
    const auto* test = db.find_test(h.test_id);
    if (test == nullptr || !is_bulk(test->type)) continue;
    out.push_back(h.event.duration);
  }
  return out;
}

std::vector<HandoverDelta> handover_deltas(const measure::ConsolidatedDb& db,
                                           radio::Carrier carrier,
                                           radio::Direction dir) {
  // Gather throughput series per bulk test, ordered by time.
  struct Series {
    std::vector<SimMillis> t;
    std::vector<double> tput;
    std::vector<int> hos;
  };
  std::map<std::uint32_t, Series> by_test;
  for (const auto& k : db.kpis) {
    if (k.carrier != carrier || k.direction != dir || k.is_static) continue;
    Series& s = by_test[k.test_id];
    s.t.push_back(k.t);
    s.tput.push_back(k.throughput);
    s.hos.push_back(k.handovers);
  }

  std::vector<HandoverDelta> out;
  for (const auto& h : db.handovers) {
    if (h.carrier != carrier || h.direction != dir) continue;
    const auto it = by_test.find(h.test_id);
    if (it == by_test.end()) continue;
    const Series& s = it->second;
    // Locate the interval containing the HO timestamp: the last interval
    // whose start is <= the event time (events are stamped with the start
    // of the tick they occur in, so upper_bound, not lower_bound).
    const auto pos = std::upper_bound(s.t.begin(), s.t.end(), h.event.t);
    std::size_t i = pos == s.t.begin()
                        ? 0
                        : static_cast<std::size_t>(pos - s.t.begin()) - 1;
    if (i < 2 || i + 2 >= s.tput.size()) continue;  // need context
    HandoverDelta d;
    d.type = h.event.type;
    d.dt1 = s.tput[i] - (s.tput[i - 1] + s.tput[i + 1]) / 2.0;
    d.dt2 = (s.tput[i + 1] + s.tput[i + 2]) / 2.0 -
            (s.tput[i - 2] + s.tput[i - 1]) / 2.0;
    out.push_back(d);
  }
  return out;
}

std::vector<double> delta_values(const std::vector<HandoverDelta>& deltas,
                                 bool dt1,
                                 std::optional<ran::HandoverType> type) {
  std::vector<double> out;
  for (const auto& d : deltas) {
    if (type && *type != d.type) continue;
    out.push_back(dt1 ? d.dt1 : d.dt2);
  }
  return out;
}

}  // namespace wheels::analysis

#include "analysis/correlations.hpp"

#include "analysis/stats.hpp"

namespace wheels::analysis {

std::string_view kpi_factor_name(KpiFactor f) {
  switch (f) {
    case KpiFactor::Rsrp: return "RSRP";
    case KpiFactor::Mcs: return "MCS";
    case KpiFactor::Ca: return "CA";
    case KpiFactor::Bler: return "BLER";
    case KpiFactor::Speed: return "Speed";
    case KpiFactor::Handovers: return "HO";
  }
  return "?";
}

double throughput_correlation(const measure::ConsolidatedDb& db,
                              radio::Carrier carrier, radio::Direction dir,
                              KpiFactor factor) {
  std::vector<double> tput, col;
  for (const auto& k : db.kpis) {
    if (k.carrier != carrier || k.direction != dir || k.is_static) continue;
    tput.push_back(k.throughput);
    switch (factor) {
      case KpiFactor::Rsrp: col.push_back(k.rsrp); break;
      case KpiFactor::Mcs: col.push_back(k.mcs); break;
      case KpiFactor::Ca: col.push_back(k.ca); break;
      case KpiFactor::Bler: col.push_back(k.bler); break;
      case KpiFactor::Speed: col.push_back(k.speed); break;
      case KpiFactor::Handovers: col.push_back(k.handovers); break;
    }
  }
  return pearson(tput, col);
}

CorrelationTable correlation_table(const measure::ConsolidatedDb& db) {
  CorrelationTable table{};
  for (radio::Carrier c : radio::kAllCarriers) {
    for (std::size_t f = 0; f < kAllKpiFactors.size(); ++f) {
      table[measure::carrier_index(c)][f][0] = throughput_correlation(
          db, c, radio::Direction::Downlink, kAllKpiFactors[f]);
      table[measure::carrier_index(c)][f][1] = throughput_correlation(
          db, c, radio::Direction::Uplink, kAllKpiFactors[f]);
    }
  }
  return table;
}

}  // namespace wheels::analysis

// Table 2: Pearson correlation of throughput with lower-layer KPIs, speed
// and handovers, per (carrier, direction).
#pragma once

#include <array>
#include <string_view>

#include "measure/records.hpp"

namespace wheels::analysis {

enum class KpiFactor { Rsrp, Mcs, Ca, Bler, Speed, Handovers };
inline constexpr int kKpiFactorCount = 6;
inline constexpr std::array<KpiFactor, kKpiFactorCount> kAllKpiFactors{
    KpiFactor::Rsrp, KpiFactor::Mcs,  KpiFactor::Ca,
    KpiFactor::Bler, KpiFactor::Speed, KpiFactor::Handovers};

std::string_view kpi_factor_name(KpiFactor f);

/// Pearson r between the 500 ms throughput samples and the factor's column,
/// over driving bulk tests of (carrier, dir).
double throughput_correlation(const measure::ConsolidatedDb& db,
                              radio::Carrier carrier, radio::Direction dir,
                              KpiFactor factor);

/// The whole Table 2: [carrier][factor][direction].
using CorrelationTable =
    std::array<std::array<std::array<double, 2>, kKpiFactorCount>,
               radio::kCarrierCount>;

CorrelationTable correlation_table(const measure::ConsolidatedDb& db);

}  // namespace wheels::analysis

// Coverage accounting (Figs. 1 and 2).
#pragma once

#include <array>
#include <vector>

#include "measure/records.hpp"

namespace wheels::analysis {

/// Per-technology share of miles, summing to 1 (0 if no data).
using TechShares = std::array<double, radio::kTechnologyCount>;

double share_of(const TechShares& shares, radio::Technology t);

/// 5G share (low+mid+mmWave) and high-speed-5G share (mid+mmWave).
double five_g_share(const TechShares& shares);
double high_speed_share(const TechShares& shares);

/// Shares of route miles per technology from merged coverage segments
/// (the Fig. 1 maps / Fig. 2a view).
TechShares coverage_from_segments(
    const std::vector<measure::CoverageSegment>& segments);

/// Distance-weighted technology shares from KPI rows (each 500 ms row
/// weighted by the km driven in it). `filter` rows with the predicate.
template <typename Pred>
TechShares coverage_from_kpis(const measure::ConsolidatedDb& db, Pred pred) {
  TechShares shares{};
  double total = 0.0;
  for (const auto& k : db.kpis) {
    if (k.is_static || !pred(k)) continue;
    const double km = kmh_from_mph(k.speed) * (0.5 / 3600.0);
    shares[static_cast<std::size_t>(k.tech)] += km;
    total += km;
  }
  if (total > 0.0) {
    for (double& s : shares) s /= total;
  }
  return shares;
}

/// ASCII coverage strip along the route (the Fig. 1 map, one char per bin):
/// '.'=LTE, ':'=LTE-A, 'l'=5G-low, 'M'=5G-mid, 'W'=5G-mmWave, ' '=no data.
std::string coverage_strip(const std::vector<measure::CoverageSegment>& segments,
                           Km route_km, int width);

}  // namespace wheels::analysis

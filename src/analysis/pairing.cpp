#include "analysis/pairing.hpp"

#include <map>

namespace wheels::analysis {

std::string_view tech_class_pair_name(TechClassPair p) {
  switch (p) {
    case TechClassPair::HtHt: return "HT-HT";
    case TechClassPair::HtLt: return "HT-LT";
    case TechClassPair::LtHt: return "LT-HT";
    case TechClassPair::LtLt: return "LT-LT";
  }
  return "?";
}

std::vector<double> OperatorPairAnalysis::diffs() const {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s.diff);
  return out;
}

std::vector<double> OperatorPairAnalysis::diffs(TechClassPair cls) const {
  std::vector<double> out;
  for (const auto& s : samples) {
    if (s.cls == cls) out.push_back(s.diff);
  }
  return out;
}

std::array<double, kTechClassPairCount> OperatorPairAnalysis::class_shares()
    const {
  std::array<double, kTechClassPairCount> shares{};
  if (samples.empty()) return shares;
  for (const auto& s : samples) shares[static_cast<std::size_t>(s.cls)] += 1.0;
  for (double& s : shares) s /= static_cast<double>(samples.size());
  return shares;
}

OperatorPairAnalysis pair_operators(const measure::ConsolidatedDb& db,
                                    radio::Carrier first,
                                    radio::Carrier second,
                                    radio::Direction dir) {
  OperatorPairAnalysis out{first, second, {}};

  // Concurrency key: the lockstep campaign stamps concurrent samples with
  // identical sim times. (test_id differs per carrier, t does not.)
  std::map<SimMillis, const measure::KpiRecord*> first_by_t;
  for (const auto& k : db.kpis) {
    if (k.is_static || k.direction != dir) continue;
    if (k.carrier == first) first_by_t[k.t] = &k;
  }
  for (const auto& k : db.kpis) {
    if (k.is_static || k.direction != dir || k.carrier != second) continue;
    const auto it = first_by_t.find(k.t);
    if (it == first_by_t.end()) continue;
    const auto& f = *it->second;
    PairedSample s;
    s.diff = f.throughput - k.throughput;
    const bool f_ht = radio::is_high_speed_5g(f.tech);
    const bool s_ht = radio::is_high_speed_5g(k.tech);
    s.cls = f_ht ? (s_ht ? TechClassPair::HtHt : TechClassPair::HtLt)
                 : (s_ht ? TechClassPair::LtHt : TechClassPair::LtLt);
    out.samples.push_back(s);
  }
  return out;
}

std::vector<std::pair<radio::Carrier, radio::Carrier>> canonical_pairs() {
  using radio::Carrier;
  return {{Carrier::Verizon, Carrier::TMobile},
          {Carrier::TMobile, Carrier::Att},
          {Carrier::Att, Carrier::Verizon}};
}

}  // namespace wheels::analysis

// Ookla SpeedTest US report, Q3 2022 (Table 3's comparison column), plus the
// paper's own measured medians for reference in EXPERIMENTS.md.
#pragma once

#include "radio/technology.hpp"

namespace wheels::analysis {

struct OoklaEntry {
  double downlink_mbps;
  double uplink_mbps;
  double rtt_ms;
};

/// Published Ookla Q3-2022 medians per carrier.
constexpr OoklaEntry ookla_reference(radio::Carrier c) {
  switch (c) {
    case radio::Carrier::Verizon: return {58.64, 8.30, 59.0};
    case radio::Carrier::TMobile: return {116.14, 10.91, 60.0};
    case radio::Carrier::Att: return {57.94, 7.55, 61.0};
  }
  return {0, 0, 0};
}

/// The paper's own Table 3 medians ("Our Data" column).
constexpr OoklaEntry paper_reference(radio::Carrier c) {
  switch (c) {
    case radio::Carrier::Verizon: return {29.62, 13.18, 63.71};
    case radio::Carrier::TMobile: return {37.09, 13.77, 81.68};
    case radio::Carrier::Att: return {48.40, 9.80, 80.73};
  }
  return {0, 0, 0};
}

}  // namespace wheels::analysis

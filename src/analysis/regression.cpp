#include "analysis/regression.hpp"

#include <cmath>
#include <stdexcept>

namespace wheels::analysis {

std::vector<double> solve_linear_system(std::vector<std::vector<double>> a,
                                        std::vector<double> b) {
  const std::size_t n = a.size();
  if (n == 0 || b.size() != n) {
    throw std::invalid_argument{"solve_linear_system: bad dimensions"};
  }
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    }
    if (std::abs(a[pivot][col]) < 1e-12) {
      throw std::invalid_argument{"solve_linear_system: singular matrix"};
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);

    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / a[col][col];
      for (std::size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= a[i][k] * x[k];
    x[i] = sum / a[i][i];
  }
  return x;
}

namespace {

struct Standardized {
  std::vector<double> values;
  bool constant = false;
};

Standardized standardize(std::span<const double> xs) {
  Standardized out;
  out.values.assign(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(n);
  if (var < 1e-12) {
    out.constant = true;
    for (double& v : out.values) v = 0.0;
    return out;
  }
  const double sd = std::sqrt(var);
  for (double& v : out.values) v = (v - mean) / sd;
  return out;
}

}  // namespace

RegressionResult ols_standardized(std::span<const std::vector<double>> columns,
                                  std::span<const double> y) {
  const std::size_t p = columns.size();
  const std::size_t n = y.size();
  if (n < 2) throw std::invalid_argument{"ols: need at least 2 rows"};
  for (const auto& col : columns) {
    if (col.size() != n) throw std::invalid_argument{"ols: ragged columns"};
  }

  // Standardise everything; constant columns are dropped (beta 0).
  std::vector<Standardized> xs;
  xs.reserve(p);
  for (const auto& col : columns) xs.push_back(standardize(col));
  const Standardized ys = standardize(y);

  RegressionResult result;
  result.n = n;
  result.beta.assign(p, 0.0);
  if (ys.constant) return result;  // nothing to explain

  std::vector<std::size_t> active;
  for (std::size_t j = 0; j < p; ++j) {
    if (!xs[j].constant) active.push_back(j);
  }
  if (active.empty()) return result;

  // Normal equations on standardised data: (X'X) beta = X'y. With unit
  // variances, X'X/n is the correlation matrix — well scaled by design.
  const std::size_t k = active.size();
  std::vector<std::vector<double>> xtx(k, std::vector<double>(k, 0.0));
  std::vector<double> xty(k, 0.0);
  for (std::size_t a = 0; a < k; ++a) {
    const auto& xa = xs[active[a]].values;
    for (std::size_t b = a; b < k; ++b) {
      const auto& xb = xs[active[b]].values;
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i) dot += xa[i] * xb[i];
      xtx[a][b] = xtx[b][a] = dot;
    }
    double dot = 0.0;
    for (std::size_t i = 0; i < n; ++i) dot += xa[i] * ys.values[i];
    xty[a] = dot;
  }
  // Ridge epsilon guards against perfectly collinear KPI columns.
  for (std::size_t a = 0; a < k; ++a) xtx[a][a] += 1e-9 * static_cast<double>(n);

  const std::vector<double> beta = solve_linear_system(xtx, xty);
  for (std::size_t a = 0; a < k; ++a) result.beta[active[a]] = beta[a];

  // R² = 1 − SSE / SST on standardised y (SST = n).
  double sse = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double pred = 0.0;
    for (std::size_t a = 0; a < k; ++a) {
      pred += beta[a] * xs[active[a]].values[i];
    }
    const double err = ys.values[i] - pred;
    sse += err * err;
  }
  result.r_squared = 1.0 - sse / static_cast<double>(n);
  return result;
}

MultivariateReport multivariate_throughput(const measure::ConsolidatedDb& db,
                                           radio::Carrier carrier,
                                           radio::Direction direction) {
  std::vector<std::vector<double>> columns(kKpiFactorCount);
  std::vector<double> y;
  for (const auto& k : db.kpis) {
    if (k.carrier != carrier || k.direction != direction || k.is_static) {
      continue;
    }
    y.push_back(k.throughput);
    columns[0].push_back(k.rsrp);
    columns[1].push_back(k.mcs);
    columns[2].push_back(k.ca);
    columns[3].push_back(k.bler);
    columns[4].push_back(k.speed);
    columns[5].push_back(k.handovers);
  }
  MultivariateReport report{carrier, direction, {}};
  if (y.size() >= 2) report.fit = ols_standardized(columns, y);
  return report;
}

}  // namespace wheels::analysis

#include "analysis/segments.hpp"

#include <algorithm>
#include <map>

#include "analysis/stats.hpp"

namespace wheels::analysis {

std::vector<SegmentQuality> segment_quality(const measure::ConsolidatedDb& db,
                                            Km route_km, Km segment_km) {
  const auto n_segments =
      static_cast<std::size_t>(std::max(1.0, route_km / segment_km));
  std::vector<SegmentQuality> segments(n_segments);
  std::vector<std::array<std::vector<double>, radio::kCarrierCount>> samples(
      n_segments);
  // Concurrent per-tick samples keyed by time, for the best-of-all view.
  std::vector<std::map<SimMillis, std::array<double, radio::kCarrierCount>>>
      concurrent(n_segments);

  for (std::size_t i = 0; i < n_segments; ++i) {
    segments[i].map_km_start = static_cast<double>(i) * segment_km;
    segments[i].map_km_end =
        std::min(route_km, segments[i].map_km_start + segment_km);
  }

  for (const auto& k : db.kpis) {
    if (k.is_static || k.direction != radio::Direction::Downlink) continue;
    const auto idx = std::min(
        n_segments - 1, static_cast<std::size_t>(k.map_km / segment_km));
    samples[idx][measure::carrier_index(k.carrier)].push_back(k.throughput);
    auto& row = concurrent[idx]
                    .try_emplace(k.t,
                                 std::array<double, radio::kCarrierCount>{
                                     -1.0, -1.0, -1.0})
                    .first->second;
    row[measure::carrier_index(k.carrier)] = k.throughput;
  }

  for (std::size_t i = 0; i < n_segments; ++i) {
    for (radio::Carrier c : radio::kAllCarriers) {
      const std::size_t ci = measure::carrier_index(c);
      if (samples[i][ci].empty()) continue;
      const double med = median_of(samples[i][ci]);
      segments[i].median_dl[ci] = med;
      if (!segments[i].best || med > segments[i].best_median) {
        segments[i].best = c;
        segments[i].best_median = med;
      }
    }
    std::vector<double> best_ticks;
    for (const auto& [t, row] : concurrent[i]) {
      double best = -1.0;
      for (double v : row) best = std::max(best, v);
      if (best >= 0.0) best_ticks.push_back(best);
    }
    if (!best_ticks.empty()) {
      segments[i].best_of_all_median = median_of(std::move(best_ticks));
    }
  }
  return segments;
}

int operator_flips(const std::vector<SegmentQuality>& segments) {
  int flips = 0;
  std::optional<radio::Carrier> prev;
  for (const auto& s : segments) {
    if (!s.best) continue;
    if (prev && *prev != *s.best) ++flips;
    prev = s.best;
  }
  return flips;
}

double win_share(const std::vector<SegmentQuality>& segments,
                 radio::Carrier carrier) {
  int with_data = 0, wins = 0;
  for (const auto& s : segments) {
    if (!s.best) continue;
    ++with_data;
    wins += *s.best == carrier;
  }
  return with_data == 0 ? 0.0
                        : static_cast<double>(wins) /
                              static_cast<double>(with_data);
}

}  // namespace wheels::analysis

#include "analysis/svg_plot.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace wheels::analysis {

namespace {

constexpr int kMarginLeft = 64;
constexpr int kMarginRight = 16;
constexpr int kMarginTop = 34;
constexpr int kMarginBottom = 46;

const char* kPalette[] = {"#c23b3b", "#2b6fb3", "#3f9e4d",
                          "#8e5bb0", "#d98b27", "#4fb0a5"};

std::string escape(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string num(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

}  // namespace

std::vector<double> nice_ticks(double lo, double hi, int target_count) {
  if (!(hi > lo)) hi = lo + 1.0;
  const double raw_step = (hi - lo) / std::max(1, target_count - 1);
  const double mag = std::pow(10.0, std::floor(std::log10(raw_step)));
  double step = mag;
  for (const double m : {1.0, 2.0, 2.5, 5.0, 10.0}) {
    if (mag * m >= raw_step) {
      step = mag * m;
      break;
    }
  }
  std::vector<double> ticks;
  const double start = std::ceil(lo / step) * step;
  for (double t = start; t <= hi + step * 1e-9; t += step) {
    ticks.push_back(std::abs(t) < step * 1e-9 ? 0.0 : t);
  }
  return ticks;
}

SvgPlot::SvgPlot(std::string title, std::string x_label, std::string y_label,
                 int width, int height)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)),
      width_(width),
      height_(height) {}

void SvgPlot::add_line(std::vector<PlotPoint> points, std::string label) {
  series_.push_back({std::move(points), std::move(label), false});
}

void SvgPlot::add_scatter(std::vector<PlotPoint> points, std::string label) {
  series_.push_back({std::move(points), std::move(label), true});
}

void SvgPlot::add_cdf(const Cdf& cdf, std::string label, int resolution) {
  std::vector<PlotPoint> pts;
  if (!cdf.empty()) {
    pts.reserve(static_cast<std::size_t>(resolution) + 1);
    for (int i = 0; i <= resolution; ++i) {
      const double q = static_cast<double>(i) / resolution;
      pts.push_back({cdf.quantile(q), q});
    }
  }
  add_line(std::move(pts), std::move(label));
}

std::string SvgPlot::render() const {
  // Collect data bounds.
  double x_lo = 1e300, x_hi = -1e300, y_lo = 1e300, y_hi = -1e300;
  auto tx = [&](double x) { return log_x_ ? std::log10(x) : x; };
  for (const auto& s : series_) {
    for (const auto& p : s.points) {
      if (log_x_ && p.x <= 0.0) continue;
      x_lo = std::min(x_lo, tx(p.x));
      x_hi = std::max(x_hi, tx(p.x));
      y_lo = std::min(y_lo, p.y);
      y_hi = std::max(y_hi, p.y);
    }
  }
  if (x_lo > x_hi) {  // no data
    x_lo = 0.0;
    x_hi = 1.0;
    y_lo = 0.0;
    y_hi = 1.0;
  }
  if (y_lo == y_hi) y_hi = y_lo + 1.0;
  if (x_lo == x_hi) x_hi = x_lo + 1.0;

  const double plot_w = width_ - kMarginLeft - kMarginRight;
  const double plot_h = height_ - kMarginTop - kMarginBottom;
  auto px = [&](double x) {
    return kMarginLeft + (tx(x) - x_lo) / (x_hi - x_lo) * plot_w;
  };
  auto py = [&](double y) {
    return kMarginTop + (1.0 - (y - y_lo) / (y_hi - y_lo)) * plot_h;
  };

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_
      << "\" height=\"" << height_ << "\" viewBox=\"0 0 " << width_ << ' '
      << height_ << "\">\n";
  svg << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  svg << "<text x=\"" << width_ / 2 << "\" y=\"20\" text-anchor=\"middle\" "
         "font-family=\"sans-serif\" font-size=\"14\">"
      << escape(title_) << "</text>\n";

  // Axes frame.
  svg << "<rect x=\"" << kMarginLeft << "\" y=\"" << kMarginTop
      << "\" width=\"" << plot_w << "\" height=\"" << plot_h
      << "\" fill=\"none\" stroke=\"#444\"/>\n";

  // X ticks (decades when log).
  std::vector<double> xticks;
  if (log_x_) {
    for (double d = std::floor(x_lo); d <= std::ceil(x_hi); d += 1.0) {
      if (d >= x_lo - 1e-9 && d <= x_hi + 1e-9) {
        xticks.push_back(std::pow(10.0, d));
      }
    }
  } else {
    xticks = nice_ticks(x_lo, x_hi);
  }
  for (double t : xticks) {
    const double x = px(t);
    if (x < kMarginLeft - 1 || x > width_ - kMarginRight + 1) continue;
    svg << "<line x1=\"" << x << "\" y1=\"" << kMarginTop + plot_h
        << "\" x2=\"" << x << "\" y2=\"" << kMarginTop + plot_h + 5
        << "\" stroke=\"#444\"/>\n";
    svg << "<text x=\"" << x << "\" y=\"" << kMarginTop + plot_h + 18
        << "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
           "font-size=\"10\">"
        << num(t) << "</text>\n";
  }
  for (double t : nice_ticks(y_lo, y_hi)) {
    const double y = py(t);
    if (y < kMarginTop - 1 || y > kMarginTop + plot_h + 1) continue;
    svg << "<line x1=\"" << kMarginLeft - 5 << "\" y1=\"" << y << "\" x2=\""
        << kMarginLeft << "\" y2=\"" << y << "\" stroke=\"#444\"/>\n";
    svg << "<text x=\"" << kMarginLeft - 8 << "\" y=\"" << y + 3
        << "\" text-anchor=\"end\" font-family=\"sans-serif\" "
           "font-size=\"10\">"
        << num(t) << "</text>\n";
  }

  // Axis labels.
  svg << "<text x=\"" << kMarginLeft + plot_w / 2 << "\" y=\""
      << height_ - 10
      << "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
         "font-size=\"12\">"
      << escape(x_label_) << (log_x_ ? " (log scale)" : "") << "</text>\n";
  svg << "<text x=\"14\" y=\"" << kMarginTop + plot_h / 2
      << "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
         "font-size=\"12\" transform=\"rotate(-90 14 "
      << kMarginTop + plot_h / 2 << ")\">" << escape(y_label_) << "</text>\n";

  // Series.
  for (std::size_t si = 0; si < series_.size(); ++si) {
    const Series& s = series_[si];
    const char* color = kPalette[si % (sizeof(kPalette) / sizeof(*kPalette))];
    if (s.scatter) {
      for (const auto& p : s.points) {
        if (log_x_ && p.x <= 0.0) continue;
        svg << "<circle cx=\"" << px(p.x) << "\" cy=\"" << py(p.y)
            << "\" r=\"2.2\" fill=\"" << color << "\" fill-opacity=\"0.6\"/>"
            << '\n';
      }
    } else if (!s.points.empty()) {
      svg << "<polyline fill=\"none\" stroke=\"" << color
          << "\" stroke-width=\"1.8\" points=\"";
      for (const auto& p : s.points) {
        if (log_x_ && p.x <= 0.0) continue;
        svg << px(p.x) << ',' << py(p.y) << ' ';
      }
      svg << "\"/>\n";
    }
    // Legend entry.
    const double ly = kMarginTop + 14.0 + 16.0 * static_cast<double>(si);
    svg << "<rect x=\"" << kMarginLeft + 10 << "\" y=\"" << ly - 8
        << "\" width=\"12\" height=\"4\" fill=\"" << color << "\"/>\n";
    svg << "<text x=\"" << kMarginLeft + 27 << "\" y=\"" << ly
        << "\" font-family=\"sans-serif\" font-size=\"11\">"
        << escape(s.label) << "</text>\n";
  }

  svg << "</svg>\n";
  return svg.str();
}

void SvgPlot::save(const std::string& path) const {
  const std::filesystem::path p{path};
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream os{p};
  if (!os) throw std::runtime_error{"SvgPlot: cannot open " + path};
  os << render();
}

}  // namespace wheels::analysis

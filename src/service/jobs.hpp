// Jobs: the bridge from a wire-level JobSpec to the library's callable
// entry points (campaign::run_to_bundle, replay::replay_to_bundle,
// replay::ReplayFleet, synth::sample_to_bundle) and to the result cache's
// identity space.
//
// A job's cache key is computable *before* it runs: (kind, config digest,
// seed, input digest). The config digest is the same FNV-1a canonical-string
// digest the bundle manifests record; the input digest pins what the job
// reads (source-bundle identities for replay/fleet, profile bytes for
// synth; "-" for the self-contained campaign). Two requests with equal keys
// produce byte-identical bundles — the contract the cache serves under.
#pragma once

#include <cstdint>
#include <string>

#include "service/protocol.hpp"

namespace wheels::service {

struct CacheKey {
  JobKind kind = JobKind::Campaign;
  std::string config_digest;  // hex64
  std::uint64_t seed = 0;
  std::string input_digest;  // hex64, or "-" for input-free jobs

  /// Directory name of the cached bundle: "<kind>-<config>-<seed>-<input>".
  std::string dir_name() const;

  bool operator==(const CacheKey& other) const = default;
};

/// Derive `spec`'s cache key. Reads input identities — source-bundle
/// manifests, trace/profile file bytes — but runs nothing. Throws
/// std::runtime_error (naming the offending file or grid axis) when an
/// input is missing or a spec string is malformed.
CacheKey cache_key(const JobSpec& spec);

/// Run the job and write its result bundle into `out_dir` (created). Every
/// inner run is serial (threads = 1) with canonical provenance — wheelsd
/// spends its parallelism across jobs, never inside one, so concurrent
/// submission cannot change an output byte. Throws on any failure.
void run_job(const JobSpec& spec, const std::string& out_dir);

}  // namespace wheels::service

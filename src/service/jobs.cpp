#include "service/jobs.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "campaign/campaign.hpp"
#include "core/obs/manifest.hpp"
#include "core/obs/metrics.hpp"
#include "measure/enum_names.hpp"
#include "replay/fleet.hpp"
#include "replay/ingest.hpp"
#include "replay/replay_campaign.hpp"
#include "synth/profile.hpp"
#include "synth/sample.hpp"

namespace wheels::service {

namespace fs = std::filesystem;

namespace {

campaign::CampaignConfig to_campaign_config(const JobSpec& spec) {
  campaign::CampaignConfig cfg;
  cfg.seed = spec.seed;
  cfg.scale = spec.scale;
  cfg.run_apps = spec.apps;
  cfg.long_app_stride = spec.stride;
  cfg.run_static = spec.run_static;
  cfg.idle_ticks_between_cycles = spec.idle;
  cfg.population = spec.ues;
  cfg.scheduler = spec.scheduler;
  cfg.threads = 1;
  return cfg;
}

replay::ReplayConfig to_replay_config(const JobSpec& spec) {
  replay::ReplayConfig cfg;
  cfg.seed = spec.seed;
  cfg.policy = spec.policy;
  cfg.knobs = spec.knobs;
  cfg.threads = 1;
  return cfg;
}

std::string read_file_bytes(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw std::runtime_error{path + ": cannot open"};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// The identity string of one bundle manifest — everything that pins which
/// data a bundle holds (its config digest plus the run's seed and scale).
std::string manifest_identity(const core::obs::RunManifest& m) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "config=%s;seed=%llu;scale=%.17g",
                m.config_digest.c_str(),
                static_cast<unsigned long long>(m.seed), m.scale);
  return buf;
}

/// Identity of one expanded fleet path spec: bundle dirs contribute their
/// manifest identity, external trace CSVs the digest of their bytes plus
/// the selected carrier — renaming a file changes nothing, editing a tick
/// changes the key.
std::string spec_identity(const std::string& spec) {
  std::string path = spec;
  std::string carrier = measure::names::to_name(radio::Carrier::Verizon).data();
  if (const std::size_t at = spec.rfind('@');
      at != std::string::npos && at + 1 < spec.size()) {
    const std::string tail = spec.substr(at + 1);
    try {
      carrier = measure::names::to_name(measure::names::parse_carrier(tail));
      path = spec.substr(0, at);
    } catch (const std::runtime_error&) {
      // Not a carrier suffix; treat the whole spec as a path.
    }
  }
  const bool is_csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (is_csv) {
    return "trace=" + core::obs::hex64(core::obs::fnv1a64(
                          read_file_bytes(path))) +
           ";carrier=" + carrier;
  }
  return manifest_identity(
      core::obs::read_manifest((fs::path{path} / "manifest.json").string()));
}

/// The fleet job's canonical config string: the expanded knob grid (cell
/// labels in expand_grid order), the interpolation policy and the bootstrap
/// depth — everything that shapes fleet.csv besides the input bundles.
std::string fleet_canonical(const JobSpec& spec,
                            const std::vector<replay::ReplayKnobs>& cells) {
  std::string canon = "fleet;interp=";
  canon += spec.policy == replay::HoldPolicy::Hold ? "hold" : "linear";
  canon += ";ci=" + std::to_string(spec.ci_iterations) + ";cells=";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) canon += ",";
    canon += replay::cell_label(cells[i]);
  }
  return canon;
}

std::vector<replay::ReplayKnobs> fleet_cells(const JobSpec& spec) {
  replay::KnobGrid grid;
  for (const std::string& axis : spec.grid) {
    replay::apply_grid_axis(grid, axis);
  }
  return replay::expand_grid(grid);
}

void run_fleet_job(const JobSpec& spec, const std::string& out_dir) {
  const std::vector<std::string> specs =
      replay::expand_fleet_specs(spec.bundles);
  std::vector<replay::ReplayBundle> bundles;
  bundles.reserve(specs.size());
  for (const std::string& s : specs) {
    bundles.push_back(replay::load_fleet_bundle(s));
  }
  std::vector<replay::FleetItem> items;
  items.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    items.push_back({specs[i], &bundles[i]});
  }
  replay::FleetConfig cfg;
  cfg.replay = to_replay_config(spec);
  cfg.threads = 1;
  cfg.ci_iterations = spec.ci_iterations;
  for (const std::string& axis : spec.grid) {
    replay::apply_grid_axis(cfg.grid, axis);
  }
  const replay::ReplayFleet fleet{cfg};
  const replay::FleetResult result = fleet.run(items);

  fs::create_directories(out_dir);
  const std::string csv_path = (fs::path{out_dir} / "fleet.csv").string();
  std::ofstream csv{csv_path, std::ios::binary};
  if (!csv) {
    throw std::runtime_error{csv_path + ": cannot open for writing"};
  }
  replay::write_fleet_csv(csv, result);
  csv.close();

  core::obs::RunManifest manifest = core::obs::make_run_manifest();
  manifest.seed = spec.seed;
  manifest.scale = 0.0;
  manifest.config_digest =
      core::obs::hex64(core::obs::fnv1a64(fleet_canonical(spec,
                                                          fleet.cells())));
  manifest.threads = 1;
  core::obs::canonicalize_provenance(manifest);
  core::obs::write_manifest(manifest,
                            (fs::path{out_dir} / "manifest.json").string());
}

}  // namespace

std::string CacheKey::dir_name() const {
  std::string out{job_kind_name(kind)};
  out += "-" + config_digest + "-" + std::to_string(seed) + "-" +
         input_digest;
  return out;
}

CacheKey cache_key(const JobSpec& spec) {
  CacheKey key;
  key.kind = spec.kind;
  key.seed = spec.seed;
  key.input_digest = "-";
  switch (spec.kind) {
    case JobKind::Campaign:
      key.config_digest =
          campaign::make_manifest(to_campaign_config(spec)).config_digest;
      break;
    case JobKind::Replay: {
      const core::obs::RunManifest source = core::obs::read_manifest(
          (fs::path{spec.bundles[0]} / "manifest.json").string());
      key.config_digest =
          replay::make_replay_manifest(to_replay_config(spec), source)
              .config_digest;
      key.input_digest =
          core::obs::hex64(core::obs::fnv1a64(manifest_identity(source)));
      break;
    }
    case JobKind::Fleet: {
      key.config_digest = core::obs::hex64(
          core::obs::fnv1a64(fleet_canonical(spec, fleet_cells(spec))));
      std::string joined;
      for (const std::string& s : replay::expand_fleet_specs(spec.bundles)) {
        if (!joined.empty()) joined += "|";
        joined += spec_identity(s);
      }
      key.input_digest = core::obs::hex64(core::obs::fnv1a64(joined));
      break;
    }
    case JobKind::Synth: {
      const synth::ScenarioSpec scenario =
          synth::parse_scenario_spec(spec.scenario);
      const std::string canon = "synth;cycles=" +
                                std::to_string(spec.cycles) + ";spec=" +
                                synth::scenario_canonical(scenario);
      key.config_digest = core::obs::hex64(core::obs::fnv1a64(canon));
      key.input_digest = core::obs::hex64(
          core::obs::fnv1a64(read_file_bytes(spec.profile)));
      break;
    }
  }
  return key;
}

void run_job(const JobSpec& spec, const std::string& out_dir) {
  static const core::obs::Counter computed{"service.jobs_computed"};
  computed.add();
  switch (spec.kind) {
    case JobKind::Campaign:
      campaign::run_to_bundle(to_campaign_config(spec), out_dir,
                              /*canonical_provenance=*/true);
      return;
    case JobKind::Replay: {
      const replay::ReplayBundle bundle = replay::read_dataset(
          spec.bundles[0]);
      replay::replay_to_bundle(bundle, to_replay_config(spec), out_dir,
                               /*canonical_provenance=*/true);
      return;
    }
    case JobKind::Fleet:
      run_fleet_job(spec, out_dir);
      return;
    case JobKind::Synth: {
      const synth::SynthProfile profile = synth::read_profile(spec.profile);
      const synth::ScenarioSpec scenario =
          synth::parse_scenario_spec(spec.scenario);
      synth::sample_to_bundle(profile, scenario, spec.seed,
                              /*first_cycle=*/0, spec.cycles, /*threads=*/1,
                              out_dir, /*canonical_provenance=*/true);
      return;
    }
  }
}

}  // namespace wheels::service

#include "service/config.hpp"

#include <cstdio>
#include <cstdlib>

#include "core/env.hpp"

namespace wheels::service {

ServiceConfig service_config_from_env() {
  ServiceConfig cfg;
  if (const char* v = std::getenv("WHEELS_SERVICE_SOCKET"); v && *v) {
    cfg.socket_path = v;
  }
  if (const char* v = std::getenv("WHEELS_SERVICE_CACHE_DIR"); v && *v) {
    cfg.cache_dir = v;
  }
  if (auto v = core::env_int("WHEELS_SERVICE_QUEUE")) {
    if (*v >= 1) {
      cfg.queue_depth = static_cast<int>(*v);
    } else {
      std::fprintf(stderr,
                   "wheels: WHEELS_SERVICE_QUEUE=%lld out of range (>= 1); "
                   "using %d\n",
                   *v, cfg.queue_depth);
    }
  }
  if (auto v = core::env_int("WHEELS_SERVICE_CACHE_MAX_BYTES")) {
    if (*v >= 0) {
      cfg.cache_max_bytes = static_cast<std::uint64_t>(*v);
    } else {
      std::fprintf(stderr,
                   "wheels: WHEELS_SERVICE_CACHE_MAX_BYTES=%lld out of range "
                   "(>= 0); using %llu\n",
                   *v,
                   static_cast<unsigned long long>(cfg.cache_max_bytes));
    }
  }
  return cfg;
}

}  // namespace wheels::service

// Server: the wheelsd daemon core — an AF_UNIX line-protocol front end over
// the job scheduler and the result cache.
//
// Threading model: one accept thread, one connection thread per client, one
// scheduler thread. The scheduler drains admitted jobs in waves through a
// single core::ThreadPool (the pool's one-batch-at-a-time contract makes it
// the pool's sole caller); each job runs its library entry point strictly
// serially inside (threads = 1, the ReplayFleet discipline), so every
// output byte is independent of how many jobs ran beside it — concurrent
// submission is byte-identical to serial, at every WHEELS_THREADS.
//
// Job lifecycle: submit → cache lookup (hit: Done instantly, the cached
// bundle is the result) → bounded queue admission (full: rejected with
// "submit: queue full (depth N)") → Running (cache re-check, compute into a
// private stage dir, publish) → Done/Failed/Cancelled. Cancellation is
// cooperative: a queued job is dropped in place; a running one is abandoned
// at the next checkpoint and never published.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/thread_pool.hpp"
#include "service/cache.hpp"
#include "service/config.hpp"
#include "service/protocol.hpp"

namespace wheels::service {

struct ServerOptions {
  ServiceConfig config;
  /// Start with the scheduler paused: jobs are admitted and queued but none
  /// starts until resume() — deterministic queue-depth and cancel tests.
  bool start_paused = false;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the socket and start the accept/scheduler threads. Throws
  /// std::runtime_error when the socket cannot be bound.
  void start();

  /// Stop accepting, finish running jobs, join every thread, remove the
  /// socket. Idempotent.
  void stop();

  /// Release a start_paused scheduler.
  void resume();

  /// Block until a client sent the shutdown op (or stop() was called).
  void wait_for_shutdown();

  /// Like wait_for_shutdown, but gives up after `timeout_ms`; true when a
  /// shutdown was requested — lets a main loop interleave a signal-flag
  /// check (a signal handler cannot call stop() safely).
  bool wait_for_shutdown_for(int timeout_ms);

  const ServiceConfig& config() const { return options_.config; }
  ResultCache& cache() { return cache_; }

 private:
  struct Job {
    std::uint64_t id = 0;
    JobSpec spec;
    CacheKey key;
    JobState state = JobState::Queued;
    std::string stage = "queued";
    std::string error;
    bool cache_hit = false;
    std::optional<CacheEntry> result;
    std::atomic<bool> cancel_requested{false};
  };
  using JobPtr = std::shared_ptr<Job>;

  void accept_loop();
  void scheduler_loop();
  void handle_connection(int fd);
  /// Handle one request line; writes the response (or the watch stream) to
  /// `fd`. Returns false when the connection should close.
  bool handle_line(const std::string& line, int fd);
  void execute_job(Job& job);
  JobStatus status_of_locked(const Job& job) const;
  JobPtr find_job(std::uint64_t id);

  ServerOptions options_;
  ResultCache cache_;
  core::ThreadPool pool_;

  std::mutex mu_;
  std::condition_variable cv_;        // scheduler: work or stop
  std::condition_variable shutdown_cv_;
  std::map<std::uint64_t, JobPtr> jobs_;
  std::deque<JobPtr> pending_;
  std::uint64_t next_id_ = 1;
  bool paused_ = false;
  bool stop_ = false;
  bool shutdown_requested_ = false;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::thread scheduler_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace wheels::service

// The wheelsd wire protocol: newline-delimited JSON over a local socket.
//
// One request per line, one JSON object per request, parsed by the same
// strict line-tracking reader as synth profiles (core::json) under the
// "protocol" prefix — a truncated line, an unknown op, a version-skewed
// client each fail with an exact, tested message instead of a guess.
// Responses are single lines {"ok": true, ...} / {"ok": false, "error":
// "..."}, except `watch`, which streams one status line per poll until the
// job reaches a terminal state.
//
// Ops:
//   {"v": 1, "op": "submit", "job": {...}}   -> status (id, state, cache_hit)
//   {"v": 1, "op": "status", "id": N}        -> status
//   {"v": 1, "op": "watch",  "id": N}        -> status stream, ends terminal
//   {"v": 1, "op": "result", "id": N}        -> result (path, digest, files)
//   {"v": 1, "op": "cancel", "id": N}        -> status
//   {"v": 1, "op": "stats"}                  -> job/cache/counter stats
//   {"v": 1, "op": "shutdown"}               -> {"ok": true}
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ran/scheduler.hpp"
#include "replay/replay_campaign.hpp"

namespace wheels::service {

inline constexpr int kProtocolVersion = 1;

enum class JobKind { Campaign, Replay, Fleet, Synth };
std::string_view job_kind_name(JobKind k);
/// Exact reverse of job_kind_name. Returns nullopt on unknown text.
std::optional<JobKind> parse_job_kind(std::string_view text);

enum class JobState { Queued, Running, Done, Failed, Cancelled };
std::string_view job_state_name(JobState s);
std::optional<JobState> parse_job_state(std::string_view text);
/// Done, Failed and Cancelled are terminal: the state can no longer change.
bool is_terminal(JobState s);

/// One job request. A flat superset of the four job kinds' knobs; only the
/// fields relevant to `kind` are rendered by to_json() and accepted by the
/// parser (an off-kind key is a protocol error, not silently ignored).
struct JobSpec {
  JobKind kind = JobKind::Campaign;
  /// Seed of the job's own stochastic layers — part of the cache key.
  std::uint64_t seed = 1;

  // --- campaign ("scale", "apps", "stride", "static", "idle", "ues",
  //     "sched") ---
  double scale = 0.02;
  bool apps = true;
  int stride = 4;
  bool run_static = true;
  int idle = 0;
  int ues = 0;
  ran::SchedulerKind scheduler = ran::SchedulerKind::ProportionalFair;

  // --- replay ("bundle", "cc", "server", "tier", "interp") /
  //     fleet ("bundles", "grid", "ci", "interp") ---
  /// replay: exactly one source bundle dir; fleet: one or more fleet path
  /// specs (bundle dirs, trace CSVs, dirs of bundles — replay/fleet.hpp).
  std::vector<std::string> bundles;
  replay::ReplayKnobs knobs;
  replay::HoldPolicy policy = replay::HoldPolicy::Hold;
  /// Fleet knob-grid axes, apply_grid_axis grammar ("cc=cubic,bbr", ...).
  std::vector<std::string> grid;
  int ci_iterations = 300;

  // --- synth ("profile", "cycles", "spec") ---
  std::string profile;
  int cycles = 1;
  /// parse_scenario_spec grammar ("duration_s=60,load=1.5,...").
  std::string scenario;

  /// The "job" object of a submit request; parse_job_spec inverts it.
  std::string to_json() const;
};

/// Apply one wheelsctl-style "key=value" argument to `spec` ("seed=7",
/// "scale=0.05", "cc=bbr", ...); the key set equals the JSON key set above.
/// Throws std::runtime_error naming an unknown key or malformed value.
void apply_job_arg(JobSpec& spec, const std::string& arg);

struct Request {
  enum class Op { Submit, Status, Watch, Result, Cancel, Stats, Shutdown };
  Op op = Op::Stats;
  std::uint64_t id = 0;  // status/watch/result/cancel
  JobSpec job;           // submit
};

/// Parse one request line. Throws std::runtime_error
/// "protocol: line 1: ..." on anything malformed: bad JSON, a missing or
/// mistyped key, an unsupported version, an unknown op or job kind.
Request parse_request(const std::string& line);

/// What a finished job produced: a bundle directory inside the daemon's
/// cache. `content_digest` is the FNV-1a digest of the stored file set
/// (service::digest_directory), so byte-identity between two results is
/// checkable from the digests alone.
struct ResultInfo {
  std::string path;
  std::string content_digest;
  std::uint64_t bytes = 0;
  std::vector<std::string> files;  // sorted file names
};

/// One job's externally visible state; the payload of submit acks, status
/// polls and watch stream lines.
struct JobStatus {
  std::uint64_t id = 0;
  JobState state = JobState::Queued;
  /// Where a running job is: "queued", "cache lookup", "computing",
  /// "publishing".
  std::string stage;
  /// The result was served from the cache without recomputing.
  bool cache_hit = false;
  std::string error;  // Failed only
  std::optional<ResultInfo> result;
  /// Progress snapshot: the daemon's "service."-prefixed obs counters at
  /// response time (core::obs::MetricsRegistry).
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

struct StatsInfo {
  std::map<std::string, std::uint64_t> jobs_by_state;
  std::uint64_t cache_entries = 0;
  std::uint64_t cache_bytes = 0;
  std::uint64_t cache_max_bytes = 0;
  /// Index lines the cache rejected on load ("cache index: line N: ...").
  std::vector<std::string> cache_warnings;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

// --- Response rendering (server side) ---
std::string render_error(const std::string& message);
std::string render_status(const JobStatus& status);
std::string render_result(std::uint64_t id, bool cache_hit,
                          const ResultInfo& result);
std::string render_stats(const StatsInfo& stats);
std::string render_ok();

// --- Response decoding (client side). Each throws std::runtime_error with
// the server's verbatim error string on {"ok": false}. ---
JobStatus parse_status_response(const std::string& line);
ResultInfo parse_result_response(const std::string& line, bool* cache_hit);
StatsInfo parse_stats_response(const std::string& line);
void parse_ok_response(const std::string& line);

}  // namespace wheels::service

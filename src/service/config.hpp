// ServiceConfig: the wheelsd daemon's runtime knobs.
//
// Every knob follows the library's env convention (core::env_int): a
// malformed or out-of-range value warns on stderr and keeps the default —
// the daemon never starts with a silently misparsed limit.
#pragma once

#include <cstdint>
#include <string>

namespace wheels::service {

struct ServiceConfig {
  /// AF_UNIX socket the daemon listens on (WHEELS_SERVICE_SOCKET).
  std::string socket_path = "wheelsd.sock";
  /// Root of the result cache; created on start (WHEELS_SERVICE_CACHE_DIR).
  /// Holds one subdirectory per cached bundle plus the index.txt journal.
  std::string cache_dir = "wheelsd-cache";
  /// Max jobs admitted but not yet started (WHEELS_SERVICE_QUEUE, >= 1).
  /// Submissions past the bound are rejected, not blocked: the client gets
  /// "submit: queue full (depth N)" and decides whether to retry.
  int queue_depth = 64;
  /// Result-cache size bound in bytes (WHEELS_SERVICE_CACHE_MAX_BYTES,
  /// >= 0; 0 = unlimited). Least-recently-used bundles are evicted past it.
  std::uint64_t cache_max_bytes = 1ull << 30;
  /// Concurrent jobs, resolved like every other thread knob (0 = auto:
  /// WHEELS_THREADS, else hardware). Jobs themselves always run serially
  /// inside (the ReplayFleet discipline) — parallelism lives here.
  int threads = 0;
};

/// Read WHEELS_SERVICE_SOCKET, WHEELS_SERVICE_CACHE_DIR,
/// WHEELS_SERVICE_QUEUE and WHEELS_SERVICE_CACHE_MAX_BYTES over the
/// defaults above; malformed numeric values warn on stderr and fall back.
ServiceConfig service_config_from_env();

}  // namespace wheels::service

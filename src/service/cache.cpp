#include "service/cache.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/json.hpp"
#include "core/obs/manifest.hpp"
#include "core/obs/metrics.hpp"

namespace wheels::service {

namespace fs = std::filesystem;

namespace {

using core::json::Doc;
using core::json::Value;

std::uint64_t u64_field(const Doc& doc, const Value& object,
                        std::string_view key) {
  const Value& n =
      doc.as(doc.get(object, key), Value::Kind::Number,
             "an integer for \"" + std::string{key} + "\"");
  if (!(n.number >= 0.0) || n.number != std::floor(n.number)) {
    doc.fail(n.line,
             "\"" + std::string{key} + "\" must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(n.number);
}

std::string read_file_bytes(const fs::path& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw std::runtime_error{path.string() + ": cannot open"};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

std::vector<std::string> sorted_file_names(const fs::path& dir) {
  std::vector<std::string> names;
  for (const fs::directory_entry& entry : fs::directory_iterator{dir}) {
    if (entry.is_regular_file()) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::uint64_t directory_bytes(const fs::path& dir) {
  std::uint64_t total = 0;
  for (const std::string& name : sorted_file_names(dir)) {
    total += static_cast<std::uint64_t>(fs::file_size(dir / name));
  }
  return total;
}

std::string render_index_line(const CacheEntry& e) {
  std::string out = "{\"v\": 1, \"kind\": \"";
  out += job_kind_name(e.key.kind);
  out += "\", \"config\": \"" + core::json::escape(e.key.config_digest) +
         "\", \"seed\": " + std::to_string(e.key.seed) + ", \"input\": \"" +
         core::json::escape(e.key.input_digest) +
         "\", \"bytes\": " + std::to_string(e.bytes) + ", \"content\": \"" +
         core::json::escape(e.content_digest) + "\", \"dir\": \"" +
         core::json::escape(e.dir) + "\"}";
  return out;
}

CacheEntry parse_index_line(const std::string& line, int line_no) {
  const Doc doc{"cache index", line_no};
  const Value root = doc.parse(line);
  doc.as(root, Value::Kind::Object, "an index entry");
  const Value& ver =
      doc.as(doc.get(root, "v"), Value::Kind::Number, "a version number");
  if (ver.number != 1.0) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", ver.number);
    doc.fail(ver.line, std::string{"unsupported cache index version "} + buf +
                           " (this daemon writes 1)");
  }
  const Value& kindv =
      doc.as(doc.get(root, "kind"), Value::Kind::String, "a job kind string");
  auto kind = parse_job_kind(kindv.text);
  if (!kind) {
    doc.fail(kindv.line, "unknown job kind \"" + kindv.text + "\"");
  }
  CacheEntry e;
  e.key.kind = *kind;
  e.key.config_digest = doc.str(root, "config");
  e.key.seed = u64_field(doc, root, "seed");
  e.key.input_digest = doc.str(root, "input");
  e.bytes = u64_field(doc, root, "bytes");
  e.content_digest = doc.str(root, "content");
  e.dir = doc.str(root, "dir");
  return e;
}

}  // namespace

std::string digest_directory(const std::string& dir) {
  const fs::path root{dir};
  std::string listing;
  for (const std::string& name : sorted_file_names(root)) {
    listing += name + "=" +
               core::obs::hex64(core::obs::fnv1a64(
                   read_file_bytes(root / name))) +
               "\n";
  }
  return core::obs::hex64(core::obs::fnv1a64(listing));
}

ResultCache::ResultCache(std::string root, std::uint64_t max_bytes)
    : root_(std::move(root)), max_bytes_(max_bytes) {
  fs::create_directories(root_);
  std::lock_guard lk{mu_};
  load_index_locked();
}

std::vector<std::string> ResultCache::warnings() const {
  std::lock_guard lk{mu_};
  return warnings_;
}

std::size_t ResultCache::entries() const {
  std::lock_guard lk{mu_};
  return entries_.size();
}

std::uint64_t ResultCache::total_bytes() const {
  std::lock_guard lk{mu_};
  std::uint64_t total = 0;
  for (const CacheEntry& e : entries_) total += e.bytes;
  return total;
}

std::string ResultCache::index_path() const {
  return (fs::path{root_} / "index.txt").string();
}

std::string ResultCache::stage_dir(std::uint64_t job_id) const {
  return (fs::path{root_} / ("stage-" + std::to_string(job_id))).string();
}

std::string ResultCache::entry_path(const CacheEntry& entry) const {
  return fs::absolute(fs::path{root_} / entry.dir).string();
}

void ResultCache::load_index_locked() {
  static const core::obs::Counter rejected{"service.cache_rejected"};
  std::ifstream in{index_path()};
  bool dirty = false;
  if (in) {
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty()) continue;
      try {
        CacheEntry e = parse_index_line(line, line_no);
        if (!fs::is_directory(fs::path{root_} / e.dir)) {
          throw std::runtime_error{"cache entry " + e.dir +
                                   ": missing object directory"};
        }
        // A later line for the same key supersedes an earlier one.
        const auto dup = std::find_if(
            entries_.begin(), entries_.end(),
            [&](const CacheEntry& x) { return x.key == e.key; });
        if (dup != entries_.end()) {
          entries_.erase(dup);
          dirty = true;
        }
        entries_.push_back(std::move(e));
      } catch (const std::runtime_error& err) {
        warnings_.push_back(err.what());
        rejected.add();
        dirty = true;
      }
    }
  }
  // Orphans: object or stage directories no surviving entry references —
  // the residue of a daemon killed mid-compute or mid-append.
  std::vector<fs::path> orphans;
  for (const fs::directory_entry& entry : fs::directory_iterator{root_}) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    const bool referenced = std::any_of(
        entries_.begin(), entries_.end(),
        [&](const CacheEntry& e) { return e.dir == name; });
    if (!referenced) orphans.push_back(entry.path());
  }
  for (const fs::path& p : orphans) fs::remove_all(p);
  if (dirty) rewrite_index_locked();
}

void ResultCache::append_line_locked(const CacheEntry& entry) {
  std::ofstream out{index_path(), std::ios::app | std::ios::binary};
  if (!out) {
    throw std::runtime_error{index_path() + ": cannot open for append"};
  }
  out << render_index_line(entry) << "\n";
}

void ResultCache::rewrite_index_locked() {
  const std::string tmp = index_path() + ".tmp";
  {
    std::ofstream out{tmp, std::ios::trunc | std::ios::binary};
    if (!out) {
      throw std::runtime_error{tmp + ": cannot open for writing"};
    }
    for (const CacheEntry& e : entries_) {
      out << render_index_line(e) << "\n";
    }
  }
  fs::rename(tmp, index_path());
}

std::optional<CacheEntry> ResultCache::lookup(const CacheKey& key) {
  static const core::obs::Counter hits{"service.cache_hits"};
  static const core::obs::Counter misses{"service.cache_misses"};
  static const core::obs::Counter rejected{"service.cache_rejected"};
  std::lock_guard lk{mu_};
  const auto it =
      std::find_if(entries_.begin(), entries_.end(),
                   [&](const CacheEntry& e) { return e.key == key; });
  if (it == entries_.end()) {
    misses.add();
    return std::nullopt;
  }
  const fs::path path = fs::path{root_} / it->dir;
  std::string found;
  try {
    found = digest_directory(path.string());
  } catch (const std::runtime_error&) {
    // Missing or unreadable object directory; fall through as a mismatch.
  }
  if (found != it->content_digest) {
    warnings_.push_back("cache entry " + it->dir +
                        ": content digest mismatch (stored " +
                        it->content_digest + ", found " +
                        (found.empty() ? "nothing" : found) + ")");
    fs::remove_all(path);
    entries_.erase(it);
    rewrite_index_locked();
    rejected.add();
    misses.add();
    return std::nullopt;
  }
  CacheEntry e = *it;
  entries_.erase(it);
  entries_.push_back(e);  // most recently used
  hits.add();
  return e;
}

CacheEntry ResultCache::publish(const CacheKey& key,
                                const std::string& staged_dir) {
  CacheEntry e;
  e.key = key;
  e.dir = key.dir_name();
  e.content_digest = digest_directory(staged_dir);
  e.bytes = directory_bytes(staged_dir);
  std::lock_guard lk{mu_};
  const auto it =
      std::find_if(entries_.begin(), entries_.end(),
                   [&](const CacheEntry& x) { return x.key == key; });
  if (it != entries_.end()) {
    // A concurrent identical job already published; both outputs are
    // byte-identical by construction, keep the incumbent.
    fs::remove_all(staged_dir);
    CacheEntry existing = *it;
    entries_.erase(it);
    entries_.push_back(existing);
    return existing;
  }
  const fs::path target = fs::path{root_} / e.dir;
  fs::remove_all(target);
  fs::rename(staged_dir, target);
  entries_.push_back(e);
  append_line_locked(e);
  evict_to_cap_locked();
  return e;
}

void ResultCache::evict_to_cap_locked() {
  static const core::obs::Counter evictions{"service.cache_evictions"};
  if (max_bytes_ == 0) return;
  std::uint64_t total = 0;
  for (const CacheEntry& e : entries_) total += e.bytes;
  bool evicted = false;
  // Never evict the newest entry: a result must survive long enough for the
  // submitting client to read it, even when it alone exceeds the cap.
  while (total > max_bytes_ && entries_.size() > 1) {
    const CacheEntry& cold = entries_.front();
    total -= cold.bytes;
    fs::remove_all(fs::path{root_} / cold.dir);
    entries_.erase(entries_.begin());
    evictions.add();
    evicted = true;
  }
  if (evicted) rewrite_index_locked();
}

}  // namespace wheels::service

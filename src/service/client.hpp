// Client: the in-process wheelsd client library.
//
// One Client holds one connection to a running daemon and turns the wire
// protocol back into typed calls; it is what wheelsctl and the service test
// suite drive, so every protocol path the daemon serves is exercisable from
// a C++ test without shelling out. Server errors arrive as
// std::runtime_error carrying the daemon's exact error string — the
// malformed-protocol tests assert on them verbatim (raw_request() sends an
// arbitrary line for exactly that purpose).
//
// A Client is not thread-safe; concurrent test clients each open their own.
#pragma once

#include <cstdint>
#include <string>

#include "service/protocol.hpp"

namespace wheels::service {

class Client {
 public:
  /// Connect to the daemon at `socket_path`; throws when nothing listens.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Submit a job. The returned status is Done with cache_hit when the
  /// result was already cached, Queued otherwise.
  JobStatus submit(const JobSpec& spec);

  JobStatus status(std::uint64_t id);

  /// Block (server-side watch stream) until the job reaches a terminal
  /// state; returns the final status.
  JobStatus wait(std::uint64_t id);

  /// Request cancellation; returns the job's status at that moment (a
  /// running job cancels at its next checkpoint — wait() for the outcome).
  JobStatus cancel(std::uint64_t id);

  /// The finished job's result. `cache_hit` (optional) reports whether it
  /// was served from the cache.
  ResultInfo result(std::uint64_t id, bool* cache_hit = nullptr);

  /// Copy the result's bundle files into `out_dir` (created). The daemon is
  /// local by construction (AF_UNIX), so the files are read directly.
  ResultInfo fetch(std::uint64_t id, const std::string& out_dir);

  StatsInfo stats();

  /// Ask the daemon to shut down (it acknowledges, then exits its
  /// wait_for_shutdown()).
  void shutdown_server();

  /// Send one raw request line verbatim and return the raw response line —
  /// the protocol test hook.
  std::string raw_request(const std::string& line);

 private:
  std::string request(const std::string& line);
  std::string read_line();

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace wheels::service

#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>

namespace wheels::service {

namespace fs = std::filesystem;

namespace {

std::string submit_line(const JobSpec& spec) {
  return "{\"v\": " + std::to_string(kProtocolVersion) +
         ", \"op\": \"submit\", \"job\": " + spec.to_json() + "}";
}

std::string id_line(const char* op, std::uint64_t id) {
  return "{\"v\": " + std::to_string(kProtocolVersion) + ", \"op\": \"" + op +
         "\", \"id\": " + std::to_string(id) + "}";
}

std::string bare_line(const char* op) {
  return "{\"v\": " + std::to_string(kProtocolVersion) + ", \"op\": \"" + op +
         "\"}";
}

}  // namespace

Client::Client(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error{"wheelsctl: socket path too long: " +
                             socket_path};
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error{"wheelsctl: cannot create socket"};
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error{"wheelsctl: cannot connect to " + socket_path +
                             ": " + std::strerror(errno)};
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Client::read_line() {
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n <= 0) {
      throw std::runtime_error{"wheelsctl: connection closed by daemon"};
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string Client::request(const std::string& line) {
  std::string out = line;
  out += '\n';
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::write(fd_, out.data() + off, out.size() - off);
    if (n <= 0) {
      throw std::runtime_error{"wheelsctl: connection closed by daemon"};
    }
    off += static_cast<std::size_t>(n);
  }
  return read_line();
}

JobStatus Client::submit(const JobSpec& spec) {
  return parse_status_response(request(submit_line(spec)));
}

JobStatus Client::status(std::uint64_t id) {
  return parse_status_response(request(id_line("status", id)));
}

JobStatus Client::wait(std::uint64_t id) {
  std::string line = request(id_line("watch", id));
  for (;;) {
    const JobStatus status = parse_status_response(line);
    if (is_terminal(status.state)) return status;
    line = read_line();
  }
}

JobStatus Client::cancel(std::uint64_t id) {
  return parse_status_response(request(id_line("cancel", id)));
}

ResultInfo Client::result(std::uint64_t id, bool* cache_hit) {
  return parse_result_response(request(id_line("result", id)), cache_hit);
}

ResultInfo Client::fetch(std::uint64_t id, const std::string& out_dir) {
  const ResultInfo info = result(id);
  fs::create_directories(out_dir);
  for (const std::string& name : info.files) {
    fs::copy_file(fs::path{info.path} / name, fs::path{out_dir} / name,
                  fs::copy_options::overwrite_existing);
  }
  return info;
}

StatsInfo Client::stats() {
  return parse_stats_response(request(bare_line("stats")));
}

void Client::shutdown_server() {
  parse_ok_response(request(bare_line("shutdown")));
}

std::string Client::raw_request(const std::string& line) {
  return request(line);
}

}  // namespace wheels::service

#include "service/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "core/json.hpp"
#include "measure/enum_names.hpp"
#include "transport/tcp_flow.hpp"

namespace wheels::service {

namespace {

using core::json::Doc;
using core::json::Value;

std::string u64_str(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string int_str(int v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%d", v);
  return buf;
}

std::string double_str(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string quoted(std::string_view s) {
  return "\"" + core::json::escape(s) + "\"";
}

/// Decode a JSON number that must be an integer in [min, max].
long long int_field(const Doc& doc, const Value& v, std::string_view key,
                    long long min, long long max) {
  const Value& n = doc.as(v, Value::Kind::Number,
                          "an integer for \"" + std::string{key} + "\"");
  const double d = n.number;
  if (!(d >= static_cast<double>(min)) || d > static_cast<double>(max) ||
      d != std::floor(d)) {
    doc.fail(n.line, "\"" + std::string{key} + "\" must be an integer >= " +
                         std::to_string(min));
  }
  return static_cast<long long>(d);
}

std::uint64_t u64_field(const Doc& doc, const Value& v, std::string_view key) {
  const Value& n = doc.as(v, Value::Kind::Number,
                          "an integer for \"" + std::string{key} + "\"");
  if (!(n.number >= 0.0) || n.number != std::floor(n.number)) {
    doc.fail(n.line,
             "\"" + std::string{key} + "\" must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(n.number);
}

std::vector<std::string> string_list(const Doc& doc, const Value& v,
                                     std::string_view key) {
  const Value& arr = doc.as(
      v, Value::Kind::Array, "an array of strings for \"" + std::string{key} +
                                 "\"");
  std::vector<std::string> out;
  out.reserve(arr.items.size());
  for (const Value& item : arr.items) {
    out.push_back(
        doc.as(item, Value::Kind::String, "a string in \"" +
                                              std::string{key} + "\"")
            .text);
  }
  return out;
}

transport::CcAlgo parse_cc(const Doc& doc, const Value& v) {
  if (v.text == transport::cc_algo_name(transport::CcAlgo::Cubic)) {
    return transport::CcAlgo::Cubic;
  }
  if (v.text == transport::cc_algo_name(transport::CcAlgo::Bbr)) {
    return transport::CcAlgo::Bbr;
  }
  doc.fail(v.line, "unknown congestion control \"" + v.text +
                       "\" (expected cubic|bbr)");
}

replay::HoldPolicy parse_interp(const Doc& doc, const Value& v) {
  if (v.text == "hold") return replay::HoldPolicy::Hold;
  if (v.text == "linear") return replay::HoldPolicy::Interpolate;
  doc.fail(v.line,
           "unknown interpolation \"" + v.text + "\" (expected hold|linear)");
}

/// Decode one job-object key into `spec`; false = the key does not apply to
/// this job kind.
bool apply_job_key(const Doc& doc, JobSpec& spec, const std::string& key,
                   const Value& val) {
  const JobKind kind = spec.kind;
  if (key == "seed") {
    spec.seed = u64_field(doc, val, key);
    return true;
  }
  if (kind == JobKind::Campaign) {
    if (key == "scale") {
      const Value& n = doc.as(val, Value::Kind::Number, "a number for "
                                                        "\"scale\"");
      if (!(n.number > 0.0)) doc.fail(n.line, "\"scale\" must be > 0");
      spec.scale = n.number;
      return true;
    }
    if (key == "apps") {
      spec.apps = doc.as(val, Value::Kind::Bool, "a bool for \"apps\"").boolean;
      return true;
    }
    if (key == "stride") {
      spec.stride = static_cast<int>(int_field(doc, val, key, 1, 1 << 20));
      return true;
    }
    if (key == "static") {
      spec.run_static =
          doc.as(val, Value::Kind::Bool, "a bool for \"static\"").boolean;
      return true;
    }
    if (key == "idle") {
      spec.idle = static_cast<int>(int_field(doc, val, key, 0, 1 << 20));
      return true;
    }
    if (key == "ues") {
      spec.ues = static_cast<int>(int_field(doc, val, key, 0, 1 << 24));
      return true;
    }
    if (key == "sched") {
      const Value& s =
          doc.as(val, Value::Kind::String, "a string for \"sched\"");
      auto k = ran::parse_scheduler_kind(s.text);
      if (!k) {
        doc.fail(s.line,
                 "unknown scheduler \"" + s.text + "\" (expected pf|rr)");
      }
      spec.scheduler = *k;
      return true;
    }
    return false;
  }
  if (kind == JobKind::Replay || kind == JobKind::Fleet) {
    if (key == "interp") {
      spec.policy = parse_interp(
          doc, doc.as(val, Value::Kind::String, "a string for \"interp\""));
      return true;
    }
  }
  if (kind == JobKind::Replay) {
    if (key == "bundle") {
      spec.bundles = {
          doc.as(val, Value::Kind::String, "a string for \"bundle\"").text};
      return true;
    }
    if (key == "cc") {
      spec.knobs.cc = parse_cc(
          doc, doc.as(val, Value::Kind::String, "a string for \"cc\""));
      return true;
    }
    if (key == "server") {
      const Value& s =
          doc.as(val, Value::Kind::String, "a string for \"server\"");
      try {
        spec.knobs.server = measure::names::parse_server_kind(s.text);
      } catch (const std::runtime_error&) {
        doc.fail(s.line,
                 "unknown server \"" + s.text + "\" (expected cloud|edge)");
      }
      return true;
    }
    if (key == "tier") {
      const Value& s =
          doc.as(val, Value::Kind::String, "a string for \"tier\"");
      try {
        spec.knobs.max_tier = measure::names::parse_technology(s.text);
      } catch (const std::runtime_error& e) {
        doc.fail(s.line, e.what());
      }
      return true;
    }
    return false;
  }
  if (kind == JobKind::Fleet) {
    if (key == "bundles") {
      spec.bundles = string_list(doc, val, key);
      return true;
    }
    if (key == "grid") {
      spec.grid = string_list(doc, val, key);
      return true;
    }
    if (key == "ci") {
      spec.ci_iterations =
          static_cast<int>(int_field(doc, val, key, 1, 1 << 20));
      return true;
    }
    return false;
  }
  // Synth.
  if (key == "profile") {
    spec.profile =
        doc.as(val, Value::Kind::String, "a string for \"profile\"").text;
    return true;
  }
  if (key == "cycles") {
    spec.cycles = static_cast<int>(int_field(doc, val, key, 1, 1 << 20));
    return true;
  }
  if (key == "spec") {
    spec.scenario =
        doc.as(val, Value::Kind::String, "a string for \"spec\"").text;
    return true;
  }
  return false;
}

JobSpec parse_job_spec(const Doc& doc, const Value& v) {
  doc.as(v, Value::Kind::Object, "a job object");
  const Value& kindv =
      doc.as(doc.get(v, "kind"), Value::Kind::String, "a job kind string");
  auto kind = parse_job_kind(kindv.text);
  if (!kind) {
    doc.fail(kindv.line, "unknown job kind \"" + kindv.text + "\"");
  }
  JobSpec spec;
  spec.kind = *kind;
  for (const auto& [key, val] : v.keys) {
    if (key == "kind") continue;
    if (!apply_job_key(doc, spec, key, val)) {
      doc.fail(val.line, "key \"" + key + "\" does not apply to " +
                             std::string{job_kind_name(*kind)} + " jobs");
    }
  }
  if (spec.kind == JobKind::Replay && spec.bundles.empty()) {
    doc.fail(v.line, "replay job needs \"bundle\"");
  }
  if (spec.kind == JobKind::Fleet && spec.bundles.empty()) {
    doc.fail(v.line, "fleet job needs \"bundles\"");
  }
  if (spec.kind == JobKind::Synth && spec.profile.empty()) {
    doc.fail(v.line, "synth job needs \"profile\"");
  }
  return spec;
}

/// Shared response-decoding preamble: parse, check the object shape, and
/// rethrow a server-reported error verbatim.
Value parse_response(const Doc& doc, const std::string& line) {
  Value root = doc.parse(line);
  doc.as(root, Value::Kind::Object, "a response object");
  if (!doc.flag(root, "ok")) {
    throw std::runtime_error{doc.str(root, "error")};
  }
  return root;
}

std::vector<std::pair<std::string, std::uint64_t>> parse_counters(
    const Doc& doc, const Value& root) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  if (const Value* obs = doc.find(root, "obs")) {
    doc.as(*obs, Value::Kind::Object, "an object for \"obs\"");
    for (const auto& [name, val] : obs->keys) {
      out.emplace_back(name, u64_field(doc, val, name));
    }
  }
  return out;
}

std::string render_counters(
    const std::vector<std::pair<std::string, std::uint64_t>>& counters) {
  std::string out = "{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i) out += ", ";
    out += quoted(counters[i].first) + ": " + u64_str(counters[i].second);
  }
  return out + "}";
}

ResultInfo parse_result_fields(const Doc& doc, const Value& v) {
  ResultInfo info;
  info.path = doc.str(v, "path");
  info.content_digest = doc.str(v, "content_digest");
  info.bytes = u64_field(doc, doc.get(v, "bytes"), "bytes");
  if (const Value* files = doc.find(v, "files")) {
    info.files = string_list(doc, *files, "files");
  }
  return info;
}

std::string render_result_fields(const ResultInfo& r, bool with_files) {
  std::string out = "\"path\": " + quoted(r.path) +
                    ", \"content_digest\": " + quoted(r.content_digest) +
                    ", \"bytes\": " + u64_str(r.bytes);
  if (with_files) {
    out += ", \"files\": [";
    for (std::size_t i = 0; i < r.files.size(); ++i) {
      if (i) out += ", ";
      out += quoted(r.files[i]);
    }
    out += "]";
  }
  return out;
}

}  // namespace

std::string_view job_kind_name(JobKind k) {
  switch (k) {
    case JobKind::Campaign: return "campaign";
    case JobKind::Replay: return "replay";
    case JobKind::Fleet: return "fleet";
    case JobKind::Synth: return "synth";
  }
  return "campaign";
}

std::optional<JobKind> parse_job_kind(std::string_view text) {
  for (JobKind k : {JobKind::Campaign, JobKind::Replay, JobKind::Fleet,
                    JobKind::Synth}) {
    if (text == job_kind_name(k)) return k;
  }
  return std::nullopt;
}

std::string_view job_state_name(JobState s) {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
  }
  return "queued";
}

std::optional<JobState> parse_job_state(std::string_view text) {
  for (JobState s : {JobState::Queued, JobState::Running, JobState::Done,
                     JobState::Failed, JobState::Cancelled}) {
    if (text == job_state_name(s)) return s;
  }
  return std::nullopt;
}

bool is_terminal(JobState s) {
  return s == JobState::Done || s == JobState::Failed ||
         s == JobState::Cancelled;
}

std::string JobSpec::to_json() const {
  std::string out = "{\"kind\": " + quoted(job_kind_name(kind)) +
                    ", \"seed\": " + u64_str(seed);
  switch (kind) {
    case JobKind::Campaign:
      out += ", \"scale\": " + double_str(scale) +
             ", \"apps\": " + (apps ? "true" : "false") +
             ", \"stride\": " + int_str(stride) +
             ", \"static\": " + (run_static ? "true" : "false") +
             ", \"idle\": " + int_str(idle) + ", \"ues\": " + int_str(ues) +
             ", \"sched\": " + quoted(ran::scheduler_kind_name(scheduler));
      break;
    case JobKind::Replay:
      out += ", \"bundle\": " + quoted(bundles.empty() ? "" : bundles[0]);
      if (knobs.cc) {
        out += ", \"cc\": " + quoted(transport::cc_algo_name(*knobs.cc));
      }
      if (knobs.server) {
        out += ", \"server\": " + quoted(net::server_kind_name(*knobs.server));
      }
      if (knobs.max_tier) {
        out += ", \"tier\": " + quoted(radio::technology_name(*knobs.max_tier));
      }
      out += ", \"interp\": ";
      out += policy == replay::HoldPolicy::Hold ? "\"hold\"" : "\"linear\"";
      break;
    case JobKind::Fleet: {
      out += ", \"bundles\": [";
      for (std::size_t i = 0; i < bundles.size(); ++i) {
        if (i) out += ", ";
        out += quoted(bundles[i]);
      }
      out += "], \"grid\": [";
      for (std::size_t i = 0; i < grid.size(); ++i) {
        if (i) out += ", ";
        out += quoted(grid[i]);
      }
      out += "], \"ci\": " + int_str(ci_iterations) + ", \"interp\": ";
      out += policy == replay::HoldPolicy::Hold ? "\"hold\"" : "\"linear\"";
      break;
    }
    case JobKind::Synth:
      out += ", \"profile\": " + quoted(profile) +
             ", \"cycles\": " + int_str(cycles) +
             ", \"spec\": " + quoted(scenario);
      break;
  }
  return out + "}";
}

void apply_job_arg(JobSpec& spec, const std::string& arg) {
  const auto eq = arg.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::runtime_error{"job argument \"" + arg +
                             "\" is not key=value"};
  }
  const std::string key = arg.substr(0, eq);
  const std::string value = arg.substr(eq + 1);
  // Re-use the strict JSON field decoding: wrap the value in the right JSON
  // shape and run it through apply_job_key under a CLI-specific prefix.
  const Doc doc{"job argument \"" + arg + "\""};
  std::string json;
  if (key == "scale" || key == "seed" || key == "stride" || key == "idle" ||
      key == "ues" || key == "ci" || key == "cycles") {
    json = value;  // numeric
  } else if (key == "apps" || key == "static") {
    json = value == "1" ? "true" : value == "0" ? "false" : value;
  } else if (key == "bundle" && spec.kind == JobKind::Fleet) {
    // Fleet jobs take repeated bundle= args that accumulate.
    spec.bundles.push_back(value);
    return;
  } else if (key == "grid") {
    spec.grid.push_back(value);
    return;
  } else {
    json = quoted(value);
  }
  Value v;
  try {
    v = doc.parse(json);
  } catch (const std::runtime_error&) {
    throw std::runtime_error{"job argument \"" + arg +
                             "\": malformed value"};
  }
  if (!apply_job_key(doc, spec, key, v)) {
    throw std::runtime_error{"unknown job argument \"" + key + "\" for " +
                             std::string{job_kind_name(spec.kind)} + " jobs"};
  }
}

Request parse_request(const std::string& line) {
  const Doc doc{"protocol"};
  const Value root = doc.parse(line);
  doc.as(root, Value::Kind::Object, "a request object");
  const Value& ver =
      doc.as(doc.get(root, "v"), Value::Kind::Number, "a version number");
  if (ver.number != static_cast<double>(kProtocolVersion)) {
    doc.fail(ver.line, "unsupported protocol version " + double_str(ver.number) +
                           " (this daemon speaks " +
                           int_str(kProtocolVersion) + ")");
  }
  const Value& opv =
      doc.as(doc.get(root, "op"), Value::Kind::String, "an op string");
  Request req;
  bool takes_id = false;
  bool takes_job = false;
  if (opv.text == "submit") {
    req.op = Request::Op::Submit;
    takes_job = true;
  } else if (opv.text == "status") {
    req.op = Request::Op::Status;
    takes_id = true;
  } else if (opv.text == "watch") {
    req.op = Request::Op::Watch;
    takes_id = true;
  } else if (opv.text == "result") {
    req.op = Request::Op::Result;
    takes_id = true;
  } else if (opv.text == "cancel") {
    req.op = Request::Op::Cancel;
    takes_id = true;
  } else if (opv.text == "stats") {
    req.op = Request::Op::Stats;
  } else if (opv.text == "shutdown") {
    req.op = Request::Op::Shutdown;
  } else {
    doc.fail(opv.line, "unknown op \"" + opv.text + "\"");
  }
  for (const auto& [key, val] : root.keys) {
    if (key == "v" || key == "op") continue;
    if (key == "id" && takes_id) continue;
    if (key == "job" && takes_job) continue;
    doc.fail(val.line, "unknown key \"" + key + "\" for op \"" + opv.text +
                           "\"");
  }
  if (takes_id) req.id = u64_field(doc, doc.get(root, "id"), "id");
  if (takes_job) req.job = parse_job_spec(doc, doc.get(root, "job"));
  return req;
}

std::string render_error(const std::string& message) {
  return "{\"ok\": false, \"error\": " + quoted(message) + "}";
}

std::string render_status(const JobStatus& status) {
  std::string out = "{\"ok\": true, \"id\": " + u64_str(status.id) +
                    ", \"state\": " + quoted(job_state_name(status.state)) +
                    ", \"stage\": " + quoted(status.stage) +
                    ", \"cache_hit\": " +
                    (status.cache_hit ? "true" : "false") +
                    ", \"error\": " + quoted(status.error);
  if (status.result) {
    out += ", \"result\": {" + render_result_fields(*status.result, false) +
           "}";
  }
  return out + ", \"obs\": " + render_counters(status.counters) + "}";
}

std::string render_result(std::uint64_t id, bool cache_hit,
                          const ResultInfo& result) {
  return "{\"ok\": true, \"id\": " + u64_str(id) + ", \"cache_hit\": " +
         (cache_hit ? "true" : "false") + ", " +
         render_result_fields(result, true) + "}";
}

std::string render_stats(const StatsInfo& stats) {
  std::string out = "{\"ok\": true, \"jobs\": {";
  bool first = true;
  for (const auto& [state, count] : stats.jobs_by_state) {
    if (!first) out += ", ";
    first = false;
    out += quoted(state) + ": " + u64_str(count);
  }
  out += "}, \"cache\": {\"entries\": " + u64_str(stats.cache_entries) +
         ", \"bytes\": " + u64_str(stats.cache_bytes) +
         ", \"max_bytes\": " + u64_str(stats.cache_max_bytes) +
         ", \"warnings\": [";
  for (std::size_t i = 0; i < stats.cache_warnings.size(); ++i) {
    if (i) out += ", ";
    out += quoted(stats.cache_warnings[i]);
  }
  return out + "]}, \"obs\": " + render_counters(stats.counters) + "}";
}

std::string render_ok() { return "{\"ok\": true}"; }

JobStatus parse_status_response(const std::string& line) {
  const Doc doc{"response"};
  const Value root = parse_response(doc, line);
  JobStatus status;
  status.id = u64_field(doc, doc.get(root, "id"), "id");
  const Value& statev =
      doc.as(doc.get(root, "state"), Value::Kind::String, "a state string");
  auto state = parse_job_state(statev.text);
  if (!state) doc.fail(statev.line, "unknown state \"" + statev.text + "\"");
  status.state = *state;
  status.stage = doc.str(root, "stage");
  status.cache_hit = doc.flag(root, "cache_hit");
  status.error = doc.str(root, "error");
  if (const Value* result = doc.find(root, "result")) {
    doc.as(*result, Value::Kind::Object, "an object for \"result\"");
    status.result = parse_result_fields(doc, *result);
  }
  status.counters = parse_counters(doc, root);
  return status;
}

ResultInfo parse_result_response(const std::string& line, bool* cache_hit) {
  const Doc doc{"response"};
  const Value root = parse_response(doc, line);
  if (cache_hit) *cache_hit = doc.flag(root, "cache_hit");
  return parse_result_fields(doc, root);
}

StatsInfo parse_stats_response(const std::string& line) {
  const Doc doc{"response"};
  const Value root = parse_response(doc, line);
  StatsInfo stats;
  const Value& jobs =
      doc.as(doc.get(root, "jobs"), Value::Kind::Object, "a jobs object");
  for (const auto& [state, count] : jobs.keys) {
    stats.jobs_by_state[state] = u64_field(doc, count, state);
  }
  const Value& cache =
      doc.as(doc.get(root, "cache"), Value::Kind::Object, "a cache object");
  stats.cache_entries = u64_field(doc, doc.get(cache, "entries"), "entries");
  stats.cache_bytes = u64_field(doc, doc.get(cache, "bytes"), "bytes");
  stats.cache_max_bytes =
      u64_field(doc, doc.get(cache, "max_bytes"), "max_bytes");
  stats.cache_warnings = string_list(doc, doc.get(cache, "warnings"),
                                     "warnings");
  stats.counters = parse_counters(doc, root);
  return stats;
}

void parse_ok_response(const std::string& line) {
  const Doc doc{"response"};
  parse_response(doc, line);
}

}  // namespace wheels::service

// ResultCache: the digest-keyed, disk-backed bundle cache behind wheelsd.
//
// Layout under the cache root:
//   index.txt              one JSON line per entry (the journal)
//   <kind>-<cfg>-<seed>-<in>/   the published bundle (atomic rename target)
//   stage-<job id>/        in-flight output, renamed on publish
//
// Durability contract: entries are appended to index.txt as they publish,
// and the whole file is rewritten (tmp + rename) only on eviction or
// compaction. A daemon killed mid-append leaves a torn final line; a daemon
// killed mid-compute leaves an orphan stage-* directory. On restart the
// loader rejects every malformed line with an exact "cache index: line N:
// ..." error (core::json line numbering, N the file line), drops entries
// whose directory is missing or whose content digest no longer matches its
// files, removes orphans, and compacts — so a crash costs at most the torn
// entry's recomputation, never a wrong answer.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "service/jobs.hpp"

namespace wheels::service {

/// FNV-1a digest of a directory's regular files — name and bytes, in sorted
/// name order — rendered hex64. Two directories digest equal iff their file
/// sets are byte-identical.
std::string digest_directory(const std::string& dir);

struct CacheEntry {
  CacheKey key;
  std::uint64_t bytes = 0;      // sum of file sizes
  std::string content_digest;   // digest_directory at publish time
  std::string dir;              // directory name under the cache root
};

class ResultCache {
 public:
  /// Opens (creating root if needed), loads and verifies the index, removes
  /// orphan directories, and compacts when anything was rejected.
  /// `max_bytes` bounds the summed bundle sizes (0 = unlimited); least
  /// recently used entries are evicted past it.
  ResultCache(std::string root, std::uint64_t max_bytes);

  const std::string& root() const { return root_; }
  std::uint64_t max_bytes() const { return max_bytes_; }

  /// Index lines and entries rejected on load, verbatim ("cache index: line
  /// N: ...", "cache entry <dir>: ...").
  std::vector<std::string> warnings() const;

  std::size_t entries() const;
  std::uint64_t total_bytes() const;

  /// The entry under `key`, with its content re-verified against the files
  /// on disk. A digest mismatch (torn or tampered object) drops the entry
  /// and counts as a miss. Bumps service.cache_hits / service.cache_misses.
  std::optional<CacheEntry> lookup(const CacheKey& key);

  /// Where job `job_id` should write its output before publishing.
  std::string stage_dir(std::uint64_t job_id) const;

  /// Atomically move `staged_dir` into the cache under `key`, journal the
  /// entry, and evict past max_bytes. When `key` is already published (a
  /// concurrent identical job won the race) the staged copy is discarded
  /// and the existing entry returned.
  CacheEntry publish(const CacheKey& key, const std::string& staged_dir);

  /// Absolute path of an entry's bundle directory.
  std::string entry_path(const CacheEntry& entry) const;

 private:
  void load_index_locked();
  void append_line_locked(const CacheEntry& entry);
  void rewrite_index_locked();
  void evict_to_cap_locked();
  std::string index_path() const;

  std::string root_;
  std::uint64_t max_bytes_ = 0;
  mutable std::mutex mu_;
  std::vector<CacheEntry> entries_;  // LRU order: front = coldest
  std::vector<std::string> warnings_;
};

}  // namespace wheels::service

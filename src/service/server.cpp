#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "core/obs/metrics.hpp"

namespace wheels::service {

namespace fs = std::filesystem;

namespace {

const core::obs::Counter& submitted_counter() {
  static const core::obs::Counter c{"service.jobs_submitted"};
  return c;
}
const core::obs::Counter& completed_counter() {
  static const core::obs::Counter c{"service.jobs_completed"};
  return c;
}
const core::obs::Counter& failed_counter() {
  static const core::obs::Counter c{"service.jobs_failed"};
  return c;
}
const core::obs::Counter& cancelled_counter() {
  static const core::obs::Counter c{"service.jobs_cancelled"};
  return c;
}

/// The daemon's own counters, for the progress snapshot carried by every
/// status line.
std::vector<std::pair<std::string, std::uint64_t>> service_counters() {
  const auto snapshot = core::obs::MetricsRegistry::global().snapshot();
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& [name, value] : snapshot.counters) {
    if (name.rfind("service.", 0) == 0) out.emplace_back(name, value);
  }
  return out;
}

/// Write all of `line` plus the newline; false on a closed/failed peer.
bool write_line(int fd, const std::string& line) {
  std::string out = line;
  out += '\n';
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::write(fd, out.data() + off, out.size() - off);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

ResultInfo result_info(const ResultCache& cache, const CacheEntry& entry) {
  ResultInfo info;
  info.path = cache.entry_path(entry);
  info.content_digest = entry.content_digest;
  info.bytes = entry.bytes;
  for (const fs::directory_entry& file : fs::directory_iterator{info.path}) {
    if (file.is_regular_file()) {
      info.files.push_back(file.path().filename().string());
    }
  }
  std::sort(info.files.begin(), info.files.end());
  return info;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.config.cache_dir, options_.config.cache_max_bytes),
      pool_(core::resolve_threads(options_.config.threads) - 1),
      paused_(options_.start_paused) {}

Server::~Server() { stop(); }

void Server::start() {
  const std::string& path = options_.config.socket_path;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error{"wheelsd: socket path too long: " + path};
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error{"wheelsd: cannot create socket"};
  }
  ::unlink(path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error{"wheelsd: cannot bind " + path + ": " +
                             std::strerror(errno)};
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error{"wheelsd: cannot listen on " + path};
  }
  accept_thread_ = std::thread{[this] { accept_loop(); }};
  scheduler_thread_ = std::thread{[this] { scheduler_loop(); }};
}

void Server::stop() {
  {
    std::lock_guard lk{mu_};
    if (stop_) return;
    stop_ = true;
    cv_.notify_all();
    shutdown_cv_.notify_all();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (scheduler_thread_.joinable()) scheduler_thread_.join();
  std::vector<std::thread> conns;
  {
    std::lock_guard lk{conn_mu_};
    conns.swap(conn_threads_);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(options_.config.socket_path.c_str());
}

void Server::resume() {
  std::lock_guard lk{mu_};
  paused_ = false;
  cv_.notify_all();
}

void Server::wait_for_shutdown() {
  std::unique_lock lk{mu_};
  shutdown_cv_.wait(lk, [this] { return shutdown_requested_ || stop_; });
}

bool Server::wait_for_shutdown_for(int timeout_ms) {
  std::unique_lock lk{mu_};
  return shutdown_cv_.wait_for(
      lk, std::chrono::milliseconds{timeout_ms},
      [this] { return shutdown_requested_ || stop_; });
}

void Server::accept_loop() {
  for (;;) {
    {
      std::lock_guard lk{mu_};
      if (stop_) return;
    }
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard lk{conn_mu_};
    conn_threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void Server::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    {
      std::lock_guard lk{mu_};
      if (stop_) break;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0) break;
    if (ready == 0) continue;
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    bool close_conn = false;
    for (std::size_t nl; (nl = buffer.find('\n')) != std::string::npos;) {
      const std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (line.empty()) continue;
      if (!handle_line(line, fd)) {
        close_conn = true;
        break;
      }
    }
    if (close_conn) break;
  }
  ::close(fd);
}

Server::JobPtr Server::find_job(std::uint64_t id) {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

JobStatus Server::status_of_locked(const Job& job) const {
  JobStatus status;
  status.id = job.id;
  status.state = job.state;
  status.stage = job.stage;
  status.cache_hit = job.cache_hit;
  status.error = job.error;
  if (job.result) {
    ResultInfo info;
    info.path = cache_.entry_path(*job.result);
    info.content_digest = job.result->content_digest;
    info.bytes = job.result->bytes;
    status.result = std::move(info);
  }
  return status;
}

bool Server::handle_line(const std::string& line, int fd) {
  Request req;
  try {
    req = parse_request(line);
  } catch (const std::runtime_error& e) {
    return write_line(fd, render_error(e.what()));
  }
  switch (req.op) {
    case Request::Op::Submit: {
      submitted_counter().add();
      CacheKey key;
      try {
        key = cache_key(req.job);
      } catch (const std::runtime_error& e) {
        return write_line(fd, render_error(e.what()));
      }
      JobPtr job;
      {
        std::lock_guard lk{mu_};
        if (auto entry = cache_.lookup(key)) {
          job = std::make_shared<Job>();
          job->id = next_id_++;
          job->spec = req.job;
          job->key = key;
          job->state = JobState::Done;
          job->stage = "done";
          job->cache_hit = true;
          job->result = std::move(entry);
          jobs_[job->id] = job;
          completed_counter().add();
        } else if (pending_.size() >=
                   static_cast<std::size_t>(options_.config.queue_depth)) {
          return write_line(
              fd, render_error("submit: queue full (depth " +
                               std::to_string(options_.config.queue_depth) +
                               ")"));
        } else {
          job = std::make_shared<Job>();
          job->id = next_id_++;
          job->spec = req.job;
          job->key = key;
          jobs_[job->id] = job;
          pending_.push_back(job);
          cv_.notify_all();
        }
      }
      JobStatus status;
      {
        std::lock_guard lk{mu_};
        status = status_of_locked(*job);
      }
      status.counters = service_counters();
      return write_line(fd, render_status(status));
    }
    case Request::Op::Status:
    case Request::Op::Watch: {
      const char* op = req.op == Request::Op::Status ? "status" : "watch";
      for (;;) {
        JobStatus status;
        {
          std::lock_guard lk{mu_};
          const JobPtr job = find_job(req.id);
          if (!job) {
            return write_line(
                fd, render_error(std::string{op} + ": no such job " +
                                 std::to_string(req.id)));
          }
          status = status_of_locked(*job);
        }
        status.counters = service_counters();
        if (!write_line(fd, render_status(status))) return false;
        if (req.op == Request::Op::Status || is_terminal(status.state)) {
          return true;
        }
        {
          std::lock_guard lk{mu_};
          if (stop_) return false;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds{20});
      }
    }
    case Request::Op::Result: {
      std::optional<CacheEntry> entry;
      bool cache_hit = false;
      {
        std::lock_guard lk{mu_};
        const JobPtr job = find_job(req.id);
        if (!job) {
          return write_line(fd, render_error("result: no such job " +
                                             std::to_string(req.id)));
        }
        if (job->state != JobState::Done || !job->result) {
          return write_line(
              fd, render_error("result: job " + std::to_string(req.id) +
                               " is " +
                               std::string{job_state_name(job->state)}));
        }
        entry = job->result;
        cache_hit = job->cache_hit;
      }
      return write_line(
          fd, render_result(req.id, cache_hit, result_info(cache_, *entry)));
    }
    case Request::Op::Cancel: {
      JobStatus status;
      {
        std::lock_guard lk{mu_};
        const JobPtr job = find_job(req.id);
        if (!job) {
          return write_line(fd, render_error("cancel: no such job " +
                                             std::to_string(req.id)));
        }
        if (job->state == JobState::Queued) {
          pending_.erase(
              std::remove(pending_.begin(), pending_.end(), job),
              pending_.end());
          job->state = JobState::Cancelled;
          job->stage = "cancelled";
          cancelled_counter().add();
        } else if (job->state == JobState::Running) {
          job->cancel_requested.store(true, std::memory_order_relaxed);
        }
        status = status_of_locked(*job);
      }
      status.counters = service_counters();
      return write_line(fd, render_status(status));
    }
    case Request::Op::Stats: {
      StatsInfo stats;
      {
        std::lock_guard lk{mu_};
        for (const auto& [id, job] : jobs_) {
          ++stats.jobs_by_state[std::string{job_state_name(job->state)}];
        }
      }
      stats.cache_entries = cache_.entries();
      stats.cache_bytes = cache_.total_bytes();
      stats.cache_max_bytes = cache_.max_bytes();
      stats.cache_warnings = cache_.warnings();
      stats.counters = service_counters();
      return write_line(fd, render_stats(stats));
    }
    case Request::Op::Shutdown: {
      {
        std::lock_guard lk{mu_};
        shutdown_requested_ = true;
        shutdown_cv_.notify_all();
      }
      return write_line(fd, render_ok());
    }
  }
  return false;
}

void Server::scheduler_loop() {
  for (;;) {
    std::vector<JobPtr> wave;
    {
      std::unique_lock lk{mu_};
      cv_.wait(lk, [this] {
        return stop_ || (!paused_ && !pending_.empty());
      });
      if (stop_) return;
      wave.assign(pending_.begin(), pending_.end());
      pending_.clear();
      for (const JobPtr& job : wave) {
        job->state = JobState::Running;
        job->stage = "cache lookup";
      }
    }
    std::vector<core::ThreadPool::Task> tasks;
    tasks.reserve(wave.size());
    for (const JobPtr& job : wave) {
      tasks.push_back([this, job] { execute_job(*job); });
    }
    // The pool runs one batch at a time and this loop is its only caller;
    // jobs themselves never touch the pool (they run with threads = 1).
    pool_.run_batch(std::move(tasks));
  }
}

void Server::execute_job(Job& job) {
  // A task that throws would terminate the process (core::ThreadPool
  // contract) — every failure must land in job.error instead.
  const auto finish = [this, &job](JobState state) {
    std::lock_guard lk{mu_};
    job.state = state;
    job.stage = job_state_name(state);
  };
  if (job.cancel_requested.load(std::memory_order_relaxed)) {
    finish(JobState::Cancelled);
    cancelled_counter().add();
    return;
  }
  // Re-check the cache: an identical job may have published since this one
  // was admitted.
  if (auto entry = cache_.lookup(job.key)) {
    {
      std::lock_guard lk{mu_};
      job.cache_hit = true;
      job.result = std::move(entry);
    }
    finish(JobState::Done);
    completed_counter().add();
    return;
  }
  {
    std::lock_guard lk{mu_};
    job.stage = "computing";
  }
  const std::string staged = cache_.stage_dir(job.id);
  try {
    std::error_code ec;
    fs::remove_all(staged, ec);
    run_job(job.spec, staged);
  } catch (const std::exception& e) {
    std::error_code ec;
    fs::remove_all(staged, ec);
    {
      std::lock_guard lk{mu_};
      job.error = e.what();
    }
    finish(JobState::Failed);
    failed_counter().add();
    return;
  }
  if (job.cancel_requested.load(std::memory_order_relaxed)) {
    std::error_code ec;
    fs::remove_all(staged, ec);
    finish(JobState::Cancelled);
    cancelled_counter().add();
    return;
  }
  {
    std::lock_guard lk{mu_};
    job.stage = "publishing";
  }
  CacheEntry entry;
  try {
    entry = cache_.publish(job.key, staged);
  } catch (const std::exception& e) {
    {
      std::lock_guard lk{mu_};
      job.error = e.what();
    }
    finish(JobState::Failed);
    failed_counter().add();
    return;
  }
  {
    std::lock_guard lk{mu_};
    job.result = entry;
  }
  finish(JobState::Done);
  completed_counter().add();
}

}  // namespace wheels::service

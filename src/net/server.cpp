#include "net/server.hpp"

#include <cmath>

namespace wheels::net {

std::string_view server_kind_name(ServerKind k) {
  return k == ServerKind::Cloud ? "cloud" : "edge";
}

ServerFleet ServerFleet::standard(const geo::Route& route) {
  ServerFleet fleet;
  // EC2 us-west (N. California) and us-east (Ohio).
  fleet.servers_.push_back(
      {"ec2-california", ServerKind::Cloud, {37.35, -121.95}, 0});
  fleet.servers_.push_back(
      {"ec2-ohio", ServerKind::Cloud, {40.10, -83.20}, 0});
  // Wavelength edges in the five flagged cities.
  const auto& wps = route.waypoints();
  for (std::size_t i = 0; i < wps.size(); ++i) {
    if (wps[i].has_edge_server) {
      fleet.servers_.push_back(
          {"wavelength-" + wps[i].name, ServerKind::Edge, wps[i].pos, i});
    }
  }
  return fleet;
}

const Server& ServerFleet::cloud_for(geo::Timezone tz) const {
  const bool west =
      tz == geo::Timezone::Pacific || tz == geo::Timezone::Mountain;
  for (const Server& s : servers_) {
    if (s.kind != ServerKind::Cloud) continue;
    const bool is_west = s.pos.lon_deg < -100.0;
    if (is_west == west) return s;
  }
  return servers_.front();
}

const Server* ServerFleet::edge_near(const geo::Route& route,
                                     const geo::RoutePoint& where) const {
  for (const Server& s : servers_) {
    if (s.kind != ServerKind::Edge) continue;
    const Km d = std::abs(route.city_km(s.city_index) - where.km);
    if (d <= kEdgeMetroRadiusKm) return &s;
  }
  return nullptr;
}

const Server& ServerFleet::select(radio::Carrier carrier,
                                  const geo::Route& route,
                                  const geo::RoutePoint& where) const {
  if (carrier == radio::Carrier::Verizon) {
    if (const Server* edge = edge_near(route, where)) return *edge;
  }
  return cloud_for(where.tz);
}

}  // namespace wheels::net

#include "net/latency.hpp"

#include <algorithm>
#include <cmath>

namespace wheels::net {

Millis access_rtt(radio::Technology tech) {
  using radio::Technology;
  switch (tech) {
    case Technology::Lte: return 36.0;
    case Technology::LteA: return 30.0;
    case Technology::NrLow: return 32.0;  // often NSA-anchored on LTE
    case Technology::NrMid: return 17.0;
    case Technology::NrMmWave: return 7.0;
  }
  return 36.0;
}

Millis core_rtt(radio::Carrier carrier) {
  switch (carrier) {
    case radio::Carrier::Verizon: return 8.0;
    case radio::Carrier::TMobile: return 20.0;
    case radio::Carrier::Att: return 22.0;
  }
  return 5.0;
}

Millis wired_rtt(const Server& server, const geo::LatLon& ue_pos) {
  if (server.kind == ServerKind::Edge) return 2.0;
  // Fibre propagation + routing overhead, plus a fixed peering cost.
  return 4.0 + 0.018 * geo::haversine_km(server.pos, ue_pos);
}

Millis base_rtt(radio::Carrier carrier, radio::Technology tech,
                const Server& server, const geo::LatLon& ue_pos) {
  return access_rtt(tech) + core_rtt(carrier) + wired_rtt(server, ue_pos);
}

RttProcess::RttProcess(radio::Carrier carrier, Rng rng)
    : carrier_(carrier), rng_(std::move(rng)) {}

Millis RttProcess::sample(radio::Technology tech, const Server& server,
                          const geo::LatLon& ue_pos, MilesPerHour speed,
                          Millis queue_delay, Millis interruption) {
  const Millis base = base_rtt(carrier_, tech, server, ue_pos);

  // Multiplicative jitter (scheduling, retransmissions), heavier while
  // moving. AT&T's RTT is speed-insensitive in the paper (Fig. 8) — its 4G
  // latency is uniformly high instead.
  const double speed_term =
      carrier_ == radio::Carrier::Att ? 0.0 : 0.0025 * speed;
  const double jitter = rng_.lognormal(0.0, 0.18 + speed_term);

  Millis rtt = base * jitter + queue_delay + interruption;

  // Rare radio stalls: RLF recovery / RRC reconfiguration, up to seconds.
  const double stall_p = 0.0025 + 0.00006 * speed;
  if (rng_.bernoulli(stall_p)) {
    rtt += rng_.lognormal(std::log(400.0), 0.9);
  }
  return std::min(rtt, 3'000.0);  // ICMP timeout in the paper's tooling
}

}  // namespace wheels::net

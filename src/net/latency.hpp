// End-to-end latency model.
//
// RTT = radio access latency (technology-dependent) + carrier core-network
// overhead + wired path to the server (distance-based for clouds, ~2 ms for
// in-network Wavelength edges) + stochastic jitter with a heavy tail that
// grows while driving (the paper sees driving RTT medians of 60-80 ms and
// maxima of 2-3 s, Fig. 3b).
#pragma once

#include "core/rng.hpp"
#include "core/units.hpp"
#include "geo/latlon.hpp"
#include "net/server.hpp"
#include "radio/technology.hpp"

namespace wheels::net {

/// Radio access round-trip latency for a technology (ms).
Millis access_rtt(radio::Technology tech);

/// Extra core-network RTT per carrier; the paper's Verizon RTTs run ~15 ms
/// lower than T-Mobile's/AT&T's at the same server distance (Fig. 9).
Millis core_rtt(radio::Carrier carrier);

/// Wired RTT from the UE position to the server.
Millis wired_rtt(const Server& server, const geo::LatLon& ue_pos);

/// Base (uncongested, jitter-free) RTT.
Millis base_rtt(radio::Carrier carrier, radio::Technology tech,
                const Server& server, const geo::LatLon& ue_pos);

/// Stateful RTT sampler: adds jitter, speed-dependent inflation and rare
/// multi-second stalls (radio-link-failure recoveries) on top of base RTT
/// plus any queueing delay supplied by the transport layer.
class RttProcess {
 public:
  RttProcess(radio::Carrier carrier, Rng rng);

  /// One RTT observation (e.g. one ICMP echo). `queue_delay` is the
  /// transport-layer bufferbloat component (0 for unloaded ping tests);
  /// `interruption` is any handover pause overlapping the probe.
  Millis sample(radio::Technology tech, const Server& server,
                const geo::LatLon& ue_pos, MilesPerHour speed,
                Millis queue_delay, Millis interruption);

 private:
  radio::Carrier carrier_;
  Rng rng_;
};

}  // namespace wheels::net

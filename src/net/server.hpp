// Cloud and edge server fleet.
//
// Mirrors the paper's deployment (§3): two AWS EC2 sites — California (used
// for tests in the Pacific/Mountain timezones) and Ohio (Central/Eastern) —
// plus five Amazon Wavelength edge servers in Los Angeles, Las Vegas, Denver,
// Chicago and Boston. Wavelength lives inside Verizon's network, so only the
// Verizon phone uses edge servers, and only while near one of those cities.
#pragma once

#include <string>
#include <vector>

#include "geo/latlon.hpp"
#include "geo/route.hpp"
#include "geo/timezone.hpp"
#include "radio/technology.hpp"

namespace wheels::net {

enum class ServerKind { Cloud, Edge };

std::string_view server_kind_name(ServerKind k);

struct Server {
  std::string name;
  ServerKind kind = ServerKind::Cloud;
  geo::LatLon pos;
  /// For edge servers: index of the host city in the route's waypoints.
  std::size_t city_index = 0;
};

class ServerFleet {
 public:
  /// The paper's fleet for the given route.
  static ServerFleet standard(const geo::Route& route);

  /// Cloud site used for a test in this timezone (CA for Pacific/Mountain,
  /// OH for Central/Eastern).
  const Server& cloud_for(geo::Timezone tz) const;

  /// Edge server reachable from this point (within the host city's metro
  /// area, measured in map km), or nullptr.
  const Server* edge_near(const geo::Route& route,
                          const geo::RoutePoint& where) const;

  /// Server the given carrier's phone would use at this point: Verizon gets
  /// the edge when one is near, everyone falls back to the timezone's cloud.
  const Server& select(radio::Carrier carrier, const geo::Route& route,
                       const geo::RoutePoint& where) const;

  const std::vector<Server>& servers() const { return servers_; }

  /// Metro radius within which an edge server is reachable (map km).
  static constexpr Km kEdgeMetroRadiusKm = 30.0;

 private:
  std::vector<Server> servers_;
};

}  // namespace wheels::net

#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ingest/adapters.hpp"
#include "ingest/ingest.hpp"
#include "measure/validate.hpp"
#include "replay/fleet.hpp"
#include "replay/replay_campaign.hpp"

namespace wheels::ingest {
namespace {

const std::string kFixtures = WHEELS_INGEST_FIXTURE_DIR;

std::string fixture(const std::string& name) { return kFixtures + "/" + name; }

std::string error_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return {};
}

// --- registry & sniffing ----------------------------------------------------

TEST(IngestTest, BuiltinRegistryListsEveryFormatInOrder) {
  const std::vector<const TraceAdapter*> adapters =
      builtin_registry().adapters();
  const std::vector<std::string> expected{"minimal", "mahimahi", "errant",
                                          "monroe", "paper"};
  ASSERT_EQ(adapters.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(adapters[i]->name(), expected[i]);
    EXPECT_FALSE(adapters[i]->description().empty());
  }
  EXPECT_NE(builtin_registry().find("mahimahi"), nullptr);
  EXPECT_EQ(builtin_registry().find("pcap"), nullptr);
}

TEST(IngestTest, ResolveByNameAndErrorListsKnownFormats) {
  const SniffInput none{};
  EXPECT_EQ(builtin_registry().resolve("errant", none).name(), "errant");
  const std::string err = error_of(
      [&] { (void)builtin_registry().resolve("pcap", none); });
  EXPECT_NE(err.find("pcap"), std::string::npos);
  EXPECT_NE(err.find("mahimahi"), std::string::npos);  // lists the formats
}

TEST(IngestTest, SniffingIdentifiesEveryFixture) {
  const std::vector<std::pair<std::string, std::string>> cases{
      {"minimal.csv", "minimal"},     {"mahimahi.down", "mahimahi"},
      {"mahimahi.up", "mahimahi"},    {"errant.csv", "errant"},
      {"monroe.csv", "monroe"},       {"paper/kpis.csv", "paper"},
  };
  for (const auto& [file, format] : cases) {
    const SniffInput input = sniff_file(fixture(file));
    EXPECT_EQ(builtin_registry().sniff_or_throw(input).name(), format)
        << file;
    EXPECT_EQ(builtin_registry().resolve("auto", input).name(), format)
        << file;
  }
}

TEST(IngestTest, UnsniffableInputThrows) {
  SniffInput input;
  input.path = "notes.txt";
  input.head = {"hello world"};
  const std::string err =
      error_of([&] { (void)builtin_registry().sniff_or_throw(input); });
  EXPECT_NE(err.find("minimal"), std::string::npos);  // names the candidates
}

TEST(IngestTest, DuplicateAdapterNameRejected) {
  AdapterRegistry registry;
  registry.add(make_minimal_adapter());
  EXPECT_THROW(registry.add(make_minimal_adapter()), std::runtime_error);
}

// --- ColumnMap parsing ------------------------------------------------------

TEST(IngestTest, ErrantColumnMapConvertsUnitsAndRatNames) {
  IngestOptions options;
  const CanonicalTrace trace =
      load_trace(builtin_registry(), "errant", fixture("errant.csv"), options);
  ASSERT_EQ(trace.points.size(), 3u);
  EXPECT_DOUBLE_EQ(trace.points[0].cap_dl_mbps, 50.0);  // 50000 kbps
  EXPECT_DOUBLE_EQ(trace.points[1].cap_dl_mbps, 60.0);
  EXPECT_DOUBLE_EQ(trace.points[2].cap_dl_mbps, 200.0);
  EXPECT_DOUBLE_EQ(trace.points[0].cap_ul_mbps, 10.0);
  EXPECT_DOUBLE_EQ(trace.points[2].rtt_ms, 25.0);
  EXPECT_EQ(trace.points[0].tech, radio::Technology::Lte);    // "4G"
  EXPECT_EQ(trace.points[1].tech, radio::Technology::LteA);   // "4G+"
  EXPECT_EQ(trace.points[2].tech, radio::Technology::NrMid);  // "5G"
}

TEST(IngestTest, MonroeColumnMapRebasesUnixSecondsToMillis) {
  IngestOptions options;
  const CanonicalTrace trace =
      load_trace(builtin_registry(), "auto", fixture("monroe.csv"), options);
  ASSERT_EQ(trace.points.size(), 3u);
  EXPECT_EQ(trace.points[0].t, 0);  // 1717000000.25 s re-based
  EXPECT_EQ(trace.points[1].t, 1000);
  EXPECT_EQ(trace.points[2].t, 2000);
  EXPECT_DOUBLE_EQ(trace.points[0].cap_dl_mbps, 40.0);  // 40e6 bps
  EXPECT_DOUBLE_EQ(trace.points[2].cap_ul_mbps, 16.0);
  EXPECT_EQ(trace.points[1].tech, radio::Technology::NrLow);  // "NR-NSA"
  EXPECT_EQ(trace.points[2].tech, radio::Technology::NrMid);  // "NR-SA"
}

TEST(IngestTest, ColumnMapFillCoversMissingColumn) {
  ColumnMap map;
  map.time_column = "t";
  map.rules = {{"dl", Field::CapDl, 1.0, {}},
               {"ul", Field::CapUl, 1.0, 2.5},
               {"rtt", Field::Rtt, 1.0, 40.0}};
  std::istringstream is{"t,dl\n0,10\n500,20\n"};
  const CanonicalTrace trace =
      parse_with_map(is, map, radio::Technology::Lte);
  ASSERT_EQ(trace.points.size(), 2u);
  EXPECT_DOUBLE_EQ(trace.points[0].cap_ul_mbps, 2.5);
  EXPECT_DOUBLE_EQ(trace.points[1].rtt_ms, 40.0);
  EXPECT_EQ(trace.points[0].tech, radio::Technology::Lte);

  // Without the fill, the same missing column is a header-line error.
  map.rules[1].fill.reset();
  std::istringstream again{"t,dl\n0,10\n"};
  const std::string err = error_of(
      [&] { (void)parse_with_map(again, map, radio::Technology::Lte); });
  EXPECT_NE(err.find("missing column 'ul'"), std::string::npos);
  EXPECT_NE(err.find("line 1"), std::string::npos);
}

TEST(IngestTest, ColumnMapRejectsUnmappedColumnsUnlessAllowed) {
  ColumnMap map;
  map.time_column = "t";
  map.rules = {{"dl", Field::CapDl, 1.0, {}},
               {"ul", Field::CapUl, 1.0, 0.0},
               {"rtt", Field::Rtt, 1.0, 40.0}};
  std::istringstream is{"t,dl,surprise\n0,10,1\n"};
  const std::string err = error_of(
      [&] { (void)parse_with_map(is, map, radio::Technology::Lte); });
  EXPECT_NE(err.find("unmapped column 'surprise'"), std::string::npos);

  map.allow_extra_columns = true;
  std::istringstream ok{"t,dl,surprise\n0,10,1\n"};
  EXPECT_EQ(parse_with_map(ok, map, radio::Technology::Lte).points.size(), 1u);
}

// --- per-format round trips -------------------------------------------------

TEST(IngestTest, MinimalFixtureRoundTripsThroughBundle) {
  IngestOptions options;
  const replay::ReplayBundle bundle =
      ingest_file("auto", fixture("minimal.csv"), options);
  EXPECT_TRUE(measure::validate(bundle.db).empty());
  ASSERT_EQ(bundle.db.tests.size(), 3u);  // DL, UL, RTT over one segment
  ASSERT_EQ(bundle.db.kpis.size(), 8u);   // 4 ticks x 2 directions
  ASSERT_EQ(bundle.db.rtts.size(), 4u);
  // Hand-computed capacities straight from the fixture.
  const std::vector<double> dl{40, 60, 80, 100};
  for (std::size_t i = 0; i < dl.size(); ++i) {
    const measure::KpiRecord& k = bundle.db.kpis[2 * i];
    EXPECT_EQ(k.t, static_cast<SimMillis>(i) * 500);
    EXPECT_DOUBLE_EQ(k.throughput, dl[i]);
    EXPECT_EQ(k.direction, radio::Direction::Downlink);
  }
  EXPECT_DOUBLE_EQ(bundle.db.rtts[0].rtt, 45.0);
  EXPECT_DOUBLE_EQ(bundle.db.rtts[3].rtt, 35.0);

  const measure::ConsolidatedDb replayed =
      replay::ReplayCampaign{bundle, {}}.run();
  EXPECT_FALSE(replayed.kpis.empty());
}

TEST(IngestTest, MahimahiWindowsDeliveryOpportunitiesIntoMbps) {
  IngestOptions options;
  options.mahimahi_uplink_path = fixture("mahimahi.up");
  const CanonicalTrace trace = load_trace(
      builtin_registry(), "auto", fixture("mahimahi.down"), options);
  // Windows of 500 ms at 12000 bits per opportunity: count * 0.024 Mbps.
  ASSERT_EQ(trace.points.size(), 3u);
  EXPECT_DOUBLE_EQ(trace.points[0].cap_dl_mbps, 10 * 0.024);
  EXPECT_DOUBLE_EQ(trace.points[1].cap_dl_mbps, 0.0);  // recorded outage
  EXPECT_DOUBLE_EQ(trace.points[2].cap_dl_mbps, 5 * 0.024);
  // Merged uplink trace: 2 opportunities, then 1, then held.
  EXPECT_DOUBLE_EQ(trace.points[0].cap_ul_mbps, 2 * 0.024);
  EXPECT_DOUBLE_EQ(trace.points[1].cap_ul_mbps, 1 * 0.024);
  EXPECT_DOUBLE_EQ(trace.points[2].cap_ul_mbps, 1 * 0.024);
  EXPECT_DOUBLE_EQ(trace.points[0].rtt_ms, 50.0);  // the default fill

  const replay::ReplayBundle bundle =
      ingest_file("mahimahi", fixture("mahimahi.down"), options);
  EXPECT_TRUE(measure::validate(bundle.db).empty());
  const measure::ConsolidatedDb replayed =
      replay::ReplayCampaign{bundle, {}}.run();
  EXPECT_FALSE(replayed.kpis.empty());
}

TEST(IngestTest, ErrantFixtureReplaysEndToEnd) {
  IngestOptions options;
  options.carrier = radio::Carrier::TMobile;
  const replay::ReplayBundle bundle =
      ingest_file("auto", fixture("errant.csv"), options);
  EXPECT_TRUE(measure::validate(bundle.db).empty());
  EXPECT_EQ(bundle.db.tests[0].carrier, radio::Carrier::TMobile);
  const measure::ConsolidatedDb replayed =
      replay::ReplayCampaign{bundle, {}}.run();
  EXPECT_FALSE(replayed.rtts.empty());
}

TEST(IngestTest, MonroeFixtureResamplesOneSecondCadenceOntoTicks) {
  IngestOptions options;  // hold fill, 500 ms tick
  const replay::ReplayBundle bundle =
      ingest_file("auto", fixture("monroe.csv"), options);
  EXPECT_TRUE(measure::validate(bundle.db).empty());
  // 1 s source cadence over [0, 2000] resampled at 500 ms: 5 ticks, each
  // holding the last source sample.
  ASSERT_EQ(bundle.db.rtts.size(), 5u);
  const std::vector<double> dl{40, 40, 60, 60, 80};
  for (std::size_t i = 0; i < dl.size(); ++i) {
    EXPECT_DOUBLE_EQ(bundle.db.kpis[2 * i].throughput, dl[i]) << i;
  }
}

TEST(IngestTest, PaperKpisFixturePivotsMeansAndPicksUpSiblingRtts) {
  IngestOptions options;  // carrier Verizon
  const CanonicalTrace trace = load_trace(
      builtin_registry(), "auto", fixture("paper/kpis.csv"), options);
  ASSERT_EQ(trace.points.size(), 2u);
  EXPECT_DOUBLE_EQ(trace.points[0].cap_dl_mbps, 50.0);  // mean(40, 60)
  EXPECT_DOUBLE_EQ(trace.points[0].cap_ul_mbps, 10.0);
  EXPECT_DOUBLE_EQ(trace.points[1].cap_dl_mbps, 80.0);
  EXPECT_DOUBLE_EQ(trace.points[1].cap_ul_mbps, 20.0);
  // rtts.csv sibling overlay, Verizon rows only.
  EXPECT_DOUBLE_EQ(trace.points[0].rtt_ms, 45.0);
  EXPECT_DOUBLE_EQ(trace.points[1].rtt_ms, 30.0);
  EXPECT_EQ(trace.points[1].tech, radio::Technology::NrMid);

  const replay::ReplayBundle bundle =
      ingest_file("paper", fixture("paper/kpis.csv"), options);
  EXPECT_TRUE(measure::validate(bundle.db).empty());
}

TEST(IngestTest, MalformedFixturesThrowWithLineNumbers) {
  const IngestOptions options;
  const auto ingest_err = [&](const std::string& format,
                              const std::string& file) {
    return error_of([&] { (void)ingest_file(format, fixture(file), options); });
  };
  EXPECT_NE(ingest_err("minimal", "minimal_bad.csv")
                .find("line 4: duplicate time 500"),
            std::string::npos);
  EXPECT_NE(ingest_err("mahimahi", "mahimahi_bad.down")
                .find("line 2: time going backwards"),
            std::string::npos);
  EXPECT_NE(ingest_err("errant", "errant_bad.csv").find("line 3"),
            std::string::npos);
  EXPECT_NE(ingest_err("monroe", "monroe_bad.csv")
                .find("line 3: negative capacity"),
            std::string::npos);
  EXPECT_FALSE(ingest_err("paper", "paper_kpis_bad.csv").empty());
  // Every message names the offending file.
  EXPECT_NE(ingest_err("minimal", "minimal_bad.csv").find("minimal_bad.csv"),
            std::string::npos);
}

// --- resampling -------------------------------------------------------------

CanonicalTrace irregular_trace() {
  // Deterministically irregular spacing, including a > max_gap pause.
  CanonicalTrace trace;
  SimMillis t = 0;
  for (int i = 0; i < 40; ++i) {
    TracePoint p;
    p.t = t;
    p.cap_dl_mbps = 10.0 + (i * 13) % 50;
    p.cap_ul_mbps = 1.0 + (i * 7) % 11;
    p.rtt_ms = 20.0 + (i * 3) % 40;
    trace.points.push_back(p);
    t += 100 + 700 * ((i * 5) % 4);  // 100..2200 ms steps
    if (i == 19) t += 60'000;        // one long pause
  }
  return trace;
}

TEST(IngestTest, ResamplePreservesOrderingAndDuration) {
  const CanonicalTrace trace = irregular_trace();
  for (const GapFill fill : {GapFill::Hold, GapFill::Interpolate}) {
    ResampleSpec spec;
    spec.fill = fill;
    const std::vector<TraceSegment> segments = resample(trace, spec);
    ASSERT_EQ(segments.size(), 2u);  // split at the long pause

    SimMillis prev = -1;
    SimMillis covered = 0;
    for (const TraceSegment& seg : segments) {
      ASSERT_FALSE(seg.ticks.empty());
      for (std::size_t i = 0; i < seg.ticks.size(); ++i) {
        EXPECT_GT(seg.ticks[i].t, prev);  // strictly increasing throughout
        prev = seg.ticks[i].t;
        if (i > 0) {
          EXPECT_EQ(seg.ticks[i].t - seg.ticks[i - 1].t, spec.tick_ms);
        }
      }
      covered += seg.ticks.back().t - seg.ticks.front().t;
    }
    // Total tick-grid span matches the source span minus the split gap,
    // up to one tick of truncation per segment.
    SimMillis source_span = 0;
    for (std::size_t i = 1; i < trace.points.size(); ++i) {
      const SimMillis step = trace.points[i].t - trace.points[i - 1].t;
      if (step <= spec.max_gap_ms) source_span += step;
    }
    EXPECT_LE(covered, source_span);
    EXPECT_GT(covered, source_span - 2 * spec.tick_ms);
    // Ticks never leave the recorded window.
    EXPECT_GE(segments.front().ticks.front().t, trace.points.front().t);
    EXPECT_LE(segments.back().ticks.back().t, trace.points.back().t);
  }
}

TEST(IngestTest, HoldAndInterpolateFillBetweenSamples) {
  CanonicalTrace trace;
  for (const auto& [t, dl] : std::vector<std::pair<SimMillis, double>>{
           {0, 10.0}, {1000, 20.0}}) {
    TracePoint p;
    p.t = t;
    p.cap_dl_mbps = dl;
    p.cap_ul_mbps = dl / 10.0;
    p.rtt_ms = 100.0 - dl;
    trace.points.push_back(p);
  }
  ResampleSpec spec;  // tick 500
  const std::vector<TraceSegment> hold = resample(trace, spec);
  ASSERT_EQ(hold.size(), 1u);
  ASSERT_EQ(hold[0].ticks.size(), 3u);
  EXPECT_DOUBLE_EQ(hold[0].ticks[1].cap_dl_mbps, 10.0);

  spec.fill = GapFill::Interpolate;
  const std::vector<TraceSegment> lerp = resample(trace, spec);
  ASSERT_EQ(lerp[0].ticks.size(), 3u);
  EXPECT_DOUBLE_EQ(lerp[0].ticks[1].cap_dl_mbps, 15.0);
  EXPECT_DOUBLE_EQ(lerp[0].ticks[1].cap_ul_mbps, 1.5);
  EXPECT_DOUBLE_EQ(lerp[0].ticks[1].rtt_ms, 85.0);
  EXPECT_DOUBLE_EQ(lerp[0].ticks[2].cap_dl_mbps, 20.0);
}

TEST(IngestTest, MaxGapZeroKeepsOneSegment) {
  const CanonicalTrace trace = irregular_trace();
  ResampleSpec spec;
  spec.max_gap_ms = 0;
  const std::vector<TraceSegment> segments = resample(trace, spec);
  EXPECT_EQ(segments.size(), 1u);

  spec.max_gap_ms = 250;  // < tick_ms
  EXPECT_THROW((void)resample(trace, spec), std::invalid_argument);
}

// --- multi-carrier joins ----------------------------------------------------

TEST(IngestTest, JoinSpecParsesCanonicalCarrierNames) {
  const std::vector<JoinEntry> entries =
      parse_join_spec("T-Mobile=b.csv,Verizon=a.csv");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].carrier, radio::Carrier::TMobile);
  EXPECT_EQ(entries[0].path, "b.csv");
  EXPECT_EQ(entries[1].carrier, radio::Carrier::Verizon);
  EXPECT_THROW((void)parse_join_spec("Verizon"), std::runtime_error);
  EXPECT_THROW((void)parse_join_spec("=a.csv"), std::runtime_error);
  EXPECT_THROW((void)parse_join_spec("Sprint=a.csv"), std::runtime_error);
}

TEST(IngestTest, JoinAlignsClocksAndOrdersCarriersCanonically) {
  const IngestOptions options;
  const JoinOptions join;  // align, no trim
  const std::vector<JoinEntry> entries{
      {radio::Carrier::TMobile, fixture("monroe.csv")},
      {radio::Carrier::Verizon, fixture("minimal.csv")},
  };
  const replay::ReplayBundle bundle =
      ingest_join("auto", entries, options, join);
  EXPECT_TRUE(measure::validate(bundle.db).empty());
  // Canonical carrier order regardless of argument order, ids from 1.
  ASSERT_EQ(bundle.db.tests.size(), 6u);
  EXPECT_EQ(bundle.db.tests[0].id, 1u);
  EXPECT_EQ(bundle.db.tests[0].carrier, radio::Carrier::Verizon);
  EXPECT_EQ(bundle.db.tests[3].carrier, radio::Carrier::TMobile);
  // Clock alignment: both carriers' tests start on the shared t = 0.
  EXPECT_EQ(bundle.db.tests[0].start, 0);
  EXPECT_EQ(bundle.db.tests[3].start, 0);
  EXPECT_GT(bundle.db.experiment_runtime[0], 0.0);
}

TEST(IngestTest, JoinTrimsToTheOverlapWindow) {
  const auto flat_trace = [](SimMillis from, SimMillis to) {
    CanonicalTrace t;
    for (SimMillis ts = from; ts <= to; ts += 500) {
      TracePoint p;
      p.t = ts;
      p.cap_dl_mbps = 10.0;
      p.cap_ul_mbps = 1.0;
      p.rtt_ms = 40.0;
      t.points.push_back(p);
    }
    return t;
  };
  std::vector<JoinInput> inputs(2);
  inputs[0] = {radio::Carrier::Verizon, "a", flat_trace(0, 5000)};
  inputs[1] = {radio::Carrier::TMobile, "b", flat_trace(2000, 8000)};
  JoinOptions join;
  join.align_clocks = false;
  join.trim_to_overlap = true;
  const replay::ReplayBundle bundle =
      join_traces(inputs, join, ResampleSpec{});
  // Overlap is [2000, 5000]: both carriers' windows agree after trimming.
  for (const measure::TestRecord& t : bundle.db.tests) {
    EXPECT_EQ(t.start, 2000);
    EXPECT_EQ(t.end, 5500);
  }

  // Disjoint traces cannot be trimmed onto a shared window.
  inputs[1].trace = flat_trace(9000, 12000);
  EXPECT_THROW((void)join_traces(inputs, join, ResampleSpec{}),
               std::runtime_error);
}

TEST(IngestTest, JoinRejectsDuplicateCarriers) {
  const IngestOptions options;
  const std::vector<JoinEntry> entries{
      {radio::Carrier::Verizon, fixture("minimal.csv")},
      {radio::Carrier::Verizon, fixture("errant.csv")},
  };
  const std::string err = error_of(
      [&] { (void)ingest_join("auto", entries, options, JoinOptions{}); });
  EXPECT_NE(err.find("appears twice"), std::string::npos);
  EXPECT_NE(err.find("Verizon"), std::string::npos);
}

TEST(IngestTest, JoinedBundleReplaysByteIdenticalAcrossFleetThreads) {
  const IngestOptions options;
  const std::vector<JoinEntry> entries{
      {radio::Carrier::Verizon, fixture("minimal.csv")},
      {radio::Carrier::TMobile, fixture("monroe.csv")},
      {radio::Carrier::Att, fixture("errant.csv")},
  };
  const replay::ReplayBundle bundle =
      ingest_join("auto", entries, options, JoinOptions{});
  EXPECT_TRUE(measure::validate(bundle.db).empty());

  const auto csv_at = [&](int threads) {
    replay::FleetConfig cfg;
    cfg.threads = threads;
    cfg.ci_iterations = 40;
    replay::apply_grid_axis(cfg.grid, "server=cloud,edge");
    const replay::FleetResult result =
        replay::ReplayFleet{cfg}.run({{"joined", &bundle}});
    std::ostringstream os;
    replay::write_fleet_csv(os, result);
    return os.str();
  };
  const std::string one = csv_at(1);
  EXPECT_EQ(one, csv_at(4));
  EXPECT_NE(one.find("T-Mobile"), std::string::npos);
}

// --- segmented ingest -------------------------------------------------------

TEST(IngestTest, GapSplitTracesBecomeMultiCycleBundles) {
  CanonicalTrace trace;
  for (const SimMillis t : {0, 500, 1000, 30'000, 30'500}) {
    TracePoint p;
    p.t = t;
    p.cap_dl_mbps = 20.0;
    p.cap_ul_mbps = 2.0;
    p.rtt_ms = 50.0;
    trace.points.push_back(p);
  }
  const replay::ReplayBundle bundle =
      build_bundle(trace, radio::Carrier::Att, ResampleSpec{});
  EXPECT_TRUE(measure::validate(bundle.db).empty());
  // Two segments -> two test triples, cycle tagging the segment index.
  ASSERT_EQ(bundle.db.tests.size(), 6u);
  EXPECT_EQ(bundle.db.tests[0].cycle, 0);
  EXPECT_EQ(bundle.db.tests[3].cycle, 1);
  EXPECT_EQ(bundle.db.tests[3].start, 30'000);
}

}  // namespace
}  // namespace wheels::ingest

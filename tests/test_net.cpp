#include <gtest/gtest.h>

#include "geo/route.hpp"
#include "net/latency.hpp"
#include "net/server.hpp"

namespace wheels::net {
namespace {

using radio::Carrier;
using radio::Technology;

class FleetTest : public ::testing::Test {
 protected:
  FleetTest()
      : route_(geo::Route::cross_country()),
        fleet_(ServerFleet::standard(route_)) {}
  geo::Route route_;
  ServerFleet fleet_;
};

TEST_F(FleetTest, TwoCloudsFiveEdges) {
  int clouds = 0, edges = 0;
  for (const auto& s : fleet_.servers()) {
    clouds += s.kind == ServerKind::Cloud;
    edges += s.kind == ServerKind::Edge;
  }
  EXPECT_EQ(clouds, 2);
  EXPECT_EQ(edges, 5);
}

TEST_F(FleetTest, CloudSelectionByTimezone) {
  EXPECT_EQ(fleet_.cloud_for(geo::Timezone::Pacific).name, "ec2-california");
  EXPECT_EQ(fleet_.cloud_for(geo::Timezone::Mountain).name, "ec2-california");
  EXPECT_EQ(fleet_.cloud_for(geo::Timezone::Central).name, "ec2-ohio");
  EXPECT_EQ(fleet_.cloud_for(geo::Timezone::Eastern).name, "ec2-ohio");
}

TEST_F(FleetTest, EdgeNearHostCityOnly) {
  // Chicago hosts an edge.
  const auto chicago = route_.at(route_.city_km(5));
  EXPECT_NE(fleet_.edge_near(route_, chicago), nullptr);
  // Omaha does not.
  const auto omaha = route_.at(route_.city_km(4));
  EXPECT_EQ(fleet_.edge_near(route_, omaha), nullptr);
  // Deep in Nebraska neither.
  const auto nowhere = route_.at((route_.city_km(3) + route_.city_km(4)) / 2);
  EXPECT_EQ(fleet_.edge_near(route_, nowhere), nullptr);
}

TEST_F(FleetTest, OnlyVerizonUsesEdge) {
  const auto denver = route_.at(route_.city_km(3));
  EXPECT_EQ(fleet_.select(Carrier::Verizon, route_, denver).kind,
            ServerKind::Edge);
  EXPECT_EQ(fleet_.select(Carrier::TMobile, route_, denver).kind,
            ServerKind::Cloud);
  EXPECT_EQ(fleet_.select(Carrier::Att, route_, denver).kind,
            ServerKind::Cloud);
}

TEST_F(FleetTest, VerizonFallsBackToCloudBetweenEdgeCities) {
  const auto nowhere = route_.at((route_.city_km(3) + route_.city_km(4)) / 2);
  EXPECT_EQ(fleet_.select(Carrier::Verizon, route_, nowhere).kind,
            ServerKind::Cloud);
}

TEST_F(FleetTest, AccessRttOrdering) {
  EXPECT_LT(access_rtt(Technology::NrMmWave), access_rtt(Technology::NrMid));
  EXPECT_LT(access_rtt(Technology::NrMid), access_rtt(Technology::LteA));
  EXPECT_LT(access_rtt(Technology::LteA), access_rtt(Technology::Lte));
  // 5G-low is NSA-anchored: latency closer to LTE than to midband (Fig. 4:
  // LTE-A achieves lower RTT than 5G-low for Verizon & T-Mobile).
  EXPECT_GT(access_rtt(Technology::NrLow), access_rtt(Technology::LteA));
}

TEST_F(FleetTest, VerizonCoreFasterThanOthers) {
  EXPECT_LT(core_rtt(Carrier::Verizon), core_rtt(Carrier::TMobile) - 5.0);
  EXPECT_LT(core_rtt(Carrier::Verizon), core_rtt(Carrier::Att) - 5.0);
}

TEST_F(FleetTest, EdgeWiredRttFarBelowCloud) {
  const auto denver_pt = route_.at(route_.city_km(3));
  const Server* edge = fleet_.edge_near(route_, denver_pt);
  ASSERT_NE(edge, nullptr);
  const Server& cloud = fleet_.cloud_for(geo::Timezone::Mountain);
  EXPECT_LT(wired_rtt(*edge, denver_pt.pos) * 5.0,
            wired_rtt(cloud, denver_pt.pos));
}

TEST_F(FleetTest, BaseRttEdgeMmWaveUnder20ms) {
  // Fig. 4: Verizon mmWave + edge keeps RTT ~18 ms median.
  const auto la = route_.at(0.0);
  const Server* edge = fleet_.edge_near(route_, la);
  ASSERT_NE(edge, nullptr);
  const Millis rtt =
      base_rtt(Carrier::Verizon, Technology::NrMmWave, *edge, la.pos);
  EXPECT_LT(rtt, 20.0);
  EXPECT_GT(rtt, 5.0);
}

TEST_F(FleetTest, RttProcessMedianNearBase) {
  const auto mid_nebraska =
      route_.at((route_.city_km(3) + route_.city_km(4)) / 2);
  const Server& cloud = fleet_.cloud_for(mid_nebraska.tz);
  RttProcess proc{Carrier::TMobile, Rng{31}};
  std::vector<double> xs;
  for (int i = 0; i < 8001; ++i) {
    xs.push_back(proc.sample(Technology::NrMid, cloud, mid_nebraska.pos, 65.0,
                             0.0, 0.0));
  }
  std::nth_element(xs.begin(), xs.begin() + 4000, xs.end());
  const Millis base =
      base_rtt(Carrier::TMobile, Technology::NrMid, cloud, mid_nebraska.pos);
  EXPECT_NEAR(xs[4000], base, base * 0.35);
}

TEST_F(FleetTest, RttProcessHasHeavyTailAndCap) {
  const auto pt = route_.at(1000.0);
  const Server& cloud = fleet_.cloud_for(pt.tz);
  RttProcess proc{Carrier::Verizon, Rng{32}};
  double max_rtt = 0.0;
  for (int i = 0; i < 30'000; ++i) {
    const Millis r =
        proc.sample(Technology::LteA, cloud, pt.pos, 70.0, 0.0, 0.0);
    max_rtt = std::max(max_rtt, r);
    EXPECT_LE(r, 3'000.0);
    EXPECT_GT(r, 0.0);
  }
  EXPECT_GT(max_rtt, 400.0);  // stalls exist
}

TEST_F(FleetTest, QueueDelayAndInterruptionAdd) {
  const auto pt = route_.at(1000.0);
  const Server& cloud = fleet_.cloud_for(pt.tz);
  RttProcess a{Carrier::Verizon, Rng{33}};
  RttProcess b{Carrier::Verizon, Rng{33}};
  const Millis r1 = a.sample(Technology::LteA, cloud, pt.pos, 0.0, 0.0, 0.0);
  const Millis r2 =
      b.sample(Technology::LteA, cloud, pt.pos, 0.0, 150.0, 60.0);
  EXPECT_NEAR(r2 - r1, 210.0, 1e-6);
}

}  // namespace
}  // namespace wheels::net

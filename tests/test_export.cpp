// The emulation export subsystem: backend golden fixtures, the Mahimahi
// quantization round trip, link_ticks recording/serialization, and the
// exact-replay path it enables.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "export/exporter.hpp"
#include "export/roundtrip.hpp"
#include "export/timeline.hpp"
#include "measure/csv_export.hpp"
#include "measure/validate.hpp"
#include "replay/ingest.hpp"
#include "replay/replay_campaign.hpp"

namespace wheels::emu {
namespace {

namespace fs = std::filesystem;

campaign::CampaignConfig app_config() {
  campaign::CampaignConfig cfg;
  cfg.scale = 0.02;
  cfg.seed = 99;
  return cfg;
}

/// One small campaign with app sessions, shared by every test here.
const measure::ConsolidatedDb& app_db() {
  static const measure::ConsolidatedDb db =
      campaign::DriveCampaign{app_config()}.run();
  return db;
}

EmuTimeline flat_timeline(std::size_t n, double cap_dl, double cap_ul) {
  EmuTimeline tl;
  tl.ticks.resize(n);
  for (EmuTick& t : tl.ticks) {
    t.cap_dl_mbps = cap_dl;
    t.cap_ul_mbps = cap_ul;
  }
  return tl;
}

std::string artifact(const EmuExporter& e, const EmuTimeline& tl,
                     const std::string& suffix) {
  for (const ExportArtifact& a : e.render(tl)) {
    if (a.suffix == suffix) return a.content;
  }
  ADD_FAILURE() << "no artifact with suffix " << suffix;
  return {};
}

// --- Backend golden micro-fixtures ----------------------------------------

TEST(ExportMahimahi, GoldenMicroFixture) {
  // 0.048 Mbps at a 500 ms tick is exactly two 1500 B opportunities,
  // 0.024 Mbps exactly one; opportunities spread evenly over the tick.
  EmuTimeline tl = flat_timeline(2, 0.0, 0.0);
  tl.ticks[0].cap_dl_mbps = 0.048;
  tl.ticks[0].cap_ul_mbps = 0.024;
  tl.ticks[1].cap_dl_mbps = 0.024;
  const auto exporter = make_mahimahi_exporter();
  EXPECT_EQ(artifact(*exporter, tl, ".down"), "0\n250\n500\n");
  EXPECT_EQ(artifact(*exporter, tl, ".up"), "0\n");
}

TEST(ExportMahimahi, InteriorZeroTickRoundTripsExactly) {
  EmuTimeline tl = flat_timeline(3, 0.048, 0.0);
  tl.ticks[1].cap_dl_mbps = 0.0;  // a recorded outage, not a gap
  const RoundTripReport report = verify_mahimahi_roundtrip(tl);
  EXPECT_EQ(report.ticks_checked, 3u);
  EXPECT_EQ(report.max_error_mbps, 0.0);
}

TEST(ExportMahimahi, LeadingAndTrailingZerosStayZero) {
  EmuTimeline tl = flat_timeline(3, 0.0, 0.0);
  tl.ticks[1].cap_dl_mbps = 0.048;
  const RoundTripReport report = verify_mahimahi_roundtrip(tl);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.max_error_mbps, 0.0);
}

TEST(ExportMahimahi, AllZeroTimelineExportsEmptyAndVerifies) {
  const EmuTimeline tl = flat_timeline(4, 0.0, 0.0);
  const auto exporter = make_mahimahi_exporter();
  EXPECT_EQ(artifact(*exporter, tl, ".down"), "");
  EXPECT_TRUE(verify_mahimahi_roundtrip(tl).ok());
}

TEST(ExportNetem, GoldenMicroFixture) {
  EmuTimeline tl = flat_timeline(1, 10.0, 2.0);
  tl.ticks[0].rtt_ms = 50.0;
  tl.ticks[0].loss = 0.5;
  const auto exporter = make_netem_exporter();
  EXPECT_EQ(artifact(*exporter, tl, ".sh"),
            "#!/bin/sh\n"
            "# wheels link schedule: 1 ticks x 500 ms\n"
            "# usage: schedule.sh [iface]   (default eth0; needs root)\n"
            "set -e\n"
            "IFACE=\"${1:-eth0}\"\n"
            "tc qdisc del dev \"$IFACE\" root 2>/dev/null || true\n"
            "tc qdisc add dev \"$IFACE\" root handle 1: htb default 10\n"
            "# tick 0: ul 2.000 Mbps\n"
            "tc class add dev \"$IFACE\" parent 1: classid 1:10 htb rate "
            "10000kbit\n"
            "tc qdisc add dev \"$IFACE\" parent 1:10 handle 10: netem delay "
            "25.000ms loss 50.000%\n"
            "tc qdisc del dev \"$IFACE\" root\n");
}

TEST(ExportNetem, OneTimedChangePerSubsequentTick) {
  const EmuTimeline tl = flat_timeline(4, 5.0, 1.0);
  const std::string script =
      artifact(*make_netem_exporter(), tl, ".sh");
  std::size_t sleeps = 0;
  std::size_t changes = 0;
  for (std::size_t pos = 0;
       (pos = script.find("sleep 0.500", pos)) != std::string::npos; ++pos) {
    ++sleeps;
  }
  for (std::size_t pos = 0;
       (pos = script.find("tc qdisc change", pos)) != std::string::npos;
       ++pos) {
    ++changes;
  }
  EXPECT_EQ(sleeps, 3u);
  EXPECT_EQ(changes, 3u);
  // An outage tick still shapes to the HTB floor, never to rate 0.
  EXPECT_EQ(script.find("rate 0kbit"), std::string::npos);
}

// --- JSON schedule: bit-exact round trip, strict errors -------------------

TEST(ExportJson, RenderParseBitExact) {
  EmuTimeline tl = flat_timeline(3, 1.0 / 3.0, 0.1);
  tl.start_ms = 120500;
  tl.ticks[1].rtt_ms = 33.3333333333333357;
  tl.ticks[1].loss = 0.2;
  tl.ticks[2].tech = radio::Technology::NrMmWave;
  const std::string rendered =
      artifact(*make_json_exporter(), tl, ".json");
  const EmuTimeline parsed = parse_schedule_json(rendered);
  EXPECT_EQ(parsed.tick_ms, tl.tick_ms);
  EXPECT_EQ(parsed.start_ms, tl.start_ms);
  ASSERT_EQ(parsed.ticks.size(), tl.ticks.size());
  for (std::size_t i = 0; i < tl.ticks.size(); ++i) {
    EXPECT_EQ(parsed.ticks[i].cap_dl_mbps, tl.ticks[i].cap_dl_mbps);
    EXPECT_EQ(parsed.ticks[i].cap_ul_mbps, tl.ticks[i].cap_ul_mbps);
    EXPECT_EQ(parsed.ticks[i].rtt_ms, tl.ticks[i].rtt_ms);
    EXPECT_EQ(parsed.ticks[i].loss, tl.ticks[i].loss);
    EXPECT_EQ(parsed.ticks[i].tech, tl.ticks[i].tech);
  }
  EXPECT_EQ(artifact(*make_json_exporter(), parsed, ".json"), rendered);
}

TEST(ExportJson, RejectsUnsupportedVersion) {
  std::string doc = artifact(*make_json_exporter(),
                             flat_timeline(1, 1.0, 1.0), ".json");
  const std::size_t pos = doc.find("\"version\": 1");
  ASSERT_NE(pos, std::string::npos);
  doc.replace(pos, 12, "\"version\": 2");
  try {
    parse_schedule_json(doc);
    FAIL() << "expected a version error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find(
                  "schedule: line 2: unsupported schedule version 2"),
              std::string::npos)
        << e.what();
  }
}

TEST(ExportJson, ErrorsCiteTheOffendingLine) {
  const auto expect_error = [](const std::string& doc,
                               const std::string& needle) {
    try {
      parse_schedule_json(doc);
      FAIL() << "expected a parse error for: " << doc;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string{e.what()}.find(needle), std::string::npos)
          << e.what() << "\n  (wanted: " << needle << ")";
    }
  };
  const std::string head =
      "{\n\"version\": 1,\n\"tick_ms\": 500,\n\"ticks\": [\n";
  expect_error("{\n\"version\": 1,\n\"tick_ms\": 0,\n\"ticks\": [{}]\n}",
               "schedule: line 3: tick_ms must be > 0");
  expect_error("{\n\"version\": 1,\n\"tick_ms\": 500,\n\"ticks\": []\n}",
               "schedule: line 4: ticks must not be empty");
  expect_error(head +
                   "{\"cap_dl_mbps\": -1, \"cap_ul_mbps\": 0, \"rtt_ms\": "
                   "50, \"loss\": 0, \"tech\": \"LTE\"}\n]\n}",
               "schedule: line 5: cap_dl_mbps must be finite and >= 0");
  expect_error(head +
                   "{\"cap_dl_mbps\": 1, \"cap_ul_mbps\": 0, \"rtt_ms\": 50, "
                   "\"loss\": 1.5, \"tech\": \"LTE\"}\n]\n}",
               "schedule: line 5: loss must be in [0, 1]");
  expect_error(head +
                   "{\"cap_dl_mbps\": 1, \"cap_ul_mbps\": 0, \"rtt_ms\": 50, "
                   "\"loss\": 0, \"tech\": \"6G\"}\n]\n}",
               "schedule: line 5:");
  expect_error("{\n\"version\": 1,\n\"tick_ms\": 500\n}", "ticks");
}

// --- Timeline builders ----------------------------------------------------

TEST(ExportTimeline, EmptyOrInvalidTimelinesThrow) {
  EXPECT_THROW(validate_timeline(EmuTimeline{}), std::runtime_error);
  EXPECT_THROW(timeline_from_link_ticks({}), std::runtime_error);
  EmuTimeline bad = flat_timeline(1, 1.0, 1.0);
  bad.ticks[0].loss = 2.0;
  EXPECT_THROW(validate_timeline(bad), std::runtime_error);
  bad.ticks[0].loss = 0.0;
  bad.ticks[0].rtt_ms = 0.0;
  EXPECT_THROW(validate_timeline(bad), std::runtime_error);
}

TEST(ExportTimeline, CanonicalTraceHoldSamplesOntoGrid) {
  ingest::CanonicalTrace trace;
  for (int i = 0; i < 3; ++i) {
    ingest::TracePoint p;
    p.t = i * 500;
    p.cap_dl_mbps = 10.0 * (i + 1);
    p.cap_ul_mbps = 1.0;
    p.rtt_ms = 50.0;
    trace.points.push_back(p);
  }
  const EmuTimeline tl = timeline_from_canonical(trace, 500);
  ASSERT_EQ(tl.ticks.size(), 3u);
  EXPECT_EQ(tl.ticks[0].cap_dl_mbps, 10.0);
  EXPECT_EQ(tl.ticks[1].cap_dl_mbps, 20.0);
  EXPECT_EQ(tl.ticks[2].cap_dl_mbps, 30.0);
  EXPECT_THROW(timeline_from_canonical(ingest::CanonicalTrace{}, 500),
               std::runtime_error);
}

TEST(ExportTimeline, BundleTestWithoutLinkTicksThrows) {
  measure::ConsolidatedDb db;
  EXPECT_THROW(timeline_from_bundle_test(db, 7), std::runtime_error);
}

// --- Registry -------------------------------------------------------------

TEST(ExportRegistry, ResolvesBuiltinsAndNamesUnknown) {
  const ExporterRegistry& reg = builtin_exporter_registry();
  EXPECT_EQ(reg.exporters().size(), 3u);
  EXPECT_EQ(reg.resolve("mahimahi").name(), "mahimahi");
  EXPECT_EQ(reg.resolve("netem").name(), "netem");
  EXPECT_EQ(reg.resolve("json").name(), "json");
  try {
    reg.resolve("bogus");
    FAIL() << "expected an unknown-backend error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find(
                  "unknown backend 'bogus' (known: mahimahi, netem, json)"),
              std::string::npos)
        << e.what();
  }
}

// --- Quantization bound (property test) -----------------------------------

TEST(ExportMahimahi, QuantizationBoundOnRandomizedTimelines) {
  std::mt19937_64 rng{20230817};
  std::uniform_real_distribution<double> cap{0.0, 300.0};
  std::uniform_int_distribution<int> len{1, 120};
  std::uniform_int_distribution<int> zero{0, 3};
  for (int round = 0; round < 25; ++round) {
    EmuTimeline tl;
    tl.ticks.resize(static_cast<std::size_t>(len(rng)));
    for (EmuTick& t : tl.ticks) {
      t.cap_dl_mbps = zero(rng) == 0 ? 0.0 : cap(rng);
      t.cap_ul_mbps = t.cap_dl_mbps * 0.1;
    }
    const RoundTripReport report = verify_mahimahi_roundtrip(tl);
    EXPECT_EQ(report.bound_mbps, 0.024);
    // llround quantization: at most half an opportunity per tick, well
    // under the documented one-opportunity bound.
    EXPECT_LE(report.max_error_mbps, report.bound_mbps / 2.0 + 1e-12)
        << "round " << round;
  }
}

TEST(ExportMahimahi, BundleTimelineHoldsTheBound) {
  const replay::ReplayBundle bundle = replay::read_dataset(WHEELS_GOLDEN_DIR
                                                          "/bundle");
  EmuTimeline tl =
      timeline_from_bundle(bundle.db, radio::Carrier::Verizon, false);
  EXPECT_GT(tl.ticks.size(), 1000u);
  // A full drive at hundreds of Mbps is a multi-GB Mahimahi file; the
  // bound is per-tick, so a real-data slice proves it just as well.
  tl.ticks.resize(1000);
  const RoundTripReport report = verify_mahimahi_roundtrip(tl);
  EXPECT_TRUE(report.ok()) << report.max_error_mbps << " > "
                           << report.bound_mbps;
}

// --- link_ticks recording and serialization -------------------------------

TEST(LinkTicks, CampaignRecordsThemForEveryAppRun) {
  const measure::ConsolidatedDb& db = app_db();
  ASSERT_FALSE(db.link_ticks.empty());
  ASSERT_FALSE(db.app_runs.empty());
  for (const measure::AppRunRecord& run : db.app_runs) {
    const EmuTimeline tl = timeline_from_bundle_test(db, run.test_id);
    EXPECT_FALSE(tl.ticks.empty());
  }
  EXPECT_TRUE(measure::validate(db).empty());
}

TEST(LinkTicks, CsvRoundTripsBitExact) {
  const measure::ConsolidatedDb& db = app_db();
  std::stringstream written;
  measure::write_link_ticks_csv(written, db);
  const std::vector<measure::LinkTickRecord> back =
      measure::read_link_ticks_csv(written);
  ASSERT_EQ(back.size(), db.link_ticks.size());
  measure::ConsolidatedDb copy = db;
  copy.link_ticks = back;
  std::stringstream rewritten;
  measure::write_link_ticks_csv(rewritten, copy);
  EXPECT_EQ(rewritten.str(), written.str());
}

TEST(LinkTicks, DatasetEmitsTableOnlyWhenRecorded) {
  const std::string dir = "/tmp/wheels-export-test-bundle-" +
                          std::to_string(::getpid());
  fs::remove_all(dir);
  (void)measure::write_dataset(app_db(), dir,
                               campaign::make_manifest(app_config()));
  EXPECT_TRUE(fs::exists(fs::path{dir} / "link_ticks.csv"));
  const replay::ReplayBundle bundle = replay::read_dataset(dir);
  EXPECT_EQ(bundle.db.link_ticks.size(), app_db().link_ticks.size());
  fs::remove_all(dir);

  // An appless campaign records no link ticks and must keep emitting the
  // pre-existing bundle layout (no empty table, same manifest digest).
  campaign::CampaignConfig cfg = app_config();
  cfg.scale = 0.01;
  cfg.run_apps = false;
  const measure::ConsolidatedDb appless =
      campaign::DriveCampaign{cfg}.run();
  EXPECT_TRUE(appless.link_ticks.empty());
  fs::remove_all(dir);
  (void)measure::write_dataset(appless, dir, campaign::make_manifest(cfg));
  EXPECT_FALSE(fs::exists(fs::path{dir} / "link_ticks.csv"));
  fs::remove_all(dir);
}

TEST(LinkTicks, RecordingIsByteIdenticalAcrossThreads) {
  campaign::CampaignConfig cfg = app_config();
  cfg.threads = 1;
  const measure::ConsolidatedDb serial =
      campaign::DriveCampaign{cfg}.run();
  cfg.threads = 3;
  const measure::ConsolidatedDb parallel =
      campaign::DriveCampaign{cfg}.run();
  std::stringstream a;
  std::stringstream b;
  measure::write_link_ticks_csv(a, serial);
  measure::write_link_ticks_csv(b, parallel);
  EXPECT_EQ(a.str(), b.str());

  // And so is the rendered artifact downstream of them.
  const measure::AppRunRecord& run = serial.app_runs.front();
  const std::string from_serial =
      artifact(*make_json_exporter(),
               timeline_from_bundle_test(serial, run.test_id), ".json");
  const std::string from_parallel =
      artifact(*make_json_exporter(),
               timeline_from_bundle_test(parallel, run.test_id), ".json");
  EXPECT_EQ(from_serial, from_parallel);
}

TEST(LinkTicks, ValidateRejectsCorruptRows) {
  measure::ConsolidatedDb db = app_db();
  ASSERT_FALSE(db.link_ticks.empty());
  db.link_ticks[0].cap_dl = -1.0;
  const std::vector<std::string> violations = measure::validate(db, 8);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("link_ticks[0]"), std::string::npos)
      << violations.front();
}

// --- Exact replay from recorded link ticks --------------------------------

TEST(ReplayLinkTicks, AppRunsReplayByteIdenticalWithoutKnobs) {
  replay::ReplayBundle bundle;
  bundle.db = app_db();
  bundle.manifest = campaign::make_manifest(app_config());
  const replay::ReplayConfig cfg;
  const measure::ConsolidatedDb replayed =
      replay::ReplayCampaign{bundle, cfg}.run();

  std::stringstream rec_runs;
  std::stringstream rep_runs;
  measure::write_app_runs_csv(rec_runs, bundle.db);
  measure::write_app_runs_csv(rep_runs, replayed);
  EXPECT_EQ(rep_runs.str(), rec_runs.str());

  std::stringstream rec_ticks;
  std::stringstream rep_ticks;
  measure::write_link_ticks_csv(rec_ticks, bundle.db);
  measure::write_link_ticks_csv(rep_ticks, replayed);
  EXPECT_EQ(rep_ticks.str(), rec_ticks.str());
}

TEST(ReplayLinkTicks, OlderBundleFallsBackToStatisticalTimeline) {
  replay::ReplayBundle bundle;
  bundle.db = app_db();
  bundle.manifest = campaign::make_manifest(app_config());
  bundle.db.link_ticks.clear();  // simulate a pre-link_ticks bundle
  const replay::ReplayConfig cfg;
  const measure::ConsolidatedDb replayed =
      replay::ReplayCampaign{bundle, cfg}.run();
  EXPECT_EQ(replayed.app_runs.size(), app_db().app_runs.size());
  // The fallback re-emits synthesized link ticks, upgrading the bundle.
  EXPECT_FALSE(replayed.link_ticks.empty());
  EXPECT_TRUE(measure::validate(replayed).empty());
}

TEST(ReplayLinkTicks, TierCapAppliesToRecordedTicks) {
  replay::ReplayBundle bundle;
  bundle.db = app_db();
  bundle.manifest = campaign::make_manifest(app_config());
  replay::ReplayConfig cfg;
  cfg.knobs.max_tier = radio::Technology::Lte;
  const measure::ConsolidatedDb replayed =
      replay::ReplayCampaign{bundle, cfg}.run();
  ASSERT_FALSE(replayed.app_runs.empty());
  for (const measure::AppRunRecord& run : replayed.app_runs) {
    EXPECT_EQ(run.high_speed_5g_fraction, 0.0);
  }
  for (const measure::LinkTickRecord& l : replayed.link_ticks) {
    EXPECT_EQ(l.tech, radio::Technology::Lte);
  }
}

}  // namespace
}  // namespace wheels::emu

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "analysis/svg_plot.hpp"
#include "core/rng.hpp"

namespace wheels::analysis {
namespace {

int count_occurrences(const std::string& haystack, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(NiceTicks, ProducesRoundNumbersCoveringRange) {
  const auto ticks = nice_ticks(0.0, 100.0);
  ASSERT_FALSE(ticks.empty());
  EXPECT_GE(ticks.front(), 0.0);
  EXPECT_LE(ticks.back(), 100.0 + 1e-9);
  for (std::size_t i = 1; i < ticks.size(); ++i) {
    EXPECT_GT(ticks[i], ticks[i - 1]);
  }
}

TEST(NiceTicks, HandlesDegenerateRange) {
  const auto ticks = nice_ticks(5.0, 5.0);
  EXPECT_FALSE(ticks.empty());
}

TEST(NiceTicks, TinyRange) {
  const auto ticks = nice_ticks(0.001, 0.004);
  EXPECT_GE(ticks.size(), 2u);
  for (double t : ticks) {
    EXPECT_GE(t, 0.0009);
    EXPECT_LE(t, 0.0041);
  }
}

TEST(SvgPlot, RendersWellFormedDocument) {
  SvgPlot plot{"Title <with> markup", "x & y", "CDF"};
  plot.add_line({{0, 0}, {1, 0.5}, {2, 1.0}}, "series-a");
  const std::string svg = plot.render();
  EXPECT_EQ(count_occurrences(svg, "<svg"), 1);
  EXPECT_EQ(count_occurrences(svg, "</svg>"), 1);
  EXPECT_EQ(count_occurrences(svg, "<polyline"), 1);
  // Markup in labels must be escaped.
  EXPECT_NE(svg.find("Title &lt;with&gt; markup"), std::string::npos);
  EXPECT_NE(svg.find("x &amp; y"), std::string::npos);
  EXPECT_EQ(svg.find("<with>"), std::string::npos);
}

TEST(SvgPlot, OnePolylinePerLineSeriesOneCirclePerPoint) {
  SvgPlot plot{"t", "x", "y"};
  plot.add_line({{0, 0}, {1, 1}}, "l1");
  plot.add_line({{0, 1}, {1, 0}}, "l2");
  plot.add_scatter({{0.2, 0.2}, {0.4, 0.4}, {0.6, 0.6}}, "s1");
  const std::string svg = plot.render();
  EXPECT_EQ(count_occurrences(svg, "<polyline"), 2);
  EXPECT_EQ(count_occurrences(svg, "<circle"), 3);
  EXPECT_EQ(plot.series_count(), 3u);
}

TEST(SvgPlot, CdfSeriesMonotone) {
  wheels::Rng rng{1};
  std::vector<double> xs(500);
  for (auto& x : xs) x = rng.lognormal(2.0, 1.0);
  SvgPlot plot{"t", "x", "CDF"};
  plot.add_cdf(Cdf{xs}, "cdf");
  const std::string svg = plot.render();
  EXPECT_EQ(count_occurrences(svg, "<polyline"), 1);
}

TEST(SvgPlot, EmptyPlotStillRenders) {
  SvgPlot plot{"empty", "x", "y"};
  const std::string svg = plot.render();
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  plot.add_cdf(Cdf{{}}, "nothing");
  EXPECT_NE(plot.render().find("</svg>"), std::string::npos);
}

TEST(SvgPlot, LogAxisDropsNonPositive) {
  SvgPlot plot{"t", "x", "y"};
  plot.set_log_x(true);
  plot.add_scatter({{-1.0, 0.5}, {0.0, 0.5}, {10.0, 0.5}, {100.0, 0.6}},
                   "mixed");
  const std::string svg = plot.render();
  EXPECT_EQ(count_occurrences(svg, "<circle"), 2);  // only positive x kept
  // Decade ticks present.
  EXPECT_NE(svg.find(">10<"), std::string::npos);
  EXPECT_NE(svg.find(">100<"), std::string::npos);
}

TEST(SvgPlot, SaveCreatesDirectoriesAndFile) {
  const std::string dir = "/tmp/wheels-svg-test/nested";
  std::filesystem::remove_all("/tmp/wheels-svg-test");
  SvgPlot plot{"t", "x", "y"};
  plot.add_line({{0, 0}, {1, 1}}, "l");
  plot.save(dir + "/plot.svg");
  EXPECT_TRUE(std::filesystem::exists(dir + "/plot.svg"));
  std::ifstream is{dir + "/plot.svg"};
  std::string first;
  std::getline(is, first);
  EXPECT_NE(first.find("<svg"), std::string::npos);
  std::filesystem::remove_all("/tmp/wheels-svg-test");
}

TEST(SvgPlot, DistinctColorsPerSeries) {
  SvgPlot plot{"t", "x", "y"};
  plot.add_line({{0, 0}, {1, 1}}, "a");
  plot.add_line({{0, 0}, {1, 1}}, "b");
  const std::string svg = plot.render();
  EXPECT_NE(svg.find("#c23b3b"), std::string::npos);
  EXPECT_NE(svg.find("#2b6fb3"), std::string::npos);
}

}  // namespace
}  // namespace wheels::analysis

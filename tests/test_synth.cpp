// Scenario synthesis: fit-from-golden acceptance gate, profile round-trips,
// sampler determinism, and the scenario what-if knobs.
//
// The KS gate here is the contract the subsystem ships under: a profile
// fitted from the committed golden bundle must sample cycles whose 500 ms
// throughput and RTT marginals stay within KS 0.15 of the recording, per
// (carrier, RAT) stream. CI's synth_smoke job runs the same gate through
// the synth_trace CLI.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ingest/stream.hpp"
#include "measure/csv_export.hpp"
#include "measure/validate.hpp"
#include "replay/ingest.hpp"
#include "replay/replay_campaign.hpp"
#include "synth/fit.hpp"
#include "synth/profile.hpp"
#include "synth/sample.hpp"
#include "synth/validate.hpp"

namespace wheels::synth {
namespace {

const replay::ReplayBundle& golden() {
  static const replay::ReplayBundle bundle =
      replay::read_dataset(WHEELS_GOLDEN_DIR "/bundle");
  return bundle;
}

const SynthProfile& golden_profile() {
  static const SynthProfile profile = fit_profile(golden());
  return profile;
}

/// The gate scenario: long enough that sampling noise (~sqrt(ln(2/a)/n))
/// sits well under the 0.15 gate for every fitted stream.
ScenarioSpec gate_spec() {
  ScenarioSpec spec;
  spec.duration_s = 300.0;
  return spec;
}

/// The three tick tables as one string — the byte-identity yardstick
/// (doubles at max_digits10, measure::csv_export's contract).
std::string db_bytes(const measure::ConsolidatedDb& db) {
  std::ostringstream os;
  measure::write_tests_csv(os, db);
  measure::write_kpis_csv(os, db);
  measure::write_rtts_csv(os, db);
  return os.str();
}

TEST(SynthGate, GoldenFitCoversEveryRecordedStream) {
  const SynthProfile& p = golden_profile();
  EXPECT_EQ(p.version, kProfileVersion);
  EXPECT_EQ(p.tick_ms, 500);
  ASSERT_FALSE(p.streams.empty());
  ASSERT_FALSE(p.mixes.empty());
  for (const StreamModel& s : p.streams) {
    EXPECT_GE(s.n_ticks, FitOptions{}.min_stream_ticks);
    ASSERT_EQ(s.dl.occupancy.size(), s.dl.transitions.size());
    double occ = 0.0;
    for (double o : s.dl.occupancy) occ += o;
    EXPECT_NEAR(occ, 1.0, 1e-9);
    // Visited regimes have row-stochastic outgoing transitions.
    for (std::size_t i = 0; i < s.dl.transitions.size(); ++i) {
      double row = 0.0;
      for (double v : s.dl.transitions[i]) row += v;
      if (s.dl.occupancy[i] > 0.0) {
        EXPECT_NEAR(row, 1.0, 1e-9);
        EXPECT_FALSE(s.dl.emissions[i].empty());
      } else {
        EXPECT_NEAR(row, 0.0, 1e-12);
      }
    }
  }
  // Every mix tech resolves to a fitted stream model.
  for (const CarrierMix& mix : p.mixes) {
    for (radio::Technology tech : mix.techs) {
      EXPECT_NE(p.find_stream(mix.carrier, tech), nullptr);
    }
  }
}

TEST(SynthGate, SampledMarginalsWithinKsGate) {
  const replay::ReplayBundle bundle =
      sample_bundle(golden_profile(), gate_spec(), 1, 0, 10);
  EXPECT_TRUE(measure::validate(bundle.db).empty());
  const ValidationReport report =
      validate_synthesis(golden().db, bundle.db, golden_profile());
  ASSERT_FALSE(report.streams.empty());
  for (const StreamKs& s : report.streams) {
    EXPECT_TRUE(s.gated) << "stream under the sample floor";
    EXPECT_LE(s.ks_throughput, 0.15);
    EXPECT_LE(s.ks_rtt, 0.15);
  }
  EXPECT_TRUE(report.passes(0.15));
}

TEST(SynthGate, SampledBundleReplaysThroughCampaign) {
  ScenarioSpec spec;
  spec.duration_s = 60.0;
  const replay::ReplayBundle bundle =
      sample_bundle(golden_profile(), spec, 3, 0, 1);
  replay::ReplayConfig cfg;
  const measure::ConsolidatedDb replayed =
      replay::ReplayCampaign{bundle, cfg}.run();
  EXPECT_TRUE(measure::validate(replayed).empty());
  EXPECT_EQ(replayed.tests.size(), bundle.db.tests.size());
}

TEST(SynthTest, ProfileJsonRoundTripsBitExact) {
  const SynthProfile& p = golden_profile();
  const std::string json = p.to_json();
  const SynthProfile back = parse_profile(json);
  EXPECT_EQ(back.to_json(), json);
  EXPECT_EQ(back.source_digest, p.source_digest);
  EXPECT_EQ(back.streams.size(), p.streams.size());
}

TEST(SynthTest, SampleByteIdenticalAcrossThreadsAndSerialization) {
  ScenarioSpec spec;
  spec.duration_s = 90.0;
  const replay::ReplayBundle one =
      sample_bundle(golden_profile(), spec, 7, 0, 3, 1);
  const replay::ReplayBundle four =
      sample_bundle(golden_profile(), spec, 7, 0, 3, 4);
  EXPECT_EQ(one.manifest.config_digest, four.manifest.config_digest);
  EXPECT_EQ(db_bytes(one.db), db_bytes(four.db));

  // A serialize->parse round-tripped profile samples the same bytes: the
  // refit-free contract a stored profile file is used under.
  const SynthProfile reparsed = parse_profile(golden_profile().to_json());
  const replay::ReplayBundle from_reparsed =
      sample_bundle(reparsed, spec, 7, 0, 3, 2);
  EXPECT_EQ(from_reparsed.manifest.config_digest, one.manifest.config_digest);
  EXPECT_EQ(db_bytes(from_reparsed.db), db_bytes(one.db));
}

TEST(SynthTest, CyclesSampleIndependentlyOfBatching) {
  // Cycle 2 sampled alone carries the exact values it has inside a batch —
  // the property that lets a fleet shard cycles across processes.
  ScenarioSpec spec;
  spec.duration_s = 30.0;
  const auto collect = [&](int first, int count) {
    ingest::CollectSink sink;
    sample_stream(golden_profile(), spec, 11, radio::Carrier::Verizon, first,
                  count, sink);
    return sink.take();
  };
  const ingest::CanonicalTrace batch = collect(0, 3);
  const ingest::CanonicalTrace alone = collect(2, 1);
  const std::int64_t ticks = cycle_ticks(spec, golden_profile().tick_ms);
  ASSERT_EQ(batch.points.size(), static_cast<std::size_t>(3 * ticks));
  ASSERT_EQ(alone.points.size(), static_cast<std::size_t>(ticks));
  for (std::size_t i = 0; i < alone.points.size(); ++i) {
    const ingest::TracePoint& a = alone.points[i];
    const ingest::TracePoint& b =
        batch.points[static_cast<std::size_t>(2 * ticks) + i];
    EXPECT_EQ(a.cap_dl_mbps, b.cap_dl_mbps);
    EXPECT_EQ(a.cap_ul_mbps, b.cap_ul_mbps);
    EXPECT_EQ(a.rtt_ms, b.rtt_ms);
    EXPECT_EQ(a.tech, b.tech);
  }
}

TEST(SynthTest, MalformedProfileRejectedWithLineNumbers) {
  const auto error_of = [](const std::string& json) {
    try {
      (void)parse_profile(json);
    } catch (const std::runtime_error& e) {
      return std::string{e.what()};
    }
    return std::string{};
  };
  // Truncated document.
  std::string err = error_of("{\n  \"version\": 1,\n");
  EXPECT_NE(err.find("profile: line"), std::string::npos) << err;
  // Wrong type on a known key, with the key's own line in the message.
  err = error_of("{\n  \"version\": \"one\"\n}\n");
  EXPECT_NE(err.find("profile: line 2"), std::string::npos) << err;
  // Trailing garbage after the document.
  err = error_of("{}\nextra");
  EXPECT_NE(err.find("profile: line"), std::string::npos) << err;
}

TEST(SynthTest, VersionSkewedProfileRejected) {
  std::string json = golden_profile().to_json();
  const std::string needle = "\"version\": 1";
  const std::size_t at = json.find(needle);
  ASSERT_NE(at, std::string::npos);
  json.replace(at, needle.size(), "\"version\": 99");
  try {
    (void)parse_profile(json);
    FAIL() << "version skew accepted";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version"), std::string::npos) << what;
    EXPECT_NE(what.find("99"), std::string::npos) << what;
    EXPECT_NE(what.find("profile: line"), std::string::npos) << what;
  }
}

TEST(SynthTest, ScenarioSpecParsing) {
  const ScenarioSpec spec = parse_scenario_spec(
      "duration_s=60,load=2.5,outage_factor=3,max_tier=LTE-A,"
      "carriers=Verizon+AT&T");
  EXPECT_DOUBLE_EQ(spec.duration_s, 60.0);
  EXPECT_DOUBLE_EQ(spec.load, 2.5);
  EXPECT_DOUBLE_EQ(spec.outage_factor, 3.0);
  ASSERT_TRUE(spec.max_tier.has_value());
  EXPECT_EQ(*spec.max_tier, radio::Technology::LteA);
  ASSERT_EQ(spec.carriers.size(), 2u);
  EXPECT_EQ(spec.carriers[0], radio::Carrier::Verizon);
  EXPECT_EQ(spec.carriers[1], radio::Carrier::Att);

  // A route sizes the cycle when duration is not given explicitly.
  const ScenarioSpec route = parse_scenario_spec("route_km=20,speed_kmh=60");
  EXPECT_DOUBLE_EQ(route.duration_s, 0.0);
  EXPECT_EQ(cycle_ticks(route, 500), 2400);  // 20 min at 500 ms

  EXPECT_THROW((void)parse_scenario_spec("bogus_key=1"), std::runtime_error);
  EXPECT_THROW((void)parse_scenario_spec("load=abc"), std::runtime_error);
  EXPECT_THROW((void)parse_scenario_spec("load=0"), std::runtime_error);
  EXPECT_THROW((void)parse_scenario_spec("duration_s=0,route_km=0"),
               std::runtime_error);
}

TEST(SynthTest, LoadKnobScalesCapacitiesExactly) {
  // Same seed => same draws; load only rescales the emitted values, so the
  // rush-hour what-if is a pure, deterministic transformation.
  ScenarioSpec base;
  base.duration_s = 30.0;
  ScenarioSpec rush = base;
  rush.load = 2.0;
  const auto collect = [&](const ScenarioSpec& s) {
    ingest::CollectSink sink;
    sample_stream(golden_profile(), s, 5, radio::Carrier::Att, 0, 1, sink);
    return sink.take();
  };
  const ingest::CanonicalTrace a = collect(base);
  const ingest::CanonicalTrace b = collect(rush);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(b.points[i].cap_dl_mbps, a.points[i].cap_dl_mbps / 2.0);
    EXPECT_GE(b.points[i].rtt_ms, a.points[i].rtt_ms);
  }
}

TEST(SynthTest, OutageFactorRaisesOutageShare) {
  // T-Mobile 5G-low recorded outages, so the degraded-coverage what-if has
  // observed outage mass to scale.
  ScenarioSpec base;
  base.duration_s = 600.0;
  base.carriers = {radio::Carrier::TMobile};
  ScenarioSpec degraded = base;
  degraded.outage_factor = 8.0;
  const auto outage_ticks = [&](const ScenarioSpec& s) {
    ingest::CollectSink sink;
    sample_stream(golden_profile(), s, 9, radio::Carrier::TMobile, 0, 4, sink);
    std::size_t n = 0;
    for (const ingest::TracePoint& p : sink.trace.points) {
      if (p.cap_dl_mbps <= golden_profile().outage_mbps) ++n;
    }
    return n;
  };
  EXPECT_GT(outage_ticks(degraded), outage_ticks(base));
}

TEST(SynthTest, MaxTierCapsSampledTechnologies) {
  ScenarioSpec spec;
  spec.duration_s = 120.0;
  spec.max_tier = radio::Technology::LteA;
  spec.carriers = {radio::Carrier::Verizon};
  ingest::CollectSink sink;
  sample_stream(golden_profile(), spec, 13, radio::Carrier::Verizon, 0, 2,
                sink);
  ASSERT_FALSE(sink.trace.points.empty());
  for (const ingest::TracePoint& p : sink.trace.points) {
    EXPECT_LE(radio::technology_tier(p.tech),
              radio::technology_tier(radio::Technology::LteA));
  }
}

}  // namespace
}  // namespace wheels::synth

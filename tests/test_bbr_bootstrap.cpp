#include <gtest/gtest.h>

#include "analysis/bootstrap.hpp"
#include "analysis/stats.hpp"
#include "transport/tcp_flow.hpp"

namespace wheels {
namespace {

transport::TcpFlowConfig bbr_config() {
  transport::TcpFlowConfig cfg;
  cfg.algo = transport::CcAlgo::Bbr;
  return cfg;
}

TEST(Bbr, SaturatesStableLink) {
  transport::TcpBulkFlow flow{50.0, Rng{1}, bbr_config()};
  for (int i = 0; i < 20; ++i) flow.advance(100.0, 500.0);
  double sum = 0.0;
  constexpr int n = 40;
  for (int i = 0; i < n; ++i) sum += flow.advance(100.0, 500.0);
  const Mbps rate = sum * 8.0 / 1e6 / (n * 0.5);
  EXPECT_GT(rate, 85.0);
  EXPECT_LE(rate, 101.0);
}

TEST(Bbr, KeepsQueueNearOneBdpWhereCubicFillsBuffer) {
  transport::TcpBulkFlow bbr{60.0, Rng{2}, bbr_config()};
  transport::TcpBulkFlow cubic{60.0, Rng{2}};
  for (int i = 0; i < 60; ++i) {
    bbr.advance(50.0, 500.0);
    cubic.advance(50.0, 500.0);
  }
  // BDP at 50 Mbps x 60 ms = 375 KB -> ~60 ms of queue at most for BBR.
  EXPECT_LT(bbr.queue_delay(), 90.0);
  EXPECT_GT(cubic.queue_delay(), 1.8 * bbr.queue_delay());
}

TEST(Bbr, TracksCapacityDrop) {
  transport::TcpBulkFlow flow{40.0, Rng{3}, bbr_config()};
  for (int i = 0; i < 30; ++i) flow.advance(80.0, 500.0);
  EXPECT_GT(flow.btl_bw_estimate(), 50.0);
  // Capacity collapses; the max filter expires within ~2.5 s.
  for (int i = 0; i < 12; ++i) flow.advance(3.0, 500.0);
  EXPECT_LT(flow.btl_bw_estimate(), 10.0);
  // And recovers.
  double sum = 0.0;
  for (int i = 0; i < 40; ++i) sum += flow.advance(80.0, 500.0);
  EXPECT_GT(sum * 8.0 / 1e6 / 20.0, 50.0);
}

TEST(Bbr, LossAgnostic) {
  transport::TcpFlowConfig cfg = bbr_config();
  cfg.random_loss_p = 0.05;  // 5% per fluid step would cripple CUBIC
  transport::TcpBulkFlow bbr{50.0, Rng{4}, cfg};
  transport::TcpFlowConfig ccfg;
  ccfg.random_loss_p = 0.05;
  transport::TcpBulkFlow cubic{50.0, Rng{4}, ccfg};
  double b = 0.0, c = 0.0;
  for (int i = 0; i < 60; ++i) {
    b += bbr.advance(100.0, 500.0);
    c += cubic.advance(100.0, 500.0);
  }
  EXPECT_GT(b, 2.0 * c);
}

TEST(Bbr, Deterministic) {
  transport::TcpBulkFlow a{50.0, Rng{5}, bbr_config()};
  transport::TcpBulkFlow b{50.0, Rng{5}, bbr_config()};
  for (int i = 0; i < 30; ++i) {
    EXPECT_DOUBLE_EQ(a.advance(70.0, 500.0), b.advance(70.0, 500.0));
  }
}

TEST(Bbr, CcAlgoNames) {
  EXPECT_EQ(transport::cc_algo_name(transport::CcAlgo::Cubic), "cubic");
  EXPECT_EQ(transport::cc_algo_name(transport::CcAlgo::Bbr), "bbr");
}

TEST(Bootstrap, MedianCiCoversTruth) {
  Rng data_rng{10};
  std::vector<double> xs(400);
  for (auto& x : xs) x = data_rng.normal(50.0, 10.0);
  Rng rng{11};
  const auto ci = analysis::bootstrap_median_ci(xs, rng);
  EXPECT_TRUE(ci.contains(ci.point));
  EXPECT_TRUE(ci.contains(50.0));  // wide-n CI should cover the true median
  EXPECT_LT(ci.width(), 10.0);
  EXPECT_GT(ci.width(), 0.1);
}

TEST(Bootstrap, WidthShrinksWithSampleSize) {
  Rng data_rng{12};
  std::vector<double> small(50), big(5000);
  for (auto& x : small) x = data_rng.lognormal(3.0, 1.0);
  for (auto& x : big) x = data_rng.lognormal(3.0, 1.0);
  Rng r1{13}, r2{13};
  const auto ci_small = analysis::bootstrap_median_ci(small, r1);
  const auto ci_big = analysis::bootstrap_median_ci(big, r2);
  EXPECT_LT(ci_big.width(), ci_small.width());
}

TEST(Bootstrap, CustomStatistic) {
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  Rng rng{14};
  const auto ci = analysis::bootstrap_ci(
      xs,
      [](std::span<const double> s) {
        double m = 0.0;
        for (double v : s) m += v;
        return m / static_cast<double>(s.size());
      },
      rng, 0.9, 500);
  EXPECT_NEAR(ci.point, 5.5, 1e-12);
  EXPECT_LT(ci.lo, 5.5);
  EXPECT_GT(ci.hi, 5.5);
}

TEST(Bootstrap, Deterministic) {
  const std::vector<double> xs{3, 1, 4, 1, 5, 9, 2, 6};
  Rng a{15}, b{15};
  const auto c1 = analysis::bootstrap_median_ci(xs, a);
  const auto c2 = analysis::bootstrap_median_ci(xs, b);
  EXPECT_DOUBLE_EQ(c1.lo, c2.lo);
  EXPECT_DOUBLE_EQ(c1.hi, c2.hi);
}

TEST(Bootstrap, RejectsBadInput) {
  Rng rng{16};
  EXPECT_THROW((void)analysis::bootstrap_median_ci({}, rng),
               std::invalid_argument);
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_THROW((void)analysis::bootstrap_median_ci(xs, rng, 1.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace wheels

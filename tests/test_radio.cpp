#include <gtest/gtest.h>

#include "geo/route.hpp"
#include "geo/scaled_route.hpp"
#include "radio/band_plan.hpp"
#include "radio/channel.hpp"
#include "radio/deployment.hpp"
#include "radio/technology.hpp"

namespace wheels::radio {
namespace {

TEST(Technology, Classification) {
  EXPECT_FALSE(is_5g(Technology::Lte));
  EXPECT_FALSE(is_5g(Technology::LteA));
  EXPECT_TRUE(is_5g(Technology::NrLow));
  EXPECT_TRUE(is_5g(Technology::NrMid));
  EXPECT_TRUE(is_5g(Technology::NrMmWave));

  EXPECT_FALSE(is_high_speed_5g(Technology::NrLow));
  EXPECT_TRUE(is_high_speed_5g(Technology::NrMid));
  EXPECT_TRUE(is_high_speed_5g(Technology::NrMmWave));
}

TEST(Technology, TierOrdering) {
  EXPECT_LT(technology_tier(Technology::Lte), technology_tier(Technology::LteA));
  EXPECT_LT(technology_tier(Technology::LteA),
            technology_tier(Technology::NrLow));
  EXPECT_LT(technology_tier(Technology::NrMid),
            technology_tier(Technology::NrMmWave));
}

TEST(Technology, Names) {
  EXPECT_EQ(technology_name(Technology::NrMmWave), "5G-mmWave");
  EXPECT_EQ(carrier_name(Carrier::TMobile), "T-Mobile");
}

TEST(BandPlan, TMobileMidbandIs100MHz) {
  const BandPlan p = band_plan(Carrier::TMobile, Technology::NrMid);
  EXPECT_DOUBLE_EQ(p.cc_bandwidth_mhz, 100.0);
  const BandPlan v = band_plan(Carrier::Verizon, Technology::NrMid);
  EXPECT_LT(v.cc_bandwidth_mhz, p.cc_bandwidth_mhz);
}

TEST(BandPlan, MmWaveAggregatesEight) {
  const BandPlan p = band_plan(Carrier::Verizon, Technology::NrMmWave);
  EXPECT_EQ(p.max_cc_dl, 8);
  EXPECT_EQ(p.max_cc_ul, 2);
  EXPECT_DOUBLE_EQ(p.freq_ghz, 28.0);
}

TEST(BandPlan, TddUplinkDutyBelowOne) {
  for (Carrier c : kAllCarriers) {
    EXPECT_LT(band_plan(c, Technology::NrMid).ul_duty, 1.0);
    EXPECT_LT(band_plan(c, Technology::NrMmWave).ul_duty, 1.0);
    EXPECT_DOUBLE_EQ(band_plan(c, Technology::Lte).ul_duty, 1.0);
  }
}

TEST(BandPlan, PeakRateOrdering) {
  // mmWave per-CC peak beats LTE per-CC peak by an order of magnitude.
  const Mbps lte = cc_peak_rate(band_plan(Carrier::Verizon, Technology::Lte), true);
  const Mbps mm =
      cc_peak_rate(band_plan(Carrier::Verizon, Technology::NrMmWave), true);
  EXPECT_GT(mm, 5.0 * lte);
}

TEST(Propagation, RsrpDecreasesWithDistance) {
  for (Carrier c : kAllCarriers) {
    for (Technology t : kAllTechnologies) {
      double prev = 1e9;
      for (Km d = 0.1; d < 5.0; d += 0.1) {
        const Dbm r = mean_rsrp(c, t, d);
        EXPECT_LE(r, prev);
        prev = r;
      }
    }
  }
}

TEST(Propagation, MmWaveFallsFasterThanLte) {
  const Dbm mm_near = mean_rsrp(Carrier::Att, Technology::NrMmWave, 0.1);
  const Dbm mm_far = mean_rsrp(Carrier::Att, Technology::NrMmWave, 1.0);
  const Dbm lte_near = mean_rsrp(Carrier::Att, Technology::Lte, 0.1);
  const Dbm lte_far = mean_rsrp(Carrier::Att, Technology::Lte, 1.0);
  EXPECT_GT(lte_far - lte_near, mm_far - mm_near);  // less negative drop
}

TEST(Propagation, VerizonMmWaveWeakerThanAtt) {
  // §5.5: wider Verizon beams → lower RSRP at the same distance.
  EXPECT_LT(reference_rsrp(Carrier::Verizon, Technology::NrMmWave),
            reference_rsrp(Carrier::Att, Technology::NrMmWave) - 5.0);
}

TEST(LinkAdaptation, McsMonotoneInSnr) {
  int prev = -1;
  for (Db snr = -10.0; snr <= 32.0; snr += 0.5) {
    const int mcs = mcs_from_snr(snr);
    EXPECT_GE(mcs, prev);
    EXPECT_GE(mcs, 0);
    EXPECT_LE(mcs, 28);
    prev = mcs;
  }
  EXPECT_EQ(mcs_from_snr(-10.0), 0);
  EXPECT_EQ(mcs_from_snr(32.0), 28);
}

TEST(LinkAdaptation, BlerDecreasesWithSnrIncreasesWithSpeed) {
  EXPECT_GT(bler_model(-5.0, 0.0), bler_model(10.0, 0.0));
  EXPECT_GT(bler_model(10.0, 70.0), bler_model(10.0, 0.0));
  for (Db snr : {-10.0, 0.0, 15.0, 30.0}) {
    const double b = bler_model(snr, 80.0);
    EXPECT_GE(b, 0.01);
    EXPECT_LE(b, 0.9);
  }
}

class DeploymentTest : public ::testing::Test {
 protected:
  DeploymentTest()
      : route_(geo::Route::cross_country()), view_(route_, 1.0) {}
  geo::Route route_;
  geo::ScaledRoute view_;
};

TEST_F(DeploymentTest, LteCoversEverywhere) {
  for (Carrier c : kAllCarriers) {
    Deployment d{view_, c, Rng{100}};
    for (Km km = 0.0; km < view_.total_physical_km(); km += 13.0) {
      EXPECT_TRUE(d.has(Technology::Lte, km)) << carrier_name(c) << " @" << km;
    }
  }
}

TEST_F(DeploymentTest, Deterministic) {
  Deployment a{view_, Carrier::Verizon, Rng{100}};
  Deployment b{view_, Carrier::Verizon, Rng{100}};
  ASSERT_EQ(a.cells().size(), b.cells().size());
  for (std::size_t i = 0; i < a.cells().size(); i += 101) {
    EXPECT_EQ(a.cells()[i].id, b.cells()[i].id);
    EXPECT_DOUBLE_EQ(a.cells()[i].center_km, b.cells()[i].center_km);
  }
}

TEST_F(DeploymentTest, UniqueCellIds) {
  Deployment d{view_, Carrier::TMobile, Rng{100}};
  std::vector<std::uint32_t> ids;
  for (const auto& c : d.cells()) ids.push_back(c.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST_F(DeploymentTest, CellCountsRoughlyMatchPaperScale) {
  // Paper Table 1: 3020 (V), 4038 (T), 3150 (A) unique connected cells.
  // Deployed cells should be in the same ballpark, with T-Mobile the most.
  const std::size_t v =
      Deployment{view_, Carrier::Verizon, Rng{100}}.cells().size();
  const std::size_t t =
      Deployment{view_, Carrier::TMobile, Rng{100}}.cells().size();
  const std::size_t a = Deployment{view_, Carrier::Att, Rng{100}}.cells().size();
  EXPECT_GT(t, v);
  EXPECT_GT(v, 1500u);
  EXPECT_LT(t, 8000u);
  EXPECT_GT(a, 1500u);
}

TEST_F(DeploymentTest, TMobileHasWidestMidband) {
  auto midband_share = [&](Carrier c) {
    Deployment d{view_, c, Rng{100}};
    int covered = 0, total = 0;
    for (Km km = 0.0; km < view_.total_physical_km(); km += 5.0) {
      covered += d.has(Technology::NrMid, km);
      ++total;
    }
    return static_cast<double>(covered) / total;
  };
  const double t = midband_share(Carrier::TMobile);
  EXPECT_GT(t, midband_share(Carrier::Verizon));
  EXPECT_GT(t, midband_share(Carrier::Att));
  EXPECT_GT(t, 0.25);
}

TEST_F(DeploymentTest, MmWaveConcentratedInCities) {
  Deployment d{view_, Carrier::Verizon, Rng{100}};
  int urban = 0, highway = 0;
  for (const auto& c : d.cells()) {
    if (c.tech != Technology::NrMmWave) continue;
    const auto p = view_.at_physical(c.center_km);
    urban += p.region == geo::RegionType::Urban;
    highway += p.region == geo::RegionType::Highway;
  }
  EXPECT_GT(urban, 3 * highway);
}

TEST_F(DeploymentTest, AttHighSpeed5gIsRare) {
  Deployment d{view_, Carrier::Att, Rng{100}};
  int hs = 0, total = 0;
  for (Km km = 0.0; km < view_.total_physical_km(); km += 2.0) {
    hs += d.has(Technology::NrMid, km) || d.has(Technology::NrMmWave, km);
    ++total;
  }
  EXPECT_LT(static_cast<double>(hs) / total, 0.12);
}

TEST_F(DeploymentTest, CoveringCellIsNearest) {
  Deployment d{view_, Carrier::TMobile, Rng{100}};
  for (Km km = 100.0; km < 200.0; km += 1.0) {
    const CellSite* c = d.covering_cell(Technology::Lte, km);
    ASSERT_NE(c, nullptr);
    EXPECT_TRUE(c->covers(km));
    // No other LTE cell is strictly closer.
    for (const auto& other : d.cells()) {
      if (other.tech != Technology::Lte || other.id == c->id) continue;
      if (other.covers(km)) {
        EXPECT_LE(std::abs(c->center_km - km),
                  std::abs(other.center_km - km) + 1e-9);
      }
    }
  }
}

TEST(DeploymentProbability, PolicyShapesMatchPaper) {
  using geo::RegionType;
  using geo::Timezone;
  // Verizon mmWave urban ≫ highway.
  EXPECT_GT(availability_probability(Carrier::Verizon, Technology::NrMmWave,
                                     Timezone::Eastern, RegionType::Urban),
            20 * availability_probability(Carrier::Verizon,
                                          Technology::NrMmWave,
                                          Timezone::Eastern,
                                          RegionType::Highway));
  // T-Mobile midband stronger in Pacific than Mountain.
  EXPECT_GT(availability_probability(Carrier::TMobile, Technology::NrMid,
                                     Timezone::Pacific, RegionType::Highway),
            availability_probability(Carrier::TMobile, Technology::NrMid,
                                     Timezone::Mountain, RegionType::Highway));
  // AT&T 5G-low much weaker in Mountain than Pacific (Fig. 2c).
  EXPECT_LT(availability_probability(Carrier::Att, Technology::NrLow,
                                     Timezone::Mountain, RegionType::Highway),
            0.5 * availability_probability(Carrier::Att, Technology::NrLow,
                                           Timezone::Pacific,
                                           RegionType::Highway));
  // Probabilities stay in [0, 0.95].
  for (Carrier c : kAllCarriers) {
    for (Technology t : kAllTechnologies) {
      for (int tz = 0; tz < geo::kTimezoneCount; ++tz) {
        for (RegionType r : {RegionType::Urban, RegionType::Suburban,
                             RegionType::Highway}) {
          const double p = availability_probability(
              c, t, static_cast<Timezone>(tz), r);
          EXPECT_GE(p, 0.0);
          EXPECT_LE(p, 1.0);
        }
      }
    }
  }
}

class ChannelTest : public ::testing::Test {
 protected:
  CellSite make_cell(Technology tech, Km radius = 1.0) {
    CellSite c;
    c.id = 1;
    c.carrier = Carrier::Verizon;
    c.tech = tech;
    c.center_km = 100.0;
    c.radius_km = radius;
    return c;
  }
};

TEST_F(ChannelTest, StaticMmWaveDeliversGigabit) {
  const CellSite cell = make_cell(Technology::NrMmWave, 0.2);
  ChannelModel ch{Carrier::Verizon, Rng{7}};
  ch.attach(cell);
  double sum = 0.0;
  int n = 0;
  for (int i = 0; i < 2000; ++i) {
    const LinkKpis k = ch.sample_static_best(cell, 500.0);
    sum += k.capacity_dl;
    ++n;
  }
  const double mean = sum / n;
  EXPECT_GT(mean, 700.0);
  EXPECT_LT(mean, 3500.0);
}

TEST_F(ChannelTest, DeviceCapsRespected) {
  const CellSite cell = make_cell(Technology::NrMmWave, 0.2);
  ChannelModel ch{Carrier::Att, Rng{8}};
  ch.attach(cell);
  for (int i = 0; i < 3000; ++i) {
    const LinkKpis k = ch.sample_static_best(cell, 500.0);
    EXPECT_LE(k.capacity_dl, kDeviceCapDl);
    EXPECT_LE(k.capacity_ul, kDeviceCapUl);
    EXPECT_GE(k.capacity_dl, 0.0);
    EXPECT_GE(k.capacity_ul, 0.0);
  }
}

TEST_F(ChannelTest, DrivingSlowerThanStatic) {
  const CellSite cell = make_cell(Technology::NrMid, 1.3);
  ChannelModel ch_static{Carrier::TMobile, Rng{9}};
  ChannelModel ch_drive{Carrier::TMobile, Rng{9}};
  ch_static.attach(cell);
  ch_drive.attach(cell);
  double s = 0.0, d = 0.0;
  constexpr int n = 4000;
  Km km = 99.2;
  for (int i = 0; i < n; ++i) {
    s += ch_static.sample_static_best(cell, 500.0).capacity_dl;
    km += km_per_ms_from_mph(65.0) * 500.0;
    if (km > 100.8) km = 99.2;
    d += ch_drive.sample(cell, km, 65.0, 500.0).capacity_dl;
  }
  EXPECT_GT(s / n, 2.5 * (d / n));
}

TEST_F(ChannelTest, UplinkMuchSlowerThanDownlink) {
  const CellSite cell = make_cell(Technology::NrMmWave, 0.2);
  ChannelModel ch{Carrier::Verizon, Rng{10}};
  ch.attach(cell);
  double dl = 0.0, ul = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const LinkKpis k = ch.sample_static_best(cell, 500.0);
    dl += k.capacity_dl;
    ul += k.capacity_ul;
  }
  EXPECT_GT(dl, 4.0 * ul);
}

TEST_F(ChannelTest, KpisInRange) {
  const CellSite cell = make_cell(Technology::LteA, 2.3);
  ChannelModel ch{Carrier::Att, Rng{11}};
  ch.attach(cell);
  Km km = 98.0;
  for (int i = 0; i < 5000; ++i) {
    km += km_per_ms_from_mph(40.0) * 500.0;
    if (km > 102.0) km = 98.0;
    const LinkKpis k = ch.sample(cell, km, 40.0, 500.0);
    EXPECT_GE(k.mcs_dl, 0);
    EXPECT_LE(k.mcs_dl, 28);
    EXPECT_GE(k.bler_dl, 0.0);
    EXPECT_LE(k.bler_dl, 1.0);
    EXPECT_GE(k.cc_dl, 1);
    EXPECT_LE(k.cc_dl, band_plan(Carrier::Att, Technology::LteA).max_cc_dl);
    EXPECT_EQ(k.cc_ul, 1);  // LTE-A UL has a single carrier
    EXPECT_LT(k.rsrp, -40.0);
    EXPECT_GT(k.rsrp, -160.0);
  }
}

TEST_F(ChannelTest, OutagesProduceLowThroughputTail) {
  const CellSite cell = make_cell(Technology::NrMid, 1.3);
  ChannelModel ch{Carrier::TMobile, Rng{12}};
  ch.attach(cell);
  int low = 0, outages = 0;
  constexpr int n = 8000;
  Km km = 99.0;
  for (int i = 0; i < n; ++i) {
    km += km_per_ms_from_mph(65.0) * 500.0;
    if (km > 101.0) km = 99.0;
    const LinkKpis k = ch.sample(cell, km, 65.0, 500.0);
    low += k.capacity_dl < 5.0;
    outages += k.outage;
  }
  // T-Mobile midband under driving: a sizeable low-throughput tail (§5.2).
  // (The full 40%-below-2-Mbps shape needs cell-edge geometry and appears in
  // campaign data; this synthetic single-cell check asserts the mechanism.)
  EXPECT_GT(static_cast<double>(low) / n, 0.10);
  EXPECT_GT(outages, 0);
  EXPECT_LT(static_cast<double>(outages) / n, 0.8);
}

TEST_F(ChannelTest, VerizonRarelyAggregatesUplink) {
  const CellSite cell = make_cell(Technology::NrMmWave, 0.2);
  ChannelModel v{Carrier::Verizon, Rng{13}};
  ChannelModel t{Carrier::TMobile, Rng{13}};
  CellSite tcell = cell;
  tcell.carrier = Carrier::TMobile;
  v.attach(cell);
  t.attach(tcell);
  int v2 = 0, t2 = 0;
  constexpr int n = 3000;
  for (int i = 0; i < n; ++i) {
    v2 += v.sample_static_best(cell, 500.0).cc_ul == 2;
    t2 += t.sample_static_best(tcell, 500.0).cc_ul == 2;
  }
  EXPECT_LT(static_cast<double>(v2) / n, 0.15);
  EXPECT_GT(static_cast<double>(t2) / n, 0.4);
}

}  // namespace
}  // namespace wheels::radio

#include "core/sim_time.hpp"

#include <gtest/gtest.h>

namespace wheels {
namespace {

TEST(SimTime, CampaignEpochIsAug8_2022_15UTC) {
  const CivilDateTime c = civil_from_unix(campaign_start_unix_ms(), 0);
  EXPECT_EQ(c.year, 2022);
  EXPECT_EQ(c.month, 8);
  EXPECT_EQ(c.day, 8);
  EXPECT_EQ(c.hour, 15);
  EXPECT_EQ(c.minute, 0);
}

TEST(SimTime, CampaignEpochIs8amPacific) {
  const CivilDateTime c = civil_from_unix(campaign_start_unix_ms(), -420);
  EXPECT_EQ(c.hour, 8);
  EXPECT_EQ(c.day, 8);
}

TEST(SimTime, DaysFromCivilKnownValues) {
  EXPECT_EQ(days_from_civil(1970, 1, 1), 0);
  EXPECT_EQ(days_from_civil(1970, 1, 2), 1);
  EXPECT_EQ(days_from_civil(1969, 12, 31), -1);
  EXPECT_EQ(days_from_civil(2000, 3, 1), 11017);
}

TEST(SimTime, CivilDaysRoundTrip) {
  for (std::int64_t d = -1000; d <= 40000; d += 13) {
    int y = 0, m = 0, day = 0;
    civil_from_days(d, y, m, day);
    EXPECT_EQ(days_from_civil(y, m, day), d);
  }
}

TEST(SimTime, LeapYearHandling) {
  int y = 0, m = 0, d = 0;
  civil_from_days(days_from_civil(2020, 2, 29), y, m, d);
  EXPECT_EQ(y, 2020);
  EXPECT_EQ(m, 2);
  EXPECT_EQ(d, 29);
}

TEST(SimTime, UnixCivilRoundTripAcrossOffsets) {
  const UnixMillis t = campaign_start_unix_ms() + 123'456'789;
  for (int offset : {-420, -360, -300, -240, 0, 60}) {
    const CivilDateTime c = civil_from_unix(t, offset);
    EXPECT_EQ(unix_from_civil(c, offset), t) << "offset " << offset;
  }
}

TEST(SimTime, SimUnixRoundTrip) {
  EXPECT_EQ(sim_from_unix(unix_from_sim(987'654)), 987'654);
  EXPECT_EQ(unix_from_sim(0), campaign_start_unix_ms());
}

TEST(SimTime, SameInstantDifferentOffsetsDifferByWallHours) {
  const UnixMillis t = campaign_start_unix_ms();
  const CivilDateTime pacific = civil_from_unix(t, -420);
  const CivilDateTime eastern = civil_from_unix(t, -240);
  EXPECT_EQ(eastern.hour - pacific.hour, 3);
}

TEST(SimTime, FormatCivil) {
  CivilDateTime c{2022, 8, 8, 8, 5, 3, 42};
  EXPECT_EQ(format_civil(c), "2022-08-08 08:05:03.042");
}

TEST(SimTime, FormatTimestampLocal) {
  EXPECT_EQ(format_timestamp(campaign_start_unix_ms(), -240),
            "2022-08-08 11:00:00.000");
}

TEST(SimTime, ParseCivilWithMillis) {
  const CivilDateTime c = parse_civil("2022-08-12 17:30:05.250");
  EXPECT_EQ(c.year, 2022);
  EXPECT_EQ(c.month, 8);
  EXPECT_EQ(c.day, 12);
  EXPECT_EQ(c.hour, 17);
  EXPECT_EQ(c.minute, 30);
  EXPECT_EQ(c.second, 5);
  EXPECT_EQ(c.millisecond, 250);
}

TEST(SimTime, ParseCivilWithoutMillis) {
  EXPECT_EQ(parse_civil("2022-08-12 17:30:05").millisecond, 0);
}

TEST(SimTime, ParseFormatRoundTrip) {
  const CivilDateTime c{2023, 12, 31, 23, 59, 59, 999};
  EXPECT_EQ(parse_civil(format_civil(c)), c);
}

TEST(SimTime, ParseRejectsGarbage) {
  EXPECT_THROW(parse_civil("not a time"), std::invalid_argument);
  EXPECT_THROW(parse_civil("2022-13-01 00:00:00"), std::invalid_argument);
  EXPECT_THROW(parse_civil("2022-01-40 00:00:00"), std::invalid_argument);
  EXPECT_THROW(parse_civil("2022-01-01 25:00:00"), std::invalid_argument);
}

TEST(SimTime, MidnightCrossingsWithNegativeOffset) {
  // 2022-08-09 01:00 UTC is still 2022-08-08 in Pacific time.
  const UnixMillis t =
      unix_from_civil(CivilDateTime{2022, 8, 9, 1, 0, 0, 0}, 0);
  const CivilDateTime local = civil_from_unix(t, -420);
  EXPECT_EQ(local.day, 8);
  EXPECT_EQ(local.hour, 18);
}

}  // namespace
}  // namespace wheels

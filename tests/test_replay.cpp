#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "measure/csv_export.hpp"
#include "measure/validate.hpp"
#include "replay/external_adapter.hpp"
#include "replay/ingest.hpp"
#include "replay/replay_campaign.hpp"
#include "replay/report.hpp"
#include "replay/trace_channel.hpp"

namespace wheels::replay {
namespace {

namespace fs = std::filesystem;

campaign::CampaignConfig small_config() {
  campaign::CampaignConfig cfg;
  cfg.scale = 0.02;
  cfg.seed = 77;
  return cfg;
}

const measure::ConsolidatedDb& recorded_db() {
  static const measure::ConsolidatedDb db =
      campaign::DriveCampaign{small_config()}.run();
  return db;
}

/// A bundle directory for recorded_db(), written once per test binary run.
/// Suffixed with the pid: under `ctest -j`, concurrent test *processes* each
/// materialize their own copy instead of racing remove_all against readers.
const std::string& bundle_dir() {
  static const std::string dir = [] {
    const std::string d = "/tmp/wheels-replay-test-bundle-" +
                          std::to_string(::getpid());
    fs::remove_all(d);
    (void)measure::write_dataset(recorded_db(), d,
                                 campaign::make_manifest(small_config()));
    return d;
  }();
  return dir;
}

const ReplayBundle& ingested() {
  static const ReplayBundle bundle = read_dataset(bundle_dir());
  return bundle;
}

/// Full CSV serialization of a database — the byte-identity yardstick.
std::string db_to_string(const measure::ConsolidatedDb& db) {
  std::stringstream ss;
  measure::write_tests_csv(ss, db);
  measure::write_kpis_csv(ss, db);
  measure::write_rtts_csv(ss, db);
  measure::write_handovers_csv(ss, db);
  measure::write_app_runs_csv(ss, db);
  measure::write_summary_csv(ss, db);
  measure::write_cells_csv(ss, db);
  for (radio::Carrier c : radio::kAllCarriers) {
    const std::size_t ci = measure::carrier_index(c);
    measure::write_coverage_csv(ss, db.passive[ci].segments, c, true);
    measure::write_coverage_csv(ss, db.active_coverage[ci], c, false);
  }
  return ss.str();
}

std::string file_text(const fs::path& p) {
  std::ifstream is{p};
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

// --- ingest ---------------------------------------------------------------

TEST(ReplayIngest, ReassemblesTheFullDatabase) {
  const measure::ConsolidatedDb& rec = recorded_db();
  const measure::ConsolidatedDb& db = ingested().db;
  EXPECT_EQ(db_to_string(db), db_to_string(rec));
  EXPECT_EQ(ingested().manifest.seed, small_config().seed);
  EXPECT_EQ(ingested().manifest.scale, small_config().scale);
}

TEST(ReplayIngest, RoundTripIsByteIdentical) {
  const std::string out = "/tmp/wheels-replay-test-reexport";
  fs::remove_all(out);
  (void)measure::write_dataset(ingested().db, out, ingested().manifest);
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(bundle_dir())) {
    const fs::path name = entry.path().filename();
    EXPECT_EQ(file_text(out + "/" + name.string()), file_text(entry.path()))
        << name;
    ++files;
  }
  EXPECT_EQ(files, 15u);  // incl. link_ticks.csv: the campaign ran apps
  fs::remove_all(out);
}

TEST(ReplayIngest, MissingFileNamesTheFile) {
  const std::string dir = "/tmp/wheels-replay-test-missing";
  fs::remove_all(dir);
  fs::create_directories(dir);
  fs::copy(bundle_dir(), dir, fs::copy_options::recursive |
                                  fs::copy_options::overwrite_existing);
  fs::remove(dir + "/rtts.csv");
  try {
    (void)read_dataset(dir);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("rtts.csv"), std::string::npos)
        << e.what();
  }
  fs::remove_all(dir);
}

TEST(ReplayIngest, ParseErrorNamesTheBundlePath) {
  // In a fleet run many bundles ingest back to back; a parse error must say
  // which bundle broke, not just which table.
  const std::string dir = "/tmp/wheels-replay-test-badrow";
  fs::remove_all(dir);
  fs::create_directories(dir);
  fs::copy(bundle_dir(), dir, fs::copy_options::recursive |
                                  fs::copy_options::overwrite_existing);
  {
    std::ofstream os{dir + "/rtts.csv", std::ios::app};
    os << "garbage,row\n";
  }
  try {
    (void)read_dataset(dir);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(dir + "/rtts.csv"), std::string::npos) << what;
  }
  fs::remove_all(dir);
}

TEST(ReplayIngest, ValidationErrorNamesTheBundleDirectory) {
  const std::string dir = "/tmp/wheels-replay-test-badfk";
  fs::remove_all(dir);
  fs::create_directories(dir);
  fs::copy(bundle_dir(), dir, fs::copy_options::recursive |
                                  fs::copy_options::overwrite_existing);
  // Re-export the bundle with one KPI pointed at a nonexistent test: every
  // table still parses, but cross-table validation must fail and say which
  // bundle directory is inconsistent.
  measure::ConsolidatedDb db = ingested().db;
  ASSERT_FALSE(db.kpis.empty());
  db.kpis[0].test_id = 999999;
  {
    std::ofstream os{dir + "/kpis.csv"};
    measure::write_kpis_csv(os, db);
  }
  try {
    (void)read_dataset(dir);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(dir), std::string::npos) << what;
    EXPECT_NE(what.find("unknown test"), std::string::npos) << what;
  }
  fs::remove_all(dir);
}

TEST(ReplayIngest, DigestMismatchRejected) {
  EXPECT_THROW((void)read_dataset(bundle_dir(), "deadbeefdeadbeef"),
               std::runtime_error);
  EXPECT_NO_THROW(
      (void)read_dataset(bundle_dir(), ingested().manifest.config_digest));
}

// --- validate -------------------------------------------------------------

TEST(ReplayValidate, AcceptsARecordedDatabase) {
  EXPECT_TRUE(measure::validate(recorded_db()).empty());
}

TEST(ReplayValidate, RejectsDanglingForeignKey) {
  measure::ConsolidatedDb db = recorded_db();
  ASSERT_FALSE(db.kpis.empty());
  db.kpis[0].test_id = 999999;
  const auto violations = measure::validate(db);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("unknown test"), std::string::npos)
      << violations[0];
}

TEST(ReplayValidate, RejectsNonFiniteAndNegativeFields) {
  measure::ConsolidatedDb db = recorded_db();
  ASSERT_FALSE(db.rtts.empty());
  db.rtts[0].rtt = -5.0;
  EXPECT_FALSE(measure::validate(db).empty());
  db = recorded_db();
  db.driven_km = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(measure::validate(db).empty());
}

TEST(ReplayValidate, RejectsOverlappingCoverage) {
  measure::ConsolidatedDb db = recorded_db();
  measure::CoverageSegment s;
  s.map_km_start = 0.0;
  s.map_km_end = 1.0e9;
  s.tech = radio::Technology::Lte;
  db.active_coverage[0].push_back(s);
  EXPECT_FALSE(measure::validate(db).empty());
}

// --- TraceChannel ---------------------------------------------------------

std::vector<TraceSample> two_samples() {
  TraceSample a;
  a.t = 1000;
  a.capacity_dl = 10.0;
  a.capacity_ul = 2.0;
  a.rtt = 40.0;
  a.tech = radio::Technology::Lte;
  TraceSample b = a;
  b.t = 1500;
  b.capacity_dl = 20.0;
  b.capacity_ul = 4.0;
  b.rtt = 60.0;
  b.tech = radio::Technology::NrMid;
  return {a, b};
}

TEST(TraceChannel, HoldKeepsTheLastSample) {
  const TraceChannel ch{two_samples(), {}, HoldPolicy::Hold};
  EXPECT_EQ(ch.at(999).capacity_dl, 10.0);   // before start: first sample
  EXPECT_EQ(ch.at(1000).capacity_dl, 10.0);
  EXPECT_EQ(ch.at(1250).capacity_dl, 10.0);  // held, not interpolated
  EXPECT_EQ(ch.at(1500).capacity_dl, 20.0);
  EXPECT_EQ(ch.at(9999).capacity_dl, 20.0);  // after end: last sample
}

TEST(TraceChannel, InterpolateLerpsContinuousFields) {
  const TraceChannel ch{two_samples(), {}, HoldPolicy::Interpolate};
  const TraceSample mid = ch.at(1250);
  EXPECT_DOUBLE_EQ(mid.capacity_dl, 15.0);
  EXPECT_DOUBLE_EQ(mid.capacity_ul, 3.0);
  EXPECT_DOUBLE_EQ(mid.rtt, 50.0);
  // Discrete fields hold instead of blending.
  EXPECT_EQ(mid.tech, radio::Technology::Lte);
}

TEST(TraceChannel, KpisAtFlagsOutage) {
  std::vector<TraceSample> samples = two_samples();
  samples[0].capacity_dl = 0.0;
  samples[0].capacity_ul = 0.0;
  const TraceChannel ch{samples, {}, HoldPolicy::Hold};
  EXPECT_TRUE(ch.kpis_at(1000).outage);
  EXPECT_FALSE(ch.kpis_at(1500).outage);
}

TEST(TraceChannel, EventsInWindowCountsAndCaps) {
  ran::HandoverEvent h1;
  h1.t = 1200;
  h1.duration = 80.0;
  ran::HandoverEvent h2;
  h2.t = 1400;
  h2.duration = 900.0;  // longer than a tick
  const TraceChannel ch{two_samples(), {h1, h2}, HoldPolicy::Hold};
  const TraceEvents in = ch.events_in(1000, 500.0);
  EXPECT_EQ(in.handovers, 2);
  EXPECT_EQ(in.interruption, 500.0);  // capped at the window
  const TraceEvents none = ch.events_in(2000, 500.0);
  EXPECT_EQ(none.handovers, 0);
  EXPECT_EQ(none.interruption, 0.0);
}

TEST(TraceChannel, PerTestChannelUsesRecordedThroughputAsCapacity) {
  const measure::ConsolidatedDb& rec = recorded_db();
  const measure::TestRecord* bulk = nullptr;
  for (const auto& t : rec.tests) {
    if (t.type == measure::TestType::DownlinkBulk && !t.is_static) {
      bulk = &t;
      break;
    }
  }
  ASSERT_NE(bulk, nullptr);
  const TraceChannel ch = channel_for_test(rec, *bulk, HoldPolicy::Hold);
  ASSERT_FALSE(ch.empty());
  for (const auto& k : rec.kpis) {
    if (k.test_id != bulk->id) continue;
    EXPECT_EQ(ch.at(k.t).capacity_dl, k.throughput);
  }
}

// --- ReplayCampaign -------------------------------------------------------

TEST(ReplayCampaign_, DeterministicAcrossThreadCounts) {
  ReplayConfig one;
  one.threads = 1;
  ReplayConfig four;
  four.threads = 4;
  const measure::ConsolidatedDb a = ReplayCampaign{ingested(), one}.run();
  const measure::ConsolidatedDb b = ReplayCampaign{ingested(), four}.run();
  EXPECT_EQ(db_to_string(a), db_to_string(b));
}

TEST(ReplayCampaign_, UnchangedKnobsReproduceRecordedSummaries) {
  ReplayConfig cfg;
  cfg.threads = 1;
  const measure::ConsolidatedDb replayed =
      ReplayCampaign{ingested(), cfg}.run();

  // The radio timeline is recorded, so RTT replay is exact.
  ASSERT_EQ(replayed.rtts.size(), ingested().db.rtts.size());
  for (std::size_t i = 0; i < replayed.rtts.size(); ++i) {
    EXPECT_EQ(replayed.rtts[i].rtt, ingested().db.rtts[i].rtt);
  }
  // Bulk TCP re-runs live against the recorded capacity; its medians land
  // within tolerance of the recording.
  const ReportSummary rec = summarize(ingested().db);
  const ReportSummary rep = summarize(replayed);
  for (std::size_t ci = 0; ci < rec.carriers.size(); ++ci) {
    const auto& r = rec.carriers[ci];
    const auto& p = rep.carriers[ci];
    ASSERT_GT(r.dl_median_mbps, 0.0);
    EXPECT_NEAR(p.dl_median_mbps, r.dl_median_mbps, r.dl_median_mbps * 0.25);
    EXPECT_NEAR(p.ul_median_mbps, r.ul_median_mbps, r.ul_median_mbps * 0.25);
    // Structure is preserved exactly.
    EXPECT_EQ(p.tests, r.tests);
    EXPECT_EQ(p.kpi_samples, r.kpi_samples);
    EXPECT_EQ(p.rtt_samples, r.rtt_samples);
    EXPECT_EQ(p.app_runs, r.app_runs);
  }
  // Geometry-derived state carries over unchanged.
  EXPECT_EQ(replayed.driven_km, ingested().db.driven_km);
  for (std::size_t ci = 0; ci < radio::kCarrierCount; ++ci) {
    EXPECT_EQ(replayed.experiment_runtime[ci],
              ingested().db.experiment_runtime[ci]);
    EXPECT_EQ(replayed.active_cells[ci], ingested().db.active_cells[ci]);
  }
  // Handovers re-fire verbatim.
  EXPECT_EQ(replayed.handovers.size(), ingested().db.handovers.size());
}

TEST(ReplayCampaign_, EdgeServerSwapLowersRtts) {
  ReplayConfig base;
  base.threads = 1;
  ReplayConfig edge = base;
  edge.knobs.server = net::ServerKind::Edge;
  const measure::ConsolidatedDb a = ReplayCampaign{ingested(), base}.run();
  const measure::ConsolidatedDb b = ReplayCampaign{ingested(), edge}.run();
  const ReportSummary sa = summarize(a);
  const ReportSummary sb = summarize(b);
  for (std::size_t ci = 0; ci < sa.carriers.size(); ++ci) {
    ASSERT_GT(sa.carriers[ci].rtt_median_ms, 0.0);
    EXPECT_LT(sb.carriers[ci].rtt_median_ms, sa.carriers[ci].rtt_median_ms);
  }
  for (const auto& t : b.tests) {
    EXPECT_EQ(t.server, net::ServerKind::Edge);
  }
}

TEST(ReplayCampaign_, CongestionControlSwapChangesBulkThroughput) {
  ReplayConfig cubic;
  cubic.threads = 1;
  ReplayConfig bbr = cubic;
  bbr.knobs.cc = transport::CcAlgo::Bbr;
  const measure::ConsolidatedDb a = ReplayCampaign{ingested(), cubic}.run();
  const measure::ConsolidatedDb b = ReplayCampaign{ingested(), bbr}.run();
  ASSERT_EQ(a.kpis.size(), b.kpis.size());
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.kpis.size(); ++i) {
    if (a.kpis[i].throughput != b.kpis[i].throughput) ++differing;
  }
  EXPECT_GT(differing, a.kpis.size() / 10);
  // The knob only touches transport: RTT tests replay identically.
  ASSERT_EQ(a.rtts.size(), b.rtts.size());
  for (std::size_t i = 0; i < a.rtts.size(); ++i) {
    EXPECT_EQ(a.rtts[i].rtt, b.rtts[i].rtt);
  }
}

TEST(ReplayCampaign_, MaxTierCapDowngradesAndClamps) {
  ReplayConfig cfg;
  cfg.threads = 1;
  cfg.knobs.max_tier = radio::Technology::Lte;
  const measure::ConsolidatedDb db = ReplayCampaign{ingested(), cfg}.run();
  const int cap_tier = radio::technology_tier(radio::Technology::Lte);
  for (const auto& k : db.kpis) {
    EXPECT_LE(radio::technology_tier(k.tech), cap_tier);
    const radio::BandPlan plan = radio::band_plan(k.carrier, k.tech);
    const bool dl = k.direction == radio::Direction::Downlink;
    const Mbps ceiling =
        radio::cc_peak_rate(plan, dl) * (dl ? plan.max_cc_dl : plan.max_cc_ul);
    // Delivered throughput cannot beat the capped link's ceiling (small
    // slack for the fluid model's tick granularity).
    EXPECT_LE(k.throughput, ceiling * 1.05);
  }
  for (const auto& r : db.rtts) {
    EXPECT_LE(radio::technology_tier(r.tech), cap_tier);
  }
}

// --- external adapter -----------------------------------------------------

constexpr char kExternalTrace[] =
    "t_ms,cap_dl_mbps,cap_ul_mbps,rtt_ms,tech\n"
    "0,120.5,18.2,45,5G-mid\n"
    "500,95.0,15.0,52,5G-mid\n"
    "1000,3.1,1.0,88,LTE\n"
    "1500,140.0,20.0,41,5G-mmWave\n";

TEST(ExternalAdapter, ImportsAndReplays) {
  std::stringstream ss{kExternalTrace};
  const ReplayBundle bundle =
      import_external_trace_csv(ss, radio::Carrier::TMobile);
  EXPECT_EQ(bundle.db.tests.size(), 3u);
  EXPECT_EQ(bundle.db.kpis.size(), 8u);  // 4 ticks x {DL, UL}
  EXPECT_EQ(bundle.db.rtts.size(), 4u);
  EXPECT_TRUE(measure::validate(bundle.db).empty());

  ReplayConfig cfg;
  cfg.threads = 1;
  const measure::ConsolidatedDb replayed = ReplayCampaign{bundle, cfg}.run();
  EXPECT_EQ(replayed.kpis.size(), 8u);
  EXPECT_EQ(replayed.rtts.size(), 4u);
  for (const auto& r : replayed.rtts) {
    EXPECT_GT(r.rtt, 0.0);
  }
}

TEST(ExternalAdapter, WithoutTechColumnDefaultsToLte) {
  std::stringstream ss{
      "t_ms,cap_dl_mbps,cap_ul_mbps,rtt_ms\n"
      "0,50,5,60\n"};
  const ReplayBundle bundle =
      import_external_trace_csv(ss, radio::Carrier::Verizon);
  ASSERT_EQ(bundle.db.kpis.size(), 2u);
  EXPECT_EQ(bundle.db.kpis[0].tech, radio::Technology::Lte);
}

TEST(ExternalAdapter, MalformedRowsReportLineNumbers) {
  const auto error_of = [](const std::string& text) {
    std::stringstream ss{text};
    try {
      (void)import_external_trace_csv(ss, radio::Carrier::Verizon);
    } catch (const std::runtime_error& e) {
      return std::string{e.what()};
    }
    return std::string{};
  };
  const std::string header = "t_ms,cap_dl_mbps,cap_ul_mbps,rtt_ms\n";
  EXPECT_NE(error_of("bogus,header\n").find("line 1"), std::string::npos);
  EXPECT_NE(error_of(header + "0,50,5\n").find("line 2"), std::string::npos);
  EXPECT_NE(error_of(header + "0,nan,5,60\n").find("line 2"),
            std::string::npos);
  EXPECT_NE(error_of(header + "0,50,5,0\n").find("line 2"),
            std::string::npos);  // rtt must be > 0
  EXPECT_NE(error_of(header + "500,50,5,60\n0,50,5,60\n").find("line 3"),
            std::string::npos);  // time going backwards
  EXPECT_NE(error_of(header).find("no data rows"), std::string::npos);
}

TEST(ExternalAdapter, RejectsDuplicateTimestampsWithLineNumber) {
  std::stringstream ss{
      "t_ms,cap_dl_mbps,cap_ul_mbps,rtt_ms\n"
      "0,50,5,60\n"
      "500,52,6,58\n"
      "500,48,4,61\n"};
  try {
    (void)import_external_trace_csv(ss, radio::Carrier::Verizon);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
    EXPECT_NE(what.find("duplicate time 500"), std::string::npos) << what;
  }
}

TEST(ExternalAdapter, RejectsEmptyInput) {
  std::stringstream ss{""};
  try {
    (void)import_external_trace_csv(ss, radio::Carrier::Verizon);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 1"), std::string::npos) << what;
    EXPECT_NE(what.find("empty trace"), std::string::npos) << what;
  }
}

TEST(ExternalAdapter, AcceptsCrlfLineEndings) {
  // Windows-exported traces: CRLF on every line including the header, plus a
  // trailing bare "\r" line. Must parse identically to the LF version.
  std::stringstream crlf{
      "t_ms,cap_dl_mbps,cap_ul_mbps,rtt_ms,tech\r\n"
      "0,120.5,18.2,45,5G-mid\r\n"
      "500,95.0,15.0,52,LTE\r\n"
      "\r\n"};
  const ReplayBundle bundle =
      import_external_trace_csv(crlf, radio::Carrier::Att);
  EXPECT_EQ(bundle.db.kpis.size(), 4u);  // 2 ticks x {DL, UL}
  EXPECT_EQ(bundle.db.rtts.size(), 2u);
  EXPECT_EQ(bundle.db.kpis[0].tech, radio::Technology::NrMid);
  EXPECT_EQ(bundle.db.rtts[1].rtt, 52.0);
  EXPECT_TRUE(measure::validate(bundle.db).empty());
}

TEST(ExternalAdapter, AcceptsCommentAndBlankLines) {
  // '#' comments and blank lines are allowed anywhere — including before the
  // header — and do not shift the physical line numbers diagnostics report.
  std::stringstream ss{
      "# exported by a field logger\n"
      "\n"
      "t_ms,cap_dl_mbps,cap_ul_mbps,rtt_ms,tech\n"
      "0,120.5,18.2,45,5G-mid\n"
      "# mid-trace annotation\n"
      "500,95.0,15.0,52,LTE\n"
      "\n"};
  const ReplayBundle bundle =
      import_external_trace_csv(ss, radio::Carrier::Verizon);
  EXPECT_EQ(bundle.db.kpis.size(), 4u);  // 2 ticks x {DL, UL}
  EXPECT_EQ(bundle.db.rtts.size(), 2u);
  EXPECT_EQ(bundle.db.rtts[1].rtt, 52.0);
  EXPECT_TRUE(measure::validate(bundle.db).empty());

  // Skipped lines still count: the bad row below is physical line 6.
  std::stringstream bad{
      "# comment\n"
      "t_ms,cap_dl_mbps,cap_ul_mbps,rtt_ms\n"
      "0,50,5,60\n"
      "\n"
      "# another comment\n"
      "500,50,5,0\n"};
  try {
    (void)import_external_trace_csv(bad, radio::Carrier::Verizon);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 6"), std::string::npos) << what;
    EXPECT_NE(what.find("rtt must be > 0"), std::string::npos) << what;
  }

  // A comment-only stream has no header at all.
  std::stringstream comments_only{"# nothing here\n\n# still nothing\n"};
  try {
    (void)import_external_trace_csv(comments_only, radio::Carrier::Verizon);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("empty trace"), std::string::npos)
        << e.what();
  }
}

TEST(ExternalAdapter, FifthHeaderColumnMustBeTech) {
  std::stringstream ss{
      "t_ms,cap_dl_mbps,cap_ul_mbps,rtt_ms,band\n"
      "0,50,5,60,n77\n"};
  try {
    (void)import_external_trace_csv(ss, radio::Carrier::Verizon);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("line 1"), std::string::npos)
        << e.what();
  }
}

// --- env knobs ------------------------------------------------------------

TEST(ReplayEnv, ParsesKnobsAndIgnoresGarbage) {
  ::setenv("WHEELS_REPLAY_SEED", "123", 1);
  ::setenv("WHEELS_REPLAY_INTERP", "linear", 1);
  ::setenv("WHEELS_REPLAY_CC", "bbr", 1);
  ::setenv("WHEELS_REPLAY_SERVER", "edge", 1);
  ::setenv("WHEELS_REPLAY_MAX_TIER", "5G-mid", 1);
  ReplayConfig cfg = replay_config_from_env();
  EXPECT_EQ(cfg.seed, 123u);
  EXPECT_EQ(cfg.policy, HoldPolicy::Interpolate);
  EXPECT_EQ(cfg.knobs.cc, transport::CcAlgo::Bbr);
  EXPECT_EQ(cfg.knobs.server, net::ServerKind::Edge);
  EXPECT_EQ(cfg.knobs.max_tier, radio::Technology::NrMid);

  ::setenv("WHEELS_REPLAY_INTERP", "sideways", 1);
  ::setenv("WHEELS_REPLAY_CC", "reno", 1);
  ::setenv("WHEELS_REPLAY_SERVER", "moon", 1);
  ::setenv("WHEELS_REPLAY_MAX_TIER", "6G", 1);
  cfg = replay_config_from_env();
  EXPECT_EQ(cfg.policy, HoldPolicy::Hold);
  EXPECT_FALSE(cfg.knobs.cc.has_value());
  EXPECT_FALSE(cfg.knobs.server.has_value());
  EXPECT_FALSE(cfg.knobs.max_tier.has_value());

  ::unsetenv("WHEELS_REPLAY_SEED");
  ::unsetenv("WHEELS_REPLAY_INTERP");
  ::unsetenv("WHEELS_REPLAY_CC");
  ::unsetenv("WHEELS_REPLAY_SERVER");
  ::unsetenv("WHEELS_REPLAY_MAX_TIER");
}

}  // namespace
}  // namespace wheels::replay

#include "geo/route.hpp"

#include <gtest/gtest.h>

#include "geo/latlon.hpp"
#include "geo/scaled_route.hpp"
#include "geo/timezone.hpp"

namespace wheels::geo {
namespace {

TEST(LatLon, HaversineKnownDistances) {
  // LA ↔ Boston great-circle is ~4,170 km.
  const LatLon la{34.05, -118.24};
  const LatLon boston{42.36, -71.06};
  EXPECT_NEAR(haversine_km(la, boston), 4170.0, 50.0);
}

TEST(LatLon, HaversineZero) {
  const LatLon p{40.0, -100.0};
  EXPECT_DOUBLE_EQ(haversine_km(p, p), 0.0);
}

TEST(LatLon, HaversineSymmetric) {
  const LatLon a{34.05, -118.24}, b{36.17, -115.14};
  EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
}

TEST(Timezone, OffsetsAreDst2022) {
  EXPECT_EQ(utc_offset_minutes(Timezone::Pacific), -420);
  EXPECT_EQ(utc_offset_minutes(Timezone::Mountain), -360);
  EXPECT_EQ(utc_offset_minutes(Timezone::Central), -300);
  EXPECT_EQ(utc_offset_minutes(Timezone::Eastern), -240);
}

TEST(Timezone, CityLongitudes) {
  EXPECT_EQ(timezone_from_longitude(-118.24), Timezone::Pacific);  // LA
  EXPECT_EQ(timezone_from_longitude(-115.14), Timezone::Pacific);  // Las Vegas
  EXPECT_EQ(timezone_from_longitude(-111.89), Timezone::Mountain); // SLC
  EXPECT_EQ(timezone_from_longitude(-104.99), Timezone::Mountain); // Denver
  EXPECT_EQ(timezone_from_longitude(-95.93), Timezone::Central);   // Omaha
  EXPECT_EQ(timezone_from_longitude(-87.63), Timezone::Central);   // Chicago
  EXPECT_EQ(timezone_from_longitude(-81.69), Timezone::Eastern);   // Cleveland
  EXPECT_EQ(timezone_from_longitude(-71.06), Timezone::Eastern);   // Boston
}

TEST(Route, TotalDistanceMatchesPaper) {
  const Route r = Route::cross_country();
  EXPECT_NEAR(r.total_km(), 5711.0, 0.01);
}

TEST(Route, TenMajorCities) {
  const Route r = Route::cross_country();
  EXPECT_EQ(r.waypoints().size(), 10u);
  EXPECT_EQ(r.waypoints().front().name, "Los Angeles");
  EXPECT_EQ(r.waypoints().back().name, "Boston");
}

TEST(Route, FiveEdgeServerCities) {
  const Route r = Route::cross_country();
  int edges = 0;
  for (const auto& w : r.waypoints()) edges += w.has_edge_server;
  EXPECT_EQ(edges, 5);
}

TEST(Route, WaypointKmMonotone) {
  const Route r = Route::cross_country();
  for (std::size_t i = 0; i + 1 < r.waypoints().size(); ++i) {
    EXPECT_LT(r.city_km(i), r.city_km(i + 1));
  }
  EXPECT_DOUBLE_EQ(r.city_km(0), 0.0);
  EXPECT_NEAR(r.city_km(9), 5711.0, 0.01);
}

TEST(Route, CityCentresAreUrban) {
  const Route r = Route::cross_country();
  for (std::size_t i = 0; i < r.waypoints().size(); ++i) {
    const RoutePoint p = r.at(r.city_km(i));
    EXPECT_EQ(p.region, RegionType::Urban) << r.waypoints()[i].name;
    EXPECT_EQ(p.nearest_city, i);
    EXPECT_NEAR(p.city_distance_km, 0.0, 1e-9);
  }
}

TEST(Route, MidLegIsNotUrban) {
  const Route r = Route::cross_country();
  // Halfway between Denver and Omaha: deep in Nebraska.
  const Km mid = (r.city_km(3) + r.city_km(4)) / 2.0;
  const RoutePoint p = r.at(mid);
  EXPECT_NE(p.region, RegionType::Urban);
}

TEST(Route, SuburbanRingAroundCities) {
  const Route r = Route::cross_country();
  const RoutePoint p = r.at(r.city_km(5) + 20.0);  // 20 km past Chicago
  EXPECT_EQ(p.region, RegionType::Suburban);
}

TEST(Route, SyntheticTownsCreateSuburbanPatches) {
  const Route r = Route::cross_country();
  int suburban = 0, total = 0;
  for (Km km = 0.0; km < r.total_km(); km += 2.0) {
    const RoutePoint p = r.at(km);
    suburban += p.region == RegionType::Suburban;
    ++total;
  }
  const double share = static_cast<double>(suburban) / total;
  EXPECT_GT(share, 0.10);
  EXPECT_LT(share, 0.40);
}

TEST(Route, HighwayDominates) {
  const Route r = Route::cross_country();
  int highway = 0, total = 0;
  for (Km km = 0.0; km < r.total_km(); km += 2.0) {
    highway += r.at(km).region == RegionType::Highway;
    ++total;
  }
  EXPECT_GT(static_cast<double>(highway) / total, 0.5);
}

TEST(Route, AtClampsOutOfRange) {
  const Route r = Route::cross_country();
  EXPECT_DOUBLE_EQ(r.at(-5.0).km, 0.0);
  EXPECT_DOUBLE_EQ(r.at(1e9).km, r.total_km());
}

TEST(Route, AllFourTimezonesPresent) {
  const Route r = Route::cross_country();
  bool seen[4] = {false, false, false, false};
  for (Km km = 0.0; km < r.total_km(); km += 5.0) {
    seen[static_cast<int>(r.at(km).tz)] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Route, TimezoneMonotoneWestToEast) {
  const Route r = Route::cross_country();
  int prev = 0;
  for (Km km = 0.0; km < r.total_km(); km += 5.0) {
    const int tz = static_cast<int>(r.at(km).tz);
    EXPECT_GE(tz, prev);
    prev = tz;
  }
}

TEST(ScaledRoute, CompressesMapNotDistance) {
  const Route r = Route::cross_country();
  const ScaledRoute v{r, 0.1};
  EXPECT_NEAR(v.total_physical_km(), 571.1, 0.01);
  // End of the scaled trip is still Boston.
  const RoutePoint end = v.at_physical(v.total_physical_km());
  EXPECT_EQ(end.nearest_city, 9u);
  EXPECT_EQ(end.tz, Timezone::Eastern);
}

TEST(ScaledRoute, FullScaleMatchesRoute) {
  const Route r = Route::cross_country();
  const ScaledRoute v{r, 1.0};
  const RoutePoint a = v.at_physical(1234.0);
  const RoutePoint b = r.at(1234.0);
  EXPECT_EQ(a.region, b.region);
  EXPECT_EQ(a.tz, b.tz);
  EXPECT_DOUBLE_EQ(a.city_distance_km, b.city_distance_km);
}

TEST(ScaledRoute, CityDistanceIsPhysical) {
  const Route r = Route::cross_country();
  const ScaledRoute v{r, 0.1};
  // 1 physical km past scaled-LA is 10 map-km from the centre but the
  // physical city distance should read 1 km.
  const RoutePoint p = v.at_physical(1.0);
  EXPECT_NEAR(p.city_distance_km, 1.0, 1e-9);
}

}  // namespace
}  // namespace wheels::geo

// The determinism gate of the parallel execution layer: a campaign's
// ConsolidatedDb must be byte-identical for every thread count, and
// FleetRunner must return the same databases regardless of its own thread
// count or job submission order. Exact (==) comparison everywhere — the
// contract is "not a single byte", not "statistically close".
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "analysis/bootstrap.hpp"
#include "campaign/campaign.hpp"
#include "campaign/fleet_runner.hpp"
#include "core/thread_pool.hpp"
#include "measure/records.hpp"

namespace wheels {
namespace {

using campaign::CampaignConfig;
using campaign::DriveCampaign;
using campaign::FleetRunner;
using measure::ConsolidatedDb;

#define EXPECT_FIELD_EQ(field)                                            \
  do {                                                                    \
    EXPECT_EQ(a[i].field, b[i].field) << "record " << i << " " #field;    \
  } while (0)

void expect_tests_eq(const std::vector<measure::TestRecord>& a,
                     const std::vector<measure::TestRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FIELD_EQ(id);
    EXPECT_FIELD_EQ(type);
    EXPECT_FIELD_EQ(carrier);
    EXPECT_FIELD_EQ(is_static);
    EXPECT_FIELD_EQ(start);
    EXPECT_FIELD_EQ(end);
    EXPECT_FIELD_EQ(start_km);
    EXPECT_FIELD_EQ(end_km);
    EXPECT_FIELD_EQ(tz);
    EXPECT_FIELD_EQ(server);
    EXPECT_FIELD_EQ(direction);
    EXPECT_FIELD_EQ(cycle);
  }
}

void expect_kpis_eq(const std::vector<measure::KpiRecord>& a,
                    const std::vector<measure::KpiRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FIELD_EQ(test_id);
    EXPECT_FIELD_EQ(t);
    EXPECT_FIELD_EQ(carrier);
    EXPECT_FIELD_EQ(tech);
    EXPECT_FIELD_EQ(cell_id);
    EXPECT_FIELD_EQ(rsrp);
    EXPECT_FIELD_EQ(mcs);
    EXPECT_FIELD_EQ(bler);
    EXPECT_FIELD_EQ(ca);
    EXPECT_FIELD_EQ(throughput);
    EXPECT_FIELD_EQ(speed);
    EXPECT_FIELD_EQ(km);
    EXPECT_FIELD_EQ(map_km);
    EXPECT_FIELD_EQ(region);
    EXPECT_FIELD_EQ(handovers);
    EXPECT_FIELD_EQ(direction);
    EXPECT_FIELD_EQ(is_static);
  }
}

void expect_rtts_eq(const std::vector<measure::RttRecord>& a,
                    const std::vector<measure::RttRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FIELD_EQ(test_id);
    EXPECT_FIELD_EQ(t);
    EXPECT_FIELD_EQ(carrier);
    EXPECT_FIELD_EQ(tech);
    EXPECT_FIELD_EQ(rtt);
    EXPECT_FIELD_EQ(speed);
    EXPECT_FIELD_EQ(server);
    EXPECT_FIELD_EQ(is_static);
  }
}

void expect_handovers_eq(const std::vector<measure::HandoverRecord>& a,
                         const std::vector<measure::HandoverRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FIELD_EQ(test_id);
    EXPECT_FIELD_EQ(carrier);
    EXPECT_FIELD_EQ(direction);
    EXPECT_FIELD_EQ(event.t);
    EXPECT_FIELD_EQ(event.duration);
    EXPECT_FIELD_EQ(event.from);
    EXPECT_FIELD_EQ(event.to);
    EXPECT_FIELD_EQ(event.from_cell);
    EXPECT_FIELD_EQ(event.to_cell);
    EXPECT_FIELD_EQ(event.type);
  }
}

void expect_app_runs_eq(const std::vector<measure::AppRunRecord>& a,
                        const std::vector<measure::AppRunRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FIELD_EQ(test_id);
    EXPECT_FIELD_EQ(app);
    EXPECT_FIELD_EQ(carrier);
    EXPECT_FIELD_EQ(is_static);
    EXPECT_FIELD_EQ(server);
    EXPECT_FIELD_EQ(high_speed_5g_fraction);
    EXPECT_FIELD_EQ(handovers);
    EXPECT_FIELD_EQ(compressed);
    EXPECT_FIELD_EQ(median_e2e);
    EXPECT_FIELD_EQ(offload_fps);
    EXPECT_FIELD_EQ(map_percent);
    EXPECT_FIELD_EQ(qoe);
    EXPECT_FIELD_EQ(rebuffer_fraction);
    EXPECT_FIELD_EQ(avg_bitrate);
    EXPECT_FIELD_EQ(gaming_bitrate);
    EXPECT_FIELD_EQ(gaming_latency);
    EXPECT_FIELD_EQ(gaming_frame_drop);
    EXPECT_FIELD_EQ(gaming_max_frame_drop);
  }
}

void expect_segments_eq(const std::vector<measure::CoverageSegment>& a,
                        const std::vector<measure::CoverageSegment>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FIELD_EQ(map_km_start);
    EXPECT_FIELD_EQ(map_km_end);
    EXPECT_FIELD_EQ(tech);
  }
}

#undef EXPECT_FIELD_EQ

void expect_db_eq(const ConsolidatedDb& x, const ConsolidatedDb& y) {
  expect_tests_eq(x.tests, y.tests);
  expect_kpis_eq(x.kpis, y.kpis);
  expect_rtts_eq(x.rtts, y.rtts);
  expect_handovers_eq(x.handovers, y.handovers);
  expect_app_runs_eq(x.app_runs, y.app_runs);
  for (std::size_t ci = 0; ci < radio::kCarrierCount; ++ci) {
    EXPECT_EQ(x.passive[ci].carrier, y.passive[ci].carrier);
    EXPECT_EQ(x.passive[ci].handovers, y.passive[ci].handovers);
    EXPECT_EQ(x.passive[ci].pings, y.passive[ci].pings);
    EXPECT_EQ(x.passive[ci].cells, y.passive[ci].cells);
    expect_segments_eq(x.passive[ci].segments, y.passive[ci].segments);
    expect_segments_eq(x.active_coverage[ci], y.active_coverage[ci]);
    EXPECT_EQ(x.active_cells[ci], y.active_cells[ci]);
    EXPECT_EQ(x.experiment_runtime[ci], y.experiment_runtime[ci]);
  }
  EXPECT_EQ(x.rx_bytes, y.rx_bytes);
  EXPECT_EQ(x.tx_bytes, y.tx_bytes);
  EXPECT_EQ(x.driven_km, y.driven_km);
}

CampaignConfig small_config(double scale) {
  CampaignConfig cfg;
  cfg.seed = 777;
  cfg.scale = scale;
  return cfg;
}

TEST(CampaignParallel, DbIdenticalSerialVsFourThreadsTinyScale) {
  CampaignConfig serial = small_config(0.02);
  serial.threads = 1;
  CampaignConfig parallel = serial;
  parallel.threads = 4;

  const ConsolidatedDb a = DriveCampaign{serial}.run();
  const ConsolidatedDb b = DriveCampaign{parallel}.run();
  ASSERT_FALSE(a.kpis.empty());
  ASSERT_FALSE(a.app_runs.empty());
  expect_db_eq(a, b);
}

TEST(CampaignParallel, DbIdenticalSerialVsFourThreadsSmallScale) {
  // A bigger slice so at least one city (and its static battery) is hit.
  CampaignConfig serial = small_config(0.06);
  CampaignConfig parallel = serial;
  serial.threads = 1;
  parallel.threads = 4;

  const ConsolidatedDb a = DriveCampaign{serial}.run();
  const ConsolidatedDb b = DriveCampaign{parallel}.run();
  ASSERT_FALSE(a.tests.empty());
  expect_db_eq(a, b);
}

TEST(CampaignParallel, OversubscribedThreadCountAlsoIdentical) {
  CampaignConfig serial = small_config(0.02);
  serial.threads = 1;
  CampaignConfig wide = serial;
  wide.threads = 16;  // far more than kCarrierCount; must clamp, not skew

  expect_db_eq(DriveCampaign{serial}.run(), DriveCampaign{wide}.run());
}

TEST(FleetRunnerTest, ResultsMatchSerialLoopAndAnyThreadCount) {
  std::vector<CampaignConfig> configs;
  for (std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    CampaignConfig cfg = small_config(0.02);
    cfg.seed = seed;
    cfg.run_apps = seed % 2 == 0;
    configs.push_back(cfg);
  }

  // Ground truth: plain serial loop.
  std::vector<ConsolidatedDb> expected;
  for (const CampaignConfig& cfg : configs) {
    expected.push_back(DriveCampaign{cfg}.run());
  }

  for (const int threads : {1, 3}) {
    const std::vector<ConsolidatedDb> got =
        FleetRunner{threads}.run_all(configs);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      expect_db_eq(got[i], expected[i]);
    }
  }
}

TEST(FleetRunnerTest, SubmissionOrderPinsResultOrder) {
  std::vector<CampaignConfig> configs;
  for (std::uint64_t seed : {5u, 6u, 7u}) {
    CampaignConfig cfg = small_config(0.02);
    cfg.seed = seed;
    cfg.run_apps = false;
    configs.push_back(cfg);
  }
  std::vector<CampaignConfig> reversed{configs.rbegin(), configs.rend()};

  const FleetRunner runner{2};
  const auto fwd = runner.run_all(configs);
  const auto rev = runner.run_all(reversed);
  ASSERT_EQ(fwd.size(), rev.size());
  for (std::size_t i = 0; i < fwd.size(); ++i) {
    expect_db_eq(fwd[i], rev[rev.size() - 1 - i]);
  }
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  core::ThreadPool pool{3};
  EXPECT_EQ(pool.workers(), 3);
  std::vector<int> hits(64, 0);
  for (int round = 0; round < 5; ++round) {
    std::vector<core::ThreadPool::Task> tasks;
    for (std::size_t i = 0; i < hits.size(); ++i) {
      tasks.push_back([&hits, i] { ++hits[i]; });  // distinct slots: no race
    }
    pool.run_batch(std::move(tasks));
  }
  for (const int h : hits) EXPECT_EQ(h, 5);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInlineInOrder) {
  core::ThreadPool pool{0};
  EXPECT_EQ(pool.workers(), 0);
  std::vector<int> order;
  std::vector<core::ThreadPool::Task> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([&order, i] { order.push_back(i); });
  }
  pool.run_batch(std::move(tasks));
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPoolTest, ResolveThreadsFloorsAtOne) {
  EXPECT_EQ(core::resolve_threads(5), 5);
  EXPECT_GE(core::resolve_threads(0), 1);
}

TEST(BootstrapParallel, CiIdenticalAcrossThreadCounts) {
  std::vector<double> samples;
  Rng gen{42};
  for (int i = 0; i < 400; ++i) samples.push_back(gen.normal(50.0, 10.0));

  Rng r1{7};
  Rng r4{7};
  const auto ci1 =
      analysis::bootstrap_median_ci(samples, r1, 0.95, 500, /*threads=*/1);
  const auto ci4 =
      analysis::bootstrap_median_ci(samples, r4, 0.95, 500, /*threads=*/4);
  EXPECT_EQ(ci1.lo, ci4.lo);
  EXPECT_EQ(ci1.hi, ci4.hi);
  EXPECT_EQ(ci1.point, ci4.point);
}

}  // namespace
}  // namespace wheels

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "campaign/campaign.hpp"
#include "core/obs/manifest.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/trace_export.hpp"

namespace wheels::core::obs {
namespace {

TEST(MetricsRegistry_, CountersAccumulateAndSortByName) {
  MetricsRegistry reg;
  const MetricId b = reg.counter_id("b.count");
  const MetricId a = reg.counter_id("a.count");
  EXPECT_EQ(reg.counter_id("b.count"), b);  // idempotent
  reg.add(b);
  reg.add(a, 3);
  reg.add(b, 2);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.count");
  EXPECT_EQ(snap.counters[0].second, 3u);
  EXPECT_EQ(snap.counters[1].first, "b.count");
  EXPECT_EQ(snap.counters[1].second, 3u);
}

TEST(MetricsRegistry_, MergesThreadShards) {
  MetricsRegistry reg;
  const MetricId id = reg.counter_id("x");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&reg, id] {
      for (int i = 0; i < 1000; ++i) reg.add(id);
    });
  }
  for (auto& t : threads) t.join();
  reg.add(id);  // the snapshotting thread's own shard joins the merge too
  EXPECT_EQ(reg.snapshot().counters[0].second, 4001u);
}

TEST(MetricsRegistry_, FindCounterLocatesMergedValueOrNull) {
  MetricsRegistry reg;
  reg.add(reg.counter_id("service.cache_hits"), 7);
  reg.add(reg.counter_id("service.cache_misses"), 2);
  const auto snap = reg.snapshot();
  const std::uint64_t* hits = snap.find_counter("service.cache_hits");
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(*hits, 7u);
  EXPECT_EQ(snap.find_counter("service.never_fired"), nullptr);
}

TEST(MetricsRegistry_, SnapshotIsSafeAndConsistentDuringConcurrentAdds) {
  // wheelsd streams progress snapshots while jobs are still incrementing on
  // pool workers; snapshot() must be race-free mid-run (TSAN enforces the
  // "race-free" half under -L tsan_smoke) and every mid-run value must be a
  // plausible prefix of the final total.
  MetricsRegistry reg;
  const MetricId id = reg.counter_id("concurrent.adds");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg, id] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) reg.add(id);
    });
  }
  std::uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const auto snap = reg.snapshot();
    if (const std::uint64_t* v = snap.find_counter("concurrent.adds")) {
      EXPECT_GE(*v, last);  // monotone: shards only grow
      EXPECT_LE(*v, kThreads * kPerThread);
      last = *v;
    }
  }
  for (auto& t : writers) t.join();
  const auto final_snap = reg.snapshot();
  EXPECT_EQ(*final_snap.find_counter("concurrent.adds"),
            kThreads * kPerThread);
}

TEST(MetricsRegistry_, CounterConvenienceReportsToTheGlobalRegistry) {
  const auto value_of = [](std::string_view name) {
    for (const auto& [n, v] : MetricsRegistry::global().snapshot().counters) {
      if (n == name) return v;
    }
    return std::uint64_t{0};
  };
  const Counter counter{"test.counter_convenience"};
  const std::uint64_t before = value_of("test.counter_convenience");
  counter.add();
  counter.add(41);
  EXPECT_EQ(value_of("test.counter_convenience"), before + 42);
  // Another Counter with the same name resolves to the same metric.
  const Counter again{"test.counter_convenience"};
  again.add();
  EXPECT_EQ(value_of("test.counter_convenience"), before + 43);
}

TEST(MetricsRegistry_, HistogramBucketsByUpperBound) {
  MetricsRegistry reg;
  const double bounds[] = {1.0, 10.0, 100.0};
  const auto h = reg.histogram("lat", bounds);
  reg.observe(h, 0.5);    // bucket 0 (<= 1)
  reg.observe(h, 1.0);    // bucket 0 (upper bounds are inclusive)
  reg.observe(h, 5.0);    // bucket 1
  reg.observe(h, 1000.0); // overflow bucket
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& hs = snap.histograms[0].second;
  ASSERT_EQ(hs.counts.size(), 4u);
  EXPECT_EQ(hs.counts[0], 2u);
  EXPECT_EQ(hs.counts[1], 1u);
  EXPECT_EQ(hs.counts[2], 0u);
  EXPECT_EQ(hs.counts[3], 1u);
  EXPECT_EQ(hs.total, 4u);
}

TEST(MetricsRegistry_, ResetZeroesTotalsButKeepsIds) {
  MetricsRegistry reg;
  const MetricId id = reg.counter_id("n");
  reg.add(id, 7);
  reg.reset();
  EXPECT_EQ(reg.snapshot().counters[0].second, 0u);
  reg.add(id);
  EXPECT_EQ(reg.snapshot().counters[0].second, 1u);
}

TEST(MetricsRegistry_, RuntimeMetricsExcludedFromDeterministicJson) {
  MetricsRegistry reg;
  reg.add(reg.counter_id("pool.tasks_run"), 5);
  reg.add(reg.counter_id("rt.pool.steals"), 3);
  const auto snap = reg.snapshot();
  const std::string det = snap.to_json(false);
  EXPECT_NE(det.find("pool.tasks_run"), std::string::npos);
  EXPECT_EQ(det.find("rt.pool.steals"), std::string::npos);
  const std::string full = snap.to_json(true);
  EXPECT_NE(full.find("rt.pool.steals"), std::string::npos);
  EXPECT_TRUE(is_runtime_metric("rt.pool.steals"));
  EXPECT_FALSE(is_runtime_metric("pool.tasks_run"));
}

// The tentpole invariant, same gate pattern as test_campaign_parallel.cpp:
// for a fixed seed, the deterministic snapshot of the global registry is
// byte-identical whether the campaign ran serial or on 2 or 8 threads.
TEST(ObsDeterminism, SnapshotIdenticalAcrossThreadCounts) {
  auto run_with_threads = [](int threads) {
    MetricsRegistry::global().reset();
    campaign::CampaignConfig cfg;
    cfg.scale = 0.01;
    cfg.seed = 20220808;
    cfg.threads = threads;
    (void)campaign::DriveCampaign{cfg}.run();
    return MetricsRegistry::global().snapshot().to_json(false);
  };

  const std::string serial = run_with_threads(1);
  const std::string two = run_with_threads(2);
  const std::string eight = run_with_threads(8);

  // The campaign must actually have hit the instrumented paths, otherwise
  // this gate compares empty documents.
  EXPECT_NE(serial.find("campaign.cycles"), std::string::npos);
  EXPECT_NE(serial.find("campaign.tests"), std::string::npos);
  EXPECT_NE(serial.find("pool.tasks_run"), std::string::npos);
  EXPECT_NE(serial.find("ran.handover.attempts"), std::string::npos);
  EXPECT_NE(serial.find("ran.rrc.promotions"), std::string::npos);
  EXPECT_NE(serial.find("transport.retransmits"), std::string::npos);
  EXPECT_NE(serial.find("transport.srtt_ms"), std::string::npos);

  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
  MetricsRegistry::global().reset();
}

TEST(TraceCollector_, DisabledCollectorRecordsNothing) {
  TraceCollector tc;
  ASSERT_FALSE(tc.enabled());
  {
    ScopedSpan span{"noop", "test", tc};
  }
  EXPECT_EQ(tc.size(), 0u);
}

TEST(TraceCollector_, SpansLandInChromeTraceJson) {
  TraceCollector tc;
  tc.set_enabled(true);
  {
    ScopedSpan span{"outer", "test", tc};
    ScopedSpan inner{"inner \"quoted\"", "test", tc};
  }
  EXPECT_EQ(tc.size(), 2u);
  std::stringstream ss;
  tc.write_chrome_trace(ss);
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"outer\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  tc.clear();
  EXPECT_EQ(tc.size(), 0u);
}

TEST(RunManifest_, JsonCarriesEveryField) {
  RunManifest m = make_run_manifest();
  m.seed = 99;
  m.scale = 0.125;
  m.config_digest = "00ff00ff00ff00ff";
  m.threads = 4;
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"seed\": 99"), std::string::npos);
  EXPECT_NE(json.find("\"scale\": 0.125"), std::string::npos);
  EXPECT_NE(json.find("\"config_digest\": \"00ff00ff00ff00ff\""),
            std::string::npos);
  EXPECT_NE(json.find("\"threads\": 4"), std::string::npos);
  EXPECT_FALSE(m.library_version.empty());
  // "YYYY-MM-DD HH:MM:SS.mmm"
  EXPECT_EQ(m.started_utc.size(), 23u);
}

TEST(RunManifest_, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a 64 test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
  EXPECT_EQ(hex64(0xcbf29ce484222325ull), "cbf29ce484222325");
}

TEST(ObsSinks, FlushWritesMetricsAndTraceFiles) {
  const std::string dir = "/tmp/wheels-obs-sink-test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string metrics_path = dir + "/metrics.json";
  const std::string trace_path = dir + "/trace.json";
  setenv("WHEELS_METRICS_OUT", metrics_path.c_str(), 1);
  setenv("WHEELS_TRACE_OUT", trace_path.c_str(), 1);

  TraceCollector::global().set_enabled(true);
  { ScopedSpan span{"sink-test", "test"}; }
  flush_to_env_sinks();

  unsetenv("WHEELS_METRICS_OUT");
  unsetenv("WHEELS_TRACE_OUT");

  std::ifstream mis{metrics_path};
  ASSERT_TRUE(mis.good());
  std::stringstream mss;
  mss << mis.rdbuf();
  EXPECT_NE(mss.str().find("\"counters\""), std::string::npos);

  std::ifstream tis{trace_path};
  ASSERT_TRUE(tis.good());
  std::stringstream tss;
  tss << tis.rdbuf();
  EXPECT_NE(tss.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(tss.str().find("sink-test"), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace wheels::core::obs

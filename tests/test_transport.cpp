#include <gtest/gtest.h>

#include "transport/cubic.hpp"
#include "transport/tcp_flow.hpp"

namespace wheels::transport {
namespace {

TEST(Cubic, SlowStartDoublesPerRtt) {
  Cubic c;
  EXPECT_TRUE(c.in_slow_start());
  const double w0 = c.cwnd_segments();
  // One RTT's worth of ACKs ≈ cwnd segments → window doubles.
  c.on_ack(w0, 50.0, 50.0);
  EXPECT_NEAR(c.cwnd_segments(), 2.0 * w0, 1e-9);
}

TEST(Cubic, LossMultiplicativeDecrease) {
  Cubic c;
  for (int i = 0; i < 10; ++i) c.on_ack(c.cwnd_segments(), 50.0, i * 50.0);
  const double before = c.cwnd_segments();
  c.on_loss(500.0);
  EXPECT_NEAR(c.cwnd_segments(), before * Cubic::kBeta, 1e-9);
  EXPECT_FALSE(c.in_slow_start());
}

TEST(Cubic, CwndNeverBelowMinimum) {
  Cubic c;
  for (int i = 0; i < 50; ++i) c.on_loss(i * 10.0);
  EXPECT_GE(c.cwnd_segments(), Cubic::kMinCwnd);
}

TEST(Cubic, ConcaveRecoveryTowardWmax) {
  Cubic c;
  for (int i = 0; i < 12; ++i) c.on_ack(c.cwnd_segments(), 50.0, i * 50.0);
  const double w_max = c.cwnd_segments();
  c.on_loss(600.0);
  // Drive ACKs for a while: window should approach w_max again but not
  // wildly overshoot quickly.
  Millis now = 600.0;
  for (int i = 0; i < 200; ++i) {
    now += 50.0;
    c.on_ack(c.cwnd_segments(), 50.0, now);
  }
  EXPECT_GT(c.cwnd_segments(), 0.9 * w_max);
}

TEST(Cubic, GrowthIsSlowerRightAfterLoss) {
  Cubic c;
  for (int i = 0; i < 12; ++i) c.on_ack(c.cwnd_segments(), 50.0, i * 50.0);
  c.on_loss(600.0);
  const double just_after = c.cwnd_segments();
  c.on_ack(just_after, 50.0, 650.0);
  const double growth_early = c.cwnd_segments() - just_after;
  // Growth in one RTT right after loss is small relative to the window.
  EXPECT_LT(growth_early, 0.35 * just_after);
}

TEST(TcpFlow, SaturatesStableLink) {
  TcpBulkFlow flow{50.0, Rng{41}};
  // Warm up past slow start.
  for (int i = 0; i < 20; ++i) flow.advance(100.0, 500.0);
  double delivered = 0.0;
  constexpr int n = 40;
  for (int i = 0; i < n; ++i) delivered += flow.advance(100.0, 500.0);
  const Mbps rate = delivered * 8.0 / 1e6 / (n * 0.5);
  EXPECT_GT(rate, 85.0);
  EXPECT_LE(rate, 100.5);
}

TEST(TcpFlow, SlowStartRampVisibleInFirstSamples) {
  TcpBulkFlow flow{60.0, Rng{42}};
  const double first = flow.advance(500.0, 500.0);
  double later = 0.0;
  for (int i = 0; i < 20; ++i) later = flow.advance(500.0, 500.0);
  EXPECT_LT(first, later);
}

TEST(TcpFlow, TracksCapacityDrops) {
  TcpBulkFlow flow{50.0, Rng{43}};
  for (int i = 0; i < 20; ++i) flow.advance(200.0, 500.0);
  // Capacity collapses to 2 Mbps (outage).
  double low = 0.0;
  for (int i = 0; i < 20; ++i) low += flow.advance(2.0, 500.0);
  const Mbps low_rate = low * 8.0 / 1e6 / 10.0;
  EXPECT_LT(low_rate, 4.0);
  // And recovers.
  double high = 0.0;
  for (int i = 0; i < 40; ++i) high += flow.advance(200.0, 500.0);
  const Mbps high_rate = high * 8.0 / 1e6 / 20.0;
  EXPECT_GT(high_rate, 100.0);
}

TEST(TcpFlow, BufferbloatInflatesQueueDelay) {
  TcpBulkFlow flow{50.0, Rng{44}};
  for (int i = 0; i < 30; ++i) flow.advance(50.0, 500.0);
  // Squeeze the link: the standing queue drains slowly → queueing delay.
  for (int i = 0; i < 4; ++i) flow.advance(1.0, 500.0);
  EXPECT_GT(flow.queue_delay(), 100.0);
  EXPECT_GT(flow.srtt(), flow.queue_delay());
}

TEST(TcpFlow, ZeroCapacityStallsWithoutNan) {
  TcpBulkFlow flow{50.0, Rng{45}};
  for (int i = 0; i < 10; ++i) flow.advance(100.0, 500.0);
  for (int i = 0; i < 10; ++i) {
    const double d = flow.advance(0.0, 500.0);
    EXPECT_DOUBLE_EQ(d, 0.0);
  }
  EXPECT_TRUE(std::isfinite(flow.queue_delay()));
  // Recovery still works.
  double rec = 0.0;
  for (int i = 0; i < 30; ++i) rec += flow.advance(100.0, 500.0);
  EXPECT_GT(rec, 0.0);
}

TEST(TcpFlow, DeliveredAccountingConsistent) {
  TcpBulkFlow flow{40.0, Rng{46}};
  double sum = 0.0;
  for (int i = 0; i < 25; ++i) sum += flow.advance(80.0, 500.0);
  EXPECT_NEAR(sum, flow.total_delivered_bytes(), 1e-6);
}

TEST(TcpFlow, Deterministic) {
  TcpBulkFlow a{40.0, Rng{47}};
  TcpBulkFlow b{40.0, Rng{47}};
  for (int i = 0; i < 30; ++i) {
    EXPECT_DOUBLE_EQ(a.advance(120.0, 500.0), b.advance(120.0, 500.0));
  }
}

TEST(TcpFlow, HigherRttSlowsRamp) {
  TcpBulkFlow fast{20.0, Rng{48}};
  TcpBulkFlow slow{200.0, Rng{48}};
  // Compare the slow-start phase only: within ~1.5 s the short-RTT flow has
  // finished ramping while the long-RTT flow is still doubling.
  double fast_sum = 0.0, slow_sum = 0.0;
  for (int i = 0; i < 3; ++i) {
    fast_sum += fast.advance(300.0, 500.0);
    slow_sum += slow.advance(300.0, 500.0);
  }
  EXPECT_GT(fast_sum, 1.5 * slow_sum);
}

class TcpFlowSweep : public ::testing::TestWithParam<double> {};

TEST_P(TcpFlowSweep, UtilizationReasonableAcrossCapacities) {
  const Mbps cap = GetParam();
  TcpBulkFlow flow{60.0, Rng{49}};
  for (int i = 0; i < 30; ++i) flow.advance(cap, 500.0);
  double sum = 0.0;
  constexpr int n = 60;
  for (int i = 0; i < n; ++i) sum += flow.advance(cap, 500.0);
  const Mbps rate = sum * 8.0 / 1e6 / (n * 0.5);
  EXPECT_GT(rate, 0.6 * cap);
  EXPECT_LE(rate, 1.02 * cap);
}

INSTANTIATE_TEST_SUITE_P(Capacities, TcpFlowSweep,
                         ::testing::Values(1.0, 5.0, 20.0, 100.0, 400.0,
                                           1500.0));

}  // namespace
}  // namespace wheels::transport

// Unit tests of the per-cell MAC scheduler (ran/scheduler.hpp): exact
// capacity conservation ("to the byte"), RR's equal split, PF's preference
// for starved UEs, and the fairness-index contrast between the two
// disciplines when served-rate averages start skewed.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "ran/scheduler.hpp"

namespace wheels::ran {
namespace {

/// One 500 ms tick turns 1 Mbps into 62,500 bytes; an allocation error below
/// 1 / kBytesPerMbpsTick Mbps is therefore less than one byte per tick.
constexpr double kBytesPerMbpsTick = 62500.0;

std::vector<std::uint32_t> iota_members(std::size_t n) {
  std::vector<std::uint32_t> m(n);
  std::iota(m.begin(), m.end(), 0u);
  return m;
}

double run_once(SchedulerKind kind, double capacity,
                const std::vector<double>& demand,
                const std::vector<double>& avg, std::vector<double>& alloc) {
  const auto members = iota_members(demand.size());
  alloc.assign(demand.size(), -1.0);
  SchedulerScratch scratch;
  schedule_cell(kind, capacity, members, demand, avg, alloc, scratch);
  return std::accumulate(alloc.begin(), alloc.end(), 0.0);
}

TEST(SchedulerTest, ConservesCapacityToTheByte) {
  // Skewed demands around a capacity that cannot satisfy everyone.
  const std::vector<double> demand{0.3, 41.7, 3.14159, 120.0, 0.0, 7.5, 55.5};
  const std::vector<double> avg{1.0, 10.0, 0.5, 30.0, 2.0, 0.001, 12.0};
  const double total_demand =
      std::accumulate(demand.begin(), demand.end(), 0.0);

  for (const SchedulerKind kind :
       {SchedulerKind::ProportionalFair, SchedulerKind::RoundRobin}) {
    for (const double capacity : {1.0, 17.3, 100.0, 500.0}) {
      std::vector<double> alloc;
      const double total = run_once(kind, capacity, demand, avg, alloc);
      const double expected = std::min(capacity, total_demand);
      EXPECT_NEAR(total, expected, 1.0 / kBytesPerMbpsTick)
          << scheduler_kind_name(kind) << " capacity " << capacity;
      for (std::size_t i = 0; i < demand.size(); ++i) {
        EXPECT_GE(alloc[i], 0.0);
        EXPECT_LE(alloc[i], demand[i] + 1e-12);
      }
    }
  }
}

TEST(SchedulerTest, SatisfiedDemandsAreMetVerbatim) {
  // Capacity above total demand: every allocation must equal its demand
  // exactly (no rounding drift on the satisfied path).
  const std::vector<double> demand{0.125, 2.5, 10.0, 0.0625};
  const std::vector<double> avg{1.0, 1.0, 1.0, 1.0};
  for (const SchedulerKind kind :
       {SchedulerKind::ProportionalFair, SchedulerKind::RoundRobin}) {
    std::vector<double> alloc;
    run_once(kind, 1000.0, demand, avg, alloc);
    for (std::size_t i = 0; i < demand.size(); ++i) {
      EXPECT_EQ(alloc[i], demand[i]);
    }
  }
}

TEST(SchedulerTest, RoundRobinSplitsEquallyAmongBacklogged) {
  // All four UEs want more than a quarter of the cell: equal split.
  const std::vector<double> demand{50.0, 60.0, 70.0, 80.0};
  const std::vector<double> avg{0.1, 1.0, 10.0, 100.0};  // RR must ignore it
  std::vector<double> alloc;
  run_once(SchedulerKind::RoundRobin, 40.0, demand, avg, alloc);
  for (const double a : alloc) EXPECT_NEAR(a, 10.0, 1e-12);
}

TEST(SchedulerTest, RoundRobinRedistributesLeftovers) {
  // UE 0 saturates below the fair share; its leftover goes to the others.
  const std::vector<double> demand{2.0, 100.0, 100.0};
  const std::vector<double> avg{1.0, 1.0, 1.0};
  std::vector<double> alloc;
  run_once(SchedulerKind::RoundRobin, 30.0, demand, avg, alloc);
  EXPECT_DOUBLE_EQ(alloc[0], 2.0);
  EXPECT_DOUBLE_EQ(alloc[1], 14.0);
  EXPECT_DOUBLE_EQ(alloc[2], 14.0);
}

TEST(SchedulerTest, ProportionalFairFavorsStarvedUe) {
  // Equal demands, skewed histories: the starved UE (tiny average) must
  // receive strictly more than the well-served one; RR gives them the same.
  const std::vector<double> demand{100.0, 100.0};
  const std::vector<double> avg{0.1, 20.0};
  std::vector<double> pf_alloc;
  std::vector<double> rr_alloc;
  run_once(SchedulerKind::ProportionalFair, 30.0, demand, avg, pf_alloc);
  run_once(SchedulerKind::RoundRobin, 30.0, demand, avg, rr_alloc);
  EXPECT_GT(pf_alloc[0], pf_alloc[1]);
  EXPECT_DOUBLE_EQ(rr_alloc[0], rr_alloc[1]);
  // PF weights are 1/avg, so the one-tick split follows the inverse
  // averages: UE 0 gets avg1/(avg0+avg1) of the cell.
  EXPECT_NEAR(pf_alloc[0], 30.0 * (20.0 / 20.1), 1e-9);
}

TEST(SchedulerTest, ZeroDemandMembersGetNothing) {
  const std::vector<double> demand{0.0, 10.0, 0.0};
  const std::vector<double> avg{1.0, 1.0, 1.0};
  std::vector<double> alloc;
  run_once(SchedulerKind::ProportionalFair, 5.0, demand, avg, alloc);
  EXPECT_EQ(alloc[0], 0.0);
  EXPECT_EQ(alloc[2], 0.0);
  EXPECT_DOUBLE_EQ(alloc[1], 5.0);
}

TEST(SchedulerTest, ZeroCapacityAllocatesNothing) {
  const std::vector<double> demand{10.0, 20.0};
  const std::vector<double> avg{1.0, 1.0};
  for (const SchedulerKind kind :
       {SchedulerKind::ProportionalFair, SchedulerKind::RoundRobin}) {
    std::vector<double> alloc;
    const double total = run_once(kind, 0.0, demand, avg, alloc);
    EXPECT_EQ(total, 0.0);
  }
}

TEST(SchedulerTest, EmptyCellIsANoOp) {
  std::vector<double> alloc;
  SchedulerScratch scratch;
  schedule_cell(SchedulerKind::ProportionalFair, 100.0, {}, {}, {}, alloc,
                scratch);
  EXPECT_TRUE(alloc.empty());
}

TEST(SchedulerTest, PfConvergesFasterThanRrUnderSkewedHistory) {
  // Run both disciplines for 50 ticks from the same skewed served-rate
  // averages, with every UE demanding more than its share, folding each
  // tick's allocation into the EWMA exactly as the UE pool does. PF
  // compensates the starved UEs, so its averages must end *more* equal
  // (higher Jain index) than RR's, which ignores history entirely.
  const std::vector<double> demand{100.0, 100.0, 100.0, 100.0};
  const double capacity = 40.0;
  const double alpha = 0.1;
  const std::vector<double> initial_avg{0.1, 1.0, 5.0, 20.0};

  auto run = [&](SchedulerKind kind) {
    std::vector<double> avg = initial_avg;
    std::vector<double> alloc;
    SchedulerScratch scratch;
    const auto members = iota_members(demand.size());
    for (int t = 0; t < 50; ++t) {
      alloc.assign(demand.size(), 0.0);
      schedule_cell(kind, capacity, members, demand, avg, alloc, scratch);
      for (std::size_t i = 0; i < avg.size(); ++i) {
        avg[i] = (1.0 - alpha) * avg[i] + alpha * alloc[i];
      }
    }
    return jain_fairness(avg);
  };

  const double pf_jain = run(SchedulerKind::ProportionalFair);
  const double rr_jain = run(SchedulerKind::RoundRobin);
  EXPECT_GT(pf_jain, rr_jain);
  EXPECT_GT(pf_jain, 0.99);  // PF has equalised the averages by tick 50
}

TEST(SchedulerTest, JainFairnessIndex) {
  const std::vector<double> equal{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(jain_fairness(equal), 1.0);
  const std::vector<double> one_hot{10.0, 0.0, 0.0};
  // Zero entries are excluded (idle UEs are not unfairness).
  EXPECT_DOUBLE_EQ(jain_fairness(one_hot), 1.0);
  const std::vector<double> skewed{1.0, 3.0};
  EXPECT_DOUBLE_EQ(jain_fairness(skewed), 16.0 / 20.0);
  EXPECT_DOUBLE_EQ(jain_fairness(std::span<const double>{}), 1.0);
}

TEST(SchedulerTest, KindNamesRoundTrip) {
  EXPECT_EQ(parse_scheduler_kind("pf"), SchedulerKind::ProportionalFair);
  EXPECT_EQ(parse_scheduler_kind("rr"), SchedulerKind::RoundRobin);
  EXPECT_EQ(parse_scheduler_kind("proportional-fair"),
            SchedulerKind::ProportionalFair);
  EXPECT_EQ(parse_scheduler_kind("round-robin"), SchedulerKind::RoundRobin);
  EXPECT_EQ(parse_scheduler_kind("fifo"), std::nullopt);
  EXPECT_EQ(scheduler_kind_name(SchedulerKind::ProportionalFair), "pf");
  EXPECT_EQ(scheduler_kind_name(SchedulerKind::RoundRobin), "rr");
}

}  // namespace
}  // namespace wheels::ran

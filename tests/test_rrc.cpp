#include <gtest/gtest.h>

#include "ran/rrc.hpp"

namespace wheels::ran {
namespace {

TEST(Rrc, StartsIdleAndPromotesOnFirstPacket) {
  RrcMachine rrc{Rng{1}};
  EXPECT_EQ(rrc.state_at(0), RrcState::Idle);
  const Millis delay = rrc.on_traffic(0);
  EXPECT_GT(delay, 50.0);
  EXPECT_LT(delay, 1'000.0);
  EXPECT_EQ(rrc.state_at(0), RrcState::Connected);
}

TEST(Rrc, KeepAliveCadenceNeverPromotes) {
  // The paper's 200 ms ping cadence exists exactly to keep the radio awake.
  RrcMachine rrc{Rng{2}};
  (void)rrc.on_traffic(0);
  for (SimMillis t = 200; t < 600'000; t += 200) {
    EXPECT_DOUBLE_EQ(rrc.on_traffic(t), 0.0) << "t=" << t;
  }
}

TEST(Rrc, IdleGapTriggersPromotion) {
  RrcMachine rrc{Rng{3}};
  (void)rrc.on_traffic(0);
  EXPECT_DOUBLE_EQ(rrc.on_traffic(5'000), 0.0);
  // 15 s of silence exceeds the 10 s inactivity timer.
  EXPECT_GT(rrc.on_traffic(20'000), 0.0);
  // And we are connected again afterwards.
  EXPECT_DOUBLE_EQ(rrc.on_traffic(20'200), 0.0);
}

TEST(Rrc, StateAtRespectsTimeout) {
  RrcMachine rrc{Rng{4}, 2'000.0};
  (void)rrc.on_traffic(1'000);
  EXPECT_EQ(rrc.state_at(2'500), RrcState::Connected);
  EXPECT_EQ(rrc.state_at(3'500), RrcState::Idle);
}

TEST(Rrc, PromotionDelayDistribution) {
  Rng rng{5};
  std::vector<double> xs(4001);
  for (auto& x : xs) x = RrcMachine::sample_promotion_delay(rng);
  std::nth_element(xs.begin(), xs.begin() + 2000, xs.end());
  EXPECT_NEAR(xs[2000], 180.0, 20.0);
}

TEST(Rrc, CustomTimeout) {
  RrcMachine rrc{Rng{6}, 500.0};
  EXPECT_DOUBLE_EQ(rrc.inactivity_timeout(), 500.0);
  (void)rrc.on_traffic(0);
  EXPECT_GT(rrc.on_traffic(1'000), 0.0);  // 1 s gap > 0.5 s timeout
}

}  // namespace
}  // namespace wheels::ran

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "geo/drive_trace.hpp"
#include "geo/scaled_route.hpp"
#include "radio/deployment.hpp"
#include "ran/handover.hpp"
#include "ran/service_policy.hpp"
#include "ran/session.hpp"

namespace wheels::ran {
namespace {

using radio::Carrier;
using radio::Technology;

const std::vector<Technology> kAllAvailable{
    Technology::Lte, Technology::LteA, Technology::NrLow, Technology::NrMid,
    Technology::NrMmWave};

double selection_rate(Carrier c, TrafficProfile traffic, Technology want,
                      geo::Timezone tz = geo::Timezone::Central,
                      int n = 4000) {
  Rng rng{55};
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    hits += select_technology(c, kAllAvailable, traffic, tz, rng) == want;
  }
  return static_cast<double>(hits) / n;
}

TEST(ServicePolicy, IdlePingStaysOn4G) {
  // AT&T never upgrades idle UEs (Fig. 1d: LTE/LTE-A only).
  EXPECT_DOUBLE_EQ(selection_rate(Carrier::Att, TrafficProfile::IdlePing,
                                  Technology::LteA),
                   1.0);
  // Verizon idles on 4G almost always.
  EXPECT_GT(selection_rate(Carrier::Verizon, TrafficProfile::IdlePing,
                           Technology::LteA),
            0.85);
}

TEST(ServicePolicy, TMobileIdlePolicyDiffersEastWest) {
  // Fig. 1c vs 1f: passive and active views agree in the east only.
  const double east = selection_rate(Carrier::TMobile, TrafficProfile::IdlePing,
                                     Technology::NrMid, geo::Timezone::Eastern);
  const double west = selection_rate(Carrier::TMobile, TrafficProfile::IdlePing,
                                     Technology::NrMid, geo::Timezone::Pacific);
  EXPECT_GT(east, 0.5);
  EXPECT_LT(west, 0.15);
}

TEST(ServicePolicy, BackloggedDownlinkGrabsTopTier) {
  for (Carrier c : radio::kAllCarriers) {
    EXPECT_GT(selection_rate(c, TrafficProfile::BackloggedDownlink,
                             Technology::NrMmWave),
              0.9);
  }
}

TEST(ServicePolicy, UplinkPrefersLowerTiersThanDownlink) {
  for (Carrier c : radio::kAllCarriers) {
    const double dl_hs =
        selection_rate(c, TrafficProfile::BackloggedDownlink,
                       Technology::NrMmWave) +
        selection_rate(c, TrafficProfile::BackloggedDownlink,
                       Technology::NrMid);
    const double ul_hs =
        selection_rate(c, TrafficProfile::BackloggedUplink,
                       Technology::NrMmWave) +
        selection_rate(c, TrafficProfile::BackloggedUplink, Technology::NrMid);
    EXPECT_LT(ul_hs, dl_hs) << radio::carrier_name(c);
  }
}

TEST(ServicePolicy, FallsBackToBest4G) {
  Rng rng{56};
  const std::vector<Technology> only4g{Technology::Lte, Technology::LteA};
  EXPECT_EQ(select_technology(Carrier::Verizon, only4g,
                              TrafficProfile::BackloggedDownlink,
                              geo::Timezone::Central, rng),
            Technology::LteA);
  const std::vector<Technology> only_lte{Technology::Lte};
  EXPECT_EQ(select_technology(Carrier::Verizon, only_lte,
                              TrafficProfile::BackloggedDownlink,
                              geo::Timezone::Central, rng),
            Technology::Lte);
}

TEST(Handover, Classification) {
  EXPECT_EQ(classify_handover(Technology::Lte, Technology::LteA),
            HandoverType::FourToFour);
  EXPECT_EQ(classify_handover(Technology::LteA, Technology::NrMid),
            HandoverType::FourToFive);
  EXPECT_EQ(classify_handover(Technology::NrMmWave, Technology::Lte),
            HandoverType::FiveToFour);
  EXPECT_EQ(classify_handover(Technology::NrLow, Technology::NrMid),
            HandoverType::FiveToFive);
  EXPECT_TRUE(is_vertical(HandoverType::FourToFive));
  EXPECT_TRUE(is_vertical(HandoverType::FiveToFour));
  EXPECT_FALSE(is_vertical(HandoverType::FourToFour));
  EXPECT_FALSE(is_vertical(HandoverType::FiveToFive));
}

TEST(Handover, DurationMediansMatchPaper) {
  // Fig. 11b medians: 53/76/58 ms DL, 49/75/57 ms UL.
  struct Case {
    Carrier c;
    radio::Direction d;
    double median;
  };
  const Case cases[] = {
      {Carrier::Verizon, radio::Direction::Downlink, 53.0},
      {Carrier::TMobile, radio::Direction::Downlink, 76.0},
      {Carrier::Att, radio::Direction::Downlink, 58.0},
      {Carrier::Verizon, radio::Direction::Uplink, 49.0},
      {Carrier::TMobile, radio::Direction::Uplink, 75.0},
      {Carrier::Att, radio::Direction::Uplink, 57.0},
  };
  for (const Case& k : cases) {
    Rng rng{57};
    std::vector<double> xs(8001);
    for (auto& x : xs) {
      x = sample_handover_duration(k.c, k.d, false, rng);
    }
    std::nth_element(xs.begin(), xs.begin() + 4000, xs.end());
    EXPECT_NEAR(xs[4000], k.median, k.median * 0.06)
        << radio::carrier_name(k.c);
  }
}

TEST(Handover, VerticalTakesLonger) {
  Rng rng{58};
  double h = 0.0, v = 0.0;
  constexpr int n = 4000;
  for (int i = 0; i < n; ++i) {
    h += sample_handover_duration(Carrier::Verizon, radio::Direction::Downlink,
                                  false, rng);
    v += sample_handover_duration(Carrier::Verizon, radio::Direction::Downlink,
                                  true, rng);
  }
  EXPECT_GT(v / n, 1.2 * (h / n));
}

class SessionTest : public ::testing::Test {
 protected:
  SessionTest()
      : route_(geo::Route::cross_country()),
        view_(route_, kScale),
        deployment_(view_, Carrier::TMobile, Rng{200}.fork("deploy")) {}

  static constexpr double kScale = 0.05;
  geo::Route route_;
  geo::ScaledRoute view_;
  radio::Deployment deployment_;
};

TEST_F(SessionTest, TicksProduceValidState) {
  RadioSession session{deployment_, TrafficProfile::BackloggedDownlink,
                       Rng{201}};
  geo::DriveTraceConfig cfg;
  cfg.scale = kScale;
  geo::DriveTraceGenerator gen{route_, cfg, Rng{202}};
  int n = 0;
  while (auto s = gen.next()) {
    const RadioTick tick = session.tick(*s, 500.0);
    EXPECT_GT(tick.cell_id, 0u);
    EXPECT_GE(tick.kpis.capacity_dl, 0.0);
    EXPECT_LE(tick.interruption, 500.0);
    if (++n > 30'000) break;
  }
  EXPECT_GT(n, 1000);
}

TEST_F(SessionTest, HandoverRatePerMileIsPlausible) {
  RadioSession session{deployment_, TrafficProfile::BackloggedDownlink,
                       Rng{203}};
  geo::DriveTraceConfig cfg;
  cfg.scale = kScale;
  geo::DriveTraceGenerator gen{route_, cfg, Rng{204}};
  int hos = 0;
  Km first = -1.0, last = 0.0;
  while (auto s = gen.next()) {
    if (first < 0.0) first = s->km;
    last = s->km;
    hos += static_cast<int>(session.tick(*s, 500.0).handovers.size());
  }
  const double miles = (last - first) * kMilesPerKm;
  const double per_mile = hos / miles;
  // Fig. 11a: median 1-3 per mile; allow a generous band for the mean.
  EXPECT_GT(per_mile, 0.3);
  EXPECT_LT(per_mile, 8.0);
}

TEST_F(SessionTest, HandoversChangeCell) {
  RadioSession session{deployment_, TrafficProfile::BackloggedDownlink,
                       Rng{205}};
  geo::DriveTraceConfig cfg;
  cfg.scale = kScale;
  geo::DriveTraceGenerator gen{route_, cfg, Rng{206}};
  std::uint32_t prev_cell = 0;
  while (auto s = gen.next()) {
    const RadioTick tick = session.tick(*s, 500.0);
    for (const HandoverEvent& ho : tick.handovers) {
      EXPECT_NE(ho.from_cell, ho.to_cell);
      EXPECT_GT(ho.duration, 0.0);
      // Serving-cell changes (target id == new serving cell) must leave the
      // previous serving cell; anchor/sector events carry their own ids.
      if (ho.to_cell == tick.cell_id && prev_cell != 0) {
        EXPECT_EQ(ho.from_cell, prev_cell);
      }
    }
    prev_cell = tick.cell_id;
  }
}

TEST_F(SessionTest, BackloggedDownlinkSees5GMoreThanIdle) {
  geo::DriveTraceConfig cfg;
  cfg.scale = kScale;

  auto five_g_share = [&](TrafficProfile traffic, std::uint64_t seed) {
    RadioSession session{deployment_, traffic, Rng{seed}};
    geo::DriveTraceGenerator gen{route_, cfg, Rng{207}};
    int n5 = 0, n = 0;
    while (auto s = gen.next()) {
      n5 += radio::is_5g(session.tick(*s, 500.0).tech);
      ++n;
    }
    return static_cast<double>(n5) / n;
  };

  const double active = five_g_share(TrafficProfile::BackloggedDownlink, 208);
  const double idle = five_g_share(TrafficProfile::IdlePing, 209);
  EXPECT_GT(active, idle + 0.15);  // the Fig. 1 disparity
  EXPECT_GT(active, 0.4);          // T-Mobile ≈68% 5G under load
}

TEST_F(SessionTest, InterruptionSuppressesCapacity) {
  RadioSession session{deployment_, TrafficProfile::BackloggedDownlink,
                       Rng{210}};
  geo::DriveTraceConfig cfg;
  cfg.scale = kScale;
  geo::DriveTraceGenerator gen{route_, cfg, Rng{211}};
  // On ticks with a long interruption, capacity is scaled down; verify the
  // arithmetic never produces negative capacity.
  while (auto s = gen.next()) {
    const RadioTick t = session.tick(*s, 500.0);
    EXPECT_GE(t.kpis.capacity_dl, 0.0);
    EXPECT_GE(t.kpis.capacity_ul, 0.0);
  }
}

TEST_F(SessionTest, StaticSessionPrefersMmWaveOverMid) {
  // Verizon downtown LA should usually have an mmWave site.
  radio::Deployment vz{view_, Carrier::Verizon, Rng{212}.fork("deploy")};
  int mmwave = 0, any = 0;
  for (std::size_t city = 0; city < route_.waypoints().size(); ++city) {
    // Search radius is physical km: cell geometry does not shrink with the
    // map scale, so neither should the search.
    auto s = StaticSession::try_create(vz, view_.physical_city_km(city), 10.0,
                                       Rng{213});
    if (s.has_value()) {
      ++any;
      mmwave += s->tech() == Technology::NrMmWave;
      const RadioTick tick = s->tick(500.0);
      EXPECT_TRUE(radio::is_high_speed_5g(tick.tech));
      EXPECT_GT(tick.kpis.capacity_dl, 0.0);
    }
  }
  EXPECT_GT(any, 2);
}

TEST_F(SessionTest, StaticSessionRespectsSearchRadius) {
  // A zero search radius cannot find a site unless one sits exactly at the
  // city centre.
  auto s = StaticSession::try_create(deployment_, 1e7, 1.0, Rng{214});
  EXPECT_FALSE(s.has_value());
}

TEST_F(SessionTest, TrafficSwitchTriggersReevaluation) {
  RadioSession session{deployment_, TrafficProfile::IdlePing, Rng{215}};
  geo::DriveTraceConfig cfg;
  cfg.scale = kScale;
  geo::DriveTraceGenerator gen{route_, cfg, Rng{216}};
  // Warm up on idle.
  for (int i = 0; i < 200; ++i) {
    auto s = gen.next();
    ASSERT_TRUE(s.has_value());
    session.tick(*s, 500.0);
  }
  session.set_traffic(TrafficProfile::BackloggedDownlink);
  EXPECT_EQ(session.traffic(), TrafficProfile::BackloggedDownlink);
  int n5 = 0, n = 0;
  while (auto s = gen.next()) {
    n5 += radio::is_5g(session.tick(*s, 500.0).tech);
    if (++n > 5000) break;
  }
  EXPECT_GT(static_cast<double>(n5) / n, 0.3);
}

}  // namespace
}  // namespace wheels::ran

#include "core/units.hpp"

#include <gtest/gtest.h>

#include "core/math_util.hpp"

namespace wheels {
namespace {

TEST(Units, MphKmhRoundTrip) {
  EXPECT_NEAR(mph_from_kmh(kmh_from_mph(60.0)), 60.0, 1e-9);
  EXPECT_NEAR(kmh_from_mph(60.0), 96.56, 0.01);
}

TEST(Units, KmPerMsAtHighwaySpeed) {
  // 60 mph ≈ 96.56 km/h ≈ 0.0268 m/ms → over 500 ms ≈ 13.4 m.
  EXPECT_NEAR(km_per_ms_from_mph(60.0) * 500.0, 0.01341, 0.0001);
}

TEST(Units, MegabytesTransferred) {
  // 80 Mbps for 1 s = 10 MB.
  EXPECT_NEAR(megabytes_transferred(80.0, 1000.0), 10.0, 1e-9);
}

TEST(Units, TransferTime) {
  // 1 MB at 8 Mbps = 1 s.
  EXPECT_NEAR(transfer_time_ms(1e6, 8.0), 1000.0, 1e-6);
}

TEST(Units, TransferTimeZeroRateIsFiniteAndHuge) {
  const Millis t = transfer_time_ms(1e6, 0.0);
  EXPECT_GT(t, 1e9);
  EXPECT_TRUE(std::isfinite(t));
}

TEST(MathUtil, DbRoundTrip) {
  EXPECT_NEAR(linear_to_db(db_to_linear(13.0)), 13.0, 1e-9);
  EXPECT_NEAR(db_to_linear(0.0), 1.0, 1e-12);
  EXPECT_NEAR(db_to_linear(10.0), 10.0, 1e-9);
}

TEST(MathUtil, LerpAndInverse) {
  EXPECT_DOUBLE_EQ(lerp(2.0, 6.0, 0.25), 3.0);
  EXPECT_DOUBLE_EQ(inverse_lerp(2.0, 6.0, 3.0), 0.25);
}

TEST(MathUtil, Clamp01) {
  EXPECT_DOUBLE_EQ(clamp01(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(clamp01(0.5), 0.5);
  EXPECT_DOUBLE_EQ(clamp01(1.5), 1.0);
}

TEST(MathUtil, LogisticShape) {
  EXPECT_NEAR(logistic(0.0, 0.0, 1.0), 0.5, 1e-12);
  EXPECT_GT(logistic(10.0, 0.0, 1.0), 0.99);
  EXPECT_LT(logistic(-10.0, 0.0, 1.0), 0.01);
}

TEST(MathUtil, ShannonEfficiencyMonotoneAndCapped) {
  double prev = -1.0;
  for (double snr = -10.0; snr <= 40.0; snr += 1.0) {
    const double eff = shannon_efficiency(snr);
    EXPECT_GE(eff, prev);
    prev = eff;
  }
  EXPECT_DOUBLE_EQ(shannon_efficiency(100.0), 7.4);
  EXPECT_GE(shannon_efficiency(-100.0), 0.0);
}

}  // namespace
}  // namespace wheels

// Golden-bundle regression gate.
//
// tests/golden/bundle is a small recorded campaign (scale 0.02, seed 424242)
// committed to the repo, and tests/golden/expected_summary.csv holds the
// per-carrier headline medians of (a) the recording itself and (b) its
// default-knob replay. Replaying the committed bundle and comparing against
// the committed expectations turns transport/app drift into a readable diff:
// a change that shifts TCP or app behaviour fails here with the exact
// carrier, metric and magnitude instead of surfacing as a flaky timeout
// somewhere downstream.
//
// To refresh the expectations after an *intentional* behaviour change:
//   WHEELS_GOLDEN_REGEN=1 ./build/tests/wheels_tests
//       --gtest_filter=GoldenBundle.*   (one command line)
// then commit the rewritten expected_summary.csv. The bundle itself is a
// frozen input; tests/golden/README.md documents how it was produced.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "measure/csv_export.hpp"
#include "measure/enum_names.hpp"
#include "replay/ingest.hpp"
#include "replay/replay_campaign.hpp"
#include "replay/report.hpp"

#ifndef WHEELS_GOLDEN_DIR
#error "WHEELS_GOLDEN_DIR must point at the source tree's tests/golden"
#endif

namespace wheels::replay {
namespace {

const std::string kGoldenDir = WHEELS_GOLDEN_DIR;
const std::string kExpectedCsv = kGoldenDir + "/expected_summary.csv";
constexpr std::uint64_t kGoldenSeed = 424242;
constexpr double kGoldenScale = 0.02;

const ReplayBundle& golden() {
  static const ReplayBundle bundle = read_dataset(kGoldenDir + "/bundle");
  return bundle;
}

const ReportSummary& recorded_summary() {
  static const ReportSummary s = summarize(golden().db);
  return s;
}

const ReportSummary& replayed_summary() {
  static const ReportSummary s = [] {
    ReplayConfig cfg;
    cfg.threads = 1;
    return summarize(ReplayCampaign{golden(), cfg}.run());
  }();
  return s;
}

std::string summary_row(const char* kind, const CarrierSummary& c) {
  std::ostringstream os;
  os << kind << ',' << measure::names::to_name(c.carrier) << ',' << c.tests
     << ',' << c.kpi_samples << ',' << c.rtt_samples << ',' << c.app_runs
     << ',' << measure::csv_double(c.dl_median_mbps) << ','
     << measure::csv_double(c.ul_median_mbps) << ','
     << measure::csv_double(c.rtt_median_ms) << ','
     << measure::csv_double(c.video_qoe) << ','
     << measure::csv_double(c.gaming_latency_ms) << ','
     << measure::csv_double(c.offload_e2e_ms);
  return os.str();
}

struct ExpectedRow {
  std::string kind;
  std::string carrier;
  std::vector<std::string> counts;   // tests, kpi_samples, rtt_samples, runs
  std::vector<double> medians;       // the six headline medians
};

std::vector<ExpectedRow> read_expected() {
  std::ifstream is{kExpectedCsv};
  if (!is) {
    ADD_FAILURE() << "missing " << kExpectedCsv
                  << " — regenerate with WHEELS_GOLDEN_REGEN=1";
    return {};
  }
  std::vector<ExpectedRow> rows;
  std::string line;
  std::getline(is, line);  // header
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::vector<std::string> fields;
    std::string field;
    std::istringstream ls{line};
    while (std::getline(ls, field, ',')) fields.push_back(field);
    if (fields.size() != 12) {
      ADD_FAILURE() << "malformed expected row: " << line;
      continue;
    }
    ExpectedRow row;
    row.kind = fields[0];
    row.carrier = fields[1];
    row.counts = {fields[2], fields[3], fields[4], fields[5]};
    for (std::size_t i = 6; i < 12; ++i) {
      row.medians.push_back(std::stod(fields[i]));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

/// True (and rewrites the expectations) when WHEELS_GOLDEN_REGEN is set.
bool regen_if_requested() {
  const char* regen = std::getenv("WHEELS_GOLDEN_REGEN");
  if (regen == nullptr || std::string{regen}.empty()) return false;
  std::ofstream os{kExpectedCsv};
  if (!os) {
    ADD_FAILURE() << "cannot write " << kExpectedCsv;
    return true;
  }
  os << "kind,carrier,tests,kpi_samples,rtt_samples,app_runs,dl_median_mbps,"
        "ul_median_mbps,rtt_median_ms,video_qoe,gaming_latency_ms,"
        "offload_e2e_ms\n";
  for (const CarrierSummary& c : recorded_summary().carriers) {
    os << summary_row("recorded", c) << '\n';
  }
  for (const CarrierSummary& c : replayed_summary().carriers) {
    os << summary_row("replayed", c) << '\n';
  }
  return true;
}

/// Compare one summary against the expected rows of `kind`. Counts must be
/// exact; medians within `rel` of the checked-in value (with a tiny absolute
/// floor so exact-zero app metrics compare cleanly).
void expect_matches(const ReportSummary& summary, const std::string& kind,
                    double rel) {
  const std::vector<ExpectedRow> rows = read_expected();
  std::size_t matched = 0;
  for (const ExpectedRow& row : rows) {
    if (row.kind != kind) continue;
    const CarrierSummary* actual = nullptr;
    for (const CarrierSummary& c : summary.carriers) {
      if (measure::names::to_name(c.carrier) == row.carrier) actual = &c;
    }
    ASSERT_NE(actual, nullptr) << "unknown carrier " << row.carrier;
    ++matched;
    EXPECT_EQ(std::to_string(actual->tests), row.counts[0]) << row.carrier;
    EXPECT_EQ(std::to_string(actual->kpi_samples), row.counts[1])
        << row.carrier;
    EXPECT_EQ(std::to_string(actual->rtt_samples), row.counts[2])
        << row.carrier;
    EXPECT_EQ(std::to_string(actual->app_runs), row.counts[3]) << row.carrier;
    const double actual_medians[6] = {
        actual->dl_median_mbps,  actual->ul_median_mbps,
        actual->rtt_median_ms,   actual->video_qoe,
        actual->gaming_latency_ms, actual->offload_e2e_ms};
    for (std::size_t m = 0; m < 6; ++m) {
      const double tol = std::max(std::abs(row.medians[m]) * rel, 1e-9);
      EXPECT_NEAR(actual_medians[m], row.medians[m], tol)
          << kind << ' ' << row.carrier << " metric " << m;
    }
  }
  EXPECT_EQ(matched, summary.carriers.size()) << "rows of kind " << kind;
}

TEST(GoldenBundle, ManifestPinsTheGoldenConfig) {
  EXPECT_EQ(golden().manifest.seed, kGoldenSeed);
  EXPECT_EQ(golden().manifest.scale, kGoldenScale);
}

TEST(GoldenBundle, RecordedMediansMatchCheckedInExpectations) {
  if (regen_if_requested()) {
    GTEST_SKIP() << "expectations rewritten to " << kExpectedCsv;
  }
  // The recording is frozen CSV; its medians must round-trip exactly (modulo
  // parse-and-reformat noise far below any physical scale).
  expect_matches(recorded_summary(), "recorded", 1e-12);
}

TEST(GoldenBundle, ReplayedMediansMatchCheckedInExpectations) {
  if (regen_if_requested()) {
    GTEST_SKIP() << "expectations rewritten to " << kExpectedCsv;
  }
  // The replay re-runs transport/apps live over the recorded radio timeline:
  // bit-exact on one platform, a slightly looser relative tolerance absorbs
  // libm differences across platforms while still catching behaviour drift.
  expect_matches(replayed_summary(), "replayed", 1e-6);
}

}  // namespace
}  // namespace wheels::replay
